/**
 * @file
 * Writing your own workload: build a blocked matrix multiply with the
 * mini-ISA Builder, check it functionally against a host-side
 * reference, then push it through the full MCD + offline-DVFS flow.
 */

#include <cstdio>
#include <vector>

#include "analysis/analyzer.hh"
#include "common/stats.hh"
#include "core/processor.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"

using namespace mcd;

namespace {

constexpr int dim = 24;

/** C = A * B over dim x dim doubles, plus a checksum in r29. */
Program
buildMatmul()
{
    Builder b("matmul");
    std::uint64_t a = b.dataBlock(dim * dim);
    std::uint64_t bm = b.dataBlock(dim * dim);
    std::uint64_t c = b.dataBlock(dim * dim);
    for (int i = 0; i < dim * dim; ++i) {
        b.setDataDouble(a + 8ull * i, 0.25 + (i % 7));
        b.setDataDouble(bm + 8ull * i, 0.5 + (i % 5));
    }

    b.li(4, static_cast<std::int64_t>(a));
    b.li(5, static_cast<std::int64_t>(bm));
    b.li(6, static_cast<std::int64_t>(c));
    b.li(29, 0);

    Label iLoop = b.newLabel();
    Label jLoop = b.newLabel();
    Label kLoop = b.newLabel();

    b.li(1, 0);                 // i
    b.bind(iLoop);
    b.li(2, 0);                 // j
    b.bind(jLoop);
    // acc (f1) = 0 via self-subtraction of a loaded value.
    b.fld(1, 4, 0);
    b.fsub(1, 1, 1);
    b.li(3, 0);                 // k
    b.bind(kLoop);
    // f2 = A[i][k]
    b.li(10, dim);
    b.mul(11, 1, 10);
    b.add(11, 11, 3);
    b.slli(11, 11, 3);
    b.add(11, 4, 11);
    b.fld(2, 11, 0);
    // f3 = B[k][j]
    b.mul(12, 3, 10);
    b.add(12, 12, 2);
    b.slli(12, 12, 3);
    b.add(12, 5, 12);
    b.fld(3, 12, 0);
    b.fmul(2, 2, 3);
    b.fadd(1, 1, 2);
    b.addi(3, 3, 1);
    b.li(13, dim);
    b.blt(3, 13, kLoop);
    // C[i][j] = acc; checksum ^= (int)acc
    b.mul(14, 1, 13);
    b.add(14, 14, 2);
    b.slli(14, 14, 3);
    b.add(14, 6, 14);
    b.fst(1, 14, 0);
    b.ftoi(15, 1);
    b.xor_(29, 29, 15);
    b.addi(2, 2, 1);
    b.blt(2, 13, jLoop);
    b.addi(1, 1, 1);
    b.blt(1, 13, iLoop);
    b.halt();
    return b.build();
}

} // namespace

int
main()
{
    Program prog = buildMatmul();

    // 1. Functional check against a host-side reference.
    Executor ex(prog);
    while (!ex.halted())
        ex.step();
    std::vector<double> A(dim * dim), B(dim * dim);
    for (int i = 0; i < dim * dim; ++i) {
        A[i] = 0.25 + (i % 7);
        B[i] = 0.5 + (i % 5);
    }
    std::uint64_t expect = 0;
    for (int i = 0; i < dim; ++i) {
        for (int j = 0; j < dim; ++j) {
            double acc = 0.0;
            for (int k = 0; k < dim; ++k)
                acc += A[i * dim + k] * B[k * dim + j];
            expect ^= static_cast<std::uint64_t>(
                static_cast<std::int64_t>(acc));
        }
    }
    bool ok = ex.intReg(29) == expect;
    std::printf("functional check: %s (%llu instructions, checksum "
                "%016llx)\n", ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(ex.instsExecuted()),
                static_cast<unsigned long long>(ex.intReg(29)));
    if (!ok)
        return 1;

    // 2. Timing: baseline MCD profiling run.
    SimConfig profCfg;
    profCfg.clocking = ClockingStyle::Mcd;
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    RunResult base = prof.run();
    std::printf("baseline MCD: %s, IPC %.2f, %.0f energy units\n",
                formatTime(base.execTime).c_str(), base.ipc,
                base.totalEnergy);

    // 3. Offline analysis + dynamic run at a 5% dilation target.
    OfflineAnalyzer analyzer(
        OfflineAnalyzer::configFor(0.05, DvfsKind::XScale, 0.2));
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());
    SimConfig dynCfg;
    dynCfg.clocking = ClockingStyle::Mcd;
    dynCfg.dvfs = DvfsKind::XScale;
    dynCfg.dvfsTimeScale = 0.2;
    dynCfg.schedule = &analysis.schedule;
    RunResult dyn = McdProcessor(dynCfg, prog).run();

    std::printf("dynamic-5%%:   %s (%s slower), %s energy saved, EDP "
                "%s\n",
                formatTime(dyn.execTime).c_str(),
                formatPercent(static_cast<double>(dyn.execTime) /
                              static_cast<double>(base.execTime) -
                              1.0).c_str(),
                formatPercent(
                    1.0 - dyn.totalEnergy / base.totalEnergy).c_str(),
                formatPercent(
                    1.0 - dyn.energyDelay / base.energyDelay).c_str());
    std::printf("domain frequencies: INT %s, FP %s, LS %s\n",
                formatMHz(dyn.domains[1].avgFrequency).c_str(),
                formatMHz(dyn.domains[2].avgFrequency).c_str(),
                formatMHz(dyn.domains[3].avgFrequency).c_str());
    return 0;
}
