/**
 * @file
 * Domain explorer: sweep a single domain's static frequency while the
 * others stay at 1 GHz, and print the performance/energy trade-off.
 * This is the manual version of what the offline tool automates, and
 * makes the per-benchmark sensitivities in the paper's Section 4
 * narrative directly visible (e.g. g721's integer domain is
 * untouchable; mcf's barely matters).
 *
 *   ./domain_explorer [benchmark] [domain: int|fp|ls]
 */

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "core/processor.hh"
#include "workloads/workloads.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "g721";
    std::string domArg = argc > 2 ? argv[2] : "int";
    Domain dom = Domain::Integer;
    if (domArg == "fp")
        dom = Domain::FloatingPoint;
    else if (domArg == "ls")
        dom = Domain::LoadStore;
    else if (domArg != "int") {
        std::fprintf(stderr, "domain must be int, fp, or ls\n");
        return 1;
    }

    Program prog = workloads::build(bench, 1);

    // Reference: all domains at 1 GHz.
    SimConfig ref;
    ref.clocking = ClockingStyle::Mcd;
    RunResult base = McdProcessor(ref, prog).run();

    std::printf("Static frequency sweep of the %s domain for '%s'\n\n",
                domainName(dom), bench.c_str());
    TextTable t;
    t.header({"frequency", "voltage", "time", "perf cost",
              "energy saved", "EDP gain"});

    DvfsTable table;
    for (int idx = table.numPoints() - 1; idx >= 0; idx -= 4) {
        Hertz f = table.point(idx).frequency;
        SimConfig cfg = ref;
        cfg.domainFrequency[domainIndex(dom)] = f;
        RunResult r = McdProcessor(cfg, prog).run();
        double deg = static_cast<double>(r.execTime) /
            static_cast<double>(base.execTime) - 1.0;
        double esave = 1.0 - r.totalEnergy / base.totalEnergy;
        double edp = 1.0 - r.energyDelay / base.energyDelay;
        char volt[16];
        std::snprintf(volt, sizeof(volt), "%.3f V",
                      table.point(idx).voltage);
        t.row({formatMHz(f), volt, formatTime(r.execTime),
               formatPercent(deg), formatPercent(esave),
               formatPercent(edp)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\n(The offline tool picks per-interval frequencies "
                "automatically; see the offline_scheduler example.)\n");
    return 0;
}
