/**
 * @file
 * Quickstart: simulate one benchmark on the MCD processor in the
 * paper's five configurations and print a summary.
 *
 *   ./quickstart [benchmark]          (default: gcc)
 */

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "core/experiment.hh"
#include "example_util.hh"
#include "workloads/workloads.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    return exutil::guardedMain([&] {
    std::string bench = argc > 1 ? argv[1] : "gcc";

    // The experiment runner reproduces the paper's methodology:
    //  1. a singly clocked baseline run,
    //  2. a baseline MCD run (also the profiling run),
    //  3. offline analysis (shaker + clustering) at 1% and 5% targets
    //     followed by dynamic runs consuming the schedules,
    //  4. a global voltage-scaling run matched to dynamic-5%.
    ExperimentConfig cfg;
    cfg.model = DvfsKind::XScale;
    ExperimentRunner runner(cfg);

    std::printf("Running the five-configuration matrix for '%s'...\n\n",
                bench.c_str());
    BenchmarkResults r = runner.runBenchmark(bench);

    TextTable t;
    t.header({"configuration", "time", "IPC", "perf cost",
              "energy saved", "EDP gain"});
    auto row = [&](const std::string &name, const RunResult &run) {
        t.row({name, formatTime(run.execTime), formatFixed(run.ipc, 2),
               formatPercent(r.perfDegradation(run)),
               formatPercent(r.energySavings(run)),
               formatPercent(r.edpImprovement(run))});
    };
    row("baseline (single clock)", r.baseline);
    row("baseline MCD", r.mcdBaseline);
    // The dynamic-control legs are data (ExperimentConfig::legs); the
    // default set is the paper's dyn1/dyn5/global/online matrix.
    for (const ControllerLeg &l : r.legs)
        row(l.spec.display, l.run);
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nGlobal configuration frequency: %s\n",
                formatMHz(r.globalFrequency).c_str());
    const RunResult &dyn5 = r.leg("dyn5");
    std::printf("Dynamic-5%% average domain frequencies: INT %s, "
                "FP %s, LS %s\n",
                formatMHz(dyn5.domains[1].avgFrequency).c_str(),
                formatMHz(dyn5.domains[2].avgFrequency).c_str(),
                formatMHz(dyn5.domains[3].avgFrequency).c_str());
    return 0;
    });
}
