/**
 * @file
 * Online control walk-through: run a benchmark with the queue-driven
 * attack/decay controller — no profiling pass, no offline tool — and
 * compare it against the MCD baseline and, for context, an offline
 * dynamic-5% oracle run.
 *
 *   ./online_control [benchmark] [xscale|transmeta] [interval-us]
 *                    [--trace-out <path>] [--stats-out <path>]
 *                    [--invariants <spec>]
 *
 * --trace-out writes a merged Chrome trace (chrome://tracing /
 * Perfetto) of all runs; --stats-out writes their stats registries as
 * JSON; --invariants checks the named invariant rules online
 * ("default" for the built-in set). The MCD_TRACE_OUT /
 * MCD_STATS_OUT / MCD_INVARIANTS environment variables are the
 * fallback when the flags are absent.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hh"
#include "control/online_queue.hh"
#include "core/experiment.hh"
#include "example_util.hh"
#include "workloads/workloads.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    exutil::TelemetryArgs telemetry =
        exutil::TelemetryArgs::parse(argc, argv);
    std::string bench = argc > 1 ? argv[1] : "adpcm";
    DvfsKind model = DvfsKind::XScale;
    if (argc > 2) {
        if (auto k = dvfsKindFromName(argv[2])) {
            model = *k;
        } else {
            std::fprintf(stderr, "unknown DVFS model '%s' "
                         "(expected one of: %s)\n",
                         argv[2], dvfsKindNames().c_str());
            return 1;
        }
    }

    return exutil::guardedMain([&] {
    ExperimentConfig ec;
    ec.model = model;
    if (argc > 3)
        ec.online.interval = fromMicroseconds(std::atof(argv[3]));
    if (telemetry.wanted())
        ec.telemetry = obs::TelemetryConfig::full();
    telemetry.apply(ec.telemetry);
    ExperimentRunner runner(ec);

    std::printf("[1/2] MCD baseline + online attack/decay run "
                "(%s model, %.1f us control interval)...\n",
                dvfsKindName(model), ec.online.interval / 1e6);
    ExperimentRunner::OnlineRun on = runner.runOnline(bench);

    double deg = static_cast<double>(on.online.execTime) /
        static_cast<double>(on.mcdBaseline.execTime) - 1.0;
    double esave = 1.0 - on.online.totalEnergy / on.mcdBaseline.totalEnergy;
    double edp = 1.0 - on.online.energyDelay / on.mcdBaseline.energyDelay;
    std::printf("      vs MCD baseline: %s slower, %s energy saved, "
                "EDP %s\n",
                formatPercent(deg).c_str(), formatPercent(esave).c_str(),
                formatPercent(edp).c_str());
    for (Domain d : scalableDomains) {
        const DomainSummary &s = on.online.domains[domainIndex(d)];
        std::printf("      %s: avg %s, range [%s, %s], %llu "
                    "reconfigurations\n",
                    domainShortName(d),
                    formatMHz(s.avgFrequency).c_str(),
                    formatMHz(s.minFrequency).c_str(),
                    formatMHz(s.maxFrequency).c_str(),
                    static_cast<unsigned long long>(s.reconfigurations));
    }

    // The oracle bound: what the offline tool achieves with the whole
    // trace in hand and a 5% dilation budget.
    std::printf("\n[2/2] Offline dynamic-5%% oracle for comparison...\n");
    ExperimentRunner::DynamicRun dyn = runner.runDynamic(bench, 0.05);
    double odeg = static_cast<double>(dyn.result.execTime) /
        static_cast<double>(on.mcdBaseline.execTime) - 1.0;
    double osave =
        1.0 - dyn.result.totalEnergy / on.mcdBaseline.totalEnergy;
    std::printf("      vs MCD baseline: %s slower, %s energy saved, "
                "EDP %s\n",
                formatPercent(odeg).c_str(), formatPercent(osave).c_str(),
                formatPercent(1.0 - dyn.result.energyDelay /
                              on.mcdBaseline.energyDelay).c_str());
    std::printf("\n      online achieved %.0f%% of the oracle's energy "
                "savings with no profiling pass\n\n",
                osave > 0 ? 100.0 * esave / osave : 0.0);

    telemetry.write({{bench + "/mcdBaseline", &on.mcdBaseline},
                     {bench + "/online", &on.online},
                     {bench + "/dyn5", &dyn.result}});
    return 0;
    });
}
