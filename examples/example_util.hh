/**
 * @file
 * Shared plumbing for the example binaries: the --trace-out /
 * --stats-out telemetry output flags (backed by the traceOut /
 * statsOut options of the unified config layer, so MCD_TRACE_OUT /
 * MCD_STATS_OUT and --config files keep working) and the writers
 * behind them.
 */

#ifndef MCD_EXAMPLES_EXAMPLE_UTIL_HH
#define MCD_EXAMPLES_EXAMPLE_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "config/registry.hh"
#include "config/runspec.hh"
#include "core/experiment.hh"

namespace mcd {
namespace exutil {

/**
 * Run an example's body with the library's error taxonomy mapped to
 * process exit codes: FatalError (bad usage or configuration,
 * including a failed SimConfig/ExperimentConfig validation) exits 2;
 * any other exception (unexpected simulator error) exits 3 — instead
 * of std::terminate either way.
 */
inline int
guardedMain(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
    }
}

/**
 * Consume "--trace-out <path>" / "--stats-out <path>" /
 * "--invariants <spec>" / "--config <file>" from argv (compacting the
 * positional arguments so existing positional parsing is unaffected).
 * The flags feed the unified config layer's flag store and the
 * results are read back from the resolved RunSpec, so the
 * MCD_TRACE_OUT / MCD_STATS_OUT / MCD_INVARIANTS environment
 * variables and config-file keys keep working with flag > env > file
 * precedence. "--dump-config-schema" prints the generated
 * configuration reference to stdout and exits.
 */
struct TelemetryArgs
{
    std::string traceOut;
    std::string statsOut;
    std::string invariants;

    bool wanted() const { return !traceOut.empty() || !statsOut.empty(); }

    static TelemetryArgs
    parse(int &argc, char **argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--dump-config-schema") {
                config::writeSchemaMarkdown(std::cout);
                std::exit(0);
            }
            const char *name = arg == "--trace-out" ? "traceOut"
                : arg == "--stats-out" ? "statsOut"
                : arg == "--invariants" ? "invariants"
                : arg == "--config" ? "config" : nullptr;
            if (!name) {
                argv[out++] = argv[i];
                continue;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", arg.c_str());
                std::exit(1);
            }
            config::setFlagOverride(name, argv[++i]);
        }
        argc = out;
        const config::RunSpec spec = config::RunSpec::resolve();
        TelemetryArgs a;
        a.traceOut = spec.str("traceOut");
        a.statsOut = spec.str("statsOut");
        a.invariants = spec.str("invariants");
        return a;
    }

    /**
     * Apply the output-independent telemetry knobs to a run's config:
     * currently just the invariant spec, which enables the engine even
     * without --trace-out/--stats-out (violations still reach stderr
     * via the run summary and the stats registry).
     */
    void
    apply(obs::TelemetryConfig &tc) const
    {
        if (!invariants.empty())
            tc.invariants = invariants;
    }

    /** Write the requested documents for the given labeled runs. */
    void
    write(const std::vector<NamedRun> &runs) const
    {
        auto writeTo = [&](const std::string &path, auto writer) {
            if (path.empty())
                return;
            std::ofstream os(path);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                std::exit(1);
            }
            writer(os);
            std::printf("      telemetry written to %s\n", path.c_str());
        };
        writeTo(statsOut, [&](std::ostream &os) {
            writeTelemetryStatsJson(os, runs);
        });
        writeTo(traceOut, [&](std::ostream &os) {
            writeTelemetryTrace(os, runs);
        });
    }
};

} // namespace exutil
} // namespace mcd

#endif // MCD_EXAMPLES_EXAMPLE_UTIL_HH
