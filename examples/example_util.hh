/**
 * @file
 * Shared plumbing for the example binaries: the --trace-out /
 * --stats-out telemetry output flags (with MCD_TRACE_OUT /
 * MCD_STATS_OUT environment fallback) and the writers behind them.
 */

#ifndef MCD_EXAMPLES_EXAMPLE_UTIL_HH
#define MCD_EXAMPLES_EXAMPLE_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace mcd {
namespace exutil {

/**
 * Consume "--trace-out <path>" / "--stats-out <path>" from argv
 * (compacting the positional arguments so existing positional parsing
 * is unaffected), falling back to the MCD_TRACE_OUT / MCD_STATS_OUT
 * environment variables when the flags are absent.
 */
struct TelemetryArgs
{
    std::string traceOut;
    std::string statsOut;

    bool wanted() const { return !traceOut.empty() || !statsOut.empty(); }

    static TelemetryArgs
    parse(int &argc, char **argv)
    {
        TelemetryArgs a;
        if (const char *e = std::getenv("MCD_TRACE_OUT"))
            a.traceOut = e;
        if (const char *e = std::getenv("MCD_STATS_OUT"))
            a.statsOut = e;
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            std::string *dst = arg == "--trace-out" ? &a.traceOut
                : arg == "--stats-out" ? &a.statsOut : nullptr;
            if (!dst) {
                argv[out++] = argv[i];
                continue;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a path\n", arg.c_str());
                std::exit(1);
            }
            *dst = argv[++i];
        }
        argc = out;
        return a;
    }

    /** Write the requested documents for the given labeled runs. */
    void
    write(const std::vector<NamedRun> &runs) const
    {
        auto writeTo = [&](const std::string &path, auto writer) {
            if (path.empty())
                return;
            std::ofstream os(path);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                std::exit(1);
            }
            writer(os);
            std::printf("      telemetry written to %s\n", path.c_str());
        };
        writeTo(statsOut, [&](std::ostream &os) {
            writeTelemetryStatsJson(os, runs);
        });
        writeTo(traceOut, [&](std::ostream &os) {
            writeTelemetryTrace(os, runs);
        });
    }
};

} // namespace exutil
} // namespace mcd

#endif // MCD_EXAMPLES_EXAMPLE_UTIL_HH
