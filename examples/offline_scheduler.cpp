/**
 * @file
 * Offline scheduler walk-through: profile a benchmark on the MCD
 * simulator, run the paper's offline analysis (dependence DAG ->
 * shaker -> histograms -> clustering), print the per-domain frequency
 * plan and the reconfiguration log file, then replay it in a dynamic
 * run and report the outcome.
 *
 *   ./offline_scheduler [benchmark] [dilation-%] [xscale|transmeta]
 *                       [--trace-out <path>] [--stats-out <path>]
 *                       [--invariants <spec>]
 *
 * --trace-out writes a merged Chrome trace (chrome://tracing /
 * Perfetto) of the profiling and dynamic runs; --stats-out writes
 * their stats registries as JSON; --invariants checks the named
 * invariant rules online ("default" for the built-in set).
 * MCD_TRACE_OUT / MCD_STATS_OUT / MCD_INVARIANTS are the environment
 * fallback when the flags are absent.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/analyzer.hh"
#include "common/stats.hh"
#include "control/controller.hh"
#include "core/processor.hh"
#include "example_util.hh"
#include "workloads/workloads.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    exutil::TelemetryArgs telemetry =
        exutil::TelemetryArgs::parse(argc, argv);
    std::string bench = argc > 1 ? argv[1] : "art";
    double dilation = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.05;
    DvfsKind model = DvfsKind::XScale;
    if (argc > 3) {
        if (auto k = dvfsKindFromName(argv[3])) {
            model = *k;
        } else {
            std::fprintf(stderr, "unknown DVFS model '%s' "
                         "(expected one of: %s)\n",
                         argv[3], dvfsKindNames().c_str());
            return 1;
        }
    }
    const double timeScale = 0.2;

    Program prog = workloads::build(bench, 1);

    // Step 1: the profiling run -- baseline MCD at full speed with
    // primitive-event trace collection (paper Section 3.2).
    std::printf("[1/3] Profiling run (baseline MCD, all domains at "
                "1 GHz)...\n");
    SimConfig profCfg;
    profCfg.clocking = ClockingStyle::Mcd;
    profCfg.collectTrace = true;
    if (telemetry.wanted())
        profCfg.telemetry = obs::TelemetryConfig::full();
    telemetry.apply(profCfg.telemetry);
    McdProcessor prof(profCfg, prog);
    RunResult profile = prof.run();
    std::printf("      %llu instructions, %zu trace records, %s\n\n",
                static_cast<unsigned long long>(profile.committed),
                prof.trace().size(),
                formatTime(profile.execTime).c_str());

    // Step 2: the offline tool.
    std::printf("[2/3] Offline analysis (shaker + clustering, "
                "d = %.0f%%, %s model)...\n", dilation * 100.0,
                dvfsKindName(model));
    OfflineAnalyzer analyzer(
        OfflineAnalyzer::configFor(dilation, model, timeScale));
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());
    std::printf("      %zu intervals, %zu events, %.1f us of slack "
                "absorbed\n\n", analysis.intervals,
                analysis.eventsTotal, analysis.slackConsumed / 1e6);

    for (Domain d : scalableDomains) {
        std::printf("      %s plan:", domainShortName(d));
        for (const PlanSegment &s : analysis.plans[domainIndex(d)]) {
            std::printf(" [%.0f-%.0f us @ %.0f MHz]", s.start / 1e6,
                        s.end / 1e6, s.frequency / 1e6);
        }
        std::printf("\n");
    }
    std::printf("\n      Reconfiguration log (time-ps domain freq-Hz):\n");
    std::string log = analysis.schedule.toText();
    std::fputs(log.empty() ? "      (no reconfigurations)\n"
                           : log.c_str(), stdout);

    // Step 3: the dynamic run consuming the schedule, replayed
    // through the control plane: a ScheduleController plugged into
    // SimConfig::controller (equivalent to setting
    // SimConfig::schedule, which wraps one internally).
    std::printf("\n[3/3] Dynamic run (%s transitions)...\n",
                dvfsKindName(model));
    ScheduleController ctrl(analysis.schedule);
    SimConfig dynCfg;
    dynCfg.clocking = ClockingStyle::Mcd;
    dynCfg.dvfs = model;
    dynCfg.dvfsTimeScale = timeScale;
    dynCfg.controller = &ctrl;
    if (telemetry.wanted())
        dynCfg.telemetry = obs::TelemetryConfig::full();
    telemetry.apply(dynCfg.telemetry);
    McdProcessor dyn(dynCfg, prog);
    RunResult r = dyn.run();

    double deg = static_cast<double>(r.execTime) /
        static_cast<double>(profile.execTime) - 1.0;
    double esave = 1.0 - r.totalEnergy / profile.totalEnergy;
    std::printf("      vs the MCD profiling run: %s slower, %s energy "
                "saved, EDP %s\n",
                formatPercent(deg).c_str(), formatPercent(esave).c_str(),
                formatPercent(
                    1.0 - r.energyDelay / profile.energyDelay).c_str());
    for (Domain d : scalableDomains) {
        const DomainSummary &s = r.domains[domainIndex(d)];
        std::printf("      %s: avg %s, range [%s, %s], %llu "
                    "reconfigurations\n",
                    domainShortName(d),
                    formatMHz(s.avgFrequency).c_str(),
                    formatMHz(s.minFrequency).c_str(),
                    formatMHz(s.maxFrequency).c_str(),
                    static_cast<unsigned long long>(s.reconfigurations));
    }

    telemetry.write({{bench + "/profile", &profile},
                     {bench + "/dynamic", &r}});
    return 0;
}
