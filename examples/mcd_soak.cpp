/**
 * @file
 * The soak driver binary: run a seeded budget of fuzzed scenario
 * tuples under the default invariant set, classify every outcome,
 * shrink findings, and persist replayable repros.
 *
 *   mcd_soak [--seed N] [--budget N] [--jobs N] [--out DIR]
 *            [--plant <leg>=<action>] [--no-shrink]
 *            [--shrink-runs N] [--quiet]
 *   mcd_soak --repro FILE
 *
 * Environment fallbacks (MCD_SOAK mode, for CI wrappers that cannot
 * pass flags): MCD_SOAK_SEED, MCD_SOAK_BUDGET, MCD_SOAK_JOBS,
 * MCD_SOAK_OUT, MCD_SOAK_PLANT.
 *
 * Exit codes: 0 = clean soak (or a --repro replay that reproduced its
 * recorded signature); 1 = findings were recorded (or the replay did
 * not match); 2 = usage/configuration error.
 *
 * With --out, DIR/journal.txt records every completed tuple as it
 * finishes — re-running the same seed resumes after an interruption
 * instead of repeating finished tuples — and DIR/corpus/ collects one
 * minimized repro JSON per finding.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/soak.hh"

#include "example_util.hh"

namespace {

std::uint64_t
parseU64Arg(const char *flag, const char *value)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(value, &end, 10);
    if (!end || *end) {
        std::fprintf(stderr, "%s requires an unsigned integer (got "
                     "'%s')\n", flag, value);
        std::exit(2);
    }
    return v;
}

const char *
envOr(const char *var, const char *fallback)
{
    const char *v = std::getenv(var);
    return v && *v ? v : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    return mcd::exutil::guardedMain([&]() -> int {
        mcd::fuzz::SoakOptions opts;
        opts.rootSeed = parseU64Arg("MCD_SOAK_SEED",
                                    envOr("MCD_SOAK_SEED", "1"));
        opts.budget = static_cast<int>(
            parseU64Arg("MCD_SOAK_BUDGET",
                        envOr("MCD_SOAK_BUDGET", "25")));
        opts.jobs = static_cast<int>(
            parseU64Arg("MCD_SOAK_JOBS", envOr("MCD_SOAK_JOBS", "1")));
        opts.outDir = envOr("MCD_SOAK_OUT", "");
        opts.planted = envOr("MCD_SOAK_PLANT", "");
        opts.progress = true;
        std::string reproPath;

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s requires a value\n",
                                 arg.c_str());
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--seed") {
                opts.rootSeed = parseU64Arg("--seed", value());
            } else if (arg == "--budget") {
                opts.budget = static_cast<int>(
                    parseU64Arg("--budget", value()));
            } else if (arg == "--jobs") {
                opts.jobs = static_cast<int>(
                    parseU64Arg("--jobs", value()));
            } else if (arg == "--out") {
                opts.outDir = value();
            } else if (arg == "--plant") {
                opts.planted = value();
            } else if (arg == "--no-shrink") {
                opts.shrink = false;
            } else if (arg == "--shrink-runs") {
                opts.shrinkRuns = static_cast<int>(
                    parseU64Arg("--shrink-runs", value()));
            } else if (arg == "--quiet") {
                opts.progress = false;
            } else if (arg == "--repro") {
                reproPath = value();
            } else {
                std::fprintf(stderr, "unknown argument '%s'\n",
                             arg.c_str());
                return 2;
            }
        }

        if (!reproPath.empty()) {
            mcd::fuzz::ReplayResult r =
                mcd::fuzz::replayRepro(reproPath);
            if (!r.loaded) {
                std::fprintf(stderr,
                             "cannot load repro file %s\n",
                             reproPath.c_str());
                return 2;
            }
            std::printf("repro %s\n  recorded: %s\n  replayed: %s%s%s"
                        "\n  %s\n",
                        reproPath.c_str(), r.recorded.c_str(),
                        mcd::fuzz::outcomeClassName(r.outcome.cls),
                        r.outcome.failed() ? " " : "",
                        r.outcome.signature.c_str(),
                        r.matched ? "MATCH" : "MISMATCH");
            return r.matched ? 0 : 1;
        }

        std::printf("MCD soak: seed %llu, budget %d, jobs %d%s%s\n",
                    static_cast<unsigned long long>(opts.rootSeed),
                    opts.budget, opts.jobs,
                    opts.planted.empty() ? "" : ", planted ",
                    opts.planted.c_str());
        mcd::fuzz::SoakReport report = mcd::fuzz::runSoak(opts);
        std::printf("  ran %llu tuple(s), resumed past %llu, "
                    "%zu new finding(s), %llu prior\n",
                    static_cast<unsigned long long>(report.completed),
                    static_cast<unsigned long long>(report.resumed),
                    report.findings.size(),
                    static_cast<unsigned long long>(
                        report.priorFindings));
        for (const mcd::fuzz::SoakFinding &f : report.findings) {
            std::printf("  FINDING tuple %llu: %s %s%s%s\n",
                        static_cast<unsigned long long>(f.index),
                        mcd::fuzz::outcomeClassName(f.outcome.cls),
                        f.outcome.signature.c_str(),
                        f.reproPath.empty() ? "" : " -> ",
                        f.reproPath.c_str());
        }
        if (report.clean())
            std::printf("  clean\n");
        return mcd::fuzz::soakExitCode(report);
    });
}
