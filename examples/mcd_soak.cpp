/**
 * @file
 * The soak driver binary: run a seeded budget of fuzzed scenario
 * tuples under the default invariant set, classify every outcome,
 * shrink findings, and persist replayable repros.
 *
 *   mcd_soak [--seed N] [--budget N] [--jobs N] [--out DIR]
 *            [--plant <leg>=<action>] [--no-shrink]
 *            [--shrink-runs N] [--quiet] [--config FILE]
 *   mcd_soak --repro FILE
 *   mcd_soak --convert-repro FILE     # legacy v1 repro -> v2, stdout
 *
 * The seed/budget/jobs/out/plant knobs resolve through the unified
 * config layer (soakSeed, soakBudget, soakJobs, soakOut, soakPlant;
 * defaults < --config file < MCD_SOAK_* env vars < flags), so CI
 * wrappers that cannot pass flags keep working.
 *
 * Exit codes: 0 = clean soak (or a --repro replay that reproduced its
 * recorded signature); 1 = findings were recorded (or the replay did
 * not match); 2 = usage/configuration error.
 *
 * With --out, DIR/journal.txt records every completed tuple as it
 * finishes — re-running the same seed resumes after an interruption
 * instead of repeating finished tuples — and DIR/corpus/ collects one
 * minimized repro JSON per finding.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "fuzz/scenario.hh"
#include "fuzz/soak.hh"

#include "example_util.hh"

namespace {

std::uint64_t
parseU64Arg(const char *flag, const char *value)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(value, &end, 10);
    if (!end || *end) {
        std::fprintf(stderr, "%s requires an unsigned integer (got "
                     "'%s')\n", flag, value);
        std::exit(2);
    }
    return v;
}

/** One-shot converter: any readable repro (v1 or v2) -> v2, stdout. */
int
convertRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open repro file %s\n",
                     path.c_str());
        return 2;
    }
    std::optional<mcd::fuzz::Repro> repro = mcd::fuzz::readRepro(in);
    if (!repro) {
        std::fprintf(stderr, "cannot parse repro file %s\n",
                     path.c_str());
        return 2;
    }
    mcd::fuzz::writeRepro(std::cout, repro->scenario,
                          repro->signature);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return mcd::exutil::guardedMain([&]() -> int {
        namespace config = mcd::config;
        std::string reproPath;
        std::string convertPath;
        bool shrink = true;
        bool progress = true;
        int shrinkRuns = -1;

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s requires a value\n",
                                 arg.c_str());
                    std::exit(2);
                }
                return argv[++i];
            };
            // The soak knobs feed the unified flag store (highest
            // layer), so MCD_SOAK_* env vars and --config files
            // resolve underneath them.
            if (arg == "--seed") {
                config::setFlagOverride("soakSeed", value());
            } else if (arg == "--budget") {
                config::setFlagOverride("soakBudget", value());
            } else if (arg == "--jobs") {
                config::setFlagOverride("soakJobs", value());
            } else if (arg == "--out") {
                config::setFlagOverride("soakOut", value());
            } else if (arg == "--plant") {
                config::setFlagOverride("soakPlant", value());
            } else if (arg == "--config") {
                config::setFlagOverride("config", value());
            } else if (arg == "--dump-config-schema") {
                config::writeSchemaMarkdown(std::cout);
                return 0;
            } else if (arg == "--no-shrink") {
                shrink = false;
            } else if (arg == "--shrink-runs") {
                shrinkRuns = static_cast<int>(
                    parseU64Arg("--shrink-runs", value()));
            } else if (arg == "--quiet") {
                progress = false;
            } else if (arg == "--repro") {
                reproPath = value();
            } else if (arg == "--convert-repro") {
                convertPath = value();
            } else {
                std::fprintf(stderr, "unknown argument '%s'\n",
                             arg.c_str());
                return 2;
            }
        }

        const config::RunSpec spec = config::RunSpec::resolve();
        mcd::fuzz::SoakOptions opts;
        opts.rootSeed = spec.u64("soakSeed");
        opts.budget = static_cast<int>(spec.integer("soakBudget"));
        opts.jobs = static_cast<int>(spec.integer("soakJobs"));
        opts.outDir = spec.str("soakOut");
        opts.planted = spec.str("soakPlant");
        opts.shrink = shrink;
        opts.progress = progress;
        if (shrinkRuns >= 0)
            opts.shrinkRuns = shrinkRuns;

        if (!convertPath.empty())
            return convertRepro(convertPath);
        if (!reproPath.empty()) {
            mcd::fuzz::ReplayResult r =
                mcd::fuzz::replayRepro(reproPath);
            if (!r.loaded) {
                std::fprintf(stderr,
                             "cannot load repro file %s\n",
                             reproPath.c_str());
                return 2;
            }
            std::printf("repro %s\n  recorded: %s\n  replayed: %s%s%s"
                        "\n  %s\n",
                        reproPath.c_str(), r.recorded.c_str(),
                        mcd::fuzz::outcomeClassName(r.outcome.cls),
                        r.outcome.failed() ? " " : "",
                        r.outcome.signature.c_str(),
                        r.matched ? "MATCH" : "MISMATCH");
            return r.matched ? 0 : 1;
        }

        std::printf("MCD soak: seed %llu, budget %d, jobs %d%s%s\n",
                    static_cast<unsigned long long>(opts.rootSeed),
                    opts.budget, opts.jobs,
                    opts.planted.empty() ? "" : ", planted ",
                    opts.planted.c_str());
        mcd::fuzz::SoakReport report = mcd::fuzz::runSoak(opts);
        std::printf("  ran %llu tuple(s), resumed past %llu, "
                    "%zu new finding(s), %llu prior\n",
                    static_cast<unsigned long long>(report.completed),
                    static_cast<unsigned long long>(report.resumed),
                    report.findings.size(),
                    static_cast<unsigned long long>(
                        report.priorFindings));
        for (const mcd::fuzz::SoakFinding &f : report.findings) {
            std::printf("  FINDING tuple %llu: %s %s%s%s\n",
                        static_cast<unsigned long long>(f.index),
                        mcd::fuzz::outcomeClassName(f.outcome.cls),
                        f.outcome.signature.c_str(),
                        f.reproPath.empty() ? "" : " -> ",
                        f.reproPath.c_str());
        }
        if (report.clean())
            std::printf("  clean\n");
        return mcd::fuzz::soakExitCode(report);
    });
}
