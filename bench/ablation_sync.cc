/**
 * @file
 * Ablation: sensitivity of the baseline-MCD synchronization cost to
 * the two circuit-level parameters of Section 2.2 -- the
 * synchronization window T_s (paper value: 30% of the fastest clock
 * period, from the Sjogren & Myers arbitration circuits) and the
 * per-edge clock jitter (paper value: sigma = 110 ps).
 *
 * This quantifies the design-choice discussion in DESIGN.md: how much
 * of the MCD penalty is inherent to independent clocks vs. an
 * artifact of the assumed synchronizer quality.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/processor.hh"

using namespace mcd;

namespace {

/** Benchmarks spanning sync-sensitivity extremes. */
const char *kBenches[] = {"adpcm", "g721", "health", "mcf"};

double
mcdDegradation(const Program &p, double sync_fraction,
               double jitter_ps, std::uint64_t seed)
{
    SimConfig base;
    base.clocking = ClockingStyle::SingleClock;
    base.jitterSigmaPs = jitter_ps;
    base.seed = seed;
    RunResult rb = McdProcessor(base, p).run();

    SimConfig mcd = base;
    mcd.clocking = ClockingStyle::Mcd;
    mcd.syncFraction = sync_fraction;
    RunResult rm = McdProcessor(mcd, p).run();
    return static_cast<double>(rm.execTime) /
        static_cast<double>(rb.execTime) - 1.0;
}

} // namespace

int
main()
{
    ExperimentConfig ec = benchutil::configFromEnv();

    std::printf("Ablation: baseline-MCD performance cost vs "
                "synchronization window T_s\n(paper value: T_s = 30%% "
                "of the fastest period, jitter sigma = 110 ps)\n\n");
    {
        TextTable t;
        t.header({"benchmark", "Ts=10%", "Ts=30% (paper)", "Ts=50%",
                  "Ts=70%", "Ts=100%"});
        const double fractions[] = {0.1, 0.3, 0.5, 0.7, 1.0};
        for (const char *name : kBenches) {
            std::fprintf(stderr, "  Ts sweep: %s...\n", name);
            Program p = workloads::build(name, ec.scale);
            std::vector<std::string> cells{name};
            for (double f : fractions)
                cells.push_back(formatPercent(
                    mcdDegradation(p, f, defaultJitterSigmaPs,
                                   ec.seed)));
            t.row(std::move(cells));
        }
        std::fputs(t.render().c_str(), stdout);
    }

    std::printf("\nAblation: baseline-MCD performance cost vs clock "
                "jitter (T_s = 30%%)\n\n");
    {
        TextTable t;
        t.header({"benchmark", "no jitter", "sigma=110ps (paper)",
                  "sigma=220ps", "sigma=440ps"});
        const double sigmas[] = {0.0, 110.0, 220.0, 440.0};
        for (const char *name : kBenches) {
            std::fprintf(stderr, "  jitter sweep: %s...\n", name);
            Program p = workloads::build(name, ec.scale);
            std::vector<std::string> cells{name};
            for (double s : sigmas)
                cells.push_back(formatPercent(
                    mcdDegradation(p, 0.3, s, ec.seed)));
            t.row(std::move(cells));
        }
        std::fputs(t.render().c_str(), stdout);
    }

    std::printf("\nLarger synchronization windows monotonically "
                "increase the cost of the MCD clocking style;\nthe "
                "paper's 30%%/110 ps point keeps the average penalty "
                "small (Section 4: < 4%%).\n");
    return 0;
}
