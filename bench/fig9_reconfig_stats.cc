/**
 * @file
 * Reproduces paper Figure 9: per-benchmark summary statistics of the
 * intervals chosen by the off-line tool for the dynamic-5%
 * configuration under the Transmeta and XScale models --
 * reconfigurations per million instructions (bars) and the average /
 * min / max frequency per domain ("error bars").
 *
 * Paper shape: average frequencies are similar between models, but
 * the Transmeta model performs far fewer reconfigurations over
 * narrower frequency ranges.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mcd;

namespace {

struct ModelStats
{
    double reconfigsPerM = 0.0;
    double avgFreq[numDomains] = {};
};

} // namespace

int
main()
{
    std::printf("Figure 9: Summary statistics for intervals chosen by "
                "the off-line tool (dynamic-5%%)\n\n");

    double totalRc[2] = {};
    // runDynamic() has no per-leg guard; turn configuration and
    // simulation errors into a clean usage-error exit.
    try {
    for (int mi = 0; mi < 2; ++mi) {
        DvfsKind model = mi ? DvfsKind::XScale : DvfsKind::Transmeta;
        ExperimentConfig ec = benchutil::configFromEnv(model);
        ExperimentRunner runner(ec);

        std::printf("%s reconfiguration data\n", dvfsKindName(model));
        TextTable t;
        t.header({"benchmark", "reconf/1M", "INT avg", "INT range",
                  "FP avg", "FP range", "LS avg", "LS range"});
        for (const WorkloadInfo &w : workloads::all()) {
            std::fprintf(stderr, "  %s %s...\n", dvfsKindName(model),
                         w.name);
            auto dyn = runner.runDynamic(w.name, ec.dilationHigh);
            const RunResult &r = dyn.result;
            std::uint64_t rc = 0;
            for (int d = 1; d < numDomains; ++d)
                rc += r.domains[d].reconfigurations;
            double rcPerM = 1e6 * static_cast<double>(rc) /
                static_cast<double>(r.committed);
            totalRc[mi] += rcPerM;
            auto range = [&](int d) {
                char buf[48];
                std::snprintf(buf, sizeof(buf), "[%.0f-%.0f]",
                              r.domains[d].minFrequency / 1e6,
                              r.domains[d].maxFrequency / 1e6);
                return std::string(buf);
            };
            t.row({w.name, formatFixed(rcPerM, 1),
                   formatMHz(r.domains[1].avgFrequency), range(1),
                   formatMHz(r.domains[2].avgFrequency), range(2),
                   formatMHz(r.domains[3].avgFrequency), range(3)});
        }
        std::fputs(t.render().c_str(), stdout);
        std::printf("\n");
    }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 2;
    }

    bool shape = totalRc[1] > totalRc[0];
    std::printf("Paper shape -- far fewer reconfigurations under "
                "Transmeta than XScale: %s (%.1f vs %.1f per 1M insts "
                "on average)\n",
                shape ? "REPRODUCED" : "NOT REPRODUCED",
                totalRc[0] / 16.0, totalRc[1] / 16.0);
    return shape ? 0 : 1;
}
