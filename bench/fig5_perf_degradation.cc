/**
 * @file
 * Reproduces paper Figure 5: performance degradation (relative to the
 * singly clocked baseline) of the baseline MCD, dynamic-1%,
 * dynamic-5%, and global voltage scaling configurations, under the
 * XScale scaling model.
 *
 * Paper shape: baseline MCD < 4% on average; dynamic-5% roughly its
 * target above that; global matched to dynamic-5% by construction.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    benchutil::parseFigureArgs(argc, argv);
    ExperimentConfig ec = benchutil::configFromEnv(DvfsKind::XScale);
    auto rows = benchutil::runMatrix(ec);
    benchutil::printFigure(
        "Figure 5: Performance degradation results (XScale model)",
        rows,
        [](const BenchmarkResults &r, const RunResult &run) {
            return r.perfDegradation(run);
        });
    std::printf(
        "\nPaper reference: baseline MCD < 4%% avg; dynamic-5%% ~10%%; "
        "global matched to dynamic-5%%.\n");
    if (config::RunSpec::resolve().boolean("tournament"))
        benchutil::printLeaderboard(rows);
    return benchutil::finish(rows);
}
