/**
 * @file
 * Reproduces paper Figure 6: energy savings relative to the singly
 * clocked baseline for the four configurations (XScale model).
 *
 * Paper shape: baseline MCD slightly negative (~-1.5%); dynamic-5%
 * ~27%; global < 12% (limited by the compressed voltage range);
 * per-domain scaling beats global at matched degradation everywhere
 * except the most FP/balanced codes.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    benchutil::parseFigureArgs(argc, argv);
    ExperimentConfig ec = benchutil::configFromEnv(DvfsKind::XScale);
    auto rows = benchutil::runMatrix(ec);
    benchutil::printFigure(
        "Figure 6: Energy savings results (XScale model)", rows,
        [](const BenchmarkResults &r, const RunResult &run) {
            return r.energySavings(run);
        });
    std::printf(
        "\nPaper reference: dynamic-5%% ~27%% avg; global < 12%% avg; "
        "MCD baseline ~-1.5%%.\n");
    if (config::RunSpec::resolve().boolean("tournament"))
        benchutil::printLeaderboard(rows);
    return benchutil::finish(rows);
}
