/**
 * @file
 * Google-benchmark microbenchmarks for the simulator infrastructure
 * itself: functional execution, timing simulation, cache and branch
 * predictor throughput, DAG construction, and the shaker.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include "analysis/analyzer.hh"
#include "common/thread_pool.hh"
#include "core/experiment.hh"
#include "core/processor.hh"
#include "cpu/bpred.hh"
#include "isa/executor.hh"
#include "mem/cache.hh"
#include "workloads/workloads.hh"

namespace {

using namespace mcd;

void
BM_FunctionalExecution(benchmark::State &state)
{
    Program p = workloads::build("g721", 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        Executor ex(p);
        while (!ex.halted())
            ex.step();
        insts += ex.instsExecuted();
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution)
    ->Apply(benchutil::kernelBenchDefaults);

void
BM_TimingSimulation(benchmark::State &state)
{
    Program p = workloads::build("g721", 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.clocking = ClockingStyle::Mcd;
        cfg.maxInstructions = 50000;
        McdProcessor proc(cfg, p);
        RunResult r = proc.run();
        insts += r.committed;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimingSimulation)
    ->Apply(benchutil::kernelBenchDefaults);

/**
 * The same 50K-instruction timing run under the default-flavored
 * sampling operating point (10% detailed): the CI gate tracks the
 * sampled kernel's speed alongside the full-detail one.
 */
void
BM_SampledSimulation(benchmark::State &state)
{
    Program p = workloads::build("g721", 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.clocking = ClockingStyle::Mcd;
        cfg.maxInstructions = 50000;
        cfg.sampling = SamplingParams{1000, 9000, 250};
        McdProcessor proc(cfg, p);
        RunResult r = proc.run();
        insts += r.committed;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SampledSimulation)
    ->Apply(benchutil::kernelBenchDefaults);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams cp;
    cp.sizeBytes = 64 * 1024;
    cp.associativity = 2;
    Cache c(cp);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(addr, false));
        addr += 4096 + 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredictor(benchmark::State &state)
{
    BranchPredictor bp((BpredParams()));
    std::uint64_t pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        BpredLookup l = bp.predictBranch(pc);
        bp.update(pc, taken, pc + 64, l.taken, true);
        taken = !taken;
        pc = 0x1000 + ((pc + 4) & 0xfff);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void
BM_DagBuild(benchmark::State &state)
{
    Program p = workloads::build("gcc", 1);
    SimConfig cfg;
    cfg.collectTrace = true;
    cfg.maxInstructions = 40000;
    McdProcessor proc(cfg, p);
    proc.run();
    const auto &tr = proc.trace().trace();
    DepGraphConfig gc;
    for (auto _ : state) {
        auto gs = buildIntervalGraphs(tr, gc);
        benchmark::DoNotOptimize(gs.size());
    }
    state.SetItemsProcessed(state.iterations() * tr.size());
}
BENCHMARK(BM_DagBuild)->Unit(benchmark::kMillisecond);

void
BM_Shaker(benchmark::State &state)
{
    Program p = workloads::build("gcc", 1);
    SimConfig cfg;
    cfg.collectTrace = true;
    cfg.maxInstructions = 40000;
    McdProcessor proc(cfg, p);
    proc.run();
    DepGraphConfig gc;
    ShakerConfig sc;
    for (auto _ : state) {
        state.PauseTiming();
        auto gs = buildIntervalGraphs(proc.trace().trace(), gc);
        state.ResumeTiming();
        for (IntervalGraph &g : gs)
            shake(g, sc, 1e9, 250e6);
    }
}
BENCHMARK(BM_Shaker)->Unit(benchmark::kMillisecond);

void
BM_FullOfflineAnalysis(benchmark::State &state)
{
    Program p = workloads::build("art", 1);
    SimConfig cfg;
    cfg.collectTrace = true;
    McdProcessor proc(cfg, p);
    proc.run();
    OfflineAnalyzer analyzer(
        OfflineAnalyzer::configFor(0.05, DvfsKind::XScale, 0.2));
    for (auto _ : state) {
        AnalysisResult r = analyzer.analyze(proc.trace().trace());
        benchmark::DoNotOptimize(r.schedule.size());
    }
}
BENCHMARK(BM_FullOfflineAnalysis)->Unit(benchmark::kMillisecond);

/**
 * The parallel experiment engine on a two-benchmark mini-matrix
 * (per benchmark: baseline, MCD profile, dyn-1%, dyn-5%, global
 * search), uncached, at jobs=1 vs jobs=hardware. Tracks the speedup
 * the thread-pooled runMatrix delivers in the bench trajectory.
 */
void
BM_MatrixMini(benchmark::State &state)
{
    int jobs = static_cast<int>(state.range(0));
    const std::vector<std::string> names{"adpcm", "mst"};
    ExperimentConfig ec;    // empty cacheDir: caching disabled
    for (auto _ : state) {
        auto rows = runMatrix(ec, names, jobs);
        benchmark::DoNotOptimize(rows.data());
    }
    state.counters["jobs"] = jobs;
}
BENCHMARK(BM_MatrixMini)
    ->Arg(1)
    ->Arg(static_cast<int>(ThreadPool::hardwareJobs()))
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
