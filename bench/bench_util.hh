/**
 * @file
 * Shared plumbing for the figure/table bench binaries: experiment
 * configuration from the environment, and the per-benchmark matrix
 * loop with on-disk caching so fig5/6/7 share one set of runs.
 */

#ifndef MCD_BENCH_BENCH_UTIL_HH
#define MCD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "core/experiment.hh"
#include "obs/host_prof.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace benchutil {

/**
 * Experiment configuration honoring MCD_SCALE / MCD_CACHE_DIR /
 * MCD_SEED, plus the robustness knobs: MCD_WATCHDOG_EDGES /
 * MCD_WATCHDOG_TICKS (no-progress and simulated-time watchdog
 * budgets, 0 = off / unlimited) and MCD_LEG_ATTEMPTS (bounded retry
 * for transient faults).
 */
inline ExperimentConfig
configFromEnv(DvfsKind model = DvfsKind::XScale)
{
    ExperimentConfig ec;
    ec.model = model;
    if (const char *s = std::getenv("MCD_SCALE"))
        ec.scale = std::max(1, std::atoi(s));
    if (const char *d = std::getenv("MCD_CACHE_DIR"))
        ec.cacheDir = d;
    else
        ec.cacheDir = ".mcd-bench-cache";
    if (const char *seed = std::getenv("MCD_SEED"))
        ec.seed = std::strtoull(seed, nullptr, 10);
    if (const char *e = std::getenv("MCD_WATCHDOG_EDGES"))
        ec.watchdogNoProgressEdges = std::strtoull(e, nullptr, 10);
    if (const char *t = std::getenv("MCD_WATCHDOG_TICKS"))
        ec.watchdogMaxTicks = std::strtoull(t, nullptr, 10);
    if (const char *a = std::getenv("MCD_LEG_ATTEMPTS"))
        ec.legAttempts = std::max(1, std::atoi(a));
    // MCD_SAMPLING=detailed=N,ff=N,warmup=N[,tol=F] turns on sampled
    // simulation (runMatrix would apply this too via effectiveConfig;
    // parsing here keeps the knob visible in the returned config).
    if (const char *smp = std::getenv("MCD_SAMPLING"); smp && *smp)
        ec.sampling = SamplingParams::fromSpec(smp);
    return ec;
}

#ifdef BENCHMARK_BENCHMARK_H_
/**
 * Shared aggregation settings for the perf-gated kernel
 * microbenchmarks (micro_speed's BM_TimingSimulation /
 * BM_FunctionalExecution / BM_SampledSimulation): a fixed repetition
 * count with median-only reporting, so CI's A/B gate always compares
 * the same statistic at the same sample size on both sides.
 */
inline void
kernelBenchDefaults(benchmark::internal::Benchmark *b)
{
    b->Repetitions(5);
    b->ReportAggregatesOnly(true);
    b->Unit(benchmark::kMillisecond);
}
#endif

/**
 * Benchmark list for a matrix run: all 16 workloads, or the
 * comma-separated subset named by MCD_BENCHMARKS (unknown names are
 * rejected so a typo cannot silently shrink a figure). The CI smoke
 * job uses this to run a single benchmark with telemetry enabled.
 */
inline std::vector<std::string>
benchmarkNamesFromEnv()
{
    std::vector<std::string> names;
    const char *filter = std::getenv("MCD_BENCHMARKS");
    if (!filter || !*filter) {
        for (const WorkloadInfo &w : workloads::all())
            names.emplace_back(w.name);
        return names;
    }
    std::string item;
    for (const char *p = filter;; ++p) {
        if (*p && *p != ',') {
            item += *p;
            continue;
        }
        if (!item.empty()) {
            bool known = false;
            for (const WorkloadInfo &w : workloads::all())
                known = known || item == w.name;
            if (!known) {
                std::fprintf(stderr,
                             "MCD_BENCHMARKS: unknown benchmark '%s'\n",
                             item.c_str());
                std::exit(2);
            }
            names.push_back(item);
            item.clear();
        }
        if (!*p)
            break;
    }
    if (names.empty()) {
        std::fprintf(stderr, "MCD_BENCHMARKS: empty benchmark list\n");
        std::exit(2);
    }
    return names;
}

/**
 * Run the full five-configuration matrix for all 16 benchmarks (or
 * the MCD_BENCHMARKS subset), fanned across MCD_JOBS worker threads
 * (default: hardware concurrency; 1 = serial). Output order and
 * results are identical for every job count.
 */
inline std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &ec)
{
    std::vector<std::string> names = benchmarkNamesFromEnv();
    int jobs = static_cast<int>(ThreadPool::jobsFromEnv());
    std::fprintf(stderr, "  matrix: %zu benchmarks, %d jobs\n",
                 names.size(), jobs);
    try {
        return mcd::runMatrix(ec, names, jobs, /*progress=*/true);
    } catch (const FatalError &e) {
        // Configuration errors (bad env knobs, malformed fault plan).
        // Exit code 2 = usage error, distinct from the partial/total
        // run-failure codes finish() returns.
        std::fprintf(stderr, "fatal: %s\n", e.what());
        std::exit(2);
    }
}

/**
 * End-of-run epilogue for matrix drivers: summarize any failed legs
 * and invariant violations on stderr and return the process exit
 * code — exitOk when everything completed, exitPartialFailure /
 * exitTotalFailure otherwise, so CI can tell a degraded figure from a
 * useless one. An otherwise-clean matrix with recorded invariant
 * violations exits exitInvariantViolation when MCD_INVARIANTS_FATAL
 * is set (leg failures outrank the invariant code). Also rewrites the
 * MCD_PROF_OUT host profile so it includes the render phases.
 */
inline int
finish(const std::vector<BenchmarkResults> &rows)
{
    writeHostProfileFromEnv();
    int code = matrixExitCode(rows);
    if (code != exitOk) {
        std::size_t failed = 0;
        std::size_t total = 0;
        for (const BenchmarkResults &r : rows) {
            failed += r.failedLegs();
            total += r.totalLegs();
        }
        std::fprintf(stderr,
                     "  matrix degraded: %zu of %zu legs failed "
                     "(exit %d)\n",
                     failed, total, code);
    }
    if (std::uint64_t v = countInvariantViolations(rows)) {
        bool fatal = code == exitOk && invariantsFatalFromEnv();
        std::fprintf(stderr,
                     "  invariants: %llu violation(s) recorded%s\n",
                     static_cast<unsigned long long>(v),
                     fatal ? " (MCD_INVARIANTS_FATAL: exit 5)" : "");
        if (fatal)
            code = exitInvariantViolation;
    }
    return code;
}

/**
 * Handle the shared figure-binary command line: `--tournament` runs
 * the registered-controller tournament instead of the paper's default
 * matrix (same as MCD_TOURNAMENT=1; the flag just exports the
 * variable so the env-driven plumbing stays the single source of
 * truth). `--invariants <spec>` enables the telemetry invariant
 * engine (same as MCD_INVARIANTS=<spec>; "default" selects the
 * built-in rule set). Unknown flags are rejected with a usage
 * message.
 */
inline void
parseFigureArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tournament") {
            ::setenv("MCD_TOURNAMENT", "1", /*overwrite=*/1);
            continue;
        }
        if (arg == "--invariants") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --invariants needs a spec "
                             "('default' or a rule list)\n",
                             argv[0]);
                std::exit(2);
            }
            ::setenv("MCD_INVARIANTS", argv[++i], /*overwrite=*/1);
            continue;
        }
        std::fprintf(stderr,
                     "usage: %s [--tournament] [--invariants <spec>]\n"
                     "  unknown argument '%s'\n",
                     argv[0], arg.c_str());
        std::exit(2);
    }
}

/**
 * Print one paper-style figure: a metric for every dynamic-control
 * leg per benchmark (the column set follows the configured legs, so
 * a tournament matrix grows one column per registered controller)
 * plus the average row. In the default matrix the "online" column
 * (queue-driven attack/decay controller) extends the paper's four
 * with the practical control loop the oracle columns bound.
 */
inline void
printFigure(const char *title,
            const std::vector<BenchmarkResults> &rows,
            const std::function<double(const BenchmarkResults &,
                                       const RunResult &)> &metric)
{
    obs::HostProfiler::Scope prof =
        obs::HostProfiler::instance().phase("render", title);
    std::printf("%s\n\n", title);
    if (rows.empty()) {
        std::printf("(no benchmarks)\n");
        return;
    }
    TextTable t;
    std::vector<std::string> header{"benchmark", "baseline MCD"};
    for (const ControllerLeg &l : rows[0].legs)
        header.push_back(l.spec.display);
    t.header(std::move(header));
    const std::size_t numCfgs = rows[0].legs.size() + 1;
    std::vector<double> sum(numCfgs, 0.0);
    std::vector<std::size_t> count(numCfgs, 0);
    for (const BenchmarkResults &r : rows) {
        std::vector<const RunResult *> cfgs{&r.mcdBaseline};
        for (const ControllerLeg &l : r.legs)
            cfgs.push_back(&l.run);
        std::vector<std::string> cells{r.name};
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            // Metrics are ratios against the baseline leg: with
            // either run dead there is no number to print, and the
            // column average covers only the legs that completed.
            if (cfgs[i]->failed() || r.baseline.failed()) {
                cells.push_back("failed");
                continue;
            }
            double v = metric(r, *cfgs[i]);
            sum[i] += v;
            ++count[i];
            cells.push_back(formatPercent(v));
        }
        t.row(std::move(cells));
    }
    t.separator();
    std::vector<std::string> avg{"average"};
    for (std::size_t i = 0; i < numCfgs; ++i) {
        avg.push_back(count[i]
                      ? formatPercent(sum[i] /
                                      static_cast<double>(count[i]))
                      : std::string("n/a"));
    }
    t.row(std::move(avg));
    std::fputs(t.render().c_str(), stdout);
}

/**
 * Print the tournament leaderboard: every dynamic-control leg ranked
 * by mean energy-delay-product improvement across the matrix, with
 * its mean energy savings and performance degradation alongside.
 */
inline void
printLeaderboard(const std::vector<BenchmarkResults> &rows)
{
    obs::HostProfiler::Scope prof =
        obs::HostProfiler::instance().phase("render", "leaderboard");
    std::vector<LeaderboardRow> board = computeLeaderboard(rows);
    std::printf("\nController tournament leaderboard "
                "(mean over %zu benchmarks, ranked by EDP "
                "improvement)\n\n",
                rows.size());
    TextTable t;
    t.header({"rank", "leg", "kind", "EDP improvement",
              "energy savings", "perf degradation", "completed"});
    for (std::size_t i = 0; i < board.size(); ++i) {
        const LeaderboardRow &lr = board[i];
        const char *kind = "controller";
        if (lr.spec.kind == LegSpec::Kind::ScheduleReplay)
            kind = "schedule-replay";
        else if (lr.spec.kind == LegSpec::Kind::GlobalSearch)
            kind = "global-search";
        t.row({std::to_string(i + 1), lr.spec.name, kind,
               lr.completed ? formatPercent(lr.meanEdpImprovement)
                            : std::string("n/a"),
               lr.completed ? formatPercent(lr.meanEnergySavings)
                            : std::string("n/a"),
               lr.completed ? formatPercent(lr.meanPerfDegradation)
                            : std::string("n/a"),
               std::to_string(lr.completed) + "/" +
                   std::to_string(lr.completed + lr.failed)});
    }
    std::fputs(t.render().c_str(), stdout);
}

} // namespace benchutil
} // namespace mcd

#endif // MCD_BENCH_BENCH_UTIL_HH
