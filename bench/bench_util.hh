/**
 * @file
 * Shared plumbing for the figure/table bench binaries: experiment
 * configuration from the environment, and the per-benchmark matrix
 * loop with on-disk caching so fig5/6/7 share one set of runs.
 */

#ifndef MCD_BENCH_BENCH_UTIL_HH
#define MCD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "core/experiment.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace benchutil {

/** Experiment configuration honoring MCD_SCALE / MCD_CACHE_DIR / seed. */
inline ExperimentConfig
configFromEnv(DvfsKind model = DvfsKind::XScale)
{
    ExperimentConfig ec;
    ec.model = model;
    if (const char *s = std::getenv("MCD_SCALE"))
        ec.scale = std::max(1, std::atoi(s));
    if (const char *d = std::getenv("MCD_CACHE_DIR"))
        ec.cacheDir = d;
    else
        ec.cacheDir = ".mcd-bench-cache";
    if (const char *seed = std::getenv("MCD_SEED"))
        ec.seed = std::strtoull(seed, nullptr, 10);
    return ec;
}

/**
 * Benchmark list for a matrix run: all 16 workloads, or the
 * comma-separated subset named by MCD_BENCHMARKS (unknown names are
 * rejected so a typo cannot silently shrink a figure). The CI smoke
 * job uses this to run a single benchmark with telemetry enabled.
 */
inline std::vector<std::string>
benchmarkNamesFromEnv()
{
    std::vector<std::string> names;
    const char *filter = std::getenv("MCD_BENCHMARKS");
    if (!filter || !*filter) {
        for (const WorkloadInfo &w : workloads::all())
            names.emplace_back(w.name);
        return names;
    }
    std::string item;
    for (const char *p = filter;; ++p) {
        if (*p && *p != ',') {
            item += *p;
            continue;
        }
        if (!item.empty()) {
            bool known = false;
            for (const WorkloadInfo &w : workloads::all())
                known = known || item == w.name;
            if (!known) {
                std::fprintf(stderr,
                             "MCD_BENCHMARKS: unknown benchmark '%s'\n",
                             item.c_str());
                std::exit(2);
            }
            names.push_back(item);
            item.clear();
        }
        if (!*p)
            break;
    }
    if (names.empty()) {
        std::fprintf(stderr, "MCD_BENCHMARKS: empty benchmark list\n");
        std::exit(2);
    }
    return names;
}

/**
 * Run the full five-configuration matrix for all 16 benchmarks (or
 * the MCD_BENCHMARKS subset), fanned across MCD_JOBS worker threads
 * (default: hardware concurrency; 1 = serial). Output order and
 * results are identical for every job count.
 */
inline std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &ec)
{
    std::vector<std::string> names = benchmarkNamesFromEnv();
    int jobs = static_cast<int>(ThreadPool::jobsFromEnv());
    std::fprintf(stderr, "  matrix: %zu benchmarks, %d jobs\n",
                 names.size(), jobs);
    return mcd::runMatrix(ec, names, jobs, /*progress=*/true);
}

/**
 * Print one paper-style figure: a metric for the five non-baseline
 * configurations per benchmark plus the average row. The "online"
 * column (queue-driven attack/decay controller) extends the paper's
 * four with the practical control loop the oracle columns bound.
 */
inline void
printFigure(const char *title,
            const std::vector<BenchmarkResults> &rows,
            const std::function<double(const BenchmarkResults &,
                                       const RunResult &)> &metric)
{
    std::printf("%s\n\n", title);
    TextTable t;
    t.header({"benchmark", "baseline MCD", "dynamic-1%", "dynamic-5%",
              "global", "online"});
    constexpr int numCfgs = 5;
    double sum[numCfgs] = {};
    for (const BenchmarkResults &r : rows) {
        const RunResult *cfgs[numCfgs] = {&r.mcdBaseline, &r.dyn1,
                                          &r.dyn5, &r.global, &r.online};
        std::vector<std::string> cells{r.name};
        for (int i = 0; i < numCfgs; ++i) {
            double v = metric(r, *cfgs[i]);
            sum[i] += v;
            cells.push_back(formatPercent(v));
        }
        t.row(std::move(cells));
    }
    t.separator();
    std::vector<std::string> avg{"average"};
    for (double s : sum)
        avg.push_back(formatPercent(s / static_cast<double>(rows.size())));
    t.row(std::move(avg));
    std::fputs(t.render().c_str(), stdout);
}

} // namespace benchutil
} // namespace mcd

#endif // MCD_BENCH_BENCH_UTIL_HH
