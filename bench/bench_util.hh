/**
 * @file
 * Shared plumbing for the figure/table bench binaries: experiment
 * configuration from the environment, and the per-benchmark matrix
 * loop with on-disk caching so fig5/6/7 share one set of runs.
 */

#ifndef MCD_BENCH_BENCH_UTIL_HH
#define MCD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "core/experiment.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace benchutil {

/**
 * Experiment configuration honoring MCD_SCALE / MCD_CACHE_DIR /
 * MCD_SEED, plus the robustness knobs: MCD_WATCHDOG_EDGES /
 * MCD_WATCHDOG_TICKS (no-progress and simulated-time watchdog
 * budgets, 0 = off / unlimited) and MCD_LEG_ATTEMPTS (bounded retry
 * for transient faults).
 */
inline ExperimentConfig
configFromEnv(DvfsKind model = DvfsKind::XScale)
{
    ExperimentConfig ec;
    ec.model = model;
    if (const char *s = std::getenv("MCD_SCALE"))
        ec.scale = std::max(1, std::atoi(s));
    if (const char *d = std::getenv("MCD_CACHE_DIR"))
        ec.cacheDir = d;
    else
        ec.cacheDir = ".mcd-bench-cache";
    if (const char *seed = std::getenv("MCD_SEED"))
        ec.seed = std::strtoull(seed, nullptr, 10);
    if (const char *e = std::getenv("MCD_WATCHDOG_EDGES"))
        ec.watchdogNoProgressEdges = std::strtoull(e, nullptr, 10);
    if (const char *t = std::getenv("MCD_WATCHDOG_TICKS"))
        ec.watchdogMaxTicks = std::strtoull(t, nullptr, 10);
    if (const char *a = std::getenv("MCD_LEG_ATTEMPTS"))
        ec.legAttempts = std::max(1, std::atoi(a));
    // MCD_SAMPLING=detailed=N,ff=N,warmup=N[,tol=F] turns on sampled
    // simulation (runMatrix would apply this too via effectiveConfig;
    // parsing here keeps the knob visible in the returned config).
    if (const char *smp = std::getenv("MCD_SAMPLING"); smp && *smp)
        ec.sampling = SamplingParams::fromSpec(smp);
    return ec;
}

#ifdef BENCHMARK_BENCHMARK_H_
/**
 * Shared aggregation settings for the perf-gated kernel
 * microbenchmarks (micro_speed's BM_TimingSimulation /
 * BM_FunctionalExecution / BM_SampledSimulation): a fixed repetition
 * count with median-only reporting, so CI's A/B gate always compares
 * the same statistic at the same sample size on both sides.
 */
inline void
kernelBenchDefaults(benchmark::internal::Benchmark *b)
{
    b->Repetitions(5);
    b->ReportAggregatesOnly(true);
    b->Unit(benchmark::kMillisecond);
}
#endif

/**
 * Benchmark list for a matrix run: all 16 workloads, or the
 * comma-separated subset named by MCD_BENCHMARKS (unknown names are
 * rejected so a typo cannot silently shrink a figure). The CI smoke
 * job uses this to run a single benchmark with telemetry enabled.
 */
inline std::vector<std::string>
benchmarkNamesFromEnv()
{
    std::vector<std::string> names;
    const char *filter = std::getenv("MCD_BENCHMARKS");
    if (!filter || !*filter) {
        for (const WorkloadInfo &w : workloads::all())
            names.emplace_back(w.name);
        return names;
    }
    std::string item;
    for (const char *p = filter;; ++p) {
        if (*p && *p != ',') {
            item += *p;
            continue;
        }
        if (!item.empty()) {
            bool known = false;
            for (const WorkloadInfo &w : workloads::all())
                known = known || item == w.name;
            if (!known) {
                std::fprintf(stderr,
                             "MCD_BENCHMARKS: unknown benchmark '%s'\n",
                             item.c_str());
                std::exit(2);
            }
            names.push_back(item);
            item.clear();
        }
        if (!*p)
            break;
    }
    if (names.empty()) {
        std::fprintf(stderr, "MCD_BENCHMARKS: empty benchmark list\n");
        std::exit(2);
    }
    return names;
}

/**
 * Run the full five-configuration matrix for all 16 benchmarks (or
 * the MCD_BENCHMARKS subset), fanned across MCD_JOBS worker threads
 * (default: hardware concurrency; 1 = serial). Output order and
 * results are identical for every job count.
 */
inline std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &ec)
{
    std::vector<std::string> names = benchmarkNamesFromEnv();
    int jobs = static_cast<int>(ThreadPool::jobsFromEnv());
    std::fprintf(stderr, "  matrix: %zu benchmarks, %d jobs\n",
                 names.size(), jobs);
    try {
        return mcd::runMatrix(ec, names, jobs, /*progress=*/true);
    } catch (const FatalError &e) {
        // Configuration errors (bad env knobs, malformed fault plan).
        // Exit code 2 = usage error, distinct from the partial/total
        // run-failure codes finish() returns.
        std::fprintf(stderr, "fatal: %s\n", e.what());
        std::exit(2);
    }
}

/**
 * End-of-run epilogue for matrix drivers: summarize any failed legs
 * on stderr and return the process exit code — exitOk when everything
 * completed, exitPartialFailure / exitTotalFailure otherwise, so CI
 * can tell a degraded figure from a useless one.
 */
inline int
finish(const std::vector<BenchmarkResults> &rows)
{
    int code = matrixExitCode(rows);
    if (code != exitOk) {
        std::size_t failed = 0;
        for (const BenchmarkResults &r : rows)
            failed += r.failedLegs();
        std::fprintf(stderr,
                     "  matrix degraded: %zu of %zu legs failed "
                     "(exit %d)\n",
                     failed, rows.size() * 6, code);
    }
    return code;
}

/**
 * Print one paper-style figure: a metric for the five non-baseline
 * configurations per benchmark plus the average row. The "online"
 * column (queue-driven attack/decay controller) extends the paper's
 * four with the practical control loop the oracle columns bound.
 */
inline void
printFigure(const char *title,
            const std::vector<BenchmarkResults> &rows,
            const std::function<double(const BenchmarkResults &,
                                       const RunResult &)> &metric)
{
    std::printf("%s\n\n", title);
    TextTable t;
    t.header({"benchmark", "baseline MCD", "dynamic-1%", "dynamic-5%",
              "global", "online"});
    constexpr int numCfgs = 5;
    double sum[numCfgs] = {};
    std::size_t count[numCfgs] = {};
    for (const BenchmarkResults &r : rows) {
        const RunResult *cfgs[numCfgs] = {&r.mcdBaseline, &r.dyn1,
                                          &r.dyn5, &r.global, &r.online};
        std::vector<std::string> cells{r.name};
        for (int i = 0; i < numCfgs; ++i) {
            // Metrics are ratios against the baseline leg: with
            // either run dead there is no number to print, and the
            // column average covers only the legs that completed.
            if (cfgs[i]->failed() || r.baseline.failed()) {
                cells.push_back("failed");
                continue;
            }
            double v = metric(r, *cfgs[i]);
            sum[i] += v;
            ++count[i];
            cells.push_back(formatPercent(v));
        }
        t.row(std::move(cells));
    }
    t.separator();
    std::vector<std::string> avg{"average"};
    for (int i = 0; i < numCfgs; ++i) {
        avg.push_back(count[i]
                      ? formatPercent(sum[i] /
                                      static_cast<double>(count[i]))
                      : std::string("n/a"));
    }
    t.row(std::move(avg));
    std::fputs(t.render().c_str(), stdout);
}

} // namespace benchutil
} // namespace mcd

#endif // MCD_BENCH_BENCH_UTIL_HH
