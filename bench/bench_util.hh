/**
 * @file
 * Shared plumbing for the figure/table bench binaries: experiment
 * configuration from the resolved RunSpec (defaults < config file <
 * env vars < CLI flags; see docs/config-reference.md), and the
 * per-benchmark matrix loop with on-disk caching so fig5/6/7 share
 * one set of runs.
 */

#ifndef MCD_BENCH_BENCH_UTIL_HH
#define MCD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "config/registry.hh"
#include "config/runspec.hh"
#include "core/experiment.hh"
#include "obs/host_prof.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace benchutil {

/**
 * Configuration errors (bad option values, malformed fault plans,
 * unknown benchmark names) exit with the usage code 2, distinct from
 * the partial/total run-failure codes finish() returns.
 */
template <typename Fn>
inline auto
orUsageError(Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        std::exit(2);
    }
}

/**
 * Experiment configuration from the resolved RunSpec: scale, seed,
 * cacheDir (defaulting to .mcd-bench-cache when the option is left
 * unset; an explicitly empty MCD_CACHE_DIR still disables caching),
 * the robustness knobs (watchdogEdges / watchdogTicks, legAttempts),
 * sampling, and the DVFS model override.
 */
inline ExperimentConfig
configFromEnv(DvfsKind model = DvfsKind::XScale)
{
    return orUsageError([&] {
        return experimentConfigFromSpec(config::RunSpec::resolve(),
                                        model, ".mcd-bench-cache");
    });
}

#ifdef BENCHMARK_BENCHMARK_H_
/**
 * Shared aggregation settings for the perf-gated kernel
 * microbenchmarks (micro_speed's BM_TimingSimulation /
 * BM_FunctionalExecution / BM_SampledSimulation): a fixed repetition
 * count with median-only reporting, so CI's A/B gate always compares
 * the same statistic at the same sample size on both sides.
 */
inline void
kernelBenchDefaults(benchmark::internal::Benchmark *b)
{
    b->Repetitions(5);
    b->ReportAggregatesOnly(true);
    b->Unit(benchmark::kMillisecond);
}
#endif

/**
 * Benchmark list for a matrix run: all 16 workloads, or the subset
 * named by the benchmarks option (unknown names are rejected so a
 * typo cannot silently shrink a figure). The CI smoke job uses this
 * to run a single benchmark with telemetry enabled.
 */
inline std::vector<std::string>
benchmarkNamesFromEnv()
{
    return orUsageError([] {
        return benchmarkNamesFromSpec(config::RunSpec::resolve());
    });
}

/**
 * Run the full five-configuration matrix for all 16 benchmarks (or
 * the benchmarks-option subset), fanned across the jobs-option worker
 * threads (default: hardware concurrency; 1 = serial). Output order
 * and results are identical for every job count.
 */
inline std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &ec)
{
    return orUsageError([&] {
        std::vector<std::string> names =
            benchmarkNamesFromSpec(config::RunSpec::resolve());
        int jobs = config::RunSpec::resolve().jobs();
        std::fprintf(stderr, "  matrix: %zu benchmarks, %d jobs\n",
                     names.size(), jobs);
        return mcd::runMatrix(ec, names, jobs, /*progress=*/true);
    });
}

/**
 * End-of-run epilogue for matrix drivers: summarize any failed legs
 * and invariant violations on stderr and return the process exit
 * code — exitOk when everything completed, exitPartialFailure /
 * exitTotalFailure otherwise, so CI can tell a degraded figure from a
 * useless one. An otherwise-clean matrix with recorded invariant
 * violations exits exitInvariantViolation when MCD_INVARIANTS_FATAL
 * is set (leg failures outrank the invariant code). Also rewrites the
 * MCD_PROF_OUT host profile so it includes the render phases.
 */
inline int
finish(const std::vector<BenchmarkResults> &rows)
{
    writeHostProfileFromEnv();
    int code = matrixExitCode(rows);
    if (code != exitOk) {
        std::size_t failed = 0;
        std::size_t total = 0;
        for (const BenchmarkResults &r : rows) {
            failed += r.failedLegs();
            total += r.totalLegs();
        }
        std::fprintf(stderr,
                     "  matrix degraded: %zu of %zu legs failed "
                     "(exit %d)\n",
                     failed, total, code);
    }
    if (std::uint64_t v = countInvariantViolations(rows)) {
        bool fatal = code == exitOk && invariantsFatalFromEnv();
        std::fprintf(stderr,
                     "  invariants: %llu violation(s) recorded%s\n",
                     static_cast<unsigned long long>(v),
                     fatal ? " (MCD_INVARIANTS_FATAL: exit 5)" : "");
        if (fatal)
            code = exitInvariantViolation;
    }
    return code;
}

/**
 * Handle the shared figure-binary command line, driven entirely by
 * the option registry: every registered option is reachable as
 * `--<flag> <value>` or `--<flag>=<value>` (booleans may omit the
 * value: `--tournament` alone means true), becoming the
 * highest-precedence resolution layer above env vars and the config
 * file. `--dump-config-schema` prints the generated configuration
 * reference (docs/config-reference.md) to stdout and exits; `--help`
 * lists the flags. Unknown flags are rejected with a usage message.
 */
inline void
parseFigureArgs(int argc, char **argv)
{
    auto usage = [&](std::FILE *to) {
        std::fprintf(to,
                     "usage: %s [--<option> <value>]... "
                     "[--dump-config-schema]\n"
                     "  options (see docs/config-reference.md):\n",
                     argv[0]);
        for (const config::OptionDef &o : config::options()) {
            std::fprintf(to, "    %s <%s>%s\n", o.flag,
                         config::typeName(o.type),
                         *o.defaultValue
                             ? (std::string(" (default ") +
                                o.defaultValue + ")").c_str()
                             : "");
        }
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--dump-config-schema") {
            config::writeSchemaMarkdown(std::cout);
            std::exit(0);
        }
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        }
        std::string value;
        bool haveValue = false;
        if (std::size_t eq = arg.find('=');
            eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg.resize(eq);
            haveValue = true;
        }
        const config::OptionDef *opt = config::findByFlag(arg);
        if (!opt) {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], argv[i]);
            usage(stderr);
            std::exit(2);
        }
        if (!haveValue) {
            // Boolean flags never consume a value word (`--tournament
            // adpcm` must not eat a benchmark name); everything else
            // takes the next argument.
            if (opt->type == config::Type::Bool) {
                value = "1";
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                std::fprintf(stderr, "%s: %s needs a <%s> value\n",
                             argv[0], opt->flag,
                             config::typeName(opt->type));
                std::exit(2);
            }
        }
        config::setFlagOverride(opt->name, value);
    }
}

/**
 * Print one paper-style figure: a metric for every dynamic-control
 * leg per benchmark (the column set follows the configured legs, so
 * a tournament matrix grows one column per registered controller)
 * plus the average row. In the default matrix the "online" column
 * (queue-driven attack/decay controller) extends the paper's four
 * with the practical control loop the oracle columns bound.
 */
inline void
printFigure(const char *title,
            const std::vector<BenchmarkResults> &rows,
            const std::function<double(const BenchmarkResults &,
                                       const RunResult &)> &metric)
{
    obs::HostProfiler::Scope prof =
        obs::HostProfiler::instance().phase("render", title);
    std::printf("%s\n\n", title);
    if (rows.empty()) {
        std::printf("(no benchmarks)\n");
        return;
    }
    TextTable t;
    std::vector<std::string> header{"benchmark", "baseline MCD"};
    for (const ControllerLeg &l : rows[0].legs)
        header.push_back(l.spec.display);
    t.header(std::move(header));
    const std::size_t numCfgs = rows[0].legs.size() + 1;
    std::vector<double> sum(numCfgs, 0.0);
    std::vector<std::size_t> count(numCfgs, 0);
    for (const BenchmarkResults &r : rows) {
        std::vector<const RunResult *> cfgs{&r.mcdBaseline};
        for (const ControllerLeg &l : r.legs)
            cfgs.push_back(&l.run);
        std::vector<std::string> cells{r.name};
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            // Metrics are ratios against the baseline leg: with
            // either run dead there is no number to print, and the
            // column average covers only the legs that completed.
            if (cfgs[i]->failed() || r.baseline.failed()) {
                cells.push_back("failed");
                continue;
            }
            double v = metric(r, *cfgs[i]);
            sum[i] += v;
            ++count[i];
            cells.push_back(formatPercent(v));
        }
        t.row(std::move(cells));
    }
    t.separator();
    std::vector<std::string> avg{"average"};
    for (std::size_t i = 0; i < numCfgs; ++i) {
        avg.push_back(count[i]
                      ? formatPercent(sum[i] /
                                      static_cast<double>(count[i]))
                      : std::string("n/a"));
    }
    t.row(std::move(avg));
    std::fputs(t.render().c_str(), stdout);
}

/**
 * Print the tournament leaderboard: every dynamic-control leg ranked
 * by mean energy-delay-product improvement across the matrix, with
 * its mean energy savings and performance degradation alongside.
 */
inline void
printLeaderboard(const std::vector<BenchmarkResults> &rows)
{
    obs::HostProfiler::Scope prof =
        obs::HostProfiler::instance().phase("render", "leaderboard");
    std::vector<LeaderboardRow> board = computeLeaderboard(rows);
    std::printf("\nController tournament leaderboard "
                "(mean over %zu benchmarks, ranked by EDP "
                "improvement)\n\n",
                rows.size());
    TextTable t;
    t.header({"rank", "leg", "kind", "EDP improvement",
              "energy savings", "perf degradation", "completed"});
    for (std::size_t i = 0; i < board.size(); ++i) {
        const LeaderboardRow &lr = board[i];
        const char *kind = "controller";
        if (lr.spec.kind == LegSpec::Kind::ScheduleReplay)
            kind = "schedule-replay";
        else if (lr.spec.kind == LegSpec::Kind::GlobalSearch)
            kind = "global-search";
        t.row({std::to_string(i + 1), lr.spec.name, kind,
               lr.completed ? formatPercent(lr.meanEdpImprovement)
                            : std::string("n/a"),
               lr.completed ? formatPercent(lr.meanEnergySavings)
                            : std::string("n/a"),
               lr.completed ? formatPercent(lr.meanPerfDegradation)
                            : std::string("n/a"),
               std::to_string(lr.completed) + "/" +
                   std::to_string(lr.completed + lr.failed)});
    }
    std::fputs(t.render().c_str(), stdout);
}

} // namespace benchutil
} // namespace mcd

#endif // MCD_BENCH_BENCH_UTIL_HH
