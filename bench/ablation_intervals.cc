/**
 * @file
 * Ablation: sensitivity of the offline tool to its analysis interval
 * length. The paper uses 50K-cycle intervals ("the maximum for which
 * the DAG will fit in cache on our simulation servers"); shorter
 * intervals track phases more finely but leave less dilation budget
 * per reconfiguration, longer ones average phases away.
 */

#include <cstdio>

#include "analysis/analyzer.hh"
#include "bench_util.hh"
#include "core/processor.hh"

using namespace mcd;

namespace {

struct Outcome
{
    double degradation = 0.0;
    double energySavings = 0.0;
    std::uint64_t reconfigs = 0;
};

Outcome
runWithInterval(const Program &p, Tick interval, double dilation,
                std::uint64_t seed)
{
    SimConfig baseCfg;
    baseCfg.clocking = ClockingStyle::SingleClock;
    baseCfg.seed = seed;
    RunResult base = McdProcessor(baseCfg, p).run();

    SimConfig profCfg;
    profCfg.clocking = ClockingStyle::Mcd;
    profCfg.collectTrace = true;
    profCfg.seed = seed;
    McdProcessor prof(profCfg, p);
    prof.run();

    AnalyzerConfig ac =
        OfflineAnalyzer::configFor(dilation, DvfsKind::XScale, 0.2);
    ac.graph.intervalLength = interval;
    OfflineAnalyzer analyzer(ac);
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());

    SimConfig dynCfg = profCfg;
    dynCfg.collectTrace = false;
    dynCfg.dvfs = DvfsKind::XScale;
    dynCfg.dvfsTimeScale = 0.2;
    dynCfg.schedule = &analysis.schedule;
    RunResult r = McdProcessor(dynCfg, p).run();

    Outcome o;
    o.degradation = static_cast<double>(r.execTime) /
        static_cast<double>(base.execTime) - 1.0;
    o.energySavings = 1.0 - r.totalEnergy / base.totalEnergy;
    for (int d = 1; d < numDomains; ++d)
        o.reconfigs += r.domains[d].reconfigurations;
    return o;
}

} // namespace

int
main()
{
    ExperimentConfig ec = benchutil::configFromEnv();
    const char *benches[] = {"art", "gcc", "power"};
    const Tick intervals[] = {10'000'000, 25'000'000, 50'000'000,
                              100'000'000};

    std::printf("Ablation: dynamic-5%% outcome vs analysis interval "
                "length (paper: 50K cycles = 50 us)\n\n");
    TextTable t;
    t.header({"benchmark", "interval", "perf cost", "energy saved",
              "reconfigs"});
    for (const char *name : benches) {
        Program p = workloads::build(name, ec.scale);
        for (Tick iv : intervals) {
            std::fprintf(stderr, "  %s @ %llu us...\n", name,
                         static_cast<unsigned long long>(iv / 1000000));
            Outcome o = runWithInterval(p, iv, ec.dilationHigh, ec.seed);
            char ivs[32];
            std::snprintf(ivs, sizeof(ivs), "%lluK cycles",
                          static_cast<unsigned long long>(iv / 1000000));
            t.row({name, ivs, formatPercent(o.degradation),
                   formatPercent(o.energySavings),
                   std::to_string(o.reconfigs)});
        }
        t.separator();
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nThe paper's 50K-cycle choice balances phase "
                "tracking against per-interval dilation budget.\n");
    return 0;
}
