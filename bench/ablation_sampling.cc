/**
 * @file
 * Validation harness for sampled simulation: the error-vs-speed
 * trade-off of the SMARTS-style interval sampler across the full
 * 16-benchmark suite.
 *
 * For every benchmark the harness runs the full-detail MCD timing
 * simulation once as the reference, then re-runs it at a sweep of
 * sampling operating points (from 50% detailed down to 2%), reporting
 * the relative error of sampled execTime / totalEnergy against the
 * reference and the wall-clock speedup of the sampled kernel. The
 * final table checks every benchmark at the default operating point
 * against SamplingParams::tolerance — the error knob's stated
 * accuracy contract — and the process exits non-zero if any
 * benchmark lands outside it, so CI can gate on the contract.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/processor.hh"

using namespace mcd;

namespace {

struct TimedRun
{
    RunResult result;
    double wallSeconds = 0.0;
};

TimedRun
timedRun(const Program &p, const ExperimentConfig &ec,
         const std::optional<SamplingParams> &sampling)
{
    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.seed = ec.seed;
    cfg.sampling = sampling;
    auto t0 = std::chrono::steady_clock::now();
    McdProcessor proc(cfg, p);
    TimedRun out{proc.run(), 0.0};
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

double
relErr(double sampled, double full)
{
    return full != 0.0 ? std::fabs(sampled - full) / full : 0.0;
}

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace

int
main()
{
    ExperimentConfig ec = benchutil::configFromEnv();
    std::vector<std::string> names = benchutil::benchmarkNamesFromEnv();

    // Operating points, most detailed first. The label is the detailed
    // fraction d / (d + ff); the window size stays at the default 1K
    // commits (250 warm-up) so the sweep varies only the fraction.
    struct Point
    {
        const char *label;
        SamplingParams params;
    };
    const Point points[] = {
        {"50%", {1000, 1000, 250}},
        {"20%", {1000, 4000, 250}},
        {"10%", {1000, 9000, 250}},
        {"5%", {1000, 19000, 250}},
        {"2%", {1000, 49000, 250}},
    };
    constexpr int numPoints = 5;
    const SamplingParams defaults{};    // contract-checked point

    std::printf("Ablation: sampled-simulation error vs speed\n"
                "(per benchmark: full-detail reference, then sampled "
                "at decreasing\ndetailed fractions; errors are "
                "relative to the full-detail run)\n\n");

    double sumTimeErr[numPoints] = {};
    double sumEnergyErr[numPoints] = {};
    double maxTimeErr[numPoints] = {};
    double maxEnergyErr[numPoints] = {};
    double fullWall = 0.0;
    double sampledWall[numPoints] = {};

    bool contractOk = true;
    TextTable contract;
    contract.header({"benchmark", "windows", "ff insts", "time err",
                     "energy err", "cv(time)", "speedup", "verdict"});

    for (const std::string &name : names) {
        std::fprintf(stderr, "  sampling sweep: %s...\n", name.c_str());
        Program p = workloads::build(name, ec.scale);
        TimedRun full = timedRun(p, ec, std::nullopt);
        fullWall += full.wallSeconds;

        for (int i = 0; i < numPoints; ++i) {
            TimedRun s = timedRun(p, ec, points[i].params);
            sampledWall[i] += s.wallSeconds;
            double te = relErr(static_cast<double>(s.result.execTime),
                               static_cast<double>(full.result.execTime));
            double ee =
                relErr(s.result.totalEnergy, full.result.totalEnergy);
            sumTimeErr[i] += te;
            sumEnergyErr[i] += ee;
            maxTimeErr[i] = std::max(maxTimeErr[i], te);
            maxEnergyErr[i] = std::max(maxEnergyErr[i], ee);
        }

        // Contract row: the default operating point against its
        // stated tolerance.
        TimedRun d = timedRun(p, ec, defaults);
        double te = relErr(static_cast<double>(d.result.execTime),
                           static_cast<double>(full.result.execTime));
        double ee = relErr(d.result.totalEnergy, full.result.totalEnergy);
        bool ok = te <= defaults.tolerance && ee <= defaults.tolerance;
        contractOk = contractOk && ok;
        const SamplingSummary &ss = *d.result.sampling;
        contract.row(
            {name, std::to_string(ss.windows),
             std::to_string(ss.ffExecuted), formatPercent(te),
             formatPercent(ee), fmt("%.3f", ss.timePerInstCv),
             fmt("%.1fx", full.wallSeconds /
                              std::max(d.wallSeconds, 1e-9)),
             ok ? "ok" : "EXCEEDS"});
    }

    {
        TextTable t;
        t.header({"detailed fraction", "avg time err", "max time err",
                  "avg energy err", "max energy err", "speedup"});
        double n = static_cast<double>(names.size());
        for (int i = 0; i < numPoints; ++i) {
            t.row({points[i].label, formatPercent(sumTimeErr[i] / n),
                   formatPercent(maxTimeErr[i]),
                   formatPercent(sumEnergyErr[i] / n),
                   formatPercent(maxEnergyErr[i]),
                   fmt("%.1fx", fullWall /
                                    std::max(sampledWall[i], 1e-9))});
        }
        std::fputs(t.render().c_str(), stdout);
    }

    std::printf("\nAccuracy contract at the default operating point "
                "(%s, tolerance %.0f%%):\n\n",
                defaults.spec().c_str(), defaults.tolerance * 100.0);
    std::fputs(contract.render().c_str(), stdout);

    if (!contractOk) {
        std::printf("\nFAIL: at least one benchmark exceeds the "
                    "sampling tolerance.\n");
        return 1;
    }
    std::printf("\nAll %zu benchmarks within the stated tolerance; "
                "smaller detailed\nfractions buy speed at the cost of "
                "error, bounded by the sweep above.\n",
                names.size());
    return 0;
}
