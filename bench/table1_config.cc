/**
 * @file
 * Reproduces paper Table 1: the architectural parameters of the
 * simulated processor. The values printed here are the library's
 * compiled-in defaults; any drift from the paper is a bug, so each
 * row is asserted before printing.
 */

#include <cstdio>
#include <cstdlib>

#include "common/stats.hh"
#include "cpu/params.hh"
#include "mem/hierarchy.hh"

using namespace mcd;

namespace {

void
require(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "Table 1 mismatch: %s\n", what);
        std::exit(1);
    }
}

} // namespace

int
main()
{
    CoreParams c;
    MemParams m;

    require(c.bpred.bimodalSize == 1024, "bimodal size");
    require(c.bpred.l1Size == 1024 && c.bpred.historyBits == 10,
            "PAg level 1");
    require(c.bpred.l2Size == 1024, "PAg level 2");
    require(c.bpred.chooserSize == 4096, "combining predictor");
    require(c.bpred.btbSets == 4096 && c.bpred.btbAssoc == 2, "BTB");
    require(c.mispredictPenalty == 7, "mispredict penalty");
    require(c.decodeWidth == 4, "decode width");
    require(c.intIssueWidth + c.fpIssueWidth == 6, "issue width");
    require(c.retireWidth == 11, "retire width");
    require(m.l1d.sizeBytes == 64 * 1024 && m.l1d.associativity == 2,
            "L1 D-cache");
    require(m.l1i.sizeBytes == 64 * 1024 && m.l1i.associativity == 2,
            "L1 I-cache");
    require(m.l2.sizeBytes == 1024 * 1024 && m.l2.associativity == 1,
            "L2 cache");
    require(m.l1d.latencyCycles == 2, "L1 latency");
    require(m.l2.latencyCycles == 12, "L2 latency");
    require(c.intAlus == 4 && c.intMulDivs == 1, "integer units");
    require(c.fpAlus == 2 && c.fpMulDivs == 1, "FP units");
    require(c.intIssueQueueSize == 20, "int issue queue");
    require(c.fpIssueQueueSize == 15, "FP issue queue");
    require(c.lsqSize == 64, "load/store queue");
    require(c.physIntRegs == 72 && c.physFpRegs == 72,
            "physical registers");
    require(c.robSize == 80, "reorder buffer");

    std::printf("Table 1: Architectural parameters for simulated "
                "processor\n\n");
    TextTable t;
    t.header({"parameter", "value"});
    t.row({"Branch predictor", "comb. of bimodal and 2-level PAg"});
    t.row({"  Level1", "1024 entries, history 10"});
    t.row({"  Level2", "1024 entries"});
    t.row({"  Bimodal predictor size", "1024"});
    t.row({"  Combining predictor size", "4096"});
    t.row({"  BTB", "4096 sets, 2-way"});
    t.row({"Branch Mispredict Penalty", "7"});
    t.row({"Decode Width", "4"});
    t.row({"Issue Width", "6"});
    t.row({"Retire Width", "11"});
    t.row({"L1 Data Cache", "64KB, 2-way set associative"});
    t.row({"L1 Instruction Cache", "64KB, 2-way set associative"});
    t.row({"L2 Unified Cache", "1MB, direct mapped"});
    t.row({"L1 cache latency", "2 cycles"});
    t.row({"L2 cache latency", "12 cycles"});
    t.row({"Integer ALUs", "4 + 1 mult/div unit"});
    t.row({"Floating-Point ALUs", "2 + 1 mult/div/sqrt unit"});
    t.row({"Integer Issue Queue Size", "20 entries"});
    t.row({"Floating-Point Issue Queue Size", "15 entries"});
    t.row({"Load/Store Queue Size", "64"});
    t.row({"Physical Register File Size", "72 integer, 72 floating-point"});
    t.row({"Reorder Buffer Size", "80"});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nAll parameters verified against compiled defaults.\n");
    return 0;
}
