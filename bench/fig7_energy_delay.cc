/**
 * @file
 * Reproduces paper Figure 7: energy-delay product improvement for the
 * four configurations (XScale model) -- the paper's headline result.
 *
 * Paper shape: dynamic-5% ~20% avg > dynamic-1% ~13% >> global ~3%;
 * baseline MCD slightly negative.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    benchutil::parseFigureArgs(argc, argv);
    ExperimentConfig ec = benchutil::configFromEnv(DvfsKind::XScale);
    auto rows = benchutil::runMatrix(ec);
    benchutil::printFigure(
        "Figure 7: Energy-delay improvement results (XScale model)",
        rows,
        [](const BenchmarkResults &r, const RunResult &run) {
            return r.edpImprovement(run);
        });
    if (config::RunSpec::resolve().boolean("tournament"))
        benchutil::printLeaderboard(rows);

    // The headline-ordering check below averages over every row, so a
    // degraded matrix reports its partial-failure code instead of a
    // verdict computed from incomplete data.
    if (int code = benchutil::finish(rows))
        return code;

    // The verdict needs the paper's three oracle columns; a custom or
    // tournament leg set may not carry all of them (the tournament
    // drops dyn1/global), in which case there is no ordering to check.
    bool haveLegs = !rows.empty();
    for (const char *leg : {"dyn1", "dyn5", "global"}) {
        for (const BenchmarkResults &r : rows)
            haveLegs = haveLegs && r.findLeg(leg) != nullptr;
    }
    if (!haveLegs) {
        std::printf(
            "\nHeadline ordering check skipped: the configured leg set "
            "lacks dyn1/dyn5/global.\n");
        return 0;
    }

    double dyn5 = 0.0, dyn1 = 0.0, global = 0.0;
    for (const BenchmarkResults &r : rows) {
        dyn5 += r.edpImprovement(r.leg("dyn5"));
        dyn1 += r.edpImprovement(r.leg("dyn1"));
        global += r.edpImprovement(r.leg("global"));
    }
    int n = static_cast<int>(rows.size());
    bool ordering = dyn5 / n > dyn1 / n && dyn1 / n > global / n;
    std::printf(
        "\nPaper reference: dyn-5%% ~20%%, dyn-1%% ~13%%, global ~3%%.\n"
        "Headline ordering dyn-5%% > dyn-1%% > global: %s\n",
        ordering ? "REPRODUCED" : "NOT REPRODUCED");
    return ordering ? 0 : 1;
}
