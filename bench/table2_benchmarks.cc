/**
 * @file
 * Reproduces paper Table 2: the benchmark roster, and extends it with
 * measured characteristics of our kernel substitutes (instruction
 * count, IPC, instruction mix, cache and branch behaviour) from a
 * baseline run, so the reader can check the substitution fidelity
 * argument of DESIGN.md section 4.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/processor.hh"

using namespace mcd;

int
main()
{
    ExperimentConfig ec = benchutil::configFromEnv();

    std::printf("Table 2: Benchmarks (paper roster + measured kernel "
                "characteristics, scale %d)\n\n", ec.scale);
    TextTable t;
    t.header({"benchmark", "suite", "paper dataset", "paper window",
              "insts", "IPC", "%mem", "%FP", "L1D miss", "L2 miss",
              "mispred"});
    for (const WorkloadInfo &w : workloads::all()) {
        Program p = workloads::build(w.name, ec.scale);
        SimConfig cfg;
        cfg.clocking = ClockingStyle::SingleClock;
        cfg.seed = ec.seed;
        McdProcessor proc(cfg, p);
        RunResult r = proc.run();
        double mem = static_cast<double>(r.pipeline.committedLoads +
                                         r.pipeline.committedStores) /
            static_cast<double>(r.committed);
        double fp = static_cast<double>(r.pipeline.committedFp) /
            static_cast<double>(r.committed);
        t.row({w.name, w.suite, w.dataset, w.window,
               std::to_string(r.committed), formatFixed(r.ipc, 2),
               formatPercent(mem, 0), formatPercent(fp, 0),
               formatPercent(r.l1d.missRate()),
               formatPercent(r.l2.missRate()),
               formatPercent(r.bpredMispredictRate)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nPaper windows refer to the original Alpha binaries "
                "(100M-instruction SimPoint-style windows);\nour kernels "
                "are laptop-scale substitutes -- see DESIGN.md section 4, "
                "substitution 1.\n");
    return 0;
}
