/**
 * @file
 * Tests for the combining branch predictor and BTB.
 */

#include <gtest/gtest.h>

#include "cpu/bpred.hh"

namespace mcd {
namespace {

BpredParams
defaults()
{
    return BpredParams();
}

TEST(Bpred, Table1Defaults)
{
    BpredParams p;
    EXPECT_EQ(p.bimodalSize, 1024);
    EXPECT_EQ(p.l1Size, 1024);
    EXPECT_EQ(p.historyBits, 10);
    EXPECT_EQ(p.l2Size, 1024);
    EXPECT_EQ(p.chooserSize, 4096);
    EXPECT_EQ(p.btbSets, 4096);
    EXPECT_EQ(p.btbAssoc, 2);
}

TEST(Bpred, LearnsAlwaysTaken)
{
    BranchPredictor bp(defaults());
    std::uint64_t pc = 0x1000;
    for (int i = 0; i < 8; ++i) {
        BpredLookup l = bp.predictBranch(pc);
        bp.update(pc, true, 0x2000, l.taken, true);
    }
    BpredLookup l = bp.predictBranch(pc);
    EXPECT_TRUE(l.taken);
    EXPECT_TRUE(l.btbHit);
    EXPECT_EQ(l.target, 0x2000u);
}

TEST(Bpred, LearnsAlwaysNotTaken)
{
    BranchPredictor bp(defaults());
    std::uint64_t pc = 0x1004;
    for (int i = 0; i < 8; ++i) {
        BpredLookup l = bp.predictBranch(pc);
        bp.update(pc, false, 0, l.taken, true);
    }
    EXPECT_FALSE(bp.predictBranch(pc).taken);
}

TEST(Bpred, PagLearnsAlternatingPattern)
{
    // A strict T/N/T/N pattern defeats bimodal but is trivial for the
    // 10-bit-history PAg component; the chooser should migrate.
    BranchPredictor bp(defaults());
    std::uint64_t pc = 0x2000;
    bool taken = false;
    int correct = 0;
    const int warmup = 120, probe = 200;
    for (int i = 0; i < warmup + probe; ++i) {
        taken = !taken;
        BpredLookup l = bp.predictBranch(pc);
        if (i >= warmup && l.taken == taken)
            ++correct;
        bp.update(pc, taken, 0x3000, l.taken, true);
    }
    EXPECT_GT(correct, probe * 9 / 10);
}

TEST(Bpred, PagLearnsShortLoopPattern)
{
    // Loop closing branch: taken 7 times, not taken once (period 8).
    BranchPredictor bp(defaults());
    std::uint64_t pc = 0x2100;
    int correct = 0;
    const int warmup = 400, probe = 400;
    for (int i = 0; i < warmup + probe; ++i) {
        bool taken = (i % 8) != 7;
        BpredLookup l = bp.predictBranch(pc);
        if (i >= warmup && l.taken == taken)
            ++correct;
        bp.update(pc, taken, 0x2200, l.taken, true);
    }
    EXPECT_GT(correct, probe * 9 / 10);
}

TEST(Bpred, MispredictRateTracked)
{
    BranchPredictor bp(defaults());
    std::uint64_t pc = 0x3000;
    for (int i = 0; i < 100; ++i) {
        BpredLookup l = bp.predictBranch(pc);
        bp.update(pc, true, 0x100, l.taken, true);
    }
    EXPECT_EQ(bp.stats().condBranches, 100u);
    EXPECT_LT(bp.stats().mispredictRate(), 0.1);
    EXPECT_EQ(bp.stats().lookups, 100u);
}

TEST(Bpred, IndirectUsesBtb)
{
    BranchPredictor bp(defaults());
    std::uint64_t pc = 0x4000;
    BpredLookup miss = bp.predictIndirect(pc);
    EXPECT_FALSE(miss.btbHit);
    bp.update(pc, true, 0xbeef0, true, false);
    BpredLookup hit = bp.predictIndirect(pc);
    EXPECT_TRUE(hit.btbHit);
    EXPECT_EQ(hit.target, 0xbeef0u);
    // Indirect updates do not count as conditional branches.
    EXPECT_EQ(bp.stats().condBranches, 0u);
}

TEST(Bpred, BtbRetargets)
{
    BranchPredictor bp(defaults());
    std::uint64_t pc = 0x5000;
    bp.update(pc, true, 0x100, true, false);
    bp.update(pc, true, 0x200, true, false);
    EXPECT_EQ(bp.predictIndirect(pc).target, 0x200u);
}

TEST(Bpred, BtbSetConflictEvictsLru)
{
    BpredParams p;
    p.btbSets = 16;     // tiny BTB: pcs 16*4 bytes apart collide
    p.btbAssoc = 2;
    BranchPredictor bp(p);
    std::uint64_t stride = 16 * 4;
    bp.update(0x1000, true, 0xa, true, false);
    bp.update(0x1000 + stride, true, 0xb, true, false);
    bp.predictIndirect(0x1000);     // touch A
    bp.update(0x1000 + 2 * stride, true, 0xc, true, false);
    EXPECT_TRUE(bp.predictIndirect(0x1000).btbHit);
    EXPECT_FALSE(bp.predictIndirect(0x1000 + stride).btbHit);
    EXPECT_TRUE(bp.predictIndirect(0x1000 + 2 * stride).btbHit);
}

TEST(Bpred, NotTakenBranchesDontPolluteBtb)
{
    BranchPredictor bp(defaults());
    bp.update(0x6000, false, 0x999, false, true);
    EXPECT_FALSE(bp.predictIndirect(0x6000).btbHit);
}

TEST(Bpred, ResetStats)
{
    BranchPredictor bp(defaults());
    BpredLookup l = bp.predictBranch(0x10);
    bp.update(0x10, true, 0x20, l.taken, true);
    bp.resetStats();
    EXPECT_EQ(bp.stats().lookups, 0u);
    EXPECT_EQ(bp.stats().condBranches, 0u);
}

} // namespace
} // namespace mcd
