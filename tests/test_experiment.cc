/**
 * @file
 * Tests for the experiment runner (profiling -> analysis -> dynamic
 * run pipeline, the global-frequency search, and the results cache).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/experiment.hh"

namespace mcd {
namespace {

TEST(Experiment, DynamicRunProducesScheduleAndResult)
{
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    auto dyn = runner.runDynamic("epic", 0.05);
    EXPECT_GT(dyn.analysis.intervals, 0u);
    EXPECT_GT(dyn.analysis.eventsTotal, 50'000u);
    EXPECT_GT(dyn.result.committed, 100'000u);
    // At least the FP domain must have been scaled for this integer
    // filter kernel.
    EXPECT_LT(dyn.result.domains[domainIndex(Domain::FloatingPoint)]
                  .avgFrequency, 900e6);
}

TEST(Experiment, AnalysisPlansRespectDilationDirection)
{
    // A tighter dilation target must choose frequencies that are
    // greater than or equal to a looser one, domain by domain.
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    auto tight = runner.runDynamic("gcc", 0.01);
    auto loose = runner.runDynamic("gcc", 0.10);
    for (Domain d : scalableDomains) {
        int di = domainIndex(d);
        EXPECT_GE(tight.result.domains[di].avgFrequency + 1e6,
                  loose.result.domains[di].avgFrequency);
    }
}

TEST(Experiment, FullMatrixShapes)
{
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    BenchmarkResults r = runner.runBenchmark("gcc");

    // The MCD clocking style costs a little performance.
    EXPECT_GT(r.perfDegradation(r.mcdBaseline), -0.005);
    EXPECT_LT(r.perfDegradation(r.mcdBaseline), 0.06);

    // The dynamic configurations save energy; deeper target -> more.
    EXPECT_GT(r.energySavings(r.leg("dyn1")), 0.0);
    EXPECT_GT(r.energySavings(r.leg("dyn5")),
              r.energySavings(r.leg("dyn1")));
    EXPECT_GT(r.perfDegradation(r.leg("dyn5")),
              r.perfDegradation(r.leg("dyn1")));

    // Global was matched to dynamic-5% degradation.
    EXPECT_NEAR(r.perfDegradation(r.leg("global")),
                r.perfDegradation(r.leg("dyn5")), 0.05);
    EXPECT_GT(r.globalFrequency, 250e6);
    EXPECT_LT(r.globalFrequency, 1e9);

    // The headline: at matched degradation, per-domain scaling saves
    // more energy than global scaling (paper Figures 6-7).
    EXPECT_GT(r.energySavings(r.leg("dyn5")),
              r.energySavings(r.leg("global")));
    EXPECT_GT(r.edpImprovement(r.leg("dyn5")),
              r.edpImprovement(r.leg("global")));

    EXPECT_GT(r.scheduleSize("dyn5"), 0u);
}

TEST(Experiment, CacheRoundtrip)
{
    std::string dir = std::filesystem::temp_directory_path() /
        "mcd-test-cache";
    std::filesystem::remove_all(dir);

    ExperimentConfig ec;
    ec.cacheDir = dir;
    ExperimentRunner a(ec);
    BenchmarkResults first = a.runBenchmark("mst");

    ExperimentRunner b(ec);
    BenchmarkResults second = b.runBenchmark("mst");
    EXPECT_EQ(first.baseline.execTime, second.baseline.execTime);
    EXPECT_DOUBLE_EQ(first.leg("dyn5").totalEnergy,
                     second.leg("dyn5").totalEnergy);
    EXPECT_DOUBLE_EQ(first.globalFrequency, second.globalFrequency);
    EXPECT_EQ(first.scheduleSize("dyn1"), second.scheduleSize("dyn1"));
    // The cached row rehydrates its leg specs from the live config.
    ASSERT_EQ(second.legs.size(), 4u);
    EXPECT_EQ(second.legs[2].spec.kind, LegSpec::Kind::GlobalSearch);
    EXPECT_EQ(second.legs[3].spec.controller, "online-queue");
    for (int d = 0; d < numDomains; ++d) {
        EXPECT_EQ(first.leg("dyn5").domains[d].reconfigurations,
                  second.leg("dyn5").domains[d].reconfigurations);
        EXPECT_DOUBLE_EQ(first.leg("dyn5").domains[d].avgFrequency,
                         second.leg("dyn5").domains[d].avgFrequency);
    }
    std::filesystem::remove_all(dir);
}

/** Crude well-formedness check: balanced {} and [] outside strings. */
void
expectBalancedJson(const std::string &text)
{
    int brace = 0, bracket = 0;
    bool inString = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': ++brace; break;
          case '}': --brace; break;
          case '[': ++bracket; break;
          case ']': --bracket; break;
        }
        EXPECT_GE(brace, 0);
        EXPECT_GE(bracket, 0);
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
    EXPECT_FALSE(inString);
}

TEST(Experiment, JsonEmitterIsWellFormedAndComplete)
{
    ExperimentConfig ec;
    BenchmarkResults r;
    r.name = "synthetic";
    r.baseline.execTime = 1000;
    r.baseline.totalEnergy = 2.0;
    r.baseline.energyDelay = 4.0;
    r.baseline.ipc = 1.2345678901234567;
    for (const LegSpec &spec : defaultLegs(ec))
        r.legs.push_back({spec, RunResult{}, 0});
    RunResult &online = r.legs.back().run;
    online.execTime = 1100;
    online.totalEnergy = 1.5;
    online.energyDelay = 3.0;

    std::ostringstream os;
    writeResultsJson(os, ec, {r});
    std::string text = os.str();

    expectBalancedJson(text);
    for (const char *key :
         {"\"config\"", "\"benchmarks\"", "\"runs\"", "\"derived\"",
          "\"baseline\"", "\"mcdBaseline\"", "\"dyn1\"", "\"dyn5\"",
          "\"global\"", "\"online\"", "\"domains\"", "\"execTimePs\"",
          "\"energySavings\"", "\"onlineIntervalPs\""}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }
    // Doubles survive at full precision (setprecision(17)).
    EXPECT_NE(text.find("1.2345678901234567"), std::string::npos);
    // online derived vs baseline: 1 - 1.5/2.0 = 0.25 energy savings.
    EXPECT_NE(text.find("\"energySavings\": 0.25"), std::string::npos);
}

TEST(Experiment, RunMatrixHonorsResultsJsonEnv)
{
    std::string path = std::filesystem::temp_directory_path() /
        "mcd-test-results.json";
    std::filesystem::remove(path);
    ::setenv("MCD_RESULTS_JSON", path.c_str(), 1);

    ExperimentConfig ec;
    runMatrix(ec, {"mst"}, 1);
    ::unsetenv("MCD_RESULTS_JSON");

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "runMatrix did not write " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    expectBalancedJson(ss.str());
    EXPECT_NE(ss.str().find("\"name\": \"mst\""), std::string::npos);
    EXPECT_NE(ss.str().find("\"online\""), std::string::npos);
    std::filesystem::remove(path);
}

TEST(Experiment, CacheKeyDistinguishesConfigs)
{
    std::string dir = std::filesystem::temp_directory_path() /
        "mcd-test-cache2";
    std::filesystem::remove_all(dir);

    ExperimentConfig x;
    x.cacheDir = dir;
    ExperimentRunner rx(x);
    BenchmarkResults xs = rx.runBenchmark("mst");

    ExperimentConfig t = x;
    t.model = DvfsKind::Transmeta;
    ExperimentRunner rt(t);
    BenchmarkResults tm = rt.runBenchmark("mst");

    // Different models must not alias in the cache: the Transmeta
    // run has PLL re-lock stalls, so the dynamic results differ.
    EXPECT_NE(xs.leg("dyn5").execTime, tm.leg("dyn5").execTime);
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------- leg spec grammar

void
expectLegEqual(const LegSpec &a, const LegSpec &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.display, b.display);
    EXPECT_EQ(a.kind, b.kind);
    // Bit-identical, not approximately equal: the repro files the
    // fuzz shrinker writes depend on exact double round-trips.
    EXPECT_EQ(a.dilation, b.dilation);
    EXPECT_EQ(a.reference, b.reference);
    EXPECT_EQ(a.controller, b.controller);
    EXPECT_EQ(a.params, b.params);
}

TEST(LegSpecGrammar, ToSpecRoundTripsAllThreeKinds)
{
    std::vector<LegSpec> legs = {
        LegSpec::scheduleReplay("dyn5", 0.05),
        LegSpec::scheduleReplay("dyn1", 0.017, "dynamic-1%"),
        LegSpec::globalSearch("global", "dyn5"),
        LegSpec::controllerLeg("online", "online-queue"),
        LegSpec::controllerLeg("pid", "pid", "kp=0.4,ki=0.05"),
    };
    for (const LegSpec &l : legs) {
        LegSpec back = LegSpec::fromSpec(l.toSpec());
        expectLegEqual(back, l);
        EXPECT_EQ(back.toSpec(), l.toSpec());
    }
    // Vector form: '|'-joined, order-preserving.
    std::vector<LegSpec> parsed = legsFromSpec(legsToSpec(legs));
    ASSERT_EQ(parsed.size(), legs.size());
    for (std::size_t i = 0; i < legs.size(); ++i)
        expectLegEqual(parsed[i], legs[i]);
}

TEST(LegSpecGrammar, ToSpecRoundTripsRandomizedDilations)
{
    // Dilations land on awkward doubles (thirds, tiny magnitudes);
    // the emitter must pick enough digits to reparse bit-identically.
    std::uint64_t state = 12345;
    for (int trial = 0; trial < 300; ++trial) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        double frac = static_cast<double>(state >> 11) /
            static_cast<double>(1ULL << 53);
        double dilation = frac / 3.0 + 1e-9;
        LegSpec l = LegSpec::scheduleReplay(
            "leg" + std::to_string(trial % 7), dilation);
        LegSpec back = LegSpec::fromSpec(l.toSpec());
        ASSERT_EQ(back.dilation, dilation) << l.toSpec();
        ASSERT_EQ(back.toSpec(), l.toSpec());
    }
}

TEST(LegSpecGrammar, MalformedSpecsAreFatal)
{
    EXPECT_THROW(LegSpec::fromSpec(""), FatalError);
    EXPECT_THROW(LegSpec::fromSpec("dyn5"), FatalError);
    EXPECT_THROW(LegSpec::fromSpec("dyn5=bogus:1"), FatalError);
    EXPECT_THROW(LegSpec::fromSpec("dyn5=replay:notanumber"),
                 FatalError);
    EXPECT_THROW(LegSpec::fromSpec("=replay:0.05"), FatalError);
    EXPECT_THROW(legsFromSpec("dyn5=replay:0.05|junk"), FatalError);
}

} // namespace
} // namespace mcd
