/**
 * @file
 * Tests for the shaker algorithm and frequency histograms.
 */

#include <gtest/gtest.h>

#include "analysis/shaker.hh"
#include "core/processor.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

constexpr Hertz fmax = 1e9;
constexpr Hertz fmin = 250e6;

/** Build a graph by hand. */
IntervalGraph
makeGraph(Tick interval_end)
{
    IntervalGraph g;
    g.intervalStart = 0;
    g.intervalEnd = interval_end;
    return g;
}

std::int32_t
addEvent(IntervalGraph &g, Domain d, Tick start, Tick end,
         double power = 1.0)
{
    DagEvent ev;
    ev.domain = d;
    ev.start = start;
    ev.end = end;
    ev.origDuration = end - start;
    ev.floorStart = 0;
    ev.power = power;
    ev.fu = FuClass::IntAlu;
    g.events.push_back(ev);
    g.out.emplace_back();
    g.in.emplace_back();
    return static_cast<std::int32_t>(g.events.size() - 1);
}

TEST(HistogramBins, MappingIsConsistent)
{
    EXPECT_EQ(histogramBin(fmin, fmin, fmax), 0);
    EXPECT_EQ(histogramBin(fmax, fmin, fmax), DomainHistogram::bins - 1);
    EXPECT_EQ(histogramBin(0.0, fmin, fmax), 0);
    EXPECT_EQ(histogramBin(2e9, fmin, fmax), DomainHistogram::bins - 1);
}

class BinSweep : public ::testing::TestWithParam<int>
{};

TEST_P(BinSweep, CenterFrequencyMapsBack)
{
    int b = GetParam();
    Hertz f = histogramBinFreq(b, fmin, fmax);
    EXPECT_EQ(histogramBin(f, fmin, fmax), b);
    EXPECT_GE(f, fmin);
    EXPECT_LE(f, fmax);
}

INSTANTIATE_TEST_SUITE_P(Every16th, BinSweep,
                         ::testing::Range(0, DomainHistogram::bins, 16));

TEST(Shaker, LoneEventStretchesToQuarterFrequency)
{
    IntervalGraph g = makeGraph(100000);
    addEvent(g, Domain::Integer, 0, 1000);
    ShakerConfig cfg;
    ShakeResult r = shake(g, cfg, fmax, fmin);
    EXPECT_NEAR(g.events[0].stretch, 4.0, 0.01);
    // All work lands in the lowest bin.
    EXPECT_GT(r.histogram[1].work[0], 0.0);
    EXPECT_NEAR(r.histogram[1].total(), 1000.0, 1.0);
}

TEST(Shaker, TightChainCannotStretch)
{
    IntervalGraph g = makeGraph(3000);
    auto a = addEvent(g, Domain::Integer, 0, 1000);
    auto b = addEvent(g, Domain::Integer, 1000, 2000);
    auto c = addEvent(g, Domain::Integer, 2000, 3000);
    g.addEdge(a, b);
    g.addEdge(b, c);
    ShakerConfig cfg;
    shake(g, cfg, fmax, fmin);
    EXPECT_DOUBLE_EQ(g.events[a].stretch, 1.0);
    EXPECT_DOUBLE_EQ(g.events[b].stretch, 1.0);
    EXPECT_DOUBLE_EQ(g.events[c].stretch, 1.0);
}

TEST(Shaker, ChainWithTailSlackDistributes)
{
    // Three-event chain ending well before the interval end: the
    // shaker should absorb the tail slack into stretches.
    IntervalGraph g = makeGraph(12000);
    auto a = addEvent(g, Domain::Integer, 0, 1000);
    auto b = addEvent(g, Domain::Integer, 1000, 2000);
    auto c = addEvent(g, Domain::Integer, 2000, 3000);
    g.addEdge(a, b);
    g.addEdge(b, c);
    ShakerConfig cfg;
    ShakeResult r = shake(g, cfg, fmax, fmin);
    // 9000 ps of slack over 3 events allows full 4x stretch of all.
    EXPECT_NEAR(g.events[a].stretch, 4.0, 0.05);
    EXPECT_NEAR(g.events[b].stretch, 4.0, 0.05);
    EXPECT_NEAR(g.events[c].stretch, 4.0, 0.05);
    EXPECT_GT(r.slackConsumed, 8500.0);
}

TEST(Shaker, EdgeLagIsNotSlack)
{
    IntervalGraph g = makeGraph(20000);
    auto a = addEvent(g, Domain::Integer, 0, 1000);
    auto b = addEvent(g, Domain::Integer, 11000, 12000);
    // The 10 ns gap is a fixed (front-end refill) latency, not slack;
    // b is pinned at its dispatch slot like a real post-mispredict
    // instruction (occupancy ceilings do this in full graphs).
    g.addEdge(a, b, 10000);
    g.events[b].startCeiling = 11000;
    ShakerConfig cfg;
    shake(g, cfg, fmax, fmin);
    EXPECT_DOUBLE_EQ(g.events[a].stretch, 1.0);
    // b still has the interval tail to stretch into.
    EXPECT_GT(g.events[b].stretch, 3.0);
}

TEST(Shaker, EndCeilingBoundsDeferral)
{
    IntervalGraph g = makeGraph(100000);
    auto a = addEvent(g, Domain::Integer, 0, 1000);
    g.events[a].endCeiling = 2000;
    ShakerConfig cfg;
    shake(g, cfg, fmax, fmin);
    EXPECT_LE(g.events[a].end, 2000u);
    EXPECT_NEAR(g.events[a].stretch, 2.0, 0.01);
}

TEST(Shaker, StartCeilingBoundsLateness)
{
    IntervalGraph g = makeGraph(100000);
    auto a = addEvent(g, Domain::Integer, 0, 1000);
    auto b = addEvent(g, Domain::Integer, 1000, 2000);
    g.addEdge(a, b);
    g.events[a].startCeiling = 0;       // may not move later at all
    g.events[a].endCeiling = 1500;
    ShakerConfig cfg;
    shake(g, cfg, fmax, fmin);
    EXPECT_EQ(g.events[a].start, 0u);
    EXPECT_LE(g.events[a].end, 1500u);
}

TEST(Shaker, FixedPortionDoesNotScale)
{
    // 100 ns event, 80 ns of which is DRAM time: only 20 ns scales.
    IntervalGraph g = makeGraph(1'000'000);
    auto a = addEvent(g, Domain::LoadStore, 0, 100000);
    g.events[a].fixedPortion = 80000;
    ShakerConfig cfg;
    ShakeResult r = shake(g, cfg, fmax, fmin);
    // Stretch 4x applies to the scalable 20 ns -> event of 160 ns.
    EXPECT_NEAR(static_cast<double>(g.events[a].end - g.events[a].start),
                160000.0, 500.0);
    // Histogram counts only the scalable work.
    EXPECT_NEAR(r.histogram[3].total(), 20000.0, 1.0);
}

TEST(Shaker, HighPowerEventsScaleFirst)
{
    // Two independent events, one hot and one cool, with only enough
    // shared slack for roughly one of them: the hot one must win.
    IntervalGraph g = makeGraph(4000);
    auto hot = addEvent(g, Domain::Integer, 0, 1000, 2.0);
    auto cool = addEvent(g, Domain::Integer, 0, 1000, 1.0);
    auto sinkH = addEvent(g, Domain::Integer, 3500, 4000, 0.1);
    auto sinkC = addEvent(g, Domain::Integer, 3500, 4000, 0.1);
    g.addEdge(hot, sinkH);
    g.addEdge(cool, sinkC);
    g.events[sinkH].startCeiling = 3500;
    g.events[sinkC].startCeiling = 3500;
    g.events[sinkH].endCeiling = 4000;
    g.events[sinkC].endCeiling = 4000;
    ShakerConfig cfg;
    cfg.maxPasses = 1;      // single backward+forward pair
    shake(g, cfg, fmax, fmin);
    EXPECT_GT(g.events[hot].stretch, g.events[cool].stretch);
}

TEST(Shaker, EmptyGraphIsFine)
{
    IntervalGraph g = makeGraph(1000);
    ShakerConfig cfg;
    ShakeResult r = shake(g, cfg, fmax, fmin);
    EXPECT_EQ(r.passesRun, 0);
    EXPECT_DOUBLE_EQ(r.histogram[1].total(), 0.0);
}

TEST(Shaker, TerminatesWithinConfiguredPasses)
{
    Program p = workloads::build("gcc", 1);
    SimConfig cfg;
    cfg.collectTrace = true;
    cfg.maxInstructions = 15000;
    McdProcessor proc(cfg, p);
    proc.run();
    DepGraphConfig gc;
    auto gs = buildIntervalGraphs(proc.trace().trace(), gc);
    ShakerConfig sc;
    for (IntervalGraph &g : gs) {
        ShakeResult r = shake(g, sc, fmax, fmin);
        EXPECT_LE(r.passesRun, sc.maxPasses);
        for (const DagEvent &ev : g.events) {
            EXPECT_GE(ev.stretch, 1.0 - 1e-9);
            EXPECT_LE(ev.stretch, 4.0 + 1e-9);
        }
    }
}

TEST(Shaker, HistogramConservesScalableWork)
{
    Program p = workloads::build("epic", 1);
    SimConfig cfg;
    cfg.collectTrace = true;
    cfg.maxInstructions = 15000;
    McdProcessor proc(cfg, p);
    proc.run();
    DepGraphConfig gc;
    auto gs = buildIntervalGraphs(proc.trace().trace(), gc);
    ShakerConfig sc;
    for (IntervalGraph &g : gs) {
        double scalable = 0.0;
        for (const DagEvent &ev : g.events)
            scalable += static_cast<double>(ev.origDuration -
                                            ev.fixedPortion);
        ShakeResult r = shake(g, sc, fmax, fmin);
        double total = 0.0;
        for (int d = 0; d < numDomains; ++d)
            total += r.histogram[d].total();
        EXPECT_NEAR(total, scalable, scalable * 1e-9 + 1.0);
    }
}

} // namespace
} // namespace mcd
