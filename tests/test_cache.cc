/**
 * @file
 * Tests for the tag-only set-associative cache model.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mem/cache.hh"

namespace mcd {
namespace {

CacheParams
smallCache(int size_kb, int assoc)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = static_cast<std::uint64_t>(size_kb) * 1024;
    p.associativity = assoc;
    p.lineBytes = 64;
    p.latencyCycles = 2;
    return p;
}

TEST(Cache, Geometry)
{
    Cache c(smallCache(64, 2));
    EXPECT_EQ(c.numSets(), 512);
    Cache dm(smallCache(1024, 1));
    EXPECT_EQ(dm.numSets(), 16384);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache(4, 2));
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1038, false));   // same 64-byte line
    EXPECT_FALSE(c.access(0x1040, false));  // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictsLeastRecent)
{
    // 2-way, map three lines onto one set; the set stride for a
    // 4 KB 2-way 64 B cache is 32 sets * 64 = 2 KB.
    Cache c(smallCache(4, 2));
    std::uint64_t stride = 2048;
    c.access(0 * stride, false);        // A
    c.access(1 * stride, false);        // B
    c.access(0 * stride, false);        // touch A -> B is LRU
    c.access(2 * stride, false);        // C evicts B
    EXPECT_TRUE(c.probe(0 * stride));
    EXPECT_FALSE(c.probe(1 * stride));
    EXPECT_TRUE(c.probe(2 * stride));
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c(smallCache(4, 1));
    std::uint64_t stride = 4096;
    EXPECT_FALSE(c.access(0, false));
    EXPECT_FALSE(c.access(stride, false));  // evicts line 0
    EXPECT_FALSE(c.access(0, false));       // conflict miss
    EXPECT_EQ(c.stats().misses, 3u);
}

TEST(Cache, WritebackCounting)
{
    Cache c(smallCache(4, 1));
    std::uint64_t stride = 4096;
    c.access(0, true);              // dirty
    c.access(stride, false);        // evicts dirty line -> writeback
    EXPECT_EQ(c.stats().writebacks, 1u);
    c.access(2 * stride, false);    // evicts clean line
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(smallCache(4, 1));
    c.access(0, false);         // clean fill
    c.access(0, true);          // write hit -> dirty
    c.access(4096, false);      // evict
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ResetClears)
{
    Cache c(smallCache(4, 2));
    c.access(0x40, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c(smallCache(4, 2));
    EXPECT_FALSE(c.probe(0x80));
    EXPECT_EQ(c.stats().accesses, 0u);
    c.access(0x80, false);
    EXPECT_TRUE(c.probe(0x80));
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, MissRateCalculation)
{
    Cache c(smallCache(4, 2));
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.25);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheParams p = smallCache(4, 2);
    p.sizeBytes = 5000;     // not a power of two
    EXPECT_THROW(Cache c(p), FatalError);
    p = smallCache(4, 0);
    EXPECT_THROW(Cache c(p), FatalError);
}

class CacheSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(CacheSweep, FillWholeCacheThenHitEverything)
{
    auto [kb, assoc] = GetParam();
    Cache c(smallCache(kb, assoc));
    std::uint64_t lines = kb * 1024ull / 64;
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_FALSE(c.access(i * 64, false));
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * 64, false));
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(std::make_tuple(4, 1), std::make_tuple(4, 2),
                      std::make_tuple(16, 2), std::make_tuple(64, 2),
                      std::make_tuple(64, 4), std::make_tuple(1024, 1)));

} // namespace
} // namespace mcd
