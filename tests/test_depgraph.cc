/**
 * @file
 * Tests for the dependence-DAG builder.
 */

#include <gtest/gtest.h>

#include "analysis/dep_graph.hh"
#include "core/processor.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

std::vector<InstTrace>
traceOf(const Program &p, std::uint64_t max_insts = 0)
{
    SimConfig cfg;
    cfg.collectTrace = true;
    cfg.maxInstructions = max_insts;
    McdProcessor proc(cfg, p);
    proc.run();
    return proc.trace().trace();
}

/** A synthetic trace with controlled timestamps. */
InstTrace
mkInst(std::uint64_t seq, Opcode op, Tick dispatch, Tick issue,
       Tick done, std::uint64_t dep1 = 0)
{
    InstTrace t;
    t.seq = seq;
    t.op = op;
    t.fu = fuClass(op);
    t.dep1 = dep1;
    t.fetchTime = dispatch > 2000 ? dispatch - 2000 : 0;
    t.dispatchTime = dispatch;
    t.issueTime = issue;
    t.execDone = done;
    t.commitTime = done + 2000;
    return t;
}

TEST(DepGraph, EmptyTraceYieldsNoGraphs)
{
    DepGraphConfig cfg;
    EXPECT_TRUE(buildIntervalGraphs({}, cfg).empty());
}

TEST(DepGraph, SingleInstructionGraph)
{
    DepGraphConfig cfg;
    std::vector<InstTrace> tr = {mkInst(1, Opcode::ADD, 1000, 2000, 3000)};
    auto gs = buildIntervalGraphs(tr, cfg);
    ASSERT_EQ(gs.size(), 1u);
    EXPECT_EQ(gs[0].size(), 1u);
    EXPECT_EQ(gs[0].events[0].domain, Domain::Integer);
    EXPECT_EQ(gs[0].events[0].start, 2000u);
    // End carries the half-period completion skew.
    EXPECT_EQ(gs[0].events[0].end, 3000u + cfg.completionSkew);
    EXPECT_EQ(gs[0].events[0].floorStart, 1000u);
}

TEST(DepGraph, DataDependenceEdge)
{
    DepGraphConfig cfg;
    std::vector<InstTrace> tr = {
        mkInst(1, Opcode::ADD, 1000, 2000, 2500),
        mkInst(2, Opcode::ADD, 1000, 4000, 4500, 1),
    };
    auto gs = buildIntervalGraphs(tr, cfg);
    ASSERT_EQ(gs.size(), 1u);
    const IntervalGraph &g = gs[0];
    ASSERT_EQ(g.size(), 2u);
    bool found = false;
    for (const DagEdge &e : g.out[0])
        found |= (e.to == 1);
    EXPECT_TRUE(found);
}

TEST(DepGraph, MemOpsSplitIntoTwoEvents)
{
    DepGraphConfig cfg;
    InstTrace ld = mkInst(1, Opcode::LD, 1000, 2000, 2500);
    ld.memIssue = 3000;
    ld.memDone = 5000;
    auto gs = buildIntervalGraphs({ld}, cfg);
    ASSERT_EQ(gs[0].size(), 2u);
    EXPECT_EQ(gs[0].events[0].domain, Domain::Integer);     // addr-calc
    EXPECT_EQ(gs[0].events[1].domain, Domain::LoadStore);   // access
    // addr-calc -> mem-access intra-instruction edge.
    bool intra = false;
    for (const DagEdge &e : gs[0].out[0])
        intra |= (e.to == 1);
    EXPECT_TRUE(intra);
}

TEST(DepGraph, DramPortionRecordedAsFixed)
{
    DepGraphConfig cfg;
    InstTrace ld = mkInst(1, Opcode::LD, 1000, 2000, 2500);
    ld.memIssue = 3000;
    ld.memDone = 100000;
    ld.memFixed = 80000;
    auto gs = buildIntervalGraphs({ld}, cfg);
    EXPECT_EQ(gs[0].events[1].fixedPortion, 80000u);
}

TEST(DepGraph, MispredictBarrierCarriesLag)
{
    DepGraphConfig cfg;
    InstTrace br = mkInst(1, Opcode::BEQ, 1000, 2000, 2500);
    br.mispredicted = true;
    InstTrace next = mkInst(2, Opcode::ADD, 12000, 13000, 13500);
    auto gs = buildIntervalGraphs({br, next}, cfg);
    const IntervalGraph &g = gs[0];
    ASSERT_EQ(g.size(), 2u);
    bool found = false;
    for (const DagEdge &e : g.out[0]) {
        if (e.to == 1) {
            found = true;
            // Lag = observed refill gap: next.start - branch.end.
            EXPECT_EQ(e.lag, static_cast<std::int32_t>(
                          13000 - (2500 + cfg.completionSkew)));
        }
    }
    EXPECT_TRUE(found);
}

TEST(DepGraph, IntervalSlicingByDispatchTime)
{
    DepGraphConfig cfg;
    cfg.intervalLength = 10000;
    std::vector<InstTrace> tr = {
        mkInst(1, Opcode::ADD, 1000, 2000, 2500),
        mkInst(2, Opcode::ADD, 9000, 9500, 9900),
        mkInst(3, Opcode::ADD, 11000, 12000, 12500),
    };
    auto gs = buildIntervalGraphs(tr, cfg);
    ASSERT_EQ(gs.size(), 2u);
    EXPECT_EQ(gs[0].size(), 2u);
    EXPECT_EQ(gs[1].size(), 1u);
    EXPECT_EQ(gs[0].intervalStart, 0u);
    EXPECT_EQ(gs[1].intervalStart, 10000u);
}

TEST(DepGraph, PartialIntervalClampsEnd)
{
    DepGraphConfig cfg;
    cfg.intervalLength = 1'000'000;
    std::vector<InstTrace> tr = {mkInst(1, Opcode::ADD, 100, 200, 900)};
    auto gs = buildIntervalGraphs(tr, cfg);
    // The interval must not pretend to run to 1 ms.
    EXPECT_LE(gs[0].intervalEnd, 900u + cfg.completionSkew);
}

TEST(DepGraph, QueueCapacityCeilings)
{
    DepGraphConfig cfg;
    cfg.intIssueQueueSize = 4;
    cfg.occupancyMargin = 0.5;
    std::vector<InstTrace> tr;
    for (int i = 0; i < 8; ++i) {
        tr.push_back(mkInst(i + 1, Opcode::ADD, 1000 + i * 100,
                            5000 + i * 100, 5400 + i * 100));
    }
    auto gs = buildIntervalGraphs(tr, cfg);
    const IntervalGraph &g = gs[0];
    // Event 0 must start before event 2 (= 0 + derated cap) dispatches.
    EXPECT_EQ(g.events[0].startCeiling, g.events[2].floorStart);
}

class WorkloadGraphs : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadGraphs, AcyclicAndWellFormed)
{
    Program p = workloads::build(GetParam(), 1);
    std::vector<InstTrace> tr = traceOf(p, 20000);
    DepGraphConfig cfg;
    auto gs = buildIntervalGraphs(tr, cfg);
    ASSERT_FALSE(gs.empty());
    std::size_t events = 0;
    for (const IntervalGraph &g : gs) {
        EXPECT_TRUE(g.isAcyclic());
        events += g.size();
        for (const DagEvent &ev : g.events) {
            EXPECT_GT(ev.end, ev.start);
            EXPECT_GT(ev.origDuration, 0u);
            EXPECT_LT(ev.fixedPortion, ev.origDuration);
            EXPECT_GT(ev.power, 0.0);
        }
        // Every edge endpoint is in range.
        for (std::size_t i = 0; i < g.size(); ++i) {
            for (const DagEdge &e : g.out[i]) {
                ASSERT_GE(e.to, 0);
                ASSERT_LT(static_cast<std::size_t>(e.to), g.size());
            }
        }
    }
    // At least one event per non-NOP instruction.
    EXPECT_GE(events, tr.size() - 10);
}

INSTANTIATE_TEST_SUITE_P(FourKinds, WorkloadGraphs,
                         ::testing::Values("g721", "mcf", "swim",
                                           "treeadd"));

} // namespace
} // namespace mcd
