/**
 * @file
 * Tests for the mini-ISA: classification, encoding round-trips,
 * builder semantics, and the functional executor.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/builder.hh"
#include "isa/encoding.hh"
#include "isa/executor.hh"
#include "isa/inst.hh"

namespace mcd {
namespace {

// -------------------------------------------------------------------
// Classification.
// -------------------------------------------------------------------

TEST(InstClass, Basic)
{
    EXPECT_TRUE(isIntAlu(Opcode::ADD));
    EXPECT_TRUE(isIntAlu(Opcode::LUI));
    EXPECT_FALSE(isIntAlu(Opcode::MUL));
    EXPECT_TRUE(isIntMulDiv(Opcode::DIV));
    EXPECT_TRUE(isFp(Opcode::FSQRT));
    EXPECT_TRUE(isFp(Opcode::FCLT));
    EXPECT_TRUE(isLoad(Opcode::FLD));
    EXPECT_TRUE(isStore(Opcode::FST));
    EXPECT_TRUE(isMem(Opcode::LD));
    EXPECT_FALSE(isMem(Opcode::ADD));
    EXPECT_TRUE(isBranch(Opcode::BGEU));
    EXPECT_TRUE(isJump(Opcode::JALR));
    EXPECT_TRUE(isControl(Opcode::JAL));
    EXPECT_FALSE(isControl(Opcode::SUB));
}

TEST(InstClass, FuClasses)
{
    EXPECT_EQ(fuClass(Opcode::ADD), FuClass::IntAlu);
    EXPECT_EQ(fuClass(Opcode::BEQ), FuClass::IntAlu);
    EXPECT_EQ(fuClass(Opcode::MUL), FuClass::IntMulDiv);
    EXPECT_EQ(fuClass(Opcode::LD), FuClass::MemPort);
    EXPECT_EQ(fuClass(Opcode::FADD), FuClass::FpAlu);
    EXPECT_EQ(fuClass(Opcode::FDIV), FuClass::FpMulDivSqrt);
    EXPECT_EQ(fuClass(Opcode::NOP), FuClass::None);
}

TEST(InstClass, Latencies)
{
    EXPECT_EQ(execLatency(Opcode::ADD), 1);
    EXPECT_EQ(execLatency(Opcode::MUL), 7);
    EXPECT_EQ(execLatency(Opcode::DIV), 20);
    EXPECT_EQ(execLatency(Opcode::FADD), 4);
    EXPECT_EQ(execLatency(Opcode::FDIV), 12);
    EXPECT_GT(execLatency(Opcode::FSQRT), execLatency(Opcode::FDIV));
}

TEST(InstClass, ExecDomains)
{
    EXPECT_EQ(execDomain(Opcode::ADD), Domain::Integer);
    EXPECT_EQ(execDomain(Opcode::BEQ), Domain::Integer);
    EXPECT_EQ(execDomain(Opcode::FMUL), Domain::FloatingPoint);
    EXPECT_EQ(execDomain(Opcode::LD), Domain::LoadStore);
    EXPECT_EQ(execDomain(Opcode::FST), Domain::LoadStore);
}

TEST(InstClass, DestKinds)
{
    Inst i;
    i.op = Opcode::ADD;
    i.rd = 5;
    EXPECT_EQ(destKind(i), DestKind::Int);
    i.rd = reg::zero;
    EXPECT_EQ(destKind(i), DestKind::None);
    i.op = Opcode::FADD;
    i.rd = 3;
    EXPECT_EQ(destKind(i), DestKind::Fp);
    i.op = Opcode::FCLT;
    EXPECT_EQ(destKind(i), DestKind::Int);
    i.op = Opcode::ST;
    EXPECT_EQ(destKind(i), DestKind::None);
    i.op = Opcode::BEQ;
    EXPECT_EQ(destKind(i), DestKind::None);
    i.op = Opcode::FLD;
    EXPECT_EQ(destKind(i), DestKind::Fp);
}

TEST(InstClass, SourceReads)
{
    EXPECT_TRUE(readsIntRs1(Opcode::ADD));
    EXPECT_TRUE(readsIntRs2(Opcode::ADD));
    EXPECT_FALSE(readsIntRs2(Opcode::ADDI));
    EXPECT_TRUE(readsIntRs1(Opcode::LD));   // base register
    EXPECT_TRUE(readsIntRs2(Opcode::ST));   // store data
    EXPECT_FALSE(readsIntRs2(Opcode::LD));
    EXPECT_TRUE(readsFpRs2(Opcode::FST));   // FP store data
    EXPECT_TRUE(readsFpRs1(Opcode::FSQRT));
    EXPECT_FALSE(readsFpRs2(Opcode::FSQRT));
    EXPECT_TRUE(readsIntRs1(Opcode::ITOF));
    EXPECT_TRUE(readsFpRs1(Opcode::FTOI));
    EXPECT_FALSE(readsIntRs1(Opcode::LUI));
    EXPECT_FALSE(readsIntRs1(Opcode::JAL));
    EXPECT_TRUE(readsIntRs1(Opcode::JALR));
}

// -------------------------------------------------------------------
// Encoding round-trips, parameterized over the whole ISA.
// -------------------------------------------------------------------

struct EncodeCase
{
    Inst inst;
};

class EncodingRoundTrip : public ::testing::TestWithParam<EncodeCase>
{};

TEST_P(EncodingRoundTrip, Roundtrips)
{
    const Inst &in = GetParam().inst;
    std::uint32_t w = encode(in);
    Inst out = decode(w);
    EXPECT_EQ(out.op, in.op);
    EXPECT_EQ(encode(out), w);
    // Re-encode equality implies field-level fidelity for the fields
    // the format stores.
}

std::vector<EncodeCase>
encodeCases()
{
    std::vector<EncodeCase> cases;
    auto add = [&](Opcode op, int rd, int rs1, int rs2, int imm) {
        Inst i;
        i.op = op;
        i.rd = static_cast<std::uint8_t>(rd);
        i.rs1 = static_cast<std::uint8_t>(rs1);
        i.rs2 = static_cast<std::uint8_t>(rs2);
        i.imm = imm;
        cases.push_back({i});
    };
    // R-type.
    for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::AND, Opcode::OR,
                      Opcode::XOR, Opcode::SLL, Opcode::SRL, Opcode::SRA,
                      Opcode::SLT, Opcode::SLTU, Opcode::MUL, Opcode::DIV,
                      Opcode::REM, Opcode::FADD, Opcode::FSUB,
                      Opcode::FMUL, Opcode::FDIV, Opcode::FSQRT,
                      Opcode::FNEG, Opcode::FABS, Opcode::FMOV,
                      Opcode::FMIN, Opcode::FMAX, Opcode::FCLT,
                      Opcode::FCLE, Opcode::FCEQ, Opcode::ITOF,
                      Opcode::FTOI}) {
        add(op, 31, 17, 9, 0);
        add(op, 1, 2, 3, 0);
    }
    // I-type.
    for (Opcode op : {Opcode::ADDI, Opcode::SLLI, Opcode::SRLI,
                      Opcode::SRAI, Opcode::SLTI, Opcode::LD,
                      Opcode::FLD, Opcode::JALR}) {
        add(op, 7, 8, 0, -32768);
        add(op, 7, 8, 0, 32767);
        add(op, 0, 31, 0, 12345);
    }
    // Stores (S-type).
    add(Opcode::ST, 0, 4, 19, -8);
    add(Opcode::FST, 0, 4, 19, 2040);
    // Branches (B-type).
    for (Opcode op : {Opcode::BEQ, Opcode::BNE, Opcode::BLT, Opcode::BGE,
                      Opcode::BLTU, Opcode::BGEU}) {
        add(op, 0, 3, 4, -400);
        add(op, 0, 3, 4, 400);
    }
    // Jumps.
    add(Opcode::JAL, 31, 0, 0, -(1 << 20));
    add(Opcode::JAL, 0, 0, 0, (1 << 20) - 4);
    // No-operand.
    add(Opcode::NOP, 0, 0, 0, 0);
    add(Opcode::HALT, 0, 0, 0, 0);
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EncodingRoundTrip,
                         ::testing::ValuesIn(encodeCases()));

TEST(Encoding, BadOpcodeThrows)
{
    EXPECT_THROW(decode(0xffffffffu), PanicError);
}

TEST(Encoding, ImmediateRangeChecked)
{
    Inst i;
    i.op = Opcode::ADDI;
    i.imm = 70000;
    EXPECT_THROW(encode(i), PanicError);
}

// -------------------------------------------------------------------
// Builder.
// -------------------------------------------------------------------

TEST(Builder, ForwardAndBackwardLabels)
{
    Builder b("t");
    Label fwd = b.newLabel();
    b.li(1, 0);
    Label back = b.here();
    b.addi(1, 1, 1);
    b.li(2, 3);
    b.blt(1, 2, back);
    b.j(fwd);
    b.nop();        // skipped
    b.bind(fwd);
    b.halt();
    Program p = b.build();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.intReg(1), 3u);
}

TEST(Builder, AppendsHaltIfMissing)
{
    Builder b("t");
    b.addi(1, 0, 7);
    Program p = b.build();
    EXPECT_EQ(p.fetch(p.textBase() + 4).op, Opcode::HALT);
}

TEST(Builder, UnboundLabelFails)
{
    Builder b("t");
    Label l = b.newLabel();
    b.j(l);
    EXPECT_THROW(b.build(), PanicError);
}

TEST(Builder, DoubleBindFails)
{
    Builder b("t");
    Label l = b.here();
    EXPECT_THROW(b.bind(l), PanicError);
}

TEST(Builder, DataSegment)
{
    Builder b("t");
    std::uint64_t a = b.dataWord(0xdeadbeef);
    std::uint64_t c = b.dataDouble(2.5);
    std::uint64_t blk = b.dataBlock(4);
    EXPECT_EQ(c, a + 8);
    EXPECT_EQ(blk, c + 8);
    EXPECT_EQ(b.dataTop(), blk + 32);
    Program p = b.build();
    EXPECT_EQ(p.initialData().readWord(a), 0xdeadbeefULL);
    EXPECT_DOUBLE_EQ(p.initialData().readDouble(c), 2.5);
}

class BuilderLi : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(BuilderLi, LoadsExactConstant)
{
    std::int64_t v = GetParam();
    Builder b("li");
    b.li(5, v);
    b.halt();
    Program p = b.build();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.intReg(5), static_cast<std::uint64_t>(v));
}

INSTANTIATE_TEST_SUITE_P(
    Constants, BuilderLi,
    ::testing::Values(0LL, 1LL, -1LL, 42LL, -42LL, 32767LL, -32768LL,
                      32768LL, 65535LL, 65536LL, 0xdeadLL, 0xdeadbeefLL,
                      0x100000000LL, -0x100000000LL,
                      0x7fffffffffffffffLL,
                      static_cast<std::int64_t>(0x8000000000000000ULL),
                      0x0123456789abcdefLL, -981273LL));

// -------------------------------------------------------------------
// Executor semantics, parameterized per operation.
// -------------------------------------------------------------------

struct AluCase
{
    const char *name;
    Opcode op;
    std::uint64_t a, b;
    std::uint64_t expect;
};

class ExecutorAlu : public ::testing::TestWithParam<AluCase>
{};

TEST_P(ExecutorAlu, Computes)
{
    const AluCase &c = GetParam();
    Builder bld("alu");
    bld.li(1, static_cast<std::int64_t>(c.a));
    bld.li(2, static_cast<std::int64_t>(c.b));
    Inst i;
    i.op = c.op;
    i.rd = 3;
    i.rs1 = 1;
    i.rs2 = 2;
    // Emit via the raw builder surface: reuse named emitters.
    switch (c.op) {
      case Opcode::ADD: bld.add(3, 1, 2); break;
      case Opcode::SUB: bld.sub(3, 1, 2); break;
      case Opcode::AND: bld.and_(3, 1, 2); break;
      case Opcode::OR: bld.or_(3, 1, 2); break;
      case Opcode::XOR: bld.xor_(3, 1, 2); break;
      case Opcode::SLL: bld.sll(3, 1, 2); break;
      case Opcode::SRL: bld.srl(3, 1, 2); break;
      case Opcode::SRA: bld.sra(3, 1, 2); break;
      case Opcode::SLT: bld.slt(3, 1, 2); break;
      case Opcode::SLTU: bld.sltu(3, 1, 2); break;
      case Opcode::MUL: bld.mul(3, 1, 2); break;
      case Opcode::DIV: bld.div(3, 1, 2); break;
      case Opcode::REM: bld.rem(3, 1, 2); break;
      default: FAIL() << "unhandled case";
    }
    bld.halt();
    Program p = bld.build();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.intReg(3), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    IntOps, ExecutorAlu,
    ::testing::Values(
        AluCase{"add", Opcode::ADD, 5, 7, 12},
        AluCase{"add-wrap", Opcode::ADD, ~0ULL, 1, 0},
        AluCase{"sub", Opcode::SUB, 5, 7,
                static_cast<std::uint64_t>(-2)},
        AluCase{"and", Opcode::AND, 0xff00, 0x0ff0, 0x0f00},
        AluCase{"or", Opcode::OR, 0xff00, 0x0ff0, 0xfff0},
        AluCase{"xor", Opcode::XOR, 0xff00, 0x0ff0, 0xf0f0},
        AluCase{"sll", Opcode::SLL, 1, 12, 4096},
        AluCase{"srl", Opcode::SRL, 4096, 12, 1},
        AluCase{"srl-neg", Opcode::SRL, ~0ULL, 63, 1},
        AluCase{"sra-neg", Opcode::SRA, static_cast<std::uint64_t>(-64),
                3, static_cast<std::uint64_t>(-8)},
        AluCase{"slt-true", Opcode::SLT,
                static_cast<std::uint64_t>(-5), 3, 1},
        AluCase{"slt-false", Opcode::SLT, 3,
                static_cast<std::uint64_t>(-5), 0},
        AluCase{"sltu", Opcode::SLTU, 3,
                static_cast<std::uint64_t>(-5), 1},
        AluCase{"mul", Opcode::MUL, 1000, 1000, 1000000},
        AluCase{"div", Opcode::DIV, 100, 7, 14},
        AluCase{"div-neg", Opcode::DIV, static_cast<std::uint64_t>(-100),
                7, static_cast<std::uint64_t>(-14)},
        AluCase{"div-zero", Opcode::DIV, 5, 0, ~0ULL},
        AluCase{"rem", Opcode::REM, 100, 7, 2},
        AluCase{"rem-zero", Opcode::REM, 5, 0, 5}));

TEST(Executor, ZeroRegisterIsImmutable)
{
    Builder b("z");
    b.addi(0, 0, 99);
    b.add(1, 0, 0);
    b.halt();
    Program p = b.build();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.intReg(0), 0u);
    EXPECT_EQ(ex.intReg(1), 0u);
}

TEST(Executor, LogicalImmediatesZeroExtend)
{
    Builder b("imm");
    b.li(1, 0);
    b.ori(1, 1, 0x8000);    // must set bit 15 only
    b.halt();
    Program p = b.build();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.intReg(1), 0x8000u);
}

TEST(Executor, LoadStoreRoundtrip)
{
    Builder b("mem");
    std::uint64_t addr = b.dataWord(0);
    b.li(1, static_cast<std::int64_t>(addr));
    b.li(2, 0x12345678);
    b.st(2, 1, 0);
    b.ld(3, 1, 0);
    b.halt();
    Program p = b.build();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.intReg(3), 0x12345678u);
    EXPECT_EQ(ex.readMem(addr), 0x12345678u);
}

TEST(Executor, FpArithmetic)
{
    Builder b("fp");
    std::uint64_t a = b.dataDouble(3.0);
    std::uint64_t c = b.dataDouble(4.0);
    b.li(1, static_cast<std::int64_t>(a));
    b.li(2, static_cast<std::int64_t>(c));
    b.fld(1, 1, 0);
    b.fld(2, 2, 0);
    b.fmul(3, 1, 1);        // 9
    b.fmul(4, 2, 2);        // 16
    b.fadd(5, 3, 4);        // 25
    b.fsqrt(6, 5);          // 5
    b.ftoi(10, 6);
    b.fclt(11, 1, 2);       // 3 < 4
    b.fdiv(7, 2, 1);        // 4/3
    b.halt();
    Program p = b.build();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.intReg(10), 5u);
    EXPECT_EQ(ex.intReg(11), 1u);
    EXPECT_NEAR(ex.fpReg(7), 4.0 / 3.0, 1e-12);
}

TEST(Executor, BranchesAndCalls)
{
    Builder b("br");
    Label f = b.newLabel();
    Label join = b.newLabel();
    b.li(1, 10);
    b.jal(reg::ra, f);      // call
    b.j(join);
    b.bind(f);
    b.addi(1, 1, 5);
    b.ret();
    b.bind(join);
    b.halt();
    Program p = b.build();
    Executor ex(p);
    int steps = 0;
    while (!ex.halted() && steps++ < 100)
        ex.step();
    EXPECT_TRUE(ex.halted());
    EXPECT_EQ(ex.intReg(1), 15u);
}

TEST(Executor, TakenBranchRecordsTarget)
{
    Builder b("t");
    Label l = b.newLabel();
    b.li(1, 1);
    b.bne(1, 0, l);
    b.nop();
    b.bind(l);
    b.halt();
    Program p = b.build();
    Executor ex(p);
    ex.step();              // li
    ExecResult r = ex.step();   // bne
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPc, p.textBase() + 3 * 4);
    ExecResult h = ex.step();
    EXPECT_TRUE(h.halted);
}

TEST(Executor, SeqNumbersAreMonotone)
{
    Builder b("s");
    b.nop();
    b.nop();
    b.halt();
    Program p = b.build();
    Executor ex(p);
    EXPECT_EQ(ex.step().seq, 1u);
    EXPECT_EQ(ex.step().seq, 2u);
    EXPECT_EQ(ex.step().seq, 3u);
    EXPECT_TRUE(ex.halted());
    EXPECT_EQ(ex.instsExecuted(), 3u);
}

TEST(Disassemble, ProducesMnemonics)
{
    Inst i;
    i.op = Opcode::ADD;
    i.rd = 1;
    i.rs1 = 2;
    i.rs2 = 3;
    EXPECT_EQ(disassemble(i), "add r1, r2, r3");
    i.op = Opcode::LD;
    i.rd = 4;
    i.rs1 = 5;
    i.imm = 16;
    EXPECT_EQ(disassemble(i), "ld r4, 16(r5)");
    i.op = Opcode::HALT;
    EXPECT_EQ(disassemble(i), "halt");
}

TEST(Program, ValidPcChecks)
{
    Builder b("p");
    b.nop();
    b.halt();
    Program p = b.build();
    EXPECT_TRUE(p.validPc(p.textBase()));
    EXPECT_TRUE(p.validPc(p.textBase() + 4));
    EXPECT_FALSE(p.validPc(p.textBase() + 8));
    EXPECT_FALSE(p.validPc(p.textBase() + 2));
    EXPECT_FALSE(p.validPc(0));
}

} // namespace
} // namespace mcd
