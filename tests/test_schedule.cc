/**
 * @file
 * Tests for the reconfiguration schedule (log-file) format.
 */

#include <gtest/gtest.h>

#include "analysis/schedule.hh"
#include "common/log.hh"

namespace mcd {
namespace {

TEST(Schedule, FinalizeSortsByTime)
{
    ReconfigSchedule s;
    s.add(3000, Domain::Integer, 500e6);
    s.add(1000, Domain::FloatingPoint, 250e6);
    s.add(2000, Domain::LoadStore, 750e6);
    s.finalize();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.all()[0].when, 1000u);
    EXPECT_EQ(s.all()[1].when, 2000u);
    EXPECT_EQ(s.all()[2].when, 3000u);
}

TEST(Schedule, CountsPerDomain)
{
    ReconfigSchedule s;
    s.add(1, Domain::Integer, 1e9);
    s.add(2, Domain::Integer, 5e8);
    s.add(3, Domain::LoadStore, 5e8);
    EXPECT_EQ(s.countFor(Domain::Integer), 2u);
    EXPECT_EQ(s.countFor(Domain::LoadStore), 1u);
    EXPECT_EQ(s.countFor(Domain::FloatingPoint), 0u);
}

TEST(Schedule, TextRoundtrip)
{
    ReconfigSchedule s;
    s.add(123456789, Domain::Integer, 750e6);
    s.add(999, Domain::FloatingPoint, 250e6);
    s.add(5000000, Domain::LoadStore, 1e9);
    s.finalize();
    std::string text = s.toText();
    ReconfigSchedule back = ReconfigSchedule::fromText(text);
    ASSERT_EQ(back.size(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(back.all()[i].when, s.all()[i].when);
        EXPECT_EQ(back.all()[i].domain, s.all()[i].domain);
        EXPECT_DOUBLE_EQ(back.all()[i].frequency, s.all()[i].frequency);
    }
}

TEST(Schedule, FinalizeIsStableForSameTickEntries)
{
    // Two entries at the same tick must keep their insertion order
    // after finalize() — the later-added one wins when replayed.
    ReconfigSchedule s;
    s.add(2000, Domain::Integer, 500e6);
    s.add(1000, Domain::Integer, 1e9);
    s.add(2000, Domain::Integer, 750e6);
    s.finalize();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.all()[0].when, 1000u);
    EXPECT_DOUBLE_EQ(s.all()[1].frequency, 500e6);
    EXPECT_DOUBLE_EQ(s.all()[2].frequency, 750e6);
}

TEST(Schedule, UnsortedInputHealedByFinalizeSurvivesRoundtrip)
{
    ReconfigSchedule s;
    s.add(9000, Domain::LoadStore, 250e6);
    s.add(100, Domain::Integer, 750e6);
    s.add(9000, Domain::LoadStore, 500e6);
    s.add(100, Domain::FloatingPoint, 250e6);
    s.finalize();
    ReconfigSchedule back = ReconfigSchedule::fromText(s.toText());
    ASSERT_EQ(back.size(), 4u);
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(back.all()[i].when, s.all()[i].when);
        EXPECT_EQ(back.all()[i].domain, s.all()[i].domain);
        EXPECT_DOUBLE_EQ(back.all()[i].frequency, s.all()[i].frequency);
    }
    // Same-tick same-domain order survived the text round-trip.
    EXPECT_DOUBLE_EQ(back.all()[2].frequency, 250e6);
    EXPECT_DOUBLE_EQ(back.all()[3].frequency, 500e6);
}

TEST(Schedule, FromTextSkipsBlankLines)
{
    ReconfigSchedule s =
        ReconfigSchedule::fromText("\n100 INT 500000000\n\n");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.all()[0].domain, Domain::Integer);
}

TEST(Schedule, FromTextRejectsGarbage)
{
    EXPECT_THROW(ReconfigSchedule::fromText("hello world"), FatalError);
    EXPECT_THROW(ReconfigSchedule::fromText("100 BOGUS 5e8"), FatalError);
}

TEST(Schedule, FromTextRejectsTruncatedLines)
{
    EXPECT_THROW(ReconfigSchedule::fromText("100"), FatalError);
    EXPECT_THROW(ReconfigSchedule::fromText("100 INT"), FatalError);
    EXPECT_THROW(ReconfigSchedule::fromText("INT 5e8"), FatalError);
}

TEST(Schedule, FromTextRejectsBadLineAmongGoodOnes)
{
    EXPECT_THROW(
        ReconfigSchedule::fromText(
            "100 INT 500000000\nnonsense\n200 LS 250000000\n"),
        FatalError);
}

TEST(Schedule, EmptyByDefault)
{
    ReconfigSchedule s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.toText(), "");
}

} // namespace
} // namespace mcd
