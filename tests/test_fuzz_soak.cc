/**
 * @file
 * The soak harness end to end: deterministic tuple sampling,
 * outcome classification against declared vs planted faults, the
 * jobs=1-vs-N divergence check, repro-file round-trips, journal
 * resume after interruption, and the signature-preserving shrinker
 * (exercised with a stub oracle so minimization logic is tested
 * without paying for real simulator runs).
 */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fuzz/config_fuzzer.hh"
#include "fuzz/scenario.hh"
#include "fuzz/shrink.hh"
#include "fuzz/soak.hh"

namespace mcd {
namespace {

namespace fs = std::filesystem;
using fuzz::ConfigFuzzer;
using fuzz::GenParams;
using fuzz::Outcome;
using fuzz::OutcomeClass;
using fuzz::Scenario;
using fuzz::ShrinkResult;
using fuzz::SoakOptions;
using fuzz::SoakReport;

/**
 * A small, fast scenario with one replay leg. The phase mix is
 * chosen so the dyn5 schedule contains frequency *rises* — the only
 * transitions a planted vfmisorder can reorder — by leading with a
 * low-ILP branchy phase and ending in a dependence-heavy one.
 */
Scenario
smallScenario()
{
    Scenario s;
    s.workload = GenParams::fromSpec(
        "seed=9235374536318864070;phase=branch:3327:1:16:2:41;"
        "phase=int:4270:4:2048:3:6");
    s.configSpec = "model=XScale;timescale=0.05;dillo=0.01;dilhi=0.03;"
        "seed=7;wdedges=1000000";
    s.legsSpec = "dyn5=replay:0.03";
    return s;
}

struct TempDir
{
    fs::path path;
    TempDir()
        : path(fs::temp_directory_path() /
               ("mcd-soak-test-" + std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

// ------------------------------------------------------- determinism

TEST(FuzzSoak, TupleSamplingIsDeterministic)
{
    ConfigFuzzer fz(99);
    for (std::uint64_t i = 0; i < 8; ++i) {
        Scenario a = fz.tuple(i);
        Scenario b = fz.tuple(i);
        EXPECT_EQ(a.workload.spec(), b.workload.spec());
        EXPECT_EQ(a.configSpec, b.configSpec);
        EXPECT_EQ(a.legsSpec, b.legsSpec);
        EXPECT_EQ(a.faultSpec, b.faultSpec);
    }
}

TEST(FuzzSoak, TuplesAlternateDvfsModels)
{
    // The acceptance criterion asks for coverage of both DVFS models
    // at any budget >= 2, so the model axis cycles instead of being
    // sampled.
    ConfigFuzzer fz(3);
    EXPECT_NE(fz.tuple(0).configSpec.find("model=XScale"),
              std::string::npos);
    EXPECT_NE(fz.tuple(1).configSpec.find("model=Transmeta"),
              std::string::npos);
}

TEST(FuzzSoak, SampledTuplesAreValidByConstruction)
{
    ConfigFuzzer fz(17);
    for (std::uint64_t i = 0; i < 12; ++i) {
        Scenario s = fz.tuple(i);
        EXPECT_TRUE(s.toConfig().validateAll().empty()) << "tuple " << i;
    }
}

// ---------------------------------------------------- classification

TEST(FuzzSoak, CleanScenarioClassifiesOk)
{
    Outcome o = fuzz::runScenario(smallScenario());
    EXPECT_EQ(o.cls, OutcomeClass::Ok) << o.signature << " "
                                       << o.detail;
    EXPECT_TRUE(o.signature.empty());
}

TEST(FuzzSoak, DeclaredFaultClassifiesOkPlantedFaultDoesNot)
{
    // Declared: the classifier predicts the injected failure and
    // treats the run as a successful recovery-path exercise.
    Scenario declared = smallScenario();
    declared.faultSpec = "leg:@/dyn5=throw";
    Outcome od = fuzz::runScenario(declared);
    EXPECT_EQ(od.cls, OutcomeClass::Ok) << od.signature;

    // Planted: same fault through the canary channel must surface.
    Scenario planted = smallScenario();
    planted.plantedSpec = "leg:@/dyn5=throw";
    Outcome op = fuzz::runScenario(planted);
    EXPECT_EQ(op.cls, OutcomeClass::LegFail);
    EXPECT_EQ(op.signature, "legfail:injected@dyn5");
}

TEST(FuzzSoak, PlantedMisorderSurfacesAsInvariantFinding)
{
    Scenario s = smallScenario();
    s.plantedSpec = "leg:@/dyn5=vfmisorder";
    Outcome o = fuzz::runScenario(s);
    EXPECT_EQ(o.cls, OutcomeClass::Invariant) << o.detail;
    EXPECT_EQ(o.signature, "invariant:voltage_leads_freq@dyn5");

    // The identical hazard, declared: expected, hence ok.
    Scenario d = smallScenario();
    d.faultSpec = "leg:@/dyn5=vfmisorder";
    Outcome od = fuzz::runScenario(d);
    EXPECT_EQ(od.cls, OutcomeClass::Ok) << od.signature;
}

TEST(FuzzSoak, JobsIndependenceHoldsOnACleanScenario)
{
    // jobs > 1 arms the divergence re-run: the serial and pooled
    // matrices must digest byte-identically or the outcome flips to
    // Divergence. A pass here is the jobs=1-vs-8 identity check.
    Scenario s = smallScenario();
    s.jobs = 8;
    Outcome o = fuzz::runScenario(s);
    EXPECT_EQ(o.cls, OutcomeClass::Ok) << o.signature << " "
                                       << o.detail;
}

// ------------------------------------------------------------ repros

TEST(FuzzSoak, ReproRoundTripsThroughJson)
{
    Scenario s = smallScenario();
    s.faultSpec = "leg:@/dyn5=flaky:1";
    s.plantedSpec = "leg:@/dyn5=vfmisorder";
    s.jobs = 4;

    std::stringstream buf;
    fuzz::writeRepro(buf, s, "invariant:voltage_leads_freq@dyn5");
    std::optional<fuzz::Repro> r = fuzz::readRepro(buf);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->signature, "invariant:voltage_leads_freq@dyn5");
    EXPECT_EQ(r->scenario.workload.spec(), s.workload.spec());
    EXPECT_EQ(r->scenario.configSpec, s.configSpec);
    EXPECT_EQ(r->scenario.legsSpec, s.legsSpec);
    EXPECT_EQ(r->scenario.faultSpec, s.faultSpec);
    EXPECT_EQ(r->scenario.plantedSpec, s.plantedSpec);
    EXPECT_EQ(r->scenario.jobs, 4);
}

TEST(FuzzSoak, ReproRejectsWrongVersionAndGarbage)
{
    std::stringstream wrong(
        "{ \"version\": \"mcd-repro-v0\", \"signature\": \"x\" }");
    EXPECT_FALSE(fuzz::readRepro(wrong).has_value());
    std::stringstream garbage("not json at all");
    EXPECT_FALSE(fuzz::readRepro(garbage).has_value());
}

TEST(FuzzSoak, FaultPlaceholderTracksTheWorkloadName)
{
    // "@" expansion is what keeps fault sites attached to legs while
    // the shrinker mutates the workload (and hence its hashed name).
    Scenario s = smallScenario();
    s.faultSpec = "leg:@/dyn5=throw";
    std::string bench = s.benchName();
    EXPECT_EQ(s.expandedFaults(), "leg:" + bench + "/dyn5=throw");

    s.workload.phases.pop_back();
    EXPECT_NE(s.benchName(), bench);
    EXPECT_EQ(s.expandedFaults(),
              "leg:" + s.benchName() + "/dyn5=throw");
}

// ---------------------------------------------------------- shrinker

/**
 * Stub oracle: "fails" with a fixed invariant signature whenever the
 * leg set still contains dyn5, regardless of everything else. The
 * minimal signature-preserving scenario is therefore one leg, one
 * phase, minimal numeric dimensions.
 */
Outcome
stubOracle(const Scenario &s)
{
    Outcome o;
    if (s.legsSpec.find("dyn5") != std::string::npos) {
        o.cls = OutcomeClass::Invariant;
        o.signature = "invariant:voltage_leads_freq@dyn5";
    }
    return o;
}

TEST(FuzzSoak, ShrinkerMinimizesWhilePreservingTheSignature)
{
    Scenario fat = smallScenario();
    fat.legsSpec = "dyn5=replay:0.05|dyn1=replay:0.01|"
        "online=ctrl:online-queue";
    fat.faultSpec = "leg:@/dyn1=throw";
    fat.configSpec += ";sampling=detailed=1000,ff=4000,warmup=250";

    Outcome baseline = stubOracle(fat);
    ASSERT_TRUE(baseline.failed());

    ShrinkResult r =
        fuzz::shrinkScenario(fat, baseline, 200, stubOracle);
    EXPECT_GT(r.reductions, 0);
    EXPECT_LE(r.runs, 200);
    EXPECT_EQ(r.outcome.signature, baseline.signature);

    // Everything droppable under this oracle is gone.
    EXPECT_EQ(r.minimized.legsSpec, "dyn5=replay:0.05");
    EXPECT_TRUE(r.minimized.faultSpec.empty());
    EXPECT_EQ(r.minimized.configSpec.find("sampling"),
              std::string::npos);
    EXPECT_EQ(r.minimized.workload.phases.size(), 1u);

    // The minimized scenario is still valid by construction.
    EXPECT_TRUE(r.minimized.toConfig().validateAll().empty());
}

TEST(FuzzSoak, ShrinkerReturnsTheOriginalWhenNothingShrinks)
{
    Scenario s = smallScenario();
    s.workload.phases.resize(1);
    Outcome baseline = stubOracle(s);

    // An oracle that only accepts this exact leg+phase shape: every
    // candidate changes the signature, so no reduction is possible.
    auto strict = [&](const Scenario &c) {
        Outcome o;
        if (c.legsSpec == s.legsSpec &&
            c.workload.spec() == s.workload.spec()) {
            o.cls = OutcomeClass::Invariant;
            o.signature = baseline.signature;
        }
        return o;
    };
    ShrinkResult r = fuzz::shrinkScenario(s, baseline, 50, strict);
    EXPECT_EQ(r.reductions, 0);
    EXPECT_EQ(r.minimized.workload.spec(), s.workload.spec());
    EXPECT_EQ(r.minimized.legsSpec, s.legsSpec);
}

// ------------------------------------------------------ soak + journal

TEST(FuzzSoak, JournalResumesAndExtends)
{
    TempDir tmp;
    SoakOptions opts;
    opts.rootSeed = 5;
    opts.budget = 2;
    opts.outDir = tmp.path.string();

    SoakReport first = fuzz::runSoak(opts);
    EXPECT_EQ(first.completed, 2u);
    EXPECT_EQ(first.resumed, 0u);

    // Re-running with a larger budget must skip the finished tuples
    // (the journal header pins seed/jobs/planted but not budget).
    opts.budget = 3;
    SoakReport second = fuzz::runSoak(opts);
    EXPECT_EQ(second.resumed, 2u);
    EXPECT_EQ(second.completed, 1u);

    // A truncated journal tail — the shape a mid-run kill leaves —
    // resumes past what was flushed and re-runs the rest.
    {
        std::ifstream in(tmp.path / "journal.txt");
        std::string header, line1, line;
        ASSERT_TRUE(std::getline(in, header));
        // Skip annotation comments (the "# runspec" line) to find the
        // first completed-tuple entry, but keep them in the rewrite:
        // a real mid-run kill never removes them.
        std::string comments;
        while (std::getline(in, line)) {
            if (!line.empty() && line[0] == '#') {
                comments += line + "\n";
                continue;
            }
            line1 = line;
            break;
        }
        ASSERT_FALSE(line1.empty());
        in.close();
        std::ofstream out(tmp.path / "journal.txt", std::ios::trunc);
        out << header << "\n" << comments << line1 << "\n";
    }
    SoakReport third = fuzz::runSoak(opts);
    EXPECT_EQ(third.resumed, 1u);
    EXPECT_EQ(third.completed, 2u);
}

TEST(FuzzSoak, IncompatibleJournalHeaderStartsFresh)
{
    TempDir tmp;
    SoakOptions opts;
    opts.rootSeed = 5;
    opts.budget = 1;
    opts.outDir = tmp.path.string();
    SoakReport first = fuzz::runSoak(opts);
    EXPECT_EQ(first.completed, 1u);

    // A different root seed samples different tuples; resuming from
    // the old journal would silently skip unrun work.
    opts.rootSeed = 6;
    SoakReport second = fuzz::runSoak(opts);
    EXPECT_EQ(second.resumed, 0u);
    EXPECT_EQ(second.completed, 1u);
}

TEST(FuzzSoak, PlantedSoakRecordsFindingAndReplayableRepro)
{
    TempDir tmp;
    SoakOptions opts;
    opts.rootSeed = 3;
    opts.budget = 1;
    opts.outDir = tmp.path.string();
    opts.planted = "dyn5=vfmisorder";
    opts.shrinkRuns = 4;        // a few reduction steps, kept cheap

    SoakReport report = fuzz::runSoak(opts);
    EXPECT_EQ(fuzz::soakExitCode(report), 1);
    ASSERT_EQ(report.findings.size(), 1u);
    const fuzz::SoakFinding &f = report.findings[0];
    EXPECT_EQ(f.outcome.signature,
              "invariant:voltage_leads_freq@dyn5");
    ASSERT_FALSE(f.reproPath.empty());

    // The persisted repro replays to the identical signature.
    fuzz::ReplayResult r = fuzz::replayRepro(f.reproPath);
    EXPECT_TRUE(r.loaded);
    EXPECT_TRUE(r.matched) << "recorded " << r.recorded
                           << " replayed " << r.outcome.signature;

    // Findings stay sticky across a resume: the journal remembers.
    SoakReport again = fuzz::runSoak(opts);
    EXPECT_EQ(again.completed, 0u);
    EXPECT_EQ(again.priorFindings, 1u);
    EXPECT_EQ(fuzz::soakExitCode(again), 1);
}

} // namespace
} // namespace mcd
