/**
 * @file
 * Tests for the experiment results cache layer: serialization
 * round-trip, rejection of truncated / version-mismatched files
 * (silent fallback, never a crash), and atomic publication.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace mcd {
namespace {

namespace fs = std::filesystem;

/** A fully populated synthetic result (no simulation needed). */
BenchmarkResults
synthetic()
{
    BenchmarkResults r;
    r.name = "synthetic";
    r.globalFrequency = 625e6;
    for (const LegSpec &spec : defaultLegs(ExperimentConfig{}))
        r.legs.push_back({spec, RunResult{}, 0});
    r.legs[0].scheduleSize = 42;    // dyn1
    r.legs[1].scheduleSize = 137;   // dyn5
    std::vector<RunResult *> runs{&r.baseline, &r.mcdBaseline};
    for (ControllerLeg &l : r.legs)
        runs.push_back(&l.run);
    double x = 1.0;
    for (RunResult *run : runs) {
        run->execTime = static_cast<Tick>(217434567 * x);
        run->committed = static_cast<std::uint64_t>(119000 * x);
        run->ipc = 0.6180339887498949 * x;
        run->totalEnergy = 1.4142135623730951e-3 * x;
        run->energyDelay = run->totalEnergy * 2.1743e-4 * x;
        for (int d = 0; d < numDomains; ++d) {
            DomainSummary &s = run->domains[d];
            s.cycles = 217000 + 1000 * d;
            s.energy = 3.3e-4 * x + d;
            s.avgFrequency = 8.7654321e8 - 1e7 * d;
            s.minFrequency = 2.5e8;
            s.maxFrequency = 1e9;
            s.reconfigurations = 17 + d;
        }
        x *= 1.0625;
    }
    return r;
}

void
expectEqual(const BenchmarkResults &a, const BenchmarkResults &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.globalFrequency, b.globalFrequency);
    ASSERT_EQ(a.legs.size(), b.legs.size());
    std::vector<const RunResult *> ra{&a.baseline, &a.mcdBaseline};
    std::vector<const RunResult *> rb{&b.baseline, &b.mcdBaseline};
    for (std::size_t i = 0; i < a.legs.size(); ++i) {
        EXPECT_EQ(a.legs[i].spec.name, b.legs[i].spec.name);
        EXPECT_EQ(a.legs[i].scheduleSize, b.legs[i].scheduleSize);
        ra.push_back(&a.legs[i].run);
        rb.push_back(&b.legs[i].run);
    }
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i]->execTime, rb[i]->execTime);
        EXPECT_EQ(ra[i]->committed, rb[i]->committed);
        EXPECT_EQ(ra[i]->ipc, rb[i]->ipc);
        EXPECT_EQ(ra[i]->totalEnergy, rb[i]->totalEnergy);
        EXPECT_EQ(ra[i]->energyDelay, rb[i]->energyDelay);
        for (int d = 0; d < numDomains; ++d) {
            EXPECT_EQ(ra[i]->domains[d].cycles, rb[i]->domains[d].cycles);
            EXPECT_EQ(ra[i]->domains[d].energy, rb[i]->domains[d].energy);
            EXPECT_EQ(ra[i]->domains[d].avgFrequency,
                      rb[i]->domains[d].avgFrequency);
            EXPECT_EQ(ra[i]->domains[d].minFrequency,
                      rb[i]->domains[d].minFrequency);
            EXPECT_EQ(ra[i]->domains[d].maxFrequency,
                      rb[i]->domains[d].maxFrequency);
            EXPECT_EQ(ra[i]->domains[d].reconfigurations,
                      rb[i]->domains[d].reconfigurations);
        }
    }
}

TEST(ExperimentCache, WriteReadRoundTripInMemory)
{
    BenchmarkResults r = synthetic();
    std::stringstream ss;
    expcache::write(ss, r);
    auto back = expcache::read(ss, "synthetic");
    ASSERT_TRUE(back.has_value());
    expectEqual(r, *back);
}

TEST(ExperimentCache, WriteReadRoundTripThroughTempDir)
{
    fs::path dir = fs::temp_directory_path() / "mcd-cacheio-test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    fs::path file = dir / "synthetic.txt";

    BenchmarkResults r = synthetic();
    {
        std::ofstream out(file);
        expcache::write(out, r);
    }
    std::ifstream in(file);
    auto back = expcache::read(in, "synthetic");
    ASSERT_TRUE(back.has_value());
    expectEqual(r, *back);
    fs::remove_all(dir);
}

TEST(ExperimentCache, RejectsVersionMismatch)
{
    std::stringstream ss;
    expcache::write(ss, synthetic());
    std::string text = ss.str();
    // Bump the version header and nothing else.
    std::string ver = expcache::version;
    std::string bumped = text;
    bumped.replace(bumped.find(ver), ver.size(), "mcd-cache-v0");
    std::istringstream in(bumped);
    EXPECT_FALSE(expcache::read(in, "synthetic").has_value());
}

TEST(ExperimentCache, RejectsTruncation)
{
    std::stringstream ss;
    expcache::write(ss, synthetic());
    std::string text = ss.str();
    // Any prefix that loses content must be rejected, from the empty
    // file to one cut inside the trailing sentinel. (Only trailing
    // whitespace may be dropped harmlessly.)
    for (std::size_t len : {std::size_t{0}, text.size() / 4,
                            text.size() / 2, text.size() - 2}) {
        std::istringstream in(text.substr(0, len));
        EXPECT_FALSE(expcache::read(in, "synthetic").has_value())
            << "accepted truncated prefix of " << len << " bytes";
    }
}

TEST(ExperimentCache, RejectsGarbage)
{
    std::istringstream in("not a cache file at all\n1 2 3\n");
    EXPECT_FALSE(expcache::read(in, "x").has_value());
}

TEST(ExperimentCache, RejectsChecksumMismatch)
{
    std::stringstream ss;
    expcache::write(ss, synthetic());
    std::string text = ss.str();
    // Flip one digit deep inside the payload. The record still parses
    // (same shape, different value), so only the trailing FNV-1a
    // checksum can catch it.
    std::size_t pos = text.find("217000");
    ASSERT_NE(pos, std::string::npos);
    std::string flipped = text;
    flipped[pos] = '9';
    std::istringstream in(flipped);
    EXPECT_FALSE(expcache::read(in, "synthetic").has_value());
    // The unflipped original still reads fine.
    std::istringstream ok(text);
    EXPECT_TRUE(expcache::read(ok, "synthetic").has_value());
}

TEST(ExperimentCache, RejectsMissingEndSentinel)
{
    std::stringstream ss;
    expcache::write(ss, synthetic());
    std::string text = ss.str();
    std::size_t pos = text.rfind("end");
    ASSERT_NE(pos, std::string::npos);
    // Even with a checksum recomputed over the sentinel-free payload,
    // the reader must notice the missing terminator.
    std::string payload = text.substr(0, pos);
    std::ostringstream forged;
    forged << payload;     // no "end", no checksum line at all
    std::istringstream in(forged.str());
    EXPECT_FALSE(expcache::read(in, "synthetic").has_value());
}

TEST(ExperimentCache, CorruptFileIsQuarantinedAndRecomputed)
{
    fs::path dir = fs::temp_directory_path() / "mcd-cache-corrupt";
    fs::remove_all(dir);

    ExperimentConfig ec;
    ec.cacheDir = dir.string();
    ExperimentRunner runner(ec);

    // Plant a torn file — current version header, truncated payload —
    // exactly where the cache would look.
    fs::create_directories(dir);
    std::string path = runner.cachePath("mst");
    ASSERT_FALSE(path.empty());
    {
        std::ofstream out(path);
        out << expcache::version << "\n6.25e+08 42";     // truncated
    }

    // Must recompute (no crash) and quarantine the damaged bytes.
    BenchmarkResults fresh = runner.runBenchmark("mst");
    EXPECT_GT(fresh.baseline.committed, 0u);
    EXPECT_EQ(runner.cacheQuarantines(), 1u);
    EXPECT_TRUE(fs::exists(path + ".corrupt"));

    // The recomputed row was republished; a fresh runner loads it.
    ExperimentRunner again(ec);
    BenchmarkResults cached = again.runBenchmark("mst");
    expectEqual(fresh, cached);
    EXPECT_EQ(again.cacheQuarantines(), 0u);

    // Atomic publication: only the final .txt plus the quarantined
    // .corrupt may exist — no leftover temporaries.
    for (const auto &e : fs::directory_iterator(dir)) {
        bool expected = e.path().extension() == ".txt" ||
                        e.path().extension() == ".corrupt";
        EXPECT_TRUE(expected) << e.path();
    }
    fs::remove_all(dir);
}

TEST(ExperimentCache, StaleVersionRecomputesWithoutQuarantine)
{
    fs::path dir = fs::temp_directory_path() / "mcd-cache-stale";
    fs::remove_all(dir);

    ExperimentConfig ec;
    ec.cacheDir = dir.string();
    ExperimentRunner runner(ec);

    fs::create_directories(dir);
    std::string path = runner.cachePath("mst");
    ASSERT_FALSE(path.empty());
    {
        std::ofstream out(path);
        out << "mcd-cache-v0\nwhatever came before\n";
    }

    // Format churn is expected, not damage: silent recompute, no
    // quarantine file.
    BenchmarkResults fresh = runner.runBenchmark("mst");
    EXPECT_GT(fresh.baseline.committed, 0u);
    EXPECT_EQ(runner.cacheQuarantines(), 0u);
    EXPECT_FALSE(fs::exists(path + ".corrupt"));
    fs::remove_all(dir);
}

} // namespace
} // namespace mcd
