/**
 * @file
 * Integration tests asserting the paper's headline result shapes
 * across a representative subset of benchmarks (the full matrix is
 * the bench harness's job; these keep CI fast).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace mcd {
namespace {

/** Three benchmarks spanning compute-, memory-, and FP-bound. */
const char *kBenches[] = {"adpcm", "mcf", "power"};

TEST(Integration, PaperOrderingAcrossKinds)
{
    double dynEdp = 0.0, globalEdp = 0.0, dyn1Edp = 0.0;
    for (const char *name : kBenches) {
        ExperimentConfig ec;
        ExperimentRunner runner(ec);
        BenchmarkResults r = runner.runBenchmark(name);
        dynEdp += r.edpImprovement(r.leg("dyn5"));
        dyn1Edp += r.edpImprovement(r.leg("dyn1"));
        globalEdp += r.edpImprovement(r.leg("global"));
    }
    dynEdp /= std::size(kBenches);
    dyn1Edp /= std::size(kBenches);
    globalEdp /= std::size(kBenches);

    // Figure 7's ordering: dyn-5% > dyn-1% > global, with dynamic
    // clearly positive and global small.
    EXPECT_GT(dynEdp, 0.05);
    EXPECT_GT(dynEdp, dyn1Edp);
    EXPECT_GT(dyn1Edp, globalEdp);
    EXPECT_LT(globalEdp, 0.06);
}

TEST(Integration, TransmetaInferiorToXScale)
{
    // Paper Section 4: the Transmeta model reconfigures less and
    // saves less energy than XScale at the same target.
    ExperimentConfig xs;
    ExperimentConfig tm;
    tm.model = DvfsKind::Transmeta;
    std::uint64_t rcXs = 0, rcTm = 0;
    double esXs = 0.0, esTm = 0.0;
    for (const char *name : {"art", "gcc"}) {
        ExperimentRunner rxs(xs), rtm(tm);
        auto a = rxs.runDynamic(name, 0.05);
        auto b = rtm.runDynamic(name, 0.05);
        for (int d = 1; d < numDomains; ++d) {
            rcXs += a.result.domains[d].reconfigurations;
            rcTm += b.result.domains[d].reconfigurations;
        }
        esXs += a.result.totalEnergy;
        esTm += b.result.totalEnergy;
        (void)esXs;
        (void)esTm;
    }
    EXPECT_GT(rcXs, rcTm);
}

TEST(Integration, FpDomainRidesAtMinimumForIntegerCode)
{
    // Paper Section 4: the FP domain can be scaled to the lowest
    // frequency in many (integer) applications.
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    auto dyn = runner.runDynamic("bzip2", 0.05);
    EXPECT_NEAR(dyn.result.domains[domainIndex(Domain::FloatingPoint)]
                    .avgFrequency, 250e6, 30e6);
}

TEST(Integration, HighIpcCodeResistsScaling)
{
    // g721: balanced mix and IPC > 2; integer and load/store domains
    // must stay near full speed (paper Section 4).
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    auto dyn = runner.runDynamic("g721", 0.01);
    EXPECT_GT(dyn.result.domains[domainIndex(Domain::Integer)]
                  .avgFrequency, 900e6);
    EXPECT_GT(dyn.result.domains[domainIndex(Domain::LoadStore)]
                  .avgFrequency, 800e6);
}

TEST(Integration, MemoryBoundCodeScalesDeeply)
{
    // mcf: cache-miss slack lets both back-end compute domains scale
    // far down with little performance cost (paper's gcc/mcf story).
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    auto dyn = runner.runDynamic("mcf", 0.05);
    EXPECT_LT(dyn.result.domains[domainIndex(Domain::Integer)]
                  .avgFrequency, 900e6);
    EXPECT_NEAR(dyn.result.domains[domainIndex(Domain::FloatingPoint)]
                    .avgFrequency, 250e6, 30e6);
}

TEST(Integration, ArtFrequencyTraceTracksPhases)
{
    // Figure 8: art's FP domain changes frequency across program
    // phases under the XScale model.
    ExperimentConfig ec;
    ec.recordFreqTrace = true;
    ExperimentRunner runner(ec);
    auto dyn = runner.runDynamic("art", 0.01);
    const auto &fpTrace =
        dyn.result.freqTraces[domainIndex(Domain::FloatingPoint)];
    EXPECT_GE(fpTrace.size(), 2u);
    Hertz lo = 1e18, hi = 0;
    for (const FreqTracePoint &pt : fpTrace) {
        lo = std::min(lo, pt.frequency);
        hi = std::max(hi, pt.frequency);
    }
    EXPECT_LT(lo, 500e6);
}

} // namespace
} // namespace mcd
