/**
 * @file
 * Tests for the clustering phase: frequency selection, merging,
 * transition lead times, and schedule emission.
 */

#include <gtest/gtest.h>

#include "analysis/clustering.hh"

namespace mcd {
namespace {

constexpr Hertz fmax = 1e9;
constexpr Hertz fmin = 250e6;

DomainHistogram
histAt(Hertz f, double work)
{
    DomainHistogram h;
    h.work[histogramBin(f, fmin, fmax)] = work;
    return h;
}

ClusteringConfig
cfg(DvfsKind model = DvfsKind::XScale, double d = 0.05)
{
    ClusteringConfig c;
    c.model = model;
    c.targetDilation = d;
    return c;
}

TEST(Clustering, CandidateCountsMatchModels)
{
    EXPECT_EQ(ClusterPhase(cfg(DvfsKind::XScale)).candidates().size(),
              320u);
    EXPECT_EQ(ClusterPhase(cfg(DvfsKind::Transmeta)).candidates().size(),
              32u);
}

TEST(Clustering, CandidatesAscendWithinRange)
{
    ClusterPhase cp(cfg());
    const auto &f = cp.candidates();
    EXPECT_DOUBLE_EQ(f.front(), fmin);
    EXPECT_DOUBLE_EQ(f.back(), fmax);
    for (std::size_t i = 1; i < f.size(); ++i)
        EXPECT_GT(f[i], f[i - 1]);
}

TEST(Clustering, DilationZeroAtOrAboveAssignedFrequency)
{
    ClusterPhase cp(cfg());
    DomainHistogram h = histAt(500e6, 10000.0);
    EXPECT_DOUBLE_EQ(cp.dilationAt(h, 1e9), 0.0);
    EXPECT_NEAR(cp.dilationAt(h, 510e6), 0.0, 1500.0);
}

TEST(Clustering, DilationGrowsAsFrequencyDrops)
{
    ClusterPhase cp(cfg());
    DomainHistogram h = histAt(1e9, 10000.0);
    double prev = 0.0;
    for (Hertz f : {900e6, 700e6, 500e6, 250e6}) {
        double d = cp.dilationAt(h, f);
        EXPECT_GT(d, prev);
        prev = d;
    }
    // Exact form: work * fmax * (1/f - 1/fa).
    EXPECT_NEAR(cp.dilationAt(h, 500e6),
                10000.0 * 1e9 * (1.0 / 500e6 - 1.0 /
                                 histogramBinFreq(319, fmin, fmax)),
                30.0);
}

TEST(Clustering, EnergyQuadraticInVoltage)
{
    ClusterPhase cp(cfg());
    DomainHistogram h = histAt(1e9, 1000.0);
    double eFull = cp.energyAt(h, 1e9);
    double eMin = cp.energyAt(h, 250e6);
    EXPECT_DOUBLE_EQ(eFull, 1000.0);
    EXPECT_NEAR(eMin, 1000.0 * (0.65 / 1.2) * (0.65 / 1.2), 1e-6);
}

TEST(Clustering, EnergyIncludesIdleTerm)
{
    ClusteringConfig c = cfg();
    c.idlePowerFraction = 0.5;
    ClusterPhase cp(c);
    DomainHistogram empty;
    EXPECT_DOUBLE_EQ(cp.energyAt(empty, 1e9, 1000), 500.0);
}

TEST(Clustering, MinFeasibleRespectsBudget)
{
    ClusterPhase cp(cfg(DvfsKind::XScale, 0.05));
    // 10 us of 1 GHz-bin work in a 50 us interval; budget 2.5 us.
    DomainHistogram h = histAt(1e9, 10'000'000.0);
    Hertz f = cp.minFeasibleFrequency(h, 50'000'000);
    EXPECT_LE(cp.dilationAt(h, f), 0.05 * 50'000'000.0);
    // One step slower must violate the budget.
    const auto &cands = cp.candidates();
    for (std::size_t i = 1; i < cands.size(); ++i) {
        if (cands[i] == f) {
            EXPECT_GT(cp.dilationAt(h, cands[i - 1]),
                      0.05 * 50'000'000.0);
            break;
        }
    }
}

TEST(Clustering, EmptyHistogramScalesToMinimum)
{
    ClusterPhase cp(cfg());
    DomainHistogram h;
    EXPECT_DOUBLE_EQ(cp.minFeasibleFrequency(h, 50'000'000), fmin);
}

TEST(Clustering, TransmetaReconfigChargeRaisesFrequency)
{
    // The same histogram, the same budget: the Transmeta model must
    // choose an equal-or-higher frequency because each boundary costs
    // a PLL re-lock.
    DomainHistogram h = histAt(1e9, 3'000'000.0);
    ClusterPhase xs(cfg(DvfsKind::XScale, 0.05));
    ClusterPhase tm(cfg(DvfsKind::Transmeta, 0.05));
    Hertz fx = xs.minFeasibleFrequency(h, 50'000'000);
    Hertz ft = tm.minFeasibleFrequency(h, 50'000'000);
    EXPECT_GE(ft, fx);
}

TEST(Clustering, TransitionTimes)
{
    ClusterPhase xs(cfg(DvfsKind::XScale));
    EXPECT_EQ(xs.transitionTime(1e9, 1e9), 0u);
    // Full range: 320 steps * 0.1718 us = 55 us.
    EXPECT_NEAR(static_cast<double>(xs.transitionTime(1e9, 250e6)),
                fromMicroseconds(55.0), fromMicroseconds(0.2));
    ClusterPhase tm(cfg(DvfsKind::Transmeta));
    // Full range: 32 steps * 20 us + 15 us re-lock.
    EXPECT_NEAR(static_cast<double>(tm.transitionTime(250e6, 1e9)),
                fromMicroseconds(655.0), fromMicroseconds(1.0));
}

std::vector<IntervalHistos>
twoPhaseIntervals()
{
    // Four 50 us intervals: FP busy in the first two, idle after.
    std::vector<IntervalHistos> ivs;
    for (int i = 0; i < 4; ++i) {
        IntervalHistos iv;
        iv.start = i * 50'000'000ULL;
        iv.end = (i + 1) * 50'000'000ULL;
        iv.hist[domainIndex(Domain::Integer)] = histAt(1e9, 30'000'000.0);
        if (i < 2) {
            iv.hist[domainIndex(Domain::FloatingPoint)] =
                histAt(1e9, 30'000'000.0);
        }
        iv.hist[domainIndex(Domain::LoadStore)] =
            histAt(500e6, 4'000'000.0);
        ivs.push_back(iv);
    }
    return ivs;
}

TEST(Clustering, PlansCoverTimelinePerDomain)
{
    ClusterPhase cp(cfg());
    ClusterResult r = cp.run(twoPhaseIntervals());
    for (Domain d : scalableDomains) {
        const auto &plan = r.plans[domainIndex(d)];
        ASSERT_FALSE(plan.empty());
        EXPECT_EQ(plan.front().start, 0u);
        EXPECT_EQ(plan.back().end, 200'000'000u);
        for (std::size_t i = 1; i < plan.size(); ++i)
            EXPECT_EQ(plan[i].start, plan[i - 1].end);
    }
}

TEST(Clustering, FpPhaseChangeDetected)
{
    ClusterPhase cp(cfg());
    ClusterResult r = cp.run(twoPhaseIntervals());
    const auto &fp = r.plans[domainIndex(Domain::FloatingPoint)];
    ASSERT_GE(fp.size(), 2u);
    // Busy phase near full speed; idle phase at minimum.
    EXPECT_GT(fp.front().frequency, 900e6);
    EXPECT_DOUBLE_EQ(fp.back().frequency, fmin);
}

TEST(Clustering, FrontEndNeverScheduled)
{
    ClusterPhase cp(cfg());
    ClusterResult r = cp.run(twoPhaseIntervals());
    EXPECT_EQ(r.schedule.countFor(Domain::FrontEnd), 0u);
    EXPECT_TRUE(r.plans[domainIndex(Domain::FrontEnd)].empty());
}

TEST(Clustering, ScheduleSortedWithLeadTimes)
{
    ClusterPhase cp(cfg());
    ClusterResult r = cp.run(twoPhaseIntervals());
    const auto &es = r.schedule.all();
    ASSERT_FALSE(es.empty());
    for (std::size_t i = 1; i < es.size(); ++i)
        EXPECT_GE(es[i].when, es[i - 1].when);
    // The FP drop at t=100us initiates no later than the boundary
    // (XScale down-transitions apply immediately, so their lead time
    // is zero; upward changes lead by the full voltage ramp).
    bool found = false;
    for (const ReconfigEntry &e : es) {
        if (e.domain == Domain::FloatingPoint && e.frequency < 300e6) {
            found = true;
            EXPECT_LE(e.when, 100'000'000u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Clustering, IdenticalIntervalsMergeToOneSegment)
{
    std::vector<IntervalHistos> ivs;
    for (int i = 0; i < 4; ++i) {
        IntervalHistos iv;
        iv.start = i * 50'000'000ULL;
        iv.end = (i + 1) * 50'000'000ULL;
        iv.hist[domainIndex(Domain::Integer)] = histAt(700e6, 20'000'000.0);
        ivs.push_back(iv);
    }
    ClusterPhase cp(cfg());
    ClusterResult r = cp.run(ivs);
    EXPECT_EQ(r.plans[domainIndex(Domain::Integer)].size(), 1u);
    // At most one reconfiguration for the integer domain.
    EXPECT_LE(r.schedule.countFor(Domain::Integer), 1u);
}

TEST(Clustering, EmptyInputYieldsEmptyResult)
{
    ClusterPhase cp(cfg());
    ClusterResult r = cp.run({});
    EXPECT_TRUE(r.schedule.empty());
}

} // namespace
} // namespace mcd
