/**
 * @file
 * Tests for the telemetry layer (src/obs): stats registry, time-series
 * sampler, Chrome-trace export, and their wiring through McdProcessor
 * and the experiment matrix.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/schedule.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "core/processor.hh"
#include "obs/stats_registry.hh"
#include "obs/telemetry.hh"
#include "obs/time_series.hh"
#include "obs/trace_export.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::StatKind;
using obs::StatsRegistry;
using obs::TimeSample;
using obs::TimeSeriesSampler;

/** Structural JSON check: balanced braces/brackets outside strings. */
void
expectBalancedJson(const std::string &text)
{
    int brace = 0, bracket = 0;
    bool inString = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': ++brace; break;
          case '}': --brace; break;
          case '[': ++bracket; break;
          case ']': --bracket; break;
        }
        EXPECT_GE(brace, 0);
        EXPECT_GE(bracket, 0);
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
    EXPECT_FALSE(inString);
}

TEST(StatsRegistry, LookupAndIteration)
{
    StatsRegistry reg;
    Counter &c = reg.counter("clock.int.freq_changes", "changes");
    Gauge &g = reg.gauge("run.ipc");
    c.inc();
    c.inc(4);
    g.set(1.25);

    // Registration is idempotent: same name, same object.
    EXPECT_EQ(&reg.counter("clock.int.freq_changes"), &c);
    EXPECT_EQ(reg.size(), 2u);

    const StatsRegistry::Entry *e = reg.find("clock.int.freq_changes");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->kind(), StatKind::Counter);
    EXPECT_EQ(std::get<Counter>(e->stat).value(), 5u);
    EXPECT_EQ(e->desc, "changes");
    EXPECT_EQ(reg.find("nope"), nullptr);

    // entries() preserves registration order.
    EXPECT_EQ(reg.entries()[0].name, "clock.int.freq_changes");
    EXPECT_EQ(reg.entries()[1].name, "run.ipc");
}

TEST(StatsRegistry, WithPrefixRespectsDottedBoundaries)
{
    StatsRegistry reg;
    reg.counter("clock.int.x");
    reg.counter("clock.fp.x");
    reg.counter("clocking.y");   // must NOT match prefix "clock"
    reg.counter("clock");        // exact match counts

    auto under = reg.withPrefix("clock");
    ASSERT_EQ(under.size(), 3u);
    EXPECT_EQ(under[0]->name, "clock.int.x");
    EXPECT_EQ(under[1]->name, "clock.fp.x");
    EXPECT_EQ(under[2]->name, "clock");

    EXPECT_EQ(reg.withPrefix("clock.int").size(), 1u);
    EXPECT_TRUE(reg.withPrefix("missing").empty());
}

TEST(StatsRegistry, MergeCombinesByName)
{
    StatsRegistry a;
    a.counter("n").inc(3);
    a.gauge("g").set(1.0);
    a.histogram("h", {1.0, 2.0}).add(0.5);

    StatsRegistry b;
    b.counter("n").inc(4);
    b.gauge("g").set(7.0);
    b.histogram("h", {1.0, 2.0}).add(5.0);
    b.counter("only_in_b").inc(9);

    a.merge(b);
    EXPECT_EQ(a.counter("n").value(), 7u);
    EXPECT_DOUBLE_EQ(a.gauge("g").value(), 7.0);    // later value wins
    const Histogram &h = a.histogram("h", {1.0, 2.0});
    EXPECT_EQ(h.summary().count(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);    // 0.5 <= 1.0
    EXPECT_EQ(h.bucketCount(2), 1u);    // 5.0 overflows
    EXPECT_EQ(a.counter("only_in_b").value(), 9u);
}

TEST(Histogram, BucketingIsUpperInclusive)
{
    Histogram h({0.5, 1.0});
    h.add(0.5);     // first bucket (inclusive upper bound)
    h.add(0.50001); // second bucket
    h.add(1.0);     // second bucket
    h.add(42.0);    // overflow
    ASSERT_EQ(h.numBuckets(), 3u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_DOUBLE_EQ(h.upperBound(0), 0.5);
    EXPECT_TRUE(std::isinf(h.upperBound(2)));
    EXPECT_EQ(h.summary().count(), 4u);
    EXPECT_DOUBLE_EQ(h.summary().max(), 42.0);
}

TEST(TimeSeriesSampler, PeriodSemantics)
{
    TimeSeriesSampler s(100);
    EXPECT_TRUE(s.enabled());
    // The first sample is due at one full period, not at t=0.
    EXPECT_EQ(s.nextDue(), 100u);
    EXPECT_FALSE(s.due(99));
    EXPECT_TRUE(s.due(100));

    TimeSample t;
    t.when = 105;
    s.record(t);
    EXPECT_EQ(s.nextDue(), 200u);

    // A long edge-free gap yields ONE catch-up sample, then the due
    // time advances past the recorded point.
    t.when = 730;
    s.record(t);
    EXPECT_EQ(s.samples().size(), 2u);
    EXPECT_EQ(s.nextDue(), 800u);

    TimeSeriesSampler off(0);
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(off.nextDue(), TimeSeriesSampler::never);
    EXPECT_FALSE(off.due(1'000'000));
}

TEST(TraceExport, ChromeJsonIsWellFormedAndDeterministic)
{
    auto build = [] {
        obs::TraceExporter exp(true);
        exp.complete("PLL re-lock", "dvfs", 1, 1'000'000, 15'000'000);
        exp.instant("request INT", "control", 1, 2'500'000,
                    "\"mhz\": 800");
        exp.counter("INT frequency", "MHz", 1, 2'500'000, 800.0);
        return exp;
    };
    obs::TraceExporter exp = build();
    ASSERT_EQ(exp.size(), 3u);

    std::ostringstream os;
    obs::writeChromeTrace(os, {{"adpcm/online", &exp}});
    std::string text = os.str();
    expectBalancedJson(text);
    for (const char *key :
         {"\"traceEvents\"", "\"process_name\"", "\"thread_name\"",
          "\"adpcm/online\"", "\"PLL re-lock\"", "\"ph\": \"X\"",
          "\"ph\": \"i\"", "\"ph\": \"C\"", "\"pid\": 1,",
          "\"mhz\": 800"}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }

    // Bit-identical on rebuild: no wall clock, host pid, or pointers.
    obs::TraceExporter exp2 = build();
    std::ostringstream os2;
    obs::writeChromeTrace(os2, {{"adpcm/online", &exp2}});
    EXPECT_EQ(text, os2.str());

    // A disabled exporter records nothing.
    obs::TraceExporter offExp(false);
    offExp.instant("x", "y", 0, 1);
    EXPECT_EQ(offExp.size(), 0u);
}

TEST(TraceExport, JsonEscape)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(obs::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(StatsRegistry, JsonOutputIsWellFormed)
{
    StatsRegistry reg;
    reg.counter("a.count", "a counter").inc(7);
    reg.gauge("b.value").set(2.5);
    Histogram &h = reg.histogram("c.hist", {1.0});
    h.add(0.25);
    h.add(9.0);

    std::ostringstream os;
    reg.writeJson(os);
    std::string text = os.str();
    expectBalancedJson(text);
    for (const char *key :
         {"\"a.count\": 7", "\"b.value\": 2.5", "\"buckets\"",
          "\"le\"", "\"count\": 2"}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }
}

/**
 * Tentpole acceptance: a Figure 8-style frequency trace reconstructed
 * from the telemetry sampler matches the legacy in-engine recording
 * exactly — same call site, same arguments, element for element.
 */
TEST(Telemetry, FreqTraceMatchesLegacyEngineTrace)
{
    Program p = workloads::build("adpcm", 1);

    ReconfigSchedule sched;
    sched.add(fromMicroseconds(5.0), Domain::Integer, 600e6);
    sched.add(fromMicroseconds(5.0), Domain::FloatingPoint, 300e6);
    sched.add(fromMicroseconds(30.0), Domain::Integer, 1e9);
    sched.add(fromMicroseconds(40.0), Domain::LoadStore, 450e6);

    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.dvfs = DvfsKind::XScale;    // smooth ramps: many trace points
    cfg.dvfsTimeScale = 0.2;
    cfg.schedule = &sched;
    cfg.recordFreqTrace = true;
    cfg.maxInstructions = 60000;

    McdProcessor proc(cfg, p);
    // Legacy in-engine recording as independent ground truth.
    for (int d = 0; d < numDomains; ++d)
        proc.dvfsEngine(static_cast<Domain>(d))->enableTrace();
    RunResult r = proc.run();

    std::size_t points = 0;
    for (int d = 0; d < numDomains; ++d) {
        const auto &legacy =
            proc.dvfsEngine(static_cast<Domain>(d))->trace();
        const auto &fromSampler = r.freqTraces[d];
        ASSERT_EQ(fromSampler.size(), legacy.size()) << domainName(
            static_cast<Domain>(d));
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(fromSampler[i].when, legacy[i].when);
            EXPECT_DOUBLE_EQ(fromSampler[i].frequency,
                             legacy[i].frequency);
        }
        points += fromSampler.size();
    }
    // The schedule must actually have produced frequency activity.
    EXPECT_GT(points, 4u);
    EXPECT_GT(r.domains[domainIndex(Domain::Integer)].reconfigurations,
              0u);
}

TEST(Telemetry, ProcessorCollectsStatsSamplesAndEvents)
{
    Program p = workloads::build("adpcm", 1);

    ReconfigSchedule sched;
    sched.add(fromMicroseconds(5.0), Domain::Integer, 500e6);

    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.dvfs = DvfsKind::Transmeta;     // exercises re-lock windows
    cfg.dvfsTimeScale = 0.2;
    cfg.schedule = &sched;
    cfg.telemetry = obs::TelemetryConfig::full(fromMicroseconds(2.0));
    cfg.maxInstructions = 60000;

    RunResult r = McdProcessor(cfg, p).run();
    ASSERT_NE(r.telemetry, nullptr);
    const obs::Telemetry &t = *r.telemetry;

    // Periodic samples cover the run at the configured period.
    ASSERT_FALSE(t.sampler().samples().empty());
    for (const TimeSample &s : t.sampler().samples()) {
        for (int d = 0; d < numDomains; ++d) {
            EXPECT_GT(s.frequency[d], 0.0);
            EXPECT_GT(s.voltage[d], 0.0);
            EXPECT_GE(s.occupancy[d], 0.0);
            EXPECT_LE(s.occupancy[d], 1.0);
        }
    }
    // Cumulative energy never decreases.
    const auto &samples = t.sampler().samples();
    for (std::size_t i = 1; i < samples.size(); ++i) {
        for (int d = 0; d < numDomains; ++d)
            EXPECT_GE(samples[i].energy[d], samples[i - 1].energy[d]);
    }

    // The schedule dropped INT: hook-driven counters saw it.
    const auto *fc = t.stats().find("clock.int.freq_changes");
    ASSERT_NE(fc, nullptr);
    EXPECT_GT(std::get<Counter>(fc->stat).value(), 0u);
    const auto *rw = t.stats().find("clock.int.relock_windows");
    ASSERT_NE(rw, nullptr);
    EXPECT_GT(std::get<Counter>(rw->stat).value(), 0u);

    // Controller decisions and end-of-run summaries are registered.
    const auto *dec = t.stats().find("control.int.requests");
    ASSERT_NE(dec, nullptr);
    EXPECT_GT(std::get<Counter>(dec->stat).value(), 0u);
    EXPECT_NE(t.stats().find("run.committed"), nullptr);
    EXPECT_NE(t.stats().find("domain.int.avg_mhz"), nullptr);
    EXPECT_NE(t.stats().find("pipeline.sync.commit_stalls"), nullptr);
    EXPECT_NE(t.stats().find("control.schedule.requests_issued"),
              nullptr);

    // Trace events were collected (re-lock windows at minimum).
    EXPECT_GT(t.trace().size(), 0u);
}

/**
 * Matrix integration: identical telemetry output for serial and
 * parallel execution, and across repeated runs (no wall-clock, host
 * pid, pointer, or scheduling dependence anywhere in the documents).
 */
TEST(Telemetry, MatrixTelemetryIsDeterministicAcrossJobCounts)
{
    ExperimentConfig ec;
    ec.telemetry = obs::TelemetryConfig::full(fromMicroseconds(5.0));
    // No cacheDir: caching off, every leg really runs.

    auto render = [&](int jobs) {
        std::vector<BenchmarkResults> rows =
            runMatrix(ec, {"adpcm"}, jobs);
        std::vector<NamedRun> named = namedRuns(rows);
        std::ostringstream stats, trace;
        writeTelemetryStatsJson(stats, named);
        writeTelemetryTrace(trace, named);
        return stats.str() + "\n===\n" + trace.str();
    };

    std::string serial = render(1);
    std::string parallel = render(3);
    std::string repeat = render(3);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(parallel, repeat);

    expectBalancedJson(serial.substr(0, serial.find("\n===\n")));
    for (const char *key :
         {"\"adpcm/baseline\"", "\"adpcm/online\"", "\"merged\"",
          "\"run.committed\""}) {
        EXPECT_NE(serial.find(key), std::string::npos) << key;
    }
}

/**
 * Trace process naming is driven by the leg names: a tournament
 * matrix (every zoo controller plus the oracle) must give each leg
 * its own distinctly named trace process, with the whole document
 * byte-identical at jobs=1 and jobs=8.
 */
TEST(Telemetry, TournamentTraceProcessNamesAreUniqueAndDeterministic)
{
    ExperimentConfig ec;
    ec.telemetry.traceEvents = true;
    ec.legs = tournamentLegs(ec);
    ASSERT_GE(ec.legs.size(), 6u);

    auto render = [&](int jobs) {
        std::vector<BenchmarkResults> rows =
            runMatrix(ec, {"adpcm"}, jobs);
        std::ostringstream os;
        writeTelemetryTrace(os, namedRuns(rows));
        return os.str();
    };
    std::string serial = render(1);
    EXPECT_EQ(serial, render(8));

    // One process_name record per run, and no two runs share a name.
    std::vector<std::string> names;
    const std::string tag = "\"process_name\"";
    for (std::size_t p = serial.find(tag); p != std::string::npos;
         p = serial.find(tag, p + 1)) {
        std::size_t np = serial.find("\"name\": \"", p);
        ASSERT_NE(np, std::string::npos);
        np += 9;
        names.push_back(serial.substr(np, serial.find('"', np) - np));
    }
    // baseline + mcdBaseline + every tournament leg.
    ASSERT_EQ(names.size(), ec.legs.size() + 2);
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()),
              names.end())
        << "duplicate trace process name";
    EXPECT_NE(std::find(names.begin(), names.end(), "adpcm/dyn5"),
              names.end());
}

TEST(StatsRegistry, HistogramJsonCarriesPercentiles)
{
    StatsRegistry reg;
    Histogram &h = reg.histogram("lat", {1.0, 2.0, 4.0});
    for (double v : {0.5, 1.5, 1.6, 1.7, 2.5, 3.0, 3.5, 3.9, 3.95, 3.99})
        h.add(v);
    // p50 falls in the (2, 4] bucket: 4 of 10 at or below 2.0, the
    // interpolated point sits 1/6 into the bucket's [2, 4] span.
    EXPECT_NEAR(h.quantile(0.5), 2.0 + (5.0 - 4.0) / 6.0 * 2.0, 1e-12);
    // Quantiles never escape the observed range.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.99);
    // Empty histogram: percentiles render as null, not NaN.
    reg.histogram("empty", {1.0});

    std::ostringstream os;
    reg.writeJson(os);
    std::string text = os.str();
    expectBalancedJson(text);
    for (const char *key : {"\"p50\"", "\"p90\"", "\"p99\""})
        EXPECT_NE(text.find(key), std::string::npos) << key;
    EXPECT_NE(text.find("\"p50\": null"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(StatsRegistry, MergeRejectsMismatchedHistogramBounds)
{
    StatsRegistry a;
    a.histogram("h", {1.0, 2.0}).add(0.5);
    StatsRegistry b;
    b.histogram("h", {1.0, 3.0}).add(0.5);
    EXPECT_THROW(a.merge(b), FatalError);

    // Same name, same bounds still merges; absent-here entries adopt
    // the other's bounds.
    StatsRegistry c;
    c.histogram("h", {1.0, 2.0}).add(1.5);
    c.histogram("only_c", {9.0}).add(1.0);
    a.merge(c);
    EXPECT_EQ(a.histogram("h", {1.0, 2.0}).summary().count(), 2u);
    EXPECT_EQ(a.histogram("only_c", {9.0}).summary().count(), 1u);
}

TEST(Telemetry, ResultsJsonCarriesStatsWhenEnabled)
{
    ExperimentConfig ec;
    ec.telemetry.samplePeriod = fromMicroseconds(10.0);

    std::vector<BenchmarkResults> rows = runMatrix(ec, {"adpcm"}, 1);
    std::ostringstream os;
    writeResultsJson(os, ec, rows);
    std::string text = os.str();
    expectBalancedJson(text);
    EXPECT_NE(text.find("\"stats\""), std::string::npos);
    EXPECT_NE(text.find("\"run.ipc\""), std::string::npos);
}

} // namespace
} // namespace mcd
