/**
 * @file
 * Tests for sampled simulation: the MCD_SAMPLING spec grammar, the
 * accuracy contract of the default operating point on adpcm and mst,
 * byte-identity of full-detail results against the golden fixture,
 * determinism of sampled matrix runs across worker counts, and the
 * cache-bypass rule for sampled results.
 */

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/processor.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

namespace fs = std::filesystem;

TEST(SamplingParams, SpecRoundTrips)
{
    SamplingParams p;
    p.detailedInsts = 1234;
    p.ffInsts = 5678;
    p.warmupInsts = 99;
    p.tolerance = 0.25;
    SamplingParams q = SamplingParams::fromSpec(p.spec());
    EXPECT_EQ(q.detailedInsts, p.detailedInsts);
    EXPECT_EQ(q.ffInsts, p.ffInsts);
    EXPECT_EQ(q.warmupInsts, p.warmupInsts);
    EXPECT_DOUBLE_EQ(q.tolerance, p.tolerance);
    EXPECT_EQ(q.spec(), p.spec());
    EXPECT_EQ(q.keyToken(), "d1234f5678w99");

    // Defaults apply for omitted keys.
    SamplingParams d = SamplingParams::fromSpec("detailed=1000,ff=9000");
    EXPECT_EQ(d.warmupInsts, SamplingParams{}.warmupInsts);
    EXPECT_DOUBLE_EQ(d.tolerance, SamplingParams{}.tolerance);
}

TEST(SamplingParams, FromSpecRejectsMalformed)
{
    EXPECT_THROW(SamplingParams::fromSpec(""), FatalError);
    EXPECT_THROW(SamplingParams::fromSpec("detailed=1000"), FatalError);
    EXPECT_THROW(SamplingParams::fromSpec("detailed=x,ff=9000"),
                 FatalError);
    EXPECT_THROW(SamplingParams::fromSpec("bogus=1,detailed=1,ff=2"),
                 FatalError);
    EXPECT_THROW(SamplingParams::fromSpec("detailed=,ff=9000"),
                 FatalError);
    EXPECT_THROW(SamplingParams::fromSpec("detailed=1000,ff=9000,tol=z"),
                 FatalError);
}

TEST(SamplingParams, ValidateRejectsOutOfRange)
{
    SamplingParams p;
    p.detailedInsts = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = SamplingParams{};
    p.ffInsts = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = SamplingParams{};
    p.warmupInsts = p.detailedInsts;    // window needs a measured tail
    EXPECT_THROW(p.validate(), FatalError);

    p = SamplingParams{};
    p.tolerance = 0.0;
    EXPECT_THROW(p.validate(), FatalError);
    p.tolerance = 1.5;
    EXPECT_THROW(p.validate(), FatalError);
}

/**
 * The accuracy contract: at the default operating point, sampled
 * execTime and totalEnergy land within SamplingParams::tolerance of
 * the full-detail run, and the sampled stream covers the same
 * instructions.
 */
TEST(Sampling, WithinToleranceOnAdpcmAndMst)
{
    for (const char *name : {"adpcm", "mst"}) {
        SCOPED_TRACE(name);
        Program p = workloads::build(name, 1);

        SimConfig full;
        full.clocking = ClockingStyle::Mcd;
        RunResult rf = McdProcessor(full, p).run();
        ASSERT_FALSE(rf.sampling.has_value());

        SimConfig sampled = full;
        sampled.sampling = SamplingParams{};
        RunResult rs = McdProcessor(sampled, p).run();
        ASSERT_TRUE(rs.sampling.has_value());

        const SamplingSummary &ss = *rs.sampling;
        EXPECT_GT(ss.windows, 1u);
        EXPECT_GT(ss.ffExecuted, 0u);
        EXPECT_GT(ss.detailedCommitted, 0u);
        EXPECT_EQ(ss.detailedCommitted + ss.ffExecuted, rs.committed);
        // Same dynamic instruction stream, split between the two modes.
        EXPECT_NEAR(static_cast<double>(rs.committed),
                    static_cast<double>(rf.committed), 2.0);
        // Fast-forward dominates the stream at a 10% detailed fraction.
        EXPECT_GT(ss.ffExecuted, rs.committed / 2);

        double tol = sampled.sampling->tolerance;
        double timeErr =
            std::fabs(static_cast<double>(rs.execTime) -
                      static_cast<double>(rf.execTime)) /
            static_cast<double>(rf.execTime);
        double energyErr = std::fabs(rs.totalEnergy - rf.totalEnergy) /
            rf.totalEnergy;
        EXPECT_LE(timeErr, tol) << "execTime outside tolerance";
        EXPECT_LE(energyErr, tol) << "totalEnergy outside tolerance";
    }
}

/**
 * Full-detail byte-identity: with sampling off, the adpcm+mst matrix
 * at jobs=1 reproduces the committed golden fixture byte for byte —
 * the memory-layout overhaul (and the sampling hooks) must not move
 * a single result bit of an unsampled run.
 */
TEST(Sampling, FullDetailMatchesGoldenFixture)
{
    fs::path dir = fs::temp_directory_path() / "mcd-sampling-golden";
    fs::remove_all(dir);
    fs::create_directories(dir);
    fs::path results = dir / "results.json";

    // The fixture is produced with full telemetry (the CI golden job
    // sets MCD_STATS_OUT / MCD_TRACE_OUT and MCD_BENCHMARKS); mirror
    // that — including the benchmarks option's "env" provenance in the
    // emitted effectiveConfig block — and make sure no stray sampling
    // knob leaks in.
    ::unsetenv("MCD_SAMPLING");
    ::setenv("MCD_BENCHMARKS", "adpcm,mst", 1);
    ::setenv("MCD_RESULTS_JSON", (dir / "results.json").c_str(), 1);
    ::setenv("MCD_STATS_OUT", (dir / "stats.json").c_str(), 1);
    ::setenv("MCD_TRACE_OUT", (dir / "trace.json").c_str(), 1);

    ExperimentConfig ec;    // empty cacheDir: caching disabled
    runMatrix(ec, {"adpcm", "mst"}, 1);

    ::unsetenv("MCD_BENCHMARKS");
    ::unsetenv("MCD_RESULTS_JSON");
    ::unsetenv("MCD_STATS_OUT");
    ::unsetenv("MCD_TRACE_OUT");

    auto slurp = [](const fs::path &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string got = slurp(results);
    ASSERT_FALSE(got.empty());
    std::string want = slurp(fs::path(MCD_SOURCE_DIR) / "tests" /
                             "golden" / "results_adpcm_mst.json");
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(got, want) << "full-detail results drifted from the "
                            "golden fixture";
    fs::remove_all(dir);
}

/** Sampled matrix runs are deterministic across worker counts. */
TEST(Sampling, SampledMatrixDeterministicAcrossJobs)
{
    const std::vector<std::string> names{"adpcm", "mst"};
    ExperimentConfig ec;    // empty cacheDir: caching disabled
    ec.sampling = SamplingParams{};

    auto serial = runMatrix(ec, names, 1);
    auto par = runMatrix(ec, names, 4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(names[i]);
        // mcdBaseline is the profiling leg and always runs full
        // detail (sampling is incompatible with trace collection);
        // the single-clock baseline and the dynamic legs sample.
        const RunResult &a = serial[i].baseline;
        const RunResult &b = par[i].baseline;
        EXPECT_EQ(a.execTime, b.execTime);
        EXPECT_EQ(a.committed, b.committed);
        EXPECT_EQ(a.totalEnergy, b.totalEnergy);
        ASSERT_TRUE(a.sampling && b.sampling);
        EXPECT_EQ(a.sampling->windows, b.sampling->windows);
        EXPECT_EQ(a.sampling->ffExecuted, b.sampling->ffExecuted);
        EXPECT_EQ(a.sampling->estFfTimePs, b.sampling->estFfTimePs);
        EXPECT_EQ(a.sampling->estFfEnergy, b.sampling->estFfEnergy);
        EXPECT_EQ(serial[i].leg("dyn5").execTime,
                  par[i].leg("dyn5").execTime);
        EXPECT_EQ(serial[i].leg("dyn5").totalEnergy,
                  par[i].leg("dyn5").totalEnergy);
    }
}

/**
 * Sampled results never enter the on-disk cache, and a sampled run
 * never serves a cached full-detail row (or vice versa): estimates
 * must not masquerade as measurements.
 */
TEST(Sampling, SampledRunsBypassCache)
{
    fs::path dir = fs::temp_directory_path() / "mcd-sampling-cache";
    fs::remove_all(dir);

    ExperimentConfig ec;
    ec.cacheDir = dir.string();
    ec.sampling = SamplingParams{};
    ExperimentRunner sampledRunner(ec);
    BenchmarkResults sampled = sampledRunner.runBenchmark("mst");
    // The profiling leg stays full detail; the baseline leg samples.
    ASSERT_FALSE(sampled.mcdBaseline.sampling.has_value());
    ASSERT_TRUE(sampled.baseline.sampling.has_value());
    ASSERT_TRUE(sampled.leg("dyn5").sampling.has_value());

    // Nothing was stored for the sampled row.
    std::size_t files = 0;
    if (fs::exists(dir))
        for (const auto &e : fs::directory_iterator(dir))
            files += e.is_regular_file();
    EXPECT_EQ(files, 0u);

    // A full-detail run with the same cache dir populates it...
    ExperimentConfig full = ec;
    full.sampling.reset();
    ExperimentRunner fullRunner(full);
    BenchmarkResults fd = fullRunner.runBenchmark("mst");
    EXPECT_FALSE(fd.baseline.sampling.has_value());
    files = 0;
    for (const auto &e : fs::directory_iterator(dir))
        files += e.is_regular_file();
    EXPECT_GT(files, 0u);

    // ...and a sampled re-run with a warm cache still runs sampled
    // instead of returning the cached full-detail row.
    ExperimentRunner again(ec);
    BenchmarkResults s2 = again.runBenchmark("mst");
    ASSERT_TRUE(s2.baseline.sampling.has_value());
    EXPECT_EQ(s2.baseline.execTime, sampled.baseline.execTime);
    fs::remove_all(dir);
}

} // namespace
} // namespace mcd
