/**
 * @file
 * End-to-end tests for McdProcessor.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

TEST(Processor, RunResultSanity)
{
    Program p = workloads::build("epic", 1);
    SimConfig cfg;
    cfg.maxInstructions = 20000;
    McdProcessor proc(cfg, p);
    RunResult r = proc.run();
    EXPECT_GE(r.committed, 20000u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.totalEnergy, 0.0);
    EXPECT_NEAR(r.energyDelay, r.totalEnergy * toSeconds(r.execTime),
                1e-12);
    double sum = 0.0;
    for (const DomainSummary &d : r.domains) {
        EXPECT_GT(d.energy, 0.0);
        sum += d.energy;
    }
    EXPECT_NEAR(sum, r.totalEnergy, r.totalEnergy * 1e-9);
    EXPECT_EQ(r.benchmark, "epic");
}

TEST(Processor, DomainFrequenciesHonored)
{
    Program p = workloads::build("epic", 1);
    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.domainFrequency = {1e9, 750e6, 500e6, 1e9};
    cfg.maxInstructions = 5000;
    McdProcessor proc(cfg, p);
    RunResult r = proc.run();
    EXPECT_NEAR(r.domains[1].avgFrequency, 750e6, 1e6);
    EXPECT_NEAR(r.domains[2].avgFrequency, 500e6, 1e6);
    // Voltage follows the table: scaled domains burn less per access.
    // Voltage is quantized to the DVFS engine's 320 levels.
    EXPECT_NEAR(proc.clock(Domain::Integer).voltage(),
                proc.dvfsTable().voltageFor(750e6), 2e-3);
}

TEST(Processor, StaticScalingSlowsExecution)
{
    Program p = workloads::build("g721", 1);
    SimConfig fast;
    fast.maxInstructions = 20000;
    SimConfig slow = fast;
    slow.domainFrequency = {1e9, 500e6, 500e6, 500e6};
    slow.clocking = ClockingStyle::Mcd;
    fast.clocking = ClockingStyle::Mcd;
    RunResult rf = McdProcessor(fast, p).run();
    RunResult rs = McdProcessor(slow, p).run();
    EXPECT_GT(rs.execTime, rf.execTime * 3 / 2);
}

TEST(Processor, DeterminismAcrossIdenticalConfigs)
{
    Program p = workloads::build("mst", 1);
    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.maxInstructions = 15000;
    RunResult a = McdProcessor(cfg, p).run();
    RunResult b = McdProcessor(cfg, p).run();
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_DOUBLE_EQ(a.totalEnergy, b.totalEnergy);
}

TEST(Processor, SeedChangesJitterOutcome)
{
    Program p = workloads::build("mst", 1);
    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.maxInstructions = 15000;
    RunResult a = McdProcessor(cfg, p).run();
    cfg.seed = 77;
    RunResult b = McdProcessor(cfg, p).run();
    EXPECT_NE(a.execTime, b.execTime);
    // But the architectural work is identical.
    EXPECT_EQ(a.committed, b.committed);
}

TEST(Processor, ScheduleDrivesReconfigurations)
{
    Program p = workloads::build("epic", 1);
    ReconfigSchedule sched;
    sched.add(fromMicroseconds(5.0), Domain::FloatingPoint, 250e6);
    sched.add(fromMicroseconds(10.0), Domain::Integer, 750e6);
    sched.finalize();

    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.dvfs = DvfsKind::XScale;
    cfg.dvfsTimeScale = 0.2;
    cfg.schedule = &sched;
    cfg.recordFreqTrace = true;
    McdProcessor proc(cfg, p);
    RunResult r = proc.run();
    EXPECT_EQ(r.domains[domainIndex(Domain::FloatingPoint)]
                  .reconfigurations, 1u);
    EXPECT_EQ(r.domains[domainIndex(Domain::Integer)].reconfigurations,
              1u);
    EXPECT_NEAR(r.domains[domainIndex(Domain::FloatingPoint)]
                    .minFrequency, 250e6, 1e6);
    EXPECT_FALSE(
        r.freqTraces[domainIndex(Domain::Integer)].empty());
}

TEST(Processor, TransmetaScheduleBlocksDomain)
{
    // Under the Transmeta model each reconfiguration stops the domain
    // for the PLL re-lock: total time must exceed the XScale run.
    Program p = workloads::build("g721", 1);
    ReconfigSchedule sched;
    for (int i = 1; i <= 8; ++i) {
        sched.add(fromMicroseconds(3.0 * i), Domain::Integer,
                  i % 2 ? 900e6 : 1e9);
    }
    sched.finalize();

    auto time = [&](DvfsKind k) {
        SimConfig cfg;
        cfg.clocking = ClockingStyle::Mcd;
        cfg.dvfs = k;
        cfg.dvfsTimeScale = 0.2;
        cfg.schedule = &sched;
        return McdProcessor(cfg, p).run().execTime;
    };
    EXPECT_GT(time(DvfsKind::Transmeta), time(DvfsKind::XScale));
}

TEST(Processor, GlobalVoltageFollowsFrequency)
{
    Program p = workloads::build("epic", 1);
    SimConfig cfg;
    cfg.clocking = ClockingStyle::SingleClock;
    cfg.domainFrequency = {500e6, 500e6, 500e6, 500e6};
    cfg.maxInstructions = 5000;
    McdProcessor proc(cfg, p);
    proc.run();
    EXPECT_NEAR(proc.clock(Domain::FrontEnd).voltage(),
                proc.dvfsTable().voltageFor(500e6), 1e-9);
}

TEST(Processor, EnergyScalesDownWithVoltage)
{
    Program p = workloads::build("epic", 1);
    SimConfig fast;
    fast.clocking = ClockingStyle::SingleClock;
    fast.maxInstructions = 10000;
    SimConfig slow = fast;
    slow.domainFrequency = {500e6, 500e6, 500e6, 500e6};
    RunResult rf = McdProcessor(fast, p).run();
    RunResult rs = McdProcessor(slow, p).run();
    // V(500 MHz) = 0.833: access energy scales by (0.833/1.2)^2 = 0.48,
    // with runtime-extension overheads pulling the total up a little.
    EXPECT_LT(rs.totalEnergy, rf.totalEnergy * 0.75);
    EXPECT_GT(rs.totalEnergy, rf.totalEnergy * 0.40);
}

} // namespace
} // namespace mcd
