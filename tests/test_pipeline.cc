/**
 * @file
 * Timing tests for the out-of-order pipeline, driven through
 * McdProcessor on hand-built microkernels.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "isa/builder.hh"

namespace mcd {
namespace {

RunResult
run(const Program &p, bool mcd = false, double jitter = 0.0,
    std::uint64_t max_insts = 0)
{
    SimConfig cfg;
    cfg.clocking = mcd ? ClockingStyle::Mcd : ClockingStyle::SingleClock;
    cfg.jitterSigmaPs = jitter;
    cfg.maxInstructions = max_insts;
    McdProcessor proc(cfg, p);
    return proc.run();
}

/** A loop of @p body_reps independent single-cycle adds. */
Program
independentAdds(int iters, int body_reps)
{
    Builder b("ind");
    b.li(1, 0);
    b.li(2, iters);
    Label loop = b.here();
    for (int i = 0; i < body_reps; ++i)
        b.add(10 + (i % 8), 3, 4);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

/** A loop whose body is one long dependent chain. */
Program
dependentChain(int iters, int chain_len)
{
    Builder b("chain");
    b.li(1, 0);
    b.li(2, iters);
    b.li(10, 1);
    Label loop = b.here();
    for (int i = 0; i < chain_len; ++i)
        b.add(10, 10, 10);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

TEST(Pipeline, IndependentOpsReachDecodeWidth)
{
    // 4-wide fetch/rename bounds IPC at 4; independent adds should
    // get close (branch ends each fetch group).
    RunResult r = run(independentAdds(3000, 16));
    EXPECT_GT(r.ipc, 3.0);
    EXPECT_LE(r.ipc, 4.05);
}

TEST(Pipeline, DependentChainSerializes)
{
    RunResult r = run(dependentChain(2000, 12));
    // One add per cycle on the critical chain; the loop bookkeeping
    // overlaps, so IPC is slightly above 1.
    EXPECT_GT(r.ipc, 0.85);
    EXPECT_LT(r.ipc, 1.35);
}

TEST(Pipeline, CommitsMatchFunctionalExecution)
{
    Program p = independentAdds(500, 7);
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    RunResult r = run(p);
    EXPECT_EQ(r.committed, ex.instsExecuted());
}

TEST(Pipeline, MaxInstructionCapStopsEarly)
{
    Program p = independentAdds(5000, 7);
    RunResult r = run(p, false, 0.0, 1000);
    EXPECT_GE(r.committed, 1000u);
    EXPECT_LT(r.committed, 1200u);
}

TEST(Pipeline, MispredictsCostTime)
{
    // A data-dependent unpredictable branch (LCG parity) vs the same
    // loop with the branch always not-taken.
    auto make = [](bool random_branch) {
        Builder b("m");
        b.li(1, 0);
        b.li(2, 4000);
        b.li(10, 12345);
        b.li(11, 1103515245);
        Label skip = b.newLabel();
        Label loop = b.newLabel();
        b.bind(loop);
        b.mul(10, 10, 11);
        b.addi(10, 10, 12345);
        b.srli(12, 10, 16);
        b.andi(12, 12, random_branch ? 1 : 0);
        b.bne(12, 0, skip);
        b.addi(3, 3, 1);
        b.bind(skip);
        b.addi(1, 1, 1);
        b.blt(1, 2, loop);
        b.halt();
        return b.build();
    };
    RunResult predictable = run(make(false));
    RunResult random = run(make(true));
    EXPECT_LT(random.ipc, predictable.ipc * 0.75);
    EXPECT_GT(random.pipeline.mispredicts, 1000u);
    EXPECT_LT(predictable.pipeline.mispredicts, 100u);
    EXPECT_GT(random.pipeline.wrongPathFetchCycles,
              predictable.pipeline.wrongPathFetchCycles * 5);
}

TEST(Pipeline, LoadUseLatencyVisible)
{
    // Chained loads (pointer chase in L1) vs chained adds: the chase
    // should be slower by roughly the load-use latency ratio.
    Builder b("lc");
    std::uint64_t node = b.dataBlock(2);
    b.setDataWord(node, node);      // self-loop
    b.li(4, static_cast<std::int64_t>(node));
    b.li(1, 0);
    b.li(2, 3000);
    Label loop = b.here();
    b.ld(4, 4, 0);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    RunResult chase = run(b.build());
    RunResult chain = run(dependentChain(3000, 1));
    EXPECT_LT(chase.ipc, chain.ipc);
}

TEST(Pipeline, StoreLoadForwarding)
{
    // Repeated store-then-load to one address must not deadlock and
    // must forward reasonably quickly.
    Builder b("fw");
    std::uint64_t addr = b.dataWord(5);
    b.li(4, static_cast<std::int64_t>(addr));
    b.li(1, 0);
    b.li(2, 2000);
    Label loop = b.here();
    b.ld(3, 4, 0);
    b.addi(3, 3, 1);
    b.st(3, 4, 0);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    Program p = b.build();
    RunResult r = run(p);
    EXPECT_GT(r.ipc, 0.4);
    // Functional correctness through the oracle.
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.readMem(addr), 2005u);
}

TEST(Pipeline, FpOpsExecuteInFpDomain)
{
    Builder b("fp");
    std::uint64_t c = b.dataDouble(1.5);
    b.li(4, static_cast<std::int64_t>(c));
    b.fld(1, 4, 0);
    b.li(1, 0);
    b.li(2, 1000);
    Label loop = b.here();
    b.fmul(2, 1, 1);
    b.fadd(3, 2, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    RunResult r = run(b.build());
    EXPECT_GT(r.pipeline.committedFp, 1900u);
}

TEST(Pipeline, RobStallsUnderLongLatency)
{
    // Serial L2-missing chase fills the ROB with waiters.
    Builder b("rob");
    constexpr int n = 8192;     // 64 KB of pointers, plus stride > L1
    std::uint64_t nodes = b.dataBlock(n * 8);
    for (int i = 0; i < n; ++i)
        b.setDataWord(nodes + 64ull * i,
                      nodes + 64ull * ((i + 1) % n));
    b.li(4, static_cast<std::int64_t>(nodes));
    b.li(1, 0);
    b.li(2, 2000);
    Label loop = b.here();
    b.ld(4, 4, 0);
    for (int k = 0; k < 6; ++k)
        b.add(10 + k, 4, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    RunResult r = run(b.build());
    EXPECT_GT(r.pipeline.robFullStalls + r.pipeline.iqFullStalls, 100u);
    EXPECT_LT(r.ipc, 0.7);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    Program p = independentAdds(1000, 5);
    RunResult a = run(p, true, defaultJitterSigmaPs);
    RunResult b = run(p, true, defaultJitterSigmaPs);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_DOUBLE_EQ(a.totalEnergy, b.totalEnergy);
}

TEST(Pipeline, McdNeverFreeOnSyncHeavyCode)
{
    // Pointer chasing bounces between the integer and load/store
    // domains every instruction: MCD synchronization must cost time.
    Builder b("sync");
    std::uint64_t node = b.dataBlock(256);
    for (int i = 0; i < 256; ++i)
        b.setDataWord(node + 8ull * i, node + 8ull * ((i * 97 + 13) % 256));
    b.li(4, static_cast<std::int64_t>(node));
    b.li(1, 0);
    b.li(2, 8000);
    Label loop = b.here();
    b.ld(4, 4, 0);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    Program p = b.build();
    RunResult single = run(p, false, defaultJitterSigmaPs);
    RunResult mcd = run(p, true, defaultJitterSigmaPs);
    EXPECT_GT(mcd.execTime, single.execTime);
}

TEST(Pipeline, HaltAloneCommits)
{
    Builder b("h");
    b.halt();
    RunResult r = run(b.build());
    EXPECT_EQ(r.committed, 1u);
}

TEST(Pipeline, BranchStatsCounted)
{
    RunResult r = run(independentAdds(100, 3));
    EXPECT_GE(r.pipeline.committedBranches, 100u);
    EXPECT_GT(r.bpredLookups, 0u);
}

TEST(Pipeline, IcacheMissesStallFetch)
{
    // A program body larger than the 64 KB L1I: straight-line code of
    // ~20K instructions = 80 KB.
    Builder b("big");
    for (int i = 0; i < 20000; ++i)
        b.add(1 + (i % 8), 2, 3);
    b.halt();
    RunResult r = run(b.build());
    EXPECT_GT(r.l1i.misses, 500u);
    EXPECT_GT(r.pipeline.icacheMissStallCycles, 500u);
}

} // namespace
} // namespace mcd
