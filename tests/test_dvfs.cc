/**
 * @file
 * Tests for the Transmeta / XScale DVFS transition engines.
 */

#include <gtest/gtest.h>

#include "clock/clock_domain.hh"
#include "clock/dvfs.hh"
#include "clock/operating_points.hh"

namespace mcd {
namespace {

struct Rig
{
    DvfsTable table;
    ClockDomain clock{Domain::Integer, 1e9, 1, 0.0, false};

    DomainDvfs
    make(DvfsParams p)
    {
        return DomainDvfs(p, table, clock, 99);
    }
};

TEST(DvfsParams, PaperValues)
{
    DvfsParams tm = DvfsParams::transmeta();
    EXPECT_EQ(tm.stepsFullRange, 32);
    EXPECT_EQ(tm.stepTime, fromMicroseconds(20.0));
    EXPECT_TRUE(tm.pllRelock);
    EXPECT_FALSE(tm.freqTracksVoltage);
    EXPECT_EQ(tm.relockMean, fromMicroseconds(15.0));
    EXPECT_EQ(tm.relockMin, fromMicroseconds(10.0));
    EXPECT_EQ(tm.relockMax, fromMicroseconds(20.0));
    // Full-range traversal: 32 * 20 us = 640 us (paper).
    EXPECT_EQ(tm.stepsFullRange * tm.stepTime, fromMicroseconds(640.0));

    DvfsParams xs = DvfsParams::xscale();
    EXPECT_EQ(xs.stepsFullRange, 320);
    EXPECT_FALSE(xs.pllRelock);
    EXPECT_TRUE(xs.freqTracksVoltage);
    // Full-range traversal: 320 * 0.1718 us ~= 55 us (paper).
    EXPECT_NEAR(static_cast<double>(xs.stepsFullRange * xs.stepTime),
                fromMicroseconds(55.0), fromMicroseconds(0.05));
}

TEST(DvfsParams, TimeScaleShrinksEverything)
{
    DvfsParams tm = DvfsParams::transmeta(0.1);
    EXPECT_EQ(tm.stepTime, fromMicroseconds(2.0));
    EXPECT_EQ(tm.relockMean, fromMicroseconds(1.5));
}

TEST(DomainDvfs, NoneKindIsInstant)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::none());
    d.requestFrequency(1000, 500e6);
    EXPECT_DOUBLE_EQ(rig.clock.frequency(), 500e6);
    EXPECT_NEAR(rig.clock.voltage(), rig.table.voltageFor(500e6), 0.02);
    EXPECT_FALSE(d.transitioning());
    EXPECT_EQ(d.reconfigurations(), 1u);
}

TEST(DomainDvfs, XScaleDownIsImmediateFreqThenVoltage)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::xscale());
    Volt v0 = rig.clock.voltage();
    d.requestFrequency(1000, 500e6);
    // Frequency drops right away.
    EXPECT_DOUBLE_EQ(rig.clock.frequency(), 500e6);
    // Voltage is still high and ramps down over time.
    EXPECT_DOUBLE_EQ(rig.clock.voltage(), v0);
    Tick t = 1000;
    while (d.transitioning() && t < fromMicroseconds(100)) {
        t += 1000;
        d.update(t);
    }
    EXPECT_FALSE(d.transitioning());
    EXPECT_NEAR(rig.clock.voltage(), rig.table.voltageFor(500e6), 0.01);
    // Never blocked: XScale executes through changes.
    EXPECT_FALSE(d.executionBlocked(t));
}

TEST(DomainDvfs, XScaleUpTracksVoltage)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::xscale());
    d.requestFrequency(1000, 250e6);
    Tick t = 1000;
    while (d.transitioning()) {
        t += 1000;
        d.update(t);
    }
    ASSERT_DOUBLE_EQ(rig.clock.frequency(), 250e6);

    d.requestFrequency(t, 1e9);
    // Mid-ramp the frequency must follow the rising voltage without
    // ever exceeding what the voltage supports.
    bool sawIntermediate = false;
    while (d.transitioning()) {
        t += 1000;
        d.update(t);
        Hertz f = rig.clock.frequency();
        Hertz safe = rig.table.frequencyFor(rig.clock.voltage());
        ASSERT_LE(f, safe + 1e6);
        if (f > 260e6 && f < 990e6)
            sawIntermediate = true;
    }
    EXPECT_TRUE(sawIntermediate);
    EXPECT_DOUBLE_EQ(rig.clock.frequency(), 1e9);
}

TEST(DomainDvfs, XScaleFullRangeRampTime)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::xscale());
    d.requestFrequency(0, 250e6);
    Tick t = 0;
    while (d.transitioning() && t < fromMicroseconds(200)) {
        t += 100;
        d.update(t);
    }
    // 320 steps at 0.1718 us: about 55 us for the full range.
    EXPECT_NEAR(static_cast<double>(t), fromMicroseconds(55.0),
                fromMicroseconds(1.5));
}

TEST(DomainDvfs, TransmetaDownRelocksBeforeRunning)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::transmeta());
    d.requestFrequency(1000, 500e6);
    // PLL re-lock window: the domain is blocked and the frequency has
    // not changed application-visibly until lock completes.
    EXPECT_TRUE(d.executionBlocked(1000));
    EXPECT_TRUE(d.executionBlocked(1000 + fromMicroseconds(9.0)));
    Tick t = 1000 + fromMicroseconds(25.0);     // > relockMax
    d.update(t);
    EXPECT_FALSE(d.executionBlocked(t));
    EXPECT_DOUBLE_EQ(rig.clock.frequency(), 500e6);
    // Voltage then ramps down in the background.
    while (d.transitioning() && t < fromMicroseconds(2000)) {
        t += fromMicroseconds(1.0);
        d.update(t);
    }
    EXPECT_NEAR(rig.clock.voltage(), rig.table.voltageFor(500e6), 0.02);
}

TEST(DomainDvfs, TransmetaUpRampsVoltageFirst)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::transmeta());
    d.requestFrequency(0, 250e6);
    Tick t = 0;
    while (d.transitioning() && t < fromMicroseconds(5000)) {
        t += fromMicroseconds(1.0);
        d.update(t);
    }
    ASSERT_DOUBLE_EQ(rig.clock.frequency(), 250e6);
    Tick upStart = t;
    d.requestFrequency(t, 1e9);
    // The frequency must not rise before the voltage reaches target.
    while (d.transitioning() && t < upStart + fromMicroseconds(5000)) {
        t += fromMicroseconds(1.0);
        d.update(t);
        if (rig.clock.voltage() <
            rig.table.voltageFor(1e9) - 1e-9) {
            ASSERT_DOUBLE_EQ(rig.clock.frequency(), 250e6);
        }
    }
    EXPECT_DOUBLE_EQ(rig.clock.frequency(), 1e9);
    // Full range up: 32 steps * 20 us + relock ~ 650 us.
    EXPECT_NEAR(static_cast<double>(t - upStart),
                fromMicroseconds(655.0), fromMicroseconds(25.0));
}

TEST(DomainDvfs, RelockTimeWithinPaperRange)
{
    Rig rig;
    for (std::uint64_t seed = 1; seed < 30; ++seed) {
        ClockDomain clk(Domain::Integer, 1e9, 1, 0.0, false);
        DomainDvfs d(DvfsParams::transmeta(), rig.table, clk, seed);
        d.requestFrequency(0, 900e6);
        // Find when the block clears.
        Tick lo = 0, hi = fromMicroseconds(30.0);
        while (hi - lo > 1000) {
            Tick mid = (lo + hi) / 2;
            if (d.executionBlocked(mid))
                lo = mid;
            else
                hi = mid;
        }
        EXPECT_GE(hi, fromMicroseconds(9.9));
        EXPECT_LE(hi, fromMicroseconds(20.1));
    }
}

TEST(DomainDvfs, EstimateTransitionTime)
{
    Rig rig;
    DomainDvfs xs = rig.make(DvfsParams::xscale());
    // Full range: 320 steps.
    EXPECT_NEAR(static_cast<double>(xs.estimateTransitionTime(1e9, 250e6)),
                fromMicroseconds(55.0), fromMicroseconds(0.1));
    EXPECT_EQ(xs.estimateTransitionTime(1e9, 1e9), 0u);

    DomainDvfs tm = rig.make(DvfsParams::transmeta());
    Tick full = tm.estimateTransitionTime(250e6, 1e9);
    EXPECT_NEAR(static_cast<double>(full), fromMicroseconds(655.0),
                fromMicroseconds(1.0));
}

TEST(DomainDvfs, TraceRecordsChanges)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::xscale());
    d.enableTrace();
    d.requestFrequency(1000, 500e6);
    Tick t = 1000;
    while (d.transitioning()) {
        t += 1000;
        d.update(t);
    }
    d.requestFrequency(t, 750e6);
    while (d.transitioning()) {
        t += 1000;
        d.update(t);
    }
    ASSERT_GE(d.trace().size(), 2u);
    // Times are monotone.
    for (std::size_t i = 1; i < d.trace().size(); ++i)
        EXPECT_GE(d.trace()[i].when, d.trace()[i - 1].when);
    EXPECT_DOUBLE_EQ(d.trace().back().frequency, 750e6);
}

TEST(DomainDvfs, RepeatRequestIsNoop)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::xscale());
    d.requestFrequency(0, 500e6);
    EXPECT_EQ(d.reconfigurations(), 1u);
    d.requestFrequency(10, 500e6);
    EXPECT_EQ(d.reconfigurations(), 1u);
}

TEST(DomainDvfs, RequestsClampToTable)
{
    Rig rig;
    DomainDvfs d = rig.make(DvfsParams::none());
    d.requestFrequency(0, 100e6);
    EXPECT_DOUBLE_EQ(rig.clock.frequency(), 250e6);
    d.requestFrequency(1, 5e9);
    EXPECT_DOUBLE_EQ(rig.clock.frequency(), 1e9);
}

TEST(DvfsKindNames, AreStable)
{
    EXPECT_STREQ(dvfsKindName(DvfsKind::None), "none");
    EXPECT_STREQ(dvfsKindName(DvfsKind::Transmeta), "Transmeta");
    EXPECT_STREQ(dvfsKindName(DvfsKind::XScale), "XScale");
}

TEST(DvfsKindNames, FromNameRoundTripsEveryKind)
{
    for (DvfsKind k : {DvfsKind::None, DvfsKind::Transmeta,
                       DvfsKind::XScale}) {
        auto back = dvfsKindFromName(dvfsKindName(k));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, k);
    }
}

TEST(DvfsKindNames, FromNameIsCaseInsensitive)
{
    EXPECT_EQ(dvfsKindFromName("transmeta"), DvfsKind::Transmeta);
    EXPECT_EQ(dvfsKindFromName("XSCALE"), DvfsKind::XScale);
    EXPECT_EQ(dvfsKindFromName("None"), DvfsKind::None);
}

TEST(DvfsKindNames, FromNameRejectsUnknown)
{
    EXPECT_FALSE(dvfsKindFromName("").has_value());
    EXPECT_FALSE(dvfsKindFromName("longrun").has_value());
    EXPECT_FALSE(dvfsKindFromName("XScale2").has_value());
    EXPECT_FALSE(dvfsKindFromName(" xscale").has_value());
}

} // namespace
} // namespace mcd
