/**
 * @file
 * Tests for the pluggable DVFS control plane: ScheduleController
 * emission semantics and bit-identity with the SimConfig::schedule
 * convenience path, StaticController, the OnlineQueueController
 * attack/decay law on synthetic occupancy ramps, and the end-to-end
 * energy outcome of the online column.
 */

#include <gtest/gtest.h>

#include "control/controller.hh"
#include "control/online_queue.hh"
#include "core/experiment.hh"
#include "core/processor.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

/** Observation with @p occ mean occupancy on @p d's queue. */
DomainStats
statsFor(Domain d, double occ, Hertz freq)
{
    DomainStats s;
    s.domain = d;
    s.windowCycles = 1000;
    s.queueCapacity = 64;
    s.occupancySum = static_cast<std::uint64_t>(
        occ * 1000.0 * 64.0 + 0.5);
    s.queueLength = static_cast<std::size_t>(occ * 64.0);
    s.frequency = freq;
    return s;
}

TEST(DomainStats, MeanOccupancy)
{
    EXPECT_NEAR(statsFor(Domain::Integer, 0.5, 1e9).meanOccupancy(),
                0.5, 1e-3);
    DomainStats empty;
    EXPECT_EQ(empty.meanOccupancy(), 0.0);
}

TEST(ScheduleController, EmitsEntriesAtOrAfterTheirTime)
{
    ReconfigSchedule sched;
    sched.add(1000, Domain::Integer, 500e6);
    sched.add(5000, Domain::Integer, 750e6);
    sched.finalize();
    ScheduleController c(sched);
    EXPECT_STREQ(c.name(), "schedule");
    EXPECT_EQ(c.samplePeriod(), 0u);
    EXPECT_EQ(c.pendingEntries(), 2u);

    c.observe(statsFor(Domain::Integer, 0.0, 1e9), 999);
    EXPECT_TRUE(c.requests().empty());

    c.observe(statsFor(Domain::Integer, 0.0, 1e9), 1200);
    ASSERT_EQ(c.requests().size(), 1u);
    EXPECT_EQ(c.requests()[0].domain, Domain::Integer);
    EXPECT_DOUBLE_EQ(c.requests()[0].frequency, 500e6);
    c.clearRequests();
    EXPECT_EQ(c.pendingEntries(), 1u);

    // Other domains' edges never drain Integer's entries.
    c.observe(statsFor(Domain::LoadStore, 0.0, 1e9), 9000);
    EXPECT_TRUE(c.requests().empty());

    c.observe(statsFor(Domain::Integer, 0.0, 500e6), 9000);
    ASSERT_EQ(c.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(c.requests()[0].frequency, 750e6);
    EXPECT_EQ(c.pendingEntries(), 0u);
}

TEST(ScheduleController, MultipleSameTickEntriesEmitInScheduleOrder)
{
    ReconfigSchedule sched;
    sched.add(2000, Domain::FloatingPoint, 500e6);
    sched.add(2000, Domain::FloatingPoint, 250e6);
    sched.add(2000, Domain::Integer, 750e6);
    sched.finalize();
    ScheduleController c(sched);

    // One late edge drains both FP entries, in schedule order: the
    // 250 MHz request lands last and wins.
    c.observe(statsFor(Domain::FloatingPoint, 0.0, 1e9), 3000);
    ASSERT_EQ(c.requests().size(), 2u);
    EXPECT_DOUBLE_EQ(c.requests()[0].frequency, 500e6);
    EXPECT_DOUBLE_EQ(c.requests()[1].frequency, 250e6);
    c.clearRequests();

    c.observe(statsFor(Domain::Integer, 0.0, 1e9), 3000);
    ASSERT_EQ(c.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(c.requests()[0].frequency, 750e6);
}

TEST(ScheduleController, ExplicitControllerMatchesScheduleConfigPath)
{
    Program p = workloads::build("epic", 1);
    ReconfigSchedule sched;
    sched.add(fromMicroseconds(5.0), Domain::FloatingPoint, 250e6);
    sched.add(fromMicroseconds(10.0), Domain::Integer, 750e6);
    sched.add(fromMicroseconds(40.0), Domain::Integer, 1e9);
    sched.finalize();

    SimConfig viaSchedule;
    viaSchedule.clocking = ClockingStyle::Mcd;
    viaSchedule.dvfs = DvfsKind::XScale;
    viaSchedule.dvfsTimeScale = 0.2;
    viaSchedule.schedule = &sched;
    RunResult a = McdProcessor(viaSchedule, p).run();

    ScheduleController ctrl(sched);
    SimConfig viaController = viaSchedule;
    viaController.schedule = nullptr;
    viaController.controller = &ctrl;
    RunResult b = McdProcessor(viaController, p).run();

    // Bit-identical: same requests at the same edges, same jitter
    // stream, so every statistic matches exactly.
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_DOUBLE_EQ(a.totalEnergy, b.totalEnergy);
    for (int di = 0; di < numDomains; ++di) {
        EXPECT_EQ(a.domains[di].reconfigurations,
                  b.domains[di].reconfigurations);
        EXPECT_DOUBLE_EQ(a.domains[di].avgFrequency,
                         b.domains[di].avgFrequency);
    }
}

TEST(StaticController, PinsEachDomainOnce)
{
    StaticController c({0.0, 500e6, 250e6, 0.0});
    c.observe(statsFor(Domain::Integer, 0.0, 1e9), 100);
    ASSERT_EQ(c.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(c.requests()[0].frequency, 500e6);
    c.clearRequests();

    // Already at target / zero target: nothing to request.
    c.observe(statsFor(Domain::Integer, 0.0, 1e9), 200);
    c.observe(statsFor(Domain::FrontEnd, 0.0, 1e9), 200);
    EXPECT_TRUE(c.requests().empty());

    c.observe(statsFor(Domain::FloatingPoint, 0.0, 1e9), 300);
    ASSERT_EQ(c.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(c.requests()[0].frequency, 250e6);
}

TEST(StaticController, SkipsRequestWhenAlreadyAtTarget)
{
    StaticController c({0.0, 500e6, 0.0, 0.0});
    c.observe(statsFor(Domain::Integer, 0.0, 500e6), 100);
    EXPECT_TRUE(c.requests().empty());
}

TEST(OnlineQueue, FirstObservationOnlyCalibrates)
{
    OnlineQueueController c;
    EXPECT_EQ(c.pointIndex(Domain::Integer), -1);
    c.observe(statsFor(Domain::Integer, 0.5, 1e9), 1000);
    EXPECT_TRUE(c.requests().empty());
    DvfsTable t;
    EXPECT_EQ(c.pointIndex(Domain::Integer), t.numPoints() - 1);
}

TEST(OnlineQueue, AttacksUpUnderRisingPressure)
{
    OnlineQueueController c;
    DvfsTable t;
    // Calibrate at a mid-table frequency.
    Hertz mid = t.point(t.numPoints() / 2).frequency;
    c.observe(statsFor(Domain::Integer, 0.20, mid), 0);
    int start = c.pointIndex(Domain::Integer);

    // Occupancy ramps up fast: every interval attacks upward.
    c.observe(statsFor(Domain::Integer, 0.40, mid), 2500);
    ASSERT_EQ(c.requests().size(), 1u);
    int afterOne = c.pointIndex(Domain::Integer);
    EXPECT_EQ(afterOne, start + c.params().attackPoints);
    EXPECT_GT(c.requests()[0].frequency, mid);
    c.clearRequests();

    // Above the high-water mark: jump straight to full speed.
    c.observe(statsFor(Domain::Integer, 0.90, mid), 5000);
    ASSERT_EQ(c.requests().size(), 1u);
    EXPECT_EQ(c.pointIndex(Domain::Integer), t.numPoints() - 1);
    EXPECT_DOUBLE_EQ(c.requests()[0].frequency, t.fastest().frequency);
}

TEST(OnlineQueue, DecaysWhenQuietAndFasterWhenIdle)
{
    OnlineQueueController c;
    DvfsTable t;
    Hertz top = t.fastest().frequency;
    c.observe(statsFor(Domain::LoadStore, 0.30, top), 0);
    int start = c.pointIndex(Domain::LoadStore);

    // Steady moderate occupancy: slow downward probe.
    c.observe(statsFor(Domain::LoadStore, 0.30, top), 2500);
    EXPECT_EQ(c.pointIndex(Domain::LoadStore),
              start - c.params().decayPoints);
    c.clearRequests();

    // Near-idle: fast decay. Feed a sequence and check we fall to the
    // table floor and then go quiet (no more requests at the floor).
    for (int i = 2; i < 40; ++i)
        c.observe(statsFor(Domain::LoadStore, 0.0, top), i * 2500);
    EXPECT_EQ(c.pointIndex(Domain::LoadStore), 0);
    c.clearRequests();
    c.observe(statsFor(Domain::LoadStore, 0.0, top), 200000);
    EXPECT_TRUE(c.requests().empty());
}

TEST(OnlineQueue, HoldsWhenQueueSettledBetweenWaterMarks)
{
    // A steady queue between holdWater and highWater is the settled
    // state: the operating point must not move.
    OnlineQueueController c;
    DvfsTable t;
    Hertz mid = t.point(t.numPoints() / 2).frequency;
    c.observe(statsFor(Domain::Integer, 0.50, mid), 0);
    int start = c.pointIndex(Domain::Integer);
    for (int i = 1; i < 10; ++i)
        c.observe(statsFor(Domain::Integer, 0.50, mid), i * 2500);
    EXPECT_TRUE(c.requests().empty());
    EXPECT_EQ(c.pointIndex(Domain::Integer), start);
}

TEST(OnlineQueue, FrontEndStaysPinnedByDefault)
{
    OnlineQueueController c;
    c.observe(statsFor(Domain::FrontEnd, 0.9, 1e9), 0);
    c.observe(statsFor(Domain::FrontEnd, 0.0, 1e9), 2500);
    EXPECT_TRUE(c.requests().empty());
    EXPECT_EQ(c.pointIndex(Domain::FrontEnd), -1);

    OnlineQueueParams prm;
    prm.scaleFrontEnd = true;
    OnlineQueueController fe(prm);
    fe.observe(statsFor(Domain::FrontEnd, 0.5, 1e9), 0);
    fe.observe(statsFor(Domain::FrontEnd, 0.04, 1e9), 2500);
    EXPECT_FALSE(fe.requests().empty());
}

TEST(OnlineQueue, DeterministicForFixedSeed)
{
    Program p = workloads::build("mst", 1);
    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.dvfs = DvfsKind::XScale;
    cfg.dvfsTimeScale = 0.2;
    cfg.maxInstructions = 30000;

    OnlineQueueController c1({}, DvfsTable{}, 1);
    SimConfig a = cfg;
    a.controller = &c1;
    RunResult ra = McdProcessor(a, p).run();

    OnlineQueueController c2({}, DvfsTable{}, 1);
    SimConfig b = cfg;
    b.controller = &c2;
    RunResult rb = McdProcessor(b, p).run();

    EXPECT_EQ(ra.execTime, rb.execTime);
    EXPECT_EQ(ra.committed, rb.committed);
    EXPECT_DOUBLE_EQ(ra.totalEnergy, rb.totalEnergy);
}

TEST(OnlineQueue, ControllerInUseIsReported)
{
    Program p = workloads::build("epic", 1);
    OnlineQueueController ctrl;
    SimConfig cfg;
    cfg.clocking = ClockingStyle::Mcd;
    cfg.dvfs = DvfsKind::XScale;
    cfg.controller = &ctrl;
    cfg.maxInstructions = 1000;
    McdProcessor proc(cfg, p);
    EXPECT_EQ(proc.controllerInUse(), &ctrl);
    McdProcessor plain(SimConfig{}, p);
    EXPECT_EQ(plain.controllerInUse(), nullptr);
}

/** The online column must save energy vs the MCD baseline. */
void
expectOnlineSavesEnergy(const char *bench)
{
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    ExperimentRunner::OnlineRun on = runner.runOnline(bench);
    EXPECT_LT(on.online.totalEnergy, on.mcdBaseline.totalEnergy)
        << bench << ": online controller saved no energy";
    // And it must actually reconfigure something.
    std::uint64_t reconfigs = 0;
    for (const DomainSummary &d : on.online.domains)
        reconfigs += d.reconfigurations;
    EXPECT_GT(reconfigs, 0u) << bench;
}

TEST(OnlineQueue, SavesEnergyOnAdpcm) { expectOnlineSavesEnergy("adpcm"); }
TEST(OnlineQueue, SavesEnergyOnMst) { expectOnlineSavesEnergy("mst"); }

} // namespace
} // namespace mcd
