/**
 * @file
 * Tests for the memory hierarchy timing façade.
 */

#include <gtest/gtest.h>

#include "clock/clock_domain.hh"
#include "clock/sync.hh"
#include "mem/hierarchy.hh"

namespace mcd {
namespace {

struct Rig
{
    ClockDomain fe{Domain::FrontEnd, 1e9, 1, 0.0, false};
    ClockDomain ls{Domain::LoadStore, 1e9, 2, 0.0, false};
    MemParams params;

    MemoryHierarchy
    make(bool cross = false)
    {
        return MemoryHierarchy(params, fe, ls,
                               SyncRule(cross, 300.0));
    }
};

TEST(Hierarchy, L1DHitLatency)
{
    Rig rig;
    MemoryHierarchy h = rig.make();
    h.dataAccess(0x1000, false, 0);             // warm the line
    MemAccessResult r = h.dataAccess(0x1000, false, 10000);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_FALSE(r.l2Accessed);
    // 2 cycles at 1 GHz, encoded half a period early.
    EXPECT_EQ(r.ready, 10000u + 1500u);
}

TEST(Hierarchy, L2HitLatency)
{
    Rig rig;
    MemoryHierarchy h = rig.make();
    h.dataAccess(0x1000, false, 0);             // into L1 + L2
    h.l1d().reset();                            // force L1 miss
    MemAccessResult r = h.dataAccess(0x1000, false, 10000);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Accessed);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_FALSE(r.dramAccessed);
    // L1 (2) + L2 (12) cycles minus the half-period encoding.
    EXPECT_EQ(r.ready, 10000u + 14000u - 500u);
}

TEST(Hierarchy, DramLatencyAdded)
{
    Rig rig;
    MemoryHierarchy h = rig.make();
    MemAccessResult r = h.dataAccess(0x1000, false, 10000);
    EXPECT_TRUE(r.dramAccessed);
    EXPECT_EQ(r.dramTime, 80000u);
    EXPECT_EQ(r.ready, 10000u + 14000u + 80000u - 500u);
}

TEST(Hierarchy, LsClockScalingSlowsCaches)
{
    Rig rig;
    rig.ls.setFrequency(500e6);
    MemoryHierarchy h = rig.make();
    h.dataAccess(0x1000, false, 0);
    MemAccessResult r = h.dataAccess(0x1000, false, 10000);
    EXPECT_TRUE(r.l1Hit);
    // 2 cycles at 500 MHz = 4000 ps, minus half a period (1000).
    EXPECT_EQ(r.ready, 10000u + 3000u);
}

TEST(Hierarchy, DramFixedUnderLsScaling)
{
    Rig rig;
    rig.ls.setFrequency(250e6);
    MemoryHierarchy h = rig.make();
    MemAccessResult r = h.dataAccess(0x1000, false, 0);
    // DRAM time unchanged: the external interface is full speed.
    EXPECT_EQ(r.dramTime, 80000u);
}

TEST(Hierarchy, DramScalesWithClockWhenConfigured)
{
    Rig rig;
    rig.params.dramScalesWithClock = true;
    rig.ls.setFrequency(500e6);
    MemoryHierarchy h = rig.make();
    MemAccessResult r = h.dataAccess(0x1000, false, 0);
    // 80 "cycles" at 500 MHz = 160 ns.
    EXPECT_EQ(r.dramTime, 160000u);
}

TEST(Hierarchy, InstFetchHit)
{
    Rig rig;
    MemoryHierarchy h = rig.make();
    h.instFetch(0x4000, 0);
    MemAccessResult r = h.instFetch(0x4000, 5000);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.ready, 5000u + 1500u);
}

TEST(Hierarchy, InstMissPaysSyncBothWays)
{
    Rig rig;
    MemoryHierarchy noSync = rig.make(false);
    MemAccessResult a = noSync.instFetch(0x8000, 0);

    Rig rig2;
    MemoryHierarchy withSync = rig2.make(true);
    MemAccessResult b = withSync.instFetch(0x8000, 0);

    EXPECT_FALSE(a.l1Hit);
    EXPECT_FALSE(b.l1Hit);
    // Cross-domain adds about 2 * Ts (one each way); same-domain adds
    // two next-tick (+1 ps) hops.
    EXPECT_NEAR(static_cast<double>(b.ready - a.ready), 600.0, 5.0);
}

TEST(Hierarchy, WritePropagatesDirtyToL2OnlyOnEviction)
{
    Rig rig;
    MemoryHierarchy h = rig.make();
    h.dataAccess(0x1000, true, 0);
    EXPECT_EQ(h.l1d().stats().accesses, 1u);
    EXPECT_EQ(h.l2().stats().accesses, 1u);
    h.dataAccess(0x1000, true, 100);
    // L1 hit: no L2 traffic.
    EXPECT_EQ(h.l2().stats().accesses, 1u);
}

TEST(Hierarchy, ResetClearsAllLevels)
{
    Rig rig;
    MemoryHierarchy h = rig.make();
    h.dataAccess(0x1000, false, 0);
    h.instFetch(0x2000, 0);
    h.reset();
    EXPECT_EQ(h.l1d().stats().accesses, 0u);
    EXPECT_EQ(h.l1i().stats().accesses, 0u);
    EXPECT_EQ(h.l2().stats().accesses, 0u);
    EXPECT_FALSE(h.l1d().probe(0x1000));
}

TEST(Hierarchy, Table1Defaults)
{
    MemParams p;
    EXPECT_EQ(p.l1i.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l1i.associativity, 2);
    EXPECT_EQ(p.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l1d.associativity, 2);
    EXPECT_EQ(p.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l2.associativity, 1);
    EXPECT_EQ(p.l1d.latencyCycles, 2);
    EXPECT_EQ(p.l2.latencyCycles, 12);
}

} // namespace
} // namespace mcd
