/**
 * @file
 * Tests for the 16 benchmark kernels: registry completeness,
 * functional termination, determinism, scaling, and known-answer
 * checks for kernels with closed-form results.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/executor.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

std::uint64_t
runToHalt(const Program &, Executor &ex,
          std::uint64_t cap = 5'000'000)
{
    while (!ex.halted() && ex.instsExecuted() < cap)
        ex.step();
    return ex.instsExecuted();
}

TEST(WorkloadRegistry, HasSixteenPaperBenchmarks)
{
    const auto &all = workloads::all();
    ASSERT_EQ(all.size(), 16u);
    // Paper Table 2 order.
    EXPECT_STREQ(all[0].name, "adpcm");
    EXPECT_STREQ(all[4].name, "em3d");
    EXPECT_STREQ(all[10].name, "bzip2");
    EXPECT_STREQ(all[15].name, "swim");
}

TEST(WorkloadRegistry, SuitesMatchTable2)
{
    int media = 0, olden = 0, specInt = 0, specFp = 0;
    for (const WorkloadInfo &w : workloads::all()) {
        std::string s = w.suite;
        if (s == "MediaBench")
            ++media;
        else if (s == "Olden")
            ++olden;
        else if (s == "SPEC 2000 Int")
            ++specInt;
        else if (s == "SPEC 2000 FP")
            ++specFp;
    }
    EXPECT_EQ(media, 4);
    EXPECT_EQ(olden, 6);
    EXPECT_EQ(specInt, 4);
    EXPECT_EQ(specFp, 2);
}

TEST(WorkloadRegistry, UnknownNameFails)
{
    EXPECT_THROW(workloads::get("nonesuch"), FatalError);
    EXPECT_THROW(workloads::build("adpcm", 0), FatalError);
}

class EveryWorkload : public ::testing::TestWithParam<const char *>
{};

TEST_P(EveryWorkload, HaltsWithinWindow)
{
    Program p = workloads::build(GetParam(), 1);
    Executor ex(p);
    std::uint64_t n = runToHalt(p, ex);
    EXPECT_TRUE(ex.halted()) << "did not halt";
    // Scale-1 windows: roughly 60K-250K committed instructions.
    EXPECT_GE(n, 60'000u);
    EXPECT_LE(n, 300'000u);
}

TEST_P(EveryWorkload, DeterministicChecksum)
{
    Program p1 = workloads::build(GetParam(), 1);
    Program p2 = workloads::build(GetParam(), 1);
    Executor a(p1), b(p2);
    runToHalt(p1, a);
    runToHalt(p2, b);
    EXPECT_EQ(a.intReg(checksumReg), b.intReg(checksumReg));
    EXPECT_EQ(a.instsExecuted(), b.instsExecuted());
}

TEST_P(EveryWorkload, ScaleIncreasesWork)
{
    Program p1 = workloads::build(GetParam(), 1);
    Program p2 = workloads::build(GetParam(), 2);
    Executor a(p1), b(p2);
    runToHalt(p1, a);
    runToHalt(p2, b, 10'000'000);
    EXPECT_GT(b.instsExecuted(), a.instsExecuted() * 3 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    All16, EveryWorkload,
    ::testing::Values("adpcm", "epic", "g721", "mesa", "em3d", "health",
                      "mst", "power", "treeadd", "tsp", "bzip2", "gcc",
                      "mcf", "parser", "art", "swim"));

TEST(WorkloadTreeadd, SumMatchesClosedForm)
{
    // The tree stores value i+1 at heap index i over 2^13 - 1 nodes:
    // the recursive sum is n(n+1)/2 for n = 8191.
    Program p = workloads::build("treeadd", 1);
    Executor ex(p);
    runToHalt(p, ex);
    EXPECT_EQ(ex.intReg(checksumReg), 8191ull * 8192 / 2);
}

TEST(WorkloadTreeadd, MultiplePassesAccumulate)
{
    Program p = workloads::build("treeadd", 2);
    Executor ex(p);
    runToHalt(p, ex, 10'000'000);
    EXPECT_EQ(ex.intReg(checksumReg), 2 * (8191ull * 8192 / 2));
}

TEST(WorkloadAdpcm, PredictorStaysClamped)
{
    // valpred lives in r10 and must stay within [-32768, 32767].
    Program p = workloads::build("adpcm", 1);
    Executor ex(p);
    while (!ex.halted()) {
        ex.step();
        auto v = static_cast<std::int64_t>(ex.intReg(10));
        ASSERT_GE(v, -32768);
        ASSERT_LE(v, 32767);
    }
}

TEST(WorkloadMcf, VisitsTheWholeArcCycle)
{
    // The chase follows a permutation cycle: 15000 iterations must see
    // 15000 distinct arcs (cycle length is 131072).
    Program p = workloads::build("mcf", 1);
    Executor ex(p);
    std::set<std::uint64_t> arcs;
    while (!ex.halted()) {
        ExecResult r = ex.step();
        if (isLoad(r.inst.op) && r.inst.imm == 0 && r.inst.rd == 10)
            arcs.insert(r.memAddr);
    }
    EXPECT_GE(arcs.size(), 14'000u);
}

TEST(WorkloadMix, FpBenchmarksUseFp)
{
    for (const char *name : {"power", "swim", "art", "tsp", "mesa"}) {
        Program p = workloads::build(name, 1);
        Executor ex(p);
        std::uint64_t fp = 0;
        while (!ex.halted()) {
            ExecResult r = ex.step();
            fp += isFp(r.inst.op) || r.inst.op == Opcode::FLD ||
                r.inst.op == Opcode::FST;
        }
        EXPECT_GT(fp, ex.instsExecuted() / 10) << name;
    }
}

TEST(WorkloadMix, IntBenchmarksAvoidFp)
{
    for (const char *name : {"adpcm", "g721", "bzip2", "gcc", "mcf",
                             "parser", "health", "mst", "treeadd"}) {
        Program p = workloads::build(name, 1);
        Executor ex(p);
        std::uint64_t fp = 0;
        while (!ex.halted()) {
            ExecResult r = ex.step();
            fp += isFp(r.inst.op);
        }
        EXPECT_LT(fp, ex.instsExecuted() / 100) << name;
    }
}

TEST(WorkloadMix, MemoryBoundBenchmarksLoadHeavily)
{
    for (const char *name : {"mcf", "health", "em3d"}) {
        Program p = workloads::build(name, 1);
        Executor ex(p);
        std::uint64_t mem = 0;
        while (!ex.halted()) {
            ExecResult r = ex.step();
            mem += isMem(r.inst.op);
        }
        EXPECT_GT(mem, ex.instsExecuted() / 8) << name;
    }
}

} // namespace
} // namespace mcd
