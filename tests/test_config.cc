/**
 * @file
 * The unified typed configuration layer: strict defaults < config
 * file < env < flags precedence with per-option provenance, the
 * value-checked boolean rule, empty-env semantics, unknown-key and
 * invalid-value rejection, the unregistered-MCD_* environment canary,
 * exact RunSpec JSON round-trips, schema generation, and the
 * env-vs-config-file / effectiveConfig-feed-back byte-identity of a
 * real adpcm+mst matrix.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/random.hh"
#include "config/jsonlite.hh"
#include "config/registry.hh"
#include "config/runspec.hh"
#include "core/experiment.hh"

namespace mcd {
namespace {

namespace fs = std::filesystem;

/** Scoped cleanup: clear flag overrides and every MCD_* variable a
 *  test sets, so resolution state never leaks between tests. */
struct ConfigSandbox
{
    std::vector<std::string> vars;

    void
    set(const char *var, const std::string &value)
    {
        ::setenv(var, value.c_str(), 1);
        vars.emplace_back(var);
    }

    ~ConfigSandbox()
    {
        for (const std::string &v : vars)
            ::unsetenv(v.c_str());
        config::clearFlagOverrides();
    }
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const fs::path &p, const std::string &text)
{
    std::ofstream out(p, std::ios::binary);
    out << text;
}

fs::path
freshDir(const char *name)
{
    fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** A per-type (file, env, flag) value triple that passes every
 *  registered validator and keeps the three layers distinguishable
 *  by raw text. */
struct LayerValues
{
    const char *file;
    const char *env;
    const char *flag;
};

LayerValues
layerValues(config::Type t)
{
    switch (t) {
      case config::Type::Bool: return {"1", "true", "yes"};
      case config::Type::Int: return {"3", "5", "7"};
      case config::Type::U64: return {"11", "13", "17"};
      case config::Type::Double: return {"0.11", "0.13", "0.17"};
      case config::Type::String:
      case config::Type::Path: return {"fromfile", "fromenv",
                                       "fromflag"};
    }
    return {"x", "y", "z"};
}

/** A one-option mcd-runspec-v1 document. */
std::string
oneOptionDoc(const std::string &name, const std::string &value)
{
    return std::string("{\"version\": \"") + config::runSpecVersion +
        "\", \"options\": {\"" + name + "\": \"" +
        config::jsonlite::escape(value) + "\"}}";
}

TEST(RunSpec, DefaultsResolveWithDefaultProvenance)
{
    ConfigSandbox sandbox;
    const config::RunSpec spec = config::RunSpec::resolve();
    for (const config::OptionDef &o : config::options()) {
        EXPECT_TRUE(spec.isDefault(o.name)) << o.name;
        EXPECT_EQ(spec.str(o.name), o.defaultValue) << o.name;
        EXPECT_EQ(spec.source(o.name), config::Source::Default)
            << o.name;
    }
}

TEST(RunSpec, PrecedenceAndProvenancePerOption)
{
    // Every registered option individually: flag beats env beats
    // config file beats default, with the provenance recording each
    // winning layer. The "config" meta-option is the file path itself
    // and is exercised by every file-layer assertion below.
    fs::path dir = freshDir("mcd-config-precedence");
    for (const config::OptionDef &o : config::options()) {
        if (std::string_view(o.name) == "config")
            continue;
        SCOPED_TRACE(o.name);
        LayerValues v = layerValues(o.type);
        fs::path file = dir / (std::string(o.name) + ".json");
        writeFile(file, oneOptionDoc(o.name, v.file));

        ConfigSandbox sandbox;
        sandbox.set("MCD_CONFIG", file.string());

        // File layer alone.
        config::RunSpec spec = config::RunSpec::resolve();
        EXPECT_EQ(spec.str(o.name), v.file);
        EXPECT_EQ(spec.source(o.name), config::Source::File);

        // Env overrides file.
        sandbox.set(o.env, v.env);
        spec = config::RunSpec::resolve();
        EXPECT_EQ(spec.str(o.name), v.env);
        EXPECT_EQ(spec.source(o.name), config::Source::Env);

        // Flag overrides env.
        config::setFlagOverride(o.name, v.flag);
        spec = config::RunSpec::resolve();
        EXPECT_EQ(spec.str(o.name), v.flag);
        EXPECT_EQ(spec.source(o.name), config::Source::Flag);
    }
    fs::remove_all(dir);
}

TEST(RunSpec, EmptyEnvMeansUnsetForNumbersExplicitForStrings)
{
    // CI wrappers "clear" variables with VAR=; for numeric options
    // that must mean unset, while an empty string/path/bool stays an
    // explicit value (MCD_CACHE_DIR= disables caching).
    ConfigSandbox sandbox;
    sandbox.set("MCD_SEED", "");
    sandbox.set("MCD_SCALE", "");
    sandbox.set("MCD_DILATION_HIGH", "");
    sandbox.set("MCD_CACHE_DIR", "");
    sandbox.set("MCD_TOURNAMENT", "");
    const config::RunSpec spec = config::RunSpec::resolve();
    EXPECT_TRUE(spec.isDefault("seed"));
    EXPECT_TRUE(spec.isDefault("scale"));
    EXPECT_TRUE(spec.isDefault("dilationHigh"));
    EXPECT_EQ(spec.source("cacheDir"), config::Source::Env);
    EXPECT_EQ(spec.str("cacheDir"), "");
    EXPECT_EQ(spec.source("tournament"), config::Source::Env);
    EXPECT_FALSE(spec.boolean("tournament"));
}

TEST(RunSpec, BooleansAreValueCheckedNotPresenceChecked)
{
    // DESIGN.md §15: MCD_TOURNAMENT=0 really is false — the historic
    // presence-checked reading is gone everywhere.
    for (const char *f : {"", "0", "false", "no", "off"}) {
        ConfigSandbox sandbox;
        sandbox.set("MCD_TOURNAMENT", f);
        EXPECT_FALSE(config::RunSpec::resolve().boolean("tournament"))
            << "'" << f << "'";
    }
    for (const char *t : {"1", "true", "yes", "on"}) {
        ConfigSandbox sandbox;
        sandbox.set("MCD_TOURNAMENT", t);
        EXPECT_TRUE(config::RunSpec::resolve().boolean("tournament"))
            << "'" << t << "'";
    }
    ConfigSandbox sandbox;
    sandbox.set("MCD_TOURNAMENT", "maybe");
    EXPECT_THROW(config::RunSpec::resolve(), FatalError);
}

TEST(RunSpec, RejectsEveryInvalidValueAndUnknownKeyPath)
{
    fs::path dir = freshDir("mcd-config-reject");

    auto fatalMessage = [&](const std::function<void()> &body) {
        try {
            body();
        } catch (const FatalError &e) {
            return std::string(e.what());
        }
        ADD_FAILURE() << "expected FatalError";
        return std::string();
    };

    {   // Unknown option name in a config file enumerates the
        // valid names.
        ConfigSandbox sandbox;
        fs::path f = dir / "unknown-option.json";
        writeFile(f, oneOptionDoc("benchmurks", "adpcm"));
        sandbox.set("MCD_CONFIG", f.string());
        std::string msg =
            fatalMessage([] { config::RunSpec::resolve(); });
        EXPECT_NE(msg.find("benchmurks"), std::string::npos) << msg;
        EXPECT_NE(msg.find("benchmarks"), std::string::npos) << msg;
        EXPECT_NE(msg.find("valid"), std::string::npos) << msg;
    }
    {   // Unknown top-level key.
        ConfigSandbox sandbox;
        fs::path f = dir / "unknown-top.json";
        writeFile(f, std::string("{\"version\": \"") +
                         config::runSpecVersion +
                         "\", \"extras\": {}}");
        sandbox.set("MCD_CONFIG", f.string());
        EXPECT_THROW(config::RunSpec::resolve(), FatalError);
    }
    {   // Version mismatch.
        ConfigSandbox sandbox;
        fs::path f = dir / "bad-version.json";
        writeFile(f, "{\"version\": \"mcd-runspec-v0\", "
                     "\"options\": {}}");
        sandbox.set("MCD_CONFIG", f.string());
        EXPECT_THROW(config::RunSpec::resolve(), FatalError);
    }
    {   // A config file cannot chain to another config file.
        ConfigSandbox sandbox;
        fs::path f = dir / "chain.json";
        writeFile(f, oneOptionDoc("config", "elsewhere.json"));
        sandbox.set("MCD_CONFIG", f.string());
        EXPECT_THROW(config::RunSpec::resolve(), FatalError);
    }
    {   // Malformed JSON and a missing file are fatal, not ignored.
        ConfigSandbox sandbox;
        fs::path f = dir / "malformed.json";
        writeFile(f, "{\"version\": ");
        sandbox.set("MCD_CONFIG", f.string());
        EXPECT_THROW(config::RunSpec::resolve(), FatalError);
        sandbox.set("MCD_CONFIG", (dir / "nope.json").string());
        EXPECT_THROW(config::RunSpec::resolve(), FatalError);
    }
    {   // Type errors, named by the layer that supplied them.
        ConfigSandbox sandbox;
        sandbox.set("MCD_SEED", "not-a-number");
        std::string msg =
            fatalMessage([] { config::RunSpec::resolve(); });
        EXPECT_NE(msg.find("MCD_SEED"), std::string::npos) << msg;
    }
    {   // Range validators.
        ConfigSandbox sandbox;
        sandbox.set("MCD_SCALE", "0");
        EXPECT_THROW(config::RunSpec::resolve(), FatalError);
    }
    {   // All defects are collected into one message, fuzz-triage
        // style, not reported serially.
        ConfigSandbox sandbox;
        sandbox.set("MCD_SCALE", "0");
        sandbox.set("MCD_DILATION_LOW", "huh");
        std::string msg =
            fatalMessage([] { config::RunSpec::resolve(); });
        EXPECT_NE(msg.find("2 invalid settings"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("MCD_SCALE"), std::string::npos) << msg;
        EXPECT_NE(msg.find("MCD_DILATION_LOW"), std::string::npos)
            << msg;
    }
    {   // Unknown option names are rejected at the flag store too.
        ConfigSandbox sandbox;
        EXPECT_THROW(config::setFlagOverride("benchmurks", "x"),
                     FatalError);
    }
    fs::remove_all(dir);
}

TEST(RunSpec, UnregisteredEnvVarsWarnStrictFatalAllowlistSilences)
{
    {   // Recorded (and warned once) by default.
        ConfigSandbox sandbox;
        sandbox.set("MCD_TYPO_XYZ", "1");
        config::RunSpec spec = config::RunSpec::resolve();
        ASSERT_EQ(spec.unknownEnv.size(), 1u);
        EXPECT_EQ(spec.unknownEnv[0], "MCD_TYPO_XYZ");
    }
    {   // strictEnv makes it fatal, enumerating the offenders.
        ConfigSandbox sandbox;
        sandbox.set("MCD_TYPO_XYZ", "1");
        sandbox.set("MCD_STRICT_ENV", "1");
        try {
            config::RunSpec::resolve();
            ADD_FAILURE() << "expected FatalError";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("MCD_TYPO_XYZ"),
                      std::string::npos);
        }
    }
    {   // Exact-name allowlist.
        ConfigSandbox sandbox;
        sandbox.set("MCD_TYPO_XYZ", "1");
        sandbox.set("MCD_STRICT_ENV", "1");
        sandbox.set("MCD_ENV_ALLOW", "MCD_TYPO_XYZ");
        EXPECT_TRUE(config::RunSpec::resolve().unknownEnv.empty());
    }
    {   // Trailing-* prefix allowlist (the CI-wrapper escape hatch).
        ConfigSandbox sandbox;
        sandbox.set("MCD_TYPO_XYZ", "1");
        sandbox.set("MCD_STRICT_ENV", "1");
        sandbox.set("MCD_ENV_ALLOW", "MCD_TYPO_*");
        EXPECT_TRUE(config::RunSpec::resolve().unknownEnv.empty());
    }
}

TEST(RunSpec, SchemaReferenceListsEveryOption)
{
    std::ostringstream os;
    config::writeSchemaMarkdown(os);
    std::string schema = os.str();
    for (const config::OptionDef &o : config::options()) {
        EXPECT_NE(schema.find("`" + std::string(o.name) + "`"),
                  std::string::npos) << o.name;
        EXPECT_NE(schema.find("`" + std::string(o.env) + "`"),
                  std::string::npos) << o.env;
        EXPECT_NE(schema.find("`" + std::string(o.flag) + "`"),
                  std::string::npos) << o.flag;
    }
}

TEST(RunSpec, ProvenanceForDistinguishesCodeFromLayers)
{
    ConfigSandbox sandbox;
    const config::RunSpec spec = config::RunSpec::resolve();
    const config::OptionDef *scale = config::find("scale");
    ASSERT_NE(scale, nullptr);
    EXPECT_EQ(config::provenanceFor(spec, *scale, "1"), "default");
    // A programmatic value the spec never supplied is attributed to
    // code, not to any resolution layer.
    EXPECT_EQ(config::provenanceFor(spec, *scale, "2"), "code");
    // Canonical comparison: "0.050" and the default "0.05" are the
    // same double.
    const config::OptionDef *dil = config::find("dilationHigh");
    ASSERT_NE(dil, nullptr);
    EXPECT_EQ(config::provenanceFor(spec, *dil, "0.050"), "default");
}

TEST(RunSpec, EffectiveConfigJsonRoundTripsExactly)
{
    // Property test: random option subsets with random typed values,
    // seeded from the shared deterministic stream primitive. The
    // emitted effectiveConfig document, fed back as --config, must
    // resolve to canonically identical values AND re-emit
    // byte-identically (a fixed point after one canonicalization).
    fs::path dir = freshDir("mcd-config-roundtrip");
    Rng rng(streamSeed(1, "config-roundtrip-test"));

    std::vector<const config::OptionDef *> pool;
    for (const config::OptionDef &o : config::options())
        if (o.affectsResults)
            pool.push_back(&o);

    for (int iter = 0; iter < 32; ++iter) {
        SCOPED_TRACE(iter);
        std::vector<std::pair<std::string, std::string>> actual;
        for (const config::OptionDef *o : pool) {
            if (rng.uniform() < 0.4)
                continue;
            std::string v;
            switch (o->type) {
              case config::Type::Bool:
                v = rng.uniform() < 0.5 ? "true" : "false";
                break;
              case config::Type::Int:
                v = std::to_string(1 + rng.uniformInt(9));
                break;
              case config::Type::U64:
                v = std::to_string(rng.next());
                break;
              case config::Type::Double:
                v = config::canonicalDouble(
                    rng.uniformRange(0.001, 0.999));
                break;
              case config::Type::String:
              case config::Type::Path:
                v = "s" + std::to_string(rng.uniformInt(1000));
                break;
            }
            actual.emplace_back(o->name, v);
        }

        ConfigSandbox sandbox;
        std::ostringstream doc1;
        config::writeEffectiveConfigJson(
            doc1, "", config::RunSpec::resolve(), actual);

        fs::path f1 = dir / "doc1.json";
        writeFile(f1, doc1.str());
        sandbox.set("MCD_CONFIG", f1.string());
        const config::RunSpec loaded = config::RunSpec::resolve();
        for (const auto &[name, value] : actual) {
            const config::OptionDef *o = config::find(name);
            EXPECT_EQ(config::canonicalValue(*o, name,
                                             loaded.str(name)),
                      config::canonicalValue(*o, name, value))
                << name;
            EXPECT_EQ(loaded.source(name), config::Source::File)
                << name;
        }

        // Fixed point: re-emitting the loaded spec reproduces the
        // document byte for byte (provenance is all "file" now, so
        // compare the version+options prefix, which ends where
        // "provenance" begins).
        std::vector<std::pair<std::string, std::string>> actual2;
        for (const auto &[name, value] : actual)
            actual2.emplace_back(name, loaded.str(name));
        std::ostringstream doc2;
        config::writeEffectiveConfigJson(doc2, "", loaded, actual2);
        std::string a = doc1.str(), b = doc2.str();
        a.resize(a.find("\"provenance\""));
        b.resize(b.find("\"provenance\""));
        EXPECT_EQ(a, b);
    }
    fs::remove_all(dir);
}

/** Erase the provenance object (the only intentionally differing
 *  bytes) from an emitted document before byte comparison. */
std::string
stripProvenance(std::string text)
{
    std::size_t at = text.find("\"provenance\"");
    while (at != std::string::npos) {
        std::size_t open = text.find('{', at);
        int depth = 1;
        std::size_t close = open + 1;
        while (close < text.size() && depth > 0) {
            if (text[close] == '{')
                ++depth;
            else if (text[close] == '}')
                --depth;
            ++close;
        }
        text.erase(at, close - at);
        at = text.find("\"provenance\"");
    }
    return text;
}

TEST(RunSpec, EnvConfigFileAndFeedBackRunsAreByteIdentical)
{
    // The load-bearing contract of the whole layer, on a real matrix:
    // (1) the legacy env-var surface and an equivalent --config file
    // produce byte-identical results JSON (modulo provenance), and
    // (2) feeding a run's own emitted effectiveConfig block back as
    // the config file reproduces the run byte-identically.
    fs::path dir = freshDir("mcd-config-byteident");

    auto runOnce = [&](const char *tag) {
        fs::path results = dir / (std::string(tag) + ".json");
        ::setenv("MCD_RESULTS_JSON", results.c_str(), 1);
        std::vector<std::string> names =
            benchmarkNamesFromSpec(config::RunSpec::resolve());
        ExperimentConfig ec;    // empty cacheDir: caching disabled
        runMatrix(ec, names, 1);
        ::unsetenv("MCD_RESULTS_JSON");
        return slurp(results);
    };

    std::string viaEnv;
    {
        ConfigSandbox sandbox;
        sandbox.set("MCD_BENCHMARKS", "adpcm,mst");
        viaEnv = runOnce("env");
    }
    ASSERT_FALSE(viaEnv.empty());
    EXPECT_NE(viaEnv.find("\"effectiveConfig\""), std::string::npos);
    EXPECT_NE(viaEnv.find("\"benchmarks\": \"adpcm,mst\""),
              std::string::npos);
    EXPECT_NE(viaEnv.find("\"benchmarks\": \"env\""),
              std::string::npos);

    std::string viaFile;
    {
        ConfigSandbox sandbox;
        fs::path f = dir / "config.json";
        writeFile(f, oneOptionDoc("benchmarks", "adpcm,mst"));
        sandbox.set("MCD_CONFIG", f.string());
        viaFile = runOnce("file");
    }
    EXPECT_EQ(stripProvenance(viaEnv), stripProvenance(viaFile))
        << "env-var and config-file runs diverged";

    // Extract the effectiveConfig block (a complete mcd-runspec-v1
    // document) and feed it back verbatim.
    std::string viaFeedback;
    {
        std::size_t key = viaEnv.find("\"effectiveConfig\"");
        ASSERT_NE(key, std::string::npos);
        std::size_t open = viaEnv.find('{', key);
        int depth = 1;
        std::size_t close = open + 1;
        while (close < viaEnv.size() && depth > 0) {
            if (viaEnv[close] == '{')
                ++depth;
            else if (viaEnv[close] == '}')
                --depth;
            ++close;
        }
        // Not "feedback.json": runOnce("feedback") writes its results
        // there, and the results writer must not clobber the config
        // it is still resolving.
        fs::path f = dir / "feedback-config.json";
        writeFile(f, viaEnv.substr(open, close - open));

        ConfigSandbox sandbox;
        sandbox.set("MCD_CONFIG", f.string());
        viaFeedback = runOnce("feedback");
    }
    EXPECT_EQ(stripProvenance(viaEnv), stripProvenance(viaFeedback))
        << "feeding a run's effectiveConfig back did not reproduce it";

    fs::remove_all(dir);
}

} // namespace
} // namespace mcd
