/**
 * @file
 * Tests for the primitive-event trace collection.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "isa/builder.hh"
#include "trace/trace.hh"

namespace mcd {
namespace {

Program
smallLoop()
{
    Builder b("t");
    std::uint64_t buf = b.dataBlock(64);
    b.li(4, static_cast<std::int64_t>(buf));
    b.li(1, 0);
    b.li(2, 300);
    Label loop = b.here();
    b.andi(5, 1, 63);
    b.slli(5, 5, 3);
    b.add(5, 4, 5);
    b.ld(6, 5, 0);
    b.add(6, 6, 1);
    b.st(6, 5, 0);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

TEST(Trace, DisabledCollectorRecordsNothing)
{
    SimConfig cfg;
    cfg.collectTrace = false;
    McdProcessor proc(cfg, smallLoop());
    proc.run();
    EXPECT_EQ(proc.trace().size(), 0u);
}

TEST(Trace, OneRecordPerCommittedInstruction)
{
    SimConfig cfg;
    cfg.collectTrace = true;
    McdProcessor proc(cfg, smallLoop());
    RunResult r = proc.run();
    EXPECT_EQ(proc.trace().size(), r.committed);
}

TEST(Trace, TimestampsAreOrderedWithinInstructions)
{
    SimConfig cfg;
    cfg.collectTrace = true;
    McdProcessor proc(cfg, smallLoop());
    proc.run();
    for (const InstTrace &t : proc.trace().trace()) {
        if (t.op == Opcode::HALT || t.op == Opcode::NOP)
            continue;
        EXPECT_LE(t.fetchTime, t.dispatchTime + 1);
        EXPECT_LT(t.dispatchTime, t.issueTime);
        EXPECT_LT(t.issueTime, t.execDone);
        if (t.isMem()) {
            EXPECT_LT(t.memIssue, t.memDone);
            EXPECT_LE(t.issueTime, t.memIssue);
        }
        EXPECT_LE(t.execDone, t.commitTime + 1);
    }
}

TEST(Trace, SequenceNumbersCommitInOrder)
{
    SimConfig cfg;
    cfg.collectTrace = true;
    McdProcessor proc(cfg, smallLoop());
    proc.run();
    const auto &tr = proc.trace().trace();
    for (std::size_t i = 1; i < tr.size(); ++i)
        EXPECT_EQ(tr[i].seq, tr[i - 1].seq + 1);
}

TEST(Trace, DependenciesPointBackward)
{
    SimConfig cfg;
    cfg.collectTrace = true;
    McdProcessor proc(cfg, smallLoop());
    proc.run();
    for (const InstTrace &t : proc.trace().trace()) {
        if (t.dep1) {
            EXPECT_LT(t.dep1, t.seq);
        }
        if (t.dep2) {
            EXPECT_LT(t.dep2, t.seq);
        }
    }
}

TEST(Trace, LoadsCarryDependences)
{
    SimConfig cfg;
    cfg.collectTrace = true;
    McdProcessor proc(cfg, smallLoop());
    proc.run();
    bool sawLoadWithBaseDep = false;
    bool sawStoreWithDataDep = false;
    for (const InstTrace &t : proc.trace().trace()) {
        if (t.isLoadOp() && t.dep1)
            sawLoadWithBaseDep = true;
        if (t.isMem() && !t.isLoadOp() && t.dep2)
            sawStoreWithDataDep = true;
    }
    EXPECT_TRUE(sawLoadWithBaseDep);
    EXPECT_TRUE(sawStoreWithDataDep);
}

TEST(Trace, ExecEventDomainMapping)
{
    InstTrace t;
    t.op = Opcode::LD;
    EXPECT_EQ(t.execEventDomain(), Domain::Integer);    // AGU
    t.op = Opcode::FADD;
    EXPECT_EQ(t.execEventDomain(), Domain::FloatingPoint);
    t.op = Opcode::ADD;
    EXPECT_EQ(t.execEventDomain(), Domain::Integer);
}

TEST(Trace, EventKindNames)
{
    EXPECT_STREQ(eventKindName(EventKind::Fetch), "fetch");
    EXPECT_STREQ(eventKindName(EventKind::AddrCalc), "addr-calc");
    EXPECT_STREQ(eventKindName(EventKind::MemAccess), "mem-access");
    EXPECT_STREQ(eventKindName(EventKind::Commit), "commit");
}

TEST(TraceCollector, EnableDisable)
{
    TraceCollector c;
    EXPECT_FALSE(c.isEnabled());
    c.record(InstTrace{});
    EXPECT_EQ(c.size(), 0u);
    c.enable();
    c.record(InstTrace{});
    EXPECT_EQ(c.size(), 1u);
    c.clear();
    EXPECT_EQ(c.size(), 0u);
}

} // namespace
} // namespace mcd
