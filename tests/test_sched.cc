/**
 * @file
 * Tests for the deterministic discrete-event scheduler driving the
 * run loop (core/sched.hh): total event ordering independent of
 * insertion order, re-arming via fire(), and the arm/defer hop
 * pattern the monitor actors use.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sched.hh"

namespace mcd {
namespace {

/** Records its firings into a shared log and replays a schedule. */
struct LogActor final : Actor
{
    std::string name;
    std::vector<std::string> *log = nullptr;
    std::vector<Tick> replies;  //!< consumed front-to-back by fire()

    LogActor() = default;
    LogActor(std::string n, std::vector<std::string> *l)
        : name(std::move(n)), log(l)
    {}

    Tick
    fire(Tick now) override
    {
        log->push_back(name + "@" + std::to_string(now));
        if (replies.empty())
            return never;
        Tick next = replies.front();
        replies.erase(replies.begin());
        return next;
    }
};

TEST(EventScheduler, PopsInTickOrder)
{
    EventScheduler sched;
    std::vector<std::string> log;
    LogActor a{"a", &log}, b{"b", &log}, c{"c", &log};

    sched.schedule(&b, 200, 0);
    sched.schedule(&c, 300, 0);
    sched.schedule(&a, 100, 0);

    while (sched.runOne()) {}
    EXPECT_EQ(log, (std::vector<std::string>{"a@100", "b@200", "c@300"}));
}

TEST(EventScheduler, TieBreaksOnPriorityThenSeq)
{
    // Same tick: priority decides; same priority: insertion order
    // decides — so the pop order is a total order and results cannot
    // depend on how the heap happened to be built.
    EventScheduler sched;
    std::vector<std::string> log;
    LogActor lo{"lo", &log}, hi{"hi", &log};
    LogActor s1{"s1", &log}, s2{"s2", &log};

    sched.schedule(&lo, 500, 4);
    sched.schedule(&hi, 500, -1);
    sched.schedule(&s1, 500, 2);
    sched.schedule(&s2, 500, 2);    // same (tick, priority): FIFO

    while (sched.runOne()) {}
    EXPECT_EQ(log, (std::vector<std::string>{
        "hi@500", "s1@500", "s2@500", "lo@500"}));
}

TEST(EventScheduler, InsertionOrderInvariance)
{
    // Any permutation of schedule() calls yields the same pop order
    // (distinct priorities make the order unique).
    struct Item { Tick t; int pri; const char *n; };
    std::vector<Item> items = {
        {100, 0, "e0"}, {100, 1, "m0"}, {100, 2, "e1"},
        {250, 0, "e2"}, {250, -1, "arm"},
    };
    std::vector<std::string> want;
    std::vector<std::vector<int>> perms = {
        {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 4, 0, 3, 1}};

    for (const auto &perm : perms) {
        EventScheduler sched;
        std::vector<std::string> log;
        std::vector<LogActor> actors(items.size());
        for (int i : perm) {
            actors[i].name = items[i].n;
            actors[i].log = &log;
            sched.schedule(&actors[i], items[i].t, items[i].pri);
        }
        while (sched.runOne()) {}
        if (want.empty())
            want = log;
        EXPECT_EQ(log, want);
    }
    EXPECT_EQ(want, (std::vector<std::string>{
        "e0@100", "m0@100", "e1@100", "arm@250", "e2@250"}));
}

TEST(EventScheduler, FireReturnReArmsAtSamePriority)
{
    EventScheduler sched;
    std::vector<std::string> log;
    LogActor a{"a", &log};
    a.replies = {200, 300};     // two re-arms, then done

    sched.schedule(&a, 100, 3);
    while (sched.runOne()) {}
    EXPECT_EQ(log, (std::vector<std::string>{"a@100", "a@200", "a@300"}));
    EXPECT_TRUE(sched.empty());
}

TEST(EventScheduler, NeverIsNoOp)
{
    EventScheduler sched;
    std::vector<std::string> log;
    LogActor a{"a", &log};
    sched.schedule(&a, Actor::never, 0);
    EXPECT_TRUE(sched.empty());
    EXPECT_FALSE(sched.runOne());
}

/** Arm/defer monitor: hops itself onto a later (tick, pri) slot. */
struct HopActor final : Actor
{
    EventScheduler *sched = nullptr;
    std::vector<std::string> *log = nullptr;
    Tick hopTick = 0;
    int hopPri = 0;
    bool deferred = false;

    Tick
    fire(Tick now) override
    {
        if (!deferred) {
            deferred = true;
            log->push_back("arm@" + std::to_string(now));
            sched->schedule(this, hopTick, hopPri);
            return never;
        }
        log->push_back("work@" + std::to_string(now));
        return never;
    }
};

TEST(EventScheduler, ScheduleFromFireIsSafe)
{
    // The monitor pattern: fire() re-enters schedule() while runOne()
    // is mid-flight; the freshly scheduled event must land in its
    // correct slot (after the same-tick edge, before later edges).
    EventScheduler sched;
    std::vector<std::string> log;
    LogActor edge1{"edge1", &log}, edge2{"edge2", &log};
    HopActor mon;
    mon.sched = &sched;
    mon.log = &log;
    mon.hopTick = 400;
    mon.hopPri = EventScheduler::afterEdgePriority(0);

    sched.schedule(&edge1, 400, EventScheduler::edgePriority(0));
    sched.schedule(&edge2, 400, EventScheduler::edgePriority(1));
    sched.schedule(&mon, 350, EventScheduler::armPriority);

    while (sched.runOne()) {}
    EXPECT_EQ(log, (std::vector<std::string>{
        "arm@350", "edge1@400", "work@400", "edge2@400"}));
}

TEST(EventScheduler, CurrentAndNextAccessors)
{
    EventScheduler sched;
    std::vector<std::string> log;
    LogActor a{"a", &log}, b{"b", &log};
    sched.schedule(&a, 100, 2);
    sched.schedule(&b, 100, 3);

    EXPECT_EQ(sched.nextTick(), 100u);
    EXPECT_EQ(sched.nextPriority(), 2);
    ASSERT_TRUE(sched.runOne());
    EXPECT_EQ(sched.currentTick(), 100u);
    EXPECT_EQ(sched.currentPriority(), 2);
    EXPECT_EQ(sched.nextPriority(), 3);
}

TEST(EventScheduler, PriorityBandHelpers)
{
    // Band layout: arm < edge(d) < afterEdge(d) < edge(d+1).
    EXPECT_LT(EventScheduler::armPriority, EventScheduler::edgePriority(0));
    for (int d = 0; d < 3; ++d) {
        EXPECT_LT(EventScheduler::edgePriority(d),
                  EventScheduler::afterEdgePriority(d));
        EXPECT_LT(EventScheduler::afterEdgePriority(d),
                  EventScheduler::edgePriority(d + 1));
    }
}

} // namespace
} // namespace mcd
