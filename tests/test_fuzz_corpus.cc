/**
 * @file
 * Regression corpus replay: every repro JSON committed under
 * tests/corpus/ must load, re-run, and reproduce exactly the
 * signature recorded when it was found (or complete clean for
 * "ok"-signature corpus entries). A mismatch means either a
 * simulator behavior change the corpus entry was guarding against,
 * or a broken serialization path — both are release blockers for
 * the soak harness's replay story.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/scenario.hh"
#include "fuzz/soak.hh"

#ifndef MCD_SOURCE_DIR
#error "test_fuzz_corpus requires MCD_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace mcd {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path>
corpusFiles()
{
    fs::path dir = fs::path(MCD_SOURCE_DIR) / "tests" / "corpus";
    std::vector<fs::path> files;
    for (const fs::directory_entry &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".json")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, CorpusIsNotEmpty)
{
    // An empty corpus would make the replay test below pass
    // vacuously forever.
    EXPECT_GE(corpusFiles().size(), 3u);
}

TEST(FuzzCorpus, EveryCommittedReproReplaysToItsRecordedSignature)
{
    for (const fs::path &file : corpusFiles()) {
        fuzz::ReplayResult r = fuzz::replayRepro(file.string());
        EXPECT_TRUE(r.loaded) << file;
        EXPECT_TRUE(r.matched)
            << file << ": recorded '" << r.recorded
            << "' but replay produced '"
            << fuzz::outcomeClassName(r.outcome.cls)
            << (r.outcome.signature.empty() ? "" : " ")
            << r.outcome.signature << "' (" << r.outcome.detail << ")";
    }
}

TEST(FuzzCorpus, CommittedCorpusUsesTheUnifiedReproSchema)
{
    // The corpus was migrated to mcd-repro-v2 (scenario config as an
    // embedded runspec document); new entries must not regress to the
    // legacy flat schema.
    for (const fs::path &file : corpusFiles()) {
        std::ifstream in(file);
        std::ostringstream ss;
        ss << in.rdbuf();
        EXPECT_NE(ss.str().find(fuzz::reproVersion), std::string::npos)
            << file << " is not a " << fuzz::reproVersion << " repro";
    }
}

TEST(FuzzCorpus, LegacyV1ReprosStillLoadAndConvert)
{
    // The pinned v1 fixture guards the legacy reader: pre-migration
    // repro files in the wild must keep loading, and writing a loaded
    // v1 repro back out produces an equivalent v2 document.
    fs::path fixture = fs::path(MCD_SOURCE_DIR) / "tests" / "fixtures" /
        "legacy-repro-v1.json";
    std::ifstream in(fixture);
    ASSERT_TRUE(in) << fixture;
    std::optional<fuzz::Repro> v1 = fuzz::readRepro(in);
    ASSERT_TRUE(v1.has_value());
    EXPECT_EQ(v1->signature, "invariant:dilation@dyn5");
    EXPECT_EQ(v1->scenario.jobs, 1);
    EXPECT_NE(v1->scenario.configSpec.find("model=Transmeta"),
              std::string::npos);

    std::ostringstream out;
    fuzz::writeRepro(out, v1->scenario, v1->signature);
    EXPECT_NE(out.str().find(fuzz::reproVersion), std::string::npos);
    std::istringstream back(out.str());
    std::optional<fuzz::Repro> v2 = fuzz::readRepro(back);
    ASSERT_TRUE(v2.has_value());
    EXPECT_EQ(v2->signature, v1->signature);
    EXPECT_EQ(v2->scenario.configSpec, v1->scenario.configSpec);
    EXPECT_EQ(v2->scenario.legsSpec, v1->scenario.legsSpec);
    EXPECT_EQ(v2->scenario.faultSpec, v1->scenario.faultSpec);
    EXPECT_EQ(v2->scenario.workload.spec(), v1->scenario.workload.spec());
    EXPECT_EQ(v2->scenario.plantedSpec, v1->scenario.plantedSpec);
    EXPECT_EQ(v2->scenario.jobs, v1->scenario.jobs);

    // And the legacy entry still replays to its recorded signature.
    fuzz::ReplayResult r = fuzz::replayRepro(fixture.string());
    EXPECT_TRUE(r.loaded);
    EXPECT_TRUE(r.matched)
        << "recorded '" << r.recorded << "' but replay produced '"
        << r.outcome.signature << "'";
}

} // namespace
} // namespace mcd
