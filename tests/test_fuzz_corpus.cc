/**
 * @file
 * Regression corpus replay: every repro JSON committed under
 * tests/corpus/ must load, re-run, and reproduce exactly the
 * signature recorded when it was found (or complete clean for
 * "ok"-signature corpus entries). A mismatch means either a
 * simulator behavior change the corpus entry was guarding against,
 * or a broken serialization path — both are release blockers for
 * the soak harness's replay story.
 */

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/soak.hh"

#ifndef MCD_SOURCE_DIR
#error "test_fuzz_corpus requires MCD_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace mcd {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path>
corpusFiles()
{
    fs::path dir = fs::path(MCD_SOURCE_DIR) / "tests" / "corpus";
    std::vector<fs::path> files;
    for (const fs::directory_entry &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".json")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, CorpusIsNotEmpty)
{
    // An empty corpus would make the replay test below pass
    // vacuously forever.
    EXPECT_GE(corpusFiles().size(), 3u);
}

TEST(FuzzCorpus, EveryCommittedReproReplaysToItsRecordedSignature)
{
    for (const fs::path &file : corpusFiles()) {
        fuzz::ReplayResult r = fuzz::replayRepro(file.string());
        EXPECT_TRUE(r.loaded) << file;
        EXPECT_TRUE(r.matched)
            << file << ": recorded '" << r.recorded
            << "' but replay produced '"
            << fuzz::outcomeClassName(r.outcome.cls)
            << (r.outcome.signature.empty() ? "" : " ")
            << r.outcome.signature << "' (" << r.outcome.detail << ")";
    }
}

} // namespace
} // namespace mcd
