/**
 * @file
 * Tests for the host-side run profiler (src/obs/host_prof.*): scoped
 * phases, leg and pool accounting, the aggregated host.* stats view,
 * and the standalone Chrome-trace profile.
 */

#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/host_prof.hh"
#include "obs/stats_registry.hh"

namespace mcd {
namespace {

using obs::HostProfiler;
using obs::StatsRegistry;

/** Re-arm the singleton and guarantee it is disarmed on exit. */
struct Armed
{
    Armed() { HostProfiler::instance().reset(true); }
    ~Armed() { HostProfiler::instance().reset(false); }
};

TEST(HostProfiler, DisabledScopesRecordNothing)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.reset(false);
    EXPECT_FALSE(prof.enabled());
    { HostProfiler::Scope s = prof.phase("simulate", "adpcm/dyn5"); }
    prof.noteLeg("adpcm/dyn5", 12.0, 1000);

    StatsRegistry reg;
    prof.publish(reg);
    EXPECT_EQ(reg.find("host.phase.simulate.count"), nullptr);
    EXPECT_EQ(reg.find("host.leg.adpcm/dyn5.wall_ms"), nullptr);
}

TEST(HostProfiler, PublishAggregatesPhasesLegsAndPool)
{
    Armed armed;
    HostProfiler &prof = HostProfiler::instance();
    {
        HostProfiler::Scope a = prof.phase("simulate", "adpcm/baseline");
        HostProfiler::Scope b = prof.phase("simulate", "adpcm/dyn5");
        HostProfiler::Scope c = prof.phase("validate");
    }
    prof.noteLeg("adpcm/baseline", 10.5, 2048);
    prof.noteLeg("adpcm/dyn5", 20.25, 4096);
    // A retried leg reports once, with the latest numbers.
    prof.noteLeg("adpcm/dyn5", 21.0, 5000);
    // 2 workers, 4 tasks, 1.5 s busy over a 1 s matrix: utilization
    // 0.75 of the 2-worker capacity.
    prof.notePool(2, 4, 1'500'000'000ull, 1'000'000'000ull);

    StatsRegistry reg;
    prof.publish(reg);

    const auto *count = reg.find("host.phase.simulate.count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(std::get<obs::Counter>(count->stat).value(), 2u);
    EXPECT_NE(reg.find("host.phase.simulate.total_ms"), nullptr);
    EXPECT_NE(reg.find("host.phase.simulate.max_ms"), nullptr);
    EXPECT_NE(reg.find("host.phase.validate.count"), nullptr);

    const auto *wall = reg.find("host.leg.adpcm/dyn5.wall_ms");
    ASSERT_NE(wall, nullptr);
    EXPECT_DOUBLE_EQ(std::get<obs::Gauge>(wall->stat).value(), 21.0);
    const auto *rss = reg.find("host.leg.adpcm/dyn5.peak_rss_kb");
    ASSERT_NE(rss, nullptr);
    EXPECT_DOUBLE_EQ(std::get<obs::Gauge>(rss->stat).value(), 5000.0);

    const auto *workers = reg.find("host.pool.workers");
    ASSERT_NE(workers, nullptr);
    EXPECT_DOUBLE_EQ(std::get<obs::Gauge>(workers->stat).value(), 2.0);
    const auto *util = reg.find("host.pool.utilization");
    ASSERT_NE(util, nullptr);
    EXPECT_NEAR(std::get<obs::Gauge>(util->stat).value(), 0.75, 1e-12);

    // The key set is deterministic: publishing twice into fresh
    // registries yields the same names in the same order.
    StatsRegistry reg2;
    prof.publish(reg2);
    ASSERT_EQ(reg.size(), reg2.size());
    for (std::size_t i = 0; i < reg.size(); ++i)
        EXPECT_EQ(reg.entries()[i].name, reg2.entries()[i].name);
}

TEST(HostProfiler, WriteProfileEmitsChromeTraceWithHostSummary)
{
    Armed armed;
    HostProfiler &prof = HostProfiler::instance();
    {
        HostProfiler::Scope s = prof.phase("simulate", "mst/online");
    }
    std::thread t([&] {
        HostProfiler::Scope s = prof.phase("analyze", "mst/dyn1");
    });
    t.join();
    prof.noteLeg("mst/online", 5.0, 100);
    prof.notePool(4, 8, 2'000'000'000ull, 1'000'000'000ull);

    std::ostringstream os;
    prof.writeProfile(os);
    std::string text = os.str();
    for (const char *key :
         {"\"traceEvents\"", "\"process_name\"", "\"host\"",
          "\"simulate\"", "\"analyze\"", "\"mst/online\"",
          "\"phases\"", "\"legs\"", "\"pool\"", "\"peakRssKb\"",
          "\"ph\": \"X\""}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }
    // Two distinct host threads: two thread-name lanes.
    std::size_t lanes = 0;
    for (std::size_t p = text.find("\"thread_name\"");
         p != std::string::npos;
         p = text.find("\"thread_name\"", p + 1)) {
        ++lanes;
    }
    EXPECT_EQ(lanes, 2u);
}

TEST(HostProfiler, ResetDropsRecordedData)
{
    Armed armed;
    HostProfiler &prof = HostProfiler::instance();
    { HostProfiler::Scope s = prof.phase("render", "fig5"); }
    prof.reset(true);
    StatsRegistry reg;
    prof.publish(reg);
    EXPECT_EQ(reg.find("host.phase.render.count"), nullptr);
}

TEST(HostProfiler, PeakRssIsNonZeroOnSupportedPlatforms)
{
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_GT(HostProfiler::peakRssKb(), 0u);
#else
    GTEST_SKIP() << "no getrusage on this platform";
#endif
}

} // namespace
} // namespace mcd
