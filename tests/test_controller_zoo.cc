/**
 * @file
 * Tests for the controller zoo and the leg-parametric matrix: the
 * ControllerRegistry (built-ins, actionable unknown-name rejection,
 * param-spec parsing), the semantics of the PID / governor-family /
 * table policies on synthetic occupancy sequences, the tournament leg
 * set, leaderboard ranking and JSON emission, cache-key separation of
 * leg sets, and jobs=1-vs-N determinism of custom controller legs.
 */

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "control/governor.hh"
#include "control/pid.hh"
#include "control/registry.hh"
#include "control/table_policy.hh"
#include "core/experiment.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

/** Observation with @p occ mean occupancy on @p d's queue. */
DomainStats
statsFor(Domain d, double occ, Hertz freq)
{
    DomainStats s;
    s.domain = d;
    s.windowCycles = 1000;
    s.queueCapacity = 64;
    s.occupancySum =
        static_cast<std::uint64_t>(occ * 1000.0 * 64.0 + 0.5);
    s.queueLength = static_cast<std::size_t>(occ * 64.0);
    s.frequency = freq;
    return s;
}

TEST(ControllerRegistry, BuiltInsRegisteredInOrder)
{
    const std::vector<std::string> want{
        "online-queue",          "pid",
        "governor-performance",  "governor-powersave",
        "governor-ondemand",     "governor-conservative",
        "table",
    };
    ControllerRegistry &reg = ControllerRegistry::instance();
    EXPECT_EQ(reg.names(), want);
    for (const std::string &n : want) {
        EXPECT_TRUE(reg.contains(n)) << n;
        EXPECT_FALSE(reg.describe(n).empty()) << n;
    }
    EXPECT_FALSE(reg.contains("bogus"));
    EXPECT_TRUE(reg.describe("bogus").empty());

    // A matrix-ready controller comes out of every factory.
    ControllerContext ctx;
    for (const std::string &n : want) {
        auto c = reg.make(n, ctx);
        ASSERT_TRUE(c) << n;
        EXPECT_GT(c->samplePeriod(), 0u) << n;
    }
}

TEST(ControllerRegistry, UnknownNameEnumeratesRegistered)
{
    ControllerContext ctx;
    try {
        ControllerRegistry::instance().make("bogus", ctx);
        FAIL() << "make() accepted an unknown controller";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown controller 'bogus'"),
                  std::string::npos) << msg;
        // Actionable: the message lists every registered name.
        for (const char *n : {"online-queue", "pid",
                              "governor-conservative", "table"})
            EXPECT_NE(msg.find(n), std::string::npos) << msg;
    }
}

TEST(ControllerRegistry, ParamSpecGrammar)
{
    auto kv = parseControllerParams("setpoint=0.5,kp=32", "test");
    ASSERT_EQ(kv.size(), 2u);
    EXPECT_EQ(kv[0].first, "setpoint");
    EXPECT_DOUBLE_EQ(kv[0].second, 0.5);
    EXPECT_EQ(kv[1].first, "kp");
    EXPECT_DOUBLE_EQ(kv[1].second, 32.0);
    EXPECT_TRUE(parseControllerParams("", "test").empty());

    EXPECT_THROW(parseControllerParams("setpoint", "test"), FatalError);
    EXPECT_THROW(parseControllerParams("=1", "test"), FatalError);
    EXPECT_THROW(parseControllerParams("setpoint=", "test"), FatalError);
    EXPECT_THROW(parseControllerParams("setpoint=abc", "test"),
                 FatalError);
}

TEST(ControllerRegistry, FactoriesApplyAndRejectParams)
{
    ControllerContext ctx;

    auto pid = ControllerRegistry::instance().make(
        "pid", ctx, "setpoint=0.5,kp=32,interval-us=5");
    auto *p = dynamic_cast<PidController *>(pid.get());
    ASSERT_NE(p, nullptr);
    EXPECT_DOUBLE_EQ(p->params().setpoint, 0.5);
    EXPECT_DOUBLE_EQ(p->params().kp, 32.0);
    EXPECT_EQ(p->samplePeriod(), fromMicroseconds(5.0));
    EXPECT_FALSE(p->params().scaleFrontEnd);

    auto gov = ControllerRegistry::instance().make(
        "governor-ondemand", ctx, "up-threshold=0.75,scale-fe=1");
    auto *g = dynamic_cast<GovernorController *>(gov.get());
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->policy(), GovernorPolicy::Ondemand);
    EXPECT_DOUBLE_EQ(g->params().upThreshold, 0.75);
    EXPECT_TRUE(g->params().scaleFrontEnd);

    // Unknown keys are fatal and the message enumerates the valid set.
    try {
        ControllerRegistry::instance().make("pid", ctx, "gain=3");
        FAIL() << "factory accepted an unknown param";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown param 'gain'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("setpoint"), std::string::npos) << msg;
        EXPECT_NE(msg.find("interval-us"), std::string::npos) << msg;
    }
    EXPECT_THROW(ControllerRegistry::instance().make(
                     "table", ctx, "setpoint=0.5"),
                 FatalError);
}

TEST(PidController, RaisesOnBacklogLowersOnSlack)
{
    DvfsTable table;
    int top = table.numPoints() - 1;
    PidController c{PidParams{}, table};
    EXPECT_STREQ(c.name(), "pid");
    EXPECT_EQ(c.pointIndex(Domain::Integer), -1);

    // First observation latches the starting point; no request.
    c.observe(statsFor(Domain::Integer, 0.45, 1e9), 0);
    EXPECT_EQ(c.pointIndex(Domain::Integer), top);
    EXPECT_TRUE(c.requests().empty());

    // Sustained slack drives the point down...
    for (int i = 0; i < 6; ++i)
        c.observe(statsFor(Domain::Integer, 0.05, 1e9), 0);
    int low = c.pointIndex(Domain::Integer);
    EXPECT_LT(low, top);
    EXPECT_FALSE(c.requests().empty());
    c.clearRequests();

    // ...and a backlog drives it back up.
    for (int i = 0; i < 6; ++i)
        c.observe(statsFor(Domain::Integer, 0.95, 1e9), 0);
    EXPECT_GT(c.pointIndex(Domain::Integer), low);

    // The front end stays pinned (the paper's choice).
    c.observe(statsFor(Domain::FrontEnd, 0.0, 1e9), 0);
    c.observe(statsFor(Domain::FrontEnd, 0.0, 1e9), 0);
    EXPECT_EQ(c.pointIndex(Domain::FrontEnd), -1);
}

TEST(GovernorController, StaticPoliciesPinTheEndpoints)
{
    DvfsTable table;
    GovernorController perf{GovernorPolicy::Performance};
    EXPECT_STREQ(perf.name(), "governor-performance");
    perf.observe(statsFor(Domain::Integer, 0.5, 500e6), 0);
    ASSERT_EQ(perf.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(perf.requests()[0].frequency,
                     table.fastest().frequency);

    GovernorController save{GovernorPolicy::Powersave};
    EXPECT_STREQ(save.name(), "governor-powersave");
    save.observe(statsFor(Domain::LoadStore, 0.5, 1e9), 0);
    ASSERT_EQ(save.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(save.requests()[0].frequency,
                     table.slowest().frequency);
}

TEST(GovernorController, OndemandJumpsAndTracksLoad)
{
    DvfsTable table;
    int top = table.numPoints() - 1;
    GovernorController c{GovernorPolicy::Ondemand};

    c.observe(statsFor(Domain::Integer, 0.5, 1e9), 0);  // latch
    EXPECT_EQ(c.pointIndex(Domain::Integer), top);

    // Below the up-threshold: track proportionally to load.
    c.observe(statsFor(Domain::Integer, 0.3, 1e9), 0);
    int tracked = c.pointIndex(Domain::Integer);
    EXPECT_LT(tracked, top);
    EXPECT_GT(tracked, 0);

    // At/above the up-threshold: jump straight to full speed.
    c.observe(statsFor(Domain::Integer, 0.7, 1e9), 0);
    EXPECT_EQ(c.pointIndex(Domain::Integer), top);
}

TEST(GovernorController, ConservativeStepsAndRollsBack)
{
    DvfsTable table;
    int top = table.numPoints() - 1;
    GovernorParams prm;
    GovernorController c{GovernorPolicy::Conservative, prm};

    c.observe(statsFor(Domain::Integer, 0.5, 1e9), 0);  // latch
    EXPECT_FALSE(c.rollbackArmed(Domain::Integer));

    // A quiet interval steps down and arms the rollback point.
    c.observe(statsFor(Domain::Integer, 0.1, 1e9), 0);
    EXPECT_EQ(c.pointIndex(Domain::Integer), top - prm.stepPoints);
    EXPECT_TRUE(c.rollbackArmed(Domain::Integer));

    // Mid-band occupancy holds (the rollback stays armed).
    c.observe(statsFor(Domain::Integer, 0.4, 1e9), 0);
    EXPECT_EQ(c.pointIndex(Domain::Integer), top - prm.stepPoints);
    EXPECT_TRUE(c.rollbackArmed(Domain::Integer));

    // The queue backing up past the up-threshold fires the revert:
    // one jump back to the saved point, not a step-by-step climb.
    c.observe(statsFor(Domain::Integer, 0.9, 1e9), 0);
    EXPECT_EQ(c.pointIndex(Domain::Integer), top);
    EXPECT_FALSE(c.rollbackArmed(Domain::Integer));
}

TEST(TablePolicyController, TrainedTableDecaysAndSaturates)
{
    DvfsTable table;
    int top = table.numPoints() - 1;
    TablePolicyController c;
    EXPECT_STREQ(c.name(), "table");

    c.observe(statsFor(Domain::Integer, 0.0, 1e9), 0);  // latch
    EXPECT_EQ(c.pointIndex(Domain::Integer), top);

    // Idle queue: the trained table decays hard.
    c.observe(statsFor(Domain::Integer, 0.0, 1e9), 0);
    int decayed = c.pointIndex(Domain::Integer);
    EXPECT_LT(decayed, top);

    // Saturated queue: the top bucket slams to full speed.
    c.observe(statsFor(Domain::Integer, 0.95, 1e9), 0);
    EXPECT_EQ(c.pointIndex(Domain::Integer), top);
}

TEST(LegSpecs, TournamentSetCoversRegistry)
{
    ExperimentConfig ec;
    std::vector<LegSpec> legs = tournamentLegs(ec);
    std::vector<std::string> names =
        ControllerRegistry::instance().names();
    ASSERT_EQ(legs.size(), names.size() + 1);
    EXPECT_GE(legs.size(), 6u);     // >= 5 controllers + the oracle

    // The dyn5 schedule-replay oracle anchors the ranking...
    EXPECT_EQ(legs[0].name, "dyn5");
    EXPECT_EQ(legs[0].kind, LegSpec::Kind::ScheduleReplay);
    EXPECT_DOUBLE_EQ(legs[0].dilation, ec.dilationHigh);

    // ...and every registered controller fields one leg.
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(legs[i + 1].kind, LegSpec::Kind::Controller);
        EXPECT_EQ(legs[i + 1].controller, names[i]);
    }
}

TEST(LegSpecs, KeyTokensDistinguishLegs)
{
    LegSpec pid = LegSpec::controllerLeg("pid", "pid");
    LegSpec tuned = LegSpec::controllerLeg("pid", "pid", "kp=32");
    LegSpec dyn = LegSpec::scheduleReplay("dyn5", 0.05);
    EXPECT_NE(pid.keyToken(), tuned.keyToken());
    EXPECT_NE(pid.keyToken(), dyn.keyToken());
    EXPECT_NE(LegSpec::scheduleReplay("dyn5", 0.05).keyToken(),
              LegSpec::scheduleReplay("dyn5", 0.01).keyToken());
}

TEST(Matrix, CacheKeySeparatesLegSets)
{
    ExperimentConfig base;
    base.cacheDir = "/tmp/mcd-zoo-keys";
    ExperimentRunner a(base);

    ExperimentConfig tuned = base;
    tuned.legs = defaultLegs(base);
    tuned.legs[3].params = "attack-threshold=0.8";
    ExperimentRunner b(tuned);

    ExperimentConfig tourney = base;
    tourney.legs = tournamentLegs(base);
    ExperimentRunner c(tourney);

    // Same benchmark, three distinct cache files: leg names, params,
    // and the leg-set composition are all folded into the key.
    EXPECT_NE(a.cachePath("adpcm"), b.cachePath("adpcm"));
    EXPECT_NE(a.cachePath("adpcm"), c.cachePath("adpcm"));
    EXPECT_NE(b.cachePath("adpcm"), c.cachePath("adpcm"));

    // An explicit default leg set keys identically to the implicit
    // one, so the refactor did not orphan pre-existing cache entries
    // beyond the format bump.
    ExperimentConfig expl = base;
    expl.legs = defaultLegs(base);
    EXPECT_EQ(a.cachePath("adpcm"),
              ExperimentRunner(expl).cachePath("adpcm"));
}

TEST(Matrix, ValidateRejectsBadLegSets)
{
    ExperimentConfig ec;
    ec.legs = defaultLegs(ec);
    ec.legs.push_back(LegSpec::controllerLeg("zzz", "bogus"));
    EXPECT_THROW(ec.validate(), FatalError);        // unknown controller

    ec.legs = defaultLegs(ec);
    ec.legs.push_back(LegSpec::controllerLeg("dyn5", "pid"));
    EXPECT_THROW(ec.validate(), FatalError);        // duplicate name

    ec.legs = defaultLegs(ec);
    ec.legs.push_back(LegSpec::controllerLeg("baseline", "pid"));
    EXPECT_THROW(ec.validate(), FatalError);        // reserved name

    ec.legs = {LegSpec::globalSearch("global", "nope")};
    EXPECT_THROW(ec.validate(), FatalError);        // dangling reference

    ec.legs = {LegSpec::controllerLeg("pid", "pid", "gain=1")};
    EXPECT_THROW(ec.validate(), FatalError);        // bad param spec
}

TEST(Matrix, CustomControllerLegsDeterministicAcrossJobs)
{
    ExperimentConfig ec;    // empty cacheDir: caching disabled
    ec.legs = {
        LegSpec::controllerLeg("pid", "pid"),
        LegSpec::controllerLeg("ondemand", "governor-ondemand"),
        LegSpec::controllerLeg("table", "table"),
    };
    const std::vector<std::string> names{"adpcm"};

    auto serial = runMatrix(ec, names, 1);
    auto par = runMatrix(ec, names, 8);
    ASSERT_EQ(serial.size(), 1u);
    ASSERT_EQ(par.size(), 1u);
    ASSERT_EQ(serial[0].legs.size(), 3u);
    ASSERT_EQ(par[0].legs.size(), 3u);
    for (std::size_t l = 0; l < serial[0].legs.size(); ++l) {
        SCOPED_TRACE(serial[0].legs[l].spec.name);
        const RunResult &a = serial[0].legs[l].run;
        const RunResult &b = par[0].legs[l].run;
        ASSERT_FALSE(a.failed());
        EXPECT_EQ(a.execTime, b.execTime);
        EXPECT_EQ(a.committed, b.committed);
        EXPECT_EQ(a.totalEnergy, b.totalEnergy);
        EXPECT_EQ(a.energyDelay, b.energyDelay);
        // The controllers actually ran: every leg differs from the
        // all-domains-at-1-GHz MCD baseline.
        EXPECT_NE(a.totalEnergy, serial[0].mcdBaseline.totalEnergy);
    }
}

TEST(Matrix, ControllersEnvFiltersLegSet)
{
    ::setenv("MCD_CONTROLLERS", "dyn5,online", 1);
    ExperimentConfig ec;    // empty legs: resolved at runMatrix() time
    auto rows = runMatrix(ec, {"adpcm"}, 1);
    ::unsetenv("MCD_CONTROLLERS");
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].legs.size(), 2u);
    EXPECT_EQ(rows[0].legs[0].spec.name, "dyn5");
    EXPECT_EQ(rows[0].legs[1].spec.name, "online");
    EXPECT_EQ(rows[0].findLeg("dyn1"), nullptr);

    // Unknown names are fatal and list the available legs.
    ::setenv("MCD_CONTROLLERS", "nope", 1);
    try {
        runMatrix(ec, {"adpcm"}, 1);
        ::unsetenv("MCD_CONTROLLERS");
        FAIL() << "unknown MCD_CONTROLLERS name was accepted";
    } catch (const FatalError &e) {
        ::unsetenv("MCD_CONTROLLERS");
        std::string msg = e.what();
        EXPECT_NE(msg.find("nope"), std::string::npos) << msg;
        EXPECT_NE(msg.find("dyn5"), std::string::npos) << msg;
    }

    // A global-search leg cannot survive without its reference.
    ::setenv("MCD_CONTROLLERS", "global", 1);
    EXPECT_THROW(runMatrix(ec, {"adpcm"}, 1), FatalError);
    ::unsetenv("MCD_CONTROLLERS");
}

/** Synthetic row: baseline EDP 4.0; legs at the given EDPs. */
BenchmarkResults
syntheticRow(const std::string &bench,
             const std::vector<std::pair<std::string, double>> &legs)
{
    BenchmarkResults r;
    r.name = bench;
    r.baseline.execTime = 2000;
    r.baseline.totalEnergy = 2.0;
    r.baseline.energyDelay = 4.0;
    r.mcdBaseline = r.baseline;
    for (const auto &[name, edp] : legs) {
        ControllerLeg l;
        l.spec = LegSpec::controllerLeg(name, "pid");
        l.run.execTime = 2000;
        l.run.totalEnergy = edp / 2.0;
        l.run.energyDelay = edp;
        r.legs.push_back(l);
    }
    return r;
}

TEST(Leaderboard, RanksByMeanEdpImprovementDescending)
{
    // "slow" wins on average; "fast" and "flat" tie on EDP and are
    // broken by name (alphabetical).
    std::vector<BenchmarkResults> rows{
        syntheticRow("a", {{"slow", 2.0}, {"fast", 3.0}, {"flat", 3.0}}),
        syntheticRow("b", {{"slow", 2.4}, {"fast", 3.6}, {"flat", 3.6}}),
    };
    auto board = computeLeaderboard(rows);
    ASSERT_EQ(board.size(), 3u);
    EXPECT_EQ(board[0].spec.name, "slow");
    EXPECT_EQ(board[1].spec.name, "fast");
    EXPECT_EQ(board[2].spec.name, "flat");
    EXPECT_NEAR(board[0].meanEdpImprovement, 0.45, 1e-9);
    EXPECT_NEAR(board[1].meanEdpImprovement, 0.175, 1e-9);
    EXPECT_EQ(board[0].completed, 2u);
    EXPECT_EQ(board[0].failed, 0u);

    // A failed leg drops out of that benchmark's mean but is counted.
    rows[1].legs[0].run.error =
        RunError{"b/slow", "injected", "synthetic", 1};
    board = computeLeaderboard(rows);
    ASSERT_EQ(board.size(), 3u);
    const LeaderboardRow *slow = nullptr;
    for (const LeaderboardRow &row : board)
        if (row.spec.name == "slow")
            slow = &row;
    ASSERT_NE(slow, nullptr);
    EXPECT_EQ(slow->completed, 1u);
    EXPECT_EQ(slow->failed, 1u);
    EXPECT_NEAR(slow->meanEdpImprovement, 0.5, 1e-9);
}

TEST(Leaderboard, JsonIsWellFormedAndRanked)
{
    ExperimentConfig ec;
    std::vector<BenchmarkResults> rows{
        syntheticRow("a", {{"slow", 2.0}, {"fast", 3.0}}),
    };
    std::ostringstream os;
    writeLeaderboardJson(os, ec, rows);
    std::string json = os.str();

    for (const char *key :
         {"\"tournament\"", "\"benchmarks\"", "\"legs\"", "\"model\"",
          "\"leaderboard\"", "\"rank\": 1", "\"rank\": 2",
          "\"name\": \"slow\"", "\"meanEdpImprovement\"",
          "\"meanEnergySavings\"", "\"meanPerfDegradation\"",
          "\"benchmarksCompleted\"", "\"benchmarksFailed\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;

    // Rank 1 is the winner, listed before rank 2.
    EXPECT_LT(json.find("\"name\": \"slow\""),
              json.find("\"name\": \"fast\""));

    // Balanced braces/brackets, no trailing-comma style errors.
    long braces = 0, brackets = 0;
    for (char ch : json) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(json.find(",\n}"), std::string::npos);
    EXPECT_EQ(json.find(",\n  }"), std::string::npos);
}

} // namespace
} // namespace mcd
