/**
 * @file
 * Tests for the activity-based power model.
 */

#include <gtest/gtest.h>

#include "clock/clock_domain.hh"
#include "power/power_model.hh"

namespace mcd {
namespace {

struct Rig
{
    ClockDomain fe{Domain::FrontEnd, 1e9, 1, 0.0, false};
    ClockDomain intc{Domain::Integer, 1e9, 2, 0.0, false};
    ClockDomain fp{Domain::FloatingPoint, 1e9, 3, 0.0, false};
    ClockDomain ls{Domain::LoadStore, 1e9, 4, 0.0, false};
    EnergyParams params;

    PowerModel
    make()
    {
        return PowerModel(params, {&fe, &intc, &fp, &ls});
    }
};

TEST(Power, UnitDomainsPartitionTheChip)
{
    int perDomain[numDomains] = {};
    for (int i = 0; i < numUnits; ++i)
        ++perDomain[domainIndex(unitDomain(static_cast<Unit>(i)))];
    EXPECT_EQ(perDomain[0], 5);     // front end
    EXPECT_EQ(perDomain[1], 6);     // integer
    EXPECT_EQ(perDomain[2], 6);     // FP
    EXPECT_EQ(perDomain[3], 3);     // load/store
}

TEST(Power, AccessChargesTableEnergyAtNominalVoltage)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.access(Unit::IntAlu);
    double e = rig.params.accessEnergy[static_cast<int>(Unit::IntAlu)];
    EXPECT_DOUBLE_EQ(pm.unitEnergyOf(Unit::IntAlu), e);
    EXPECT_DOUBLE_EQ(pm.domainEnergy(Domain::Integer), e);
    EXPECT_EQ(pm.unitAccesses(Unit::IntAlu), 1u);
}

TEST(Power, VoltageScalingIsExactlyQuadratic)
{
    Rig rig;
    rig.intc.setVoltage(0.6);   // half of nominal 1.2
    PowerModel pm = rig.make();
    pm.access(Unit::IntAlu, 4);
    double e = rig.params.accessEnergy[static_cast<int>(Unit::IntAlu)];
    EXPECT_DOUBLE_EQ(pm.domainEnergy(Domain::Integer), 4 * e * 0.25);
}

TEST(Power, DomainEnergiesSumToTotal)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.access(Unit::Icache);
    pm.access(Unit::FpAlu, 3);
    pm.access(Unit::Dcache);
    pm.domainCycle(Domain::FrontEnd);
    pm.domainCycle(Domain::Integer);
    double sum = 0.0;
    for (int d = 0; d < numDomains; ++d)
        sum += pm.domainEnergy(static_cast<Domain>(d));
    EXPECT_DOUBLE_EQ(pm.totalEnergy(), sum);
}

TEST(Power, ActiveCycleCostsFullClockTree)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.access(Unit::IntAlu);
    double before = pm.totalEnergy();
    pm.domainCycle(Domain::Integer);
    double clock = rig.params.clockTreeEnergy[1];
    EXPECT_DOUBLE_EQ(pm.totalEnergy() - before, clock);
}

TEST(Power, IdleCycleIsGated)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.domainCycle(Domain::Integer);    // no accesses: gated
    double clock = rig.params.clockTreeEnergy[1];
    double expect = clock * rig.params.gatedClockFraction +
        rig.params.idleResidual[1];
    EXPECT_DOUBLE_EQ(pm.totalEnergy(), expect);
}

TEST(Power, StoppedCycleCostsNothing)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.domainCycle(Domain::Integer, true);  // PLL re-locking
    EXPECT_DOUBLE_EQ(pm.totalEnergy(), 0.0);
}

TEST(Power, ActivityFlagResetsEachCycle)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.access(Unit::IntAlu);
    pm.domainCycle(Domain::Integer);            // active
    double active = pm.totalEnergy();
    pm.domainCycle(Domain::Integer);            // now idle
    double idleDelta = pm.totalEnergy() - active;
    double gated = rig.params.clockTreeEnergy[1] *
        rig.params.gatedClockFraction + rig.params.idleResidual[1];
    EXPECT_DOUBLE_EQ(idleDelta, gated);
}

TEST(Power, AccessInOneDomainDoesNotWakeAnother)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.access(Unit::IntAlu);
    pm.domainCycle(Domain::FloatingPoint);  // FP idle
    double gated = rig.params.clockTreeEnergy[2] *
        rig.params.gatedClockFraction + rig.params.idleResidual[2];
    EXPECT_DOUBLE_EQ(pm.domainEnergy(Domain::FloatingPoint), gated);
}

TEST(Power, ResetZeroesEverything)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.access(Unit::L2, 10);
    pm.domainCycle(Domain::LoadStore);
    pm.reset();
    EXPECT_DOUBLE_EQ(pm.totalEnergy(), 0.0);
    EXPECT_EQ(pm.unitAccesses(Unit::L2), 0u);
}

TEST(Power, BreakdownMentionsEveryUnit)
{
    Rig rig;
    PowerModel pm = rig.make();
    pm.access(Unit::Icache);
    std::string s = pm.breakdown();
    for (int i = 0; i < numUnits; ++i)
        EXPECT_NE(s.find(unitName(static_cast<Unit>(i))),
                  std::string::npos);
    EXPECT_NE(s.find("domain total"), std::string::npos);
}

class PowerVoltageSweep : public ::testing::TestWithParam<double>
{};

TEST_P(PowerVoltageSweep, QuadraticAcrossRange)
{
    Rig rig;
    double v = GetParam();
    rig.ls.setVoltage(v);
    PowerModel pm = rig.make();
    pm.access(Unit::Dcache);
    double e = rig.params.accessEnergy[static_cast<int>(Unit::Dcache)];
    double ratio = v / rig.params.nominalVoltage;
    EXPECT_NEAR(pm.domainEnergy(Domain::LoadStore), e * ratio * ratio,
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Voltages, PowerVoltageSweep,
                         ::testing::Values(0.65, 0.75, 0.85, 0.95, 1.05,
                                           1.2));

} // namespace
} // namespace mcd
