/**
 * @file
 * Tests for the telemetry invariant engine (src/obs/invariants.*):
 * the spec grammar, each metric's detection logic driven directly
 * through the hooks, clean-run silence on real simulations, and the
 * fault-injected violation path through the experiment matrix
 * (deterministic across job counts).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/schedule.hh"
#include "clock/operating_points.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "core/processor.hh"
#include "fault/fault_plan.hh"
#include "obs/invariants.hh"
#include "obs/stats_registry.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

using obs::InvariantEngine;
using obs::InvariantMetric;
using obs::InvariantRule;
using obs::InvariantViolation;
using obs::StatsRegistry;
using obs::TimeSample;

TEST(InvariantSpec, DefaultAliasesSpliceTheBuiltinSet)
{
    std::vector<InvariantRule> def = InvariantEngine::defaultRules();
    ASSERT_FALSE(def.empty());
    for (const char *alias : {"default", "1", "on"}) {
        std::vector<InvariantRule> got = InvariantEngine::parseSpec(alias);
        ASSERT_EQ(got.size(), def.size()) << alias;
        for (std::size_t i = 0; i < def.size(); ++i)
            EXPECT_EQ(got[i].text, def[i].text) << alias;
    }
    // The built-in set covers every metric.
    bool seen[6] = {};
    for (const InvariantRule &r : def)
        seen[static_cast<int>(r.metric)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(InvariantSpec, RulesCompileToCanonicalText)
{
    std::vector<InvariantRule> rules = InvariantEngine::parseSpec(
        " dilation <= 0.12 ; queue_fill<=capacity ;"
        "voltage_leads_freq == never ");
    ASSERT_EQ(rules.size(), 3u);
    EXPECT_EQ(rules[0].metric, InvariantMetric::Dilation);
    EXPECT_DOUBLE_EQ(rules[0].bound, 0.12);
    EXPECT_EQ(rules[0].text, "dilation<=0.12");
    EXPECT_EQ(rules[1].metric, InvariantMetric::QueueFill);
    EXPECT_DOUBLE_EQ(rules[1].bound, 1.0);  // capacity == full
    EXPECT_EQ(rules[2].text, "voltage_leads_freq==never");
}

TEST(InvariantSpec, MalformedSpecsAreFatal)
{
    for (const char *bad : {
             "nope<=1",                  // unknown metric
             "dilation==never",          // wrong operator for metric
             "voltage_leads_freq<=0.5",  // wrong operator for metric
             "voltage_leads_freq==always", // never-metrics take 'never'
             "freq_in_table==never",     // always-metric takes 'always'
             "dilation<=",               // missing bound
             "dilation<=banana",         // non-numeric bound
             "dilation<=-0.5",           // negative bound
             "queue_fill",               // no operator at all
             "@/no/such/spec/file",      // unreadable file
         }) {
        EXPECT_THROW(InvariantEngine::parseSpec(bad), FatalError) << bad;
    }
}

TEST(InvariantSpec, FileSpecsReadRulesPerLine)
{
    std::string path = ::testing::TempDir() + "invariants_spec.txt";
    {
        std::ofstream os(path);
        os << "# paper bounds, tightened\n"
           << "dilation<=0.25\n"
           << "\n"
           << "relock_overlap==never; freq_in_table==always\n";
    }
    std::vector<InvariantRule> rules =
        InvariantEngine::parseSpec("@" + path);
    ASSERT_EQ(rules.size(), 3u);
    EXPECT_EQ(rules[0].text, "dilation<=0.25");
    EXPECT_EQ(rules[1].text, "relock_overlap==never");
    EXPECT_EQ(rules[2].text, "freq_in_table==always");
    std::remove(path.c_str());
}

/** Engine wired to just the given rules, no trace exporter. */
struct Harness
{
    StatsRegistry reg;
    InvariantEngine eng;

    explicit Harness(const std::string &spec)
        : eng(InvariantEngine::parseSpec(spec), reg, nullptr)
    {}
};

TEST(InvariantEngine, VoltageLeadsFreqTripsOnUndervoltedRise)
{
    Harness h("voltage_leads_freq==never");
    DvfsTable table;
    // 1 GHz at the table's top voltage: fine.
    h.eng.frequencyChange(Domain::Integer, 100, table.maxFrequency(),
                          table.voltageFor(table.maxFrequency()));
    EXPECT_EQ(h.eng.violations(), 0u);
    // 1 GHz on a mid-table rail: the undervolted hazard.
    h.eng.frequencyChange(Domain::Integer, 250, table.maxFrequency(),
                          0.8);
    ASSERT_EQ(h.eng.violations(), 1u);
    const InvariantViolation &v = h.eng.records().at(0);
    EXPECT_EQ(v.rule, "voltage_leads_freq==never");
    EXPECT_EQ(v.domain, Domain::Integer);
    EXPECT_EQ(v.tick, 250u);
    EXPECT_DOUBLE_EQ(v.observed, 0.8);
    EXPECT_GT(v.bound, 0.8);    // the voltage the table demands
}

TEST(InvariantEngine, RelockOverlapTripsOnOverlappingWindows)
{
    Harness h("relock_overlap==never");
    h.eng.relockWindow(Domain::Integer, 1000, 2000);
    h.eng.relockWindow(Domain::LoadStore, 1500, 2500); // other domain: ok
    EXPECT_EQ(h.eng.violations(), 0u);
    h.eng.relockWindow(Domain::Integer, 1500, 3000);   // overlaps by 500
    ASSERT_EQ(h.eng.violations(), 1u);
    EXPECT_EQ(h.eng.records().at(0).tick, 1500u);
    EXPECT_DOUBLE_EQ(h.eng.records().at(0).observed, 500.0);
}

TEST(InvariantEngine, SampleChecksQueueFillAndEnergyMonotonicity)
{
    Harness h("queue_fill<=0.9;energy_decreasing==never");
    TimeSample s;
    s.when = 1000;
    s.occupancy[domainIndex(Domain::Integer)] = 0.9;   // at the bound
    s.energy[domainIndex(Domain::Integer)] = 5.0;
    h.eng.sample(s);
    EXPECT_EQ(h.eng.violations(), 0u);

    s.when = 2000;
    s.occupancy[domainIndex(Domain::Integer)] = 0.95;  // over
    s.energy[domainIndex(Domain::Integer)] = 4.0;      // went backwards
    h.eng.sample(s);
    EXPECT_EQ(h.eng.violations(), 2u);
    ASSERT_EQ(h.eng.records().size(), 2u);
    EXPECT_EQ(h.eng.records()[0].rule, "queue_fill<=0.9");
    EXPECT_EQ(h.eng.records()[1].rule, "energy_decreasing==never");

    // Per-rule counters carry the split.
    const auto *qf = h.reg.find("invariants.violations.queue_fill");
    ASSERT_NE(qf, nullptr);
    EXPECT_EQ(std::get<obs::Counter>(qf->stat).value(), 1u);
}

TEST(InvariantEngine, FreqInTableTripsOutsideTheRange)
{
    Harness h("freq_in_table==always");
    DvfsTable table;
    h.eng.frequencyChange(Domain::Integer, 10, table.minFrequency(),
                          1.2);
    EXPECT_EQ(h.eng.violations(), 0u);
    h.eng.frequencyChange(Domain::Integer, 20, 2.0 * table.maxFrequency(),
                          1.2);
    EXPECT_EQ(h.eng.violations(), 1u);
}

TEST(InvariantEngine, DilationEvaluatesAtRunEnd)
{
    Harness h("dilation<=0.1");
    // 30% of a 10 us run spent re-locking the INT PLL.
    h.eng.relockWindow(Domain::Integer, 1'000'000, 4'000'000);
    EXPECT_EQ(h.eng.violations(), 0u);   // nothing until the end
    h.eng.runEnd(10'000'000);
    ASSERT_EQ(h.eng.violations(), 1u);
    const InvariantViolation &v = h.eng.records().at(0);
    EXPECT_EQ(v.rule, "dilation<=0.1");
    EXPECT_NEAR(v.observed, 0.3, 1e-12);

    // A quiet domain with no re-locks is never evaluated.
    Harness quiet("dilation<=0.0000001");
    quiet.eng.runEnd(10'000'000);
    EXPECT_EQ(quiet.eng.violations(), 0u);
}

TEST(InvariantEngine, RecordsAreCappedButCountersAreNot)
{
    Harness h("relock_overlap==never");
    h.eng.relockWindow(Domain::Integer, 0, 1000);
    for (std::uint64_t i = 0; i < InvariantEngine::maxRecords + 10; ++i)
        h.eng.relockWindow(Domain::Integer, 10 + i, 1000);
    EXPECT_EQ(h.eng.violations(), InvariantEngine::maxRecords + 10);
    EXPECT_EQ(h.eng.records().size(), InvariantEngine::maxRecords);
}

TEST(InvariantEngine, CleanRunReportsZeroViolations)
{
    Program p = workloads::build("adpcm", 1);

    ReconfigSchedule sched;
    sched.add(fromMicroseconds(5.0), Domain::Integer, 500e6);
    sched.add(fromMicroseconds(30.0), Domain::Integer, 1e9);

    for (DvfsKind model : {DvfsKind::Transmeta, DvfsKind::XScale}) {
        SimConfig cfg;
        cfg.clocking = ClockingStyle::Mcd;
        cfg.dvfs = model;
        cfg.dvfsTimeScale = 0.2;
        cfg.schedule = &sched;
        cfg.telemetry.invariants = "default";
        cfg.maxInstructions = 60000;

        RunResult r = McdProcessor(cfg, p).run();
        ASSERT_NE(r.telemetry, nullptr);
        const InvariantEngine *inv = r.telemetry->invariants();
        ASSERT_NE(inv, nullptr) << dvfsKindName(model);
        EXPECT_GT(inv->checks(), 0u) << dvfsKindName(model);
        EXPECT_EQ(inv->violations(), 0u) << dvfsKindName(model);
        EXPECT_TRUE(inv->records().empty()) << dvfsKindName(model);
    }
}

TEST(InvariantEngine, BadSpecFailsSimConfigValidation)
{
    SimConfig cfg;
    cfg.telemetry.invariants = "dilation<=purple";
    EXPECT_THROW(cfg.validate(), FatalError);

    ExperimentConfig ec;
    ec.telemetry.invariants = "not_a_metric==never";
    EXPECT_THROW(ec.validate(), FatalError);
}

/**
 * The fault-injection acceptance path: a vfmisorder fault plan makes
 * the dyn5 leg apply a rising frequency before its voltage ramp, and
 * the default rule set pins the breach to an exact tick — identically
 * at any job count.
 */
TEST(InvariantEngine, InjectedMisorderTripsDeterministically)
{
    auto run = [](int jobs) {
        ExperimentConfig ec;
        ec.telemetry.invariants = "default";
        ec.faults = std::make_shared<const fault::FaultPlan>(
            fault::FaultPlan::parse("leg:adpcm/dyn5=vfmisorder"));
        return runMatrix(ec, {"adpcm"}, jobs);
    };

    std::vector<BenchmarkResults> serial = run(1);
    std::vector<BenchmarkResults> parallel = run(3);

    for (const auto *rows : {&serial, &parallel}) {
        ASSERT_EQ(rows->size(), 1u);
        const RunResult &dyn5 = rows->at(0).leg("dyn5");
        ASSERT_FALSE(dyn5.failed());
        ASSERT_NE(dyn5.telemetry, nullptr);
        const InvariantEngine *inv = dyn5.telemetry->invariants();
        ASSERT_NE(inv, nullptr);
        EXPECT_GT(inv->violations(), 0u);
        ASSERT_FALSE(inv->records().empty());
        EXPECT_EQ(inv->records()[0].rule, "voltage_leads_freq==never");
        // The untouched legs stay clean.
        EXPECT_EQ(rows->at(0).mcdBaseline.telemetry->invariants()
                      ->violations(),
                  0u);
    }

    // Bit-identical breach records at jobs=1 vs jobs=3.
    const auto &a = serial[0].leg("dyn5").telemetry->invariants();
    const auto &b = parallel[0].leg("dyn5").telemetry->invariants();
    ASSERT_EQ(a->records().size(), b->records().size());
    for (std::size_t i = 0; i < a->records().size(); ++i) {
        EXPECT_EQ(a->records()[i].rule, b->records()[i].rule);
        EXPECT_EQ(a->records()[i].domain, b->records()[i].domain);
        EXPECT_EQ(a->records()[i].tick, b->records()[i].tick);
        EXPECT_DOUBLE_EQ(a->records()[i].observed,
                         b->records()[i].observed);
    }

    // The matrix-level helpers see the same totals.
    EXPECT_EQ(countInvariantViolations(serial),
              countInvariantViolations(parallel));
    EXPECT_GT(countInvariantViolations(serial), 0u);

    // ...and the violations reach the results document.
    std::ostringstream os;
    writeResultsJson(os, ExperimentConfig{}, serial);
    std::string text = os.str();
    EXPECT_NE(text.find("\"invariantViolations\""), std::string::npos);
    EXPECT_NE(text.find("voltage_leads_freq==never"), std::string::npos);
}

TEST(InvariantEngine, FatalEnvKnob)
{
    ::unsetenv("MCD_INVARIANTS_FATAL");
    EXPECT_FALSE(invariantsFatalFromEnv());
    ::setenv("MCD_INVARIANTS_FATAL", "0", 1);
    EXPECT_FALSE(invariantsFatalFromEnv());
    ::setenv("MCD_INVARIANTS_FATAL", "1", 1);
    EXPECT_TRUE(invariantsFatalFromEnv());
    ::unsetenv("MCD_INVARIANTS_FATAL");
    EXPECT_EQ(exitInvariantViolation, 5);
}

} // namespace
} // namespace mcd
