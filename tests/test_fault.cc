/**
 * @file
 * The fault-injection subsystem and the recovery paths it exists to
 * prove: plan parsing, the pure (site, attempt) injection contract,
 * per-leg isolation with bounded retry, dependency propagation, the
 * no-progress watchdog, partial-failure exit codes, and the
 * job-count-independence of an injected matrix.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/schedule.hh"
#include "common/log.hh"
#include "common/random.hh"
#include "config/runspec.hh"
#include "control/controller.hh"
#include "core/experiment.hh"
#include "fault/fault_plan.hh"

namespace mcd {
namespace {

namespace fs = std::filesystem;
using fault::FaultKind;
using fault::FaultPlan;
using fault::InjectedFault;

// ---------------------------------------------------------------- plan

TEST(FaultPlan, ParsesMultiItemSpec)
{
    FaultPlan plan = FaultPlan::parse(
        "leg:adpcm/dyn1=throw;cache:mst=truncate;seed=7;"
        "leg:art/online=flaky:3");
    ASSERT_EQ(plan.specs().size(), 3u);
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.seed(), 7u);

    EXPECT_EQ(plan.specs()[0].site, "adpcm/dyn1");
    EXPECT_EQ(plan.specs()[0].kind, FaultKind::Throw);
    EXPECT_EQ(plan.specs()[1].site, "mst");
    EXPECT_EQ(plan.specs()[1].kind, FaultKind::TruncateCache);
    EXPECT_EQ(plan.specs()[2].site, "art/online");
    EXPECT_EQ(plan.specs()[2].kind, FaultKind::Flaky);
    EXPECT_EQ(plan.specs()[2].count, 3);
}

TEST(FaultPlan, EmptyItemsAreIgnored)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse(";;;").empty());
    EXPECT_EQ(FaultPlan::parse(";leg:a/b=stall;").specs().size(), 1u);
}

TEST(FaultPlan, MalformedSpecsAreFatal)
{
    for (const char *bad : {
             "gibberish",                // no '='
             "frob:a/b=throw",           // unknown target
             "leg:adpcm=throw",          // leg site without '/'
             "leg:a/b=explode",          // unknown leg action
             "leg:a/b=throw:2",          // count on a non-flaky action
             "leg:a/b=flaky:0",          // flaky count < 1
             "leg:a/b=flaky:x",          // flaky count not a number
             "cache:a/b=corrupt",        // cache site with '/'
             "cache:mst=frob",           // unknown cache action
             "seed=banana",              // non-numeric seed
         }) {
        SCOPED_TRACE(bad);
        EXPECT_THROW(FaultPlan::parse(bad), FatalError);
    }
}

TEST(FaultPlan, FromConfigLayer)
{
    // MCD_FAULT_PLAN resolves through the unified config layer; an
    // unset or empty option means "no plan", anything else reaches
    // FaultPlan::parse via runMatrix's effective-config resolution.
    ::unsetenv("MCD_FAULT_PLAN");
    EXPECT_TRUE(config::RunSpec::resolve().str("faultPlan").empty());
    ::setenv("MCD_FAULT_PLAN", "", 1);
    EXPECT_TRUE(config::RunSpec::resolve().str("faultPlan").empty());
    ::setenv("MCD_FAULT_PLAN", "leg:adpcm/dyn1=throw", 1);
    std::string spec = config::RunSpec::resolve().str("faultPlan");
    EXPECT_EQ(FaultPlan::parse(spec).specs().size(), 1u);
    ::unsetenv("MCD_FAULT_PLAN");
}

TEST(FaultPlan, InjectionIsAPureFunctionOfSiteAndAttempt)
{
    FaultPlan plan = FaultPlan::parse(
        "leg:a/dyn1=throw;leg:a/dyn5=flaky:2;leg:a/online=stall");

    // Throw: every attempt, never transient.
    for (int attempt : {1, 2, 5}) {
        try {
            plan.onLegAttempt("a/dyn1", attempt);
            FAIL() << "throw site did not fire (attempt " << attempt
                   << ")";
        } catch (const InjectedFault &e) {
            EXPECT_EQ(e.site(), "a/dyn1");
            EXPECT_FALSE(e.transient());
        }
    }

    // Flaky:2 — first two attempts fail transiently, the third runs.
    for (int attempt : {1, 2}) {
        try {
            plan.onLegAttempt("a/dyn5", attempt);
            FAIL() << "flaky site did not fire (attempt " << attempt
                   << ")";
        } catch (const InjectedFault &e) {
            EXPECT_TRUE(e.transient());
        }
    }
    EXPECT_NO_THROW(plan.onLegAttempt("a/dyn5", 3));

    // Stall sites never throw at the guard: they starve the watchdog.
    EXPECT_NO_THROW(plan.onLegAttempt("a/online", 1));
    EXPECT_TRUE(plan.stallsLeg("a/online"));
    EXPECT_FALSE(plan.stallsLeg("a/dyn1"));
    EXPECT_FALSE(plan.stallsLeg(""));

    // Unarmed sites are inert.
    EXPECT_NO_THROW(plan.onLegAttempt("b/dyn1", 1));
    EXPECT_TRUE(plan.legFaultsFor("a"));
    EXPECT_FALSE(plan.legFaultsFor("b"));
    EXPECT_FALSE(plan.cacheFault("a").has_value());
}

TEST(FaultPlan, DamageFile)
{
    fs::path p = fs::temp_directory_path() / "mcd-fault-damage.txt";
    const std::string original = "0123456789abcdef0123456789abcdef";
    {
        std::ofstream os(p, std::ios::binary);
        os << original;
    }

    ASSERT_TRUE(fault::damageFile(p.string(),
                                  FaultKind::TruncateCache));
    EXPECT_EQ(fs::file_size(p), original.size() / 2);

    {
        std::ofstream os(p, std::ios::binary | std::ios::trunc);
        os << original;
    }
    ASSERT_TRUE(fault::damageFile(p.string(), FaultKind::CorruptCache));
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str().size(), original.size());    // same size...
    EXPECT_NE(buf.str(), original);                  // ...new bytes

    fs::remove(p);
    EXPECT_FALSE(fault::damageFile(p.string(), FaultKind::CorruptCache));
}

// ---------------------------------------------------- spec emission

TEST(FaultPlan, ToSpecRoundTripsHandWrittenPlans)
{
    for (const char *spec : {
             "leg:adpcm/dyn1=throw",
             "leg:a/b=flaky:3;cache:mst=truncate",
             "leg:a/b=stall;leg:a/c=vfmisorder;seed=9",
             "cache:art=corrupt",
         }) {
        FaultPlan plan = FaultPlan::parse(spec);
        EXPECT_EQ(plan.toSpec(), spec);
    }
    // Canonicalization: empty items vanish, flaky:1 drops its count,
    // the default seed is omitted.
    EXPECT_EQ(FaultPlan::parse(";leg:a/b=flaky:1;;seed=1;").toSpec(),
              "leg:a/b=flaky");
}

/** Random valid plan built directly from the spec grammar. */
std::string
randomFaultSpec(Rng &rng)
{
    static const char *const legActions[] = {
        "throw", "flaky", "flaky:2", "flaky:5", "stall", "vfmisorder",
    };
    static const char *const cacheActions[] = {"truncate", "corrupt"};
    std::string spec;
    int items = 1 + rng.uniformInt(4);
    for (int i = 0; i < items; ++i) {
        if (!spec.empty())
            spec += ";";
        // Distinct sites per item keep the plan order-preserving.
        std::string tag = std::to_string(i);
        if (rng.uniform() < 0.7)
            spec += "leg:b" + tag + "/l" + tag + "=" +
                legActions[rng.uniformInt(6)];
        else
            spec += "cache:b" + tag + "=" +
                cacheActions[rng.uniformInt(2)];
    }
    if (rng.uniform() < 0.4)
        spec += ";seed=" + std::to_string(2 + rng.uniformInt(1000));
    return spec;
}

TEST(FaultPlan, ToSpecRoundTripsRandomizedPlans)
{
    Rng rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        std::string spec = randomFaultSpec(rng);
        FaultPlan plan = FaultPlan::parse(spec);
        std::string emitted = plan.toSpec();
        // The emitted spec parses back to a structurally identical
        // plan, and re-emitting it is a fixed point (canonical form).
        FaultPlan reparsed = FaultPlan::parse(emitted);
        EXPECT_EQ(reparsed.toSpec(), emitted) << spec;
        ASSERT_EQ(reparsed.specs().size(), plan.specs().size()) << spec;
        EXPECT_EQ(reparsed.seed(), plan.seed()) << spec;
        for (std::size_t i = 0; i < plan.specs().size(); ++i) {
            EXPECT_EQ(reparsed.specs()[i].site, plan.specs()[i].site);
            EXPECT_EQ(reparsed.specs()[i].kind, plan.specs()[i].kind);
            EXPECT_EQ(reparsed.specs()[i].count,
                      plan.specs()[i].count);
        }
    }
}

// ------------------------------------------------------ config checks

TEST(ExperimentConfigValidate, RejectsOutOfRangeParameters)
{
    ExperimentConfig ok;
    EXPECT_NO_THROW(ok.validate());

    ExperimentConfig ec = ok;
    ec.scale = 0;
    EXPECT_THROW(ec.validate(), FatalError);

    ec = ok;
    ec.legAttempts = 0;
    EXPECT_THROW(ec.validate(), FatalError);

    ec = ok;
    ec.dilationLow = 0.0;
    EXPECT_THROW(ec.validate(), FatalError);

    ec = ok;
    ec.dilationLow = 0.10;      // above dilationHigh = 0.05
    EXPECT_THROW(ec.validate(), FatalError);

    ec = ok;
    ec.dvfsTimeScale = -1.0;
    EXPECT_THROW(ec.validate(), FatalError);

    ec = ok;
    ec.online.interval = 0;
    EXPECT_THROW(ec.validate(), FatalError);
}

TEST(SimConfigValidate, RejectsInconsistentConfigurations)
{
    SimConfig ok;
    EXPECT_NO_THROW(ok.validate());

    SimConfig sc = ok;
    sc.domainFrequency[0] = 0.0;
    EXPECT_THROW(sc.validate(), FatalError);

    // In-range without a DVFS engine, out of the table's range with
    // one: the first transition would be undefined.
    sc = ok;
    sc.domainFrequency[1] = 2e9;
    EXPECT_NO_THROW(sc.validate());
    sc.dvfs = DvfsKind::XScale;
    EXPECT_THROW(sc.validate(), FatalError);

    sc = ok;
    sc.syncFraction = 1.5;
    EXPECT_THROW(sc.validate(), FatalError);

    // Control-plane exclusivity: schedule XOR controller.
    ReconfigSchedule sched;
    sched.add(1000, Domain::Integer, 500e6);
    sched.finalize();
    StaticController ctl({1e9, 1e9, 1e9, 1e9});
    sc = ok;
    sc.dvfs = DvfsKind::XScale;
    sc.schedule = &sched;
    EXPECT_NO_THROW(sc.validate());
    sc.controller = &ctl;
    EXPECT_THROW(sc.validate(), FatalError);

    // A non-empty schedule with no DVFS model cannot execute.
    sc = ok;
    sc.schedule = &sched;
    EXPECT_THROW(sc.validate(), FatalError);

    // Unsorted schedules point at the missing finalize() call.
    ReconfigSchedule unsorted;
    unsorted.add(2000, Domain::Integer, 500e6);
    unsorted.add(1000, Domain::Integer, 750e6);
    sc = ok;
    sc.dvfs = DvfsKind::XScale;
    sc.schedule = &unsorted;
    EXPECT_THROW(sc.validate(), FatalError);

    // Schedule frequencies outside the operating-point table.
    ReconfigSchedule tooFast;
    tooFast.add(1000, Domain::Integer, 5e9);
    tooFast.finalize();
    sc = ok;
    sc.dvfs = DvfsKind::XScale;
    sc.schedule = &tooFast;
    EXPECT_THROW(sc.validate(), FatalError);
}

TEST(SimConfigValidate, CollectsEveryViolationInOneReport)
{
    // A multiply broken configuration — the shape fuzzed scenarios
    // produce — must surface the complete defect list, not just the
    // first hit.
    SimConfig sc;
    sc.domainFrequency[0] = 0.0;        // violation 1
    sc.syncFraction = 1.5;              // violation 2
    sc.jitterSigmaPs = -1.0;            // violation 3
    sc.dvfsTimeScale = 0.0;             // violation 4

    std::vector<std::string> errs = sc.validateAll();
    ASSERT_EQ(errs.size(), 4u);

    // And validate() folds the whole list into one fatal message.
    try {
        sc.validate();
        FAIL() << "validate() must throw";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("4 invalid settings"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("domainFrequency[0]"), std::string::npos);
        EXPECT_NE(msg.find("syncFraction"), std::string::npos);
        EXPECT_NE(msg.find("jitterSigmaPs"), std::string::npos);
        EXPECT_NE(msg.find("dvfsTimeScale"), std::string::npos);
    }

    // A single violation keeps the original one-line message shape.
    SimConfig one;
    one.syncFraction = -0.5;
    EXPECT_EQ(one.validateAll().size(), 1u);
    try {
        one.validate();
        FAIL() << "validate() must throw";
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()).find("invalid settings"),
                  std::string::npos);
    }
}

TEST(ExperimentConfigValidate, CollectsEveryViolationInOneReport)
{
    ExperimentConfig ec;
    ec.scale = 0;                       // violation 1
    ec.legAttempts = 0;                 // violation 2
    ec.dilationLow = -0.1;              // violation 3

    std::vector<std::string> errs = ec.validateAll();
    ASSERT_GE(errs.size(), 3u);
    try {
        ec.validate();
        FAIL() << "validate() must throw";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("invalid settings"), std::string::npos);
        EXPECT_NE(msg.find("scale"), std::string::npos);
    }
}

// ------------------------------------------------------- exit codes

RunResult
failedRun(const char *site, const char *kind)
{
    RunResult r;
    r.error = RunError{site, kind, "synthetic", 1};
    return r;
}

TEST(MatrixExitCode, DistinguishesPartialFromTotalFailure)
{
    EXPECT_EQ(matrixExitCode({}), exitOk);

    std::vector<BenchmarkResults> rows(2);
    for (BenchmarkResults &r : rows) {
        for (const LegSpec &spec : defaultLegs(ExperimentConfig{}))
            r.legs.push_back({spec, RunResult{}, 0});
    }
    EXPECT_EQ(matrixExitCode(rows), exitOk);

    rows[0].legs[0].run = failedRun("a/dyn1", "injected");
    EXPECT_EQ(rows[0].failedLegs(), 1u);
    EXPECT_TRUE(rows[0].anyFailed());
    EXPECT_EQ(matrixExitCode(rows), exitPartialFailure);

    for (BenchmarkResults &r : rows) {
        r.baseline = failedRun("x", "fatal");
        r.mcdBaseline = failedRun("x", "fatal");
        for (ControllerLeg &l : r.legs)
            l.run = failedRun("x", "fatal");
    }
    EXPECT_EQ(rows[0].failedLegs(), 6u);
    EXPECT_EQ(matrixExitCode(rows), exitTotalFailure);
}

// ----------------------------------------------------- matrix guards

std::string
resultsJson(const ExperimentConfig &cfg,
            const std::vector<BenchmarkResults> &rows)
{
    std::ostringstream os;
    writeResultsJson(os, cfg, rows);
    return os.str();
}

void
expectRunsIdentical(const RunResult &a, const RunResult &b,
                    const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.energyDelay, b.energyDelay);
}

TEST(FaultMatrix, InjectedLegFailureIsIsolatedAndJobCountIndependent)
{
    const std::vector<std::string> names{"adpcm", "mst"};
    ExperimentConfig ec;
    ec.faults = std::make_shared<const FaultPlan>(
        FaultPlan::parse("leg:adpcm/dyn1=throw"));

    auto serial = runMatrix(ec, names, /*jobs=*/1);
    ASSERT_EQ(serial.size(), 2u);

    // The armed leg failed with a structured record...
    const RunResult &dead = serial[0].leg("dyn1");
    ASSERT_TRUE(dead.failed());
    EXPECT_EQ(dead.error->kind, "injected");
    EXPECT_EQ(dead.error->site, "adpcm/dyn1");
    EXPECT_EQ(dead.error->attempts, 1);     // permanent: no retry
    EXPECT_EQ(dead.execTime, 0u);           // numerics stay default

    // ...every other leg of both benchmarks still completed.
    EXPECT_EQ(serial[0].failedLegs(), 1u);
    EXPECT_EQ(serial[1].failedLegs(), 0u);
    EXPECT_GT(serial[0].baseline.committed, 0u);
    EXPECT_GT(serial[0].leg("global").committed, 0u);
    EXPECT_GT(serial[1].leg("dyn1").committed, 0u);
    EXPECT_EQ(matrixExitCode(serial), exitPartialFailure);

    // The failure surfaces in the results JSON.
    std::string json = resultsJson(ec, serial);
    EXPECT_NE(json.find("\"failures\": ["), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"injected\""), std::string::npos);
    EXPECT_NE(json.find("\"exitCode\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"failed\": true"), std::string::npos);

    // Injection is deterministic under parallel execution: the whole
    // document is byte-identical for any job count.
    auto par = runMatrix(ec, names, /*jobs=*/8);
    EXPECT_EQ(json, resultsJson(ec, par));
}

TEST(FaultMatrix, TransientFaultIsRetriedAndRecovers)
{
    const std::vector<std::string> names{"adpcm"};

    ExperimentConfig clean;
    auto cleanRows = runMatrix(clean, names, 1);
    ASSERT_EQ(cleanRows[0].failedLegs(), 0u);

    // A clean matrix keeps the pre-fault-framework document: no
    // failure surface at all.
    std::string cleanJson = resultsJson(clean, cleanRows);
    EXPECT_EQ(cleanJson.find("\"failures\""), std::string::npos);
    EXPECT_EQ(cleanJson.find("\"exitCode\""), std::string::npos);
    EXPECT_EQ(cleanJson.find("\"attempts\""), std::string::npos);

    ExperimentConfig ec;
    ec.legAttempts = 2;
    ec.faults = std::make_shared<const FaultPlan>(
        FaultPlan::parse("leg:adpcm/dyn5=flaky"));
    auto rows = runMatrix(ec, names, 1);

    // The flaky leg recovered on the second attempt, and the retry
    // reproduced the clean run bit for bit.
    EXPECT_EQ(rows[0].failedLegs(), 0u);
    EXPECT_EQ(rows[0].leg("dyn5").attempts, 2);
    expectRunsIdentical(rows[0].leg("dyn5"), cleanRows[0].leg("dyn5"),
                        "dyn5");
    expectRunsIdentical(rows[0].baseline, cleanRows[0].baseline,
                        "baseline");
    EXPECT_EQ(matrixExitCode(rows), exitOk);

    // With retries exhausted the same plan records the failure.
    ExperimentConfig once = ec;
    once.legAttempts = 1;
    auto failedRows = runMatrix(once, names, 1);
    ASSERT_TRUE(failedRows[0].leg("dyn5").failed());
    EXPECT_EQ(failedRows[0].leg("dyn5").error->kind, "injected");
}

TEST(FaultMatrix, StallTripsTheWatchdog)
{
    ExperimentConfig ec;
    ec.faults = std::make_shared<const FaultPlan>(
        FaultPlan::parse("leg:adpcm/online=stall"));
    ec.watchdogNoProgressEdges = 50'000;    // trip fast
    auto rows = runMatrix(ec, {"adpcm"}, 1);

    const RunResult &stalled = rows[0].leg("online");
    ASSERT_TRUE(stalled.failed());
    EXPECT_EQ(stalled.error->kind, "watchdog");
    EXPECT_NE(stalled.error->message.find("no commit progress"),
              std::string::npos);
    EXPECT_NE(stalled.error->message.find("injected stall"),
              std::string::npos);
    EXPECT_EQ(rows[0].failedLegs(), 1u);
    EXPECT_GT(rows[0].leg("dyn5").committed, 0u);  // siblings unaffected
}

TEST(FaultMatrix, ProfilingFailurePropagatesAsDependencyErrors)
{
    ExperimentConfig ec;
    ec.faults = std::make_shared<const FaultPlan>(
        FaultPlan::parse("leg:adpcm/mcdBaseline=throw"));
    auto rows = runMatrix(ec, {"adpcm"}, 1);

    ASSERT_TRUE(rows[0].mcdBaseline.failed());
    EXPECT_EQ(rows[0].mcdBaseline.error->kind, "injected");

    // dyn1/dyn5 need the profiling trace; global needs dyn5. None of
    // them were attempted, and each names its upstream.
    for (const char *leg : {"dyn1", "dyn5", "global"}) {
        const RunResult &r = rows[0].leg(leg);
        ASSERT_TRUE(r.failed());
        EXPECT_EQ(r.error->kind, "dependency");
        EXPECT_EQ(r.attempts, 0);
    }
    EXPECT_NE(rows[0].leg("dyn1").error->message.find("mcdBaseline"),
              std::string::npos);

    // Independent legs still ran.
    EXPECT_FALSE(rows[0].baseline.failed());
    EXPECT_FALSE(rows[0].leg("online").failed());
    EXPECT_EQ(rows[0].failedLegs(), 4u);
    EXPECT_EQ(matrixExitCode(rows), exitPartialFailure);
}

TEST(FaultMatrix, FailedRowsAreNeverCached)
{
    fs::path dir = fs::temp_directory_path() / "mcd-fault-nocache";
    fs::remove_all(dir);

    ExperimentConfig ec;
    ec.cacheDir = dir.string();
    ec.faults = std::make_shared<const FaultPlan>(
        FaultPlan::parse("leg:adpcm/dyn1=throw"));
    ExperimentRunner runner(ec);
    BenchmarkResults r = runner.runBenchmark("adpcm");
    ASSERT_TRUE(r.anyFailed());
    EXPECT_FALSE(fs::exists(runner.cachePath("adpcm")));

    fs::remove_all(dir);
}

} // namespace
} // namespace mcd
