/**
 * @file
 * The fuzz workload generator: byte-identical regeneration from a
 * seed, exact spec round-trips, registry integration under hashed
 * names, and the no-aliasing guarantee against the fixed Table 2
 * suite. These are the properties the soak harness's replay story
 * rests on — a repro file stores only the spec string, so the
 * program it rebuilds must be the program that failed.
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/random.hh"
#include "fuzz/workload_gen.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace {

using fuzz::GenParams;
using fuzz::PhaseKind;
using fuzz::PhaseParams;

/** Full structural equality of two built programs. */
void
expectIdentical(const Program &a, const Program &b)
{
    ASSERT_EQ(a.textSize(), b.textSize());
    EXPECT_EQ(a.textBase(), b.textBase());
    for (std::uint64_t pc = a.textBase(); pc < a.textLimit(); pc += 4)
        ASSERT_EQ(a.fetchWord(pc), b.fetchWord(pc))
            << "instruction words differ at pc=" << pc;
    // The data image has no size accessor; sweep a generous window
    // over the low address space the builder allocates from.
    for (std::uint64_t addr = 0; addr < (1u << 20); addr += 8)
        ASSERT_EQ(a.initialData().readWord(addr),
                  b.initialData().readWord(addr))
            << "data words differ at addr=" << addr;
}

TEST(FuzzGen, SameSeedBuildsByteIdenticalPrograms)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        GenParams p = GenParams::fromSeed(seed);
        GenParams q = GenParams::fromSeed(seed);
        EXPECT_EQ(p.spec(), q.spec());
        expectIdentical(p.generate(1), q.generate(1));
    }
}

TEST(FuzzGen, SpecRoundTripsExactly)
{
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        GenParams p = GenParams::fromSeed(seed);
        GenParams q = GenParams::fromSpec(p.spec());
        EXPECT_EQ(p.spec(), q.spec()) << "seed " << seed;
        EXPECT_EQ(p.workloadName(), q.workloadName());
        // The parsed params rebuild the identical program, not just
        // the identical spec string.
        if (seed <= 4)
            expectIdentical(p.generate(1), q.generate(1));
    }
}

TEST(FuzzGen, MalformedSpecsAreFatal)
{
    EXPECT_THROW(GenParams::fromSpec(""), FatalError);
    EXPECT_THROW(GenParams::fromSpec("seed=1"), FatalError);
    EXPECT_THROW(GenParams::fromSpec("seed=1;phase=bogus:1:1:1:1:1"),
                 FatalError);
    EXPECT_THROW(GenParams::fromSpec("seed=1;phase=int:1:1:1"),
                 FatalError);
    EXPECT_THROW(GenParams::fromSpec("phase=int:1:1:1:1:1"),
                 FatalError);
}

TEST(FuzzGen, DistinctSeedsGetDistinctNames)
{
    std::set<std::string> names;
    for (std::uint64_t seed = 1; seed <= 200; ++seed)
        names.insert(GenParams::fromSeed(seed).workloadName());
    // The name hashes the full spec; 200 random shapes must not
    // collide (a collision would silently alias cache entries).
    EXPECT_EQ(names.size(), 200u);
}

TEST(FuzzGen, GeneratedNamesNeverAliasFixedBenchmarks)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        std::string name = GenParams::fromSeed(seed).workloadName();
        EXPECT_EQ(name.rfind("fuzz-", 0), 0u);
        for (const WorkloadInfo &w : workloads::all())
            EXPECT_NE(name, w.name);
    }
    // And no fixed benchmark can ever route to the generator hook.
    for (const WorkloadInfo &w : workloads::all())
        EXPECT_FALSE(workloads::isGenerated(w.name)) << w.name;
}

TEST(FuzzGen, InternedWorkloadsBuildThroughTheRegistry)
{
    GenParams p = GenParams::fromSeed(7);
    std::string name = fuzz::internWorkload(p);
    EXPECT_EQ(name, p.workloadName());
    EXPECT_TRUE(workloads::isGenerated(name));

    // Interning again is idempotent; the registry builds the same
    // program the params build directly.
    EXPECT_EQ(fuzz::internWorkload(p), name);
    ASSERT_NE(fuzz::findWorkload(name), nullptr);
    expectIdentical(workloads::build(name, 1), p.generate(1));
}

TEST(FuzzGen, UnknownGeneratedNamesAreFatal)
{
    // Registered prefix, un-interned hash: must fail loudly instead
    // of building something arbitrary.
    fuzz::internWorkload(GenParams::fromSeed(9));    // arm the prefix
    EXPECT_THROW(workloads::build("fuzz-0000000000000000", 1),
                 FatalError);
}

TEST(FuzzGen, ScaleMultipliesWork)
{
    GenParams p;
    p.seed = 11;
    PhaseParams ph;
    ph.kind = PhaseKind::IntChain;
    ph.iters = 50;
    p.phases.push_back(ph);
    // Scale multiplies loop trip counts (like the fixed suite), not
    // code size: the text differs only in the encoded loop bounds.
    Program s1 = p.generate(1);
    Program s3 = p.generate(3);
    ASSERT_EQ(s1.textSize(), s3.textSize());
    bool differs = false;
    for (std::uint64_t pc = s1.textBase(); pc < s1.textLimit(); pc += 4)
        differs = differs || s1.fetchWord(pc) != s3.fetchWord(pc);
    EXPECT_TRUE(differs);
}

TEST(FuzzGen, EveryPhaseKindEmitsARunnableBody)
{
    for (PhaseKind k : {PhaseKind::IntChain, PhaseKind::FpChain,
                        PhaseKind::MemStream, PhaseKind::Branchy}) {
        GenParams p;
        p.seed = 13;
        PhaseParams ph;
        ph.kind = k;
        ph.iters = 20;
        p.phases.push_back(ph);
        Program prog = p.generate(1);
        EXPECT_GT(prog.textSize(), 4u) << fuzz::phaseKindName(k);
    }
}

TEST(FuzzGen, RegisterGeneratorRejectsBadRegistrations)
{
    EXPECT_THROW(workloads::registerGenerator(
                     "", [](const std::string &, int) {
                         return workloads::buildAdpcm(1);
                     }),
                 FatalError);
    EXPECT_THROW(workloads::registerGenerator("adpcm", nullptr),
                 FatalError);
    EXPECT_THROW(workloads::registerGenerator(
                     "adpcm", [](const std::string &, int) {
                         return workloads::buildAdpcm(1);
                     }),
                 FatalError);
}

} // namespace
} // namespace mcd
