/**
 * @file
 * Tests for the work-queue ThreadPool behind the parallel experiment
 * engine: completion, result/exception propagation through futures,
 * helping waits with nested submission, and the 0/1/N worker modes.
 */

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "config/runspec.hh"

namespace mcd {
namespace {

TEST(ThreadPool, CompletesAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 200; ++i)
        futs.push_back(pool.submit([&count] { ++count; }));
    for (auto &f : futs)
        pool.wait(f);
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    auto f1 = pool.submit([] { return 41; });
    auto f2 = pool.submit([] { return std::string("hi"); });
    EXPECT_EQ(pool.wait(f1) + 1, 42);
    EXPECT_EQ(pool.wait(f2), "hi");
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    std::thread::id ran;
    auto f = pool.submit([&ran] { ran = std::this_thread::get_id(); });
    pool.wait(f);
    EXPECT_EQ(ran, std::this_thread::get_id());
}

TEST(ThreadPool, SingleWorkerCompletesInOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : futs)
        pool.wait(f);
    std::vector<int> want(8);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(order, want);
}

TEST(ThreadPool, ExceptionPropagatesFromWait)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(pool.wait(f), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesInlineMode)
{
    ThreadPool pool(0);
    auto f = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(pool.wait(f), std::runtime_error);
}

TEST(ThreadPool, ManyThrowingTasksNeitherTerminateNorDeadlock)
{
    // One throwing task per pending wait, across every worker mode:
    // each exception must arrive at its own waiter, the pool must
    // keep serving later tasks, and teardown must still join cleanly.
    for (unsigned workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        std::vector<std::future<int>> futs;
        for (int i = 0; i < 32; ++i) {
            futs.push_back(pool.submit([i]() -> int {
                if (i % 3 == 0)
                    throw std::runtime_error("task " + std::to_string(i));
                return i;
            }));
        }
        int caught = 0;
        int sum = 0;
        for (auto &f : futs) {
            try {
                sum += pool.wait(f);
            } catch (const std::runtime_error &) {
                ++caught;
            }
        }
        EXPECT_EQ(caught, 11) << workers << " workers";
        // The survivors all completed with their own values.
        int want = 0;
        for (int i = 0; i < 32; ++i)
            want += i % 3 == 0 ? 0 : i;
        EXPECT_EQ(sum, want) << workers << " workers";
        // The pool is still alive and usable after the failures.
        auto after = pool.submit([] { return 99; });
        EXPECT_EQ(pool.wait(after), 99);
    }
}

TEST(ThreadPool, NestedHelpingWaitSurvivesInnerThrow)
{
    // The helping wait may execute the throwing inner task on the
    // outer task's thread; the exception must still route through the
    // inner future, not unwind the helper.
    ThreadPool pool(1);
    auto outer = pool.submit([&pool] {
        auto bad = pool.submit([]() -> int {
            throw std::runtime_error("inner");
        });
        auto good = pool.submit([] { return 5; });
        int got = pool.wait(good);
        EXPECT_THROW(pool.wait(bad), std::runtime_error);
        return got;
    });
    EXPECT_EQ(pool.wait(outer), 5);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock)
{
    // A single worker forces the nested waits to be served by the
    // helping loop: the outer task's wait() must drain the inner
    // tasks itself.
    ThreadPool pool(1);
    auto outer = pool.submit([&pool] {
        std::vector<std::future<int>> inner;
        for (int i = 0; i < 5; ++i)
            inner.push_back(pool.submit([i] { return i * i; }));
        int sum = 0;
        for (auto &f : inner)
            sum += pool.wait(f);
        return sum;
    });
    EXPECT_EQ(pool.wait(outer), 0 + 1 + 4 + 9 + 16);
}

TEST(ThreadPool, DeeplyNestedSubmit)
{
    ThreadPool pool(2);
    auto outer = pool.submit([&pool] {
        auto mid = pool.submit([&pool] {
            auto leaf = pool.submit([] { return 7; });
            return pool.wait(leaf) + 10;
        });
        return pool.wait(mid) + 100;
    });
    EXPECT_EQ(pool.wait(outer), 117);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    for (unsigned workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        std::vector<std::atomic<int>> hits(64);
        pool.parallelFor(hits.size(),
                         [&hits](std::size_t i) { ++hits[i]; });
        for (auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(16, [](std::size_t i) {
            if (i == 9)
                throw std::runtime_error("index 9");
        }),
        std::runtime_error);
}

TEST(ThreadPool, RunPendingTaskHelpsExplicitly)
{
    ThreadPool pool(0);
    EXPECT_FALSE(pool.runPendingTask());    // nothing queued
}

TEST(ThreadPool, JobsFromConfigLayer)
{
    // The MCD_JOBS knob now resolves through config::RunSpec::jobs():
    // a positive value is taken as-is, the 0 default maps to hardware
    // concurrency, and junk is a hard configuration error instead of
    // the old silent fallback.
    ::setenv("MCD_JOBS", "3", 1);
    EXPECT_EQ(config::RunSpec::resolve().jobs(), 3);
    ::setenv("MCD_JOBS", "0", 1);
    EXPECT_EQ(config::RunSpec::resolve().jobs(),
              static_cast<int>(ThreadPool::hardwareJobs()));
    ::setenv("MCD_JOBS", "not-a-number", 1);
    EXPECT_THROW(config::RunSpec::resolve(), FatalError);
    ::setenv("MCD_JOBS", "-2", 1);
    EXPECT_THROW(config::RunSpec::resolve(), FatalError);
    ::unsetenv("MCD_JOBS");
    EXPECT_EQ(config::RunSpec::resolve().jobs(),
              static_cast<int>(ThreadPool::hardwareJobs()));
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No waits: the destructor must still run everything queued.
    }
    EXPECT_EQ(count.load(), 50);
}

} // namespace
} // namespace mcd
