/**
 * @file
 * Tests for the inter-domain synchronization rule, channels, and
 * credit returns (paper Section 2.2).
 */

#include <gtest/gtest.h>

#include "clock/sync.hh"

namespace mcd {
namespace {

TEST(SyncRule, SameDomainIsNextEdge)
{
    SyncRule r(false, 300.0);
    EXPECT_FALSE(r.visible(1000, 1000));
    EXPECT_TRUE(r.visible(1000, 1001));
    EXPECT_TRUE(r.visible(1000, 2000));
    EXPECT_EQ(r.earliestVisible(1000), 1001u);
}

TEST(SyncRule, CrossDomainRequiresTs)
{
    SyncRule r(true, 300.0);
    EXPECT_FALSE(r.visible(1000, 1200));    // T = 200 < Ts
    EXPECT_FALSE(r.visible(1000, 1299));
    EXPECT_TRUE(r.visible(1000, 1300));     // T = Ts exactly
    EXPECT_TRUE(r.visible(1000, 2300));
    EXPECT_EQ(r.earliestVisible(1000), 1300u);
    EXPECT_TRUE(r.isCrossDomain());
    EXPECT_EQ(r.syncTimePs(), 300u);
}

TEST(SyncRule, ForMaxFrequencyUsesPaperFraction)
{
    SyncRule r = SyncRule::forMaxFrequency(true, 1e9);
    // 30% of a 1 GHz period = 300 ps.
    EXPECT_EQ(r.syncTimePs(), 300u);
    SyncRule slow = SyncRule::forMaxFrequency(true, 500e6);
    EXPECT_EQ(slow.syncTimePs(), 600u);
}

TEST(SyncRule, DefaultIsSameDomain)
{
    SyncRule r;
    EXPECT_FALSE(r.isCrossDomain());
    EXPECT_TRUE(r.visible(10, 11));
}

TEST(SyncChannel, FifoOrderAndVisibility)
{
    SyncChannel<int> ch(SyncRule(true, 300.0));
    ch.push(1, 1000);
    ch.push(2, 2000);
    EXPECT_EQ(ch.size(), 2u);
    EXPECT_FALSE(ch.frontVisible(1200));
    EXPECT_TRUE(ch.frontVisible(1400));
    EXPECT_EQ(ch.visibleCount(1400), 1u);
    EXPECT_EQ(ch.visibleCount(2400), 2u);
    EXPECT_EQ(ch.front(), 1);
    ch.pop();
    EXPECT_EQ(ch.front(), 2);
    ch.pop();
    EXPECT_TRUE(ch.empty());
}

TEST(SyncChannel, SameDomainVisibleNextTick)
{
    SyncChannel<int> ch(SyncRule(false, 300.0));
    ch.push(5, 1000);
    EXPECT_FALSE(ch.frontVisible(1000));
    EXPECT_TRUE(ch.frontVisible(1001));
}

TEST(SyncChannel, ClearEmpties)
{
    SyncChannel<int> ch(SyncRule(false, 0.0));
    ch.push(1, 0);
    ch.push(2, 0);
    ch.clear();
    EXPECT_TRUE(ch.empty());
}

TEST(CreditReturn, InitialCreditsAvailable)
{
    CreditReturnChannel c(SyncRule(true, 300.0), 4);
    EXPECT_EQ(c.credits(0), 4);
}

TEST(CreditReturn, TakeAndGiveWithSync)
{
    CreditReturnChannel c(SyncRule(true, 300.0), 2);
    c.take();
    c.take();
    EXPECT_EQ(c.credits(5000), 0);
    c.give(5000);
    // Not visible until the sync time elapses.
    EXPECT_EQ(c.credits(5200), 0);
    EXPECT_EQ(c.credits(5300), 1);
    c.give(6000);
    EXPECT_EQ(c.credits(10000), 2);
}

TEST(CreditReturn, ReturnsPreserveOrdering)
{
    CreditReturnChannel c(SyncRule(true, 100.0), 1);
    c.take();
    c.give(1000);
    c.give(2000);   // more gives than takes is the caller's business
    EXPECT_EQ(c.credits(1100), 1);
    EXPECT_EQ(c.credits(2100), 2);
}

} // namespace
} // namespace mcd
