/**
 * @file
 * Tests for the inter-domain synchronization rule, channels, and
 * credit returns (paper Section 2.2).
 */

#include <gtest/gtest.h>

#include "clock/sync.hh"

namespace mcd {
namespace {

TEST(SyncRule, SameDomainIsNextEdge)
{
    SyncRule r(false, 300.0);
    EXPECT_FALSE(r.visible(1000, 1000));
    EXPECT_TRUE(r.visible(1000, 1001));
    EXPECT_TRUE(r.visible(1000, 2000));
    EXPECT_EQ(r.earliestVisible(1000), 1001u);
}

TEST(SyncRule, CrossDomainRequiresTs)
{
    SyncRule r(true, 300.0);
    EXPECT_FALSE(r.visible(1000, 1200));    // T = 200 < Ts
    EXPECT_FALSE(r.visible(1000, 1299));
    EXPECT_TRUE(r.visible(1000, 1300));     // T = Ts exactly
    EXPECT_TRUE(r.visible(1000, 2300));
    EXPECT_EQ(r.earliestVisible(1000), 1300u);
    EXPECT_TRUE(r.isCrossDomain());
    EXPECT_EQ(r.syncTimePs(), 300u);
}

TEST(SyncRule, ForMaxFrequencyUsesPaperFraction)
{
    SyncRule r = SyncRule::forMaxFrequency(true, 1e9);
    // 30% of a 1 GHz period = 300 ps.
    EXPECT_EQ(r.syncTimePs(), 300u);
    SyncRule slow = SyncRule::forMaxFrequency(true, 500e6);
    EXPECT_EQ(slow.syncTimePs(), 600u);
}

TEST(SyncRule, DefaultIsSameDomain)
{
    SyncRule r;
    EXPECT_FALSE(r.isCrossDomain());
    EXPECT_TRUE(r.visible(10, 11));
}

TEST(SyncChannel, FifoOrderAndVisibility)
{
    SyncChannel<int> ch(SyncRule(true, 300.0));
    ch.push(1, 1000);
    ch.push(2, 2000);
    EXPECT_EQ(ch.size(), 2u);
    EXPECT_FALSE(ch.frontVisible(1200));
    EXPECT_TRUE(ch.frontVisible(1400));
    EXPECT_EQ(ch.visibleCount(1400), 1u);
    EXPECT_EQ(ch.visibleCount(2400), 2u);
    EXPECT_EQ(ch.front(), 1);
    ch.pop();
    EXPECT_EQ(ch.front(), 2);
    ch.pop();
    EXPECT_TRUE(ch.empty());
}

TEST(SyncChannel, SameDomainVisibleNextTick)
{
    SyncChannel<int> ch(SyncRule(false, 300.0));
    ch.push(5, 1000);
    EXPECT_FALSE(ch.frontVisible(1000));
    EXPECT_TRUE(ch.frontVisible(1001));
}

TEST(SyncChannel, ClearEmpties)
{
    SyncChannel<int> ch(SyncRule(false, 0.0));
    ch.push(1, 0);
    ch.push(2, 0);
    ch.clear();
    EXPECT_TRUE(ch.empty());
}

TEST(CreditReturn, InitialCreditsAvailable)
{
    CreditReturnChannel c(SyncRule(true, 300.0), 4);
    EXPECT_EQ(c.credits(0), 4);
}

TEST(CreditReturn, TakeAndGiveWithSync)
{
    CreditReturnChannel c(SyncRule(true, 300.0), 2);
    c.take();
    c.take();
    EXPECT_EQ(c.credits(5000), 0);
    c.give(5000);
    // Not visible until the sync time elapses.
    EXPECT_EQ(c.credits(5200), 0);
    EXPECT_EQ(c.credits(5300), 1);
    c.give(6000);
    EXPECT_EQ(c.credits(10000), 2);
}

TEST(CreditReturn, ReturnsPreserveOrdering)
{
    CreditReturnChannel c(SyncRule(true, 100.0), 1);
    c.take();
    c.give(1000);
    c.give(2000);   // more gives than takes is the caller's business
    EXPECT_EQ(c.credits(1100), 1);
    EXPECT_EQ(c.credits(2100), 2);
}

// ---------------------------------------------------------------------
// SyncPort: the typed queue boundary the execution units consume
// through. Blocked probes are counted at the port.
// ---------------------------------------------------------------------

TEST(SyncPort, WriteLandingExactlyTsAfterSourceEdge)
{
    // A destination edge exactly Ts after the write is the first one
    // allowed to latch the value (paper: t_e - t_w >= T_s).
    SyncPort<int> port(SyncRule(true, 300.0));
    port.push(7, 1000);
    EXPECT_FALSE(port.probe(port[0], 1299));    // 1 ps short: blocked
    EXPECT_EQ(port.waits(), 1u);
    EXPECT_TRUE(port.probe(port[0], 1300));     // exactly Ts: visible
    EXPECT_EQ(port.waits(), 1u);                // success doesn't count
}

TEST(SyncPort, SameTickSourceAndDestEdgesNeverVisible)
{
    // Coincident source/destination edges can never transfer, even in
    // the degenerate same-domain rule: visibility requires a strictly
    // later destination edge.
    SyncPort<int> cross(SyncRule(true, 300.0));
    cross.push(1, 5000);
    EXPECT_FALSE(cross.probe(cross[0], 5000));
    EXPECT_EQ(cross.waits(), 1u);

    SyncPort<int> same{SyncRule(false, 0.0)};
    same.push(2, 5000);
    EXPECT_FALSE(same.probe(same[0], 5000));
    EXPECT_EQ(same.waits(), 1u);
}

TEST(SyncPort, SingletonClockPassthrough)
{
    // Singly clocked configuration: the same-domain rule collapses to
    // plain next-edge visibility, so the port adds no wait cycles.
    SyncPort<int> port{SyncRule(false, 0.0)};
    port.push(3, 1000);
    EXPECT_TRUE(port.probe(port[0], 1001));
    EXPECT_EQ(port.waits(), 0u);
}

TEST(SyncPort, EraseIfCompactsIssuedEntries)
{
    SyncPort<int> port{SyncRule(false, 0.0)};
    port.push(1, 10);
    port.push(2, 20);
    port.push(3, 30);
    port.eraseIf([](const SyncPort<int>::Entry &e) {
        return e.value == 2;
    });
    ASSERT_EQ(port.size(), 2u);
    EXPECT_EQ(port[0].value, 1);
    EXPECT_EQ(port[1].value, 3);
}

TEST(SyncPort, PeekDoesNotCount)
{
    SyncPort<int> port(SyncRule(true, 300.0));
    port.push(9, 1000);
    EXPECT_FALSE(port.peek(port[0], 1100));
    EXPECT_EQ(port.waits(), 0u);
}

// ---------------------------------------------------------------------
// SyncSignal / SyncSignalGate: single ready lines across a boundary.
// ---------------------------------------------------------------------

TEST(SyncSignal, UnassertedProbeIsNotAWait)
{
    SyncSignal sig(SyncRule(true, 300.0));
    EXPECT_FALSE(sig.probe(false, 0, 1000));    // nothing in flight
    EXPECT_EQ(sig.waits(), 0u);
    EXPECT_FALSE(sig.probe(true, 900, 1000));   // asserted, too early
    EXPECT_EQ(sig.waits(), 1u);
    EXPECT_TRUE(sig.probe(true, 700, 1000));
    EXPECT_EQ(sig.waits(), 1u);
}

TEST(SyncSignalGate, PerSourceRulesAndQuietProbe)
{
    SyncSignalGate gate;
    gate.setRule(Domain::Integer, SyncRule(true, 300.0));
    gate.setRule(Domain::FrontEnd, SyncRule(false, 0.0));

    // Cross-domain source honors its Ts; same-domain source is
    // next-edge.
    EXPECT_FALSE(gate.probe(Domain::Integer, 1000, 1200));
    EXPECT_TRUE(gate.probe(Domain::Integer, 1000, 1300));
    EXPECT_TRUE(gate.probe(Domain::FrontEnd, 1000, 1001));
    EXPECT_EQ(gate.waits(), 1u);

    // Spectator probes never count as stalls.
    EXPECT_FALSE(gate.probeQuiet(Domain::Integer, 2000, 2100));
    EXPECT_EQ(gate.waits(), 1u);
}

} // namespace
} // namespace mcd
