/**
 * @file
 * Tests for src/common: RNG, stats helpers, logging, types.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mcd {
namespace {

TEST(Types, PeriodConversion)
{
    EXPECT_DOUBLE_EQ(periodPs(1e9), 1000.0);
    EXPECT_DOUBLE_EQ(periodPs(250e6), 4000.0);
    EXPECT_DOUBLE_EQ(toSeconds(1'000'000'000'000ULL), 1.0);
    EXPECT_EQ(fromSeconds(1e-6), 1'000'000ULL);
    EXPECT_EQ(fromMicroseconds(15.0), 15'000'000ULL);
}

TEST(Types, DomainNames)
{
    EXPECT_STREQ(domainName(Domain::FrontEnd), "front-end");
    EXPECT_STREQ(domainShortName(Domain::Integer), "INT");
    EXPECT_STREQ(domainShortName(Domain::FloatingPoint), "FP");
    EXPECT_STREQ(domainShortName(Domain::LoadStore), "LS");
    EXPECT_EQ(numDomains, 4);
    EXPECT_EQ(domainIndex(Domain::LoadStore), 3);
}

TEST(Types, ScalableDomainsExcludeFrontEnd)
{
    for (Domain d : scalableDomains)
        EXPECT_NE(d, Domain::FrontEnd);
    EXPECT_EQ(std::size(scalableDomains), 3u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRangeBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformRange(-3.0, 5.0);
        ASSERT_GE(v, -3.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(5.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalClampedRespectsBounds)
{
    Rng r(17);
    for (int i = 0; i < 100000; ++i) {
        double v = r.normalClamped(0.0, 110.0, 3.0);
        ASSERT_GE(v, -330.0);
        ASSERT_LE(v, 330.0);
    }
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_FALSE(s.empty());
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStat, EmptyExtremaAreNaN)
{
    // 0.0 is a valid observed value, so an empty series must not
    // report it as an extremum.
    RunningStat s;
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    s.add(-2.5);
    EXPECT_DOUBLE_EQ(s.min(), -2.5);
    EXPECT_DOUBLE_EQ(s.max(), -2.5);
    s.reset();
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStat, Merge)
{
    RunningStat a;
    a.add(1.0);
    a.add(5.0);
    RunningStat b;
    b.add(-3.0);

    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);

    // Merging an empty shard changes nothing; merging into an empty
    // shard adopts the other's extrema.
    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);

    RunningStat c;
    c.merge(a);
    EXPECT_EQ(c.count(), 3u);
    EXPECT_DOUBLE_EQ(c.min(), -3.0);
    EXPECT_DOUBLE_EQ(c.max(), 5.0);
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.123), "12.3%");
    EXPECT_EQ(formatPercent(-0.05, 0), "-5%");
    EXPECT_EQ(formatPercent(0.2001, 2), "20.01%");
}

TEST(Format, MHz)
{
    EXPECT_EQ(formatMHz(1e9), "1000 MHz");
    EXPECT_EQ(formatMHz(250e6), "250 MHz");
}

TEST(Format, Time)
{
    EXPECT_EQ(formatTime(500), "500 ps");
    EXPECT_EQ(formatTime(1'500), "1.50 ns");
    EXPECT_EQ(formatTime(2'500'000), "2.50 us");
    EXPECT_EQ(formatTime(3'000'000'000ULL), "3.000 ms");
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"xx", "y"});
    std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("xx"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Log, PanicThrows)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Log, AssertHelper)
{
    EXPECT_NO_THROW(mcdAssert(true, "fine"));
    EXPECT_THROW(mcdAssert(false, "nope"), PanicError);
}

} // namespace
} // namespace mcd
