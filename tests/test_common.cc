/**
 * @file
 * Tests for src/common: RNG, stats helpers, logging, types.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/random.hh"
#include "common/ring_buffer.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/inst_window.hh"

namespace mcd {
namespace {

TEST(Types, PeriodConversion)
{
    EXPECT_DOUBLE_EQ(periodPs(1e9), 1000.0);
    EXPECT_DOUBLE_EQ(periodPs(250e6), 4000.0);
    EXPECT_DOUBLE_EQ(toSeconds(1'000'000'000'000ULL), 1.0);
    EXPECT_EQ(fromSeconds(1e-6), 1'000'000ULL);
    EXPECT_EQ(fromMicroseconds(15.0), 15'000'000ULL);
}

TEST(Types, DomainNames)
{
    EXPECT_STREQ(domainName(Domain::FrontEnd), "front-end");
    EXPECT_STREQ(domainShortName(Domain::Integer), "INT");
    EXPECT_STREQ(domainShortName(Domain::FloatingPoint), "FP");
    EXPECT_STREQ(domainShortName(Domain::LoadStore), "LS");
    EXPECT_EQ(numDomains, 4);
    EXPECT_EQ(domainIndex(Domain::LoadStore), 3);
}

TEST(Types, ScalableDomainsExcludeFrontEnd)
{
    for (Domain d : scalableDomains)
        EXPECT_NE(d, Domain::FrontEnd);
    EXPECT_EQ(std::size(scalableDomains), 3u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRangeBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformRange(-3.0, 5.0);
        ASSERT_GE(v, -3.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(5.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalClampedRespectsBounds)
{
    Rng r(17);
    for (int i = 0; i < 100000; ++i) {
        double v = r.normalClamped(0.0, 110.0, 3.0);
        ASSERT_GE(v, -330.0);
        ASSERT_LE(v, 330.0);
    }
}

TEST(RngStreams, SplitmixIsDeterministicAndAdvancesState)
{
    std::uint64_t s1 = 42, s2 = 42;
    std::uint64_t a = splitmix64(s1);
    std::uint64_t b = splitmix64(s2);
    EXPECT_EQ(a, b);
    EXPECT_NE(s1, 42u);         // state advanced
    EXPECT_NE(splitmix64(s1), a);
}

TEST(RngStreams, NamedStreamsAreIndependent)
{
    // Different stream names from one root must decorrelate; the
    // same (root, name) pair must be stable across calls.
    std::uint64_t root = 7;
    EXPECT_EQ(streamSeed(root, "fuzz.data"),
              streamSeed(root, "fuzz.data"));
    EXPECT_NE(streamSeed(root, "fuzz.data"),
              streamSeed(root, "fuzz.checksum"));
    EXPECT_NE(streamSeed(root, "fuzz.data"),
              streamSeed(root + 1, "fuzz.data"));

    std::set<std::uint64_t> seeds;
    for (std::uint64_t r = 0; r < 100; ++r)
        for (const char *name : {"a", "b", "c"})
            seeds.insert(streamSeed(r, name));
    EXPECT_EQ(seeds.size(), 300u);
}

TEST(RngStreams, IndexedStreamsDecorrelate)
{
    std::uint64_t root = 11;
    EXPECT_EQ(streamSeedAt(root, "fuzz.workload", 3),
              streamSeedAt(root, "fuzz.workload", 3));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(streamSeedAt(root, "fuzz.workload", i));
    EXPECT_EQ(seeds.size(), 1000u);

    // Adjacent indices must not produce correlated draws downstream.
    Rng a(streamSeedAt(root, "s", 0));
    Rng b(streamSeedAt(root, "s", 1));
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(RngStreams, StreamRngMatchesManualSeeding)
{
    Rng a = streamRng(5, "telemetry.jitter");
    Rng b(streamSeed(5, "telemetry.jitter"));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_FALSE(s.empty());
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStat, EmptyExtremaAreNaN)
{
    // 0.0 is a valid observed value, so an empty series must not
    // report it as an extremum.
    RunningStat s;
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    s.add(-2.5);
    EXPECT_DOUBLE_EQ(s.min(), -2.5);
    EXPECT_DOUBLE_EQ(s.max(), -2.5);
    s.reset();
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStat, Merge)
{
    RunningStat a;
    a.add(1.0);
    a.add(5.0);
    RunningStat b;
    b.add(-3.0);

    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);

    // Merging an empty shard changes nothing; merging into an empty
    // shard adopts the other's extrema.
    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);

    RunningStat c;
    c.merge(a);
    EXPECT_EQ(c.count(), 3u);
    EXPECT_DOUBLE_EQ(c.min(), -3.0);
    EXPECT_DOUBLE_EQ(c.max(), 5.0);
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.123), "12.3%");
    EXPECT_EQ(formatPercent(-0.05, 0), "-5%");
    EXPECT_EQ(formatPercent(0.2001, 2), "20.01%");
}

TEST(Format, MHz)
{
    EXPECT_EQ(formatMHz(1e9), "1000 MHz");
    EXPECT_EQ(formatMHz(250e6), "250 MHz");
}

TEST(Format, Time)
{
    EXPECT_EQ(formatTime(500), "500 ps");
    EXPECT_EQ(formatTime(1'500), "1.50 ns");
    EXPECT_EQ(formatTime(2'500'000), "2.50 us");
    EXPECT_EQ(formatTime(3'000'000'000ULL), "3.000 ms");
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"xx", "y"});
    std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("xx"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Log, PanicThrows)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Log, AssertHelper)
{
    EXPECT_NO_THROW(mcdAssert(true, "fine"));
    EXPECT_THROW(mcdAssert(false, "nope"), PanicError);
}

TEST(RingDeque, FifoOrderAcrossWraparound)
{
    RingDeque<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), 4u);

    // Cycle through the ring several times its capacity: the FIFO
    // order must hold across every wraparound, with no growth.
    int nextPush = 0;
    int nextPop = 0;
    for (int round = 0; round < 5; ++round) {
        while (q.size() < 3)
            q.push_back(nextPush++);
        EXPECT_EQ(q.front(), nextPop);
        EXPECT_EQ(q.back(), nextPush - 1);
        for (std::size_t i = 0; i < q.size(); ++i)
            EXPECT_EQ(q[i], nextPop + static_cast<int>(i));
        while (!q.empty()) {
            EXPECT_EQ(q.front(), nextPop++);
            q.pop_front();
        }
    }
    EXPECT_EQ(q.grows(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
}

TEST(RingDeque, GrowthIsCountedAndPreservesOrder)
{
    RingDeque<int> q(2);
    // Mis-align head so growth has to re-lay a wrapped span.
    q.push_back(-1);
    q.pop_front();
    for (int i = 0; i < 10; ++i)
        q.push_back(i);
    EXPECT_GT(q.grows(), 0u);
    EXPECT_GE(q.capacity(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }

    // reserve() never counts as a growth.
    RingDeque<int> r;
    r.reserve(16);
    for (int i = 0; i < 16; ++i)
        r.push_back(i);
    EXPECT_EQ(r.grows(), 0u);
}

TEST(RingDeque, ClearRewindsWithoutShrinking)
{
    RingDeque<int> q(4);
    q.push_back(1);
    q.push_back(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), 4u);
    q.push_back(7);
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.back(), 7);
}

TEST(InstWindow, StableAddressesAndHighWater)
{
    InstWindow w(4);
    EXPECT_EQ(w.capacity(), 4u);

    DynInst *a = w.emplace_back();
    DynInst *b = w.emplace_back();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(a, b);
    // Slots arrive reset, with the cold record bound.
    ASSERT_NE(a->cold, nullptr);
    ASSERT_NE(a->cold, b->cold);
    a->cold->pc = 0x1234;

    // Addresses stay stable while the instruction is in flight, and
    // slots recycle after pop_front without invalidating the rest.
    w.pop_front();                      // retire a
    DynInst *c = w.emplace_back();
    DynInst *d = w.emplace_back();
    EXPECT_EQ(w.size(), 3u);
    EXPECT_EQ(&w.front(), b);
    EXPECT_NE(c, b);
    EXPECT_NE(d, b);

    EXPECT_EQ(w.highWater(), 3u);       // never held more than 3
    w.emplace_back();
    EXPECT_EQ(w.highWater(), 4u);

    // Overflow past the structural bound is a panic, not a resize:
    // DynInst* stability is the whole point of the arena.
    EXPECT_THROW(w.emplace_back(), PanicError);
}

TEST(InstWindow, RecycledSlotsAreReset)
{
    InstWindow w(2);
    DynInst *a = w.emplace_back();
    a->cold->pc = 99;
    a->seq = 42;
    a->dispatched = true;
    w.pop_front();
    // The same physical slot comes back clean.
    DynInst *b = w.emplace_back();
    EXPECT_EQ(b, a);
    EXPECT_EQ(b->cold->pc, 0u);
    EXPECT_EQ(b->seq, 0u);
    EXPECT_FALSE(b->dispatched);
    w.pop_front();
    EXPECT_TRUE(w.empty());
}

} // namespace
} // namespace mcd
