/**
 * @file
 * Tests for the time-weighted frequency accumulator shared by the run
 * loop's per-domain bookkeeping and the telemetry sampler series
 * (obs/freq_accum.hh).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/types.hh"
#include "obs/freq_accum.hh"

namespace mcd {
namespace {

using obs::FreqAccumulator;

TEST(FreqAccumulator, SingleEdgeHasNoSpan)
{
    FreqAccumulator a(1000, 1e9);
    EXPECT_EQ(a.span(), 0u);
    EXPECT_DOUBLE_EQ(a.average(), 1e9);    // falls back to current f
    EXPECT_DOUBLE_EQ(a.minimum(), 1e9);
    EXPECT_DOUBLE_EQ(a.maximum(), 1e9);
}

TEST(FreqAccumulator, ConstantFrequencyAveragesToItself)
{
    FreqAccumulator a(0, 1e9);
    for (Tick t = 1000; t <= 10000; t += 1000)
        a.edge(t, 1e9);
    EXPECT_EQ(a.span(), 10000u);
    EXPECT_DOUBLE_EQ(a.average(), 1e9);
    EXPECT_EQ(a.firstEdge(), 0u);
    EXPECT_EQ(a.lastEdge(), 10000u);
}

TEST(FreqAccumulator, TimeWeightedMean)
{
    // 1 GHz for 3000 ps, then 500 MHz for 1000 ps:
    // (1e9*3000 + 0.5e9*1000) / 4000 = 875 MHz.
    FreqAccumulator a(0, 1e9);
    a.edge(3000, 1e9);
    a.edge(4000, 0.5e9);
    EXPECT_DOUBLE_EQ(a.average(), 875e6);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.5e9);
    EXPECT_DOUBLE_EQ(a.maximum(), 1e9);
}

TEST(FreqAccumulator, WeightsIntervalWithEdgeFrequency)
{
    // The edge's frequency weights the interval ENDING at that edge
    // (the frequency in force after the previous edge's DVFS
    // service): switching to 2 GHz at t=1000 means [0,1000] is still
    // 2 GHz-weighted only if the edge reports 2e9.
    FreqAccumulator a(0, 1e9);
    a.edge(1000, 2e9);
    EXPECT_DOUBLE_EQ(a.average(), 2e9);
}

TEST(FreqAccumulator, FromSeriesMatchesEdgeAccumulation)
{
    // The sampler's trace series and the run loop's edge stream must
    // agree through one definition of "average frequency".
    std::vector<FreqTracePoint> series = {
        {2000, 0.8e9},
        {5000, 1.2e9},
    };
    FreqAccumulator fromSeries =
        FreqAccumulator::fromSeries(1e9, series, 0, 8000);

    FreqAccumulator edges(0, 1e9);
    edges.edge(2000, 1e9);      // [0,2000] at the initial 1 GHz
    edges.edge(5000, 0.8e9);    // [2000,5000] at 0.8 GHz
    edges.edge(8000, 1.2e9);    // [5000,8000] at 1.2 GHz

    EXPECT_DOUBLE_EQ(fromSeries.average(), edges.average());
    EXPECT_DOUBLE_EQ(fromSeries.minimum(), 0.8e9);
    EXPECT_DOUBLE_EQ(fromSeries.maximum(), 1.2e9);
    EXPECT_EQ(fromSeries.span(), 8000u);
}

TEST(FreqAccumulator, FromSeriesClampsOutsideWindow)
{
    std::vector<FreqTracePoint> series = {
        {100, 2e9},     // before the window: becomes the initial f
        {4000, 1e9},
        {9000, 3e9},    // past the window end: clamped to end
    };
    FreqAccumulator a = FreqAccumulator::fromSeries(1e9, series, 1000, 6000);
    // [1000,4000] at 2 GHz, [4000,6000] at 1 GHz.
    EXPECT_DOUBLE_EQ(a.average(), (2e9 * 3000 + 1e9 * 2000) / 5000.0);
    EXPECT_EQ(a.lastEdge(), 6000u);
    // The 3 GHz point still registers in the min/max envelope.
    EXPECT_DOUBLE_EQ(a.maximum(), 3e9);
    EXPECT_DOUBLE_EQ(a.minimum(), 1e9);
}

TEST(FreqAccumulator, FromSeriesEmptySeriesIsConstant)
{
    FreqAccumulator a = FreqAccumulator::fromSeries(1e9, {}, 500, 1500);
    EXPECT_DOUBLE_EQ(a.average(), 1e9);
    EXPECT_EQ(a.span(), 1000u);
}

} // namespace
} // namespace mcd
