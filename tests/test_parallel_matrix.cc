/**
 * @file
 * Determinism tests for the parallel experiment engine: a matrix run
 * fanned across worker threads must be bit-identical — struct fields
 * and cache-file bytes — to the strictly serial run.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace mcd {
namespace {

namespace fs = std::filesystem;

void
expectRunsIdentical(const RunResult &a, const RunResult &b,
                    const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ipc, b.ipc);                    // exact, not near
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.energyDelay, b.energyDelay);
    for (int d = 0; d < numDomains; ++d) {
        EXPECT_EQ(a.domains[d].cycles, b.domains[d].cycles);
        EXPECT_EQ(a.domains[d].energy, b.domains[d].energy);
        EXPECT_EQ(a.domains[d].avgFrequency, b.domains[d].avgFrequency);
        EXPECT_EQ(a.domains[d].minFrequency, b.domains[d].minFrequency);
        EXPECT_EQ(a.domains[d].maxFrequency, b.domains[d].maxFrequency);
        EXPECT_EQ(a.domains[d].reconfigurations,
                  b.domains[d].reconfigurations);
    }
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ParallelMatrix, ParallelRunBitIdenticalToSerial)
{
    const std::vector<std::string> names{"adpcm", "mst"};

    fs::path serialDir = fs::temp_directory_path() / "mcd-par-serial";
    fs::path parDir = fs::temp_directory_path() / "mcd-par-jobs4";
    fs::remove_all(serialDir);
    fs::remove_all(parDir);

    ExperimentConfig ecSerial;
    ecSerial.cacheDir = serialDir.string();
    auto serial = runMatrix(ecSerial, names, /*jobs=*/1);

    ExperimentConfig ecPar = ecSerial;
    ecPar.cacheDir = parDir.string();
    auto par = runMatrix(ecPar, names, /*jobs=*/4);

    ASSERT_EQ(serial.size(), names.size());
    ASSERT_EQ(par.size(), names.size());

    for (std::size_t i = 0; i < names.size(); ++i) {
        SCOPED_TRACE(names[i]);
        EXPECT_EQ(serial[i].name, names[i]);    // workload order kept
        EXPECT_EQ(par[i].name, names[i]);
        expectRunsIdentical(serial[i].baseline, par[i].baseline,
                            "baseline");
        expectRunsIdentical(serial[i].mcdBaseline, par[i].mcdBaseline,
                            "mcdBaseline");
        ASSERT_EQ(serial[i].legs.size(), par[i].legs.size());
        for (std::size_t l = 0; l < serial[i].legs.size(); ++l) {
            EXPECT_EQ(serial[i].legs[l].spec.name,
                      par[i].legs[l].spec.name);
            expectRunsIdentical(serial[i].legs[l].run,
                                par[i].legs[l].run,
                                serial[i].legs[l].spec.name.c_str());
            EXPECT_EQ(serial[i].legs[l].scheduleSize,
                      par[i].legs[l].scheduleSize);
        }
        EXPECT_EQ(serial[i].globalFrequency, par[i].globalFrequency);
    }

    // The cache files written by the two runs must match byte for
    // byte, and no temporary files may be left behind.
    ExperimentRunner keyOracle(ecSerial);
    for (const std::string &n : names) {
        SCOPED_TRACE(n);
        fs::path rel =
            fs::path(keyOracle.cachePath(n)).filename();
        std::string a = slurp(serialDir / rel);
        std::string b = slurp(parDir / rel);
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b);
    }
    for (const fs::path &dir : {serialDir, parDir}) {
        for (const auto &e : fs::directory_iterator(dir))
            EXPECT_EQ(e.path().extension(), ".txt") << e.path();
    }

    fs::remove_all(serialDir);
    fs::remove_all(parDir);
}

TEST(ParallelMatrix, TaskGraphBenchmarkMatchesSerialBenchmark)
{
    // One benchmark through the leg-level task graph (shared pool)
    // vs. the plain serial entry point, no caching.
    ExperimentConfig ec;
    ExperimentRunner runner(ec);
    BenchmarkResults serial = runner.runBenchmark("adpcm");

    ThreadPool pool(3);
    BenchmarkResults par = runner.runBenchmark("adpcm", pool);

    expectRunsIdentical(serial.baseline, par.baseline, "baseline");
    expectRunsIdentical(serial.mcdBaseline, par.mcdBaseline,
                        "mcdBaseline");
    ASSERT_EQ(serial.legs.size(), par.legs.size());
    for (std::size_t l = 0; l < serial.legs.size(); ++l) {
        expectRunsIdentical(serial.legs[l].run, par.legs[l].run,
                            serial.legs[l].spec.name.c_str());
        EXPECT_EQ(serial.legs[l].scheduleSize, par.legs[l].scheduleSize);
    }
    EXPECT_EQ(serial.globalFrequency, par.globalFrequency);
}

} // namespace
} // namespace mcd
