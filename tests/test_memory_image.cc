/**
 * @file
 * Tests for the sparse paged memory image.
 */

#include <gtest/gtest.h>

#include "isa/memory_image.hh"

namespace mcd {
namespace {

TEST(MemoryImage, UnwrittenReadsZero)
{
    MemoryImage m;
    EXPECT_EQ(m.readWord(0x1000), 0u);
    EXPECT_EQ(m.readWord(0xdeadbeef0000ULL & ~7ULL), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(MemoryImage, WriteReadRoundtrip)
{
    MemoryImage m;
    m.writeWord(0x2000, 0x1122334455667788ULL);
    EXPECT_EQ(m.readWord(0x2000), 0x1122334455667788ULL);
    EXPECT_EQ(m.pageCount(), 1u);
}

TEST(MemoryImage, AdjacentWordsIndependent)
{
    MemoryImage m;
    m.writeWord(0x100, 1);
    m.writeWord(0x108, 2);
    m.writeWord(0x0f8, 3);
    EXPECT_EQ(m.readWord(0x100), 1u);
    EXPECT_EQ(m.readWord(0x108), 2u);
    EXPECT_EQ(m.readWord(0x0f8), 3u);
}

TEST(MemoryImage, CrossPageWrites)
{
    MemoryImage m;
    m.writeWord(0x0ff8, 0xa);   // last word of page 0
    m.writeWord(0x1000, 0xb);   // first word of page 1
    EXPECT_EQ(m.readWord(0x0ff8), 0xaULL);
    EXPECT_EQ(m.readWord(0x1000), 0xbULL);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(MemoryImage, Word32Halves)
{
    MemoryImage m;
    m.writeWord32(0x10, 0x11111111);
    m.writeWord32(0x14, 0x22222222);
    EXPECT_EQ(m.readWord32(0x10), 0x11111111u);
    EXPECT_EQ(m.readWord32(0x14), 0x22222222u);
    EXPECT_EQ(m.readWord(0x10), 0x2222222211111111ULL);
    // Overwrite one half; the other is preserved.
    m.writeWord32(0x10, 0x33333333);
    EXPECT_EQ(m.readWord32(0x14), 0x22222222u);
    EXPECT_EQ(m.readWord(0x10), 0x2222222233333333ULL);
}

TEST(MemoryImage, DoubleRoundtrip)
{
    MemoryImage m;
    m.writeDouble(0x40, 3.14159);
    EXPECT_DOUBLE_EQ(m.readDouble(0x40), 3.14159);
    m.writeDouble(0x48, -0.0);
    EXPECT_DOUBLE_EQ(m.readDouble(0x48), -0.0);
}

TEST(MemoryImage, OverlayCopiesNonzero)
{
    MemoryImage a, b;
    b.writeWord(0x100, 7);
    b.writeWord(0x2000, 9);
    a.writeWord(0x108, 5);
    a.overlay(b);
    EXPECT_EQ(a.readWord(0x100), 7u);
    EXPECT_EQ(a.readWord(0x108), 5u);
    EXPECT_EQ(a.readWord(0x2000), 9u);
}

TEST(MemoryImage, OverlayPreservesDestinationWhenSourceZero)
{
    MemoryImage a, b;
    a.writeWord(0x100, 5);
    b.writeWord(0x108, 1);  // same page, different word
    a.overlay(b);
    EXPECT_EQ(a.readWord(0x100), 5u);
    EXPECT_EQ(a.readWord(0x108), 1u);
}

} // namespace
} // namespace mcd
