/**
 * @file
 * Tests for clock domains and the DVFS operating-point table.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "clock/clock_domain.hh"
#include "clock/operating_points.hh"
#include "common/log.hh"

namespace mcd {
namespace {

TEST(ClockDomain, EdgesAreStrictlyMonotone)
{
    ClockDomain c(Domain::Integer, 1e9, 42);
    Tick prev = c.now();
    for (int i = 0; i < 100000; ++i) {
        Tick t = c.advance();
        ASSERT_GT(t, prev);
        prev = t;
    }
}

TEST(ClockDomain, MeanPeriodMatchesFrequency)
{
    ClockDomain c(Domain::Integer, 1e9, 7);
    Tick start = c.now();
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        c.advance();
    double mean = static_cast<double>(c.now() - start) / n;
    EXPECT_NEAR(mean, 1000.0, 2.0);
}

TEST(ClockDomain, JitterSpreadMatchesSigma)
{
    ClockDomain c(Domain::Integer, 1e9, 11);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    Tick prev = c.now();
    for (int i = 0; i < n; ++i) {
        Tick t = c.advance();
        double d = static_cast<double>(t - prev) - 1000.0;
        sum += d;
        sq += d * d;
        prev = t;
    }
    double sigma = std::sqrt(sq / n - (sum / n) * (sum / n));
    EXPECT_NEAR(sigma, defaultJitterSigmaPs, 8.0);
}

TEST(ClockDomain, ZeroJitterIsExact)
{
    ClockDomain c(Domain::Integer, 1e9, 3, 0.0, false);
    Tick prev = c.now();
    for (int i = 0; i < 100; ++i) {
        Tick t = c.advance();
        EXPECT_EQ(t - prev, 1000u);
        prev = t;
    }
}

TEST(ClockDomain, FrequencyChangeAffectsLaterEdges)
{
    ClockDomain c(Domain::Integer, 1e9, 3, 0.0, false);
    c.advance();
    c.setFrequency(500e6);
    // The already-scheduled edge keeps the old period...
    Tick a = c.advance();
    // ...and the next one uses the new one.
    Tick b = c.advance();
    EXPECT_EQ(b - a, 2000u);
    EXPECT_DOUBLE_EQ(c.period(), 2000.0);
}

TEST(ClockDomain, RandomPhaseDiffersAcrossSeeds)
{
    ClockDomain a(Domain::Integer, 1e9, 1);
    ClockDomain b(Domain::Integer, 1e9, 2);
    EXPECT_NE(a.now(), b.now());
}

TEST(ClockDomain, CycleCounting)
{
    ClockDomain c(Domain::FloatingPoint, 1e9, 5);
    EXPECT_EQ(c.cycles(), 0u);
    for (int i = 0; i < 17; ++i)
        c.advance();
    EXPECT_EQ(c.cycles(), 17u);
}

TEST(ClockDomain, RejectsNonPositiveFrequency)
{
    EXPECT_THROW(ClockDomain(Domain::Integer, 0.0, 1), FatalError);
    ClockDomain c(Domain::Integer, 1e9, 1);
    EXPECT_THROW(c.setFrequency(-1.0), FatalError);
}

TEST(ClockDomain, VoltageAccessors)
{
    ClockDomain c(Domain::Integer, 1e9, 1);
    c.setVoltage(0.9);
    EXPECT_DOUBLE_EQ(c.voltage(), 0.9);
}

// -------------------------------------------------------------------
// DvfsTable.
// -------------------------------------------------------------------

TEST(DvfsTable, PaperDefaults)
{
    DvfsTable t;
    EXPECT_EQ(t.numPoints(), 32);
    EXPECT_DOUBLE_EQ(t.slowest().frequency, 250e6);
    EXPECT_DOUBLE_EQ(t.fastest().frequency, 1e9);
    EXPECT_DOUBLE_EQ(t.slowest().voltage, 0.65);
    EXPECT_DOUBLE_EQ(t.fastest().voltage, 1.2);
}

TEST(DvfsTable, PointsAreLinearAndIncreasing)
{
    DvfsTable t;
    for (int i = 1; i < t.numPoints(); ++i) {
        EXPECT_GT(t.point(i).frequency, t.point(i - 1).frequency);
        EXPECT_GT(t.point(i).voltage, t.point(i - 1).voltage);
    }
    double fstep = t.point(1).frequency - t.point(0).frequency;
    double vstep = t.point(1).voltage - t.point(0).voltage;
    EXPECT_NEAR(fstep, 750e6 / 31, 1.0);
    EXPECT_NEAR(vstep, 0.55 / 31, 1e-9);
}

class DvfsTablePoints : public ::testing::TestWithParam<int>
{};

TEST_P(DvfsTablePoints, VoltageMapConsistency)
{
    DvfsTable t;
    const OperatingPoint &p = t.point(GetParam());
    EXPECT_NEAR(t.voltageFor(p.frequency), p.voltage, 1e-9);
    EXPECT_NEAR(t.frequencyFor(p.voltage), p.frequency, 1.0);
    EXPECT_EQ(t.indexNearest(p.frequency), GetParam());
    EXPECT_EQ(t.indexAtLeast(p.frequency), GetParam());
}

INSTANTIATE_TEST_SUITE_P(All32, DvfsTablePoints, ::testing::Range(0, 32));

TEST(DvfsTable, VoltageClamping)
{
    DvfsTable t;
    EXPECT_DOUBLE_EQ(t.voltageFor(100e6), 0.65);
    EXPECT_DOUBLE_EQ(t.voltageFor(2e9), 1.2);
    EXPECT_DOUBLE_EQ(t.frequencyFor(0.1), 250e6);
    EXPECT_DOUBLE_EQ(t.frequencyFor(2.0), 1e9);
}

TEST(DvfsTable, IndexAtLeastRounding)
{
    DvfsTable t;
    // A frequency between two points must round up.
    Hertz f = (t.point(3).frequency + t.point(4).frequency) / 2;
    EXPECT_EQ(t.indexAtLeast(f), 4);
    EXPECT_EQ(t.indexAtLeast(2e9), 31);
    EXPECT_EQ(t.indexAtLeast(0.0), 0);
}

TEST(DvfsTable, CustomTableValidation)
{
    EXPECT_THROW(DvfsTable(1e9, 1e9, 0.5, 1.0, 4), FatalError);
    EXPECT_THROW(DvfsTable(1e8, 1e9, 0.5, 1.0, 1), FatalError);
    DvfsTable t(1e8, 1e9, 0.5, 1.0, 10);
    EXPECT_EQ(t.numPoints(), 10);
}

} // namespace
} // namespace mcd
