#include "cache.hh"

#include "common/log.hh"

namespace mcd {

namespace {

int
log2i(std::uint64_t v)
{
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

bool
isPow2(std::uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params)
    : cfg(params)
{
    if (!isPow2(cfg.sizeBytes) || !isPow2(cfg.lineBytes))
        fatal("cache size and line size must be powers of two");
    if (cfg.associativity < 1)
        fatal("cache associativity must be >= 1");
    std::uint64_t numLines = cfg.sizeBytes / cfg.lineBytes;
    if (numLines % cfg.associativity != 0)
        fatal("cache lines not divisible by associativity");
    sets = static_cast<int>(numLines / cfg.associativity);
    if (!isPow2(static_cast<std::uint64_t>(sets)))
        fatal("cache set count must be a power of two");
    lineShift = log2i(cfg.lineBytes);
    lines.resize(numLines);
}

std::uint64_t
Cache::setIndex(std::uint64_t addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr >> lineShift;
}

bool
Cache::access(std::uint64_t addr, bool is_write)
{
    ++stat.accesses;
    ++useClock;
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = &lines[set * cfg.associativity];

    for (int w = 0; w < cfg.associativity; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            ++stat.hits;
            l.lru = useClock;
            if (is_write)
                l.dirty = true;
            return true;
        }
    }

    ++stat.misses;
    // Choose victim: invalid way first, else least recently used.
    Line *victim = base;
    for (int w = 0; w < cfg.associativity; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lru < victim->lru)
            victim = &l;
    }
    if (victim->valid && victim->dirty)
        ++stat.writebacks;
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = useClock;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    const Line *base = &lines[set * cfg.associativity];
    for (int w = 0; w < cfg.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    for (Line &l : lines)
        l = Line();
    useClock = 0;
    stat = CacheStats();
}

} // namespace mcd
