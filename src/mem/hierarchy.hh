/**
 * @file
 * The memory hierarchy: L1 I-cache (front-end domain), L1 D-cache and
 * unified L2 (load/store domain), and the always-full-speed main
 * memory interface (the paper's external fifth domain).
 *
 * Latency is computed on the absolute picosecond axis using the
 * *current* period of the owning clock domain, so scaling the
 * load/store domain slows cache service exactly as in the paper, while
 * DRAM latency stays fixed in wall time. An instruction-cache miss
 * crosses from the front-end into the load/store domain (and back) and
 * pays the synchronization time both ways.
 */

#ifndef MCD_MEM_HIERARCHY_HH
#define MCD_MEM_HIERARCHY_HH

#include <cstdint>

#include "clock/clock_domain.hh"
#include "clock/sync.hh"
#include "mem/cache.hh"

namespace mcd {

/** Hierarchy-wide parameters (Table 1 defaults). */
struct MemParams
{
    CacheParams l1i{"L1I", 64 * 1024, 2, 64, 2};
    CacheParams l1d{"L1D", 64 * 1024, 2, 64, 2};
    CacheParams l2{"L2", 1024 * 1024, 1, 64, 12};
    double dramLatencyNs = 80.0;    //!< main-memory access latency

    /**
     * In the MCD configurations main memory is the always-full-speed
     * external fifth domain (fixed wall-clock latency). The *global*
     * voltage-scaling configuration follows the paper's
     * SimpleScalar-based setup, where memory latency is expressed in
     * core cycles and therefore scales with the single clock.
     */
    bool dramScalesWithClock = false;
};

/** Which levels an access touched (for power accounting). */
struct MemAccessResult
{
    Tick ready = 0;     //!< absolute completion time
    bool l1Hit = false;
    bool l2Accessed = false;
    bool l2Hit = false;
    bool dramAccessed = false;
    /** Fixed main-memory portion of the latency: does not scale with
     *  any on-chip clock (the external fifth domain). */
    Tick dramTime = 0;
};

/**
 * Timing façade over the three caches and DRAM.
 */
class MemoryHierarchy
{
  public:
    /**
     * @param params geometry and latencies
     * @param fe_clock front-end domain clock (drives the L1I)
     * @param ls_clock load/store domain clock (drives L1D and L2)
     * @param sync rule applied when an I-miss crosses into the
     *        load/store domain and back
     */
    MemoryHierarchy(const MemParams &params, const ClockDomain &fe_clock,
                    const ClockDomain &ls_clock, SyncRule sync);

    /** Fetch access beginning at front-end edge time @p now. */
    MemAccessResult instFetch(std::uint64_t addr, Tick now);

    /** Data access beginning at load/store edge time @p now. */
    MemAccessResult dataAccess(std::uint64_t addr, bool is_write,
                               Tick now);

    Cache &l1i() { return icache; }
    Cache &l1d() { return dcache; }
    Cache &l2() { return l2cache; }
    const Cache &l1i() const { return icache; }
    const Cache &l1d() const { return dcache; }
    const Cache &l2() const { return l2cache; }

    /** Invalidate all caches (between runs). */
    void reset();

  private:
    Tick l2AndBelow(std::uint64_t addr, bool is_write, Tick start,
                    MemAccessResult &r);

    MemParams cfg;
    const ClockDomain &feClock;
    const ClockDomain &lsClock;
    SyncRule syncRule;
    Cache icache;
    Cache dcache;
    Cache l2cache;
    Tick dramLatency;
};

} // namespace mcd

#endif // MCD_MEM_HIERARCHY_HH
