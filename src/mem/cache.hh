/**
 * @file
 * Timing-model caches: set-associative, LRU, write-back/write-allocate.
 *
 * The simulator is oracle-driven, so caches track tags only (no data);
 * hit/miss outcomes and writeback counts feed the timing and power
 * models. Geometry defaults follow paper Table 1: 64 KB 2-way L1s and
 * a 1 MB direct-mapped unified L2 with 64-byte lines.
 */

#ifndef MCD_MEM_CACHE_HH
#define MCD_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mcd {

/** Geometry and naming for one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    int associativity = 2;
    int lineBytes = 64;
    int latencyCycles = 2;  //!< hit latency in its domain's cycles
};

/** Access outcome counters for one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/**
 * A tag-only set-associative cache with true-LRU replacement.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Perform one access.
     *
     * @param addr byte address
     * @param is_write true for stores (marks the line dirty)
     * @return true on hit
     */
    bool access(std::uint64_t addr, bool is_write);

    /** Probe without updating state (test/debug hook). */
    bool probe(std::uint64_t addr) const;

    /** Invalidate everything (between runs). */
    void reset();

    const CacheParams &params() const { return cfg; }
    const CacheStats &stats() const { return stat; }
    int numSets() const { return sets; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;  //!< larger = more recently used
    };

    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    CacheParams cfg;
    int sets;
    int lineShift;
    std::vector<Line> lines;    //!< sets * associativity, row-major
    std::uint64_t useClock = 0;
    CacheStats stat;
};

} // namespace mcd

#endif // MCD_MEM_CACHE_HH
