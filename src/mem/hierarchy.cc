#include "hierarchy.hh"

namespace mcd {

MemoryHierarchy::MemoryHierarchy(const MemParams &params,
                                 const ClockDomain &fe_clock,
                                 const ClockDomain &ls_clock,
                                 SyncRule sync)
    : cfg(params), feClock(fe_clock), lsClock(ls_clock), syncRule(sync),
      icache(params.l1i), dcache(params.l1d), l2cache(params.l2),
      dramLatency(static_cast<Tick>(params.dramLatencyNs * 1e3))
{}

Tick
MemoryHierarchy::l2AndBelow(std::uint64_t addr, bool is_write, Tick start,
                            MemAccessResult &r)
{
    r.l2Accessed = true;
    Tick t = start +
        static_cast<Tick>(cfg.l2.latencyCycles * lsClock.period());
    if (l2cache.access(addr, is_write)) {
        r.l2Hit = true;
        return t;
    }
    r.dramAccessed = true;
    Tick lat = dramLatency;
    if (cfg.dramScalesWithClock) {
        // Global-scaling configuration: memory latency is a fixed
        // cycle count of the (single) clock.
        lat = static_cast<Tick>(cfg.dramLatencyNs * 1e3 *
                                (1e9 / lsClock.frequency()));
    }
    r.dramTime = lat;
    return t + lat;
}

MemAccessResult
MemoryHierarchy::instFetch(std::uint64_t addr, Tick now)
{
    // Completion times are encoded half a delivering-clock period
    // early: "ready at the k-th edge" compares robustly under jitter.
    MemAccessResult r;
    Tick t = now + static_cast<Tick>(
        (cfg.l1i.latencyCycles - 0.5) * feClock.period());
    if (icache.access(addr, false)) {
        r.l1Hit = true;
        r.ready = t;
        return r;
    }
    t = now +
        static_cast<Tick>(cfg.l1i.latencyCycles * feClock.period());
    // Miss: request crosses into the load/store domain for the L2 and
    // the fill crosses back; both crossings pay synchronization.
    t = syncRule.earliestVisible(t);
    t = l2AndBelow(addr, false, t, r);
    t = syncRule.earliestVisible(t);
    r.ready = t - static_cast<Tick>(0.5 * feClock.period());
    return r;
}

MemAccessResult
MemoryHierarchy::dataAccess(std::uint64_t addr, bool is_write, Tick now)
{
    MemAccessResult r;
    Tick half = static_cast<Tick>(0.5 * lsClock.period());
    Tick t = now +
        static_cast<Tick>(cfg.l1d.latencyCycles * lsClock.period());
    if (dcache.access(addr, is_write)) {
        r.l1Hit = true;
        r.ready = t - half;
        return r;
    }
    r.ready = l2AndBelow(addr, is_write, t, r) - half;
    return r;
}

void
MemoryHierarchy::reset()
{
    icache.reset();
    dcache.reset();
    l2cache.reset();
}

} // namespace mcd
