#include "experiment.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>

#include <unistd.h>

#include "common/log.hh"
#include "workloads/workloads.hh"

namespace mcd {

namespace expcache {

// v2: adds the trailing "end" sentinel so truncated files are always
// rejected (whitespace-delimited numbers could otherwise parse a
// shortened final value as valid).
// v3: adds the online-controller run as a sixth record.
// v4: adds a trailing FNV-1a checksum line over the whole payload so
// silent corruption anywhere (not just truncation) is detected and
// the file can be quarantined instead of trusted.
const char *const version = "mcd-cache-v4";

namespace {

/** FNV-1a 64-bit over the serialized payload. */
std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

void
writeRun(std::ostream &os, const char *tag, const RunResult &r)
{
    os << std::setprecision(17);
    os << tag << ' ' << r.execTime << ' ' << r.committed << ' '
       << r.ipc << ' ' << r.totalEnergy << ' ' << r.energyDelay;
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << ' ' << s.cycles << ' ' << s.energy << ' '
           << s.avgFrequency << ' ' << s.minFrequency << ' '
           << s.maxFrequency << ' ' << s.reconfigurations;
    }
    os << '\n';
}

bool
readRun(std::istream &is, const char *tag, RunResult &r)
{
    std::string t;
    if (!(is >> t) || t != tag)
        return false;
    if (!(is >> r.execTime >> r.committed >> r.ipc >> r.totalEnergy >>
          r.energyDelay)) {
        return false;
    }
    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        if (!(is >> s.cycles >> s.energy >> s.avgFrequency >>
              s.minFrequency >> s.maxFrequency >> s.reconfigurations)) {
            return false;
        }
    }
    return true;
}

} // namespace

void
write(std::ostream &os, const BenchmarkResults &r)
{
    std::ostringstream payload;
    payload << std::setprecision(17);
    payload << version << '\n'
            << r.globalFrequency << ' ' << r.schedule1Size << ' '
            << r.schedule5Size << '\n';
    writeRun(payload, "baseline", r.baseline);
    writeRun(payload, "mcd", r.mcdBaseline);
    writeRun(payload, "dyn1", r.dyn1);
    writeRun(payload, "dyn5", r.dyn5);
    writeRun(payload, "global", r.global);
    writeRun(payload, "online", r.online);
    payload << "end\n";

    std::string text = payload.str();
    os << text << "sum " << std::hex << fnv1a(text) << std::dec
       << '\n';
}

std::optional<BenchmarkResults>
read(std::istream &is, const std::string &name)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string all = buf.str();

    // The checksum line covers everything before it; verify first so
    // a flipped bit anywhere (header, numbers, sentinel) is caught
    // before any value is trusted. Version mismatches are reported as
    // such (nullopt) without requiring a checksum, so stale-format
    // files read as "stale", not "corrupt".
    {
        std::istringstream hdr(all);
        std::string ver;
        if (!(hdr >> ver) || ver != version)
            return std::nullopt;
    }
    std::size_t sumPos = all.rfind("\nsum ");
    if (sumPos == std::string::npos)
        return std::nullopt;    // truncated before the checksum line
    const std::string payload = all.substr(0, sumPos + 1);
    std::istringstream sumLine(all.substr(sumPos + 1));
    std::string tag, hex;
    if (!(sumLine >> tag >> hex) || tag != "sum" || hex.empty() ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
        return std::nullopt;
    }
    if (fnv1a(payload) != std::strtoull(hex.c_str(), nullptr, 16))
        return std::nullopt;    // bit rot / torn write

    std::istringstream in(payload);
    std::string ver;
    if (!(in >> ver) || ver != version)
        return std::nullopt;
    BenchmarkResults r;
    r.name = name;
    if (!(in >> r.globalFrequency >> r.schedule1Size >> r.schedule5Size))
        return std::nullopt;
    if (!readRun(in, "baseline", r.baseline) ||
        !readRun(in, "mcd", r.mcdBaseline) ||
        !readRun(in, "dyn1", r.dyn1) ||
        !readRun(in, "dyn5", r.dyn5) ||
        !readRun(in, "global", r.global) ||
        !readRun(in, "online", r.online)) {
        return std::nullopt;
    }
    std::string sentinel;
    if (!(in >> sentinel) || sentinel != "end")
        return std::nullopt;    // truncated mid-number or mid-record
    return r;
}

} // namespace expcache

namespace {

/** The six matrix legs of one row, in canonical order. */
struct LegRef
{
    const char *tag;
    const RunResult *run;
};

std::array<LegRef, 6>
legs(const BenchmarkResults &r)
{
    return {{{"baseline", &r.baseline}, {"mcdBaseline", &r.mcdBaseline},
             {"dyn1", &r.dyn1}, {"dyn5", &r.dyn5},
             {"global", &r.global}, {"online", &r.online}}};
}

/** Emit one RunResult as a JSON object. */
void
jsonRun(std::ostream &os, const char *indent, const RunResult &r)
{
    if (r.error) {
        // A failed leg: the numeric fields are meaningless zeros, so
        // emit the structured error instead.
        const RunError &e = *r.error;
        os << "{\n"
           << indent << "  \"failed\": true,\n"
           << indent << "  \"error\": {\"site\": \""
           << obs::jsonEscape(e.site) << "\", \"kind\": \""
           << obs::jsonEscape(e.kind) << "\", \"message\": \""
           << obs::jsonEscape(e.message) << "\", \"attempts\": "
           << e.attempts << "}\n"
           << indent << "}";
        return;
    }
    os << "{\n";
    if (r.attempts > 1) {
        os << indent << "  \"attempts\": " << r.attempts << ",\n";
    }
    os << indent << "  \"execTimePs\": " << r.execTime << ",\n"
       << indent << "  \"committed\": " << r.committed << ",\n"
       << indent << "  \"ipc\": " << r.ipc << ",\n"
       << indent << "  \"totalEnergy\": " << r.totalEnergy << ",\n"
       << indent << "  \"energyDelay\": " << r.energyDelay << ",\n"
       << indent << "  \"domains\": [";
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << (d ? ", " : "") << "{\"name\": \""
           << domainShortName(static_cast<Domain>(d)) << "\""
           << ", \"cycles\": " << s.cycles
           << ", \"energy\": " << s.energy
           << ", \"avgFrequencyHz\": " << s.avgFrequency
           << ", \"minFrequencyHz\": " << s.minFrequency
           << ", \"maxFrequencyHz\": " << s.maxFrequency
           << ", \"reconfigurations\": " << s.reconfigurations << "}";
    }
    os << "]";
    if (r.sampling) {
        const SamplingSummary &ss = *r.sampling;
        os << ",\n" << indent << "  \"sampling\": {"
           << "\"windows\": " << ss.windows
           << ", \"detailedCommitted\": " << ss.detailedCommitted
           << ", \"ffExecuted\": " << ss.ffExecuted
           << ", \"estFfTimePs\": " << ss.estFfTimePs
           << ", \"estFfEnergy\": " << ss.estFfEnergy
           << ", \"haltDuringFf\": "
           << (ss.haltDuringFf ? "true" : "false")
           << ", \"timePerInstCv\": " << ss.timePerInstCv
           << ", \"energyPerInstCv\": " << ss.energyPerInstCv << "}";
    }
    if (r.telemetry) {
        os << ",\n" << indent << "  \"stats\": ";
        std::string inner = std::string(indent) + "  ";
        r.telemetry->stats().writeJson(os, inner.c_str());
    }
    os << "\n" << indent << "}";
}

} // namespace

std::size_t
BenchmarkResults::failedLegs() const
{
    std::size_t n = 0;
    for (const LegRef &l : legs(*this))
        n += l.run->failed() ? 1 : 0;
    return n;
}

int
matrixExitCode(const std::vector<BenchmarkResults> &rows)
{
    std::size_t failed = 0;
    std::size_t total = 0;
    for (const BenchmarkResults &r : rows) {
        total += 6;
        failed += r.failedLegs();
    }
    if (!failed)
        return exitOk;
    return failed == total ? exitTotalFailure : exitPartialFailure;
}

void
ExperimentConfig::validate() const
{
    if (scale < 1)
        fatal("ExperimentConfig: scale must be >= 1");
    auto dilation = [](double d, const char *what) {
        if (!std::isfinite(d) || d <= 0.0 || d >= 1.0)
            fatal(std::string("ExperimentConfig: ") + what +
                  " must lie in (0, 1) (got " + std::to_string(d) + ")");
    };
    dilation(dilationLow, "dilationLow");
    dilation(dilationHigh, "dilationHigh");
    if (dilationLow > dilationHigh)
        fatal("ExperimentConfig: dilationLow must not exceed "
              "dilationHigh");
    if (!std::isfinite(dvfsTimeScale) || dvfsTimeScale <= 0.0)
        fatal("ExperimentConfig: dvfsTimeScale must be finite and > 0");
    if (legAttempts < 1)
        fatal("ExperimentConfig: legAttempts must be >= 1");
    if (online.interval == 0)
        fatal("ExperimentConfig: online.interval must be > 0");
    if (sampling)
        sampling->validate();
}

void
writeResultsJson(std::ostream &os, const ExperimentConfig &cfg,
                 const std::vector<BenchmarkResults> &rows)
{
    os << std::setprecision(17);
    os << "{\n"
       << "  \"config\": {\n"
       << "    \"scale\": " << cfg.scale << ",\n"
       << "    \"model\": \"" << dvfsKindName(cfg.model) << "\",\n"
       << "    \"dvfsTimeScale\": " << cfg.dvfsTimeScale << ",\n"
       << "    \"dilationLow\": " << cfg.dilationLow << ",\n"
       << "    \"dilationHigh\": " << cfg.dilationHigh << ",\n"
       << "    \"onlineIntervalPs\": " << cfg.online.interval << ",\n"
       << "    \"seed\": " << cfg.seed;
    // Sampled matrices are clearly labeled; a full-detail document
    // stays byte-identical to pre-sampling builds.
    if (cfg.sampling)
        os << ",\n    \"sampling\": \"" << cfg.sampling->spec() << "\"";
    os << "\n  },\n"
       << "  \"benchmarks\": [";
    bool firstRow = true;
    for (const BenchmarkResults &r : rows) {
        os << (firstRow ? "" : ",") << "\n    {\n"
           << "      \"name\": \"" << r.name << "\",\n"
           << "      \"globalFrequencyHz\": " << r.globalFrequency
           << ",\n"
           << "      \"schedule1Size\": " << r.schedule1Size << ",\n"
           << "      \"schedule5Size\": " << r.schedule5Size << ",\n"
           << "      \"runs\": {\n";
        struct { const char *tag; const RunResult *run; } runs[] = {
            {"baseline", &r.baseline}, {"mcdBaseline", &r.mcdBaseline},
            {"dyn1", &r.dyn1}, {"dyn5", &r.dyn5},
            {"global", &r.global}, {"online", &r.online},
        };
        for (std::size_t i = 0; i < std::size(runs); ++i) {
            os << "        \"" << runs[i].tag << "\": ";
            jsonRun(os, "        ", *runs[i].run);
            os << (i + 1 < std::size(runs) ? ",\n" : "\n");
        }
        os << "      },\n"
           << "      \"derived\": {";
        // Derived metrics are ratios against the baseline leg, so a
        // failed run (all-zero numerics) or a failed baseline would
        // emit nonsense (inf/nan is not even valid JSON) — skip them.
        bool firstDerived = true;
        for (std::size_t i = 1; i < std::size(runs); ++i) {
            const RunResult &run = *runs[i].run;
            if (run.failed() || r.baseline.failed())
                continue;
            os << (firstDerived ? "" : ",") << "\n"
               << "        \"" << runs[i].tag << "\": {"
               << "\"perfDegradation\": " << r.perfDegradation(run)
               << ", \"energySavings\": " << r.energySavings(run)
               << ", \"edpImprovement\": " << r.edpImprovement(run)
               << "}";
            firstDerived = false;
        }
        os << "\n      }\n    }";
        firstRow = false;
    }
    os << "\n  ]";

    // Failure surface: emitted only when something failed, so a clean
    // matrix's document stays byte-identical to earlier versions.
    bool anyFailed = false;
    for (const BenchmarkResults &r : rows)
        anyFailed = anyFailed || r.anyFailed();
    if (anyFailed) {
        os << ",\n  \"failures\": [";
        bool first = true;
        for (const BenchmarkResults &r : rows) {
            for (const LegRef &l : legs(r)) {
                if (!l.run->failed())
                    continue;
                const RunError &e = *l.run->error;
                os << (first ? "" : ",") << "\n    {"
                   << "\"benchmark\": \"" << obs::jsonEscape(r.name)
                   << "\", \"leg\": \"" << l.tag
                   << "\", \"kind\": \"" << obs::jsonEscape(e.kind)
                   << "\", \"attempts\": " << e.attempts
                   << ", \"message\": \"" << obs::jsonEscape(e.message)
                   << "\"}";
                first = false;
            }
        }
        os << "\n  ],\n  \"exitCode\": " << matrixExitCode(rows);
    }
    os << "\n}\n";
}

std::vector<NamedRun>
namedRuns(const std::vector<BenchmarkResults> &rows)
{
    std::vector<NamedRun> out;
    out.reserve(rows.size() * 6);
    for (const BenchmarkResults &row : rows) {
        for (const LegRef &l : legs(row))
            out.push_back({row.name + "/" + l.tag, l.run});
    }
    return out;
}

void
writeTelemetryStatsJson(std::ostream &os,
                        const std::vector<NamedRun> &runs,
                        const obs::StatsRegistry *matrix)
{
    obs::StatsRegistry merged;
    os << "{\n  \"runs\": {";
    bool first = true;
    for (const NamedRun &nr : runs) {
        if (!nr.run || !nr.run->telemetry)
            continue;
        const obs::StatsRegistry &reg = nr.run->telemetry->stats();
        merged.merge(reg);
        os << (first ? "" : ",") << "\n    \""
           << obs::jsonEscape(nr.name) << "\": ";
        reg.writeJson(os, "    ");
        first = false;
    }
    os << "\n  },\n  \"merged\": ";
    merged.writeJson(os, "  ");
    if (matrix) {
        os << ",\n  \"matrix\": ";
        matrix->writeJson(os, "  ");
    }
    os << "\n}\n";
}

void
writeTelemetryTrace(std::ostream &os, const std::vector<NamedRun> &runs)
{
    std::vector<obs::TraceProcess> procs;
    std::size_t events = 0;
    Tick span = 0;
    for (const NamedRun &nr : runs) {
        if (nr.run && nr.run->telemetry) {
            const obs::TraceExporter &trace = nr.run->telemetry->trace();
            procs.push_back({nr.name, &trace});
            events += trace.events().size();
            for (const obs::TraceEvent &e : trace.events())
                span = std::max(span, e.ts + e.dur);
        }
    }
    obs::writeChromeTrace(os, procs);
    inform("trace export: " + std::to_string(events) + " events from " +
           std::to_string(procs.size()) + " runs spanning " +
           formatTick(span));
}

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg)
    : config(std::move(cfg))
{}

SimConfig
ExperimentRunner::makeSimConfig(ClockingStyle style,
                                const std::string &site) const
{
    SimConfig sc;
    sc.clocking = style;
    sc.seed = config.seed;
    sc.telemetry = config.telemetry;
    sc.watchdogNoProgressEdges = config.watchdogNoProgressEdges;
    sc.watchdogMaxTicks = config.watchdogMaxTicks;
    sc.sampling = config.sampling;
    sc.faults = config.faults.get();
    sc.faultSite = site;
    return sc;
}

RunResult
ExperimentRunner::runOnce(const Program &prog, const SimConfig &sc) const
{
    McdProcessor proc(sc, prog);
    return proc.run();
}

std::string
ExperimentRunner::cacheKey(const std::string &name) const
{
    // The online law's tuning parameters all shape the cached online
    // record, so fold them into the key to prevent stale aliasing.
    const OnlineQueueParams &oq = config.online;
    char buf[288];
    std::snprintf(buf, sizeof(buf),
                  "%s-s%d-%s-ts%.4f-d%.3f-%.3f"
                  "-oi%.2f-oa%.2f-%d-%d-%d-ow%.2f-%.2f-%.2f-%d"
                  "-seed%llu",
                  name.c_str(), config.scale, dvfsKindName(config.model),
                  config.dvfsTimeScale, config.dilationLow,
                  config.dilationHigh,
                  static_cast<double>(oq.interval) / 1e6,
                  oq.attackThreshold, oq.attackPoints, oq.decayPoints,
                  oq.idleDecayPoints, oq.highWater, oq.holdWater,
                  oq.idleWater, oq.scaleFrontEnd ? 1 : 0,
                  static_cast<unsigned long long>(config.seed));
    std::string key = buf;
    // Sampled matrices are never cached (see loadCache/storeCache),
    // but fold the operating point into the key anyway so a sampled
    // and a full-detail matrix can never collide even if the bypass
    // rule changes.
    if (config.sampling)
        key += "-smp" + config.sampling->keyToken();
    return key;
}

std::string
ExperimentRunner::cachePath(const std::string &name) const
{
    if (config.cacheDir.empty())
        return {};
    return config.cacheDir + "/" + cacheKey(name) + ".txt";
}

std::optional<BenchmarkResults>
ExperimentRunner::loadCache(const std::string &name) const
{
    // Cached results carry no telemetry, so a telemetry-collecting
    // matrix must actually run (storing is still fine: telemetry does
    // not perturb the simulation, so the records stay valid).
    if (config.telemetry.enabled())
        return std::nullopt;
    // Sampled results are estimates with a stated error bound; the
    // cache stores exact full-detail numbers only.
    if (config.sampling)
        return std::nullopt;
    // A benchmark with armed leg faults must actually run, or the
    // cache would mask the injection.
    if (config.faults && config.faults->legFaultsFor(name))
        return std::nullopt;
    std::string path = cachePath(name);
    if (path.empty())
        return std::nullopt;

    // Injected cache damage: break the file on disk before the read,
    // so the checksum verification and quarantine below are exercised
    // against real filesystem state.
    if (config.faults) {
        if (auto kind = config.faults->cacheFault(name))
            fault::damageFile(path, *kind);
    }

    std::ifstream in(path);
    if (!in)
        return std::nullopt;

    // A stale format version is expected churn (silent recompute); a
    // file with the *current* version that still fails to parse or
    // checksum is damage worth flagging.
    std::string header;
    std::getline(in, header);
    if (header != expcache::version)
        return std::nullopt;
    in.clear();
    in.seekg(0);
    if (auto cached = expcache::read(in, name))
        return cached;
    in.close();

    // Quarantine: move the bad bytes aside (kept for inspection) so
    // they can never poison this or a later run, then recompute.
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (!ec) {
        warn("experiment cache " + path +
             " is corrupt; quarantined as .corrupt and recomputing");
        ++quarantines;
    }
    return std::nullopt;
}

void
ExperimentRunner::storeCache(const BenchmarkResults &r) const
{
    // Never publish degraded rows: a failed leg's zeros would silently
    // satisfy every later run. Rows produced under armed leg faults
    // are likewise tainted (a flaky leg that retried to success is
    // numerically clean, but keeping the rule kind-independent keeps
    // injected matrices byte-identical to uncached ones).
    if (r.anyFailed())
        return;
    if (config.sampling)
        return;     // estimates never enter the exact-result cache
    if (config.faults && config.faults->legFaultsFor(r.name))
        return;
    std::string path = cachePath(r.name);
    if (path.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(config.cacheDir, ec);

    // Write to a temporary and rename into place so a concurrently
    // running bench binary can never observe a torn cache file. The
    // pid suffix keeps two processes racing on the same key from
    // interleaving writes within one temporary.
    std::string tmp = path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        expcache::write(out, r);
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

RunResult
ExperimentRunner::profileLeg(const Program &prog,
                             std::vector<InstTrace> &trace_out,
                             const std::string &site) const
{
    // Baseline MCD (all domains statically at 1 GHz); doubles as the
    // profiling run for the offline tool.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd, site);
    profCfg.collectTrace = true;
    // The offline tool needs every instruction's timestamps: the
    // profiling run always executes in full detail.
    profCfg.sampling.reset();
    McdProcessor prof(profCfg, prog);
    RunResult r = prof.run();
    trace_out = prof.takeTrace();
    return r;
}

RunResult
ExperimentRunner::onlineLeg(const Program &prog,
                            const std::string &site) const
{
    // Online control: MCD clocking with the attack/decay controller
    // instead of an offline schedule. Seeded from the experiment seed
    // so the leg is reproducible and job-count independent.
    SimConfig sc = makeSimConfig(ClockingStyle::Mcd, site);
    sc.dvfs = config.model;
    sc.dvfsTimeScale = config.dvfsTimeScale;
    OnlineQueueController ctrl(config.online, DvfsTable{}, config.seed);
    sc.controller = &ctrl;
    return runOnce(prog, sc);
}

ExperimentRunner::DynLeg
ExperimentRunner::dynamicLeg(const Program &prog,
                             const std::vector<InstTrace> &trace,
                             double target_dilation,
                             const std::string &site) const
{
    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(trace);
    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd, site);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    DynLeg leg;
    leg.result = runOnce(prog, dynCfg);
    leg.scheduleSize = analysis.schedule.size();
    return leg;
}

void
ExperimentRunner::globalLeg(const Program &prog, BenchmarkResults &r) const
{
    // Global voltage scaling: single clock at the table frequency
    // whose degradation best matches dynamic-5% (paper Section 4).
    double target = r.perfDegradation(r.dyn5);
    DvfsTable table;
    int lo = 0;
    int hi = table.numPoints() - 1;
    // Degradation decreases monotonically with frequency: find the
    // slowest point whose degradation does not exceed the target.
    RunResult bestRun;
    Hertz bestFreq = table.fastest().frequency;
    double bestDist = 1e300;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        Hertz f = table.point(mid).frequency;
        SimConfig sc = makeSimConfig(ClockingStyle::SingleClock,
                                     r.name + "/global");
        sc.domainFrequency = {f, f, f, f};
        sc.mem.dramScalesWithClock = true;
        RunResult res = runOnce(prog, sc);
        double deg = r.perfDegradation(res);
        double dist = std::fabs(deg - target);
        if (dist < bestDist) {
            bestDist = dist;
            bestRun = res;
            bestFreq = f;
        }
        if (deg > target)
            lo = mid + 1;   // too slow; raise frequency
        else
            hi = mid - 1;   // within target; try slower
    }
    r.global = bestRun;
    r.globalFrequency = bestFreq;
}

ExperimentRunner::DynamicRun
ExperimentRunner::runDynamic(const std::string &name,
                             double target_dilation)
{
    Program prog = workloads::build(name, config.scale);

    // Profiling run: baseline MCD at full speed, trace collection on.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    prof.run();

    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());

    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    dynCfg.recordFreqTrace = config.recordFreqTrace;

    DynamicRun out;
    out.result = runOnce(prog, dynCfg);
    out.analysis = std::move(analysis);
    return out;
}

RunResult
ExperimentRunner::runGuarded(const std::string &bench, const char *leg,
                             const std::function<RunResult()> &body) const
{
    const std::string site = bench + "/" + leg;
    RunError err;
    for (int attempt = 1; attempt <= config.legAttempts; ++attempt) {
        try {
            // The injection point is a pure function of (site,
            // attempt), and attempts are strictly sequential within
            // one leg, so outcomes are job-count independent.
            if (config.faults)
                config.faults->onLegAttempt(site, attempt);
            RunResult r = body();
            r.attempts = attempt;
            return r;
        } catch (const fault::InjectedFault &e) {
            err = {site, "injected", e.what(), attempt};
            if (e.transient() && attempt < config.legAttempts)
                continue;               // bounded deterministic retry
            break;
        } catch (const WatchdogError &e) {
            err = {site, "watchdog", e.what(), attempt};
            break;
        } catch (const FatalError &e) {
            err = {site, "fatal", e.what(), attempt};
            break;
        } catch (const PanicError &e) {
            err = {site, "panic", e.what(), attempt};
            break;
        } catch (const std::exception &e) {
            err = {site, "exception", e.what(), attempt};
            break;
        }
    }
    warn("leg " + site + " failed (" + err.kind + ", attempt " +
         std::to_string(err.attempts) + "): " + err.message);
    RunResult failed;
    failed.benchmark = bench;
    failed.attempts = err.attempts;
    failed.error = std::move(err);
    return failed;
}

RunResult
ExperimentRunner::dependencyFailed(const std::string &bench,
                                   const char *leg,
                                   const char *upstream) const
{
    RunResult r;
    r.benchmark = bench;
    r.attempts = 0;     // never attempted
    r.error = RunError{bench + "/" + leg, "dependency",
                       std::string(upstream) + " leg failed", 0};
    return r;
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name)
{
    // A zero-worker pool executes every leg inline at submission, in
    // the same order as the historical serial code.
    ThreadPool inlinePool(0);
    return runBenchmark(name, inlinePool);
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name, ThreadPool &pool)
{
    if (auto cached = loadCache(name))
        return *cached;

    BenchmarkResults r;
    r.name = name;

    const Program prog = workloads::build(name, config.scale);

    // Every leg runs under runGuarded *inside* its submitted lambda:
    // a leg never throws across the pool boundary, so one dead leg
    // can neither abort the matrix nor strand sibling tasks that
    // still reference this frame's prog/trace.

    // Leg 1 — singly clocked baseline — is independent of everything
    // else; run it concurrently with the profiling leg.
    auto baseFut = pool.submit([this, &name, &prog] {
        return runGuarded(name, "baseline", [&] {
            return runOnce(prog,
                           makeSimConfig(ClockingStyle::SingleClock,
                                         name + "/baseline"));
        });
    });

    // Leg 1b — the online controller needs neither the trace nor the
    // baseline; fully independent.
    auto onlineFut = pool.submit([this, &name, &prog] {
        return runGuarded(name, "online", [&] {
            return onlineLeg(prog, name + "/online");
        });
    });

    // Leg 2 — baseline MCD / profiling run (produces the trace).
    std::vector<InstTrace> trace;
    auto profFut = pool.submit([this, &name, &prog, &trace] {
        return runGuarded(name, "mcdBaseline", [&] {
            return profileLeg(prog, trace, name + "/mcdBaseline");
        });
    });
    r.mcdBaseline = pool.wait(profFut);

    if (r.mcdBaseline.failed()) {
        // No profiling trace: the offline tool has nothing to chew on.
        r.dyn1 = dependencyFailed(name, "dyn1", "mcdBaseline");
        r.dyn5 = dependencyFailed(name, "dyn5", "mcdBaseline");
    } else {
        // Legs 3a/3b — the two dynamic configurations analyze and
        // simulate independently off the shared (now read-only)
        // trace. The schedule sizes ride out via per-leg locals each
        // written only before its lambda returns (i.e. before wait()
        // synchronizes with it).
        std::size_t sched1 = 0;
        std::size_t sched5 = 0;
        auto dyn1Fut = pool.submit([this, &name, &prog, &trace, &sched1] {
            return runGuarded(name, "dyn1", [&] {
                DynLeg leg = dynamicLeg(prog, trace, config.dilationLow,
                                        name + "/dyn1");
                sched1 = leg.scheduleSize;
                return leg.result;
            });
        });
        auto dyn5Fut = pool.submit([this, &name, &prog, &trace, &sched5] {
            return runGuarded(name, "dyn5", [&] {
                DynLeg leg = dynamicLeg(prog, trace, config.dilationHigh,
                                        name + "/dyn5");
                sched5 = leg.scheduleSize;
                return leg.result;
            });
        });
        r.dyn1 = pool.wait(dyn1Fut);
        r.dyn5 = pool.wait(dyn5Fut);
        r.schedule1Size = sched1;
        r.schedule5Size = sched5;
    }

    // Leg 4 — the global binary search needs baseline + dynamic-5%.
    r.baseline = pool.wait(baseFut);
    if (r.baseline.failed() || r.dyn5.failed()) {
        r.global = dependencyFailed(
            name, "global", r.baseline.failed() ? "baseline" : "dyn5");
    } else {
        r.global = runGuarded(name, "global", [&] {
            globalLeg(prog, r);
            return r.global;
        });
    }

    r.online = pool.wait(onlineFut);

    storeCache(r);
    return r;
}

ExperimentRunner::OnlineRun
ExperimentRunner::runOnline(const std::string &name)
{
    Program prog = workloads::build(name, config.scale);
    OnlineRun out;
    out.mcdBaseline = runOnce(prog, makeSimConfig(ClockingStyle::Mcd));
    out.online = onlineLeg(prog);
    return out;
}

namespace {

/** Honor MCD_RESULTS_JSON: dump the finished matrix to that path. */
void
maybeWriteJson(const ExperimentConfig &cfg,
               const std::vector<BenchmarkResults> &out)
{
    const char *path = std::getenv("MCD_RESULTS_JSON");
    if (!path || !*path)
        return;
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "  MCD_RESULTS_JSON: cannot write %s\n",
                     path);
        return;
    }
    writeResultsJson(os, cfg, out);
}

/** Honor MCD_STATS_OUT / MCD_TRACE_OUT: dump merged telemetry. */
void
maybeWriteTelemetry(const std::vector<BenchmarkResults> &out,
                    const obs::StatsRegistry *matrix)
{
    auto writeTo = [](const char *env, auto writer) {
        const char *path = std::getenv(env);
        if (!path || !*path)
            return;
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "  %s: cannot write %s\n", env, path);
            return;
        }
        writer(os);
    };
    std::vector<NamedRun> named = namedRuns(out);
    writeTo("MCD_STATS_OUT", [&](std::ostream &os) {
        writeTelemetryStatsJson(os, named, matrix);
    });
    writeTo("MCD_TRACE_OUT", [&](std::ostream &os) {
        writeTelemetryTrace(os, named);
    });
}

/**
 * The effective matrix config: MCD_TRACE_OUT / MCD_STATS_OUT imply
 * full telemetry collection when the caller left it off, and
 * MCD_FAULT_PLAN supplies a fault plan when the caller passed none.
 */
ExperimentConfig
effectiveConfig(const ExperimentConfig &cfg)
{
    ExperimentConfig e = cfg;
    auto set = [](const char *env) {
        const char *v = std::getenv(env);
        return v && *v;
    };
    if (!e.telemetry.enabled() &&
        (set("MCD_TRACE_OUT") || set("MCD_STATS_OUT"))) {
        e.telemetry = obs::TelemetryConfig::full();
    }
    if (!e.sampling) {
        if (const char *v = std::getenv("MCD_SAMPLING"); v && *v)
            e.sampling = SamplingParams::fromSpec(v);
    }
    if (!e.faults)
        e.faults = fault::FaultPlan::fromEnv();
    return e;
}

/**
 * Matrix health counters for the stats document and the end-of-run
 * summary. Returns true (via @p degraded) when anything failed, was
 * retried, or was quarantined — a clean matrix skips the registry
 * entirely so its stats JSON is byte-identical to earlier versions.
 */
bool
matrixHealth(obs::StatsRegistry &reg,
             const std::vector<BenchmarkResults> &rows,
             std::uint64_t quarantined)
{
    std::uint64_t ok = 0;
    std::uint64_t failedLegs = 0;
    std::uint64_t retried = 0;
    for (const BenchmarkResults &r : rows) {
        std::uint64_t f = r.failedLegs();
        failedLegs += f;
        ok += 6 - f;
        for (const LegRef &l : legs(r))
            retried += l.run->attempts > 1 ? 1 : 0;
    }
    reg.counter("matrix.legs.ok", "matrix legs that completed")
        .inc(ok);
    reg.counter("matrix.legs.failed",
                "matrix legs recorded as failed").inc(failedLegs);
    reg.counter("matrix.legs.retried",
                "matrix legs that needed more than one attempt")
        .inc(retried);
    reg.counter("matrix.cache.quarantined",
                "corrupt cache files renamed *.corrupt").inc(quarantined);
    return failedLegs != 0 || retried != 0 || quarantined != 0;
}

/** Shared post-run tail: documents, health, degradation summary. */
void
finishMatrix(const ExperimentConfig &cfg,
             const std::vector<BenchmarkResults> &out,
             const ExperimentRunner &runner)
{
    obs::StatsRegistry health;
    bool degraded = matrixHealth(health, out, runner.cacheQuarantines());
    maybeWriteJson(cfg, out);
    maybeWriteTelemetry(out, degraded ? &health : nullptr);
    if (degraded) {
        std::uint64_t failedLegs = 0;
        for (const BenchmarkResults &r : out)
            failedLegs += r.failedLegs();
        if (failedLegs)
            warn("matrix degraded: " + std::to_string(failedLegs) +
                 " of " + std::to_string(out.size() * 6) +
                 " legs failed (see results JSON \"failures\")");
    }
}

} // namespace

std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &cfg,
          const std::vector<std::string> &names, int jobs, bool progress)
{
    // Touch the shared workload table once before any worker does, so
    // its (already thread-safe) lazy construction never races.
    workloads::all();

    ExperimentConfig ecfg = effectiveConfig(cfg);
    ecfg.validate();
    std::vector<BenchmarkResults> out(names.size());
    ExperimentRunner runner(ecfg);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (progress)
                std::fprintf(stderr, "  running %s...\n",
                             names[i].c_str());
            out[i] = runner.runBenchmark(names[i]);
        }
        finishMatrix(ecfg, out, runner);
        return out;
    }

    ThreadPool pool(static_cast<unsigned>(jobs));
    std::mutex progressMutex;
    std::vector<std::future<BenchmarkResults>> futs;
    futs.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        futs.push_back(pool.submit(
            [&runner, &pool, &names, &progressMutex, progress, i] {
                if (progress) {
                    std::lock_guard<std::mutex> lk(progressMutex);
                    std::fprintf(stderr, "  running %s...\n",
                                 names[i].c_str());
                }
                return runner.runBenchmark(names[i], pool);
            }));
    }
    // Collect in workload order, independent of completion order.
    for (std::size_t i = 0; i < names.size(); ++i)
        out[i] = pool.wait(futs[i]);
    finishMatrix(ecfg, out, runner);
    return out;
}

} // namespace mcd
