#include "experiment.hh"

#include <cmath>
#include <iomanip>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "workloads/workloads.hh"

namespace mcd {

namespace {

constexpr const char *cacheVersion = "mcd-cache-v1";

void
writeRun(std::ostream &os, const char *tag, const RunResult &r)
{
    os << std::setprecision(17);
    os << tag << ' ' << r.execTime << ' ' << r.committed << ' '
       << r.ipc << ' ' << r.totalEnergy << ' ' << r.energyDelay;
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << ' ' << s.cycles << ' ' << s.energy << ' '
           << s.avgFrequency << ' ' << s.minFrequency << ' '
           << s.maxFrequency << ' ' << s.reconfigurations;
    }
    os << '\n';
}

bool
readRun(std::istream &is, const char *tag, RunResult &r)
{
    std::string t;
    if (!(is >> t) || t != tag)
        return false;
    if (!(is >> r.execTime >> r.committed >> r.ipc >> r.totalEnergy >>
          r.energyDelay)) {
        return false;
    }
    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        if (!(is >> s.cycles >> s.energy >> s.avgFrequency >>
              s.minFrequency >> s.maxFrequency >> s.reconfigurations)) {
            return false;
        }
    }
    return true;
}

} // namespace

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg)
    : config(std::move(cfg))
{}

SimConfig
ExperimentRunner::makeSimConfig(ClockingStyle style) const
{
    SimConfig sc;
    sc.clocking = style;
    sc.seed = config.seed;
    return sc;
}

RunResult
ExperimentRunner::runOnce(const Program &prog, const SimConfig &sc) const
{
    McdProcessor proc(sc, prog);
    return proc.run();
}

std::string
ExperimentRunner::cacheKey(const std::string &name) const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s-s%d-%s-ts%.4f-d%.3f-%.3f-seed%llu",
                  name.c_str(), config.scale, dvfsKindName(config.model),
                  config.dvfsTimeScale, config.dilationLow,
                  config.dilationHigh,
                  static_cast<unsigned long long>(config.seed));
    return buf;
}

std::optional<BenchmarkResults>
ExperimentRunner::loadCache(const std::string &name)
{
    if (config.cacheDir.empty())
        return std::nullopt;
    std::ifstream in(config.cacheDir + "/" + cacheKey(name) + ".txt");
    if (!in)
        return std::nullopt;
    std::string ver;
    if (!(in >> ver) || ver != cacheVersion)
        return std::nullopt;
    BenchmarkResults r;
    r.name = name;
    if (!(in >> r.globalFrequency >> r.schedule1Size >> r.schedule5Size))
        return std::nullopt;
    if (!readRun(in, "baseline", r.baseline) ||
        !readRun(in, "mcd", r.mcdBaseline) ||
        !readRun(in, "dyn1", r.dyn1) ||
        !readRun(in, "dyn5", r.dyn5) ||
        !readRun(in, "global", r.global)) {
        return std::nullopt;
    }
    return r;
}

void
ExperimentRunner::storeCache(const BenchmarkResults &r)
{
    if (config.cacheDir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(config.cacheDir, ec);
    std::ofstream out(config.cacheDir + "/" + cacheKey(r.name) + ".txt");
    if (!out)
        return;
    out << std::setprecision(17);
    out << cacheVersion << '\n'
        << r.globalFrequency << ' ' << r.schedule1Size << ' '
        << r.schedule5Size << '\n';
    writeRun(out, "baseline", r.baseline);
    writeRun(out, "mcd", r.mcdBaseline);
    writeRun(out, "dyn1", r.dyn1);
    writeRun(out, "dyn5", r.dyn5);
    writeRun(out, "global", r.global);
}

ExperimentRunner::DynamicRun
ExperimentRunner::runDynamic(const std::string &name,
                             double target_dilation)
{
    Program prog = workloads::build(name, config.scale);

    // Profiling run: baseline MCD at full speed, trace collection on.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    prof.run();

    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());

    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    dynCfg.recordFreqTrace = config.recordFreqTrace;

    DynamicRun out;
    out.result = runOnce(prog, dynCfg);
    out.analysis = std::move(analysis);
    return out;
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name)
{
    if (auto cached = loadCache(name))
        return *cached;

    BenchmarkResults r;
    r.name = name;

    Program prog = workloads::build(name, config.scale);

    // 1. Singly clocked baseline.
    r.baseline = runOnce(prog, makeSimConfig(ClockingStyle::SingleClock));

    // 2. Baseline MCD (all domains statically at 1 GHz); this is also
    //    the profiling run for the offline tool.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    r.mcdBaseline = prof.run();
    const std::vector<InstTrace> &trace = prof.trace().trace();

    // 3. Dynamic configurations.
    for (int which = 0; which < 2; ++which) {
        double d = which ? config.dilationHigh : config.dilationLow;
        OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
            d, config.model, config.dvfsTimeScale));
        AnalysisResult analysis = analyzer.analyze(trace);
        SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
        dynCfg.dvfs = config.model;
        dynCfg.dvfsTimeScale = config.dvfsTimeScale;
        dynCfg.schedule = &analysis.schedule;
        RunResult res = runOnce(prog, dynCfg);
        if (which) {
            r.dyn5 = res;
            r.schedule5Size = analysis.schedule.size();
        } else {
            r.dyn1 = res;
            r.schedule1Size = analysis.schedule.size();
        }
    }

    // 4. Global voltage scaling: single clock at the table frequency
    //    whose degradation best matches dynamic-5% (paper Section 4).
    double target = r.perfDegradation(r.dyn5);
    DvfsTable table;
    int lo = 0;
    int hi = table.numPoints() - 1;
    // Degradation decreases monotonically with frequency: find the
    // slowest point whose degradation does not exceed the target.
    RunResult bestRun;
    Hertz bestFreq = table.fastest().frequency;
    double bestDist = 1e300;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        Hertz f = table.point(mid).frequency;
        SimConfig sc = makeSimConfig(ClockingStyle::SingleClock);
        sc.domainFrequency = {f, f, f, f};
        sc.mem.dramScalesWithClock = true;
        RunResult res = runOnce(prog, sc);
        double deg = r.perfDegradation(res);
        double dist = std::fabs(deg - target);
        if (dist < bestDist) {
            bestDist = dist;
            bestRun = res;
            bestFreq = f;
        }
        if (deg > target)
            lo = mid + 1;   // too slow; raise frequency
        else
            hi = mid - 1;   // within target; try slower
    }
    r.global = bestRun;
    r.globalFrequency = bestFreq;

    storeCache(r);
    return r;
}

} // namespace mcd
