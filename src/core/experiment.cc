#include "experiment.hh"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "common/log.hh"
#include "workloads/workloads.hh"

namespace mcd {

namespace expcache {

// v2: adds the trailing "end" sentinel so truncated files are always
// rejected (whitespace-delimited numbers could otherwise parse a
// shortened final value as valid).
// v3: adds the online-controller run as a sixth record.
const char *const version = "mcd-cache-v3";

namespace {

void
writeRun(std::ostream &os, const char *tag, const RunResult &r)
{
    os << std::setprecision(17);
    os << tag << ' ' << r.execTime << ' ' << r.committed << ' '
       << r.ipc << ' ' << r.totalEnergy << ' ' << r.energyDelay;
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << ' ' << s.cycles << ' ' << s.energy << ' '
           << s.avgFrequency << ' ' << s.minFrequency << ' '
           << s.maxFrequency << ' ' << s.reconfigurations;
    }
    os << '\n';
}

bool
readRun(std::istream &is, const char *tag, RunResult &r)
{
    std::string t;
    if (!(is >> t) || t != tag)
        return false;
    if (!(is >> r.execTime >> r.committed >> r.ipc >> r.totalEnergy >>
          r.energyDelay)) {
        return false;
    }
    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        if (!(is >> s.cycles >> s.energy >> s.avgFrequency >>
              s.minFrequency >> s.maxFrequency >> s.reconfigurations)) {
            return false;
        }
    }
    return true;
}

} // namespace

void
write(std::ostream &os, const BenchmarkResults &r)
{
    os << std::setprecision(17);
    os << version << '\n'
       << r.globalFrequency << ' ' << r.schedule1Size << ' '
       << r.schedule5Size << '\n';
    writeRun(os, "baseline", r.baseline);
    writeRun(os, "mcd", r.mcdBaseline);
    writeRun(os, "dyn1", r.dyn1);
    writeRun(os, "dyn5", r.dyn5);
    writeRun(os, "global", r.global);
    writeRun(os, "online", r.online);
    os << "end\n";
}

std::optional<BenchmarkResults>
read(std::istream &is, const std::string &name)
{
    std::string ver;
    if (!(is >> ver) || ver != version)
        return std::nullopt;
    BenchmarkResults r;
    r.name = name;
    if (!(is >> r.globalFrequency >> r.schedule1Size >> r.schedule5Size))
        return std::nullopt;
    if (!readRun(is, "baseline", r.baseline) ||
        !readRun(is, "mcd", r.mcdBaseline) ||
        !readRun(is, "dyn1", r.dyn1) ||
        !readRun(is, "dyn5", r.dyn5) ||
        !readRun(is, "global", r.global) ||
        !readRun(is, "online", r.online)) {
        return std::nullopt;
    }
    std::string sentinel;
    if (!(is >> sentinel) || sentinel != "end")
        return std::nullopt;    // truncated mid-number or mid-record
    return r;
}

} // namespace expcache

namespace {

/** The six matrix legs of one row, in canonical order. */
struct LegRef
{
    const char *tag;
    const RunResult *run;
};

std::array<LegRef, 6>
legs(const BenchmarkResults &r)
{
    return {{{"baseline", &r.baseline}, {"mcdBaseline", &r.mcdBaseline},
             {"dyn1", &r.dyn1}, {"dyn5", &r.dyn5},
             {"global", &r.global}, {"online", &r.online}}};
}

/** Emit one RunResult as a JSON object. */
void
jsonRun(std::ostream &os, const char *indent, const RunResult &r)
{
    os << "{\n"
       << indent << "  \"execTimePs\": " << r.execTime << ",\n"
       << indent << "  \"committed\": " << r.committed << ",\n"
       << indent << "  \"ipc\": " << r.ipc << ",\n"
       << indent << "  \"totalEnergy\": " << r.totalEnergy << ",\n"
       << indent << "  \"energyDelay\": " << r.energyDelay << ",\n"
       << indent << "  \"domains\": [";
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << (d ? ", " : "") << "{\"name\": \""
           << domainShortName(static_cast<Domain>(d)) << "\""
           << ", \"cycles\": " << s.cycles
           << ", \"energy\": " << s.energy
           << ", \"avgFrequencyHz\": " << s.avgFrequency
           << ", \"minFrequencyHz\": " << s.minFrequency
           << ", \"maxFrequencyHz\": " << s.maxFrequency
           << ", \"reconfigurations\": " << s.reconfigurations << "}";
    }
    os << "]";
    if (r.telemetry) {
        os << ",\n" << indent << "  \"stats\": ";
        std::string inner = std::string(indent) + "  ";
        r.telemetry->stats().writeJson(os, inner.c_str());
    }
    os << "\n" << indent << "}";
}

} // namespace

void
writeResultsJson(std::ostream &os, const ExperimentConfig &cfg,
                 const std::vector<BenchmarkResults> &rows)
{
    os << std::setprecision(17);
    os << "{\n"
       << "  \"config\": {\n"
       << "    \"scale\": " << cfg.scale << ",\n"
       << "    \"model\": \"" << dvfsKindName(cfg.model) << "\",\n"
       << "    \"dvfsTimeScale\": " << cfg.dvfsTimeScale << ",\n"
       << "    \"dilationLow\": " << cfg.dilationLow << ",\n"
       << "    \"dilationHigh\": " << cfg.dilationHigh << ",\n"
       << "    \"onlineIntervalPs\": " << cfg.online.interval << ",\n"
       << "    \"seed\": " << cfg.seed << "\n"
       << "  },\n"
       << "  \"benchmarks\": [";
    bool firstRow = true;
    for (const BenchmarkResults &r : rows) {
        os << (firstRow ? "" : ",") << "\n    {\n"
           << "      \"name\": \"" << r.name << "\",\n"
           << "      \"globalFrequencyHz\": " << r.globalFrequency
           << ",\n"
           << "      \"schedule1Size\": " << r.schedule1Size << ",\n"
           << "      \"schedule5Size\": " << r.schedule5Size << ",\n"
           << "      \"runs\": {\n";
        struct { const char *tag; const RunResult *run; } runs[] = {
            {"baseline", &r.baseline}, {"mcdBaseline", &r.mcdBaseline},
            {"dyn1", &r.dyn1}, {"dyn5", &r.dyn5},
            {"global", &r.global}, {"online", &r.online},
        };
        for (std::size_t i = 0; i < std::size(runs); ++i) {
            os << "        \"" << runs[i].tag << "\": ";
            jsonRun(os, "        ", *runs[i].run);
            os << (i + 1 < std::size(runs) ? ",\n" : "\n");
        }
        os << "      },\n"
           << "      \"derived\": {\n";
        for (std::size_t i = 1; i < std::size(runs); ++i) {
            const RunResult &run = *runs[i].run;
            os << "        \"" << runs[i].tag << "\": {"
               << "\"perfDegradation\": " << r.perfDegradation(run)
               << ", \"energySavings\": " << r.energySavings(run)
               << ", \"edpImprovement\": " << r.edpImprovement(run)
               << "}" << (i + 1 < std::size(runs) ? ",\n" : "\n");
        }
        os << "      }\n    }";
        firstRow = false;
    }
    os << "\n  ]\n}\n";
}

std::vector<NamedRun>
namedRuns(const std::vector<BenchmarkResults> &rows)
{
    std::vector<NamedRun> out;
    out.reserve(rows.size() * 6);
    for (const BenchmarkResults &row : rows) {
        for (const LegRef &l : legs(row))
            out.push_back({row.name + "/" + l.tag, l.run});
    }
    return out;
}

void
writeTelemetryStatsJson(std::ostream &os,
                        const std::vector<NamedRun> &runs)
{
    obs::StatsRegistry merged;
    os << "{\n  \"runs\": {";
    bool first = true;
    for (const NamedRun &nr : runs) {
        if (!nr.run || !nr.run->telemetry)
            continue;
        const obs::StatsRegistry &reg = nr.run->telemetry->stats();
        merged.merge(reg);
        os << (first ? "" : ",") << "\n    \""
           << obs::jsonEscape(nr.name) << "\": ";
        reg.writeJson(os, "    ");
        first = false;
    }
    os << "\n  },\n  \"merged\": ";
    merged.writeJson(os, "  ");
    os << "\n}\n";
}

void
writeTelemetryTrace(std::ostream &os, const std::vector<NamedRun> &runs)
{
    std::vector<obs::TraceProcess> procs;
    for (const NamedRun &nr : runs) {
        if (nr.run && nr.run->telemetry)
            procs.push_back({nr.name, &nr.run->telemetry->trace()});
    }
    obs::writeChromeTrace(os, procs);
}

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg)
    : config(std::move(cfg))
{}

SimConfig
ExperimentRunner::makeSimConfig(ClockingStyle style) const
{
    SimConfig sc;
    sc.clocking = style;
    sc.seed = config.seed;
    sc.telemetry = config.telemetry;
    return sc;
}

RunResult
ExperimentRunner::runOnce(const Program &prog, const SimConfig &sc) const
{
    McdProcessor proc(sc, prog);
    return proc.run();
}

std::string
ExperimentRunner::cacheKey(const std::string &name) const
{
    // The online law's tuning parameters all shape the cached online
    // record, so fold them into the key to prevent stale aliasing.
    const OnlineQueueParams &oq = config.online;
    char buf[288];
    std::snprintf(buf, sizeof(buf),
                  "%s-s%d-%s-ts%.4f-d%.3f-%.3f"
                  "-oi%.2f-oa%.2f-%d-%d-%d-ow%.2f-%.2f-%.2f-%d"
                  "-seed%llu",
                  name.c_str(), config.scale, dvfsKindName(config.model),
                  config.dvfsTimeScale, config.dilationLow,
                  config.dilationHigh,
                  static_cast<double>(oq.interval) / 1e6,
                  oq.attackThreshold, oq.attackPoints, oq.decayPoints,
                  oq.idleDecayPoints, oq.highWater, oq.holdWater,
                  oq.idleWater, oq.scaleFrontEnd ? 1 : 0,
                  static_cast<unsigned long long>(config.seed));
    return buf;
}

std::string
ExperimentRunner::cachePath(const std::string &name) const
{
    if (config.cacheDir.empty())
        return {};
    return config.cacheDir + "/" + cacheKey(name) + ".txt";
}

std::optional<BenchmarkResults>
ExperimentRunner::loadCache(const std::string &name) const
{
    // Cached results carry no telemetry, so a telemetry-collecting
    // matrix must actually run (storing is still fine: telemetry does
    // not perturb the simulation, so the records stay valid).
    if (config.telemetry.enabled())
        return std::nullopt;
    std::string path = cachePath(name);
    if (path.empty())
        return std::nullopt;
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    return expcache::read(in, name);
}

void
ExperimentRunner::storeCache(const BenchmarkResults &r) const
{
    std::string path = cachePath(r.name);
    if (path.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(config.cacheDir, ec);

    // Write to a temporary and rename into place so a concurrently
    // running bench binary can never observe a torn cache file. The
    // pid suffix keeps two processes racing on the same key from
    // interleaving writes within one temporary.
    std::string tmp = path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        expcache::write(out, r);
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

RunResult
ExperimentRunner::profileLeg(const Program &prog,
                             std::vector<InstTrace> &trace_out) const
{
    // Baseline MCD (all domains statically at 1 GHz); doubles as the
    // profiling run for the offline tool.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    RunResult r = prof.run();
    trace_out = prof.takeTrace();
    return r;
}

RunResult
ExperimentRunner::onlineLeg(const Program &prog) const
{
    // Online control: MCD clocking with the attack/decay controller
    // instead of an offline schedule. Seeded from the experiment seed
    // so the leg is reproducible and job-count independent.
    SimConfig sc = makeSimConfig(ClockingStyle::Mcd);
    sc.dvfs = config.model;
    sc.dvfsTimeScale = config.dvfsTimeScale;
    OnlineQueueController ctrl(config.online, DvfsTable{}, config.seed);
    sc.controller = &ctrl;
    return runOnce(prog, sc);
}

ExperimentRunner::DynLeg
ExperimentRunner::dynamicLeg(const Program &prog,
                             const std::vector<InstTrace> &trace,
                             double target_dilation) const
{
    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(trace);
    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    DynLeg leg;
    leg.result = runOnce(prog, dynCfg);
    leg.scheduleSize = analysis.schedule.size();
    return leg;
}

void
ExperimentRunner::globalLeg(const Program &prog, BenchmarkResults &r) const
{
    // Global voltage scaling: single clock at the table frequency
    // whose degradation best matches dynamic-5% (paper Section 4).
    double target = r.perfDegradation(r.dyn5);
    DvfsTable table;
    int lo = 0;
    int hi = table.numPoints() - 1;
    // Degradation decreases monotonically with frequency: find the
    // slowest point whose degradation does not exceed the target.
    RunResult bestRun;
    Hertz bestFreq = table.fastest().frequency;
    double bestDist = 1e300;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        Hertz f = table.point(mid).frequency;
        SimConfig sc = makeSimConfig(ClockingStyle::SingleClock);
        sc.domainFrequency = {f, f, f, f};
        sc.mem.dramScalesWithClock = true;
        RunResult res = runOnce(prog, sc);
        double deg = r.perfDegradation(res);
        double dist = std::fabs(deg - target);
        if (dist < bestDist) {
            bestDist = dist;
            bestRun = res;
            bestFreq = f;
        }
        if (deg > target)
            lo = mid + 1;   // too slow; raise frequency
        else
            hi = mid - 1;   // within target; try slower
    }
    r.global = bestRun;
    r.globalFrequency = bestFreq;
}

ExperimentRunner::DynamicRun
ExperimentRunner::runDynamic(const std::string &name,
                             double target_dilation)
{
    Program prog = workloads::build(name, config.scale);

    // Profiling run: baseline MCD at full speed, trace collection on.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    prof.run();

    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());

    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    dynCfg.recordFreqTrace = config.recordFreqTrace;

    DynamicRun out;
    out.result = runOnce(prog, dynCfg);
    out.analysis = std::move(analysis);
    return out;
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name)
{
    // A zero-worker pool executes every leg inline at submission, in
    // the same order as the historical serial code.
    ThreadPool inlinePool(0);
    return runBenchmark(name, inlinePool);
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name, ThreadPool &pool)
{
    if (auto cached = loadCache(name))
        return *cached;

    BenchmarkResults r;
    r.name = name;

    const Program prog = workloads::build(name, config.scale);

    // Leg 1 — singly clocked baseline — is independent of everything
    // else; run it concurrently with the profiling leg.
    auto baseFut = pool.submit([this, &prog] {
        return runOnce(prog, makeSimConfig(ClockingStyle::SingleClock));
    });

    // Leg 1b — the online controller needs neither the trace nor the
    // baseline; fully independent.
    auto onlineFut = pool.submit([this, &prog] {
        return onlineLeg(prog);
    });

    // Leg 2 — baseline MCD / profiling run (produces the trace).
    std::vector<InstTrace> trace;
    auto profFut = pool.submit([this, &prog, &trace] {
        return profileLeg(prog, trace);
    });
    r.mcdBaseline = pool.wait(profFut);

    // Legs 3a/3b — the two dynamic configurations analyze and
    // simulate independently off the shared (now read-only) trace.
    auto dyn1Fut = pool.submit([this, &prog, &trace] {
        return dynamicLeg(prog, trace, config.dilationLow);
    });
    auto dyn5Fut = pool.submit([this, &prog, &trace] {
        return dynamicLeg(prog, trace, config.dilationHigh);
    });
    DynLeg d1 = pool.wait(dyn1Fut);
    DynLeg d5 = pool.wait(dyn5Fut);
    r.dyn1 = d1.result;
    r.schedule1Size = d1.scheduleSize;
    r.dyn5 = d5.result;
    r.schedule5Size = d5.scheduleSize;

    // Leg 4 — the global binary search needs baseline + dynamic-5%.
    r.baseline = pool.wait(baseFut);
    globalLeg(prog, r);

    r.online = pool.wait(onlineFut);

    storeCache(r);
    return r;
}

ExperimentRunner::OnlineRun
ExperimentRunner::runOnline(const std::string &name)
{
    Program prog = workloads::build(name, config.scale);
    OnlineRun out;
    out.mcdBaseline = runOnce(prog, makeSimConfig(ClockingStyle::Mcd));
    out.online = onlineLeg(prog);
    return out;
}

namespace {

/** Honor MCD_RESULTS_JSON: dump the finished matrix to that path. */
void
maybeWriteJson(const ExperimentConfig &cfg,
               const std::vector<BenchmarkResults> &out)
{
    const char *path = std::getenv("MCD_RESULTS_JSON");
    if (!path || !*path)
        return;
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "  MCD_RESULTS_JSON: cannot write %s\n",
                     path);
        return;
    }
    writeResultsJson(os, cfg, out);
}

/** Honor MCD_STATS_OUT / MCD_TRACE_OUT: dump merged telemetry. */
void
maybeWriteTelemetry(const std::vector<BenchmarkResults> &out)
{
    auto writeTo = [](const char *env, auto writer) {
        const char *path = std::getenv(env);
        if (!path || !*path)
            return;
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "  %s: cannot write %s\n", env, path);
            return;
        }
        writer(os);
    };
    std::vector<NamedRun> named = namedRuns(out);
    writeTo("MCD_STATS_OUT", [&](std::ostream &os) {
        writeTelemetryStatsJson(os, named);
    });
    writeTo("MCD_TRACE_OUT", [&](std::ostream &os) {
        writeTelemetryTrace(os, named);
    });
}

/**
 * The effective matrix config: MCD_TRACE_OUT / MCD_STATS_OUT imply
 * full telemetry collection when the caller left it off.
 */
ExperimentConfig
effectiveConfig(const ExperimentConfig &cfg)
{
    ExperimentConfig e = cfg;
    auto set = [](const char *env) {
        const char *v = std::getenv(env);
        return v && *v;
    };
    if (!e.telemetry.enabled() &&
        (set("MCD_TRACE_OUT") || set("MCD_STATS_OUT"))) {
        e.telemetry = obs::TelemetryConfig::full();
    }
    return e;
}

} // namespace

std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &cfg,
          const std::vector<std::string> &names, int jobs, bool progress)
{
    // Touch the shared workload table once before any worker does, so
    // its (already thread-safe) lazy construction never races.
    workloads::all();

    ExperimentConfig ecfg = effectiveConfig(cfg);
    std::vector<BenchmarkResults> out(names.size());
    ExperimentRunner runner(ecfg);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (progress)
                std::fprintf(stderr, "  running %s...\n",
                             names[i].c_str());
            out[i] = runner.runBenchmark(names[i]);
        }
        maybeWriteJson(ecfg, out);
        maybeWriteTelemetry(out);
        return out;
    }

    ThreadPool pool(static_cast<unsigned>(jobs));
    std::mutex progressMutex;
    std::vector<std::future<BenchmarkResults>> futs;
    futs.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        futs.push_back(pool.submit(
            [&runner, &pool, &names, &progressMutex, progress, i] {
                if (progress) {
                    std::lock_guard<std::mutex> lk(progressMutex);
                    std::fprintf(stderr, "  running %s...\n",
                                 names[i].c_str());
                }
                return runner.runBenchmark(names[i], pool);
            }));
    }
    // Collect in workload order, independent of completion order.
    for (std::size_t i = 0; i < names.size(); ++i)
        out[i] = pool.wait(futs[i]);
    maybeWriteJson(ecfg, out);
    maybeWriteTelemetry(out);
    return out;
}

} // namespace mcd
