#include "experiment.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>

#include <unistd.h>

#include "clock/operating_points.hh"
#include "common/log.hh"
#include "config/runspec.hh"
#include "control/registry.hh"
#include "obs/host_prof.hh"
#include "workloads/workloads.hh"

namespace mcd {

namespace {

/** FNV-1a 64-bit (cache payload checksum and leg-set key hash). */
std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

const char *
legKindName(LegSpec::Kind k)
{
    switch (k) {
      case LegSpec::Kind::ScheduleReplay: return "schedule-replay";
      case LegSpec::Kind::GlobalSearch: return "global-search";
      case LegSpec::Kind::Controller: return "controller";
    }
    return "?";
}

/**
 * Visit every run of a row in canonical order: the two fixed
 * reference runs, then the leg vector. @p f is called with
 * (name, run).
 */
template <typename F>
void
forEachRun(const BenchmarkResults &r, F &&f)
{
    f(std::string("baseline"), r.baseline);
    f(std::string("mcdBaseline"), r.mcdBaseline);
    for (const ControllerLeg &l : r.legs)
        f(l.spec.name, l.run);
}

} // namespace

LegSpec
LegSpec::scheduleReplay(std::string name, double dilation,
                        std::string display)
{
    LegSpec l;
    l.display = display.empty() ? name : std::move(display);
    l.name = std::move(name);
    l.kind = Kind::ScheduleReplay;
    l.dilation = dilation;
    return l;
}

LegSpec
LegSpec::globalSearch(std::string name, std::string reference,
                      std::string display)
{
    LegSpec l;
    l.display = display.empty() ? name : std::move(display);
    l.name = std::move(name);
    l.kind = Kind::GlobalSearch;
    l.reference = std::move(reference);
    return l;
}

LegSpec
LegSpec::controllerLeg(std::string name, std::string controller,
                       std::string params, std::string display)
{
    LegSpec l;
    l.display = display.empty() ? name : std::move(display);
    l.name = std::move(name);
    l.kind = Kind::Controller;
    l.controller = std::move(controller);
    l.params = std::move(params);
    return l;
}

std::string
LegSpec::keyToken() const
{
    // display is presentation-only; everything else shapes the run.
    switch (kind) {
      case Kind::ScheduleReplay: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), ":r%.6f", dilation);
        return name + buf;
      }
      case Kind::GlobalSearch:
        return name + ":g:" + reference;
      case Kind::Controller:
        return name + ":c:" + controller + ":" + params;
    }
    return name;
}

namespace {

/** Shortest-round-trip double formatting (17 digits always parse
 *  back to the same bits; trim to the shortest prefix that does). */
std::string
doubleSpec(double v)
{
    for (int prec = 1; prec <= 17; ++prec) {
        std::ostringstream os;
        os << std::setprecision(prec) << v;
        if (std::stod(os.str()) == v)
            return os.str();
    }
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

} // namespace

std::string
LegSpec::toSpec() const
{
    std::string head = name;
    if (!display.empty() && display != name)
        head += "~" + display;
    switch (kind) {
      case Kind::ScheduleReplay:
        return head + "=replay:" + doubleSpec(dilation);
      case Kind::GlobalSearch:
        return head + "=global:" + reference;
      case Kind::Controller:
        return head + "=ctrl:" + controller +
            (params.empty() ? std::string() : "@" + params);
    }
    return head;
}

LegSpec
LegSpec::fromSpec(const std::string &spec)
{
    auto bad = [&](const std::string &why) {
        fatal("LegSpec: malformed spec '" + spec + "': " + why +
              " (grammar: name[~display]=replay:<dilation>|"
              "global:<ref>|ctrl:<name>[@<params>])");
    };
    std::size_t eq = spec.find('=');
    if (eq == std::string::npos)
        bad("missing '='");
    std::string head = spec.substr(0, eq);
    std::string body = spec.substr(eq + 1);
    std::string name = head;
    std::string display;
    std::size_t tilde = head.find('~');
    if (tilde != std::string::npos) {
        name = head.substr(0, tilde);
        display = head.substr(tilde + 1);
        if (display.empty())
            bad("empty display after '~'");
    }
    if (name.empty())
        bad("empty leg name");

    if (body.rfind("replay:", 0) == 0) {
        std::string num = body.substr(7);
        double dil = 0.0;
        try {
            std::size_t used = 0;
            dil = std::stod(num, &used);
            if (used != num.size())
                bad("trailing characters after dilation");
        } catch (const std::exception &) {
            bad("unparseable dilation '" + num + "'");
        }
        return scheduleReplay(name, dil, display);
    }
    if (body.rfind("global:", 0) == 0) {
        std::string ref = body.substr(7);
        if (ref.empty())
            bad("empty global-search reference");
        return globalSearch(name, ref, display);
    }
    if (body.rfind("ctrl:", 0) == 0) {
        std::string rest = body.substr(5);
        std::size_t at = rest.find('@');
        std::string ctrl = rest.substr(0, at == std::string::npos
                                       ? rest.size() : at);
        std::string params = at == std::string::npos
            ? std::string() : rest.substr(at + 1);
        if (ctrl.empty())
            bad("empty controller name");
        return controllerLeg(name, ctrl, params, display);
    }
    bad("unknown leg kind (want replay:/global:/ctrl:)");
    return LegSpec{};    // unreachable; bad() throws
}

std::string
legsToSpec(const std::vector<LegSpec> &legs)
{
    std::string out;
    for (const LegSpec &l : legs) {
        if (!out.empty())
            out += "|";
        out += l.toSpec();
    }
    return out;
}

std::vector<LegSpec>
legsFromSpec(const std::string &spec)
{
    std::vector<LegSpec> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t bar = spec.find('|', pos);
        std::string one = spec.substr(pos, bar == std::string::npos
                                      ? std::string::npos : bar - pos);
        if (!one.empty())
            out.push_back(LegSpec::fromSpec(one));
        if (bar == std::string::npos)
            break;
        pos = bar + 1;
    }
    return out;
}

std::vector<LegSpec>
defaultLegs(const ExperimentConfig &cfg)
{
    std::vector<LegSpec> out;
    out.push_back(LegSpec::scheduleReplay("dyn1", cfg.dilationLow,
                                          "dynamic-1%"));
    out.push_back(LegSpec::scheduleReplay("dyn5", cfg.dilationHigh,
                                          "dynamic-5%"));
    out.push_back(LegSpec::globalSearch("global", "dyn5"));
    out.push_back(LegSpec::controllerLeg("online", "online-queue", "",
                                         "online"));
    return out;
}

std::vector<LegSpec>
tournamentLegs(const ExperimentConfig &cfg)
{
    std::vector<LegSpec> out;
    // The dyn5 schedule-replay oracle anchors the field: it has seen
    // the future (the profiling trace), so a controller beating it
    // would be suspicious, not impressive.
    out.push_back(LegSpec::scheduleReplay("dyn5", cfg.dilationHigh,
                                          "dynamic-5%"));
    for (const std::string &n : ControllerRegistry::instance().names())
        out.push_back(LegSpec::controllerLeg(n, n));
    return out;
}

namespace expcache {

// v2: adds the trailing "end" sentinel so truncated files are always
// rejected (whitespace-delimited numbers could otherwise parse a
// shortened final value as valid).
// v3: adds the online-controller run as a sixth record.
// v4: adds a trailing FNV-1a checksum line over the whole payload so
// silent corruption anywhere (not just truncation) is detected and
// the file can be quarantined instead of trusted.
// v5: replaces the fixed six-record layout with a leg count in the
// header and one named "leg" record per dynamic-control leg, so any
// registered controller's results cache alongside the built-ins.
const char *const version = "mcd-cache-v5";

namespace {

void
writeRunBody(std::ostream &os, const RunResult &r)
{
    os << ' ' << r.execTime << ' ' << r.committed << ' '
       << r.ipc << ' ' << r.totalEnergy << ' ' << r.energyDelay;
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << ' ' << s.cycles << ' ' << s.energy << ' '
           << s.avgFrequency << ' ' << s.minFrequency << ' '
           << s.maxFrequency << ' ' << s.reconfigurations;
    }
    os << '\n';
}

bool
readRunBody(std::istream &is, RunResult &r)
{
    if (!(is >> r.execTime >> r.committed >> r.ipc >> r.totalEnergy >>
          r.energyDelay)) {
        return false;
    }
    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        if (!(is >> s.cycles >> s.energy >> s.avgFrequency >>
              s.minFrequency >> s.maxFrequency >> s.reconfigurations)) {
            return false;
        }
    }
    return true;
}

bool
readRun(std::istream &is, const char *tag, RunResult &r)
{
    std::string t;
    if (!(is >> t) || t != tag)
        return false;
    return readRunBody(is, r);
}

} // namespace

void
write(std::ostream &os, const BenchmarkResults &r)
{
    std::ostringstream payload;
    payload << std::setprecision(17);
    payload << version << '\n'
            << r.globalFrequency << ' ' << r.legs.size() << '\n';
    payload << "baseline";
    writeRunBody(payload, r.baseline);
    payload << "mcd";
    writeRunBody(payload, r.mcdBaseline);
    for (const ControllerLeg &l : r.legs) {
        payload << "leg " << l.spec.name << ' ' << l.scheduleSize;
        writeRunBody(payload, l.run);
    }
    payload << "end\n";

    std::string text = payload.str();
    os << text << "sum " << std::hex << fnv1a(text) << std::dec
       << '\n';
}

std::optional<BenchmarkResults>
read(std::istream &is, const std::string &name)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string all = buf.str();

    // The checksum line covers everything before it; verify first so
    // a flipped bit anywhere (header, numbers, sentinel) is caught
    // before any value is trusted. Version mismatches are reported as
    // such (nullopt) without requiring a checksum, so stale-format
    // files read as "stale", not "corrupt".
    {
        std::istringstream hdr(all);
        std::string ver;
        if (!(hdr >> ver) || ver != version)
            return std::nullopt;
    }
    std::size_t sumPos = all.rfind("\nsum ");
    if (sumPos == std::string::npos)
        return std::nullopt;    // truncated before the checksum line
    const std::string payload = all.substr(0, sumPos + 1);
    std::istringstream sumLine(all.substr(sumPos + 1));
    std::string tag, hex;
    if (!(sumLine >> tag >> hex) || tag != "sum" || hex.empty() ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
        return std::nullopt;
    }
    if (fnv1a(payload) != std::strtoull(hex.c_str(), nullptr, 16))
        return std::nullopt;    // bit rot / torn write

    std::istringstream in(payload);
    std::string ver;
    if (!(in >> ver) || ver != version)
        return std::nullopt;
    BenchmarkResults r;
    r.name = name;
    std::size_t numLegs = 0;
    if (!(in >> r.globalFrequency >> numLegs))
        return std::nullopt;
    if (numLegs > 1000)
        return std::nullopt;    // implausible; refuse to allocate
    if (!readRun(in, "baseline", r.baseline) ||
        !readRun(in, "mcd", r.mcdBaseline)) {
        return std::nullopt;
    }
    r.legs.reserve(numLegs);
    for (std::size_t i = 0; i < numLegs; ++i) {
        std::string t;
        if (!(in >> t) || t != "leg")
            return std::nullopt;
        ControllerLeg leg;
        if (!(in >> leg.spec.name >> leg.scheduleSize))
            return std::nullopt;
        if (!readRunBody(in, leg.run))
            return std::nullopt;
        r.legs.push_back(std::move(leg));
    }
    std::string sentinel;
    if (!(in >> sentinel) || sentinel != "end")
        return std::nullopt;    // truncated mid-number or mid-record
    return r;
}

} // namespace expcache

namespace {

/** Emit one RunResult as a JSON object. */
void
jsonRun(std::ostream &os, const char *indent, const RunResult &r)
{
    if (r.error) {
        // A failed leg: the numeric fields are meaningless zeros, so
        // emit the structured error instead.
        const RunError &e = *r.error;
        os << "{\n"
           << indent << "  \"failed\": true,\n"
           << indent << "  \"error\": {\"site\": \""
           << obs::jsonEscape(e.site) << "\", \"kind\": \""
           << obs::jsonEscape(e.kind) << "\", \"message\": \""
           << obs::jsonEscape(e.message) << "\", \"attempts\": "
           << e.attempts << "}\n"
           << indent << "}";
        return;
    }
    os << "{\n";
    if (r.attempts > 1) {
        os << indent << "  \"attempts\": " << r.attempts << ",\n";
    }
    os << indent << "  \"execTimePs\": " << r.execTime << ",\n"
       << indent << "  \"committed\": " << r.committed << ",\n"
       << indent << "  \"ipc\": " << r.ipc << ",\n"
       << indent << "  \"totalEnergy\": " << r.totalEnergy << ",\n"
       << indent << "  \"energyDelay\": " << r.energyDelay << ",\n"
       << indent << "  \"domains\": [";
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << (d ? ", " : "") << "{\"name\": \""
           << domainShortName(static_cast<Domain>(d)) << "\""
           << ", \"cycles\": " << s.cycles
           << ", \"energy\": " << s.energy
           << ", \"avgFrequencyHz\": " << s.avgFrequency
           << ", \"minFrequencyHz\": " << s.minFrequency
           << ", \"maxFrequencyHz\": " << s.maxFrequency
           << ", \"reconfigurations\": " << s.reconfigurations << "}";
    }
    os << "]";
    if (r.sampling) {
        const SamplingSummary &ss = *r.sampling;
        os << ",\n" << indent << "  \"sampling\": {"
           << "\"windows\": " << ss.windows
           << ", \"detailedCommitted\": " << ss.detailedCommitted
           << ", \"ffExecuted\": " << ss.ffExecuted
           << ", \"estFfTimePs\": " << ss.estFfTimePs
           << ", \"estFfEnergy\": " << ss.estFfEnergy
           << ", \"haltDuringFf\": "
           << (ss.haltDuringFf ? "true" : "false")
           << ", \"timePerInstCv\": " << ss.timePerInstCv
           << ", \"energyPerInstCv\": " << ss.energyPerInstCv << "}";
    }
    if (r.telemetry) {
        os << ",\n" << indent << "  \"stats\": ";
        std::string inner = std::string(indent) + "  ";
        r.telemetry->stats().writeJson(os, inner.c_str());
        if (const obs::InvariantEngine *inv = r.telemetry->invariants()) {
            os << ",\n" << indent << "  \"invariants\": {\"checks\": "
               << inv->checks() << ", \"violations\": "
               << inv->violations();
            if (!inv->records().empty()) {
                os << ", \"records\": [";
                bool first = true;
                for (const obs::InvariantViolation &v : inv->records()) {
                    os << (first ? "" : ", ") << "{\"rule\": \""
                       << obs::jsonEscape(v.rule) << "\", \"domain\": \""
                       << domainShortName(v.domain)
                       << "\", \"tickPs\": " << v.tick
                       << ", \"observed\": " << v.observed
                       << ", \"bound\": " << v.bound << "}";
                    first = false;
                }
                os << "]";
            }
            os << "}";
        }
    }
    os << "\n" << indent << "}";
}

} // namespace

const ControllerLeg *
BenchmarkResults::findLeg(std::string_view leg) const
{
    for (const ControllerLeg &l : legs) {
        if (l.spec.name == leg)
            return &l;
    }
    return nullptr;
}

const RunResult &
BenchmarkResults::leg(std::string_view leg) const
{
    const ControllerLeg *l = findLeg(leg);
    if (!l) {
        fatal("BenchmarkResults: no leg named '" + std::string(leg) +
              "' in row '" + name + "'");
    }
    return l->run;
}

std::size_t
BenchmarkResults::scheduleSize(std::string_view leg) const
{
    const ControllerLeg *l = findLeg(leg);
    return l ? l->scheduleSize : 0;
}

std::size_t
BenchmarkResults::failedLegs() const
{
    std::size_t n = 0;
    forEachRun(*this, [&](const std::string &, const RunResult &run) {
        n += run.failed() ? 1 : 0;
    });
    return n;
}

int
matrixExitCode(const std::vector<BenchmarkResults> &rows)
{
    std::size_t failed = 0;
    std::size_t total = 0;
    for (const BenchmarkResults &r : rows) {
        total += r.totalLegs();
        failed += r.failedLegs();
    }
    if (!failed)
        return exitOk;
    return failed == total ? exitTotalFailure : exitPartialFailure;
}

std::uint64_t
countInvariantViolations(const std::vector<BenchmarkResults> &rows)
{
    std::uint64_t n = 0;
    for (const BenchmarkResults &r : rows) {
        forEachRun(r, [&](const std::string &, const RunResult &run) {
            if (run.telemetry && run.telemetry->invariants())
                n += run.telemetry->invariants()->violations();
        });
    }
    return n;
}

bool
invariantsFatalFromEnv()
{
    return config::RunSpec::resolve().boolean("invariantsFatal");
}

void
writeHostProfileFromEnv()
{
    obs::HostProfiler &prof = obs::HostProfiler::instance();
    if (!prof.enabled())
        return;
    std::string path = config::RunSpec::resolve().str("profOut");
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "  MCD_PROF_OUT: cannot write %s\n",
                     path.c_str());
        return;
    }
    prof.writeProfile(os);
}

ExperimentConfig
experimentConfigFromSpec(const config::RunSpec &spec, DvfsKind model,
                         const std::string &defaultCacheDir)
{
    ExperimentConfig ec;
    ec.model = model;
    if (std::string m = spec.str("model"); !m.empty()) {
        std::optional<DvfsKind> k = dvfsKindFromName(m);
        if (!k)
            fatal("model: unknown DVFS model '" + m + "' (valid: " +
                  dvfsKindNames() + ")");
        ec.model = *k;
    }
    ec.scale = static_cast<int>(spec.integer("scale"));
    ec.seed = spec.u64("seed");
    ec.dvfsTimeScale = spec.real("dvfsTimeScale");
    ec.dilationLow = spec.real("dilationLow");
    ec.dilationHigh = spec.real("dilationHigh");
    ec.legAttempts = static_cast<int>(spec.integer("legAttempts"));
    ec.watchdogNoProgressEdges = spec.u64("watchdogEdges");
    ec.watchdogMaxTicks = spec.u64("watchdogTicks");
    // An option left at its default takes the caller's directory; an
    // explicitly empty value (MCD_CACHE_DIR=) still disables caching.
    ec.cacheDir = spec.isDefault("cacheDir") ? defaultCacheDir
                                             : spec.str("cacheDir");
    if (std::string smp = spec.str("sampling"); !smp.empty())
        ec.sampling = SamplingParams::fromSpec(smp);
    return ec;
}

std::vector<std::string>
benchmarkNamesFromSpec(const config::RunSpec &spec)
{
    std::vector<std::string> names;
    std::string filter = spec.str("benchmarks");
    if (filter.empty()) {
        for (const WorkloadInfo &w : workloads::all())
            names.emplace_back(w.name);
        return names;
    }
    for (const std::string &item : config::splitList(filter)) {
        bool known = false;
        for (const WorkloadInfo &w : workloads::all())
            known = known || item == w.name;
        if (!known)
            fatal("benchmarks: unknown benchmark '" + item + "'");
        names.push_back(item);
    }
    if (names.empty())
        fatal("benchmarks: empty benchmark list");
    return names;
}

std::vector<std::string>
ExperimentConfig::validateAll() const
{
    std::vector<std::string> errs;
    auto fail = [&](std::string m) { errs.push_back(std::move(m)); };

    if (scale < 1)
        fail("ExperimentConfig: scale must be >= 1");
    auto dilation = [&](double d, const std::string &what) {
        if (!std::isfinite(d) || d <= 0.0 || d >= 1.0)
            fail("ExperimentConfig: " + what +
                 " must lie in (0, 1) (got " + std::to_string(d) + ")");
    };
    dilation(dilationLow, "dilationLow");
    dilation(dilationHigh, "dilationHigh");
    if (dilationLow > dilationHigh)
        fail("ExperimentConfig: dilationLow must not exceed "
             "dilationHigh");
    if (!std::isfinite(dvfsTimeScale) || dvfsTimeScale <= 0.0)
        fail("ExperimentConfig: dvfsTimeScale must be finite and > 0");
    if (legAttempts < 1)
        fail("ExperimentConfig: legAttempts must be >= 1");
    if (online.interval == 0)
        fail("ExperimentConfig: online.interval must be > 0");
    if (sampling) {
        try {
            sampling->validate();
        } catch (const FatalError &e) {
            fail(e.what());
        }
    }
    // Compile the invariant spec now so a typo aborts with a usage
    // error before any leg runs (parseSpec fatal()s on bad input).
    if (!telemetry.invariants.empty()) {
        try {
            obs::InvariantEngine::parseSpec(telemetry.invariants);
        } catch (const FatalError &e) {
            fail(e.what());
        }
    }

    // Leg-set validation (an empty vector means "defaults", resolved
    // by the runner or runMatrix; the defaults pass by construction).
    for (std::size_t i = 0; i < legs.size(); ++i) {
        const LegSpec &l = legs[i];
        if (l.name.empty() ||
            l.name.find_first_not_of("abcdefghijklmnopqrstuvwxyz"
                                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                     "0123456789_.-") !=
                std::string::npos) {
            fail("ExperimentConfig: invalid leg name '" + l.name +
                 "' (use [A-Za-z0-9_.-]+)");
        }
        if (l.name == "baseline" || l.name == "mcdBaseline")
            fail("ExperimentConfig: leg name '" + l.name +
                 "' is reserved for the fixed reference runs");
        for (std::size_t j = 0; j < i; ++j) {
            if (legs[j].name == l.name)
                fail("ExperimentConfig: duplicate leg name '" +
                     l.name + "'");
        }
        switch (l.kind) {
          case LegSpec::Kind::ScheduleReplay:
            dilation(l.dilation, "leg '" + l.name + "' dilation");
            break;
          case LegSpec::Kind::GlobalSearch: {
            bool found = false;
            for (const LegSpec &o : legs) {
                if (o.name == l.reference &&
                    o.kind != LegSpec::Kind::GlobalSearch) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                fail("ExperimentConfig: leg '" + l.name +
                     "' references '" + l.reference +
                     "', which is not a non-search leg in the set");
            }
            break;
          }
          case LegSpec::Kind::Controller: {
            // Dry-build the controller so an unknown name (the fatal
            // enumerates the registered ones) or a malformed param
            // spec aborts the matrix up front, not mid-run.
            try {
                ControllerContext ctx{DvfsTable{}, seed, online};
                ControllerRegistry::instance().make(l.controller, ctx,
                                                    l.params);
            } catch (const FatalError &e) {
                fail(e.what());
            }
            break;
          }
        }
    }
    return errs;
}

void
ExperimentConfig::validate() const
{
    std::vector<std::string> errs = validateAll();
    if (errs.empty())
        return;
    if (errs.size() == 1)
        fatal(errs.front());
    std::string msg = "ExperimentConfig: " + std::to_string(errs.size()) +
        " invalid settings:";
    for (const std::string &e : errs)
        msg += "\n  - " + e;
    fatal(msg);
}

namespace {

/**
 * The (name, actual canonical value) rows of the effectiveConfig
 * block: every affectsResults option from the registry, valued from
 * the *actual* finished-run configuration — not the resolved spec —
 * so feeding the block back via --config reproduces the run even when
 * the calling program set values programmatically (provenance then
 * reads "code"). Host and output options are deliberately absent:
 * results are bit-identical across MCD_JOBS/cache/output settings,
 * and the block must be too.
 */
std::vector<std::pair<std::string, std::string>>
effectiveOptions(const ExperimentConfig &cfg,
                 const std::vector<BenchmarkResults> &rows,
                 const config::RunSpec &spec)
{
    std::string benches;
    for (const BenchmarkResults &r : rows) {
        if (!benches.empty())
            benches += ",";
        benches += r.name;
    }
    std::vector<std::pair<std::string, std::string>> out;
    for (const config::OptionDef &o : config::options()) {
        if (!o.affectsResults)
            continue;
        std::string_view name = o.name;
        std::string v;
        if (name == "benchmarks")
            v = benches;
        else if (name == "controllers")
            v = spec.str("controllers");
        else if (name == "dilationHigh")
            v = config::canonicalDouble(cfg.dilationHigh);
        else if (name == "dilationLow")
            v = config::canonicalDouble(cfg.dilationLow);
        else if (name == "dvfsTimeScale")
            v = config::canonicalDouble(cfg.dvfsTimeScale);
        else if (name == "faultPlan")
            v = cfg.faults ? cfg.faults->toSpec() : "";
        else if (name == "invariants")
            v = cfg.telemetry.invariants;
        else if (name == "legAttempts")
            v = std::to_string(cfg.legAttempts);
        else if (name == "legs")
            v = legsToSpec(cfg.legs);
        else if (name == "model")
            v = dvfsKindName(cfg.model);
        else if (name == "sampling")
            v = cfg.sampling ? cfg.sampling->spec() : "";
        else if (name == "scale")
            v = std::to_string(cfg.scale);
        else if (name == "seed")
            v = std::to_string(cfg.seed);
        else if (name == "tournament")
            v = spec.str("tournament");
        else if (name == "watchdogEdges")
            v = std::to_string(cfg.watchdogNoProgressEdges);
        else if (name == "watchdogTicks")
            v = std::to_string(cfg.watchdogMaxTicks);
        else
            panic("effectiveOptions: unhandled result-shaping option "
                  + std::string(name));
        out.emplace_back(std::string(name), std::move(v));
    }
    return out;
}

/** The effectiveConfig fragment, rendered for embedding at
 *  @p indent. */
std::string
renderEffectiveConfig(const ExperimentConfig &cfg,
                      const std::vector<BenchmarkResults> &rows,
                      const config::RunSpec &spec,
                      const std::string &indent)
{
    std::ostringstream os;
    config::writeEffectiveConfigJson(os, indent, spec,
                                     effectiveOptions(cfg, rows, spec));
    return os.str();
}

} // namespace

void
writeResultsJson(std::ostream &os, const ExperimentConfig &cfg,
                 const std::vector<BenchmarkResults> &rows)
{
    os << std::setprecision(17);
    os << "{\n"
       << "  \"config\": {\n"
       << "    \"scale\": " << cfg.scale << ",\n"
       << "    \"model\": \"" << dvfsKindName(cfg.model) << "\",\n"
       << "    \"dvfsTimeScale\": " << cfg.dvfsTimeScale << ",\n"
       << "    \"dilationLow\": " << cfg.dilationLow << ",\n"
       << "    \"dilationHigh\": " << cfg.dilationHigh << ",\n"
       << "    \"onlineIntervalPs\": " << cfg.online.interval << ",\n"
       << "    \"seed\": " << cfg.seed;
    // Sampled matrices are clearly labeled; a full-detail document
    // stays byte-identical to pre-sampling builds.
    if (cfg.sampling)
        os << ",\n    \"sampling\": \"" << cfg.sampling->spec() << "\"";
    os << "\n  },\n"
       << "  \"effectiveConfig\": "
       << renderEffectiveConfig(cfg, rows, config::RunSpec::resolve(),
                                "  ")
       << ",\n"
       << "  \"benchmarks\": [";
    bool firstRow = true;
    for (const BenchmarkResults &r : rows) {
        os << (firstRow ? "" : ",") << "\n    {\n"
           << "      \"name\": \"" << r.name << "\",\n"
           << "      \"globalFrequencyHz\": " << r.globalFrequency
           << ",\n"
        // The legacy schedule-size keys survive the leg refactor so
        // documents from the default leg set stay byte-identical.
           << "      \"schedule1Size\": " << r.scheduleSize("dyn1")
           << ",\n"
           << "      \"schedule5Size\": " << r.scheduleSize("dyn5")
           << ",\n"
           << "      \"runs\": {\n";
        const std::size_t total = r.totalLegs();
        std::size_t idx = 0;
        forEachRun(r, [&](const std::string &tag, const RunResult &run) {
            os << "        \"" << obs::jsonEscape(tag) << "\": ";
            jsonRun(os, "        ", run);
            os << (++idx < total ? ",\n" : "\n");
        });
        os << "      },\n"
           << "      \"derived\": {";
        // Derived metrics are ratios against the baseline leg, so a
        // failed run (all-zero numerics) or a failed baseline would
        // emit nonsense (inf/nan is not even valid JSON) — skip them.
        bool firstDerived = true;
        auto derived = [&](const std::string &tag, const RunResult &run) {
            if (run.failed() || r.baseline.failed())
                return;
            os << (firstDerived ? "" : ",") << "\n"
               << "        \"" << obs::jsonEscape(tag) << "\": {"
               << "\"perfDegradation\": " << r.perfDegradation(run)
               << ", \"energySavings\": " << r.energySavings(run)
               << ", \"edpImprovement\": " << r.edpImprovement(run)
               << "}";
            firstDerived = false;
        };
        derived("mcdBaseline", r.mcdBaseline);
        for (const ControllerLeg &l : r.legs)
            derived(l.spec.name, l.run);
        os << "\n      }\n    }";
        firstRow = false;
    }
    os << "\n  ]";

    // Failure surface: emitted only when something failed, so a clean
    // matrix's document stays byte-identical to earlier versions.
    bool anyFailed = false;
    for (const BenchmarkResults &r : rows)
        anyFailed = anyFailed || r.anyFailed();
    if (anyFailed) {
        os << ",\n  \"failures\": [";
        bool first = true;
        for (const BenchmarkResults &r : rows) {
            forEachRun(r, [&](const std::string &tag,
                              const RunResult &run) {
                if (!run.failed())
                    return;
                const RunError &e = *run.error;
                os << (first ? "" : ",") << "\n    {"
                   << "\"benchmark\": \"" << obs::jsonEscape(r.name)
                   << "\", \"leg\": \"" << obs::jsonEscape(tag)
                   << "\", \"kind\": \"" << obs::jsonEscape(e.kind)
                   << "\", \"attempts\": " << e.attempts
                   << ", \"message\": \"" << obs::jsonEscape(e.message)
                   << "\"}";
                first = false;
            });
        }
        os << "\n  ],\n  \"exitCode\": " << matrixExitCode(rows);
    }

    // Invariant surface: likewise emitted only when a rule tripped,
    // so invariant-free documents do not change shape.
    if (countInvariantViolations(rows)) {
        os << ",\n  \"invariantViolations\": [";
        bool first = true;
        for (const BenchmarkResults &r : rows) {
            forEachRun(r, [&](const std::string &tag,
                              const RunResult &run) {
                if (!run.telemetry || !run.telemetry->invariants())
                    return;
                const obs::InvariantEngine *inv =
                    run.telemetry->invariants();
                for (const obs::InvariantViolation &v : inv->records()) {
                    os << (first ? "" : ",") << "\n    {"
                       << "\"benchmark\": \"" << obs::jsonEscape(r.name)
                       << "\", \"leg\": \"" << obs::jsonEscape(tag)
                       << "\", \"rule\": \"" << obs::jsonEscape(v.rule)
                       << "\", \"domain\": \"" << domainShortName(v.domain)
                       << "\", \"tickPs\": " << v.tick
                       << ", \"observed\": " << v.observed
                       << ", \"bound\": " << v.bound << "}";
                    first = false;
                }
            });
        }
        os << "\n  ]";
    }
    os << "\n}\n";
}

std::vector<LeaderboardRow>
computeLeaderboard(const std::vector<BenchmarkResults> &rows)
{
    std::vector<LeaderboardRow> out;
    if (rows.empty())
        return out;
    // The leg set is uniform across rows (one config per matrix), so
    // the first row names the contenders.
    for (const ControllerLeg &contender : rows[0].legs) {
        LeaderboardRow lr;
        lr.spec = contender.spec;
        double edp = 0.0, energy = 0.0, perf = 0.0;
        for (const BenchmarkResults &r : rows) {
            const ControllerLeg *l = r.findLeg(contender.spec.name);
            if (!l)
                continue;
            if (l->run.failed() || r.baseline.failed()) {
                ++lr.failed;
                continue;
            }
            ++lr.completed;
            edp += r.edpImprovement(l->run);
            energy += r.energySavings(l->run);
            perf += r.perfDegradation(l->run);
        }
        if (lr.completed) {
            lr.meanEdpImprovement = edp / lr.completed;
            lr.meanEnergySavings = energy / lr.completed;
            lr.meanPerfDegradation = perf / lr.completed;
        }
        out.push_back(std::move(lr));
    }
    std::sort(out.begin(), out.end(),
              [](const LeaderboardRow &a, const LeaderboardRow &b) {
                  if (a.meanEdpImprovement != b.meanEdpImprovement)
                      return a.meanEdpImprovement > b.meanEdpImprovement;
                  return a.spec.name < b.spec.name;
              });
    return out;
}

void
writeLeaderboardJson(std::ostream &os, const ExperimentConfig &cfg,
                     const std::vector<BenchmarkResults> &rows)
{
    std::vector<LeaderboardRow> board = computeLeaderboard(rows);
    os << std::setprecision(17);
    os << "{\n"
       << "  \"tournament\": {\n"
       << "    \"benchmarks\": " << rows.size() << ",\n"
       << "    \"legs\": " << board.size() << ",\n"
       << "    \"model\": \"" << dvfsKindName(cfg.model) << "\",\n"
       << "    \"scale\": " << cfg.scale << ",\n"
       << "    \"seed\": " << cfg.seed << "\n"
       << "  },\n"
       << "  \"leaderboard\": [";
    for (std::size_t i = 0; i < board.size(); ++i) {
        const LeaderboardRow &lr = board[i];
        os << (i ? "," : "") << "\n    {"
           << "\"rank\": " << i + 1
           << ", \"name\": \"" << obs::jsonEscape(lr.spec.name)
           << "\", \"kind\": \"" << legKindName(lr.spec.kind)
           << "\", \"controller\": \""
           << obs::jsonEscape(lr.spec.controller)
           << "\", \"params\": \"" << obs::jsonEscape(lr.spec.params)
           << "\", \"meanEdpImprovement\": " << lr.meanEdpImprovement
           << ", \"meanEnergySavings\": " << lr.meanEnergySavings
           << ", \"meanPerfDegradation\": " << lr.meanPerfDegradation
           << ", \"benchmarksCompleted\": " << lr.completed
           << ", \"benchmarksFailed\": " << lr.failed << "}";
    }
    os << "\n  ]\n}\n";
}

std::vector<NamedRun>
namedRuns(const std::vector<BenchmarkResults> &rows)
{
    std::vector<NamedRun> out;
    for (const BenchmarkResults &row : rows) {
        forEachRun(row, [&](const std::string &tag, const RunResult &run) {
            out.push_back({row.name + "/" + tag, &run});
        });
    }
    return out;
}

void
writeTelemetryStatsJson(std::ostream &os,
                        const std::vector<NamedRun> &runs,
                        const obs::StatsRegistry *matrix,
                        const obs::StatsRegistry *host,
                        const std::string *effectiveConfig)
{
    obs::StatsRegistry merged;
    os << "{\n  \"runs\": {";
    bool first = true;
    for (const NamedRun &nr : runs) {
        if (!nr.run || !nr.run->telemetry)
            continue;
        const obs::StatsRegistry &reg = nr.run->telemetry->stats();
        merged.merge(reg);
        os << (first ? "" : ",") << "\n    \""
           << obs::jsonEscape(nr.name) << "\": ";
        reg.writeJson(os, "    ");
        first = false;
    }
    os << "\n  },\n  \"merged\": ";
    merged.writeJson(os, "  ");
    if (matrix) {
        os << ",\n  \"matrix\": ";
        matrix->writeJson(os, "  ");
    }
    if (host) {
        os << ",\n  \"host\": ";
        host->writeJson(os, "  ");
    }
    if (effectiveConfig)
        os << ",\n  \"effectiveConfig\": " << *effectiveConfig;
    os << "\n}\n";
}

void
writeTelemetryTrace(std::ostream &os, const std::vector<NamedRun> &runs)
{
    std::vector<obs::TraceProcess> procs;
    std::size_t events = 0;
    Tick span = 0;
    for (const NamedRun &nr : runs) {
        if (nr.run && nr.run->telemetry) {
            const obs::TraceExporter &trace = nr.run->telemetry->trace();
            procs.push_back({nr.name, &trace});
            events += trace.events().size();
            for (const obs::TraceEvent &e : trace.events())
                span = std::max(span, e.ts + e.dur);
        }
    }
    obs::writeChromeTrace(os, procs);
    inform("trace export: " + std::to_string(events) + " events from " +
           std::to_string(procs.size()) + " runs spanning " +
           formatTick(span));
}

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg)
    : config(std::move(cfg))
{
    if (config.legs.empty())
        config.legs = defaultLegs(config);
}

SimConfig
ExperimentRunner::makeSimConfig(ClockingStyle style,
                                const std::string &site) const
{
    SimConfig sc;
    sc.clocking = style;
    sc.seed = config.seed;
    sc.telemetry = config.telemetry;
    sc.watchdogNoProgressEdges = config.watchdogNoProgressEdges;
    sc.watchdogMaxTicks = config.watchdogMaxTicks;
    sc.sampling = config.sampling;
    sc.faults = config.faults.get();
    sc.faultSite = site;
    return sc;
}

RunResult
ExperimentRunner::runOnce(const Program &prog, const SimConfig &sc) const
{
    McdProcessor proc(sc, prog);
    return proc.run();
}

std::string
ExperimentRunner::cacheKey(const std::string &name) const
{
    // The online law's tuning parameters all shape the cached online
    // record, so fold them into the key to prevent stale aliasing.
    const OnlineQueueParams &oq = config.online;
    char buf[288];
    std::snprintf(buf, sizeof(buf),
                  "%s-s%d-%s-ts%.4f-d%.3f-%.3f"
                  "-oi%.2f-oa%.2f-%d-%d-%d-ow%.2f-%.2f-%.2f-%d"
                  "-seed%llu",
                  name.c_str(), config.scale, dvfsKindName(config.model),
                  config.dvfsTimeScale, config.dilationLow,
                  config.dilationHigh,
                  static_cast<double>(oq.interval) / 1e6,
                  oq.attackThreshold, oq.attackPoints, oq.decayPoints,
                  oq.idleDecayPoints, oq.highWater, oq.holdWater,
                  oq.idleWater, oq.scaleFrontEnd ? 1 : 0,
                  static_cast<unsigned long long>(config.seed));
    std::string key = buf;
    // The leg set shapes every cached record, so two matrices with
    // different legs (or the same leg names with different params)
    // must never share a file: fold a hash of the full leg-spec set
    // plus the leg count into the key.
    {
        std::string tokens;
        for (const LegSpec &l : config.legs) {
            tokens += l.keyToken();
            tokens += '|';
        }
        char legBuf[48];
        std::snprintf(legBuf, sizeof(legBuf), "-L%016llx-n%llu",
                      static_cast<unsigned long long>(fnv1a(tokens)),
                      static_cast<unsigned long long>(
                          config.legs.size()));
        key += legBuf;
    }
    // Sampled matrices are never cached (see loadCache/storeCache),
    // but fold the operating point into the key anyway so a sampled
    // and a full-detail matrix can never collide even if the bypass
    // rule changes.
    if (config.sampling)
        key += "-smp" + config.sampling->keyToken();
    return key;
}

std::string
ExperimentRunner::cachePath(const std::string &name) const
{
    if (config.cacheDir.empty())
        return {};
    return config.cacheDir + "/" + cacheKey(name) + ".txt";
}

std::optional<BenchmarkResults>
ExperimentRunner::loadCache(const std::string &name) const
{
    // Cached results carry no telemetry, so a telemetry-collecting
    // matrix must actually run (storing is still fine: telemetry does
    // not perturb the simulation, so the records stay valid).
    if (config.telemetry.enabled())
        return std::nullopt;
    // Sampled results are estimates with a stated error bound; the
    // cache stores exact full-detail numbers only.
    if (config.sampling)
        return std::nullopt;
    // A benchmark with armed leg faults must actually run, or the
    // cache would mask the injection.
    if (config.faults && config.faults->legFaultsFor(name))
        return std::nullopt;
    std::string path = cachePath(name);
    if (path.empty())
        return std::nullopt;

    // Injected cache damage: break the file on disk before the read,
    // so the checksum verification and quarantine below are exercised
    // against real filesystem state.
    if (config.faults) {
        if (auto kind = config.faults->cacheFault(name))
            fault::damageFile(path, *kind);
    }

    obs::HostProfiler::Scope prof =
        obs::HostProfiler::instance().phase("cache.read", name);

    std::ifstream in(path);
    if (!in)
        return std::nullopt;

    // A stale format version is expected churn (silent recompute); a
    // file with the *current* version that still fails to parse or
    // checksum is damage worth flagging.
    std::string header;
    std::getline(in, header);
    if (header != expcache::version)
        return std::nullopt;
    in.clear();
    in.seekg(0);
    if (auto cached = expcache::read(in, name)) {
        // Belt and braces: the key already hashes the leg set, but
        // verify the record's leg names anyway; a mismatch means a
        // hash collision or hand-edited file — recompute silently.
        if (cached->legs.size() != config.legs.size())
            return std::nullopt;
        for (std::size_t i = 0; i < config.legs.size(); ++i) {
            if (cached->legs[i].spec.name != config.legs[i].name)
                return std::nullopt;
        }
        // Cache records carry only the leg name; rehydrate the full
        // specs (kind, display, params) from the live config.
        for (std::size_t i = 0; i < config.legs.size(); ++i)
            cached->legs[i].spec = config.legs[i];
        return cached;
    }
    in.close();

    // Quarantine: move the bad bytes aside (kept for inspection) so
    // they can never poison this or a later run, then recompute.
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (!ec) {
        warn("experiment cache " + path +
             " is corrupt; quarantined as .corrupt and recomputing");
        ++quarantines;
    }
    return std::nullopt;
}

void
ExperimentRunner::storeCache(const BenchmarkResults &r) const
{
    // Never publish degraded rows: a failed leg's zeros would silently
    // satisfy every later run. Rows produced under armed leg faults
    // are likewise tainted (a flaky leg that retried to success is
    // numerically clean, but keeping the rule kind-independent keeps
    // injected matrices byte-identical to uncached ones).
    if (r.anyFailed())
        return;
    if (config.sampling)
        return;     // estimates never enter the exact-result cache
    if (config.faults && config.faults->legFaultsFor(r.name))
        return;
    std::string path = cachePath(r.name);
    if (path.empty())
        return;
    obs::HostProfiler::Scope prof =
        obs::HostProfiler::instance().phase("cache.write", r.name);
    std::error_code ec;
    std::filesystem::create_directories(config.cacheDir, ec);

    // Write to a temporary and rename into place so a concurrently
    // running bench binary can never observe a torn cache file. The
    // pid suffix keeps two processes racing on the same key from
    // interleaving writes within one temporary.
    std::string tmp = path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        expcache::write(out, r);
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

RunResult
ExperimentRunner::profileLeg(const Program &prog,
                             std::vector<InstTrace> &trace_out,
                             const std::string &site) const
{
    // Baseline MCD (all domains statically at 1 GHz); doubles as the
    // profiling run for the offline tool.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd, site);
    profCfg.collectTrace = true;
    // The offline tool needs every instruction's timestamps: the
    // profiling run always executes in full detail.
    profCfg.sampling.reset();
    McdProcessor prof(profCfg, prog);
    RunResult r = prof.run();
    trace_out = prof.takeTrace();
    return r;
}

RunResult
ExperimentRunner::controllerLeg(const Program &prog, const LegSpec &leg,
                                const std::string &site) const
{
    // A registry-built controller drives MCD clocking at runtime.
    // Seeded from the experiment seed so the leg is reproducible and
    // job-count independent.
    SimConfig sc = makeSimConfig(ClockingStyle::Mcd, site);
    sc.dvfs = config.model;
    sc.dvfsTimeScale = config.dvfsTimeScale;
    ControllerContext ctx{DvfsTable{}, config.seed, config.online};
    std::unique_ptr<DvfsController> ctrl =
        ControllerRegistry::instance().make(leg.controller, ctx,
                                            leg.params);
    sc.controller = ctrl.get();
    return runOnce(prog, sc);
}

ExperimentRunner::DynLeg
ExperimentRunner::dynamicLeg(const Program &prog,
                             const std::vector<InstTrace> &trace,
                             double target_dilation,
                             const std::string &site) const
{
    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = [&] {
        obs::HostProfiler::Scope prof =
            obs::HostProfiler::instance().phase("analyze", site);
        return analyzer.analyze(trace);
    }();
    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd, site);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    DynLeg leg;
    leg.result = runOnce(prog, dynCfg);
    leg.scheduleSize = analysis.schedule.size();
    return leg;
}

ExperimentRunner::GlobalOut
ExperimentRunner::globalLeg(const Program &prog,
                            const BenchmarkResults &r,
                            const RunResult &reference,
                            const std::string &site) const
{
    // Global voltage scaling: single clock at the table frequency
    // whose degradation best matches the reference leg (paper
    // Section 4; dynamic-5% in the default matrix).
    double target = r.perfDegradation(reference);
    DvfsTable table;
    int lo = 0;
    int hi = table.numPoints() - 1;
    // Degradation decreases monotonically with frequency: find the
    // slowest point whose degradation does not exceed the target.
    GlobalOut best;
    best.frequency = table.fastest().frequency;
    double bestDist = 1e300;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        Hertz f = table.point(mid).frequency;
        SimConfig sc = makeSimConfig(ClockingStyle::SingleClock, site);
        sc.domainFrequency = {f, f, f, f};
        sc.mem.dramScalesWithClock = true;
        RunResult res = runOnce(prog, sc);
        double deg = r.perfDegradation(res);
        double dist = std::fabs(deg - target);
        if (dist < bestDist) {
            bestDist = dist;
            best.result = res;
            best.frequency = f;
        }
        if (deg > target)
            lo = mid + 1;   // too slow; raise frequency
        else
            hi = mid - 1;   // within target; try slower
    }
    return best;
}

ExperimentRunner::DynamicRun
ExperimentRunner::runDynamic(const std::string &name,
                             double target_dilation)
{
    Program prog = workloads::build(name, config.scale);

    // Profiling run: baseline MCD at full speed, trace collection on.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    prof.run();

    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());

    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    dynCfg.recordFreqTrace = config.recordFreqTrace;

    DynamicRun out;
    out.result = runOnce(prog, dynCfg);
    out.analysis = std::move(analysis);
    return out;
}

RunResult
ExperimentRunner::runGuarded(const std::string &bench,
                             const std::string &leg,
                             const std::function<RunResult()> &body) const
{
    const std::string site = bench + "/" + leg;
    obs::HostProfiler &hostProf = obs::HostProfiler::instance();
    obs::HostProfiler::Scope profScope =
        hostProf.phase("simulate", site);
    auto wall0 = std::chrono::steady_clock::now();
    auto noteLeg = [&] {
        if (!hostProf.enabled())
            return;
        double ms = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0).count();
        hostProf.noteLeg(site, ms, obs::HostProfiler::peakRssKb());
    };
    RunError err;
    for (int attempt = 1; attempt <= config.legAttempts; ++attempt) {
        try {
            // The injection point is a pure function of (site,
            // attempt), and attempts are strictly sequential within
            // one leg, so outcomes are job-count independent.
            if (config.faults)
                config.faults->onLegAttempt(site, attempt);
            RunResult r = body();
            r.attempts = attempt;
            noteLeg();
            return r;
        } catch (const fault::InjectedFault &e) {
            err = {site, "injected", e.what(), attempt};
            if (e.transient() && attempt < config.legAttempts)
                continue;               // bounded deterministic retry
            break;
        } catch (const WatchdogError &e) {
            err = {site, "watchdog", e.what(), attempt};
            break;
        } catch (const FatalError &e) {
            err = {site, "fatal", e.what(), attempt};
            break;
        } catch (const PanicError &e) {
            err = {site, "panic", e.what(), attempt};
            break;
        } catch (const std::exception &e) {
            err = {site, "exception", e.what(), attempt};
            break;
        }
    }
    warn("leg " + site + " failed (" + err.kind + ", attempt " +
         std::to_string(err.attempts) + "): " + err.message);
    noteLeg();
    RunResult failed;
    failed.benchmark = bench;
    failed.attempts = err.attempts;
    failed.error = std::move(err);
    return failed;
}

RunResult
ExperimentRunner::dependencyFailed(const std::string &bench,
                                   const std::string &leg,
                                   const std::string &upstream) const
{
    RunResult r;
    r.benchmark = bench;
    r.attempts = 0;     // never attempted
    r.error = RunError{bench + "/" + leg, "dependency",
                       upstream + " leg failed", 0};
    return r;
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name)
{
    // A zero-worker pool executes every leg inline at submission, in
    // the same order as the historical serial code.
    ThreadPool inlinePool(0);
    return runBenchmark(name, inlinePool);
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name, ThreadPool &pool)
{
    if (auto cached = loadCache(name))
        return *cached;

    BenchmarkResults r;
    r.name = name;
    r.legs.reserve(config.legs.size());
    for (const LegSpec &spec : config.legs)
        r.legs.push_back({spec, RunResult{}, 0});

    const Program prog = workloads::build(name, config.scale);

    // Every leg runs under runGuarded *inside* its submitted lambda:
    // a leg never throws across the pool boundary, so one dead leg
    // can neither abort the matrix nor strand sibling tasks that
    // still reference this frame's prog/trace.
    //
    // r.legs is fully sized above and never resized again, so element
    // pointers handed to lambdas stay valid for the frame's lifetime.

    // The singly clocked baseline is independent of everything else;
    // run it concurrently with the profiling leg.
    auto baseFut = pool.submit([this, &name, &prog] {
        return runGuarded(name, "baseline", [&] {
            return runOnce(prog,
                           makeSimConfig(ClockingStyle::SingleClock,
                                         name + "/baseline"));
        });
    });

    // Controller legs need neither the trace nor the baseline; fully
    // independent, so they fan out first.
    struct CtrlFut
    {
        std::size_t idx;
        std::future<RunResult> fut;
        bool settled = false;
    };
    std::vector<CtrlFut> ctrlFuts;
    for (std::size_t i = 0; i < r.legs.size(); ++i) {
        const LegSpec *spec = &r.legs[i].spec;
        if (spec->kind != LegSpec::Kind::Controller)
            continue;
        ctrlFuts.push_back({i, pool.submit([this, &name, &prog, spec] {
            return runGuarded(name, spec->name, [&] {
                return controllerLeg(prog, *spec,
                                     name + "/" + spec->name);
            });
        })});
    }
    auto settleController = [&](const std::string &legName) {
        for (CtrlFut &cf : ctrlFuts) {
            if (!cf.settled && r.legs[cf.idx].spec.name == legName) {
                r.legs[cf.idx].run = pool.wait(cf.fut);
                cf.settled = true;
            }
        }
    };

    // Baseline MCD / profiling run (produces the trace).
    std::vector<InstTrace> trace;
    auto profFut = pool.submit([this, &name, &prog, &trace] {
        return runGuarded(name, "mcdBaseline", [&] {
            return profileLeg(prog, trace, name + "/mcdBaseline");
        });
    });
    r.mcdBaseline = pool.wait(profFut);

    // Schedule-replay legs analyze and simulate independently off the
    // shared (now read-only) trace. The schedule sizes ride out via
    // the pre-sized vector, each slot written only before its lambda
    // returns (i.e. before wait() synchronizes with it).
    std::vector<std::size_t> schedSizes(r.legs.size(), 0);
    std::vector<std::pair<std::size_t, std::future<RunResult>>>
        replayFuts;
    for (std::size_t i = 0; i < r.legs.size(); ++i) {
        const LegSpec *spec = &r.legs[i].spec;
        if (spec->kind != LegSpec::Kind::ScheduleReplay)
            continue;
        if (r.mcdBaseline.failed()) {
            // No profiling trace: the offline tool has nothing to
            // chew on.
            r.legs[i].run = dependencyFailed(name, spec->name,
                                             "mcdBaseline");
            continue;
        }
        replayFuts.emplace_back(
            i, pool.submit([this, &name, &prog, &trace, &schedSizes,
                            spec, i] {
                return runGuarded(name, spec->name, [&] {
                    DynLeg leg = dynamicLeg(prog, trace, spec->dilation,
                                            name + "/" + spec->name);
                    schedSizes[i] = leg.scheduleSize;
                    return leg.result;
                });
            }));
    }
    for (auto &[idx, fut] : replayFuts) {
        r.legs[idx].run = pool.wait(fut);
        r.legs[idx].scheduleSize = schedSizes[idx];
    }

    // Global-search legs need the baseline plus their reference leg;
    // they run last, on this thread (each is itself a serial binary
    // search of full simulations).
    r.baseline = pool.wait(baseFut);
    for (std::size_t i = 0; i < r.legs.size(); ++i) {
        const LegSpec &spec = r.legs[i].spec;
        if (spec.kind != LegSpec::Kind::GlobalSearch)
            continue;
        // The reference may itself be a controller leg still in
        // flight — settle it (and only it) before deciding.
        settleController(spec.reference);
        const ControllerLeg *ref = r.findLeg(spec.reference);
        if (r.baseline.failed() || !ref || ref->run.failed()) {
            r.legs[i].run = dependencyFailed(
                name, spec.name,
                r.baseline.failed() ? "baseline" : spec.reference);
            continue;
        }
        r.legs[i].run = runGuarded(name, spec.name, [&] {
            GlobalOut g = globalLeg(prog, r, ref->run,
                                    name + "/" + spec.name);
            r.globalFrequency = g.frequency;
            return g.result;
        });
    }

    for (CtrlFut &cf : ctrlFuts) {
        if (!cf.settled)
            r.legs[cf.idx].run = pool.wait(cf.fut);
    }

    storeCache(r);
    return r;
}

ExperimentRunner::OnlineRun
ExperimentRunner::runOnline(const std::string &name)
{
    Program prog = workloads::build(name, config.scale);
    OnlineRun out;
    out.mcdBaseline = runOnce(prog, makeSimConfig(ClockingStyle::Mcd));
    out.online = controllerLeg(
        prog, LegSpec::controllerLeg("online", "online-queue"), {});
    return out;
}

namespace {

/** Honor the resultsJson option: dump the finished matrix there. */
void
maybeWriteJson(const config::RunSpec &spec, const ExperimentConfig &cfg,
               const std::vector<BenchmarkResults> &out)
{
    std::string path = spec.str("resultsJson");
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "  MCD_RESULTS_JSON: cannot write %s\n",
                     path.c_str());
        return;
    }
    writeResultsJson(os, cfg, out);
}

/** Honor the leaderboardJson option: dump the ranked leaderboard. */
void
maybeWriteLeaderboard(const config::RunSpec &spec,
                      const ExperimentConfig &cfg,
                      const std::vector<BenchmarkResults> &out)
{
    std::string path = spec.str("leaderboardJson");
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr,
                     "  MCD_LEADERBOARD_JSON: cannot write %s\n",
                     path.c_str());
        return;
    }
    writeLeaderboardJson(os, cfg, out);
}

/** Honor the statsOut / traceOut options: dump merged telemetry. */
void
maybeWriteTelemetry(const config::RunSpec &spec,
                    const ExperimentConfig &cfg,
                    const std::vector<BenchmarkResults> &out,
                    const obs::StatsRegistry *matrix,
                    const obs::StatsRegistry *host)
{
    auto writeTo = [&](const char *option, auto writer) {
        std::string path = spec.str(option);
        if (path.empty())
            return;
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "  %s: cannot write %s\n", option,
                         path.c_str());
            return;
        }
        writer(os);
    };
    std::vector<NamedRun> named = namedRuns(out);
    writeTo("statsOut", [&](std::ostream &os) {
        std::string eff = renderEffectiveConfig(cfg, out, spec, "  ");
        writeTelemetryStatsJson(os, named, matrix, host, &eff);
    });
    writeTo("traceOut", [&](std::ostream &os) {
        writeTelemetryTrace(os, named);
    });
}

/**
 * The effective matrix config: the traceOut / statsOut options imply
 * full telemetry collection when the caller left it off, the
 * faultPlan option supplies a fault plan when the caller passed none,
 * and an empty leg vector resolves to the legs option, the tournament
 * set (tournament option), or the paper defaults — optionally
 * filtered down by the controllers option. Spec options only ever
 * fill dimensions the caller left at their defaults, so programmatic
 * configurations (tests, the examples) stay authoritative.
 */
ExperimentConfig
effectiveConfig(const ExperimentConfig &cfg,
                const config::RunSpec &spec)
{
    ExperimentConfig e = cfg;
    if (!e.telemetry.enabled() &&
        (!spec.str("traceOut").empty() ||
         !spec.str("statsOut").empty())) {
        e.telemetry = obs::TelemetryConfig::full();
    }
    // The invariant engine rides on top of whatever channels are
    // already on (it is itself a telemetry channel, so it also turns
    // enabled() on and thereby bypasses the cache).
    if (e.telemetry.invariants.empty())
        e.telemetry.invariants = spec.str("invariants");
    if (!e.sampling) {
        if (std::string v = spec.str("sampling"); !v.empty())
            e.sampling = SamplingParams::fromSpec(v);
    }
    if (!e.faults) {
        if (std::string v = spec.str("faultPlan"); !v.empty())
            e.faults = std::make_shared<const fault::FaultPlan>(
                fault::FaultPlan::parse(v));
    }

    if (e.legs.empty()) {
        if (std::string v = spec.str("legs"); !v.empty())
            e.legs = legsFromSpec(v);
        else if (spec.boolean("tournament"))
            e.legs = tournamentLegs(e);
        else
            e.legs = defaultLegs(e);
    }
    if (std::string v = spec.str("controllers"); !v.empty()) {
        std::vector<std::string> want = config::splitList(v);
        auto available = [&] {
            std::string known;
            for (const LegSpec &l : e.legs) {
                if (!known.empty())
                    known += ", ";
                known += l.name;
            }
            return known;
        };
        if (want.empty())
            fatal("MCD_CONTROLLERS: no leg names given (available: " +
                  available() + ")");
        for (const std::string &n : want) {
            bool known = false;
            for (const LegSpec &l : e.legs)
                known = known || l.name == n;
            if (!known)
                fatal("MCD_CONTROLLERS: unknown leg '" + n +
                      "' (available: " + available() + ")");
        }
        std::vector<LegSpec> kept;
        for (LegSpec &l : e.legs) {
            if (std::find(want.begin(), want.end(), l.name) !=
                want.end()) {
                kept.push_back(std::move(l));
            }
        }
        for (const LegSpec &l : kept) {
            if (l.kind != LegSpec::Kind::GlobalSearch)
                continue;
            bool refKept = false;
            for (const LegSpec &o : kept)
                refKept = refKept || o.name == l.reference;
            if (!refKept)
                fatal("MCD_CONTROLLERS: leg '" + l.name +
                      "' needs its reference leg '" + l.reference +
                      "'; add it to the list or drop '" + l.name + "'");
        }
        e.legs = std::move(kept);
    }
    return e;
}

/**
 * Matrix health counters for the stats document and the end-of-run
 * summary. Returns true (via @p degraded) when anything failed, was
 * retried, or was quarantined — a clean matrix skips the registry
 * entirely so its stats JSON is byte-identical to earlier versions.
 */
bool
matrixHealth(obs::StatsRegistry &reg,
             const std::vector<BenchmarkResults> &rows,
             std::uint64_t quarantined)
{
    std::uint64_t ok = 0;
    std::uint64_t failedLegs = 0;
    std::uint64_t retried = 0;
    for (const BenchmarkResults &r : rows) {
        std::uint64_t f = r.failedLegs();
        failedLegs += f;
        ok += r.totalLegs() - f;
        forEachRun(r, [&](const std::string &, const RunResult &run) {
            retried += run.attempts > 1 ? 1 : 0;
        });
    }
    reg.counter("matrix.legs.ok", "matrix legs that completed")
        .inc(ok);
    reg.counter("matrix.legs.failed",
                "matrix legs recorded as failed").inc(failedLegs);
    reg.counter("matrix.legs.retried",
                "matrix legs that needed more than one attempt")
        .inc(retried);
    reg.counter("matrix.cache.quarantined",
                "corrupt cache files renamed *.corrupt").inc(quarantined);
    return failedLegs != 0 || retried != 0 || quarantined != 0;
}

/** Shared post-run tail: documents, health, degradation summary. */
void
finishMatrix(const ExperimentConfig &cfg,
             const std::vector<BenchmarkResults> &out,
             const ExperimentRunner &runner)
{
    const config::RunSpec spec = config::RunSpec::resolve();
    obs::StatsRegistry health;
    bool degraded = matrixHealth(health, out, runner.cacheQuarantines());
    obs::HostProfiler &prof = obs::HostProfiler::instance();
    obs::StatsRegistry hostStats;
    if (prof.enabled())
        prof.publish(hostStats);
    maybeWriteJson(spec, cfg, out);
    maybeWriteLeaderboard(spec, cfg, out);
    maybeWriteTelemetry(spec, cfg, out, degraded ? &health : nullptr,
                        prof.enabled() ? &hostStats : nullptr);
    writeHostProfileFromEnv();
    if (std::uint64_t v = countInvariantViolations(out)) {
        warn("invariants: " + std::to_string(v) +
             " violation(s) recorded (see results JSON "
             "\"invariantViolations\")");
    }
    if (degraded) {
        std::uint64_t failedLegs = 0;
        std::uint64_t totalLegs = 0;
        for (const BenchmarkResults &r : out) {
            failedLegs += r.failedLegs();
            totalLegs += r.totalLegs();
        }
        if (failedLegs)
            warn("matrix degraded: " + std::to_string(failedLegs) +
                 " of " + std::to_string(totalLegs) +
                 " legs failed (see results JSON \"failures\")");
    }
}

} // namespace

std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &cfg,
          const std::vector<std::string> &names, int jobs, bool progress)
{
    // Touch the shared workload table once before any worker does, so
    // its (already thread-safe) lazy construction never races.
    workloads::all();

    // Arm (or clear) the host profiler for this matrix; every phase
    // scope below is a no-op when the profiler output is unset.
    const config::RunSpec spec = config::RunSpec::resolve();
    obs::HostProfiler &hostProf = obs::HostProfiler::instance();
    hostProf.reset(!spec.str("profOut").empty());
    auto matrixStart = std::chrono::steady_clock::now();

    ExperimentConfig ecfg;
    {
        obs::HostProfiler::Scope prof = hostProf.phase("validate");
        ecfg = effectiveConfig(cfg, spec);
        ecfg.validate();
    }
    // Telemetry-collecting legs must actually simulate (cached rows
    // carry no telemetry), so a configured cache is silently useless.
    // Say so once, rather than leaving users to wonder why a cached
    // matrix re-runs.
    if (ecfg.telemetry.enabled() && !ecfg.cacheDir.empty()) {
        inform("telemetry collection is on: the experiment cache is "
               "bypassed (cached rows carry no telemetry), legs re-run");
    }
    std::vector<BenchmarkResults> out(names.size());
    ExperimentRunner runner(ecfg);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (progress)
                std::fprintf(stderr, "  running %s...\n",
                             names[i].c_str());
            out[i] = runner.runBenchmark(names[i]);
        }
        finishMatrix(ecfg, out, runner);
        return out;
    }

    ThreadPool pool(static_cast<unsigned>(jobs));
    std::mutex progressMutex;
    std::vector<std::future<BenchmarkResults>> futs;
    futs.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        futs.push_back(pool.submit(
            [&runner, &pool, &names, &progressMutex, progress, i] {
                if (progress) {
                    std::lock_guard<std::mutex> lk(progressMutex);
                    std::fprintf(stderr, "  running %s...\n",
                                 names[i].c_str());
                }
                return runner.runBenchmark(names[i], pool);
            }));
    }
    // Collect in workload order, independent of completion order.
    for (std::size_t i = 0; i < names.size(); ++i)
        out[i] = pool.wait(futs[i]);
    if (hostProf.enabled()) {
        auto wall = std::chrono::steady_clock::now() - matrixStart;
        hostProf.notePool(
            pool.workerCount(), pool.tasksExecuted(), pool.busyNanos(),
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    wall).count()));
    }
    finishMatrix(ecfg, out, runner);
    return out;
}

} // namespace mcd
