#include "experiment.hh"

#include <cmath>
#include <iomanip>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "common/log.hh"
#include "workloads/workloads.hh"

namespace mcd {

namespace expcache {

// v2: adds the trailing "end" sentinel so truncated files are always
// rejected (whitespace-delimited numbers could otherwise parse a
// shortened final value as valid).
const char *const version = "mcd-cache-v2";

namespace {

void
writeRun(std::ostream &os, const char *tag, const RunResult &r)
{
    os << std::setprecision(17);
    os << tag << ' ' << r.execTime << ' ' << r.committed << ' '
       << r.ipc << ' ' << r.totalEnergy << ' ' << r.energyDelay;
    for (int d = 0; d < numDomains; ++d) {
        const DomainSummary &s = r.domains[d];
        os << ' ' << s.cycles << ' ' << s.energy << ' '
           << s.avgFrequency << ' ' << s.minFrequency << ' '
           << s.maxFrequency << ' ' << s.reconfigurations;
    }
    os << '\n';
}

bool
readRun(std::istream &is, const char *tag, RunResult &r)
{
    std::string t;
    if (!(is >> t) || t != tag)
        return false;
    if (!(is >> r.execTime >> r.committed >> r.ipc >> r.totalEnergy >>
          r.energyDelay)) {
        return false;
    }
    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        if (!(is >> s.cycles >> s.energy >> s.avgFrequency >>
              s.minFrequency >> s.maxFrequency >> s.reconfigurations)) {
            return false;
        }
    }
    return true;
}

} // namespace

void
write(std::ostream &os, const BenchmarkResults &r)
{
    os << std::setprecision(17);
    os << version << '\n'
       << r.globalFrequency << ' ' << r.schedule1Size << ' '
       << r.schedule5Size << '\n';
    writeRun(os, "baseline", r.baseline);
    writeRun(os, "mcd", r.mcdBaseline);
    writeRun(os, "dyn1", r.dyn1);
    writeRun(os, "dyn5", r.dyn5);
    writeRun(os, "global", r.global);
    os << "end\n";
}

std::optional<BenchmarkResults>
read(std::istream &is, const std::string &name)
{
    std::string ver;
    if (!(is >> ver) || ver != version)
        return std::nullopt;
    BenchmarkResults r;
    r.name = name;
    if (!(is >> r.globalFrequency >> r.schedule1Size >> r.schedule5Size))
        return std::nullopt;
    if (!readRun(is, "baseline", r.baseline) ||
        !readRun(is, "mcd", r.mcdBaseline) ||
        !readRun(is, "dyn1", r.dyn1) ||
        !readRun(is, "dyn5", r.dyn5) ||
        !readRun(is, "global", r.global)) {
        return std::nullopt;
    }
    std::string sentinel;
    if (!(is >> sentinel) || sentinel != "end")
        return std::nullopt;    // truncated mid-number or mid-record
    return r;
}

} // namespace expcache

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg)
    : config(std::move(cfg))
{}

SimConfig
ExperimentRunner::makeSimConfig(ClockingStyle style) const
{
    SimConfig sc;
    sc.clocking = style;
    sc.seed = config.seed;
    return sc;
}

RunResult
ExperimentRunner::runOnce(const Program &prog, const SimConfig &sc) const
{
    McdProcessor proc(sc, prog);
    return proc.run();
}

std::string
ExperimentRunner::cacheKey(const std::string &name) const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s-s%d-%s-ts%.4f-d%.3f-%.3f-seed%llu",
                  name.c_str(), config.scale, dvfsKindName(config.model),
                  config.dvfsTimeScale, config.dilationLow,
                  config.dilationHigh,
                  static_cast<unsigned long long>(config.seed));
    return buf;
}

std::string
ExperimentRunner::cachePath(const std::string &name) const
{
    if (config.cacheDir.empty())
        return {};
    return config.cacheDir + "/" + cacheKey(name) + ".txt";
}

std::optional<BenchmarkResults>
ExperimentRunner::loadCache(const std::string &name) const
{
    std::string path = cachePath(name);
    if (path.empty())
        return std::nullopt;
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    return expcache::read(in, name);
}

void
ExperimentRunner::storeCache(const BenchmarkResults &r) const
{
    std::string path = cachePath(r.name);
    if (path.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(config.cacheDir, ec);

    // Write to a temporary and rename into place so a concurrently
    // running bench binary can never observe a torn cache file. The
    // pid suffix keeps two processes racing on the same key from
    // interleaving writes within one temporary.
    std::string tmp = path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        expcache::write(out, r);
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

RunResult
ExperimentRunner::profileLeg(const Program &prog,
                             std::vector<InstTrace> &trace_out) const
{
    // Baseline MCD (all domains statically at 1 GHz); doubles as the
    // profiling run for the offline tool.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    RunResult r = prof.run();
    trace_out = prof.takeTrace();
    return r;
}

ExperimentRunner::DynLeg
ExperimentRunner::dynamicLeg(const Program &prog,
                             const std::vector<InstTrace> &trace,
                             double target_dilation) const
{
    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(trace);
    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    DynLeg leg;
    leg.result = runOnce(prog, dynCfg);
    leg.scheduleSize = analysis.schedule.size();
    return leg;
}

void
ExperimentRunner::globalLeg(const Program &prog, BenchmarkResults &r) const
{
    // Global voltage scaling: single clock at the table frequency
    // whose degradation best matches dynamic-5% (paper Section 4).
    double target = r.perfDegradation(r.dyn5);
    DvfsTable table;
    int lo = 0;
    int hi = table.numPoints() - 1;
    // Degradation decreases monotonically with frequency: find the
    // slowest point whose degradation does not exceed the target.
    RunResult bestRun;
    Hertz bestFreq = table.fastest().frequency;
    double bestDist = 1e300;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        Hertz f = table.point(mid).frequency;
        SimConfig sc = makeSimConfig(ClockingStyle::SingleClock);
        sc.domainFrequency = {f, f, f, f};
        sc.mem.dramScalesWithClock = true;
        RunResult res = runOnce(prog, sc);
        double deg = r.perfDegradation(res);
        double dist = std::fabs(deg - target);
        if (dist < bestDist) {
            bestDist = dist;
            bestRun = res;
            bestFreq = f;
        }
        if (deg > target)
            lo = mid + 1;   // too slow; raise frequency
        else
            hi = mid - 1;   // within target; try slower
    }
    r.global = bestRun;
    r.globalFrequency = bestFreq;
}

ExperimentRunner::DynamicRun
ExperimentRunner::runDynamic(const std::string &name,
                             double target_dilation)
{
    Program prog = workloads::build(name, config.scale);

    // Profiling run: baseline MCD at full speed, trace collection on.
    SimConfig profCfg = makeSimConfig(ClockingStyle::Mcd);
    profCfg.collectTrace = true;
    McdProcessor prof(profCfg, prog);
    prof.run();

    OfflineAnalyzer analyzer(OfflineAnalyzer::configFor(
        target_dilation, config.model, config.dvfsTimeScale));
    AnalysisResult analysis = analyzer.analyze(prof.trace().trace());

    SimConfig dynCfg = makeSimConfig(ClockingStyle::Mcd);
    dynCfg.dvfs = config.model;
    dynCfg.dvfsTimeScale = config.dvfsTimeScale;
    dynCfg.schedule = &analysis.schedule;
    dynCfg.recordFreqTrace = config.recordFreqTrace;

    DynamicRun out;
    out.result = runOnce(prog, dynCfg);
    out.analysis = std::move(analysis);
    return out;
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name)
{
    // A zero-worker pool executes every leg inline at submission, in
    // the same order as the historical serial code.
    ThreadPool inlinePool(0);
    return runBenchmark(name, inlinePool);
}

BenchmarkResults
ExperimentRunner::runBenchmark(const std::string &name, ThreadPool &pool)
{
    if (auto cached = loadCache(name))
        return *cached;

    BenchmarkResults r;
    r.name = name;

    const Program prog = workloads::build(name, config.scale);

    // Leg 1 — singly clocked baseline — is independent of everything
    // else; run it concurrently with the profiling leg.
    auto baseFut = pool.submit([this, &prog] {
        return runOnce(prog, makeSimConfig(ClockingStyle::SingleClock));
    });

    // Leg 2 — baseline MCD / profiling run (produces the trace).
    std::vector<InstTrace> trace;
    auto profFut = pool.submit([this, &prog, &trace] {
        return profileLeg(prog, trace);
    });
    r.mcdBaseline = pool.wait(profFut);

    // Legs 3a/3b — the two dynamic configurations analyze and
    // simulate independently off the shared (now read-only) trace.
    auto dyn1Fut = pool.submit([this, &prog, &trace] {
        return dynamicLeg(prog, trace, config.dilationLow);
    });
    auto dyn5Fut = pool.submit([this, &prog, &trace] {
        return dynamicLeg(prog, trace, config.dilationHigh);
    });
    DynLeg d1 = pool.wait(dyn1Fut);
    DynLeg d5 = pool.wait(dyn5Fut);
    r.dyn1 = d1.result;
    r.schedule1Size = d1.scheduleSize;
    r.dyn5 = d5.result;
    r.schedule5Size = d5.scheduleSize;

    // Leg 4 — the global binary search needs baseline + dynamic-5%.
    r.baseline = pool.wait(baseFut);
    globalLeg(prog, r);

    storeCache(r);
    return r;
}

std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &cfg,
          const std::vector<std::string> &names, int jobs, bool progress)
{
    // Touch the shared workload table once before any worker does, so
    // its (already thread-safe) lazy construction never races.
    workloads::all();

    std::vector<BenchmarkResults> out(names.size());
    ExperimentRunner runner(cfg);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (progress)
                std::fprintf(stderr, "  running %s...\n",
                             names[i].c_str());
            out[i] = runner.runBenchmark(names[i]);
        }
        return out;
    }

    ThreadPool pool(static_cast<unsigned>(jobs));
    std::mutex progressMutex;
    std::vector<std::future<BenchmarkResults>> futs;
    futs.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        futs.push_back(pool.submit(
            [&runner, &pool, &names, &progressMutex, progress, i] {
                if (progress) {
                    std::lock_guard<std::mutex> lk(progressMutex);
                    std::fprintf(stderr, "  running %s...\n",
                                 names[i].c_str());
                }
                return runner.runBenchmark(names[i], pool);
            }));
    }
    // Collect in workload order, independent of completion order.
    for (std::size_t i = 0; i < names.size(); ++i)
        out[i] = pool.wait(futs[i]);
    return out;
}

} // namespace mcd
