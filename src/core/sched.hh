/**
 * @file
 * The deterministic discrete-event scheduler driving a simulated run.
 *
 * Every time-based activity in the simulator — clock edges, DVFS
 * transition service points, controller observations, telemetry
 * sampling, and the watchdog time budget — is an Actor on one
 * EventScheduler. The queue is a stable min-heap over
 * {tick, priority, seq}: ties on tick break on priority, ties on both
 * break on insertion sequence, so the pop order (and therefore every
 * downstream result) is byte-identical regardless of the order actors
 * were scheduled in.
 *
 * Priority bands (see DESIGN.md section 10):
 *
 *  - edgePriority(d) = 2*d for the per-domain clock-edge actors, so
 *    coincident edges process in domain-index order exactly as the
 *    legacy next-edge loop did;
 *  - afterEdgePriority(d) = 2*d + 1 for monitors that must run
 *    immediately after one specific edge and before any same-tick
 *    edge of a later domain (edge-latched events: sampling, the time
 *    budget);
 *  - armPriority (< all edge priorities) for a monitor's initial due
 *    point, which fires before any coincident edge and re-schedules
 *    the monitor onto the first edge at-or-after it.
 */

#ifndef MCD_CORE_SCHED_HH
#define MCD_CORE_SCHED_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mcd {

/**
 * One schedulable activity. fire() performs the work due at @p now
 * and returns the next tick at which the actor wants to run again at
 * the same priority — or Actor::never to leave the queue (the actor
 * may instead re-enter itself via EventScheduler::schedule with a
 * different tick/priority, which is how edge-latched monitors hop
 * from their due point onto the next clock edge).
 */
class Actor
{
  public:
    /** Returned from fire() to deschedule. */
    static constexpr Tick never = ~Tick{0};

    virtual ~Actor() = default;

    virtual Tick fire(Tick now) = 0;
};

/**
 * Deterministic min-heap event queue. The steady state of a run is
 * tiny (four clock actors plus at most a handful of monitors), so one
 * pop and one re-arm per edge stay within a cache line of heap
 * storage.
 */
class EventScheduler
{
  public:
    /** Priority of domain @p di's clock-edge actor. */
    static constexpr int edgePriority(int di) { return 2 * di; }

    /** Priority slot directly after domain @p di's edge at one tick. */
    static constexpr int afterEdgePriority(int di) { return 2 * di + 1; }

    /** Monitors' initial due points fire before any coincident edge. */
    static constexpr int armPriority = -1;

    /** Enqueue @p a at @p when. No-op when @p when is Actor::never. */
    void schedule(Actor *a, Tick when, int priority);

    /**
     * Pop the earliest event and fire it; if fire() returns a tick,
     * the actor is re-armed at it with its original priority. Returns
     * false (doing nothing) once the queue is empty.
     */
    bool runOne();

    /** Tick of the earliest pending event (never when empty). */
    Tick nextTick() const { return heap.empty() ? Actor::never : heap[0].tick; }

    /** Priority of the earliest pending event (meaningless when empty). */
    int nextPriority() const { return heap.empty() ? 0 : heap[0].priority; }

    /** Tick of the most recently fired event (never before the first). */
    Tick currentTick() const { return curTick; }

    /** Priority of the most recently fired event. */
    int currentPriority() const { return curPriority; }

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }

    /** Pre-size the heap (the actor population is known up front). */
    void reserve(std::size_t n) { heap.reserve(n); }

    /** Largest heap size ever observed (pre-sizing proof). */
    std::size_t peakSize() const { return peak; }

    /** Drop every pending event (between runs). */
    void clear() { heap.clear(); }

  private:
    struct Event
    {
        Tick tick;
        int priority;
        std::uint64_t seq;
        Actor *actor;

        /** Total order: earliest tick, then priority, then FIFO. */
        bool
        before(const Event &o) const
        {
            if (tick != o.tick)
                return tick < o.tick;
            if (priority != o.priority)
                return priority < o.priority;
            return seq < o.seq;
        }
    };

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::vector<Event> heap;
    std::size_t peak = 0;
    std::uint64_t nextSeq = 0;
    Tick curTick = Actor::never;
    int curPriority = 0;
};

} // namespace mcd

#endif // MCD_CORE_SCHED_HH
