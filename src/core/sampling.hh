/**
 * @file
 * SMARTS-style interval sampling for the timing kernel.
 *
 * A sampled run alternates detailed windows (the full four-domain
 * timing machine) with functional fast-forward segments that ride the
 * in-order oracle directly, warming the caches and the branch
 * predictor but paying no per-cycle timing work. Fast-forward is
 * "time-frozen": it consumes zero simulated time, and the time and
 * energy its instructions would have cost are extrapolated from the
 * per-instruction rates measured in the preceding detailed window.
 * The head of each detailed window (warmupInsts commits) re-warms the
 * pipeline state and is excluded from the measurement.
 *
 * The policy is pure accounting and gating: the front end asks
 * fetchGated() before fetching (a finished window drains by starving
 * fetch), CoreUnits drives onFrontEndTick() once per front-end cycle
 * and runs the actual fast-forward loop when the policy asks for it.
 * A run with no SamplingParams configured never constructs a policy,
 * so full-detail behavior (and its result bytes) is untouched.
 */

#ifndef MCD_CORE_SAMPLING_HH
#define MCD_CORE_SAMPLING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mcd {

class PowerModel;

/** Knobs of one sampling policy (SimConfig::sampling, MCD_SAMPLING). */
struct SamplingParams
{
    /**
     * Commits per detailed window, including the warm-up head. The
     * defaults follow the SMARTS insight that many small windows beat
     * few large ones at the same detailed fraction: 10% detailed in
     * 1K-commit windows every 10K instructions (bench/ablation_sampling
     * measures the trade-off; much below ~1K commits the measured tail
     * gets too short and per-window noise dominates).
     */
    std::uint64_t detailedInsts = 1000;

    /** Instructions fast-forwarded between detailed windows. */
    std::uint64_t ffInsts = 9000;

    /** Leading commits of each window excluded from measurement. */
    std::uint64_t warmupInsts = 250;

    /**
     * The policy's stated accuracy contract: sampled execTime and
     * totalEnergy are expected within this relative error of the
     * full-detail run (validated by bench/ablation_sampling and the
     * adpcm+mst error-bound tests).
     */
    double tolerance = 0.10;

    /**
     * Parse a "detailed=N,ff=N,warmup=N[,tol=F]" spec (the MCD_SAMPLING
     * format); fatal() on malformed keys or values.
     */
    static SamplingParams fromSpec(const std::string &spec);

    /** Canonical spec string (round-trips through fromSpec). */
    std::string spec() const;

    /** Compact token for cache keys ("d5000f45000w1000"). */
    std::string keyToken() const;

    /** fatal() on out-of-range values. */
    void validate() const;
};

/** One completed detailed measurement window. */
struct SampleWindow
{
    std::uint64_t insts = 0;    //!< measured commits (post warm-up)
    Tick timePs = 0;            //!< simulated time they took
    std::array<double, numDomains> energy{};    //!< per-domain joules
};

/** End-of-run sampling accounting attached to RunResult. */
struct SamplingSummary
{
    std::uint64_t windows = 0;          //!< completed measurement windows
    std::uint64_t detailedCommitted = 0;
    std::uint64_t ffExecuted = 0;
    Tick estFfTimePs = 0;               //!< extrapolated fast-forward time
    double estFfEnergy = 0.0;           //!< extrapolated total joules
    std::array<double, numDomains> estFfEnergyDomain{};
    bool haltDuringFf = false;

    /**
     * Per-window confidence: coefficient of variation (stdev / mean)
     * of the windows' time-per-instruction and energy-per-instruction
     * rates. Small values mean the windows agree and the
     * extrapolation is trustworthy; large values flag phase behavior
     * the operating point undersamples.
     */
    double timePerInstCv = 0.0;
    double energyPerInstCv = 0.0;
};

/**
 * The per-run sampling state machine. Owned by McdProcessor; driven
 * by CoreUnits at front-end edges.
 */
class SamplingPolicy
{
  public:
    SamplingPolicy(const SamplingParams &params, const PowerModel *power);

    const SamplingParams &params() const { return p; }

    /** Fetch is starved while a finished window drains. */
    bool fetchGated() const { return st == State::Drain; }

    /**
     * Advance the state machine at a front-end edge. @p committed is
     * the total detailed commit count, @p windowEmpty whether the
     * instruction window is empty, @p haltSeen whether fetch has seen
     * HALT. Returns true when the caller should run one functional
     * fast-forward segment now.
     */
    bool onFrontEndTick(std::uint64_t committed, Tick now,
                        bool windowEmpty, bool haltSeen);

    /**
     * Instructions the pending fast-forward segment should execute:
     * ffInsts clipped against @p commit_cap (total detailed + FF
     * instructions; 0 = uncapped).
     */
    std::uint64_t ffBudget(std::uint64_t commit_cap,
                           std::uint64_t committed) const;

    /** Record a finished fast-forward segment. */
    void onFastForwardDone(std::uint64_t executed, bool halted,
                           std::uint64_t committed);

    /** Total instructions consumed by fast-forward so far. */
    std::uint64_t ffExecuted() const { return ffTotal; }

    /** Extrapolate and fold the accounting (end of run). */
    SamplingSummary summary(std::uint64_t committed) const;

  private:
    enum class State : std::uint8_t {
        Warmup,     //!< detailed, measurement not started
        Measure,    //!< detailed, measuring
        Drain,      //!< fetch starved; waiting for the window to empty
        Done,       //!< HALT consumed; detailed to the end
    };

    std::array<double, numDomains> domainEnergies() const;

    SamplingParams p;
    const PowerModel *power;

    State st;
    std::uint64_t windowStartCommits = 0;
    std::uint64_t measureStartCommits = 0;
    Tick measureStartTime = 0;
    std::array<double, numDomains> measureStartEnergy{};

    std::vector<SampleWindow> windows;
    /** FF segment lengths; segment i extrapolates from windows[i]. */
    std::vector<std::uint64_t> ffSegments;
    std::uint64_t ffTotal = 0;
    bool ffHalted = false;
};

} // namespace mcd

#endif // MCD_CORE_SAMPLING_HH
