/**
 * @file
 * Top-level simulation configuration and run results.
 */

#ifndef MCD_CORE_SIM_CONFIG_HH
#define MCD_CORE_SIM_CONFIG_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clock/dvfs.hh"
#include "common/types.hh"
#include "core/sampling.hh"
#include "cpu/params.hh"
#include "cpu/pipeline_stats.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "obs/telemetry.hh"
#include "power/energy_params.hh"

namespace mcd {

class ReconfigSchedule;
class DvfsController;

namespace fault { class FaultPlan; }

/** Globally synchronous vs. multiple clock domains. */
enum class ClockingStyle : std::uint8_t {
    SingleClock,    //!< baseline: one clock, no sync penalties
    Mcd,            //!< four independent domain clocks
};

/** Everything needed to instantiate one simulated processor run. */
struct SimConfig
{
    CoreParams core;
    MemParams mem;
    EnergyParams energy;

    ClockingStyle clocking = ClockingStyle::Mcd;
    double jitterSigmaPs = defaultJitterSigmaPs;
    double syncFraction = defaultSyncFraction;

    /** Initial per-domain frequencies (index by Domain). */
    std::array<Hertz, numDomains> domainFrequency{1e9, 1e9, 1e9, 1e9};

    /** DVFS transition technology for dynamic runs. */
    DvfsKind dvfs = DvfsKind::None;
    double dvfsTimeScale = 1.0;

    /**
     * Frequency-control policy for dynamic runs (not owned; stateful,
     * so one controller serves exactly one run). Mutually exclusive
     * with @ref schedule.
     */
    DvfsController *controller = nullptr;

    /**
     * Reconfiguration schedule for dynamic runs (not owned).
     * Convenience for the offline-oracle path: the processor wraps it
     * in an internal ScheduleController.
     */
    const ReconfigSchedule *schedule = nullptr;

    /** Record per-domain frequency traces (Figure 8). */
    bool recordFreqTrace = false;

    /**
     * Telemetry channels for this run (stats registry, periodic
     * sampler, Chrome trace events). recordFreqTrace implies the
     * frequency series channel even when this is all-off.
     */
    obs::TelemetryConfig telemetry;

    /** Collect the primitive-event trace (profiling runs). */
    bool collectTrace = false;

    /**
     * SMARTS-style interval sampling (core/sampling.hh): detailed
     * windows alternating with functional fast-forward. Unset = full
     * detail, which stays byte-identical to pre-sampling builds.
     * Incompatible with collectTrace (the dependence-graph analysis
     * needs every instruction's timestamps).
     */
    std::optional<SamplingParams> sampling;

    /** Stop after this many committed instructions (0 = run to HALT). */
    std::uint64_t maxInstructions = 0;

    /**
     * Watchdog: clock edges with no commit progress before the run is
     * aborted with a WatchdogError (0 disables the check).
     */
    std::uint64_t watchdogNoProgressEdges = 40'000'000;

    /**
     * Watchdog: absolute simulated-time budget in picoseconds; a run
     * still going past this is aborted with a WatchdogError
     * (0 = unlimited).
     */
    Tick watchdogMaxTicks = 0;

    /**
     * Fault-injection plan (not owned; shared read-only across runs)
     * and this run's leg site name ("bench/leg") within it. A plan
     * with a Stall armed at faultSite makes the run stop reporting
     * commit progress, which the watchdog must then catch.
     */
    const fault::FaultPlan *faults = nullptr;
    std::string faultSite;

    std::uint64_t seed = 1;

    /**
     * Fail fast on an inconsistent configuration: fatal() with an
     * actionable message instead of a mid-run panic. Checks the
     * operating-point table's monotonicity, frequency/parameter
     * ranges, schedule sanity, and control-plane exclusivity. Called
     * by McdProcessor before every run. Reports *every* violation in
     * one message (see validateAll), not just the first.
     */
    void validate() const;

    /**
     * All violations validate() would report, one message per defect;
     * empty means the configuration is valid. Collecting the full
     * list (instead of failing on the first) is what fuzz triage
     * needs: a sampled configuration with three broken dimensions is
     * one scenario, not three serial discoveries.
     */
    std::vector<std::string> validateAll() const;
};

/**
 * Structured description of one failed run leg: where it failed, how
 * (fatal/panic/watchdog/injected/dependency/exception), and how many
 * attempts were made before giving up.
 */
struct RunError
{
    std::string site;       //!< "bench/leg" (empty outside the matrix)
    std::string kind;
    std::string message;
    int attempts = 1;
};

/** Per-domain summary of a run. */
struct DomainSummary
{
    std::uint64_t cycles = 0;
    double energy = 0.0;
    Hertz avgFrequency = 0.0;   //!< time-weighted
    Hertz minFrequency = 0.0;
    Hertz maxFrequency = 0.0;
    std::uint64_t reconfigurations = 0;
};

/** The result of one simulated run. */
struct RunResult
{
    std::string benchmark;
    Tick execTime = 0;              //!< time of the last commit
    std::uint64_t committed = 0;
    double ipc = 0.0;               //!< committed / front-end cycles
    double totalEnergy = 0.0;
    double energyDelay = 0.0;       //!< totalEnergy * seconds

    std::array<DomainSummary, numDomains> domains;
    PipelineStats pipeline;
    CacheStats l1i, l1d, l2;
    std::uint64_t bpredLookups = 0;
    double bpredMispredictRate = 0.0;

    /** Per-domain frequency traces when recordFreqTrace was set. */
    std::array<std::vector<FreqTracePoint>, numDomains> freqTraces;

    /** Sampling accounting when the run was sampled; unset otherwise.
     *  execTime/totalEnergy/committed above already include the
     *  extrapolated fast-forward contribution. */
    std::optional<SamplingSummary> sampling;

    /**
     * The run's telemetry context (stats registry, sampler, trace
     * events) when SimConfig::telemetry enabled any channel; null
     * otherwise. Shared so results can be copied cheaply; the
     * telemetry itself is immutable once the run finishes.
     */
    std::shared_ptr<const obs::Telemetry> telemetry;

    /**
     * Set when the run failed: the experiment engine's per-leg guard
     * caught an error and recorded it here instead of letting it
     * abort the rest of the matrix. A failed result's numeric fields
     * are all default (zero).
     */
    std::optional<RunError> error;

    /** Attempts the leg guard made (> 1 after a transient retry). */
    int attempts = 1;

    bool failed() const { return error.has_value(); }
};

} // namespace mcd

#endif // MCD_CORE_SIM_CONFIG_HH
