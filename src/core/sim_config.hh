/**
 * @file
 * Top-level simulation configuration and run results.
 */

#ifndef MCD_CORE_SIM_CONFIG_HH
#define MCD_CORE_SIM_CONFIG_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "clock/dvfs.hh"
#include "common/types.hh"
#include "cpu/params.hh"
#include "cpu/pipeline.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "obs/telemetry.hh"
#include "power/energy_params.hh"

namespace mcd {

class ReconfigSchedule;
class DvfsController;

/** Globally synchronous vs. multiple clock domains. */
enum class ClockingStyle : std::uint8_t {
    SingleClock,    //!< baseline: one clock, no sync penalties
    Mcd,            //!< four independent domain clocks
};

/** Everything needed to instantiate one simulated processor run. */
struct SimConfig
{
    CoreParams core;
    MemParams mem;
    EnergyParams energy;

    ClockingStyle clocking = ClockingStyle::Mcd;
    double jitterSigmaPs = defaultJitterSigmaPs;
    double syncFraction = defaultSyncFraction;

    /** Initial per-domain frequencies (index by Domain). */
    std::array<Hertz, numDomains> domainFrequency{1e9, 1e9, 1e9, 1e9};

    /** DVFS transition technology for dynamic runs. */
    DvfsKind dvfs = DvfsKind::None;
    double dvfsTimeScale = 1.0;

    /**
     * Frequency-control policy for dynamic runs (not owned; stateful,
     * so one controller serves exactly one run). Mutually exclusive
     * with @ref schedule.
     */
    DvfsController *controller = nullptr;

    /**
     * Reconfiguration schedule for dynamic runs (not owned).
     * Convenience for the offline-oracle path: the processor wraps it
     * in an internal ScheduleController.
     */
    const ReconfigSchedule *schedule = nullptr;

    /** Record per-domain frequency traces (Figure 8). */
    bool recordFreqTrace = false;

    /**
     * Telemetry channels for this run (stats registry, periodic
     * sampler, Chrome trace events). recordFreqTrace implies the
     * frequency series channel even when this is all-off.
     */
    obs::TelemetryConfig telemetry;

    /** Collect the primitive-event trace (profiling runs). */
    bool collectTrace = false;

    /** Stop after this many committed instructions (0 = run to HALT). */
    std::uint64_t maxInstructions = 0;

    std::uint64_t seed = 1;
};

/** Per-domain summary of a run. */
struct DomainSummary
{
    std::uint64_t cycles = 0;
    double energy = 0.0;
    Hertz avgFrequency = 0.0;   //!< time-weighted
    Hertz minFrequency = 0.0;
    Hertz maxFrequency = 0.0;
    std::uint64_t reconfigurations = 0;
};

/** The result of one simulated run. */
struct RunResult
{
    std::string benchmark;
    Tick execTime = 0;              //!< time of the last commit
    std::uint64_t committed = 0;
    double ipc = 0.0;               //!< committed / front-end cycles
    double totalEnergy = 0.0;
    double energyDelay = 0.0;       //!< totalEnergy * seconds

    std::array<DomainSummary, numDomains> domains;
    PipelineStats pipeline;
    CacheStats l1i, l1d, l2;
    std::uint64_t bpredLookups = 0;
    double bpredMispredictRate = 0.0;

    /** Per-domain frequency traces when recordFreqTrace was set. */
    std::array<std::vector<FreqTracePoint>, numDomains> freqTraces;

    /**
     * The run's telemetry context (stats registry, sampler, trace
     * events) when SimConfig::telemetry enabled any channel; null
     * otherwise. Shared so results can be copied cheaply; the
     * telemetry itself is immutable once the run finishes.
     */
    std::shared_ptr<const obs::Telemetry> telemetry;
};

} // namespace mcd

#endif // MCD_CORE_SIM_CONFIG_HH
