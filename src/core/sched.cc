#include "sched.hh"

#include <utility>

namespace mcd {

void
EventScheduler::schedule(Actor *a, Tick when, int priority)
{
    if (when == Actor::never)
        return;
    heap.push_back({when, priority, nextSeq++, a});
    if (heap.size() > peak)
        peak = heap.size();
    siftUp(heap.size() - 1);
}

bool
EventScheduler::runOne()
{
    if (heap.empty())
        return false;

    // Pop before firing: fire() may schedule new events (edge-latched
    // monitors re-enter themselves at a different priority), which
    // would reshuffle the heap under a replace-top of index 0.
    Event ev = heap[0];
    heap[0] = heap.back();
    heap.pop_back();
    if (!heap.empty())
        siftDown(0);

    curTick = ev.tick;
    curPriority = ev.priority;
    Tick next = ev.actor->fire(ev.tick);
    if (next != Actor::never)
        schedule(ev.actor, next, ev.priority);
    return true;
}

void
EventScheduler::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!heap[i].before(heap[parent]))
            break;
        std::swap(heap[i], heap[parent]);
        i = parent;
    }
}

void
EventScheduler::siftDown(std::size_t i)
{
    const std::size_t n = heap.size();
    for (;;) {
        std::size_t l = 2 * i + 1;
        std::size_t r = l + 1;
        std::size_t best = i;
        if (l < n && heap[l].before(heap[best]))
            best = l;
        if (r < n && heap[r].before(heap[best]))
            best = r;
        if (best == i)
            break;
        std::swap(heap[i], heap[best]);
        i = best;
    }
}

} // namespace mcd
