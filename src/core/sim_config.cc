/**
 * @file
 * SimConfig::validate(): fail fast on inconsistent configurations
 * with actionable fatal() messages instead of mid-run panics. The
 * checks collect every violation (validateAll) so a multiply broken
 * configuration — common in fuzzed scenarios — surfaces as one
 * complete defect list.
 */

#include "sim_config.hh"

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "analysis/schedule.hh"
#include "clock/operating_points.hh"
#include "common/log.hh"

namespace mcd {

namespace {

std::string
hz(Hertz f)
{
    return std::to_string(f / 1e6) + " MHz";
}

/** Violation collector: append instead of fatal(), report at the end. */
class Checker
{
  public:
    void
    fail(std::string msg)
    {
        errors.push_back(std::move(msg));
    }

    /** Append what a throwing sub-validator reported. */
    void
    guard(const std::function<void()> &body)
    {
        try {
            body();
        } catch (const FatalError &e) {
            errors.push_back(e.what());
        }
    }

    std::vector<std::string> take() { return std::move(errors); }

  private:
    std::vector<std::string> errors;
};

void
checkFinitePositive(Checker &ck, double v, const char *what)
{
    if (!std::isfinite(v) || v <= 0.0)
        ck.fail(std::string("SimConfig: ") + what +
                " must be finite and > 0 (got " + std::to_string(v) +
                ")");
}

/** The operating-point invariant every scaling decision relies on. */
void
checkTable(Checker &ck, const DvfsTable &table)
{
    if (table.numPoints() < 2) {
        ck.fail("SimConfig: operating-point table needs >= 2 points");
        return;
    }
    for (int i = 0; i < table.numPoints(); ++i) {
        const OperatingPoint &p = table.point(i);
        if (!(p.frequency > 0.0) || !(p.voltage > 0.0))
            ck.fail("SimConfig: operating point " + std::to_string(i) +
                    " has non-positive frequency or voltage");
        if (i > 0) {
            if (p.frequency <= table.point(i - 1).frequency)
                ck.fail("SimConfig: operating-point frequencies must "
                        "increase strictly with index (point " +
                        std::to_string(i) + ")");
            if (p.voltage < table.point(i - 1).voltage)
                ck.fail("SimConfig: operating-point voltages must be "
                        "non-decreasing with index (point " +
                        std::to_string(i) + ")");
        }
    }
}

} // namespace

std::vector<std::string>
SimConfig::validateAll() const
{
    Checker ck;
    DvfsTable table;
    checkTable(ck, table);

    for (int d = 0; d < numDomains; ++d) {
        Hertz f = domainFrequency[d];
        if (!std::isfinite(f) || f <= 0.0) {
            ck.fail("SimConfig: domainFrequency[" + std::to_string(d) +
                    "] must be finite and > 0 (got " +
                    std::to_string(f) + ")");
            continue;
        }
        // With a DVFS engine attached, the initial point must lie on
        // the table's range or the first transition is undefined.
        if (clocking == ClockingStyle::Mcd && dvfs != DvfsKind::None &&
            (f < table.minFrequency() || f > table.maxFrequency())) {
            ck.fail("SimConfig: domainFrequency[" + std::to_string(d) +
                    "] = " + hz(f) + " outside the DVFS table range [" +
                    hz(table.minFrequency()) + ", " +
                    hz(table.maxFrequency()) + "]");
        }
    }

    if (!std::isfinite(jitterSigmaPs) || jitterSigmaPs < 0.0)
        ck.fail("SimConfig: jitterSigmaPs must be finite and >= 0");
    if (!std::isfinite(syncFraction) ||
        syncFraction < 0.0 || syncFraction > 1.0) {
        ck.fail("SimConfig: syncFraction must lie in [0, 1] (got " +
                std::to_string(syncFraction) + ")");
    }
    checkFinitePositive(ck, dvfsTimeScale, "dvfsTimeScale");

    // Surface invariant-spec grammar errors here, where the caller is
    // still assembling the run, instead of from the Telemetry ctor.
    if (!telemetry.invariants.empty()) {
        ck.guard([&] {
            obs::InvariantEngine::parseSpec(telemetry.invariants);
        });
    }

    if (sampling) {
        ck.guard([&] { sampling->validate(); });
        if (collectTrace)
            ck.fail("SimConfig: sampling and collectTrace are mutually "
                    "exclusive (the primitive-event trace needs every "
                    "instruction simulated in detail)");
    }

    if (controller && schedule)
        ck.fail("SimConfig: set either controller or schedule, not "
                "both (wrap the schedule in a ScheduleController if "
                "you need to combine policies)");

    if (schedule) {
        Tick prev = 0;
        std::size_t i = 0;
        for (const ReconfigEntry &e : schedule->all()) {
            std::string at = "schedule entry " + std::to_string(i);
            if (e.when < prev)
                ck.fail("SimConfig: " + at + " at t=" +
                        formatTick(e.when) +
                        " is out of time order (previous entry at t=" +
                        formatTick(prev) + "); call "
                        "ReconfigSchedule::finalize() first");
            prev = e.when;
            int di = static_cast<int>(e.domain);
            if (di < 0 || di >= numDomains)
                ck.fail("SimConfig: " + at + " names an invalid domain");
            if (!std::isfinite(e.frequency) ||
                e.frequency < table.minFrequency() ||
                e.frequency > table.maxFrequency()) {
                ck.fail("SimConfig: " + at + " requests " +
                        hz(e.frequency) + " outside the DVFS table "
                        "range [" + hz(table.minFrequency()) + ", " +
                        hz(table.maxFrequency()) + "]");
            }
            ++i;
        }
        if (!schedule->empty() && dvfs == DvfsKind::None &&
            clocking == ClockingStyle::Mcd) {
            ck.fail("SimConfig: a reconfiguration schedule needs a "
                    "DVFS model (set SimConfig::dvfs)");
        }
    }
    return ck.take();
}

void
SimConfig::validate() const
{
    std::vector<std::string> errs = validateAll();
    if (errs.empty())
        return;
    if (errs.size() == 1)
        fatal(errs.front());
    std::string msg = "SimConfig: " + std::to_string(errs.size()) +
        " invalid settings:";
    for (const std::string &e : errs)
        msg += "\n  - " + e;
    fatal(msg);
}

} // namespace mcd
