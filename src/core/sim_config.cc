/**
 * @file
 * SimConfig::validate(): fail fast on inconsistent configurations
 * with actionable fatal() messages instead of mid-run panics.
 */

#include "sim_config.hh"

#include <cmath>
#include <string>

#include "analysis/schedule.hh"
#include "clock/operating_points.hh"
#include "common/log.hh"

namespace mcd {

namespace {

std::string
hz(Hertz f)
{
    return std::to_string(f / 1e6) + " MHz";
}

void
checkFinitePositive(double v, const char *what)
{
    if (!std::isfinite(v) || v <= 0.0)
        fatal(std::string("SimConfig: ") + what +
              " must be finite and > 0 (got " + std::to_string(v) + ")");
}

/** The operating-point invariant every scaling decision relies on. */
void
checkTable(const DvfsTable &table)
{
    if (table.numPoints() < 2)
        fatal("SimConfig: operating-point table needs >= 2 points");
    for (int i = 0; i < table.numPoints(); ++i) {
        const OperatingPoint &p = table.point(i);
        if (!(p.frequency > 0.0) || !(p.voltage > 0.0))
            fatal("SimConfig: operating point " + std::to_string(i) +
                  " has non-positive frequency or voltage");
        if (i > 0) {
            if (p.frequency <= table.point(i - 1).frequency)
                fatal("SimConfig: operating-point frequencies must "
                      "increase strictly with index (point " +
                      std::to_string(i) + ")");
            if (p.voltage < table.point(i - 1).voltage)
                fatal("SimConfig: operating-point voltages must be "
                      "non-decreasing with index (point " +
                      std::to_string(i) + ")");
        }
    }
}

} // namespace

void
SimConfig::validate() const
{
    DvfsTable table;
    checkTable(table);

    for (int d = 0; d < numDomains; ++d) {
        Hertz f = domainFrequency[d];
        if (!std::isfinite(f) || f <= 0.0)
            fatal("SimConfig: domainFrequency[" + std::to_string(d) +
                  "] must be finite and > 0 (got " +
                  std::to_string(f) + ")");
        // With a DVFS engine attached, the initial point must lie on
        // the table's range or the first transition is undefined.
        if (clocking == ClockingStyle::Mcd && dvfs != DvfsKind::None &&
            (f < table.minFrequency() || f > table.maxFrequency())) {
            fatal("SimConfig: domainFrequency[" + std::to_string(d) +
                  "] = " + hz(f) + " outside the DVFS table range [" +
                  hz(table.minFrequency()) + ", " +
                  hz(table.maxFrequency()) + "]");
        }
    }

    if (!std::isfinite(jitterSigmaPs) || jitterSigmaPs < 0.0)
        fatal("SimConfig: jitterSigmaPs must be finite and >= 0");
    if (!std::isfinite(syncFraction) ||
        syncFraction < 0.0 || syncFraction > 1.0) {
        fatal("SimConfig: syncFraction must lie in [0, 1] (got " +
              std::to_string(syncFraction) + ")");
    }
    checkFinitePositive(dvfsTimeScale, "dvfsTimeScale");

    // Surface invariant-spec grammar errors here, where the caller is
    // still assembling the run, instead of from the Telemetry ctor.
    if (!telemetry.invariants.empty())
        obs::InvariantEngine::parseSpec(telemetry.invariants);

    if (sampling) {
        sampling->validate();
        if (collectTrace)
            fatal("SimConfig: sampling and collectTrace are mutually "
                  "exclusive (the primitive-event trace needs every "
                  "instruction simulated in detail)");
    }

    if (controller && schedule)
        fatal("SimConfig: set either controller or schedule, not both "
              "(wrap the schedule in a ScheduleController if you need "
              "to combine policies)");

    if (schedule) {
        Tick prev = 0;
        std::size_t i = 0;
        for (const ReconfigEntry &e : schedule->all()) {
            std::string at = "schedule entry " + std::to_string(i);
            if (e.when < prev)
                fatal("SimConfig: " + at + " at t=" + formatTick(e.when) +
                      " is out of time order (previous entry at t=" +
                      formatTick(prev) + "); call "
                      "ReconfigSchedule::finalize() first");
            prev = e.when;
            int di = static_cast<int>(e.domain);
            if (di < 0 || di >= numDomains)
                fatal("SimConfig: " + at + " names an invalid domain");
            if (!std::isfinite(e.frequency) ||
                e.frequency < table.minFrequency() ||
                e.frequency > table.maxFrequency()) {
                fatal("SimConfig: " + at + " requests " +
                      hz(e.frequency) + " outside the DVFS table "
                      "range [" + hz(table.minFrequency()) + ", " +
                      hz(table.maxFrequency()) + "]");
            }
            ++i;
        }
        if (!schedule->empty() && dvfs == DvfsKind::None &&
            clocking == ClockingStyle::Mcd) {
            fatal("SimConfig: a reconfiguration schedule needs a DVFS "
                  "model (set SimConfig::dvfs)");
        }
    }
}

} // namespace mcd
