/**
 * @file
 * The experiment runner for the paper's evaluation (Section 4).
 *
 * For one benchmark it produces two fixed reference runs plus a
 * configurable vector of dynamic-control legs. The default leg set is
 * the paper's matrix (Figures 5-7):
 *
 *  - baseline: singly clocked 1 GHz, no scaling (fixed);
 *  - baseline MCD: four domains, all statically at 1 GHz (quantifies
 *    the synchronization cost; doubles as the profiling run) (fixed);
 *  - dyn1 / dyn5: per-domain DVFS driven by the offline tool's
 *    schedule with a 1% / 5% dilation target (schedule-replay legs);
 *  - global: the baseline with a single reduced frequency/voltage
 *    chosen so its performance degradation matches dyn5 (search leg);
 *  - online: per-domain DVFS driven at runtime by the queue-occupancy
 *    attack/decay controller (controller leg).
 *
 * Legs are data, not code: a controller leg names a factory in the
 * ControllerRegistry (src/control/registry.hh), so any registered
 * policy — PID feedback, the cpufreq governor family, the offline-
 * trained table — joins the full evaluation (figures, results JSON,
 * cache, fault sites, telemetry) by appearing in the leg vector.
 * Tournament mode (MCD_TOURNAMENT=1 / --tournament) builds a leg set
 * of the dyn5 oracle plus every registered controller and ranks them
 * on an energy-delay-product leaderboard.
 *
 * Results are cached on disk so the per-figure bench binaries can
 * share one expensive run matrix.
 */

#ifndef MCD_CORE_EXPERIMENT_HH
#define MCD_CORE_EXPERIMENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hh"
#include "common/thread_pool.hh"
#include "config/runspec.hh"
#include "control/online_queue.hh"
#include "core/processor.hh"
#include "core/sim_config.hh"
#include "fault/fault_plan.hh"

namespace mcd {

/**
 * One dynamic-control leg of the matrix, as data. The name doubles as
 * the JSON key, the fault/telemetry site suffix ("<bench>/<name>"),
 * and the cache-record tag; the display string is the figure-table
 * column header.
 */
struct LegSpec
{
    enum class Kind : std::uint8_t {
        ScheduleReplay,     //!< offline analyze + replay at `dilation`
        GlobalSearch,       //!< single-clock search matching `reference`
        Controller,         //!< registry-built `controller` + `params`
    };

    std::string name;
    std::string display;    //!< column header (defaults to name)
    Kind kind = Kind::Controller;

    double dilation = 0.0;      //!< ScheduleReplay: dilation target
    std::string reference;      //!< GlobalSearch: leg to match
    std::string controller;     //!< Controller: registry name
    std::string params;         //!< Controller: factory param spec

    /** Convenience constructors for the three kinds. */
    static LegSpec scheduleReplay(std::string name, double dilation,
                                  std::string display = {});
    static LegSpec globalSearch(std::string name, std::string reference,
                                std::string display = {});
    static LegSpec controllerLeg(std::string name,
                                 std::string controller,
                                 std::string params = {},
                                 std::string display = {});

    /** Everything result-shaping, folded into the cache key. */
    std::string keyToken() const;

    /**
     * Canonical textual form, exactly round-tripping through
     * fromSpec():
     *
     *   name[~display]=replay:<dilation>
     *   name[~display]=global:<reference>
     *   name[~display]=ctrl:<controller>[@<params>]
     *
     * The display part is omitted when it equals the name (the
     * constructors' default). Doubles are emitted with enough digits
     * to parse back bit-identically. This is the serialization the
     * fuzz shrinker's repro files use, so the round-trip is load-
     * bearing, not cosmetic.
     */
    std::string toSpec() const;

    /** Parse one toSpec()-grammar leg (fatal() on malformed input). */
    static LegSpec fromSpec(const std::string &spec);
};

/** A whole leg vector as '|'-joined toSpec() entries. */
std::string legsToSpec(const std::vector<LegSpec> &legs);

/** Parse a '|'-joined leg-vector spec (fatal() on malformed input). */
std::vector<LegSpec> legsFromSpec(const std::string &spec);

/** Parameters of one experiment matrix. */
struct ExperimentConfig
{
    int scale = 1;                  //!< workload scale factor
    DvfsKind model = DvfsKind::XScale;
    /** Shrinks DVFS transition times to match shortened windows
     *  while preserving the re-lock-to-interval cost ratio
     *  (DESIGN.md section 4, substitution 2). */
    double dvfsTimeScale = 0.2;
    double dilationLow = 0.01;      //!< dynamic-1% target
    double dilationHigh = 0.05;     //!< dynamic-5% target
    std::uint64_t seed = 1;
    bool recordFreqTrace = false;   //!< per-domain traces (Figure 8)
    std::string cacheDir;           //!< empty = caching disabled

    /**
     * The dynamic-control legs to run besides the two fixed reference
     * runs. Empty means "decide at runMatrix() time": the tournament
     * set when MCD_TOURNAMENT is on, else defaultLegs(); either is
     * then filtered by MCD_CONTROLLERS. ExperimentRunner resolves an
     * empty vector to defaultLegs() at construction.
     */
    std::vector<LegSpec> legs;

    /**
     * Telemetry channels for every run in the matrix. When any channel
     * is on, the disk cache is bypassed (cached results carry no
     * telemetry). runMatrix() turns this on automatically when
     * MCD_TRACE_OUT or MCD_STATS_OUT is set.
     */
    obs::TelemetryConfig telemetry;

    /**
     * SMARTS-style sampled simulation (core/sampling.hh) for every
     * timing leg except the profiling run, which always runs in full
     * detail (the offline analyzer needs every instruction's trace
     * record). runMatrix() fills this from MCD_SAMPLING when unset.
     * Sampled rows are approximations: they are never written to or
     * served from the result cache, and the operating point is folded
     * into the cache key besides, so a sampled matrix can never alias
     * a full-detail one.
     */
    std::optional<SamplingParams> sampling;

    /** Attack/decay defaults for "online-queue" controller legs. */
    OnlineQueueParams online;

    /**
     * Attempts the per-leg guard makes before recording a failure.
     * Only faults marked transient (injected flaky faults) are
     * retried — a deterministic simulator error would just recur.
     */
    int legAttempts = 2;

    /** Watchdog budgets forwarded into every run's SimConfig. */
    std::uint64_t watchdogNoProgressEdges = 40'000'000;
    Tick watchdogMaxTicks = 0;

    /**
     * Fault-injection plan for this matrix (testing the recovery
     * paths). runMatrix() fills this from MCD_FAULT_PLAN when unset.
     * Benchmarks with armed leg faults bypass the result cache in
     * both directions, so injected results are never stored and
     * cached results never mask an injection.
     */
    std::shared_ptr<const fault::FaultPlan> faults;

    /**
     * Fail fast on out-of-range parameters: fatal() with one message
     * listing *every* violation (see validateAll), not just the first.
     */
    void validate() const;

    /**
     * All violations validate() would report, one message per defect;
     * empty means the configuration is valid. Fuzz triage wants the
     * complete list: a sampled configuration broken along three
     * dimensions is one scenario to minimize, not three serial
     * discoveries.
     */
    std::vector<std::string> validateAll() const;
};

/**
 * The paper's leg set: dyn1, dyn5, global (matched to dyn5), online.
 * Dilations come from @p cfg; results are bit-identical to the
 * pre-registry hard-coded matrix.
 */
std::vector<LegSpec> defaultLegs(const ExperimentConfig &cfg);

/**
 * The tournament leg set: the dyn5 schedule-replay oracle plus one
 * controller leg (factory defaults) per ControllerRegistry entry.
 */
std::vector<LegSpec> tournamentLegs(const ExperimentConfig &cfg);

/** One completed dynamic-control leg. */
struct ControllerLeg
{
    LegSpec spec;
    RunResult run;
    std::size_t scheduleSize = 0;   //!< ScheduleReplay entries
};

/** The matrix runs (plus metadata) for one benchmark. */
struct BenchmarkResults
{
    std::string name;
    RunResult baseline;
    RunResult mcdBaseline;
    std::vector<ControllerLeg> legs;    //!< in ExperimentConfig order
    Hertz globalFrequency = 0.0;        //!< last GlobalSearch leg's pick

    /** The leg named @p leg, or nullptr. */
    const ControllerLeg *findLeg(std::string_view leg) const;

    /** The run of the leg named @p leg (fatal when absent). */
    const RunResult &leg(std::string_view leg) const;

    /** Schedule entries of leg @p leg (0 when absent / not replay). */
    std::size_t scheduleSize(std::string_view leg) const;

    /** Fractional slowdown of @p r relative to the baseline. */
    double
    perfDegradation(const RunResult &r) const
    {
        return static_cast<double>(r.execTime) /
            static_cast<double>(baseline.execTime) - 1.0;
    }

    /** Fractional energy saved relative to the baseline. */
    double
    energySavings(const RunResult &r) const
    {
        return 1.0 - r.totalEnergy / baseline.totalEnergy;
    }

    /** Fractional energy-delay-product improvement. */
    double
    edpImprovement(const RunResult &r) const
    {
        return 1.0 - r.energyDelay / baseline.energyDelay;
    }

    /** Total legs including the two fixed reference runs. */
    std::size_t totalLegs() const { return legs.size() + 2; }

    /** Number of failed legs (0..totalLegs()). */
    std::size_t failedLegs() const;

    /** True when any leg failed. */
    bool anyFailed() const { return failedLegs() != 0; }
};

/**
 * Process exit codes for matrix drivers. Partial failure (some legs
 * failed, the rest of the matrix completed) is distinct from total
 * failure so callers and CI can tell a degraded result set from a
 * useless one. Code 2 stays reserved for usage/configuration errors.
 */
inline constexpr int exitOk = 0;
inline constexpr int exitPartialFailure = 3;
inline constexpr int exitTotalFailure = 4;

/**
 * An otherwise-clean matrix recorded invariant violations and
 * MCD_INVARIANTS_FATAL=1 is set. Leg failures outrank invariants: a
 * matrix that is both degraded and violating exits 3/4 (the violation
 * records are still in the JSON either way).
 */
inline constexpr int exitInvariantViolation = 5;

/** exitOk / exitPartialFailure / exitTotalFailure for a result set. */
int matrixExitCode(const std::vector<BenchmarkResults> &rows);

/** Total invariant violations recorded across every leg's telemetry. */
std::uint64_t
countInvariantViolations(const std::vector<BenchmarkResults> &rows);

/** True when the invariantsFatal option (MCD_INVARIANTS_FATAL /
 *  --invariants-fatal) resolves true. */
bool invariantsFatalFromEnv();

/**
 * Honor the profOut option (MCD_PROF_OUT / --prof-out): write (or
 * rewrite) the host profile file when the profiler is armed. runMatrix
 * calls this once the matrix ends; figure drivers call it again after
 * rendering so the final file includes the render phases too. No-op
 * otherwise.
 */
void writeHostProfileFromEnv();

/**
 * ExperimentConfig populated from the result-shaping scalar options of
 * a resolved RunSpec: scale, seed, dvfsTimeScale, dilationLow/High,
 * legAttempts, watchdog budgets, sampling, cacheDir and model. @p
 * model seeds the DVFS model; a non-empty "model" option overrides it
 * (unknown names are fatal). @p defaultCacheDir applies only while the
 * cacheDir option sits at its default, so an explicitly empty value
 * (MCD_CACHE_DIR=) still disables caching. Legs, faults, telemetry
 * and invariants are left unset — runMatrix()'s effective-config
 * resolution fills those from the same spec. fatal() (never exit) on
 * malformed domain grammar, so drivers choose their own exit code.
 */
ExperimentConfig
experimentConfigFromSpec(const config::RunSpec &spec,
                         DvfsKind model = DvfsKind::XScale,
                         const std::string &defaultCacheDir = {});

/**
 * Benchmark list for a matrix run: every registered workload, or the
 * comma-separated subset named by the benchmarks option
 * (MCD_BENCHMARKS / --benchmarks). Unknown names are fatal() so a typo
 * cannot silently shrink a figure.
 */
std::vector<std::string>
benchmarkNamesFromSpec(const config::RunSpec &spec);

/**
 * Cache-file serialization for BenchmarkResults (exposed so the cache
 * format itself is testable without running simulations).
 */
namespace expcache {

/** The version string rejected-on-mismatch when reading. */
extern const char *const version;

/**
 * Serialize @p r: the version header, the two reference records, one
 * tagged record per named leg, the "end" sentinel, and a trailing
 * FNV-1a checksum line over everything before it, so bit rot anywhere
 * in the payload is detected (v5).
 */
void write(std::ostream &os, const BenchmarkResults &r);

/**
 * Deserialize one BenchmarkResults; returns nullopt on a version
 * mismatch, truncation, checksum mismatch, or any other malformed
 * content. Leg records come back with name and scheduleSize only
 * (the rest of the LegSpec lives in the config, not the cache); the
 * loader revalidates the leg names against its config's leg set.
 */
std::optional<BenchmarkResults> read(std::istream &is,
                                     const std::string &name);

} // namespace expcache

/**
 * Machine-readable (JSON) emission of matrix results, so trajectory /
 * plotting tooling can consume runMatrix() output without scraping
 * the text tables. runMatrix() also writes this automatically to the
 * path named by the MCD_RESULTS_JSON environment variable.
 */
void writeResultsJson(std::ostream &os, const ExperimentConfig &cfg,
                      const std::vector<BenchmarkResults> &rows);

/**
 * One leaderboard entry: a leg's figures averaged over every
 * benchmark where both it and the baseline completed.
 */
struct LeaderboardRow
{
    LegSpec spec;
    double meanEdpImprovement = 0.0;
    double meanEnergySavings = 0.0;
    double meanPerfDegradation = 0.0;
    std::size_t completed = 0;  //!< benchmarks contributing
    std::size_t failed = 0;     //!< benchmarks where the leg failed
};

/**
 * Rank every dynamic-control leg by mean energy-delay-product
 * improvement, descending (ties broken by leg name). Works on any
 * matrix, not just tournament runs.
 */
std::vector<LeaderboardRow>
computeLeaderboard(const std::vector<BenchmarkResults> &rows);

/**
 * The ranked leaderboard as JSON (schema in EXPERIMENTS.md,
 * "Controller tournament"). runMatrix() writes this automatically to
 * the path named by MCD_LEADERBOARD_JSON.
 */
void writeLeaderboardJson(std::ostream &os, const ExperimentConfig &cfg,
                          const std::vector<BenchmarkResults> &rows);

/** One labeled run for the telemetry writers (run not owned). */
struct NamedRun
{
    std::string name;           //!< e.g. "adpcm/online"
    const RunResult *run = nullptr;
};

/**
 * Emit the telemetry stats of every named run that collected any, as
 * one JSON object: per-run registries keyed by name plus a "merged"
 * registry folding all runs together. When @p matrix is non-null its
 * entries (matrix health counters: failed/retried legs, quarantined
 * cache files) are emitted as an additional "matrix" registry; when
 * @p host is non-null (the host profiler's registry) it is emitted as
 * an additional "host" registry. When @p effectiveConfig is non-null
 * (a pre-rendered provenance-annotated RunSpec fragment) it is
 * emitted as a trailing "effectiveConfig" key — runMatrix() passes
 * it, so every matrix stats document records the configuration that
 * produced it.
 */
void writeTelemetryStatsJson(
    std::ostream &os, const std::vector<NamedRun> &runs,
    const obs::StatsRegistry *matrix = nullptr,
    const obs::StatsRegistry *host = nullptr,
    const std::string *effectiveConfig = nullptr);

/**
 * Emit one merged Chrome trace (chrome://tracing / Perfetto JSON)
 * with a process per named run, in the given order.
 */
void writeTelemetryTrace(std::ostream &os,
                         const std::vector<NamedRun> &runs);

/**
 * The matrix rows flattened to "bench/leg" names in deterministic
 * row-then-leg order (baseline, mcdBaseline, then the leg vector),
 * for the writers above. runMatrix() writes both documents
 * automatically to the paths named by MCD_STATS_OUT / MCD_TRACE_OUT.
 */
std::vector<NamedRun>
namedRuns(const std::vector<BenchmarkResults> &rows);

/**
 * Runs experiment matrices, with optional on-disk caching.
 *
 * Thread safety: one runner may be used from many threads at once —
 * the configuration is immutable after construction and cache files
 * are published atomically (write-to-temp + rename), so concurrent
 * runBenchmark() calls for distinct benchmarks never interfere.
 */
class ExperimentRunner
{
  public:
    /** An empty cfg.legs vector is resolved to defaultLegs(cfg). */
    explicit ExperimentRunner(ExperimentConfig cfg);

    /** Run (or load from cache) the full matrix for one benchmark. */
    BenchmarkResults runBenchmark(const std::string &name);

    /**
     * Same matrix, with the independent legs fanned out on @p pool as
     * a small task graph: the baseline, every controller leg, and the
     * MCD profiling run execute in parallel; then the schedule-replay
     * legs analyze+simulate concurrently off the shared trace; the
     * global-search legs (which need the baseline plus their
     * reference leg) run last. Every leg simulates an independently
     * constructed, per-run-seeded processor, so the results are
     * bit-identical to the serial runBenchmark() overload.
     */
    BenchmarkResults runBenchmark(const std::string &name,
                                  ThreadPool &pool);

    /** Cache file path for @p name (empty when caching is disabled). */
    std::string cachePath(const std::string &name) const;

    /**
     * Run only the pieces needed for a dynamic configuration:
     * profile, analyze, dynamic run. Used by Figure 8/9 benches and
     * the examples.
     */
    struct DynamicRun
    {
        RunResult result;
        AnalysisResult analysis;
    };
    DynamicRun runDynamic(const std::string &name,
                          double target_dilation);

    /**
     * Run only the online-control comparison: the MCD baseline and
     * the OnlineQueueController run (no offline analysis, no global
     * search). Never cached — cheap enough to rerun.
     */
    struct OnlineRun
    {
        RunResult mcdBaseline;
        RunResult online;
    };
    OnlineRun runOnline(const std::string &name);

    const ExperimentConfig &cfg() const { return config; }

    /** Cache files quarantined (renamed *.corrupt) by this runner. */
    std::uint64_t cacheQuarantines() const { return quarantines; }

  private:
    /** Result of one dynamic (analyze + simulate) leg. */
    struct DynLeg
    {
        RunResult result;
        std::size_t scheduleSize = 0;
    };

    /** Result of one global-search leg. */
    struct GlobalOut
    {
        RunResult result;
        Hertz frequency = 0.0;
    };

    SimConfig makeSimConfig(ClockingStyle style,
                            const std::string &site = {}) const;
    RunResult runOnce(const Program &prog, const SimConfig &sc) const;
    RunResult profileLeg(const Program &prog,
                         std::vector<InstTrace> &trace_out,
                         const std::string &site) const;
    RunResult controllerLeg(const Program &prog, const LegSpec &leg,
                            const std::string &site) const;
    DynLeg dynamicLeg(const Program &prog,
                      const std::vector<InstTrace> &trace,
                      double target_dilation,
                      const std::string &site) const;
    GlobalOut globalLeg(const Program &prog,
                        const BenchmarkResults &r,
                        const RunResult &reference,
                        const std::string &site) const;

    /**
     * Per-leg isolation: run @p body under a guard that catches
     * FatalError / PanicError / WatchdogError / injected faults /
     * std::exception, retries transient faults up to
     * ExperimentConfig::legAttempts times, and on failure returns a
     * default RunResult carrying a structured RunError instead of
     * propagating — so one dead leg never takes down the matrix.
     */
    RunResult runGuarded(const std::string &bench,
                         const std::string &leg,
                         const std::function<RunResult()> &body) const;

    /** A leg skipped because an upstream leg it needs failed. */
    RunResult dependencyFailed(const std::string &bench,
                               const std::string &leg,
                               const std::string &upstream) const;

    std::string cacheKey(const std::string &name) const;
    std::optional<BenchmarkResults> loadCache(const std::string &name) const;
    void storeCache(const BenchmarkResults &r) const;

    ExperimentConfig config;

    /** Quarantined-cache-file count (atomic: legs run concurrently). */
    mutable std::atomic<std::uint64_t> quarantines{0};
};

/**
 * Run the matrix for a list of benchmarks across @p jobs concurrent
 * workers (jobs <= 1 runs strictly serially, inline). Each benchmark
 * additionally fans its independent legs onto the same pool. Results
 * are returned in the order of @p names regardless of completion
 * order, and are bit-identical for every jobs value.
 *
 * Configuration (resolved through config::RunSpec, so every knob is
 * reachable as env var, config-file key, or CLI flag), beyond the
 * telemetry/sampling/fault options documented on ExperimentConfig:
 * tournament switches an empty cfg.legs to tournamentLegs();
 * controllers filters the leg set by name (unknown names are fatal,
 * enumerating the available legs); leaderboardJson names a path for
 * the ranked leaderboard. Every results/stats document carries an
 * effectiveConfig block recording the resolved result-shaping options
 * with per-option provenance.
 *
 * @param progress print a per-benchmark progress line to stderr
 */
std::vector<BenchmarkResults>
runMatrix(const ExperimentConfig &cfg,
          const std::vector<std::string> &names, int jobs,
          bool progress = false);

} // namespace mcd

#endif // MCD_CORE_EXPERIMENT_HH
