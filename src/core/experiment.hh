/**
 * @file
 * The experiment runner for the paper's evaluation (Section 4).
 *
 * For one benchmark it produces the five configurations compared in
 * Figures 5-7:
 *
 *  - baseline: singly clocked 1 GHz, no scaling;
 *  - baseline MCD: four domains, all statically at 1 GHz (quantifies
 *    the synchronization cost; doubles as the profiling run);
 *  - dynamic-1% / dynamic-5%: per-domain DVFS driven by the offline
 *    tool's schedule with a 1% / 5% dilation target;
 *  - global: the baseline with a single reduced frequency/voltage
 *    chosen so its performance degradation matches dynamic-5%.
 *
 * Results are cached on disk so the per-figure bench binaries can
 * share one expensive run matrix.
 */

#ifndef MCD_CORE_EXPERIMENT_HH
#define MCD_CORE_EXPERIMENT_HH

#include <optional>
#include <string>

#include "analysis/analyzer.hh"
#include "core/processor.hh"
#include "core/sim_config.hh"

namespace mcd {

/** Parameters of one experiment matrix. */
struct ExperimentConfig
{
    int scale = 1;                  //!< workload scale factor
    DvfsKind model = DvfsKind::XScale;
    /** Shrinks DVFS transition times to match shortened windows
     *  while preserving the re-lock-to-interval cost ratio
     *  (DESIGN.md section 4, substitution 2). */
    double dvfsTimeScale = 0.2;
    double dilationLow = 0.01;      //!< dynamic-1% target
    double dilationHigh = 0.05;     //!< dynamic-5% target
    std::uint64_t seed = 1;
    bool recordFreqTrace = false;   //!< per-domain traces (Figure 8)
    std::string cacheDir;           //!< empty = caching disabled
};

/** The five runs (plus metadata) for one benchmark. */
struct BenchmarkResults
{
    std::string name;
    RunResult baseline;
    RunResult mcdBaseline;
    RunResult dyn1;
    RunResult dyn5;
    RunResult global;
    Hertz globalFrequency = 0.0;

    std::size_t schedule1Size = 0;  //!< dyn-1% schedule entries
    std::size_t schedule5Size = 0;

    /** Fractional slowdown of @p r relative to the baseline. */
    double
    perfDegradation(const RunResult &r) const
    {
        return static_cast<double>(r.execTime) /
            static_cast<double>(baseline.execTime) - 1.0;
    }

    /** Fractional energy saved relative to the baseline. */
    double
    energySavings(const RunResult &r) const
    {
        return 1.0 - r.totalEnergy / baseline.totalEnergy;
    }

    /** Fractional energy-delay-product improvement. */
    double
    edpImprovement(const RunResult &r) const
    {
        return 1.0 - r.energyDelay / baseline.energyDelay;
    }
};

/**
 * Runs experiment matrices, with optional on-disk caching.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig cfg);

    /** Run (or load from cache) the full matrix for one benchmark. */
    BenchmarkResults runBenchmark(const std::string &name);

    /**
     * Run only the pieces needed for a dynamic configuration:
     * profile, analyze, dynamic run. Used by Figure 8/9 benches and
     * the examples.
     */
    struct DynamicRun
    {
        RunResult result;
        AnalysisResult analysis;
    };
    DynamicRun runDynamic(const std::string &name,
                          double target_dilation);

    const ExperimentConfig &cfg() const { return config; }

  private:
    SimConfig makeSimConfig(ClockingStyle style) const;
    RunResult runOnce(const Program &prog, const SimConfig &sc) const;
    std::string cacheKey(const std::string &name) const;
    std::optional<BenchmarkResults> loadCache(const std::string &name);
    void storeCache(const BenchmarkResults &r);

    ExperimentConfig config;
};

} // namespace mcd

#endif // MCD_CORE_EXPERIMENT_HH
