/**
 * @file
 * McdProcessor: the top-level façade binding the clock domains, DVFS
 * engines, memory hierarchy, out-of-order core, power model, and
 * trace collector into one runnable simulated processor.
 *
 * The run loop is a deterministic discrete-event scheduler
 * (core/sched.hh): per-domain clock-edge actors carry the pipeline
 * work, DVFS service and controller observations are edge-latched
 * wake times refreshed from the engines, and the telemetry sampler
 * and simulated-time budget are arm/defer monitor actors that hop
 * from their due point onto the first edge at-or-after it — so no
 * per-edge polling of the controller, telemetry, or watchdog remains,
 * and the event order (hence every result byte) is independent of
 * scheduling insertion order. See DESIGN.md section 10.
 */

#ifndef MCD_CORE_PROCESSOR_HH
#define MCD_CORE_PROCESSOR_HH

#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "clock/clock_domain.hh"
#include "clock/dvfs.hh"
#include "clock/operating_points.hh"
#include "control/controller.hh"
#include "core/sampling.hh"
#include "core/sched.hh"
#include "core/sim_config.hh"
#include "cpu/core_units.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "obs/freq_accum.hh"
#include "power/power_model.hh"
#include "trace/trace.hh"

namespace mcd {

/**
 * Thrown by the run-loop watchdog when a simulation stops making
 * commit progress or exceeds its simulated-time budget (see
 * SimConfig::watchdogNoProgressEdges / watchdogMaxTicks): a runaway
 * or deadlocked run becomes a clean structured error instead of a
 * hang, so the experiment engine's per-leg guard can record it and
 * let the rest of the matrix proceed.
 */
class WatchdogError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * One simulated processor instance. Construct, call run(), inspect
 * the result (and the collected trace for profiling runs).
 */
class McdProcessor
{
  public:
    McdProcessor(const SimConfig &config, const Program &program);

    /** Run to HALT (or the configured instruction cap). */
    RunResult run();

    /** The primitive-event trace (after a run with collectTrace). */
    const TraceCollector &trace() const { return collector; }

    /** Move the collected trace out (for use past this object's life). */
    std::vector<InstTrace> takeTrace() { return collector.take(); }

    /** The DVFS operating-point table in use. */
    const DvfsTable &dvfsTable() const { return opTable; }

    /** Test hooks. */
    const CoreUnits &pipeline() const { return *pipe; }
    const ClockDomain &clock(Domain d) const
    { return *clocks[domainIndex(d)]; }

    /** The active frequency controller (nullptr for static runs). */
    const DvfsController *controllerInUse() const { return controller; }

    /** A domain's DVFS engine, nullptr when singly clocked (test hook). */
    DomainDvfs *dvfsEngine(Domain d) { return dvfs[domainIndex(d)].get(); }

    /** The run's telemetry context; null when all channels are off. */
    const obs::Telemetry *telemetry() const { return telem.get(); }

  private:
    /** One per-domain clock-edge event (MCD configuration). */
    struct EdgeActor final : Actor
    {
        McdProcessor *p = nullptr;
        int di = 0;
        Tick fire(Tick now) override;
    };

    /** The single shared clock edge (singly clocked configuration). */
    struct GlobalEdgeActor final : Actor
    {
        McdProcessor *p = nullptr;
        Tick fire(Tick now) override;
    };

    /**
     * Arm/defer monitor base: the first firing lands at the monitor's
     * exact due tick (armPriority, before any coincident edge) and
     * re-schedules onto the first edge at-or-after it; the second
     * firing — right after that edge — does the work. This reproduces
     * the legacy loop's "first edge at-or-after the due time"
     * observation points without a per-edge compare.
     */
    struct MonitorActor : Actor
    {
        McdProcessor *p = nullptr;
        bool deferred = false;
    };

    /** Periodic telemetry sampling (obs::TimeSeriesSampler cadence). */
    struct SampleActor final : MonitorActor
    {
        Tick fire(Tick now) override;
    };

    /** Simulated-time budget: trips at the first edge past the cap. */
    struct BudgetActor final : MonitorActor
    {
        Tick fire(Tick now) override;
    };

    void domainEdge(Domain d, int di, Tick t);
    void globalEdge(Tick t);
    void progressCheckpoint(Tick t);
    void scheduleAfterNextEdge(Actor *a);
    [[noreturn]] void watchdogTripNow(const std::string &why, Tick at);
    void observeAndControl(Domain d, int di, Tick now);
    void captureSample(Tick now);
    void publishSummaryStats(const RunResult &r);

    SimConfig cfg;
    Program prog;       //!< owned copy: callers may pass temporaries
    DvfsTable opTable;

    // Owns one clock per domain in MCD mode, or a single shared clock.
    std::vector<std::unique_ptr<ClockDomain>> ownedClocks;
    std::array<ClockDomain *, numDomains> clocks{};

    Executor oracle;
    std::unique_ptr<MemoryHierarchy> memory;
    std::unique_ptr<PowerModel> power;
    TraceCollector collector;
    std::unique_ptr<CoreUnits> pipe;

    /** Sampling state machine (sampled runs only; see SimConfig). */
    std::unique_ptr<SamplingPolicy> samplingPolicy;
    std::array<std::unique_ptr<DomainDvfs>, numDomains> dvfs;

    // The control plane: either the caller's controller or an
    // internally owned ScheduleController wrapping cfg.schedule.
    DvfsController *controller = nullptr;
    std::unique_ptr<DvfsController> ownedController;

    // ----- Event-driven run-loop state (valid during run()) -----

    EventScheduler sched;
    std::array<EdgeActor, numDomains> edgeActors;
    GlobalEdgeActor globalActor;
    SampleActor sampleActor;
    BudgetActor budgetActor;

    /** Pending edge time per clock, mirrored so monitor defers and the
     *  edge actors re-arm without chasing ClockDomain pointers. */
    std::array<Tick, numDomains> nextEdgeCache{};

    /** Edge-latched DVFS service times (DomainDvfs::nextEventTime). */
    std::array<Tick, numDomains> dvfsWake{};

    /** Edge-latched controller observation times. */
    std::array<Tick, numDomains> nextObserve{};

    /** Per-domain time-weighted frequency bookkeeping. */
    std::array<obs::FreqAccumulator, numDomains> freqAcc;

    // No-progress watchdog: a lazy edge-count checkpoint instead of a
    // per-edge commit compare (see progressCheckpoint()).
    std::uint64_t edgeCount = 0;
    std::uint64_t progressBaseEdge = 0;
    std::uint64_t progressCommits = 0;
    std::uint64_t nextProgressCheck = ~std::uint64_t{0};
    bool stallInjected = false;

    // Per-run telemetry (never shared across threads while running).
    std::shared_ptr<obs::Telemetry> telem;
};

} // namespace mcd

#endif // MCD_CORE_PROCESSOR_HH
