/**
 * @file
 * McdProcessor: the top-level façade binding the clock domains, DVFS
 * engines, memory hierarchy, out-of-order pipeline, power model, and
 * trace collector into one runnable simulated processor.
 */

#ifndef MCD_CORE_PROCESSOR_HH
#define MCD_CORE_PROCESSOR_HH

#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "clock/clock_domain.hh"
#include "clock/dvfs.hh"
#include "clock/operating_points.hh"
#include "control/controller.hh"
#include "core/sim_config.hh"
#include "cpu/pipeline.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "power/power_model.hh"
#include "trace/trace.hh"

namespace mcd {

/**
 * Thrown by the run-loop watchdog when a simulation stops making
 * commit progress or exceeds its simulated-time budget (see
 * SimConfig::watchdogNoProgressEdges / watchdogMaxTicks): a runaway
 * or deadlocked run becomes a clean structured error instead of a
 * hang, so the experiment engine's per-leg guard can record it and
 * let the rest of the matrix proceed.
 */
class WatchdogError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * One simulated processor instance. Construct, call run(), inspect
 * the result (and the collected trace for profiling runs).
 */
class McdProcessor
{
  public:
    McdProcessor(const SimConfig &config, const Program &program);

    /** Run to HALT (or the configured instruction cap). */
    RunResult run();

    /** The primitive-event trace (after a run with collectTrace). */
    const TraceCollector &trace() const { return collector; }

    /** Move the collected trace out (for use past this object's life). */
    std::vector<InstTrace> takeTrace() { return collector.take(); }

    /** The DVFS operating-point table in use. */
    const DvfsTable &dvfsTable() const { return opTable; }

    /** Test hooks. */
    const Pipeline &pipeline() const { return *pipe; }
    const ClockDomain &clock(Domain d) const
    { return *clocks[domainIndex(d)]; }

    /** The active frequency controller (nullptr for static runs). */
    const DvfsController *controllerInUse() const { return controller; }

    /** A domain's DVFS engine, nullptr when singly clocked (test hook). */
    DomainDvfs *dvfsEngine(Domain d) { return dvfs[domainIndex(d)].get(); }

    /** The run's telemetry context; null when all channels are off. */
    const obs::Telemetry *telemetry() const { return telem.get(); }

  private:
    void observeAndControl(Domain d, int di, Tick now);
    void captureSample(Tick now);
    void publishSummaryStats(const RunResult &r);

    SimConfig cfg;
    Program prog;       //!< owned copy: callers may pass temporaries
    DvfsTable opTable;

    // Owns one clock per domain in MCD mode, or a single shared clock.
    std::vector<std::unique_ptr<ClockDomain>> ownedClocks;
    std::array<ClockDomain *, numDomains> clocks{};

    Executor oracle;
    std::unique_ptr<MemoryHierarchy> memory;
    std::unique_ptr<PowerModel> power;
    TraceCollector collector;
    std::unique_ptr<Pipeline> pipe;
    std::array<std::unique_ptr<DomainDvfs>, numDomains> dvfs;

    // The control plane: either the caller's controller or an
    // internally owned ScheduleController wrapping cfg.schedule.
    DvfsController *controller = nullptr;
    std::unique_ptr<DvfsController> ownedController;
    std::array<Tick, numDomains> nextObserve{};

    // Per-run telemetry (never shared across threads while running).
    std::shared_ptr<obs::Telemetry> telem;
};

} // namespace mcd

#endif // MCD_CORE_PROCESSOR_HH
