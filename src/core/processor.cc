#include "processor.hh"

#include <algorithm>
#include <cctype>
#include <string>

#include "common/log.hh"
#include "fault/fault_plan.hh"

namespace mcd {

McdProcessor::McdProcessor(const SimConfig &config, const Program &program)
    : cfg(config), prog(program), oracle(prog)
{
    cfg.validate();

    bool mcd = cfg.clocking == ClockingStyle::Mcd;

    if (mcd) {
        for (int d = 0; d < numDomains; ++d) {
            ownedClocks.push_back(std::make_unique<ClockDomain>(
                static_cast<Domain>(d), cfg.domainFrequency[d],
                cfg.seed * 7919 + d * 104729 + 13,
                cfg.jitterSigmaPs, true));
            clocks[d] = ownedClocks.back().get();
        }
    } else {
        ownedClocks.push_back(std::make_unique<ClockDomain>(
            Domain::FrontEnd, cfg.domainFrequency[0],
            cfg.seed * 7919 + 13, cfg.jitterSigmaPs, true));
        for (int d = 0; d < numDomains; ++d)
            clocks[d] = ownedClocks.front().get();
    }

    // Initial voltages follow the frequency/voltage map.
    for (int d = 0; d < numDomains; ++d)
        clocks[d]->setVoltage(opTable.voltageFor(clocks[d]->frequency()));

    SyncRule icMissRule = SyncRule::forMaxFrequency(
        mcd, opTable.maxFrequency(), cfg.syncFraction);
    memory = std::make_unique<MemoryHierarchy>(
        cfg.mem, *clocks[domainIndex(Domain::FrontEnd)],
        *clocks[domainIndex(Domain::LoadStore)], icMissRule);

    power = std::make_unique<PowerModel>(
        cfg.energy,
        std::array<const ClockDomain *, numDomains>{
            clocks[0], clocks[1], clocks[2], clocks[3]});

    collector.enable(cfg.collectTrace);
    if (cfg.collectTrace) {
        // Pre-size the event trace so profiling runs do not pay
        // repeated mid-run reallocations (the records are ~100 bytes
        // each and the kernels commit 100K+ instructions). With no
        // explicit cap, estimate the dynamic length from the static
        // program size; clamped so a pathological ratio cannot
        // balloon the reservation.
        std::size_t hint = cfg.maxInstructions;
        if (!hint) {
            hint = std::clamp<std::size_t>(prog.textSize() * 1024,
                                           std::size_t{1} << 16,
                                           std::size_t{1} << 22);
        }
        collector.reserve(hint);
    }

    pipe = std::make_unique<CoreUnits>(
        cfg.core, oracle, *memory, clocks, cfg.syncFraction,
        power.get(), &collector, cfg.maxInstructions);

    if (cfg.sampling) {
        samplingPolicy = std::make_unique<SamplingPolicy>(*cfg.sampling,
                                                          power.get());
        pipe->bindSampling(samplingPolicy.get());
    }

    // Telemetry context: the Figure 8 trace now reads the sampler's
    // frequency series, so recordFreqTrace forces that channel on even
    // when the caller's TelemetryConfig is all-off.
    obs::TelemetryConfig tc = cfg.telemetry;
    tc.freqSeries = tc.freqSeries || cfg.recordFreqTrace;
    // Sampled invariants (queue_fill, energy_decreasing) need the
    // periodic stream: an invariants-only config gets the default
    // sampling period rather than silently checking nothing.
    if (!tc.invariants.empty() && tc.samplePeriod == 0)
        tc.samplePeriod = fromMicroseconds(10.0);
    if (tc.enabled())
        telem = std::make_shared<obs::Telemetry>(tc);

    bool misorder =
        cfg.faults && cfg.faults->misordersLeg(cfg.faultSite);
    if (mcd) {
        DvfsParams dp = DvfsParams::forKind(cfg.dvfs, cfg.dvfsTimeScale);
        for (int d = 0; d < numDomains; ++d) {
            dvfs[d] = std::make_unique<DomainDvfs>(
                dp, opTable, *clocks[d],
                cfg.seed * 31337 + d * 271 + 7);
            if (telem)
                dvfs[d]->attachTelemetry(telem.get());
            if (misorder)
                dvfs[d]->injectVfMisorder();
        }
    }

    // Resolve the control plane: an explicit controller wins; a bare
    // schedule is wrapped in the behavior-preserving replay controller.
    if (cfg.controller) {
        mcdAssert(!cfg.schedule,
                  "SimConfig: set either controller or schedule, not both");
        controller = cfg.controller;
    } else if (cfg.schedule) {
        ownedController =
            std::make_unique<ScheduleController>(*cfg.schedule);
        controller = ownedController.get();
    }
}

/**
 * One controller step for domain @p d at edge time @p now: drain the
 * pipeline's occupancy window into an observation, then forward every
 * request the controller produced to the matching transition engine.
 * Engines that accepted a request get their wake latch refreshed so
 * the edge actors service the new transition on time.
 */
void
McdProcessor::observeAndControl(Domain d, int di, Tick now)
{
    OccupancyWindow w = pipe->takeOccupancyWindow(d);
    DomainStats s;
    s.domain = d;
    s.windowCycles = w.cycles;
    s.occupancySum = w.occupancySum;
    s.queueLength = w.queueLength;
    s.queueCapacity = w.capacity;
    s.frequency = clocks[di]->frequency();
    controller->observe(s, now);

    if (!controller->requests().empty()) {
        for (const FreqRequest &q : controller->requests()) {
            if (telem) {
                telem->onControllerDecision(controller->name(), q.domain,
                                            now, q.frequency);
            }
            int qi = domainIndex(q.domain);
            if (DomainDvfs *engine = dvfs[qi].get()) {
                engine->requestFrequency(now, q.frequency);
                dvfsWake[qi] = engine->nextEventTime();
            }
        }
        controller->clearRequests();
    }
    if (Tick period = controller->samplePeriod())
        nextObserve[di] = now + period;
}

/** Snapshot all domains for the periodic telemetry sampler. */
void
McdProcessor::captureSample(Tick now)
{
    obs::TimeSample s;
    s.when = now;
    for (int d = 0; d < numDomains; ++d) {
        Domain dom = static_cast<Domain>(d);
        s.frequency[d] = clocks[d]->frequency();
        s.voltage[d] = clocks[d]->voltage();
        int cap = pipe->queueCapacity(dom);
        s.occupancy[d] = cap > 0
            ? static_cast<double>(pipe->queueLength(dom)) /
                  static_cast<double>(cap)
            : 0.0;
        s.energy[d] = power->domainEnergy(dom);
    }
    telem->onSample(s);
}

[[noreturn]] void
McdProcessor::watchdogTripNow(const std::string &why, Tick at)
{
    if (telem)
        telem->onWatchdogTrip(at);
    throw WatchdogError(
        "McdProcessor watchdog: " + why + " at t=" + formatTick(at) +
        " after " + std::to_string(pipe->committed()) + " commits" +
        (stallInjected ? " [injected stall]" : ""));
}

/**
 * Lazy no-progress watchdog: instead of comparing the commit counter
 * at every edge, the edge actors count edges and this checkpoint runs
 * once per watchdogNoProgressEdges+1 of them. A window that ends with
 * the commit counter unchanged (or with an injected stall armed) trips
 * with the same message, tick, and edge count as the legacy per-edge
 * check for a run that never progresses; a run that progresses and
 * then deadlocks trips within two windows instead of exactly one —
 * an observable difference only in already-failing runs.
 */
void
McdProcessor::progressCheckpoint(Tick t)
{
    if (stallInjected || pipe->committed() == progressCommits) {
        watchdogTripNow("no commit progress for " +
                        std::to_string(edgeCount - progressBaseEdge) +
                        " edges (deadlock?)", t);
    }
    progressCommits = pipe->committed();
    progressBaseEdge = edgeCount;
    nextProgressCheck = edgeCount + cfg.watchdogNoProgressEdges + 1;
}

/**
 * Hop @p a onto the first upcoming clock edge: same tick as that
 * edge, in the priority slot directly after it (ties across domains
 * resolve to the lowest domain index, matching the legacy loop's
 * min-scan).
 */
void
McdProcessor::scheduleAfterNextEdge(Actor *a)
{
    int d = 0;
    if (cfg.clocking == ClockingStyle::Mcd) {
        for (int i = 1; i < numDomains; ++i) {
            if (nextEdgeCache[i] < nextEdgeCache[d])
                d = i;
        }
    }
    sched.schedule(a, nextEdgeCache[d], EventScheduler::afterEdgePriority(d));
}

Tick
McdProcessor::EdgeActor::fire(Tick)
{
    ClockDomain *c = p->clocks[di];
    Tick t = c->advance();
    p->domainEdge(static_cast<Domain>(di), di, t);
    Tick next = c->peekNextEdge();
    p->nextEdgeCache[di] = next;
    return next;
}

Tick
McdProcessor::GlobalEdgeActor::fire(Tick)
{
    ClockDomain *c = p->clocks[0];
    Tick t = c->advance();
    p->globalEdge(t);
    Tick next = c->peekNextEdge();
    p->nextEdgeCache[0] = next;
    return next;
}

Tick
McdProcessor::SampleActor::fire(Tick now)
{
    if (!deferred) {
        deferred = true;
        p->scheduleAfterNextEdge(this);
        return never;
    }
    deferred = false;
    p->captureSample(now);
    p->sched.schedule(this, p->telem->sampler().nextDue(),
                      EventScheduler::armPriority);
    return never;
}

Tick
McdProcessor::BudgetActor::fire(Tick now)
{
    if (!deferred) {
        deferred = true;
        p->scheduleAfterNextEdge(this);
        return never;
    }
    p->watchdogTripNow("simulated-time budget exhausted", now);
}

/** One MCD domain edge: DVFS service, controller step, domain work. */
void
McdProcessor::domainEdge(Domain d, int di, Tick t)
{
    bool blocked = false;
    if (DomainDvfs *dv = dvfs[di].get()) {
        if (t >= dvfsWake[di]) {
            dv->update(t);
            dvfsWake[di] = dv->nextEventTime();
        }
        if (controller && t >= nextObserve[di])
            observeAndControl(d, di, t);
        blocked = dv->executionBlocked(t);
    }
    if (!blocked)
        pipe->tickDomain(d, t);
    power->domainCycle(d, blocked);
    freqAcc[di].edge(t, clocks[di]->frequency());

    if (++edgeCount >= nextProgressCheck)
        progressCheckpoint(t);
}

/** One shared-clock edge: all four logical domains in pipeline order. */
void
McdProcessor::globalEdge(Tick t)
{
    for (int d = 0; d < numDomains; ++d) {
        pipe->tickDomain(static_cast<Domain>(d), t);
        power->domainCycle(static_cast<Domain>(d), false);
        freqAcc[d].edge(t, clocks[d]->frequency());
    }
    if (++edgeCount >= nextProgressCheck)
        progressCheckpoint(t);
}

RunResult
McdProcessor::run()
{
    bool mcd = cfg.clocking == ClockingStyle::Mcd;

    for (int d = 0; d < numDomains; ++d) {
        freqAcc[d] = obs::FreqAccumulator(clocks[d]->now(),
                                          clocks[d]->frequency());
        dvfsWake[d] = dvfs[d] ? dvfs[d]->nextEventTime() : Actor::never;
    }

    if (telem) {
        std::array<Hertz, numDomains> f0;
        std::array<Volt, numDomains> v0;
        for (int d = 0; d < numDomains; ++d) {
            f0[d] = clocks[d]->frequency();
            v0[d] = clocks[d]->voltage();
        }
        telem->onRunStart(f0, v0);
    }

    // An armed Stall fault suppresses the progress signal, so the run
    // looks deadlocked to the watchdog and must be cut cleanly.
    stallInjected = cfg.faults && cfg.faults->stallsLeg(cfg.faultSite);
    edgeCount = 0;
    progressBaseEdge = 0;
    progressCommits = 0;
    nextProgressCheck = cfg.watchdogNoProgressEdges
        ? cfg.watchdogNoProgressEdges + 1 : ~std::uint64_t{0};

    // Populate the event queue: clock-edge actors first, then the
    // monitors (sampler before time budget), so coincident events at
    // one (tick, priority) resolve by insertion order exactly as the
    // legacy [edge; sample; budget] iteration did.
    sched.clear();
    // The actor population is fixed: one edge actor per clock plus
    // the two monitors. Pre-sizing keeps the heap allocation-free.
    sched.reserve(numDomains + 2);
    if (mcd) {
        for (int d = 0; d < numDomains; ++d) {
            edgeActors[d].p = this;
            edgeActors[d].di = d;
            nextEdgeCache[d] = clocks[d]->peekNextEdge();
            sched.schedule(&edgeActors[d], nextEdgeCache[d],
                           EventScheduler::edgePriority(d));
        }
    } else {
        globalActor.p = this;
        nextEdgeCache[0] = clocks[0]->peekNextEdge();
        sched.schedule(&globalActor, nextEdgeCache[0],
                       EventScheduler::edgePriority(0));
    }
    if (telem) {
        sampleActor.p = this;
        sampleActor.deferred = false;
        sched.schedule(&sampleActor, telem->sampler().nextDue(),
                       EventScheduler::armPriority);
    }
    if (cfg.watchdogMaxTicks &&
        cfg.watchdogMaxTicks + 1 != Tick{0}) {
        budgetActor.p = this;
        budgetActor.deferred = false;
        sched.schedule(&budgetActor, cfg.watchdogMaxTicks + 1,
                       EventScheduler::armPriority);
    }

    while (!pipe->stopRequested()) {
        if (!sched.runOne())
            break;
    }
    // The legacy loop handled [edge; sample; budget] within a single
    // iteration before re-checking its stop condition: finish the
    // monitors deferred onto the stopping edge before exiting, so the
    // final sample (and a coincident budget trip) land exactly where
    // they used to.
    Tick stopTick = sched.currentTick();
    int stopPri = sched.currentPriority();
    while (!sched.empty() && sched.nextTick() == stopTick &&
           sched.nextPriority() == stopPri + 1) {
        sched.runOne();
    }
    sched.clear();

    // Assemble the result.
    RunResult r;
    r.benchmark = prog.name();
    r.committed = pipe->committed();
    r.execTime = pipe->lastCommitTime();
    std::uint64_t feCycles =
        clocks[domainIndex(Domain::FrontEnd)]->cycles();
    r.ipc = feCycles
        ? static_cast<double>(r.committed) / static_cast<double>(feCycles)
        : 0.0;
    r.totalEnergy = power->totalEnergy();
    r.energyDelay = r.totalEnergy * toSeconds(r.execTime);
    r.pipeline = pipe->stats();
    r.l1i = memory->l1i().stats();
    r.l1d = memory->l1d().stats();
    r.l2 = memory->l2().stats();
    r.bpredLookups = pipe->bpred().stats().lookups;
    r.bpredMispredictRate = pipe->bpred().stats().mispredictRate();

    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        s.cycles = clocks[d]->cycles();
        if (!mcd)
            s.cycles = ownedClocks[0]->cycles();
        s.energy = power->domainEnergy(static_cast<Domain>(d));
        s.avgFrequency = freqAcc[d].span()
            ? freqAcc[d].average() : clocks[d]->frequency();
        s.minFrequency = freqAcc[d].minimum();
        s.maxFrequency = freqAcc[d].maximum();
        if (mcd && dvfs[d]) {
            s.reconfigurations = dvfs[d]->reconfigurations();
            if (cfg.recordFreqTrace) {
                r.freqTraces[d] = telem->sampler()
                    .frequencyTrace(static_cast<Domain>(d));
            }
        }
    }

    if (samplingPolicy) {
        // Fold the extrapolated fast-forward contribution in. IPC is
        // left as the *measured* detailed-mode value (commits per
        // front-end cycle actually simulated); time, energy, and the
        // instruction count cover the whole dynamic stream.
        SamplingSummary ss = samplingPolicy->summary(r.committed);
        r.sampling = ss;
        r.committed += ss.ffExecuted;
        r.execTime += ss.estFfTimePs;
        r.totalEnergy += ss.estFfEnergy;
        for (int d = 0; d < numDomains; ++d)
            r.domains[d].energy += ss.estFfEnergyDomain[d];
        r.energyDelay = r.totalEnergy * toSeconds(r.execTime);
    }

    if (telem) {
        telem->onRunEnd(r.execTime);
        publishSummaryStats(r);
        r.telemetry = telem;
    }
    return r;
}

/**
 * Fold the run's end-of-run summary into the stats registry so the
 * stats JSON stands alone: per-domain cycle/energy/frequency summaries
 * plus the pipeline and control-plane aggregates, alongside the
 * event-driven counters the hooks accumulated during the run.
 */
void
McdProcessor::publishSummaryStats(const RunResult &r)
{
    obs::StatsRegistry &reg = telem->stats();

    reg.counter("run.committed", "committed instructions")
        .inc(r.committed);
    reg.gauge("run.exec_time_ps", "time of the last commit")
        .set(static_cast<double>(r.execTime));
    reg.gauge("run.ipc", "committed per front-end cycle").set(r.ipc);
    reg.gauge("run.energy_j", "total energy").set(r.totalEnergy);

    for (int d = 0; d < numDomains; ++d) {
        std::string p = "domain.";
        for (const char *c = domainShortName(static_cast<Domain>(d));
             *c; ++c) {
            p += static_cast<char>(
                std::tolower(static_cast<unsigned char>(*c)));
        }
        p += '.';
        const DomainSummary &s = r.domains[d];
        reg.counter(p + "cycles", "domain clock edges").inc(s.cycles);
        reg.gauge(p + "energy_j", "domain energy").set(s.energy);
        reg.gauge(p + "avg_mhz", "time-weighted mean frequency")
            .set(s.avgFrequency / 1e6);
        reg.gauge(p + "min_mhz", "lowest frequency seen")
            .set(s.minFrequency / 1e6);
        reg.gauge(p + "max_mhz", "highest frequency seen")
            .set(s.maxFrequency / 1e6);
        reg.counter(p + "reconfigurations",
                    "target changes accepted by the DVFS engine")
            .inc(s.reconfigurations);
    }

    const PipelineStats &ps = r.pipeline;
    reg.counter("pipeline.fetched", "instructions fetched")
        .inc(ps.fetched);
    reg.counter("pipeline.mispredicts", "branch mispredictions")
        .inc(ps.mispredicts);
    reg.counter("pipeline.sync.commit_stalls",
                "commit blocked on a cross-domain completion signal")
        .inc(ps.syncCommitStalls);
    reg.counter("pipeline.sync.dispatch_waits",
                "queue entries not yet visible across a boundary")
        .inc(ps.syncDispatchWaits);
    reg.counter("pipeline.sync.addr_waits",
                "LSQ waits on an address from the integer domain")
        .inc(ps.syncAddrWaits);

    // Memory-layout proof points: the pre-sized structures must not
    // touch the allocator in steady state (grows == 0) and the window
    // arena must bound the in-flight count.
    reg.gauge("pipeline.window.peak",
              "in-flight instruction high-water mark")
        .set(static_cast<double>(pipe->windowHighWater()));
    reg.gauge("pipeline.window.capacity",
              "instruction-window arena slots")
        .set(static_cast<double>(pipe->windowCapacity()));
    reg.counter("pipeline.ports.ring_grows",
                "ring reallocations forced by undersized reservations")
        .inc(pipe->ringGrows());
    reg.gauge("sched.heap.peak", "event-heap high-water mark")
        .set(static_cast<double>(sched.peakSize()));

    if (r.sampling) {
        const SamplingSummary &ss = *r.sampling;
        reg.counter("run.sampling.windows",
                    "completed detailed measurement windows")
            .inc(ss.windows);
        reg.counter("run.sampling.detailed_committed",
                    "instructions committed in detail")
            .inc(ss.detailedCommitted);
        reg.counter("run.sampling.ff_executed",
                    "instructions fast-forwarded functionally")
            .inc(ss.ffExecuted);
        reg.gauge("run.sampling.est_ff_time_ps",
                  "extrapolated fast-forward time")
            .set(static_cast<double>(ss.estFfTimePs));
        reg.gauge("run.sampling.est_ff_energy_j",
                  "extrapolated fast-forward energy")
            .set(ss.estFfEnergy);
        reg.gauge("run.sampling.time_per_inst_cv",
                  "window time-per-inst coefficient of variation")
            .set(ss.timePerInstCv);
        reg.gauge("run.sampling.energy_per_inst_cv",
                  "window energy-per-inst coefficient of variation")
            .set(ss.energyPerInstCv);
    }

    if (controller) {
        std::string p = "control.";
        p += controller->name();
        reg.counter(p + ".requests_issued",
                    "frequency requests emitted by the policy")
            .inc(controller->requestsIssued());
    }
}

} // namespace mcd
