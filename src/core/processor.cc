#include "processor.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcd {

McdProcessor::McdProcessor(const SimConfig &config, const Program &program)
    : cfg(config), prog(program), oracle(prog)
{
    bool mcd = cfg.clocking == ClockingStyle::Mcd;

    if (mcd) {
        for (int d = 0; d < numDomains; ++d) {
            ownedClocks.push_back(std::make_unique<ClockDomain>(
                static_cast<Domain>(d), cfg.domainFrequency[d],
                cfg.seed * 7919 + d * 104729 + 13,
                cfg.jitterSigmaPs, true));
            clocks[d] = ownedClocks.back().get();
        }
    } else {
        ownedClocks.push_back(std::make_unique<ClockDomain>(
            Domain::FrontEnd, cfg.domainFrequency[0],
            cfg.seed * 7919 + 13, cfg.jitterSigmaPs, true));
        for (int d = 0; d < numDomains; ++d)
            clocks[d] = ownedClocks.front().get();
    }

    // Initial voltages follow the frequency/voltage map.
    for (int d = 0; d < numDomains; ++d)
        clocks[d]->setVoltage(opTable.voltageFor(clocks[d]->frequency()));

    SyncRule icMissRule = SyncRule::forMaxFrequency(
        mcd, opTable.maxFrequency(), cfg.syncFraction);
    memory = std::make_unique<MemoryHierarchy>(
        cfg.mem, *clocks[domainIndex(Domain::FrontEnd)],
        *clocks[domainIndex(Domain::LoadStore)], icMissRule);

    power = std::make_unique<PowerModel>(
        cfg.energy,
        std::array<const ClockDomain *, numDomains>{
            clocks[0], clocks[1], clocks[2], clocks[3]});

    collector.enable(cfg.collectTrace);
    if (cfg.collectTrace) {
        // Pre-size the event trace so profiling runs do not pay
        // repeated mid-run reallocations (the records are ~100 bytes
        // each and the kernels commit 100K+ instructions). With no
        // explicit cap, estimate the dynamic length from the static
        // program size; clamped so a pathological ratio cannot
        // balloon the reservation.
        std::size_t hint = cfg.maxInstructions;
        if (!hint) {
            hint = std::clamp<std::size_t>(prog.textSize() * 1024,
                                           std::size_t{1} << 16,
                                           std::size_t{1} << 22);
        }
        collector.reserve(hint);
    }

    pipe = std::make_unique<Pipeline>(
        cfg.core, oracle, *memory, clocks, cfg.syncFraction,
        power.get(), &collector);

    if (mcd) {
        DvfsParams dp = DvfsParams::forKind(cfg.dvfs, cfg.dvfsTimeScale);
        for (int d = 0; d < numDomains; ++d) {
            dvfs[d] = std::make_unique<DomainDvfs>(
                dp, opTable, *clocks[d],
                cfg.seed * 31337 + d * 271 + 7);
            if (cfg.recordFreqTrace)
                dvfs[d]->enableTrace();
        }
    }

    // Resolve the control plane: an explicit controller wins; a bare
    // schedule is wrapped in the behavior-preserving replay controller.
    if (cfg.controller) {
        mcdAssert(!cfg.schedule,
                  "SimConfig: set either controller or schedule, not both");
        controller = cfg.controller;
    } else if (cfg.schedule) {
        ownedController =
            std::make_unique<ScheduleController>(*cfg.schedule);
        controller = ownedController.get();
    }
}

/**
 * One controller step for domain @p d at edge time @p now: drain the
 * pipeline's occupancy window into an observation, then forward every
 * request the controller produced to the matching transition engine.
 */
void
McdProcessor::observeAndControl(Domain d, int di, Tick now)
{
    OccupancyWindow w = pipe->takeOccupancyWindow(d);
    DomainStats s;
    s.domain = d;
    s.windowCycles = w.cycles;
    s.occupancySum = w.occupancySum;
    s.queueLength = w.queueLength;
    s.queueCapacity = w.capacity;
    s.frequency = clocks[di]->frequency();
    controller->observe(s, now);

    if (!controller->requests().empty()) {
        for (const FreqRequest &q : controller->requests()) {
            if (DomainDvfs *engine = dvfs[domainIndex(q.domain)].get())
                engine->requestFrequency(now, q.frequency);
        }
        controller->clearRequests();
    }
    if (Tick period = controller->samplePeriod())
        nextObserve[di] = now + period;
}

RunResult
McdProcessor::run()
{
    bool mcd = cfg.clocking == ClockingStyle::Mcd;

    std::array<double, numDomains> freqTimeSum{};
    std::array<Tick, numDomains> prevEdge{};
    std::array<Tick, numDomains> firstEdge{};
    std::array<Hertz, numDomains> minFreq;
    std::array<Hertz, numDomains> maxFreq;
    for (int d = 0; d < numDomains; ++d) {
        prevEdge[d] = clocks[d]->now();
        firstEdge[d] = clocks[d]->now();
        minFreq[d] = maxFreq[d] = clocks[d]->frequency();
    }

    std::uint64_t lastProgress = 0;
    std::uint64_t edgesSinceProgress = 0;

    auto stop = [&]() {
        if (pipe->done())
            return true;
        return cfg.maxInstructions &&
            pipe->committed() >= cfg.maxInstructions;
    };

    auto tickOne = [&](Domain d, Tick t) {
        int di = domainIndex(d);
        bool blocked = false;
        if (mcd && dvfs[di]) {
            dvfs[di]->update(t);
            if (controller && t >= nextObserve[di])
                observeAndControl(d, di, t);
            blocked = dvfs[di]->executionBlocked(t);
        }
        if (!blocked)
            pipe->tickDomain(d, t);
        power->domainCycle(d, blocked);

        Hertz f = clocks[di]->frequency();
        freqTimeSum[di] += f * static_cast<double>(t - prevEdge[di]);
        prevEdge[di] = t;
        minFreq[di] = std::min(minFreq[di], f);
        maxFreq[di] = std::max(maxFreq[di], f);
    };

    // Cached next-edge times for the MCD event loop. One iteration
    // only ever moves the clock it advances (DVFS updates and the
    // schedule touch just the ticked domain), so instead of chasing
    // all four ClockDomain pointers every iteration we mirror the
    // pending-edge times in a local array and re-reduce over that.
    std::array<Tick, numDomains> nextEdgeCache{};
    int minClock = 0;
    if (mcd) {
        for (int d = 0; d < numDomains; ++d)
            nextEdgeCache[d] = ownedClocks[d]->peekNextEdge();
        for (int d = 1; d < numDomains; ++d) {
            if (nextEdgeCache[d] < nextEdgeCache[minClock])
                minClock = d;
        }
    }

    while (!stop()) {
        if (mcd) {
            // Advance the clock with the earliest pending edge.
            ClockDomain *next = ownedClocks[minClock].get();
            Tick t = next->advance();
            tickOne(next->id(), t);
            nextEdgeCache[minClock] = next->peekNextEdge();
            minClock = 0;
            for (int d = 1; d < numDomains; ++d) {
                if (nextEdgeCache[d] < nextEdgeCache[minClock])
                    minClock = d;
            }
        } else {
            Tick t = ownedClocks[0]->advance();
            // One global clock: all four logical domains tick in
            // pipeline order at every edge.
            for (int d = 0; d < numDomains; ++d)
                tickOne(static_cast<Domain>(d), t);
        }

        // Watchdog against model deadlocks.
        if (pipe->committed() == lastProgress) {
            if (++edgesSinceProgress > 40'000'000)
                panic("McdProcessor: no commit progress (deadlock?)");
        } else {
            lastProgress = pipe->committed();
            edgesSinceProgress = 0;
        }
    }

    // Assemble the result.
    RunResult r;
    r.benchmark = prog.name();
    r.committed = pipe->committed();
    r.execTime = pipe->lastCommitTime();
    std::uint64_t feCycles =
        clocks[domainIndex(Domain::FrontEnd)]->cycles();
    r.ipc = feCycles
        ? static_cast<double>(r.committed) / static_cast<double>(feCycles)
        : 0.0;
    r.totalEnergy = power->totalEnergy();
    r.energyDelay = r.totalEnergy * toSeconds(r.execTime);
    r.pipeline = pipe->stats();
    r.l1i = memory->l1i().stats();
    r.l1d = memory->l1d().stats();
    r.l2 = memory->l2().stats();
    r.bpredLookups = pipe->bpred().stats().lookups;
    r.bpredMispredictRate = pipe->bpred().stats().mispredictRate();

    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        s.cycles = clocks[d]->cycles();
        if (!mcd)
            s.cycles = ownedClocks[0]->cycles();
        s.energy = power->domainEnergy(static_cast<Domain>(d));
        Tick span = prevEdge[d] - firstEdge[d];
        s.avgFrequency = span
            ? freqTimeSum[d] / static_cast<double>(span)
            : clocks[d]->frequency();
        s.minFrequency = minFreq[d];
        s.maxFrequency = maxFreq[d];
        if (mcd && dvfs[d]) {
            s.reconfigurations = dvfs[d]->reconfigurations();
            if (cfg.recordFreqTrace)
                r.freqTraces[d] = dvfs[d]->trace();
        }
    }
    return r;
}

} // namespace mcd
