#include "processor.hh"

#include <algorithm>
#include <cctype>
#include <string>

#include "common/log.hh"
#include "fault/fault_plan.hh"

namespace mcd {

McdProcessor::McdProcessor(const SimConfig &config, const Program &program)
    : cfg(config), prog(program), oracle(prog)
{
    cfg.validate();

    bool mcd = cfg.clocking == ClockingStyle::Mcd;

    if (mcd) {
        for (int d = 0; d < numDomains; ++d) {
            ownedClocks.push_back(std::make_unique<ClockDomain>(
                static_cast<Domain>(d), cfg.domainFrequency[d],
                cfg.seed * 7919 + d * 104729 + 13,
                cfg.jitterSigmaPs, true));
            clocks[d] = ownedClocks.back().get();
        }
    } else {
        ownedClocks.push_back(std::make_unique<ClockDomain>(
            Domain::FrontEnd, cfg.domainFrequency[0],
            cfg.seed * 7919 + 13, cfg.jitterSigmaPs, true));
        for (int d = 0; d < numDomains; ++d)
            clocks[d] = ownedClocks.front().get();
    }

    // Initial voltages follow the frequency/voltage map.
    for (int d = 0; d < numDomains; ++d)
        clocks[d]->setVoltage(opTable.voltageFor(clocks[d]->frequency()));

    SyncRule icMissRule = SyncRule::forMaxFrequency(
        mcd, opTable.maxFrequency(), cfg.syncFraction);
    memory = std::make_unique<MemoryHierarchy>(
        cfg.mem, *clocks[domainIndex(Domain::FrontEnd)],
        *clocks[domainIndex(Domain::LoadStore)], icMissRule);

    power = std::make_unique<PowerModel>(
        cfg.energy,
        std::array<const ClockDomain *, numDomains>{
            clocks[0], clocks[1], clocks[2], clocks[3]});

    collector.enable(cfg.collectTrace);
    if (cfg.collectTrace) {
        // Pre-size the event trace so profiling runs do not pay
        // repeated mid-run reallocations (the records are ~100 bytes
        // each and the kernels commit 100K+ instructions). With no
        // explicit cap, estimate the dynamic length from the static
        // program size; clamped so a pathological ratio cannot
        // balloon the reservation.
        std::size_t hint = cfg.maxInstructions;
        if (!hint) {
            hint = std::clamp<std::size_t>(prog.textSize() * 1024,
                                           std::size_t{1} << 16,
                                           std::size_t{1} << 22);
        }
        collector.reserve(hint);
    }

    pipe = std::make_unique<Pipeline>(
        cfg.core, oracle, *memory, clocks, cfg.syncFraction,
        power.get(), &collector);

    // Telemetry context: the Figure 8 trace now reads the sampler's
    // frequency series, so recordFreqTrace forces that channel on even
    // when the caller's TelemetryConfig is all-off.
    obs::TelemetryConfig tc = cfg.telemetry;
    tc.freqSeries = tc.freqSeries || cfg.recordFreqTrace;
    if (tc.enabled())
        telem = std::make_shared<obs::Telemetry>(tc);

    if (mcd) {
        DvfsParams dp = DvfsParams::forKind(cfg.dvfs, cfg.dvfsTimeScale);
        for (int d = 0; d < numDomains; ++d) {
            dvfs[d] = std::make_unique<DomainDvfs>(
                dp, opTable, *clocks[d],
                cfg.seed * 31337 + d * 271 + 7);
            if (telem)
                dvfs[d]->attachTelemetry(telem.get());
        }
    }

    // Resolve the control plane: an explicit controller wins; a bare
    // schedule is wrapped in the behavior-preserving replay controller.
    if (cfg.controller) {
        mcdAssert(!cfg.schedule,
                  "SimConfig: set either controller or schedule, not both");
        controller = cfg.controller;
    } else if (cfg.schedule) {
        ownedController =
            std::make_unique<ScheduleController>(*cfg.schedule);
        controller = ownedController.get();
    }
}

/**
 * One controller step for domain @p d at edge time @p now: drain the
 * pipeline's occupancy window into an observation, then forward every
 * request the controller produced to the matching transition engine.
 */
void
McdProcessor::observeAndControl(Domain d, int di, Tick now)
{
    OccupancyWindow w = pipe->takeOccupancyWindow(d);
    DomainStats s;
    s.domain = d;
    s.windowCycles = w.cycles;
    s.occupancySum = w.occupancySum;
    s.queueLength = w.queueLength;
    s.queueCapacity = w.capacity;
    s.frequency = clocks[di]->frequency();
    controller->observe(s, now);

    if (!controller->requests().empty()) {
        for (const FreqRequest &q : controller->requests()) {
            if (telem) {
                telem->onControllerDecision(controller->name(), q.domain,
                                            now, q.frequency);
            }
            if (DomainDvfs *engine = dvfs[domainIndex(q.domain)].get())
                engine->requestFrequency(now, q.frequency);
        }
        controller->clearRequests();
    }
    if (Tick period = controller->samplePeriod())
        nextObserve[di] = now + period;
}

/** Snapshot all domains for the periodic telemetry sampler. */
void
McdProcessor::captureSample(Tick now)
{
    obs::TimeSample s;
    s.when = now;
    for (int d = 0; d < numDomains; ++d) {
        Domain dom = static_cast<Domain>(d);
        s.frequency[d] = clocks[d]->frequency();
        s.voltage[d] = clocks[d]->voltage();
        int cap = pipe->queueCapacity(dom);
        s.occupancy[d] = cap > 0
            ? static_cast<double>(pipe->queueLength(dom)) /
                  static_cast<double>(cap)
            : 0.0;
        s.energy[d] = power->domainEnergy(dom);
    }
    telem->onSample(s);
}

RunResult
McdProcessor::run()
{
    bool mcd = cfg.clocking == ClockingStyle::Mcd;

    std::array<double, numDomains> freqTimeSum{};
    std::array<Tick, numDomains> prevEdge{};
    std::array<Tick, numDomains> firstEdge{};
    std::array<Hertz, numDomains> minFreq;
    std::array<Hertz, numDomains> maxFreq;
    for (int d = 0; d < numDomains; ++d) {
        prevEdge[d] = clocks[d]->now();
        firstEdge[d] = clocks[d]->now();
        minFreq[d] = maxFreq[d] = clocks[d]->frequency();
    }

    std::uint64_t lastProgress = 0;
    std::uint64_t edgesSinceProgress = 0;

    // An armed Stall fault suppresses the progress signal, so the run
    // looks deadlocked to the watchdog and must be cut cleanly.
    const bool stallInjected =
        cfg.faults && cfg.faults->stallsLeg(cfg.faultSite);

    auto watchdogTrip = [&](const std::string &why, Tick at) {
        if (telem)
            telem->onWatchdogTrip(at);
        throw WatchdogError(
            "McdProcessor watchdog: " + why + " at t=" +
            std::to_string(at) + " ps after " +
            std::to_string(pipe->committed()) + " commits" +
            (stallInjected ? " [injected stall]" : ""));
    };

    auto stop = [&]() {
        if (pipe->done())
            return true;
        return cfg.maxInstructions &&
            pipe->committed() >= cfg.maxInstructions;
    };

    auto tickOne = [&](Domain d, Tick t) {
        int di = domainIndex(d);
        bool blocked = false;
        if (mcd && dvfs[di]) {
            dvfs[di]->update(t);
            if (controller && t >= nextObserve[di])
                observeAndControl(d, di, t);
            blocked = dvfs[di]->executionBlocked(t);
        }
        if (!blocked)
            pipe->tickDomain(d, t);
        power->domainCycle(d, blocked);

        Hertz f = clocks[di]->frequency();
        freqTimeSum[di] += f * static_cast<double>(t - prevEdge[di]);
        prevEdge[di] = t;
        minFreq[di] = std::min(minFreq[di], f);
        maxFreq[di] = std::max(maxFreq[di], f);
    };

    // Cached next-edge times for the MCD event loop. One iteration
    // only ever moves the clock it advances (DVFS updates and the
    // schedule touch just the ticked domain), so instead of chasing
    // all four ClockDomain pointers every iteration we mirror the
    // pending-edge times in a local array and re-reduce over that.
    std::array<Tick, numDomains> nextEdgeCache{};
    int minClock = 0;
    if (mcd) {
        for (int d = 0; d < numDomains; ++d)
            nextEdgeCache[d] = ownedClocks[d]->peekNextEdge();
        for (int d = 1; d < numDomains; ++d) {
            if (nextEdgeCache[d] < nextEdgeCache[minClock])
                minClock = d;
        }
    }

    // Periodic telemetry sampling piggybacks on the event loop: the
    // due time is mirrored in a local so the hot path pays one compare
    // per edge (`never` keeps the branch dead when sampling is off).
    Tick nextSample = telem
        ? telem->sampler().nextDue() : obs::TimeSeriesSampler::never;

    while (!stop()) {
        Tick t;
        if (mcd) {
            // Advance the clock with the earliest pending edge.
            ClockDomain *next = ownedClocks[minClock].get();
            t = next->advance();
            tickOne(next->id(), t);
            nextEdgeCache[minClock] = next->peekNextEdge();
            minClock = 0;
            for (int d = 1; d < numDomains; ++d) {
                if (nextEdgeCache[d] < nextEdgeCache[minClock])
                    minClock = d;
            }
        } else {
            t = ownedClocks[0]->advance();
            // One global clock: all four logical domains tick in
            // pipeline order at every edge.
            for (int d = 0; d < numDomains; ++d)
                tickOne(static_cast<Domain>(d), t);
        }

        if (t >= nextSample) {
            captureSample(t);
            nextSample = telem->sampler().nextDue();
        }

        // Watchdog against model deadlocks and runaway runs: both the
        // no-progress edge budget and the absolute tick budget turn a
        // hang into a structured, catchable error.
        if (cfg.watchdogMaxTicks && t > cfg.watchdogMaxTicks)
            watchdogTrip("simulated-time budget exhausted", t);
        if (stallInjected || pipe->committed() == lastProgress) {
            if (cfg.watchdogNoProgressEdges &&
                ++edgesSinceProgress > cfg.watchdogNoProgressEdges) {
                watchdogTrip("no commit progress for " +
                             std::to_string(edgesSinceProgress) +
                             " edges (deadlock?)", t);
            }
        } else {
            lastProgress = pipe->committed();
            edgesSinceProgress = 0;
        }
    }

    // Assemble the result.
    RunResult r;
    r.benchmark = prog.name();
    r.committed = pipe->committed();
    r.execTime = pipe->lastCommitTime();
    std::uint64_t feCycles =
        clocks[domainIndex(Domain::FrontEnd)]->cycles();
    r.ipc = feCycles
        ? static_cast<double>(r.committed) / static_cast<double>(feCycles)
        : 0.0;
    r.totalEnergy = power->totalEnergy();
    r.energyDelay = r.totalEnergy * toSeconds(r.execTime);
    r.pipeline = pipe->stats();
    r.l1i = memory->l1i().stats();
    r.l1d = memory->l1d().stats();
    r.l2 = memory->l2().stats();
    r.bpredLookups = pipe->bpred().stats().lookups;
    r.bpredMispredictRate = pipe->bpred().stats().mispredictRate();

    for (int d = 0; d < numDomains; ++d) {
        DomainSummary &s = r.domains[d];
        s.cycles = clocks[d]->cycles();
        if (!mcd)
            s.cycles = ownedClocks[0]->cycles();
        s.energy = power->domainEnergy(static_cast<Domain>(d));
        Tick span = prevEdge[d] - firstEdge[d];
        s.avgFrequency = span
            ? freqTimeSum[d] / static_cast<double>(span)
            : clocks[d]->frequency();
        s.minFrequency = minFreq[d];
        s.maxFrequency = maxFreq[d];
        if (mcd && dvfs[d]) {
            s.reconfigurations = dvfs[d]->reconfigurations();
            if (cfg.recordFreqTrace) {
                r.freqTraces[d] = telem->sampler()
                    .frequencyTrace(static_cast<Domain>(d));
            }
        }
    }

    if (telem) {
        publishSummaryStats(r);
        r.telemetry = telem;
    }
    return r;
}

/**
 * Fold the run's end-of-run summary into the stats registry so the
 * stats JSON stands alone: per-domain cycle/energy/frequency summaries
 * plus the pipeline and control-plane aggregates, alongside the
 * event-driven counters the hooks accumulated during the run.
 */
void
McdProcessor::publishSummaryStats(const RunResult &r)
{
    obs::StatsRegistry &reg = telem->stats();

    reg.counter("run.committed", "committed instructions")
        .inc(r.committed);
    reg.gauge("run.exec_time_ps", "time of the last commit")
        .set(static_cast<double>(r.execTime));
    reg.gauge("run.ipc", "committed per front-end cycle").set(r.ipc);
    reg.gauge("run.energy_j", "total energy").set(r.totalEnergy);

    for (int d = 0; d < numDomains; ++d) {
        std::string p = "domain.";
        for (const char *c = domainShortName(static_cast<Domain>(d));
             *c; ++c) {
            p += static_cast<char>(
                std::tolower(static_cast<unsigned char>(*c)));
        }
        p += '.';
        const DomainSummary &s = r.domains[d];
        reg.counter(p + "cycles", "domain clock edges").inc(s.cycles);
        reg.gauge(p + "energy_j", "domain energy").set(s.energy);
        reg.gauge(p + "avg_mhz", "time-weighted mean frequency")
            .set(s.avgFrequency / 1e6);
        reg.gauge(p + "min_mhz", "lowest frequency seen")
            .set(s.minFrequency / 1e6);
        reg.gauge(p + "max_mhz", "highest frequency seen")
            .set(s.maxFrequency / 1e6);
        reg.counter(p + "reconfigurations",
                    "target changes accepted by the DVFS engine")
            .inc(s.reconfigurations);
    }

    const PipelineStats &ps = r.pipeline;
    reg.counter("pipeline.fetched", "instructions fetched")
        .inc(ps.fetched);
    reg.counter("pipeline.mispredicts", "branch mispredictions")
        .inc(ps.mispredicts);
    reg.counter("pipeline.sync.commit_stalls",
                "commit blocked on a cross-domain completion signal")
        .inc(ps.syncCommitStalls);
    reg.counter("pipeline.sync.dispatch_waits",
                "queue entries not yet visible across a boundary")
        .inc(ps.syncDispatchWaits);
    reg.counter("pipeline.sync.addr_waits",
                "LSQ waits on an address from the integer domain")
        .inc(ps.syncAddrWaits);

    if (controller) {
        std::string p = "control.";
        p += controller->name();
        reg.counter(p + ".requests_issued",
                    "frequency requests emitted by the policy")
            .inc(controller->requestsIssued());
    }
}

} // namespace mcd
