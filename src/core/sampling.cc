#include "sampling.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "power/power_model.hh"

namespace mcd {

SamplingParams
SamplingParams::fromSpec(const std::string &spec)
{
    SamplingParams p;
    bool sawDetailed = false;
    bool sawFf = false;
    std::string item;
    auto consume = [&](const std::string &kv) {
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size())
            fatal("MCD_SAMPLING: expected key=value, got '" + kv + "'");
        std::string key = kv.substr(0, eq);
        std::string val = kv.substr(eq + 1);
        char *end = nullptr;
        if (key == "tol") {
            p.tolerance = std::strtod(val.c_str(), &end);
            if (!end || *end)
                fatal("MCD_SAMPLING: bad value for tol: '" + val + "'");
            return;
        }
        std::uint64_t n = std::strtoull(val.c_str(), &end, 10);
        if (!end || *end)
            fatal("MCD_SAMPLING: bad value for " + key + ": '" + val +
                  "'");
        if (key == "detailed") {
            p.detailedInsts = n;
            sawDetailed = true;
        } else if (key == "ff") {
            p.ffInsts = n;
            sawFf = true;
        } else if (key == "warmup") {
            p.warmupInsts = n;
        } else {
            fatal("MCD_SAMPLING: unknown key '" + key +
                  "' (expected detailed/ff/warmup/tol)");
        }
    };
    for (const char *c = spec.c_str();; ++c) {
        if (*c && *c != ',') {
            item += *c;
            continue;
        }
        if (!item.empty()) {
            consume(item);
            item.clear();
        }
        if (!*c)
            break;
    }
    if (!sawDetailed || !sawFf)
        fatal("MCD_SAMPLING: spec must set at least detailed= and ff= "
              "(got '" + spec + "')");
    p.validate();
    return p;
}

std::string
SamplingParams::spec() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "detailed=%llu,ff=%llu,warmup=%llu,tol=%g",
                  static_cast<unsigned long long>(detailedInsts),
                  static_cast<unsigned long long>(ffInsts),
                  static_cast<unsigned long long>(warmupInsts),
                  tolerance);
    return buf;
}

std::string
SamplingParams::keyToken() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "d%lluf%lluw%llu",
                  static_cast<unsigned long long>(detailedInsts),
                  static_cast<unsigned long long>(ffInsts),
                  static_cast<unsigned long long>(warmupInsts));
    return buf;
}

void
SamplingParams::validate() const
{
    if (detailedInsts == 0)
        fatal("SamplingParams: detailedInsts must be > 0");
    if (ffInsts == 0)
        fatal("SamplingParams: ffInsts must be > 0 (omit sampling for "
              "a full-detail run)");
    if (warmupInsts >= detailedInsts)
        fatal("SamplingParams: warmupInsts must be < detailedInsts "
              "(the window needs a measured tail)");
    if (!std::isfinite(tolerance) || tolerance <= 0.0 || tolerance > 1.0)
        fatal("SamplingParams: tolerance must lie in (0, 1]");
}

SamplingPolicy::SamplingPolicy(const SamplingParams &params,
                               const PowerModel *power_)
    : p(params), power(power_), st(State::Warmup)
{
    p.validate();
}

std::array<double, numDomains>
SamplingPolicy::domainEnergies() const
{
    std::array<double, numDomains> e{};
    if (power) {
        for (int d = 0; d < numDomains; ++d)
            e[d] = power->domainEnergy(static_cast<Domain>(d));
    }
    return e;
}

bool
SamplingPolicy::onFrontEndTick(std::uint64_t committed, Tick now,
                               bool windowEmpty, bool haltSeen)
{
    switch (st) {
      case State::Warmup:
        // With warmupInsts == 0 this latches the measurement base at
        // the window's first front-end edge.
        if (committed - windowStartCommits < p.warmupInsts)
            return false;
        measureStartCommits = committed;
        measureStartTime = now;
        measureStartEnergy = domainEnergies();
        st = State::Measure;
        [[fallthrough]];
      case State::Measure:
        if (committed - windowStartCommits < p.detailedInsts)
            return false;
        {
            SampleWindow w;
            w.insts = committed - measureStartCommits;
            w.timePs = now - measureStartTime;
            std::array<double, numDomains> e = domainEnergies();
            for (int d = 0; d < numDomains; ++d)
                w.energy[d] = e[d] - measureStartEnergy[d];
            windows.push_back(w);
        }
        st = State::Drain;
        [[fallthrough]];
      case State::Drain:
        if (!windowEmpty)
            return false;
        if (haltSeen) {
            // HALT is already in flight: no oracle left to fast-forward.
            st = State::Done;
            return false;
        }
        return true;    // drained: the caller fast-forwards now
      case State::Done:
        return false;
    }
    return false;
}

std::uint64_t
SamplingPolicy::ffBudget(std::uint64_t commit_cap,
                         std::uint64_t committed) const
{
    std::uint64_t n = p.ffInsts;
    if (commit_cap) {
        std::uint64_t total = committed + ffTotal;
        if (total >= commit_cap)
            return 0;
        n = std::min(n, commit_cap - total);
    }
    return n;
}

void
SamplingPolicy::onFastForwardDone(std::uint64_t executed, bool halted,
                                  std::uint64_t committed)
{
    ffSegments.push_back(executed);
    ffTotal += executed;
    if (halted) {
        ffHalted = true;
        st = State::Done;
        return;
    }
    // Open the next detailed window at the current commit count (the
    // finished window may have overshot detailedInsts by up to the
    // retire width; measuring from the actual count keeps windows
    // honest).
    st = State::Warmup;
    windowStartCommits = committed;
}

SamplingSummary
SamplingPolicy::summary(std::uint64_t committed) const
{
    SamplingSummary s;
    s.windows = windows.size();
    s.detailedCommitted = committed;
    s.ffExecuted = ffTotal;
    s.haltDuringFf = ffHalted;

    if (windows.empty())
        return s;

    // Per-window rates, for extrapolation fallback and confidence.
    double sumT = 0.0;
    double sumT2 = 0.0;
    double sumE = 0.0;
    double sumE2 = 0.0;
    for (const SampleWindow &w : windows) {
        double insts = static_cast<double>(w.insts ? w.insts : 1);
        double tpi = static_cast<double>(w.timePs) / insts;
        double total = 0.0;
        for (int d = 0; d < numDomains; ++d)
            total += w.energy[d];
        double epi = total / insts;
        sumT += tpi;
        sumT2 += tpi * tpi;
        sumE += epi;
        sumE2 += epi * epi;
    }
    double n = static_cast<double>(windows.size());
    double meanT = sumT / n;
    double meanE = sumE / n;
    if (windows.size() > 1) {
        double varT = std::max(0.0, sumT2 / n - meanT * meanT);
        double varE = std::max(0.0, sumE2 / n - meanE * meanE);
        if (meanT > 0.0)
            s.timePerInstCv = std::sqrt(varT) / meanT;
        if (meanE > 0.0)
            s.energyPerInstCv = std::sqrt(varE) / meanE;
    }

    // Each fast-forward segment lies between two detailed windows
    // (segment i follows windows[i] by construction of the state
    // machine and precedes windows[i + 1] when one completed), so its
    // cost extrapolates from the mean of the two adjacent windows'
    // per-instruction rates — a trapezoid rule that tracks phase
    // ramps far better than the preceding window alone. The final
    // segment, and any segment past the last completed window, falls
    // back to the last window's rate.
    double ffTime = 0.0;
    for (std::size_t i = 0; i < ffSegments.size(); ++i) {
        const SampleWindow &a = windows[std::min(i, windows.size() - 1)];
        const SampleWindow &b =
            windows[std::min(i + 1, windows.size() - 1)];
        double len = static_cast<double>(ffSegments[i]);
        double aInsts = static_cast<double>(a.insts ? a.insts : 1);
        double bInsts = static_cast<double>(b.insts ? b.insts : 1);
        ffTime += len * 0.5 *
            (static_cast<double>(a.timePs) / aInsts +
             static_cast<double>(b.timePs) / bInsts);
        for (int d = 0; d < numDomains; ++d) {
            double de = len * 0.5 *
                (a.energy[d] / aInsts + b.energy[d] / bInsts);
            s.estFfEnergyDomain[d] += de;
            s.estFfEnergy += de;
        }
    }
    s.estFfTimePs = static_cast<Tick>(ffTime);
    return s;
}

} // namespace mcd
