/**
 * @file
 * Small statistics helpers: running averages, min/max tracking, and
 * table/percentage formatting used by the benches and reports.
 */

#ifndef MCD_COMMON_STATS_HH
#define MCD_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mcd {

/**
 * Accumulates a scalar series: count, sum, mean, min, max.
 *
 * An empty series has no extrema: min()/max() return NaN so emptiness
 * is signaled rather than silently reading as 0.0 (which is a valid
 * observed value). Callers that want a printable placeholder should
 * branch on empty().
 */
class RunningStat
{
  public:
    void
    add(double v)
    {
        n += 1;
        total += v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    std::uint64_t count() const { return n; }
    bool empty() const { return n == 0; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const
    { return n ? lo : std::numeric_limits<double>::quiet_NaN(); }
    double max() const
    { return n ? hi : std::numeric_limits<double>::quiet_NaN(); }

    /** Fold another accumulator in (combining per-thread shards). */
    void
    merge(const RunningStat &other)
    {
        n += other.n;
        total += other.total;
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }

    void
    reset()
    {
        n = 0;
        total = 0.0;
        lo = std::numeric_limits<double>::infinity();
        hi = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Format a fraction as a signed percentage string, e.g. "-12.3%". */
std::string formatPercent(double fraction, int decimals = 1);

/** Format a frequency in MHz, e.g. "920 MHz". */
std::string formatMHz(double hertz);

/** Format simulated picoseconds as a human-readable duration. */
std::string formatTime(std::uint64_t ticks);

/** Format a floating value with fixed decimals. */
std::string formatFixed(double v, int decimals);

/**
 * Fixed-width text table builder used by the figure benches to print
 * paper-style rows.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a separator line. */
    void separator();

    /** Render the table with aligned columns. */
    std::string render() const;

  private:
    struct Line
    {
        bool isSeparator = false;
        std::vector<std::string> cells;
    };

    std::vector<Line> lines;
};

} // namespace mcd

#endif // MCD_COMMON_STATS_HH
