#include "thread_pool.hh"

#include <cstdlib>

namespace mcd {

ThreadPool::ThreadPool(unsigned workers)
    : numWorkers(workers)
{
    threads.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

bool
ThreadPool::runPendingTask()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lk(mutex);
        if (queue.empty())
            return false;
        task = std::move(queue.front());
        queue.pop_front();
    }
    task();
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mutex);
            cv.wait(lk, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;     // stopping, queue drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

unsigned
ThreadPool::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
ThreadPool::jobsFromEnv(const char *var)
{
    if (const char *s = std::getenv(var)) {
        int n = std::atoi(s);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return hardwareJobs();
}

} // namespace mcd
