#include "thread_pool.hh"

#include <cstdlib>

#include "log.hh"

namespace mcd {

/**
 * Run one dequeued task. submit() wraps every callable in a
 * packaged_task, so a throwing task delivers its exception to the
 * waiter through the future and nothing should ever escape here — but
 * if something does (a future-proofing guard: packaged_task invocation
 * itself can throw future_error on misuse), an escape would
 * std::terminate the worker thread and deadlock every pending wait().
 * Swallow-and-warn is the only safe disposition at this boundary.
 */
void
ThreadPool::execTask(std::function<void()> &task)
{
    auto t0 = std::chrono::steady_clock::now();
    try {
        task();
    } catch (const std::exception &e) {
        warn(std::string("thread pool: task escaped its "
                         "packaged_task wrapper: ") + e.what());
    } catch (...) {
        warn("thread pool: task escaped its packaged_task wrapper "
             "with a non-std exception");
    }
    noteTask(t0);
}

ThreadPool::ThreadPool(unsigned workers)
    : numWorkers(workers)
{
    threads.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

bool
ThreadPool::runPendingTask()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lk(mutex);
        if (queue.empty())
            return false;
        task = std::move(queue.front());
        queue.pop_front();
    }
    execTask(task);
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mutex);
            cv.wait(lk, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;     // stopping, queue drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        execTask(task);
    }
}

unsigned
ThreadPool::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

} // namespace mcd
