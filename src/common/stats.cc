#include "stats.hh"

#include <cstdio>

namespace mcd {

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
formatMHz(double hertz)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f MHz", hertz / 1e6);
    return buf;
}

std::string
formatTime(std::uint64_t ticks)
{
    char buf[64];
    double ps = static_cast<double>(ticks);
    if (ps < 1e3)
        std::snprintf(buf, sizeof(buf), "%.0f ps", ps);
    else if (ps < 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f ns", ps / 1e3);
    else if (ps < 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f us", ps / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f ms", ps / 1e9);
    return buf;
}

std::string
formatFixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

void
TextTable::header(std::vector<std::string> cells)
{
    lines.push_back({false, std::move(cells)});
    separator();
}

void
TextTable::row(std::vector<std::string> cells)
{
    lines.push_back({false, std::move(cells)});
}

void
TextTable::separator()
{
    lines.push_back({true, {}});
}

std::string
TextTable::render() const
{
    // Compute column widths.
    std::vector<std::size_t> widths;
    for (const auto &line : lines) {
        if (line.isSeparator)
            continue;
        if (widths.size() < line.cells.size())
            widths.resize(line.cells.size(), 0);
        for (std::size_t i = 0; i < line.cells.size(); ++i)
            widths[i] = std::max(widths[i], line.cells[i].size());
    }

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 3;

    std::string out;
    for (const auto &line : lines) {
        if (line.isSeparator) {
            out.append(total, '-');
            out.push_back('\n');
            continue;
        }
        for (std::size_t i = 0; i < line.cells.size(); ++i) {
            const std::string &c = line.cells[i];
            out.append(c);
            if (i + 1 < line.cells.size()) {
                out.append(widths[i] - c.size() + 3, ' ');
            }
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace mcd
