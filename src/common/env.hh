/**
 * @file
 * Shared string -> value parsers for configuration surfaces.
 *
 * These are *pure* parsers: they never touch the process environment.
 * The only environment reads in the tree live in src/config/
 * (enforced by a CI grep), so every consumer — env var, config file,
 * CLI flag, fuzz spec — funnels through the same strict parsing
 * rules.
 *
 * The boolean rule (DESIGN.md §15): values are checked, not presence.
 * "", "0", "false", "no", "off" are false; "1", "true", "yes", "on"
 * are true; anything else is fatal. MCD_X=0 therefore always means
 * *disabled*, never "enabled because the variable exists".
 */

#ifndef MCD_COMMON_ENV_HH
#define MCD_COMMON_ENV_HH

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/log.hh"

namespace mcd {
namespace envutil {

/** Value-checked boolean (see file comment). @p what names the
 *  setting in the fatal message. */
inline bool
parseBool(const std::string &what, std::string_view v)
{
    if (v.empty() || v == "0" || v == "false" || v == "no" ||
        v == "off") {
        return false;
    }
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    fatal(what + ": boolean value must be one of 0/1/true/false/"
          "yes/no/on/off (got '" + std::string(v) + "')");
}

/** Whole-string signed integer; fatal on anything else. */
inline long long
parseInt(const std::string &what, std::string_view v)
{
    long long out = 0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || ptr != v.data() + v.size() || v.empty())
        fatal(what + ": expected an integer (got '" + std::string(v) +
              "')");
    return out;
}

/** Whole-string unsigned 64-bit integer; fatal on anything else. */
inline std::uint64_t
parseU64(const std::string &what, std::string_view v)
{
    std::uint64_t out = 0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || ptr != v.data() + v.size() || v.empty())
        fatal(what + ": expected an unsigned integer (got '" +
              std::string(v) + "')");
    return out;
}

/** Whole-string finite double; fatal on anything else. */
inline double
parseDouble(const std::string &what, std::string_view v)
{
    std::string s(v);
    try {
        std::size_t used = 0;
        double d = std::stod(s, &used);
        if (used != s.size() || !std::isfinite(d))
            throw std::invalid_argument(s);
        return d;
    } catch (const std::exception &) {
        fatal(what + ": expected a finite number (got '" + s + "')");
    }
}

} // namespace envutil
} // namespace mcd

#endif // MCD_COMMON_ENV_HH
