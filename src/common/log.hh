/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for internal
 * invariant violations (simulator bugs), fatal() for user-visible
 * configuration errors, warn()/inform() for status messages.
 */

#ifndef MCD_COMMON_LOG_HH
#define MCD_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mcd {

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic(): an internal invariant was violated (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Report an unrecoverable user/configuration error. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal simulator bug. */
[[noreturn]] void panic(const std::string &msg);

/** Report a suspicious but survivable condition. */
void warn(const std::string &msg);

/** Report a purely informational message. */
void inform(const std::string &msg);

/** Suppress or enable warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

/** Panic unless the given condition holds. */
inline void
mcdAssert(bool cond, const char *what)
{
    if (!cond)
        panic(std::string("assertion failed: ") + what);
}

} // namespace mcd

#endif // MCD_COMMON_LOG_HH
