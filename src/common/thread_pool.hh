/**
 * @file
 * A small work-queue thread pool for the parallel experiment engine.
 *
 * Design notes:
 *
 *  - submit() returns a std::future; exceptions thrown by the task
 *    are captured and rethrown from future::get().
 *  - wait() is a *helping* wait: while the future is not ready the
 *    calling thread drains pending tasks from the queue. This makes
 *    nested submission safe — a task running on a pool worker may
 *    submit sub-tasks to the same pool and wait() on them without
 *    ever deadlocking, even with a single worker.
 *  - A pool constructed with zero workers degenerates to inline
 *    execution at submit() time, which makes jobs=1 runs take exactly
 *    the serial code path (useful for bit-identical comparisons).
 */

#ifndef MCD_COMMON_THREAD_POOL_HH
#define MCD_COMMON_THREAD_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcd {

class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 = run tasks inline. */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workerCount() const { return numWorkers; }

    /** Enqueue a callable; its result (or exception) goes to the future. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        if (numWorkers == 0) {
            auto t0 = std::chrono::steady_clock::now();
            (*task)();
            noteTask(t0);
            return fut;
        }
        {
            std::lock_guard<std::mutex> lk(mutex);
            queue.emplace_back([task] { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    /**
     * Run one queued task on the calling thread, if any is pending.
     * @return true if a task was executed.
     */
    bool runPendingTask();

    /**
     * Helping wait: drain pool work until @p fut is ready, then get it.
     * Safe to call from inside a pool task (nested waits).
     */
    template <typename T>
    T
    wait(std::future<T> &fut)
    {
        helpUntilReady(fut);
        return fut.get();
    }

    /** wait() over a whole batch, in order. */
    template <typename T>
    std::vector<T>
    waitAll(std::vector<std::future<T>> &futs)
    {
        std::vector<T> out;
        out.reserve(futs.size());
        for (auto &f : futs)
            out.push_back(wait(f));
        return out;
    }

    /**
     * Run body(i) for i in [0, n) across the pool (the caller helps).
     * Rethrows the lowest-index exception after all iterations finish.
     */
    template <typename F>
    void
    parallelFor(std::size_t n, F &&body)
    {
        std::vector<std::future<void>> futs;
        futs.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            futs.push_back(submit([&body, i] { body(i); }));
        std::exception_ptr first;
        for (auto &f : futs) {
            try {
                wait(f);
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
    }

    /**
     * Utilization gauges for the host profiler: tasks executed and
     * time spent inside them, summed over every executing thread
     * (workers, helpers, and the inline jobs=1 path alike).
     */
    std::uint64_t
    tasksExecuted() const
    {
        return nExecuted.load(std::memory_order_relaxed);
    }
    std::uint64_t
    busyNanos() const
    {
        return busyNs.load(std::memory_order_relaxed);
    }

    /**
     * Hardware concurrency, never less than 1. Callers wanting the
     * MCD_JOBS / --jobs knob go through config::RunSpec::jobs(), which
     * maps the option's 0 default here.
     */
    static unsigned hardwareJobs();

  private:
    template <typename T>
    void
    helpUntilReady(std::future<T> &fut)
    {
        using namespace std::chrono_literals;
        while (fut.wait_for(0s) != std::future_status::ready) {
            // The short timed wait (rather than an unbounded one)
            // covers the race where our dependency enqueues new work
            // after we found the queue empty.
            if (!runPendingTask())
                fut.wait_for(1ms);
        }
    }

    void workerLoop();
    void execTask(std::function<void()> &task);

    void
    noteTask(std::chrono::steady_clock::time_point t0)
    {
        auto dt = std::chrono::steady_clock::now() - t0;
        nExecuted.fetch_add(1, std::memory_order_relaxed);
        busyNs.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()),
            std::memory_order_relaxed);
    }

    unsigned numWorkers;
    std::vector<std::thread> threads;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
    std::atomic<std::uint64_t> nExecuted{0};
    std::atomic<std::uint64_t> busyNs{0};
};

} // namespace mcd

#endif // MCD_COMMON_THREAD_POOL_HH
