/**
 * @file
 * Fundamental types shared across the MCD simulator: the picosecond
 * time base, frequency/voltage units, and clock-domain identifiers.
 */

#ifndef MCD_COMMON_TYPES_HH
#define MCD_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace mcd {

/** Simulated time in picoseconds. All clock edges live on this axis. */
using Tick = std::uint64_t;

/** Signed time difference in picoseconds. */
using TickDelta = std::int64_t;

/** Frequency in hertz. */
using Hertz = double;

/** Supply voltage in volts. */
using Volt = double;

/** Picoseconds per second. */
inline constexpr double ticksPerSecond = 1e12;

/** Convert a frequency to a clock period in picoseconds. */
inline double
periodPs(Hertz f)
{
    return ticksPerSecond / f;
}

/** Convert picoseconds to seconds. */
inline double
toSeconds(Tick t)
{
    return static_cast<double>(t) / ticksPerSecond;
}

/** Convert seconds to picoseconds. */
inline Tick
fromSeconds(double s)
{
    return static_cast<Tick>(s * ticksPerSecond);
}

/** Convert microseconds to picoseconds. */
inline Tick
fromMicroseconds(double us)
{
    return static_cast<Tick>(us * 1e6);
}

/**
 * The four on-chip clock domains of the MCD processor (paper Figure 1).
 *
 * The main-memory interface is an implicit fifth, external domain that
 * always runs at full speed; it is not voltage/frequency scaled and is
 * modeled by fixed-latency DRAM in src/mem.
 */
enum class Domain : std::uint8_t {
    FrontEnd = 0,   //!< fetch, bpred, rename, dispatch, ROB, L1 I-cache
    Integer = 1,    //!< integer issue queue, int ALUs, int register file
    FloatingPoint = 2, //!< FP issue queue, FP ALUs, FP register file
    LoadStore = 3,  //!< load/store queue, L1 D-cache, L2 cache
};

/** Number of on-chip clock domains. */
inline constexpr int numDomains = 4;

/** Domains eligible for dynamic scaling (front end is pinned). */
inline constexpr Domain scalableDomains[] = {
    Domain::Integer, Domain::FloatingPoint, Domain::LoadStore,
};

/** Index form of a Domain for array addressing. */
inline constexpr int
domainIndex(Domain d)
{
    return static_cast<int>(d);
}

/** Inverse of domainIndex (@p i must be in [0, numDomains)). */
inline constexpr Domain
domainFromIndex(int i)
{
    return static_cast<Domain>(i);
}

/**
 * One recorded frequency change: a point in a per-domain frequency
 * series (Figure 8 traces, telemetry frequency series). Lives here
 * rather than in clock/ because both the DVFS engines (producers) and
 * the observability layer (consumer) speak it.
 */
struct FreqTracePoint
{
    Tick when = 0;
    Hertz frequency = 0.0;
};

/**
 * Render a tick for human-facing output (watchdog messages, log
 * warnings, bench summaries): picoseconds up to 10 ns, then ns up to
 * 10 us, then us — always suffixed with the raw tick so the exact
 * value stays greppable, e.g. "15.000 us (15000000 ps)".
 */
std::string formatTick(Tick t);

/** Human-readable domain name. */
const char *domainName(Domain d);

/** Short (3-char) domain name used in table output. */
const char *domainShortName(Domain d);

} // namespace mcd

#endif // MCD_COMMON_TYPES_HH
