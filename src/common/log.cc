#include "log.hh"

#include <atomic>

namespace mcd {

namespace {
// Atomic: warn()/inform() are called from experiment-engine worker
// threads while tests flip quiet mode (stderr itself is locked by the
// C library per call).
std::atomic<bool> quietMode{false};

// Build the whole line first and emit it with one stdio call, so
// concurrent warnings from worker threads can never interleave
// mid-line (each fwrite holds stderr's lock for the full message).
void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line(prefix);
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
warn(const std::string &msg)
{
    if (!quietMode)
        emitLine("warn: ", msg);
}

void
inform(const std::string &msg)
{
    if (!quietMode)
        emitLine("info: ", msg);
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace mcd
