#include "log.hh"

namespace mcd {

namespace {
bool quietMode = false;
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
warn(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace mcd
