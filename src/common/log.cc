#include "log.hh"

#include <atomic>

namespace mcd {

namespace {
// Atomic: warn()/inform() are called from experiment-engine worker
// threads while tests flip quiet mode (stderr itself is locked by the
// C library per call).
std::atomic<bool> quietMode{false};
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
warn(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace mcd
