/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic element of the model (clock jitter, PLL re-lock
 * time, initial clock phases, workload data) draws from an explicitly
 * seeded Rng so that simulations are exactly reproducible.
 */

#ifndef MCD_COMMON_RANDOM_HH
#define MCD_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <string_view>

namespace mcd {

/**
 * One splitmix64 step: advance @p state and return the next value.
 * The standard seeding/stream-splitting primitive: full-period,
 * avalanching, and cheap enough to run a few rounds per derivation.
 */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Derive an independent sub-seed for the named stream of a root seed.
 *
 * Different stream names (or different roots) give statistically
 * independent generators, so components that each need their own
 * deterministic randomness — the workload generator, the config
 * fuzzer, fault-plan sampling — can all draw from one user-visible
 * seed without their draws interleaving: adding a draw to one stream
 * never perturbs another.
 *
 * The name is FNV-1a-hashed into the root, then two splitmix64
 * rounds spread the (possibly low-entropy) combination across all 64
 * bits. Purely a function of (root, stream): stable across platforms
 * and processes.
 */
inline std::uint64_t
streamSeed(std::uint64_t root, std::string_view stream)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : stream) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    std::uint64_t s = root ^ h;
    splitmix64(s);
    return splitmix64(s);
}

/**
 * Fold an index into a stream seed (e.g. per-tuple streams of a soak
 * run): deterministic, and adjacent indices land far apart.
 */
inline std::uint64_t
streamSeedAt(std::uint64_t root, std::string_view stream,
             std::uint64_t index)
{
    std::uint64_t s = streamSeed(root, stream) ^
        (index * 0xd1342543de82ef95ULL);
    return splitmix64(s);
}

/**
 * xorshift64* generator with Box-Muller Gaussian sampling.
 *
 * Small, fast, and statistically adequate for jitter modeling; chosen
 * over std::mt19937 for cross-platform bit-exact reproducibility.
 */
class Rng
{
  public:
    /** Construct with a nonzero seed (zero is remapped internally). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniformRange(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        return next() % n;
    }

    /**
     * Gaussian sample via Box-Muller.
     *
     * @param mean distribution mean
     * @param sigma standard deviation
     */
    double
    normal(double mean, double sigma)
    {
        if (hasSpare) {
            hasSpare = false;
            return mean + sigma * spare;
        }
        double u1 = uniform();
        double u2 = uniform();
        // Guard against log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * 3.14159265358979323846 * u2;
        spare = r * std::sin(theta);
        hasSpare = true;
        return mean + sigma * r * std::cos(theta);
    }

    /**
     * Gaussian sample truncated to [mean - k*sigma, mean + k*sigma].
     * Used for clock jitter where unbounded tails would let simulated
     * time run backwards.
     */
    double
    normalClamped(double mean, double sigma, double k)
    {
        double v = normal(mean, sigma);
        double lo = mean - k * sigma;
        double hi = mean + k * sigma;
        if (v < lo)
            return lo;
        if (v > hi)
            return hi;
        return v;
    }

  private:
    std::uint64_t state;
    bool hasSpare = false;
    double spare = 0.0;
};

/** An Rng seeded for the named stream of @p root (see streamSeed). */
inline Rng
streamRng(std::uint64_t root, std::string_view stream)
{
    return Rng(streamSeed(root, stream));
}

} // namespace mcd

#endif // MCD_COMMON_RANDOM_HH
