/**
 * @file
 * RingDeque: a contiguous circular buffer with deque-style ends.
 *
 * The simulator's hot queues (fetch queue, ROB, LSQ port, credit
 * returns) are strict FIFOs with small, bounded steady-state sizes;
 * std::deque serves them correctly but pays block allocation and
 * pointer-chasing per block boundary on every push/pop cycle. A
 * RingDeque keeps the live span in one pre-sized contiguous array and
 * recycles slots in place, so the steady state allocates nothing and
 * indexed scans walk a single cache-resident block. Growth (doubling)
 * happens only when a reservation was undersized, and is counted so
 * the stats registry can prove the pre-sizing holds
 * (pipeline.ports.ring_grows).
 *
 * Element pointers are NOT stable across growth; the pipeline stores
 * DynInst pointers (whose pointees live in the InstWindow arena), so
 * only the queue cells themselves move.
 */

#ifndef MCD_COMMON_RING_BUFFER_HH
#define MCD_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mcd {

template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    explicit RingDeque(std::size_t capacity) { reserve(capacity); }

    /** Ensure capacity for @p n elements without counting a growth. */
    void
    reserve(std::size_t n)
    {
        if (n > slots.size())
            rebase(n);
    }

    void
    push_back(T v)
    {
        if (count == slots.size()) {
            rebase(slots.size() ? slots.size() * 2 : 8);
            ++growCount;
        }
        slots[index(count)] = std::move(v);
        ++count;
    }

    void
    pop_front()
    {
        head = index(1);
        --count;
        if (!count)
            head = 0;   // empty: rewind so refills start contiguous
    }

    T &front() { return slots[head]; }
    const T &front() const { return slots[head]; }

    T &back() { return slots[index(count - 1)]; }
    const T &back() const { return slots[index(count - 1)]; }

    T &operator[](std::size_t i) { return slots[index(i)]; }
    const T &operator[](std::size_t i) const { return slots[index(i)]; }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    std::size_t capacity() const { return slots.size(); }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Reallocations forced by an undersized reservation. */
    std::uint64_t grows() const { return growCount; }

  private:
    std::size_t
    index(std::size_t i) const
    {
        std::size_t j = head + i;
        return j >= slots.size() ? j - slots.size() : j;
    }

    /** Re-lay the live span contiguously into @p n slots. */
    void
    rebase(std::size_t n)
    {
        std::vector<T> next(n);
        for (std::size_t i = 0; i < count; ++i)
            next[i] = std::move(slots[index(i)]);
        slots = std::move(next);
        head = 0;
    }

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t count = 0;
    std::uint64_t growCount = 0;
};

} // namespace mcd

#endif // MCD_COMMON_RING_BUFFER_HH
