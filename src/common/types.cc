#include "types.hh"

namespace mcd {

const char *
domainName(Domain d)
{
    switch (d) {
      case Domain::FrontEnd: return "front-end";
      case Domain::Integer: return "integer";
      case Domain::FloatingPoint: return "floating-point";
      case Domain::LoadStore: return "load-store";
    }
    return "?";
}

const char *
domainShortName(Domain d)
{
    switch (d) {
      case Domain::FrontEnd: return "FE";
      case Domain::Integer: return "INT";
      case Domain::FloatingPoint: return "FP";
      case Domain::LoadStore: return "LS";
    }
    return "?";
}

} // namespace mcd
