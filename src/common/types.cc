#include "types.hh"

#include <cstdio>

namespace mcd {

std::string
formatTick(Tick t)
{
    char buf[64];
    if (t < 10'000ULL) {
        std::snprintf(buf, sizeof(buf), "%llu ps",
                      static_cast<unsigned long long>(t));
        return buf;
    }
    if (t < 10'000'000ULL) {
        std::snprintf(buf, sizeof(buf), "%.3f ns (%llu ps)",
                      static_cast<double>(t) / 1e3,
                      static_cast<unsigned long long>(t));
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.3f us (%llu ps)",
                  static_cast<double>(t) / 1e6,
                  static_cast<unsigned long long>(t));
    return buf;
}

const char *
domainName(Domain d)
{
    switch (d) {
      case Domain::FrontEnd: return "front-end";
      case Domain::Integer: return "integer";
      case Domain::FloatingPoint: return "floating-point";
      case Domain::LoadStore: return "load-store";
    }
    return "?";
}

const char *
domainShortName(Domain d)
{
    switch (d) {
      case Domain::FrontEnd: return "FE";
      case Domain::Integer: return "INT";
      case Domain::FloatingPoint: return "FP";
      case Domain::LoadStore: return "LS";
    }
    return "?";
}

} // namespace mcd
