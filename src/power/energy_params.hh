/**
 * @file
 * Per-structure access energies for the Wattch-style power model.
 *
 * Values are relative per-access energies (arbitrary "pJ" units) at
 * the nominal operating point (1 GHz, 1.2 V), calibrated so the
 * resulting chip-level breakdown matches the paper's statements: the
 * front end accounts for roughly 20% of total chip energy, the
 * integer domain is the largest consumer in integer codes under
 * aggressive clock gating, and clock distribution is a substantial
 * per-cycle cost in every domain. Absolute watts are not meaningful
 * (we report only relative energy/EDP, as the paper's figures do).
 */

#ifndef MCD_POWER_ENERGY_PARAMS_HH
#define MCD_POWER_ENERGY_PARAMS_HH

#include "common/types.hh"

namespace mcd {

/** On-chip structures tracked by the power model. */
enum class Unit : int {
    // Front-end domain.
    Icache = 0,
    Bpred,
    Rename,
    Rob,
    FetchQueue,
    // Integer domain.
    IntIqWrite,
    IntIqIssue,
    IntRegRead,
    IntRegWrite,
    IntAlu,
    IntMulDiv,
    // Floating-point domain.
    FpIqWrite,
    FpIqIssue,
    FpRegRead,
    FpRegWrite,
    FpAlu,
    FpMulDiv,
    // Load/store domain.
    Lsq,
    Dcache,
    L2,
    NumUnits,
};

inline constexpr int numUnits = static_cast<int>(Unit::NumUnits);

/** Clock domain that powers a given unit. */
Domain unitDomain(Unit u);

/** Display name for a unit. */
const char *unitName(Unit u);

/** The energy table. */
struct EnergyParams
{
    /** Per-access energies, indexed by Unit. */
    double accessEnergy[numUnits] = {
        // Front end (calibrated to ~20% of chip energy, paper 3.2).
        170.0,  // Icache read (per fetch-group access)
        55.0,   // Bpred lookup + update + BTB
        65.0,   // Rename (map read/write + free list)
        110.0,  // ROB (dispatch write / commit read)
        25.0,   // Fetch queue entry
        // Integer.
        90.0,   // IntIqWrite
        150.0,  // IntIqIssue (wakeup + select)
        70.0,   // IntRegRead (per operand)
        95.0,   // IntRegWrite
        270.0,  // IntAlu op
        650.0,  // IntMulDiv op
        // Floating point.
        90.0,   // FpIqWrite
        150.0,  // FpIqIssue
        80.0,   // FpRegRead
        105.0,  // FpRegWrite
        460.0,  // FpAlu op
        900.0,  // FpMulDiv op
        // Load/store.
        180.0,  // LSQ insert/search
        520.0,  // L1D access
        1600.0, // L2 access
    };

    /** Clock-tree energy per cycle for an *active* domain cycle. */
    double clockTreeEnergy[numDomains] = {170.0, 390.0, 310.0, 390.0};

    /**
     * Fraction of clock-tree energy still burned on an idle (fully
     * clock-gated) cycle: gating is aggressive but imperfect (Wattch
     * "cc3"-style residual).
     */
    double gatedClockFraction = 0.45;

    /** Residual non-clock energy per idle domain cycle. */
    double idleResidual[numDomains] = {25.0, 85.0, 80.0, 85.0};

    /** Nominal (maximum) supply voltage for the V^2 scaling. */
    Volt nominalVoltage = 1.2;
};

} // namespace mcd

#endif // MCD_POWER_ENERGY_PARAMS_HH
