#include "power_model.hh"

#include "common/stats.hh"

namespace mcd {

Domain
unitDomain(Unit u)
{
    switch (u) {
      case Unit::Icache: case Unit::Bpred: case Unit::Rename:
      case Unit::Rob: case Unit::FetchQueue:
        return Domain::FrontEnd;
      case Unit::IntIqWrite: case Unit::IntIqIssue: case Unit::IntRegRead:
      case Unit::IntRegWrite: case Unit::IntAlu: case Unit::IntMulDiv:
        return Domain::Integer;
      case Unit::FpIqWrite: case Unit::FpIqIssue: case Unit::FpRegRead:
      case Unit::FpRegWrite: case Unit::FpAlu: case Unit::FpMulDiv:
        return Domain::FloatingPoint;
      case Unit::Lsq: case Unit::Dcache: case Unit::L2:
        return Domain::LoadStore;
      default:
        return Domain::FrontEnd;
    }
}

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::Icache: return "L1 I-cache";
      case Unit::Bpred: return "branch predictor";
      case Unit::Rename: return "rename";
      case Unit::Rob: return "reorder buffer";
      case Unit::FetchQueue: return "fetch queue";
      case Unit::IntIqWrite: return "int IQ write";
      case Unit::IntIqIssue: return "int IQ issue";
      case Unit::IntRegRead: return "int regfile read";
      case Unit::IntRegWrite: return "int regfile write";
      case Unit::IntAlu: return "int ALU";
      case Unit::IntMulDiv: return "int mul/div";
      case Unit::FpIqWrite: return "FP IQ write";
      case Unit::FpIqIssue: return "FP IQ issue";
      case Unit::FpRegRead: return "FP regfile read";
      case Unit::FpRegWrite: return "FP regfile write";
      case Unit::FpAlu: return "FP ALU";
      case Unit::FpMulDiv: return "FP mul/div/sqrt";
      case Unit::Lsq: return "load/store queue";
      case Unit::Dcache: return "L1 D-cache";
      case Unit::L2: return "L2 cache";
      default: return "?";
    }
}

PowerModel::PowerModel(
    const EnergyParams &params,
    std::array<const ClockDomain *, numDomains> domain_clocks)
    : cfg(params), clocks(domain_clocks)
{}

void
PowerModel::domainCycle(Domain d, bool stopped)
{
    int di = domainIndex(d);
    if (stopped) {
        // PLL re-locking: no clock, no dynamic energy.
        activeThisCycle[di] = false;
        return;
    }
    double e = cfg.clockTreeEnergy[di] * vsq(d);
    if (!activeThisCycle[di])
        e = e * cfg.gatedClockFraction + cfg.idleResidual[di] * vsq(d);
    clockEnergy[di] += e;
    domEnergy[di] += e;
    activeThisCycle[di] = false;
}

double
PowerModel::totalEnergy() const
{
    double t = 0.0;
    for (double e : domEnergy)
        t += e;
    return t;
}

std::string
PowerModel::breakdown() const
{
    TextTable tbl;
    tbl.header({"unit", "domain", "accesses", "energy", "share"});
    double total = totalEnergy();
    for (int i = 0; i < numUnits; ++i) {
        Unit u = static_cast<Unit>(i);
        tbl.row({unitName(u), domainShortName(unitDomain(u)),
                 std::to_string(unitCount[i]),
                 formatFixed(unitEnergy[i], 0),
                 formatPercent(total > 0 ? unitEnergy[i] / total : 0.0)});
    }
    for (int d = 0; d < numDomains; ++d) {
        tbl.row({"clock tree + idle",
                 domainShortName(static_cast<Domain>(d)), "-",
                 formatFixed(clockEnergy[d], 0),
                 formatPercent(total > 0 ? clockEnergy[d] / total : 0.0)});
    }
    tbl.separator();
    for (int d = 0; d < numDomains; ++d) {
        tbl.row({"domain total",
                 domainShortName(static_cast<Domain>(d)), "-",
                 formatFixed(domEnergy[d], 0),
                 formatPercent(total > 0 ? domEnergy[d] / total : 0.0)});
    }
    return tbl.render();
}

void
PowerModel::reset()
{
    unitEnergy.fill(0.0);
    unitCount.fill(0);
    domEnergy.fill(0.0);
    clockEnergy.fill(0.0);
    activeThisCycle.fill(false);
}

} // namespace mcd
