/**
 * @file
 * Activity-driven energy accounting in the Wattch tradition.
 *
 * Every structure access is charged its table energy scaled by
 * (V/Vnom)^2 at the *current* voltage of the owning clock domain, so
 * per-domain voltage scaling reduces energy quadratically exactly as
 * in the paper's model. Idle domain cycles pay only the gated clock
 * residual (aggressive conditional clock gating, paper Section 3.1).
 */

#ifndef MCD_POWER_POWER_MODEL_HH
#define MCD_POWER_POWER_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "clock/clock_domain.hh"
#include "power/energy_params.hh"

namespace mcd {

/**
 * Accumulates energy per domain and per unit.
 */
class PowerModel
{
  public:
    PowerModel(const EnergyParams &params,
               std::array<const ClockDomain *, numDomains> domain_clocks);

    /** Charge @p count accesses to a unit at its domain's voltage. */
    void
    access(Unit u, int count = 1)
    {
        int ui = static_cast<int>(u);
        Domain d = unitDomain(u);
        double e = cfg.accessEnergy[ui] * count * vsq(d);
        unitEnergy[ui] += e;
        domEnergy[domainIndex(d)] += e;
        activeThisCycle[domainIndex(d)] = true;
        ++unitCount[ui];
    }

    /**
     * Account one clock cycle of domain @p d. Call at every domain
     * edge after the domain's work for that cycle is done; the model
     * uses the access() calls since the previous edge to decide
     * whether the cycle was active or gated.
     *
     * @param stopped true while the domain's PLL is re-locking (no
     *        clock at all: nothing is charged)
     */
    void domainCycle(Domain d, bool stopped = false);

    double domainEnergy(Domain d) const
    { return domEnergy[domainIndex(d)]; }
    double unitEnergyOf(Unit u) const
    { return unitEnergy[static_cast<int>(u)]; }
    std::uint64_t unitAccesses(Unit u) const
    { return unitCount[static_cast<int>(u)]; }
    double totalEnergy() const;

    /** Render a per-domain / per-unit breakdown table. */
    std::string breakdown() const;

    void reset();

    const EnergyParams &params() const { return cfg; }

  private:
    double
    vsq(Domain d) const
    {
        double v = clocks[domainIndex(d)]->voltage() / cfg.nominalVoltage;
        return v * v;
    }

    EnergyParams cfg;
    std::array<const ClockDomain *, numDomains> clocks;
    std::array<double, numUnits> unitEnergy{};
    std::array<std::uint64_t, numUnits> unitCount{};
    std::array<double, numDomains> domEnergy{};
    std::array<double, numDomains> clockEnergy{};
    std::array<bool, numDomains> activeThisCycle{};
};

} // namespace mcd

#endif // MCD_POWER_POWER_MODEL_HH
