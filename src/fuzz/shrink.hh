/**
 * @file
 * Delta-debugging minimizer for failing scenarios.
 *
 * Greedy ddmin-flavored reduction: repeatedly try structurally
 * smaller variants of a failing scenario — drop legs, drop fault
 * entries, drop program phases, halve numeric dimensions (iterations,
 * chain depth, footprint), strip sampling — keeping a variant only
 * when its re-run reproduces the *same failure signature* (not merely
 * any failure: a shrink that trades one bug for another is a
 * regression in repro quality). Passes repeat to a fixpoint or until
 * the oracle-run budget is exhausted; every accepted variant is
 * strictly smaller, so termination is structural, not probabilistic.
 *
 * Signatures are benchmark-name independent (soak.hh), which is what
 * lets the shrinker mutate GenParams at all: the workload's hashed
 * name changes with every program mutation.
 */

#ifndef MCD_FUZZ_SHRINK_HH
#define MCD_FUZZ_SHRINK_HH

#include <functional>

#include "fuzz/soak.hh"

namespace mcd {
namespace fuzz {

/** Re-runs a candidate scenario (tests stub this with a predicate). */
using ShrinkOracle = std::function<Outcome(const Scenario &)>;

struct ShrinkResult
{
    Scenario minimized;     //!< smallest signature-preserving variant
    Outcome outcome;        //!< its (matching) outcome
    int runs = 0;           //!< oracle invocations spent
    int reductions = 0;     //!< accepted shrink steps
};

/**
 * Minimize @p failing, whose outcome is @p baseline, within
 * @p maxRuns oracle invocations. @p oracle defaults to runScenario().
 * The result is always a valid scenario with the same signature —
 * when nothing shrinks, it is @p failing itself.
 */
ShrinkResult shrinkScenario(const Scenario &failing,
                            const Outcome &baseline, int maxRuns,
                            ShrinkOracle oracle = {});

} // namespace fuzz
} // namespace mcd

#endif // MCD_FUZZ_SHRINK_HH
