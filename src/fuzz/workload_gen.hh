/**
 * @file
 * Deterministic mini-ISA workload synthesis for the fuzz/soak harness.
 *
 * A GenParams value describes one synthetic program as a sequence of
 * phases — integer dependence chains, bounded floating-point chains,
 * strided memory streams, and data-dependent branch blocks — the same
 * axes along which the fixed Table 2 kernels differ (instruction mix,
 * ILP, working set, branch predictability, phase structure). Programs
 * are pure functions of their parameters: the same GenParams (at the
 * same scale) builds a byte-identical Program on every platform, so a
 * failing scenario replays exactly from its serialized spec.
 *
 * Generated workloads enter the experiment engine through the
 * workloads::registerGenerator() hook under names of the form
 * "fuzz-<16 hex digits>", where the digits hash the parameter spec:
 * the name alone keys telemetry sites, fault sites, and the result
 * cache, so two distinct generated programs can never alias each
 * other — or any fixed benchmark — anywhere downstream.
 */

#ifndef MCD_FUZZ_WORKLOAD_GEN_HH
#define MCD_FUZZ_WORKLOAD_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace mcd {
namespace fuzz {

/** What one phase of a generated program exercises. */
enum class PhaseKind : std::uint8_t {
    IntChain,   //!< serial integer dependence chain (ILP axis)
    FpChain,    //!< bounded floating-point chain (FP unit pressure)
    MemStream,  //!< strided load/store walk (footprint/stride axes)
    Branchy,    //!< data-dependent branches (predictability axis)
};

const char *phaseKindName(PhaseKind k);

/** One phase of a generated program. */
struct PhaseParams
{
    PhaseKind kind = PhaseKind::IntChain;
    int iters = 100;            //!< loop iterations (scaled by build scale)
    int chainDepth = 4;         //!< dependent ops per iteration (1..8)
    int footprintWords = 256;   //!< MemStream: data block words
    int stride = 1;             //!< MemStream: words per step
    int takenPercent = 50;      //!< Branchy: % of iterations taken
};

/**
 * The full description of one generated workload. Everything that
 * shapes the emitted program is here; the shrinker mutates these
 * fields directly and reserializes.
 */
struct GenParams
{
    std::uint64_t seed = 1;     //!< data/constant initialization stream
    std::vector<PhaseParams> phases;

    /** Sample a random program shape from a seed (1-4 phases). */
    static GenParams fromSeed(std::uint64_t seed);

    /**
     * Canonical spec string, exactly round-tripping through
     * fromSpec():
     *
     *   seed=N;phase=<kind>:<iters>:<chain>:<foot>:<stride>:<taken>;...
     *
     * with kind in {int, fp, mem, branch}.
     */
    std::string spec() const;

    /** Parse a spec() string (fatal() on malformed input). */
    static GenParams fromSpec(const std::string &spec);

    /** "fuzz-<16 hex>" — the hash covers the full spec. */
    std::string workloadName() const;

    /** Build the program (deterministic in (params, scale)). */
    Program generate(int scale) const;
};

/**
 * Intern @p params into the process-global generated-workload table
 * and register the "fuzz-" prefix with the workload registry (once),
 * so workloads::build(name, scale) resolves the returned name from
 * any thread. Interning the same params again is idempotent. Returns
 * params.workloadName().
 */
std::string internWorkload(const GenParams &params);

/** The interned params behind @p name, or nullptr. */
const GenParams *findWorkload(const std::string &name);

} // namespace fuzz
} // namespace mcd

#endif // MCD_FUZZ_WORKLOAD_GEN_HH
