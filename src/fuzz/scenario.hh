/**
 * @file
 * One fuzz scenario: a generated workload × experiment configuration
 * × leg set × fault plan × job count, fully serializable.
 *
 * A Scenario is the unit the soak driver runs, the shrinker
 * minimizes, and the repro file stores. All parts are text specs that
 * round-trip exactly through the subsystem parsers (GenParams spec,
 * config k=v list, legsToSpec, FaultPlan grammar), so a repro written
 * on one machine replays bit-identically on another.
 *
 * Fault specs inside a Scenario write the benchmark position as "@"
 * ("leg:@/dyn5=vfmisorder"): the generated workload's name is a hash
 * of its parameters, so it changes whenever the shrinker mutates the
 * program — the placeholder keeps fault sites attached to the leg
 * across those mutations, and toConfig() expands it to the concrete
 * benchmark name at run time.
 */

#ifndef MCD_FUZZ_SCENARIO_HH
#define MCD_FUZZ_SCENARIO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "core/experiment.hh"
#include "fuzz/workload_gen.hh"

namespace mcd {
namespace fuzz {

struct Scenario
{
    GenParams workload;

    /**
     * Experiment dimensions as ';'-joined k=v pairs. Keys: model
     * (DVFS model name), timescale, dillo, dilhi, seed, attempts,
     * wdedges, wdticks, sampling (SamplingParams spec; absent = full
     * detail). Unknown keys are fatal. Every key is optional; the
     * defaults match ExperimentConfig's.
     */
    std::string configSpec;

    /** Leg set (legsToSpec / legsFromSpec grammar). */
    std::string legsSpec;

    /**
     * Declared fault plan (FaultPlan grammar, "@" = benchmark):
     * injected failures whose expected outcome the classifier treats
     * as ok — the soak exercises recovery paths without reporting
     * them as findings.
     */
    std::string faultSpec;

    /**
     * Planted fault plan, same grammar: injected but *not* expected,
     * so whatever it breaks is classified as a genuine finding. This
     * is the canary channel: a planted vfmisorder must surface as an
     * invariant-violation finding or the detection loop is broken.
     */
    std::string plantedSpec;

    /** When > 1, an ok run is re-run on this many workers and the
     *  two result sets must be byte-identical (divergence check). */
    int jobs = 1;

    /** The generated benchmark's registry name. */
    std::string benchName() const { return workload.workloadName(); }

    /**
     * Materialize the ExperimentConfig: interns the workload, parses
     * configSpec/legsSpec, expands "@" in the fault specs, and arms
     * the default invariant set. fatal() on malformed specs.
     */
    ExperimentConfig toConfig() const;

    /** configSpec/faultSpec with "@" expanded (helper, exposed for
     *  tests). */
    std::string expandedFaults() const;
};

/** Repro file format version header ("mcd-repro-v2"). */
extern const char *const reproVersion;

/** The legacy flat-object format ("mcd-repro-v1"), still readable. */
extern const char *const reproVersionLegacy;

/**
 * Write a standalone JSON repro: signature, workload, planted plan
 * and jobs count, plus the experiment dimensions as an embedded
 * mcd-runspec-v1 options object (the same option names --config files
 * use; values stay JSON strings so the spec text round-trips
 * byte-identically).
 */
void writeRepro(std::ostream &os, const Scenario &s,
                const std::string &signature);

/** A parsed repro file. */
struct Repro
{
    Scenario scenario;
    std::string signature;
};

/**
 * Parse a repro written by writeRepro() — either the current v2
 * format or the legacy v1 flat object. Returns nullopt on a version
 * mismatch or malformed content (never throws for file-shape
 * problems; spec-grammar errors inside a well-formed file still
 * fatal() like every other parser).
 */
std::optional<Repro> readRepro(std::istream &is);

} // namespace fuzz
} // namespace mcd

#endif // MCD_FUZZ_SCENARIO_HH
