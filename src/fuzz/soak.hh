/**
 * @file
 * The soak driver: run a seeded budget of scenario tuples, classify
 * each outcome against the scenario's declared fault plan, journal
 * progress for resumability, shrink findings, and persist repros.
 *
 * Outcome taxonomy (DESIGN.md §14):
 *
 *  - ok: every leg completed (or failed exactly as a *declared* fault
 *    predicts) and no unexpected invariant violations were recorded.
 *  - invariant: an invariant rule fired where no declared fault
 *    explains it.
 *  - watchdog: a leg was aborted by the watchdog without a declared
 *    stall at that site.
 *  - legfail: a leg failed in any other unexpected way (fatal /
 *    panic / exception / dependency / undeclared injection).
 *  - divergence: an ok scenario produced byte-different results when
 *    re-run at jobs=N (determinism contract breach).
 *  - crash: the matrix itself threw past the per-leg guards.
 *
 * Declared faults produce *expected* outcomes, which classify as ok:
 * that is what lets clean soaks include fault tuples that exercise
 * the recovery machinery. Planted faults (Scenario::plantedSpec) are
 * injected but not expected — the canary channel.
 */

#ifndef MCD_FUZZ_SOAK_HH
#define MCD_FUZZ_SOAK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/scenario.hh"

namespace mcd {
namespace fuzz {

enum class OutcomeClass : std::uint8_t {
    Ok,
    Invariant,
    Watchdog,
    LegFail,
    Divergence,
    Crash,
};

const char *outcomeClassName(OutcomeClass c);

/** Classification of one scenario run. */
struct Outcome
{
    OutcomeClass cls = OutcomeClass::Ok;

    /**
     * Stable identity of the failure, independent of the (hashed)
     * benchmark name so it survives shrinking: e.g.
     * "invariant:voltage_leads_freq@dyn5", "watchdog@online",
     * "legfail:fatal@dyn1", "divergence@jobs8", "crash". Empty for ok.
     */
    std::string signature;

    std::string detail;     //!< human-readable elaboration

    bool failed() const { return cls != OutcomeClass::Ok; }
};

/**
 * Run @p s start to finish and classify: serial matrix run, expected-
 * outcome comparison against the declared fault plan, then (for ok
 * outcomes with s.jobs > 1) the jobs=N divergence re-run. Never
 * throws: internal errors come back as Crash outcomes.
 */
Outcome runScenario(const Scenario &s);

/** Options of one soak invocation. */
struct SoakOptions
{
    std::uint64_t rootSeed = 1;
    int budget = 100;           //!< tuple count (indices 0..budget-1)
    int jobs = 1;               //!< divergence-check workers (1 = skip)
    std::string outDir;         //!< journal + repro directory ("" = none)

    /**
     * Planted fault applied to every tuple, as "<leg>=<action>"
     * ("dyn5=vfmisorder"); empty = no plant. Expanded to
     * "leg:@/<leg>=<action>" on each scenario.
     */
    std::string planted;

    bool shrink = true;
    int shrinkRuns = 32;        //!< oracle-run budget per finding
    bool progress = false;      //!< per-tuple stderr lines
};

/** One finding (non-ok tuple) of a soak run. */
struct SoakFinding
{
    std::uint64_t index = 0;
    Outcome outcome;
    std::string reproPath;      //!< minimized repro ("" without outDir)
};

struct SoakReport
{
    std::uint64_t completed = 0;    //!< tuples run by this invocation
    std::uint64_t resumed = 0;      //!< tuples skipped via the journal
    std::uint64_t priorFindings = 0;//!< findings recorded by prior runs
    std::vector<SoakFinding> findings;

    bool clean() const
    { return findings.empty() && priorFindings == 0; }
};

/**
 * Run the soak. With a journal in opts.outDir from a compatible prior
 * invocation (same root seed / jobs / planted spec), completed tuple
 * indices are skipped — an interrupted soak resumes where it died,
 * and rerunning with a larger budget only runs the new indices.
 */
SoakReport runSoak(const SoakOptions &opts);

/** 0 when clean, 1 when any finding was (or had been) recorded. */
int soakExitCode(const SoakReport &report);

/** The deterministic scenario of tuple @p index under @p opts. */
Scenario soakScenario(const SoakOptions &opts, std::uint64_t index);

/** Replay outcome of one repro file. */
struct ReplayResult
{
    bool loaded = false;    //!< file parsed as a repro
    bool matched = false;   //!< outcome signature == recorded signature
    std::string recorded;   //!< signature stored in the file
    Outcome outcome;        //!< what the replay actually produced
};

/** Load and re-run @p path, comparing against its stored signature. */
ReplayResult replayRepro(const std::string &path);

} // namespace fuzz
} // namespace mcd

#endif // MCD_FUZZ_SOAK_HH
