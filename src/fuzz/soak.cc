#include "soak.hh"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "config/jsonlite.hh"
#include "config/runspec.hh"
#include "fuzz/config_fuzzer.hh"
#include "fuzz/shrink.hh"
#include "obs/invariants.hh"

namespace mcd {
namespace fuzz {

const char *
outcomeClassName(OutcomeClass c)
{
    switch (c) {
      case OutcomeClass::Ok: return "ok";
      case OutcomeClass::Invariant: return "invariant";
      case OutcomeClass::Watchdog: return "watchdog";
      case OutcomeClass::LegFail: return "legfail";
      case OutcomeClass::Divergence: return "divergence";
      case OutcomeClass::Crash: return "crash";
    }
    return "?";
}

namespace {

/** What the *declared* fault plan predicts, keyed by leg name. */
struct Expectations
{
    /** leg -> RunError kind its failure should carry. */
    std::map<std::string, std::string> failKind;
    /** Legs where voltage_leads_freq violations are the plan. */
    std::map<std::string, bool> misorder;
};

/**
 * Derive expectations from the declared (not planted) fault spec.
 * The spec is in placeholder form ("leg:@/dyn5=throw"), so the leg
 * name is everything after the '/'.
 */
Expectations
expectationsOf(const Scenario &s)
{
    Expectations ex;
    int attempts = 2;       // ExperimentConfig default
    {
        std::string item;
        std::istringstream cs(s.configSpec);
        while (std::getline(cs, item, ';')) {
            if (item.rfind("attempts=", 0) == 0)
                attempts = std::atoi(item.c_str() + 9);
        }
    }
    std::string item;
    std::istringstream ss(s.faultSpec);
    while (std::getline(ss, item, ';')) {
        if (item.rfind("leg:", 0) != 0)
            continue;
        std::size_t slash = item.find('/');
        std::size_t eq = item.find('=', slash);
        if (slash == std::string::npos || eq == std::string::npos)
            continue;       // malformed specs die in FaultPlan::parse
        std::string leg = item.substr(slash + 1, eq - slash - 1);
        std::string action = item.substr(eq + 1);
        if (action == "throw") {
            ex.failKind[leg] = "injected";
        } else if (action.rfind("flaky", 0) == 0) {
            int k = 1;
            std::size_t colon = action.find(':');
            if (colon != std::string::npos)
                k = std::atoi(action.c_str() + colon + 1);
            // k transient failures recover iff the retry budget
            // covers them; otherwise the leg fails like a throw.
            if (k >= attempts)
                ex.failKind[leg] = "injected";
        } else if (action == "stall") {
            ex.failKind[leg] = "watchdog";
        } else if (action == "vfmisorder") {
            ex.misorder[leg] = true;
        }
    }
    return ex;
}

/** The metric part of a canonical rule text ("dilation<=0.5" ->
 *  "dilation"). */
std::string
ruleMetric(const std::string &rule)
{
    std::size_t end = 0;
    while (end < rule.size() &&
           (std::isalnum(static_cast<unsigned char>(rule[end])) ||
            rule[end] == '_'))
        ++end;
    return rule.substr(0, end);
}

/** Visit (legName, run) over a row in canonical order. */
template <typename F>
void
forEachRun(const BenchmarkResults &r, F &&f)
{
    f(std::string("baseline"), r.baseline);
    f(std::string("mcdBaseline"), r.mcdBaseline);
    for (const ControllerLeg &l : r.legs)
        f(l.spec.name, l.run);
}

/**
 * Byte-level digest of a result row: the full cache serialization
 * (every numeric field of every leg) plus the per-leg invariant
 * counts the cache format does not carry. Two runs of one scenario
 * must digest identically at any job count.
 */
std::uint64_t
digestRow(const BenchmarkResults &r)
{
    std::ostringstream os;
    expcache::write(os, r);
    forEachRun(r, [&](const std::string &leg, const RunResult &run) {
        std::uint64_t v = 0;
        if (run.telemetry && run.telemetry->invariants())
            v = run.telemetry->invariants()->violations();
        os << leg << ":" << v << "\n";
        if (run.failed())
            os << leg << ":err:" << run.error->kind << "\n";
    });
    std::string s = os.str();
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Classify one completed row against the scenario's expectations. */
Outcome
classify(const Scenario &s, const BenchmarkResults &row)
{
    Expectations ex = expectationsOf(s);

    // Legs whose failure the plan predicts: dependents skipped
    // because of them are expected collateral, not findings.
    Outcome found;
    forEachRun(row, [&](const std::string &leg, const RunResult &run) {
        if (found.failed())
            return;         // first unexpected event wins
        if (run.failed()) {
            const RunError &err = *run.error;
            auto it = ex.failKind.find(leg);
            if (it != ex.failKind.end() && it->second == err.kind)
                return;     // the declared fault, as predicted
            if (err.kind == "dependency") {
                // "<upstream> leg failed": expected when the
                // upstream leg's failure was itself declared.
                std::string up = err.message.substr(
                    0, err.message.find(' '));
                if (ex.failKind.count(up))
                    return;
            }
            if (err.kind == "watchdog") {
                found.cls = OutcomeClass::Watchdog;
                found.signature = "watchdog@" + leg;
            } else {
                found.cls = OutcomeClass::LegFail;
                found.signature = "legfail:" + err.kind + "@" + leg;
            }
            found.detail = err.message;
            return;
        }
        if (run.telemetry && run.telemetry->invariants()) {
            const obs::InvariantEngine *inv =
                run.telemetry->invariants();
            if (inv->violations() == 0)
                return;
            bool misorderExpected = ex.misorder.count(leg) != 0;
            for (const obs::InvariantViolation &v : inv->records()) {
                std::string metric = ruleMetric(v.rule);
                if (misorderExpected && metric == "voltage_leads_freq")
                    continue;   // the declared hazard, detected
                found.cls = OutcomeClass::Invariant;
                found.signature = "invariant:" + metric + "@" + leg;
                found.detail = v.rule + " observed " +
                    std::to_string(v.observed) + " at t=" +
                    std::to_string(v.tick);
                return;
            }
            // Counts above the record cap with every record
            // expected: still the declared hazard.
        }
    });
    return found;
}

} // namespace

Outcome
runScenario(const Scenario &s)
{
    try {
        ExperimentConfig cfg = s.toConfig();
        cfg.validate();
        ExperimentRunner runner(cfg);
        BenchmarkResults row = runner.runBenchmark(s.benchName());
        Outcome o = classify(s, row);
        if (o.failed() || s.jobs <= 1)
            return o;

        // Determinism check: the same matrix fanned out on a pool
        // must produce byte-identical results (the repo-wide
        // jobs-independence contract).
        ThreadPool pool(static_cast<unsigned>(s.jobs));
        ExperimentRunner parallelRunner(cfg);
        BenchmarkResults row2 =
            parallelRunner.runBenchmark(s.benchName(), pool);
        if (digestRow(row) != digestRow(row2)) {
            Outcome d;
            d.cls = OutcomeClass::Divergence;
            d.signature = "divergence@jobs" + std::to_string(s.jobs);
            d.detail = "jobs=1 and jobs=" + std::to_string(s.jobs) +
                " result digests differ";
            return d;
        }
        return o;
    } catch (const std::exception &e) {
        Outcome c;
        c.cls = OutcomeClass::Crash;
        c.signature = "crash";
        c.detail = e.what();
        return c;
    }
}

Scenario
soakScenario(const SoakOptions &opts, std::uint64_t index)
{
    ConfigFuzzer fz(opts.rootSeed);
    Scenario s = fz.tuple(index);
    s.jobs = opts.jobs;
    if (!opts.planted.empty()) {
        if (opts.planted.find('=') == std::string::npos)
            fatal("soak: planted fault must be <leg>=<action> (got '" +
                  opts.planted + "')");
        s.plantedSpec = "leg:@/" + opts.planted;
    }
    return s;
}

namespace {

const char *const journalVersion = "mcd-soak-journal-v1";

std::string
journalHeader(const SoakOptions &opts)
{
    return std::string(journalVersion) +
        " seed=" + std::to_string(opts.rootSeed) +
        " jobs=" + std::to_string(opts.jobs) +
        " planted=" + opts.planted;
}

std::string
journalPath(const SoakOptions &opts)
{
    return opts.outDir + "/journal.txt";
}

/**
 * The soak's effective configuration as a one-line mcd-runspec-v1
 * fragment, written as a '#' comment right after the header when a
 * journal is created. Purely informational: the reader skips comment
 * lines, and the header alone (seed/jobs/planted, never the budget)
 * decides resume compatibility.
 */
std::string
journalRunspec(const SoakOptions &opts)
{
    using config::jsonlite::escape;
    std::ostringstream os;
    os << "{\"version\": \"" << config::runSpecVersion
       << "\", \"options\": {"
       << "\"soakBudget\": \"" << opts.budget << "\", "
       << "\"soakJobs\": \"" << opts.jobs << "\", "
       << "\"soakOut\": \"" << escape(opts.outDir) << "\", "
       << "\"soakPlant\": \"" << escape(opts.planted) << "\", "
       << "\"soakSeed\": \"" << opts.rootSeed << "\"}}";
    return os.str();
}

} // namespace

SoakReport
runSoak(const SoakOptions &opts)
{
    SoakReport report;

    // Completed indices from a compatible journal. The header pins
    // everything scenario-shaping (seed, jobs, planted) but NOT the
    // budget, so a rerun with a larger budget resumes and extends.
    std::map<std::uint64_t, std::string> done;
    bool haveDir = !opts.outDir.empty();
    if (haveDir) {
        std::error_code ec;
        std::filesystem::create_directories(opts.outDir + "/corpus",
                                            ec);
        std::ifstream in(journalPath(opts));
        std::string header;
        if (in && std::getline(in, header) &&
            header == journalHeader(opts)) {
            std::string line;
            while (std::getline(in, line)) {
                if (!line.empty() && line[0] == '#')
                    continue;   // comment lines (e.g. "# runspec ...")
                std::istringstream ls(line);
                std::uint64_t idx = 0;
                std::string cls, sig;
                if (ls >> idx >> cls >> sig)
                    done[idx] = cls;
            }
        } else {
            std::ofstream out(journalPath(opts), std::ios::trunc);
            out << journalHeader(opts) << "\n"
                << "# runspec " << journalRunspec(opts) << "\n";
        }
    }

    std::ofstream journal;
    if (haveDir)
        journal.open(journalPath(opts), std::ios::app);

    for (std::uint64_t idx = 0;
         idx < static_cast<std::uint64_t>(opts.budget); ++idx) {
        auto prior = done.find(idx);
        if (prior != done.end()) {
            ++report.resumed;
            if (prior->second != "ok")
                ++report.priorFindings;
            continue;
        }

        Scenario s = soakScenario(opts, idx);
        Outcome o = runScenario(s);
        ++report.completed;

        if (opts.progress)
            std::fprintf(stderr, "  soak %llu/%d: %s%s%s\n",
                         static_cast<unsigned long long>(idx + 1),
                         opts.budget, outcomeClassName(o.cls),
                         o.failed() ? " " : "",
                         o.signature.c_str());

        SoakFinding finding;
        if (o.failed()) {
            finding.index = idx;
            finding.outcome = o;
            Scenario repro = s;
            if (opts.shrink) {
                ShrinkResult sr =
                    shrinkScenario(s, o, opts.shrinkRuns);
                repro = sr.minimized;
                finding.outcome = sr.outcome;
            }
            if (haveDir) {
                char name[64];
                std::snprintf(name, sizeof(name),
                              "repro-%llu-%llu.json",
                              static_cast<unsigned long long>(
                                  opts.rootSeed),
                              static_cast<unsigned long long>(idx));
                finding.reproPath = opts.outDir + "/corpus/" + name;
                std::ofstream rf(finding.reproPath);
                writeRepro(rf, repro, finding.outcome.signature);
            }
            report.findings.push_back(finding);
        }

        if (journal) {
            journal << idx << " " << outcomeClassName(o.cls) << " "
                    << (o.failed() ? o.signature : std::string("-"))
                    << "\n";
            journal.flush();    // survive a mid-run kill
        }
    }
    return report;
}

int
soakExitCode(const SoakReport &report)
{
    return report.clean() ? 0 : 1;
}

ReplayResult
replayRepro(const std::string &path)
{
    ReplayResult res;
    std::ifstream in(path);
    if (!in)
        return res;
    std::optional<Repro> repro = readRepro(in);
    if (!repro)
        return res;
    res.loaded = true;
    res.recorded = repro->signature;
    res.outcome = runScenario(repro->scenario);
    res.matched = res.recorded == "ok"
        ? !res.outcome.failed()
        : res.outcome.signature == res.recorded;
    return res;
}

} // namespace fuzz
} // namespace mcd
