#include "scenario.hh"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace mcd {
namespace fuzz {

namespace {

/** Replace every "@" in a fault spec with the benchmark name. */
std::string
expandAt(const std::string &spec, const std::string &bench)
{
    std::string out;
    for (char c : spec) {
        if (c == '@')
            out += bench;
        else
            out += c;
    }
    return out;
}

double
parseDouble(const std::string &key, const std::string &v)
{
    try {
        std::size_t used = 0;
        double d = std::stod(v, &used);
        if (used != v.size())
            throw std::invalid_argument(v);
        return d;
    } catch (const std::exception &) {
        fatal("Scenario config: bad value '" + v + "' for " + key);
    }
}

std::uint64_t
parseU64(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
    if (!end || *end || v.empty())
        fatal("Scenario config: bad value '" + v + "' for " + key);
    return n;
}

} // namespace

std::string
Scenario::expandedFaults() const
{
    std::string joined = faultSpec;
    if (!plantedSpec.empty()) {
        if (!joined.empty())
            joined += ";";
        joined += plantedSpec;
    }
    return expandAt(joined, benchName());
}

ExperimentConfig
Scenario::toConfig() const
{
    internWorkload(workload);

    ExperimentConfig cfg;
    cfg.scale = 1;
    cfg.cacheDir.clear();               // soak runs are never cached
    cfg.telemetry.invariants = "default";

    std::string item;
    std::istringstream ss(configSpec);
    while (std::getline(ss, item, ';')) {
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("Scenario config: item '" + item + "' missing '='");
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (key == "model") {
            auto kind = dvfsKindFromName(val);
            if (!kind)
                fatal("Scenario config: unknown DVFS model '" + val +
                      "' (choices: " + dvfsKindNames() + ")");
            cfg.model = *kind;
        } else if (key == "timescale") {
            cfg.dvfsTimeScale = parseDouble(key, val);
        } else if (key == "dillo") {
            cfg.dilationLow = parseDouble(key, val);
        } else if (key == "dilhi") {
            cfg.dilationHigh = parseDouble(key, val);
        } else if (key == "seed") {
            cfg.seed = parseU64(key, val);
        } else if (key == "attempts") {
            cfg.legAttempts = static_cast<int>(parseU64(key, val));
        } else if (key == "wdedges") {
            cfg.watchdogNoProgressEdges = parseU64(key, val);
        } else if (key == "wdticks") {
            cfg.watchdogMaxTicks = parseU64(key, val);
        } else if (key == "sampling") {
            cfg.sampling = SamplingParams::fromSpec(val);
        } else {
            fatal("Scenario config: unknown key '" + key + "'");
        }
    }

    cfg.legs = legsFromSpec(legsSpec);

    std::string faults = expandedFaults();
    if (!faults.empty())
        cfg.faults = std::make_shared<const fault::FaultPlan>(
            fault::FaultPlan::parse(faults));
    return cfg;
}

const char *const reproVersion = "mcd-repro-v1";

void
writeRepro(std::ostream &os, const Scenario &s,
           const std::string &signature)
{
    // Flat JSON with string/number values only. The spec grammars
    // exclude '"' and '\', so values never need escaping — which is
    // what lets readRepro() stay a two-screen scanner instead of a
    // JSON library dependency.
    os << "{\n"
       << "  \"version\": \"" << reproVersion << "\",\n"
       << "  \"signature\": \"" << signature << "\",\n"
       << "  \"workload\": \"" << s.workload.spec() << "\",\n"
       << "  \"config\": \"" << s.configSpec << "\",\n"
       << "  \"legs\": \"" << s.legsSpec << "\",\n"
       << "  \"faults\": \"" << s.faultSpec << "\",\n"
       << "  \"planted\": \"" << s.plantedSpec << "\",\n"
       << "  \"jobs\": " << s.jobs << "\n"
       << "}\n";
}

namespace {

/** The value of "key" in flat-JSON @p text, or nullopt. */
std::optional<std::string>
jsonField(const std::string &text, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return std::nullopt;
    std::size_t colon = text.find(':', at + needle.size());
    if (colon == std::string::npos)
        return std::nullopt;
    std::size_t pos = colon + 1;
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    if (pos >= text.size())
        return std::nullopt;
    if (text[pos] == '"') {
        std::size_t close = text.find('"', pos + 1);
        if (close == std::string::npos)
            return std::nullopt;
        return text.substr(pos + 1, close - pos - 1);
    }
    std::size_t end = pos;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '-'))
        ++end;
    if (end == pos)
        return std::nullopt;
    return text.substr(pos, end - pos);
}

} // namespace

std::optional<Repro>
readRepro(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();

    auto version = jsonField(text, "version");
    if (!version || *version != reproVersion)
        return std::nullopt;
    auto signature = jsonField(text, "signature");
    auto workload = jsonField(text, "workload");
    auto config = jsonField(text, "config");
    auto legs = jsonField(text, "legs");
    auto faults = jsonField(text, "faults");
    auto planted = jsonField(text, "planted");
    auto jobs = jsonField(text, "jobs");
    if (!signature || !workload || !config || !legs || !faults ||
        !planted || !jobs)
        return std::nullopt;

    Repro r;
    r.signature = *signature;
    r.scenario.workload = GenParams::fromSpec(*workload);
    r.scenario.configSpec = *config;
    r.scenario.legsSpec = *legs;
    r.scenario.faultSpec = *faults;
    r.scenario.plantedSpec = *planted;
    r.scenario.jobs = static_cast<int>(
        std::strtol(jobs->c_str(), nullptr, 10));
    if (r.scenario.jobs < 1)
        r.scenario.jobs = 1;
    return r;
}

} // namespace fuzz
} // namespace mcd
