#include "scenario.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "config/jsonlite.hh"
#include "config/runspec.hh"

namespace mcd {
namespace fuzz {

namespace {

/** Replace every "@" in a fault spec with the benchmark name. */
std::string
expandAt(const std::string &spec, const std::string &bench)
{
    std::string out;
    for (char c : spec) {
        if (c == '@')
            out += bench;
        else
            out += c;
    }
    return out;
}

double
parseDouble(const std::string &key, const std::string &v)
{
    try {
        std::size_t used = 0;
        double d = std::stod(v, &used);
        if (used != v.size())
            throw std::invalid_argument(v);
        return d;
    } catch (const std::exception &) {
        fatal("Scenario config: bad value '" + v + "' for " + key);
    }
}

std::uint64_t
parseU64(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
    if (!end || *end || v.empty())
        fatal("Scenario config: bad value '" + v + "' for " + key);
    return n;
}

} // namespace

std::string
Scenario::expandedFaults() const
{
    std::string joined = faultSpec;
    if (!plantedSpec.empty()) {
        if (!joined.empty())
            joined += ";";
        joined += plantedSpec;
    }
    return expandAt(joined, benchName());
}

ExperimentConfig
Scenario::toConfig() const
{
    internWorkload(workload);

    ExperimentConfig cfg;
    cfg.scale = 1;
    cfg.cacheDir.clear();               // soak runs are never cached
    cfg.telemetry.invariants = "default";

    std::string item;
    std::istringstream ss(configSpec);
    while (std::getline(ss, item, ';')) {
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("Scenario config: item '" + item + "' missing '='");
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (key == "model") {
            auto kind = dvfsKindFromName(val);
            if (!kind)
                fatal("Scenario config: unknown DVFS model '" + val +
                      "' (choices: " + dvfsKindNames() + ")");
            cfg.model = *kind;
        } else if (key == "timescale") {
            cfg.dvfsTimeScale = parseDouble(key, val);
        } else if (key == "dillo") {
            cfg.dilationLow = parseDouble(key, val);
        } else if (key == "dilhi") {
            cfg.dilationHigh = parseDouble(key, val);
        } else if (key == "seed") {
            cfg.seed = parseU64(key, val);
        } else if (key == "attempts") {
            cfg.legAttempts = static_cast<int>(parseU64(key, val));
        } else if (key == "wdedges") {
            cfg.watchdogNoProgressEdges = parseU64(key, val);
        } else if (key == "wdticks") {
            cfg.watchdogMaxTicks = parseU64(key, val);
        } else if (key == "sampling") {
            cfg.sampling = SamplingParams::fromSpec(val);
        } else {
            fatal("Scenario config: unknown key '" + key + "'");
        }
    }

    cfg.legs = legsFromSpec(legsSpec);

    std::string faults = expandedFaults();
    if (!faults.empty())
        cfg.faults = std::make_shared<const fault::FaultPlan>(
            fault::FaultPlan::parse(faults));
    return cfg;
}

const char *const reproVersion = "mcd-repro-v2";
const char *const reproVersionLegacy = "mcd-repro-v1";

namespace {

/**
 * The configSpec k=v keys and their RunSpec option names, in the
 * canonical emission order of both serializations (configSpec order
 * for v1-era specs; writeRepro sorts by option name itself).
 */
constexpr std::pair<const char *, const char *> configSpecKeys[] = {
    {"model", "model"},           {"timescale", "dvfsTimeScale"},
    {"dillo", "dilationLow"},     {"dilhi", "dilationHigh"},
    {"seed", "seed"},             {"attempts", "legAttempts"},
    {"wdedges", "watchdogEdges"}, {"wdticks", "watchdogTicks"},
    {"sampling", "sampling"},
};

const char *
optionNameForSpecKey(const std::string &key)
{
    for (const auto &[specKey, option] : configSpecKeys) {
        if (key == specKey)
            return option;
    }
    return nullptr;
}

const char *
specKeyForOptionName(const std::string &option)
{
    for (const auto &[specKey, opt] : configSpecKeys) {
        if (option == opt)
            return specKey;
    }
    return nullptr;
}

} // namespace

void
writeRepro(std::ostream &os, const Scenario &s,
           const std::string &signature)
{
    // The scenario's experiment dimensions are serialized as a
    // mcd-runspec-v1 options object (the same surface --config files
    // use), with every value a JSON *string* so the exact spec text —
    // "0.050000" included — round-trips byte-identically. Only the
    // keys present in configSpec appear; absent keys mean the
    // ExperimentConfig defaults, exactly as in the spec grammar.
    std::vector<std::pair<std::string, std::string>> opts;
    std::string item;
    std::istringstream ss(s.configSpec);
    while (std::getline(ss, item, ';')) {
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("Scenario config: item '" + item + "' missing '='");
        const char *name = optionNameForSpecKey(item.substr(0, eq));
        if (!name)
            fatal("Scenario config: unknown key '" +
                  item.substr(0, eq) + "'");
        opts.emplace_back(name, item.substr(eq + 1));
    }
    opts.emplace_back("legs", s.legsSpec);
    opts.emplace_back("faultPlan", s.faultSpec);
    std::sort(opts.begin(), opts.end());

    os << "{\n"
       << "  \"version\": \"" << reproVersion << "\",\n"
       << "  \"signature\": \"" << signature << "\",\n"
       << "  \"workload\": \"" << s.workload.spec() << "\",\n"
       << "  \"planted\": \"" << s.plantedSpec << "\",\n"
       << "  \"jobs\": " << s.jobs << ",\n"
       << "  \"runspec\": {\n"
       << "    \"version\": \"" << config::runSpecVersion << "\",\n"
       << "    \"options\": {\n";
    for (std::size_t i = 0; i < opts.size(); ++i) {
        os << "      \"" << opts[i].first << "\": \""
           << config::jsonlite::escape(opts[i].second) << "\""
           << (i + 1 < opts.size() ? "," : "") << "\n";
    }
    os << "    }\n"
       << "  }\n"
       << "}\n";
}

namespace {

/** The value of "key" in flat-JSON @p text, or nullopt. */
std::optional<std::string>
jsonField(const std::string &text, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return std::nullopt;
    std::size_t colon = text.find(':', at + needle.size());
    if (colon == std::string::npos)
        return std::nullopt;
    std::size_t pos = colon + 1;
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    if (pos >= text.size())
        return std::nullopt;
    if (text[pos] == '"') {
        std::size_t close = text.find('"', pos + 1);
        if (close == std::string::npos)
            return std::nullopt;
        return text.substr(pos + 1, close - pos - 1);
    }
    std::size_t end = pos;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '-'))
        ++end;
    if (end == pos)
        return std::nullopt;
    return text.substr(pos, end - pos);
}

/**
 * The legacy flat-object reader, kept so the pre-v2 regression corpus
 * (and any repro stashed in a bug report) replays forever.
 */
std::optional<Repro>
readReproV1(const std::string &text)
{
    auto signature = jsonField(text, "signature");
    auto workload = jsonField(text, "workload");
    auto config = jsonField(text, "config");
    auto legs = jsonField(text, "legs");
    auto faults = jsonField(text, "faults");
    auto planted = jsonField(text, "planted");
    auto jobs = jsonField(text, "jobs");
    if (!signature || !workload || !config || !legs || !faults ||
        !planted || !jobs)
        return std::nullopt;

    Repro r;
    r.signature = *signature;
    r.scenario.workload = GenParams::fromSpec(*workload);
    r.scenario.configSpec = *config;
    r.scenario.legsSpec = *legs;
    r.scenario.faultSpec = *faults;
    r.scenario.plantedSpec = *planted;
    r.scenario.jobs = static_cast<int>(
        std::strtol(jobs->c_str(), nullptr, 10));
    if (r.scenario.jobs < 1)
        r.scenario.jobs = 1;
    return r;
}

std::optional<Repro>
readReproV2(const std::string &text)
{
    config::jsonlite::Value doc;
    std::string err;
    if (!config::jsonlite::parse(text, doc, err) ||
        doc.kind != config::jsonlite::Value::Kind::Object)
        return std::nullopt;
    auto field = [&](const char *key)
        -> const config::jsonlite::Value * {
        return doc.find(key);
    };
    const auto *signature = field("signature");
    const auto *workload = field("workload");
    const auto *planted = field("planted");
    const auto *jobs = field("jobs");
    const auto *runspec = field("runspec");
    if (!signature || !workload || !planted || !jobs || !runspec ||
        runspec->kind != config::jsonlite::Value::Kind::Object)
        return std::nullopt;
    const auto *rsVersion = runspec->find("version");
    const auto *options = runspec->find("options");
    if (!rsVersion || rsVersion->text != config::runSpecVersion ||
        !options ||
        options->kind != config::jsonlite::Value::Kind::Object)
        return std::nullopt;

    Repro r;
    r.signature = signature->text;
    r.scenario.workload = GenParams::fromSpec(workload->text);
    r.scenario.plantedSpec = planted->text;
    r.scenario.jobs = static_cast<int>(
        std::strtol(jobs->text.c_str(), nullptr, 10));
    if (r.scenario.jobs < 1)
        r.scenario.jobs = 1;

    // Rebuild the spec strings. configSpec keys come back in the
    // canonical key-table order regardless of the file's key order,
    // so a rewritten repro is byte-stable.
    for (const auto &[name, value] : options->members) {
        if (name == "legs" || name == "faultPlan")
            continue;
        if (!specKeyForOptionName(name))
            return std::nullopt;    // not an experiment dimension
    }
    std::string configSpec;
    for (const auto &[specKey, option] : configSpecKeys) {
        if (const auto *v = options->find(option)) {
            if (!configSpec.empty())
                configSpec += ";";
            configSpec += std::string(specKey) + "=" + v->text;
        }
    }
    r.scenario.configSpec = configSpec;
    if (const auto *v = options->find("legs"))
        r.scenario.legsSpec = v->text;
    if (const auto *v = options->find("faultPlan"))
        r.scenario.faultSpec = v->text;
    return r;
}

} // namespace

std::optional<Repro>
readRepro(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();

    auto version = jsonField(text, "version");
    if (!version)
        return std::nullopt;
    if (*version == reproVersion)
        return readReproV2(text);
    if (*version == reproVersionLegacy)
        return readReproV1(text);
    return std::nullopt;
}

} // namespace fuzz
} // namespace mcd
