#include "workload_gen.hh"

#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

#include "common/log.hh"
#include "common/random.hh"
#include "isa/builder.hh"
#include "workloads/workloads.hh"

namespace mcd {
namespace fuzz {

namespace {

// Register conventions of generated programs. The fixed kernels use
// the same split: low registers for scratch, high ones for globals.
constexpr int rChk = 28;        //!< running checksum accumulator
constexpr int rCnt = 27;        //!< loop counter
constexpr int rPtr = 26;        //!< MemStream walk pointer
constexpr int rLcg = 25;        //!< Branchy LCG state
constexpr int rEnd = 24;        //!< MemStream block end
constexpr int rAux = 23;        //!< threshold / stride constant
constexpr int rBase = 22;       //!< MemStream block base

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

int
clampInt(std::uint64_t v, int lo, int hi)
{
    int x = static_cast<int>(v);
    return x < lo ? lo : (x > hi ? hi : x);
}

void
emitIntChain(Builder &b, const PhaseParams &p, int scale, Rng &rng)
{
    // Seed the chain inputs r1..r(1+depth) with phase constants; the
    // loop body is one serial dependence chain through r1, so
    // chainDepth directly sets the attainable ILP of the phase.
    int depth = clampInt(static_cast<std::uint64_t>(p.chainDepth), 1, 8);
    for (int k = 0; k <= depth; ++k)
        b.li(1 + k, static_cast<std::int64_t>(rng.next() >> 16));
    b.li(rCnt, static_cast<std::int64_t>(p.iters) * scale);
    Label top = b.here();
    for (int k = 0; k < depth; ++k) {
        int src = 2 + (k % depth);
        switch (k % 4) {
          case 0: b.add(1, 1, src); break;
          case 1: b.xor_(1, 1, src); break;
          case 2: b.sub(1, 1, src); break;
          case 3: b.mul(1, 1, src); break;
        }
    }
    b.add(rChk, rChk, 1);
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, reg::zero, top);
}

void
emitFpChain(Builder &b, const PhaseParams &p, int scale, Rng &rng)
{
    // Bounded FP chain: alternating fadd/fsub of constants in [0, 1)
    // keeps |f1| <= iters*depth, so the final ftoi can never leave
    // int64 range (which would be undefined behaviour in the
    // functional executor). fadd/fsub are IEEE-exact: bit-identical
    // everywhere.
    int depth = clampInt(static_cast<std::uint64_t>(p.chainDepth), 1, 8);
    std::uint64_t addr0 = 0;
    for (int k = 0; k <= depth; ++k) {
        std::uint64_t a = b.dataDouble(rng.uniform());
        if (k == 0)
            addr0 = a;
    }
    b.li(1, static_cast<std::int64_t>(addr0));
    for (int k = 0; k <= depth; ++k)
        b.fld(1 + k, 1, 8 * k);
    b.li(rCnt, static_cast<std::int64_t>(p.iters) * scale);
    Label top = b.here();
    for (int k = 0; k < depth; ++k) {
        int src = 2 + (k % depth);
        if (k % 2 == 0)
            b.fadd(1, 1, src);
        else
            b.fsub(1, 1, src);
    }
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, reg::zero, top);
    b.ftoi(1, 1);
    b.add(rChk, rChk, 1);
}

void
emitMemStream(Builder &b, const PhaseParams &p, int scale, Rng &rng)
{
    int foot = clampInt(static_cast<std::uint64_t>(p.footprintWords),
                        16, 1 << 16);
    int stride = clampInt(static_cast<std::uint64_t>(p.stride), 1, 64);
    std::uint64_t base = b.dataBlock(static_cast<std::size_t>(foot));
    for (int i = 0; i < foot; ++i)
        b.setDataWord(base + 8 * static_cast<std::uint64_t>(i),
                      rng.next());
    b.li(rBase, static_cast<std::int64_t>(base));
    b.li(rEnd, static_cast<std::int64_t>(base + 8 *
                                         static_cast<std::uint64_t>(foot)));
    b.li(rAux, 8 * stride);
    b.mv(rPtr, rBase);
    b.li(rCnt, static_cast<std::int64_t>(p.iters) * scale);
    Label top = b.here();
    b.ld(1, rPtr, 0);
    b.xor_(rChk, rChk, 1);
    b.st(rChk, rPtr, 0);        // write traffic back into the set
    b.add(rPtr, rPtr, rAux);
    Label inRange = b.newLabel();
    b.blt(rPtr, rEnd, inRange);
    b.mv(rPtr, rBase);          // wrap: footprint bounds the set
    b.bind(inRange);
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, reg::zero, top);
}

void
emitBranchy(Builder &b, const PhaseParams &p, int scale, Rng &rng)
{
    // LCG-driven two-way branch: the taken probability (and so the
    // predictor's attainable accuracy) is takenPercent, threshold
    // against the high bits of the generator state.
    int taken = clampInt(static_cast<std::uint64_t>(p.takenPercent),
                         0, 100);
    b.li(rLcg, static_cast<std::int64_t>(rng.next() | 1));
    b.li(2, static_cast<std::int64_t>(6364136223846793005ULL));
    b.li(rAux, taken * 128 / 100);
    b.li(rCnt, static_cast<std::int64_t>(p.iters) * scale);
    Label top = b.here();
    b.mul(rLcg, rLcg, 2);
    b.addi(rLcg, rLcg, 12345);
    b.srli(1, rLcg, 33);
    b.andi(1, 1, 127);
    Label onTaken = b.newLabel();
    Label done = b.newLabel();
    b.blt(1, rAux, onTaken);
    b.xor_(rChk, rChk, rLcg);   // not-taken arm
    b.j(done);
    b.bind(onTaken);
    b.add(rChk, rChk, rLcg);    // taken arm
    b.bind(done);
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, reg::zero, top);
}

} // namespace

const char *
phaseKindName(PhaseKind k)
{
    switch (k) {
      case PhaseKind::IntChain: return "int";
      case PhaseKind::FpChain: return "fp";
      case PhaseKind::MemStream: return "mem";
      case PhaseKind::Branchy: return "branch";
    }
    return "?";
}

GenParams
GenParams::fromSeed(std::uint64_t seed)
{
    Rng rng = streamRng(seed, "fuzz.gen");
    GenParams p;
    p.seed = seed;
    int n = 1 + static_cast<int>(rng.uniformInt(4));
    for (int i = 0; i < n; ++i) {
        PhaseParams ph;
        ph.kind = static_cast<PhaseKind>(rng.uniformInt(4));
        // Long enough that a DVFS re-lock window is a small fraction
        // of a phase, as with the fixed kernels — the dilation
        // invariant is meaningless on programs shorter than one
        // re-lock (and the soak would drown in scale artifacts).
        ph.iters = 1000 + static_cast<int>(rng.uniformInt(4001));
        ph.chainDepth = 1 + static_cast<int>(rng.uniformInt(8));
        ph.footprintWords = 64 << rng.uniformInt(6);
        ph.stride = 1 + static_cast<int>(rng.uniformInt(8));
        ph.takenPercent = static_cast<int>(rng.uniformInt(101));
        p.phases.push_back(ph);
    }
    return p;
}

std::string
GenParams::spec() const
{
    std::string out = "seed=" + std::to_string(seed);
    for (const PhaseParams &ph : phases) {
        out += ";phase=";
        out += phaseKindName(ph.kind);
        out += ":" + std::to_string(ph.iters);
        out += ":" + std::to_string(ph.chainDepth);
        out += ":" + std::to_string(ph.footprintWords);
        out += ":" + std::to_string(ph.stride);
        out += ":" + std::to_string(ph.takenPercent);
    }
    return out;
}

GenParams
GenParams::fromSpec(const std::string &spec)
{
    auto bad = [&](const std::string &why) {
        fatal("GenParams: malformed spec '" + spec + "': " + why +
              " (grammar: seed=N;phase=<kind>:<iters>:<chain>:"
              "<foot>:<stride>:<taken>;...)");
    };
    GenParams p;
    bool sawSeed = false;
    std::string item;
    std::istringstream ss(spec);
    while (std::getline(ss, item, ';')) {
        if (item.empty())
            continue;
        if (item.rfind("seed=", 0) == 0) {
            char *end = nullptr;
            p.seed = std::strtoull(item.c_str() + 5, &end, 10);
            if (!end || *end)
                bad("seed must be an unsigned integer");
            sawSeed = true;
            continue;
        }
        if (item.rfind("phase=", 0) != 0)
            bad("unknown item '" + item + "'");
        std::string body = item.substr(6);
        std::vector<std::string> f;
        std::string field;
        std::istringstream fs(body);
        while (std::getline(fs, field, ':'))
            f.push_back(field);
        if (f.size() != 6)
            bad("phase needs 6 ':'-separated fields");
        PhaseParams ph;
        if (f[0] == "int")
            ph.kind = PhaseKind::IntChain;
        else if (f[0] == "fp")
            ph.kind = PhaseKind::FpChain;
        else if (f[0] == "mem")
            ph.kind = PhaseKind::MemStream;
        else if (f[0] == "branch")
            ph.kind = PhaseKind::Branchy;
        else
            bad("unknown phase kind '" + f[0] + "'");
        int *dst[5] = {&ph.iters, &ph.chainDepth, &ph.footprintWords,
                       &ph.stride, &ph.takenPercent};
        for (int i = 0; i < 5; ++i) {
            char *end = nullptr;
            long v = std::strtol(f[i + 1].c_str(), &end, 10);
            if (!end || *end || f[i + 1].empty())
                bad("phase field " + std::to_string(i + 1) +
                    " must be an integer");
            *dst[i] = static_cast<int>(v);
        }
        if (ph.iters < 1)
            bad("phase iters must be >= 1");
        p.phases.push_back(ph);
    }
    if (!sawSeed)
        bad("missing seed=");
    if (p.phases.empty())
        bad("at least one phase required");
    return p;
}

std::string
GenParams::workloadName() const
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "fuzz-%016llx",
                  static_cast<unsigned long long>(fnv1a(spec())));
    return buf;
}

Program
GenParams::generate(int scale) const
{
    if (phases.empty())
        fatal("GenParams::generate: no phases");
    if (scale < 1)
        fatal("GenParams::generate: scale must be >= 1");
    Builder b(workloadName());
    Rng data = streamRng(seed, "fuzz.data");
    b.li(rChk, static_cast<std::int64_t>(
             streamSeed(seed, "fuzz.checksum")));
    for (const PhaseParams &ph : phases) {
        switch (ph.kind) {
          case PhaseKind::IntChain:
            emitIntChain(b, ph, scale, data);
            break;
          case PhaseKind::FpChain:
            emitFpChain(b, ph, scale, data);
            break;
          case PhaseKind::MemStream:
            emitMemStream(b, ph, scale, data);
            break;
          case PhaseKind::Branchy:
            emitBranchy(b, ph, scale, data);
            break;
        }
    }
    b.mv(checksumReg, rChk);
    b.halt();
    return b.build();
}

namespace {

std::mutex internMutex;
std::map<std::string, GenParams> &
internTable()
{
    static std::map<std::string, GenParams> table;
    return table;
}

Program
buildInterned(const std::string &name, int scale)
{
    const GenParams *p = findWorkload(name);
    if (!p)
        fatal("generated workload '" + name +
              "' was never interned in this process (replay the "
              "scenario through its repro file, which carries the "
              "generator spec)");
    return p->generate(scale);
}

} // namespace

std::string
internWorkload(const GenParams &params)
{
    std::string name = params.workloadName();
    static std::once_flag once;
    std::call_once(once, [] {
        workloads::registerGenerator("fuzz-", buildInterned);
    });
    std::lock_guard<std::mutex> lock(internMutex);
    internTable().emplace(name, params);
    return name;
}

const GenParams *
findWorkload(const std::string &name)
{
    std::lock_guard<std::mutex> lock(internMutex);
    auto it = internTable().find(name);
    return it == internTable().end() ? nullptr : &it->second;
}

} // namespace fuzz
} // namespace mcd
