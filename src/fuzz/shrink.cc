#include "shrink.hh"

#include <sstream>
#include <vector>

namespace mcd {
namespace fuzz {

namespace {

/** Split @p s on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream ss(s);
    while (std::getline(ss, item, sep)) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

std::string
join(const std::vector<std::string> &items, char sep)
{
    std::string out;
    for (const std::string &i : items) {
        if (!out.empty())
            out += sep;
        out += i;
    }
    return out;
}

/** A candidate is worth running only if it still validates. */
bool
candidateValid(const Scenario &s)
{
    try {
        return s.toConfig().validateAll().empty();
    } catch (const std::exception &) {
        return false;       // a spec failed to parse at all
    }
}

/** Structural size: what the shrinker is monotonically decreasing. */
std::uint64_t
sizeOf(const Scenario &s)
{
    std::uint64_t n = 0;
    for (const PhaseParams &p : s.workload.phases) {
        n += static_cast<std::uint64_t>(p.iters);
        n += static_cast<std::uint64_t>(p.chainDepth);
        n += static_cast<std::uint64_t>(p.footprintWords);
    }
    n += 1000 * split(s.legsSpec, '|').size();
    n += 1000 * split(s.faultSpec, ';').size();
    n += 1000 * split(s.plantedSpec, ';').size();
    n += s.configSpec.size();
    return n;
}

/**
 * All one-step-smaller variants of @p s, in a deterministic order.
 * Invalid variants (e.g. a leg set whose global-search reference was
 * dropped) are filtered by the caller before spending an oracle run.
 */
std::vector<Scenario>
candidatesOf(const Scenario &s)
{
    std::vector<Scenario> out;

    // Drop one leg.
    std::vector<std::string> legs = split(s.legsSpec, '|');
    if (legs.size() > 1) {
        for (std::size_t i = 0; i < legs.size(); ++i) {
            std::vector<std::string> fewer = legs;
            fewer.erase(fewer.begin() +
                        static_cast<std::ptrdiff_t>(i));
            Scenario c = s;
            c.legsSpec = join(fewer, '|');
            out.push_back(std::move(c));
        }
    }

    // Drop one declared or planted fault entry.
    for (int which = 0; which < 2; ++which) {
        const std::string &spec = which ? s.plantedSpec : s.faultSpec;
        std::vector<std::string> items = split(spec, ';');
        for (std::size_t i = 0; i < items.size(); ++i) {
            std::vector<std::string> fewer = items;
            fewer.erase(fewer.begin() +
                        static_cast<std::ptrdiff_t>(i));
            Scenario c = s;
            (which ? c.plantedSpec : c.faultSpec) = join(fewer, ';');
            out.push_back(std::move(c));
        }
    }

    // Drop one program phase.
    if (s.workload.phases.size() > 1) {
        for (std::size_t i = 0; i < s.workload.phases.size(); ++i) {
            Scenario c = s;
            c.workload.phases.erase(
                c.workload.phases.begin() +
                static_cast<std::ptrdiff_t>(i));
            out.push_back(std::move(c));
        }
    }

    // Halve numeric phase dimensions.
    for (std::size_t i = 0; i < s.workload.phases.size(); ++i) {
        const PhaseParams &p = s.workload.phases[i];
        if (p.iters > 1) {
            Scenario c = s;
            c.workload.phases[i].iters = p.iters / 2;
            out.push_back(std::move(c));
        }
        if (p.chainDepth > 1) {
            Scenario c = s;
            c.workload.phases[i].chainDepth = p.chainDepth / 2;
            out.push_back(std::move(c));
        }
        if (p.footprintWords > 16) {
            Scenario c = s;
            c.workload.phases[i].footprintWords = p.footprintWords / 2;
            out.push_back(std::move(c));
        }
    }

    // Strip sampling (one less moving part in the repro).
    {
        std::vector<std::string> kept;
        bool had = false;
        for (const std::string &item : split(s.configSpec, ';')) {
            if (item.rfind("sampling=", 0) == 0)
                had = true;
            else
                kept.push_back(item);
        }
        if (had) {
            Scenario c = s;
            c.configSpec = join(kept, ';');
            out.push_back(std::move(c));
        }
    }
    return out;
}

} // namespace

ShrinkResult
shrinkScenario(const Scenario &failing, const Outcome &baseline,
               int maxRuns, ShrinkOracle oracle)
{
    if (!oracle)
        oracle = [](const Scenario &s) { return runScenario(s); };

    ShrinkResult res;
    res.minimized = failing;
    res.outcome = baseline;

    bool progressed = true;
    while (progressed && res.runs < maxRuns) {
        progressed = false;
        for (Scenario &cand : candidatesOf(res.minimized)) {
            if (res.runs >= maxRuns)
                break;
            if (sizeOf(cand) >= sizeOf(res.minimized))
                continue;   // paranoia: only ever move downhill
            if (!candidateValid(cand))
                continue;
            ++res.runs;
            Outcome o = oracle(cand);
            if (o.cls == baseline.cls &&
                o.signature == baseline.signature) {
                res.minimized = std::move(cand);
                res.outcome = std::move(o);
                ++res.reductions;
                progressed = true;
                break;      // restart passes from the smaller base
            }
        }
    }
    return res;
}

} // namespace fuzz
} // namespace mcd
