#include "config_fuzzer.hh"

#include <string>
#include <vector>

#include "common/log.hh"
#include "common/random.hh"
#include "control/registry.hh"

namespace mcd {
namespace fuzz {

Scenario
ConfigFuzzer::tuple(std::uint64_t index) const
{
    Scenario s;
    s.workload = GenParams::fromSeed(
        streamSeedAt(root, "fuzz.workload", index));

    Rng rng(streamSeedAt(root, "fuzz.config", index));

    // Alternate models deterministically instead of sampling, so any
    // budget >= 2 is guaranteed to cover both (acceptance criterion:
    // "across both DVFS models").
    const char *model = (index % 2 == 0) ? "XScale" : "Transmeta";

    const double timescales[] = {0.05, 0.1};
    const double dilhis[] = {0.03, 0.05, 0.08};
    double timescale = timescales[rng.uniformInt(2)];
    double dilhi = dilhis[rng.uniformInt(3)];

    s.configSpec = std::string("model=") + model +
        ";timescale=" + std::to_string(timescale) +
        ";dillo=0.01;dilhi=" + std::to_string(dilhi) +
        ";seed=" + std::to_string(1 + rng.uniformInt(1'000'000)) +
        // Small enough that a stalled leg trips in milliseconds of
        // host time, 25x above the longest legitimate no-commit
        // stretch (one Transmeta re-lock window, ~40K edges).
        ";wdedges=1000000";
    if (rng.uniform() < 0.2)
        s.configSpec += ";sampling=detailed=1000,ff=4000,warmup=250";

    // Leg set: always the dyn5 replay oracle (reliable frequency
    // rises, the vfmisorder trigger), plus optional companions.
    std::vector<LegSpec> legs;
    legs.push_back(LegSpec::scheduleReplay("dyn5", dilhi));
    if (rng.uniform() < 0.3)
        legs.push_back(LegSpec::scheduleReplay("dyn1", 0.01));
    if (rng.uniform() < 0.3)
        legs.push_back(LegSpec::globalSearch("global", "dyn5"));
    if (rng.uniform() < 0.6) {
        const std::vector<std::string> &names =
            ControllerRegistry::instance().names();
        if (!names.empty()) {
            const std::string &n = names[rng.uniformInt(names.size())];
            legs.push_back(LegSpec::controllerLeg(n, n));
        }
    }
    // Leg name = controller name may duplicate; dedupe by name.
    std::vector<LegSpec> unique;
    for (const LegSpec &l : legs) {
        bool dup = false;
        for (const LegSpec &u : unique)
            dup = dup || u.name == l.name;
        if (!dup)
            unique.push_back(l);
    }
    s.legsSpec = legsToSpec(unique);

    // Declared fault plan (~1 in 3 tuples): recovery-path exercise
    // whose expected outcome classifies as ok.
    if (rng.uniform() < 0.35) {
        const LegSpec &target = unique[rng.uniformInt(unique.size())];
        switch (rng.uniformInt(4)) {
          case 0:
            s.faultSpec = "leg:@/" + target.name + "=throw";
            break;
          case 1:
            // flaky:1 with attempts=2 recovers via the bounded retry.
            s.faultSpec = "leg:@/" + target.name + "=flaky:1";
            break;
          case 2:
            s.faultSpec = "leg:@/" + target.name + "=stall";
            break;
          case 3:
            s.faultSpec = "leg:@/dyn5=vfmisorder";
            break;
        }
    }

    // Enforce the valid-by-construction contract.
    ExperimentConfig cfg = s.toConfig();
    std::vector<std::string> errs = cfg.validateAll();
    if (!errs.empty())
        panic("ConfigFuzzer: tuple " + std::to_string(index) +
              " sampled an invalid configuration: " + errs.front());
    return s;
}

} // namespace fuzz
} // namespace mcd
