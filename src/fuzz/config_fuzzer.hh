/**
 * @file
 * Valid-by-construction scenario sampling for the soak driver.
 *
 * The fuzzer samples every interesting experiment dimension — DVFS
 * model, transition time scale, dilation targets, leg set (replay /
 * global-search / controller-registry legs), sampled vs full-detail
 * simulation, and a declared fault plan — from independent named
 * streams of one root seed (common/random.hh), so tuple(i) is a pure
 * function of (rootSeed, i): the same tuple index always denotes the
 * same scenario, which is what makes the soak journal resumable and
 * every finding replayable from its index alone.
 *
 * "Valid by construction" is enforced, not assumed: every sampled
 * scenario is pushed through ExperimentConfig::validateAll(), and a
 * non-empty defect list is a panic (a fuzzer bug, not a finding).
 */

#ifndef MCD_FUZZ_CONFIG_FUZZER_HH
#define MCD_FUZZ_CONFIG_FUZZER_HH

#include <cstdint>

#include "fuzz/scenario.hh"

namespace mcd {
namespace fuzz {

class ConfigFuzzer
{
  public:
    explicit ConfigFuzzer(std::uint64_t root_seed)
        : root(root_seed)
    {}

    /**
     * The scenario of tuple @p index: deterministic, validated.
     * Alternating tuples use alternating DVFS models, so any budget
     * >= 2 covers both.
     */
    Scenario tuple(std::uint64_t index) const;

  private:
    std::uint64_t root;
};

} // namespace fuzz
} // namespace mcd

#endif // MCD_FUZZ_CONFIG_FUZZER_HH
