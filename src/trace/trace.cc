#include "trace.hh"

namespace mcd {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Fetch: return "fetch";
      case EventKind::Dispatch: return "dispatch";
      case EventKind::AddrCalc: return "addr-calc";
      case EventKind::MemAccess: return "mem-access";
      case EventKind::Execute: return "execute";
      case EventKind::Commit: return "commit";
    }
    return "?";
}

} // namespace mcd
