/**
 * @file
 * The primitive-event trace collected during a full-speed profiling
 * run (paper Section 3.2).
 *
 * Each committed instruction yields one compact record carrying the
 * timestamps of its primitive events (fetch, dispatch, address
 * calculation, memory access, execute, commit) and the dynamic
 * sequence numbers of its register-data producers. The offline
 * analysis tool materializes the paper's dependence DAG from these
 * records plus the machine configuration (functional dependences
 * through shared hardware and finite queues are reconstructed there).
 */

#ifndef MCD_TRACE_TRACE_HH
#define MCD_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace mcd {

/** Primitive event kinds (paper's five-event decomposition). */
enum class EventKind : std::uint8_t {
    Fetch = 0,
    Dispatch,
    AddrCalc,   //!< memory ops only (integer-domain event)
    MemAccess,  //!< memory ops only (load/store-domain event)
    Execute,    //!< non-memory ops
    Commit,
};

const char *eventKindName(EventKind k);

/** Trace record for one committed instruction. */
struct InstTrace
{
    std::uint64_t seq = 0;
    Opcode op = Opcode::NOP;
    FuClass fu = FuClass::None;

    /** Register-data producers (dynamic seq; 0 = none). */
    std::uint64_t dep1 = 0;
    std::uint64_t dep2 = 0;

    /** This instruction was a mispredicted control transfer: fetch of
     *  everything younger waited for its resolution. */
    bool mispredicted = false;

    // Event timestamps, absolute picoseconds.
    Tick fetchTime = 0;
    Tick dispatchTime = 0;
    Tick issueTime = 0;     //!< execute/addr-calc start
    Tick execDone = 0;      //!< execute/addr-calc result ready
    Tick memIssue = 0;      //!< memory access start (mem ops)
    Tick memDone = 0;       //!< memory access complete (mem ops)
    Tick memFixed = 0;      //!< main-memory (unscalable) latency part
    Tick commitTime = 0;

    bool isMem() const { return mcd::isMem(op); }
    bool isLoadOp() const { return isLoad(op); }
    bool isFpOp() const { return isFp(op); }

    /** Domain of the execute / addr-calc event. */
    Domain
    execEventDomain() const
    {
        // Address calculation happens on the integer AGUs.
        if (isMem())
            return Domain::Integer;
        return execDomain(op);
    }
};

/**
 * Accumulates InstTrace records during a profiling run.
 */
class TraceCollector
{
  public:
    void enable(bool on = true) { enabled = on; }
    bool isEnabled() const { return enabled; }

    void
    record(const InstTrace &t)
    {
        if (enabled)
            records.push_back(t);
    }

    const std::vector<InstTrace> &trace() const { return records; }

    /** Move the records out (the collector is left empty). Lets the
     *  experiment engine keep a profiling trace alive after the
     *  processor that produced it is destroyed, without a copy. */
    std::vector<InstTrace> take() { return std::move(records); }

    std::size_t size() const { return records.size(); }
    void clear() { records.clear(); }
    void reserve(std::size_t n) { records.reserve(n); }
    std::size_t capacity() const { return records.capacity(); }

  private:
    bool enabled = false;
    std::vector<InstTrace> records;
};

} // namespace mcd

#endif // MCD_TRACE_TRACE_HH
