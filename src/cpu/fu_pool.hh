/**
 * @file
 * Functional-unit pools: per-cycle issue bandwidth for pipelined units
 * and busy-until tracking for unpipelined ones (integer mul/div, FP
 * mul/div/sqrt), per paper Table 1 (4+1 integer, 2+1 FP units).
 */

#ifndef MCD_CPU_FU_POOL_HH
#define MCD_CPU_FU_POOL_HH

#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace mcd {

/**
 * A pool of identical functional units.
 *
 * Pipelined units accept one operation per unit per cycle; unpipelined
 * units stay busy for the operation's full latency.
 */
class FuPool
{
  public:
    FuPool(int units, bool pipelined)
        : numUnits(units), isPipelined(pipelined),
          busyUntil(units, 0)
    {}

    /** Reset per-cycle issue accounting (call at each domain edge). */
    void
    newCycle()
    {
        issuedThisCycle = 0;
    }

    /** Can an operation start at edge time @p now? */
    bool
    canIssue(Tick now) const
    {
        if (isPipelined)
            return issuedThisCycle < numUnits;
        for (Tick t : busyUntil) {
            if (t <= now)
                return true;
        }
        return false;
    }

    /**
     * Claim a unit for an operation finishing at @p done.
     * Requires canIssue(now).
     */
    void
    issue(Tick now, Tick done)
    {
        if (isPipelined) {
            ++issuedThisCycle;
            return;
        }
        for (Tick &t : busyUntil) {
            if (t <= now) {
                t = done;
                return;
            }
        }
    }

    int units() const { return numUnits; }

  private:
    int numUnits;
    bool isPipelined;
    int issuedThisCycle = 0;
    std::vector<Tick> busyUntil;
};

} // namespace mcd

#endif // MCD_CPU_FU_POOL_HH
