/**
 * @file
 * Physical register management: rename maps, free lists, and the
 * cross-domain readiness scoreboard.
 *
 * A result produced in one clock domain becomes visible to a consumer
 * in another only after synchronization (paper Section 2.2); the
 * scoreboard therefore records, per physical register, the completion
 * time and producing domain, and readiness is evaluated against the
 * consumer's clock edge with the appropriate SyncRule.
 */

#ifndef MCD_CPU_REGFILE_HH
#define MCD_CPU_REGFILE_HH

#include <cstdint>
#include <vector>

#include "clock/sync.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "cpu/dyn_inst.hh"
#include "isa/inst.hh"

namespace mcd {

/**
 * One register file's rename state (integer or FP).
 */
class RenameState
{
  public:
    RenameState(int arch_regs, int phys_regs)
        : archRegs(arch_regs)
    {
        map.resize(arch_regs);
        lastWriter.assign(arch_regs, 0);
        for (int i = 0; i < arch_regs; ++i)
            map[i] = i;
        for (int i = arch_regs; i < phys_regs; ++i)
            freeList.push_back(i);
        ready.assign(phys_regs, true);
        readyTime.assign(phys_regs, 0);
        producer.assign(phys_regs, static_cast<int>(Domain::FrontEnd));
        producerSeq.assign(phys_regs, 0);
    }

    bool hasFree() const { return !freeList.empty(); }

    /** Current physical mapping of an architectural register. */
    int lookup(int arch) const { return map[arch]; }

    /** Seq of the most recent writer of an architectural register. */
    std::uint64_t lastWriterSeq(int arch) const { return lastWriter[arch]; }

    /**
     * Allocate a new physical register for @p arch; returns
     * {newPhys, oldPhys}.
     */
    std::pair<int, int>
    allocate(int arch, std::uint64_t writer_seq)
    {
        mcdAssert(!freeList.empty(), "rename: no free physical register");
        int phys = freeList.back();
        freeList.pop_back();
        int old = map[arch];
        map[arch] = phys;
        lastWriter[arch] = writer_seq;
        ready[phys] = false;
        readyTime[phys] = 0;
        return {phys, old};
    }

    /** Return a physical register to the free list (at commit). */
    void
    release(int phys)
    {
        freeList.push_back(phys);
    }

    /** Mark a physical register's value produced. */
    void
    markReady(int phys, Tick when, Domain prod, std::uint64_t seq)
    {
        ready[phys] = true;
        readyTime[phys] = when;
        producer[phys] = static_cast<int>(prod);
        producerSeq[phys] = seq;
    }

    bool isReady(int phys) const { return ready[phys]; }
    Tick readyAt(int phys) const { return readyTime[phys]; }
    Domain producedBy(int phys) const
    { return static_cast<Domain>(producer[phys]); }
    std::uint64_t producerOf(int phys) const { return producerSeq[phys]; }

    int freeCount() const { return static_cast<int>(freeList.size()); }

  private:
    int archRegs;
    std::vector<int> map;
    std::vector<std::uint64_t> lastWriter;
    std::vector<int> freeList;
    std::vector<char> ready;
    std::vector<Tick> readyTime;
    std::vector<int> producer;
    std::vector<std::uint64_t> producerSeq;
};

} // namespace mcd

#endif // MCD_CPU_REGFILE_HH
