/**
 * @file
 * Front-end domain unit: fetch, branch prediction, rename, dispatch,
 * ROB, and commit (paper Section 2, Table 1).
 *
 * Fetches the architecturally correct path from the functional
 * oracle; on a misprediction, fetch stalls until the branch resolves
 * in its back-end domain, pays the inter-domain synchronization delay
 * on the resolution signal, then a 7-cycle refill penalty (wrong-path
 * fetch activity is charged to the front-end power model during the
 * stall). Work leaves this unit only through the dispatch ports
 * (issue queues, LSQ) and returns through the credit channels and the
 * completion gate — every crossing synchronized and counted at the
 * port.
 */

#ifndef MCD_CPU_FRONT_END_UNIT_HH
#define MCD_CPU_FRONT_END_UNIT_HH

#include "common/ring_buffer.hh"
#include "cpu/bpred.hh"
#include "cpu/core_shared.hh"

namespace mcd {

class FrontEndUnit
{
  public:
    FrontEndUnit(CoreShared &shared, DomainPorts &ports)
        : s(shared), p(ports), predictor(shared.cfg.bpred),
          lsqFree(shared.cfg.lsqSize)
    {
        fetchQueue.reserve(
            static_cast<std::size_t>(shared.cfg.fetchQueueSize));
        rob.reserve(static_cast<std::size_t>(shared.cfg.robSize));
    }

    /** One front-end cycle at edge time @p now. */
    void
    tick(Tick now)
    {
        commitStage(now);
        renameDispatchStage(now);
        fetchStage(now);
    }

    const BranchPredictor &bpred() const { return predictor; }

    /** ROB occupancy (the front end's primary queue). */
    std::size_t robLength() const { return rob.size(); }

    /** Has the HALT instruction been fetched (and so entered the
     *  window)? Sampling uses this to stop scheduling fast-forwards. */
    bool haltSeen() const { return haltFetched; }

    /** Warm the branch predictor with one functionally fast-forwarded
     *  instruction (sampled simulation; no DynInst is allocated). */
    void warmFastForward(const ExecResult &er);

    /** Ring reallocations across the front end's own queues. */
    std::uint64_t ringGrows() const
    { return fetchQueue.grows() + rob.grows(); }

  private:
    void commitStage(Tick now);
    void renameDispatchStage(Tick now);
    void fetchStage(Tick now);
    bool dispatchOne(DynInst *in, Tick now);
    void recordTrace(const DynInst *in);

    CoreShared &s;
    DomainPorts &p;

    BranchPredictor predictor;
    RingDeque<DynInst *> fetchQueue;
    RingDeque<DynInst *> rob;
    int lsqFree;

    // Fetch state.
    bool haltFetched = false;
    Tick fetchReadyTime = 0;    //!< earliest next fetch (I-miss, redirect)
    DynInst *stallBranch = nullptr;
    int redirectPenaltyLeft = 0;
    int wrongPathChargeLeft = 0;    //!< stall cycles that still fetch
};

} // namespace mcd

#endif // MCD_CPU_FRONT_END_UNIT_HH
