/**
 * @file
 * Floating-point domain unit: 15-entry issue queue, 2 ALUs +
 * mul/div/sqrt unit.
 *
 * Consumes dispatched work from the fpIq SyncPort (front end -> FP),
 * reads operands over the cross-domain result bus, and returns
 * issue-queue credits through the synchronized credit channel.
 */

#ifndef MCD_CPU_FP_UNIT_HH
#define MCD_CPU_FP_UNIT_HH

#include "cpu/core_shared.hh"
#include "cpu/fu_pool.hh"

namespace mcd {

class FpUnit
{
  public:
    FpUnit(CoreShared &shared, DomainPorts &ports)
        : s(shared), p(ports),
          aluPool(shared.cfg.fpAlus, true),
          mulDivPool(shared.cfg.fpMulDivs, false)
    {}

    /** One floating-point-domain cycle at edge time @p now. */
    void tick(Tick now);

    std::size_t queueLength() const { return p.fpIq.size(); }

  private:
    CoreShared &s;
    DomainPorts &p;

    FuPool aluPool;
    FuPool mulDivPool;
};

} // namespace mcd

#endif // MCD_CPU_FP_UNIT_HH
