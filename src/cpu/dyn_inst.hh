/**
 * @file
 * The in-flight (dynamic) instruction record shared by all pipeline
 * structures, and its lifecycle timestamps. Timestamps double as the
 * primitive-event trace consumed by the offline analysis tool.
 *
 * The record is split hot/cold: DynInst keeps only the fields the
 * timing loops read per cycle (status bits, physical registers, the
 * completion timestamps), while fields written once and read only at
 * trace-record time (oracle outcomes, dependence seqs, issue-side
 * timestamps) live in a parallel DynInstCold record owned by the
 * InstWindow arena. The issue-queue and LSQ scans walk roughly half
 * the bytes per instruction as a result.
 */

#ifndef MCD_CPU_DYN_INST_HH
#define MCD_CPU_DYN_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/inst.hh"

namespace mcd {

/** Sentinel for "no physical register". */
inline constexpr int noReg = -1;

/**
 * Cold half of one in-flight instruction: archival oracle outcomes
 * and timestamps read only when the trace record is emitted at
 * commit. Allocated alongside the DynInst in the InstWindow.
 */
struct DynInstCold
{
    std::uint64_t pc = 0;
    bool taken = false;             //!< oracle branch outcome
    std::uint64_t nextPc = 0;
    bool predictedTaken = false;

    std::uint64_t src1Producer = 0; //!< seq of producing inst (0 = none)
    std::uint64_t src2Producer = 0;

    Tick issueTime = 0;
    Tick memIssueTime = 0;
    Tick memFixedLat = 0;           //!< DRAM (unscalable) part of latency
    Tick commitTime = 0;
};

/** One in-flight instruction (hot half). */
struct DynInst
{
    std::uint64_t seq = 0;      //!< dynamic instruction number
    Inst inst;
    std::uint64_t memAddr = 0;
    bool isHalt = false;

    // Branch prediction state.
    bool mispredicted = false;

    // Pipeline status.
    bool dispatched = false;
    bool issued = false;        //!< execute (or addr-gen) issued
    bool executed = false;      //!< execute event finished
    bool memIssued = false;
    bool memDone = false;
    bool retired = false;

    // Rename state.
    int destPhys = noReg;
    int oldDestPhys = noReg;    //!< freed at commit
    DestKind dest = DestKind::None;
    int src1Phys = noReg;       //!< noReg when no (live) source
    int src2Phys = noReg;
    bool src1Fp = false;        //!< src1 lives in the FP register file
    bool src2Fp = false;

    // Timestamps the pipeline re-reads (absolute picoseconds).
    Tick fetchTime = 0;         //!< entered the fetch queue
    Tick dispatchTime = 0;      //!< renamed + dispatched
    Tick execDoneTime = 0;      //!< ALU / addr-gen result ready
    Tick memDoneTime = 0;       //!< cache access complete

    /** Trace-only fields; points into the InstWindow's cold array. */
    DynInstCold *cold = nullptr;

    bool isLoadOp() const { return isLoad(inst.op); }
    bool isStoreOp() const { return isStore(inst.op); }
    bool isMemOp() const { return isMem(inst.op); }
    bool isBranchOp() const { return isBranch(inst.op); }
    bool isControlOp() const { return isControl(inst.op); }

    /** The time at which this instruction is ready to retire, and the
     *  domain that produced that signal. */
    Tick
    completionTime() const
    {
        if (isMemOp())
            return memDoneTime;
        return execDoneTime;
    }

    Domain
    completionDomain() const
    {
        if (isMemOp())
            return Domain::LoadStore;
        if (isHalt || inst.op == Opcode::NOP)
            return Domain::FrontEnd;
        return execDomain(inst.op);
    }
};

} // namespace mcd

#endif // MCD_CPU_DYN_INST_HH
