/**
 * @file
 * The in-flight (dynamic) instruction record shared by all pipeline
 * structures, and its lifecycle timestamps. Timestamps double as the
 * primitive-event trace consumed by the offline analysis tool.
 */

#ifndef MCD_CPU_DYN_INST_HH
#define MCD_CPU_DYN_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/inst.hh"

namespace mcd {

/** Sentinel for "no physical register". */
inline constexpr int noReg = -1;

/** One in-flight instruction. */
struct DynInst
{
    std::uint64_t seq = 0;      //!< dynamic instruction number
    std::uint64_t pc = 0;
    Inst inst;

    // Oracle outcomes.
    bool taken = false;
    std::uint64_t nextPc = 0;
    std::uint64_t memAddr = 0;
    bool isHalt = false;

    // Branch prediction state.
    bool predictedTaken = false;
    bool mispredicted = false;

    // Rename state.
    int destPhys = noReg;
    int oldDestPhys = noReg;    //!< freed at commit
    DestKind dest = DestKind::None;
    int src1Phys = noReg;       //!< noReg when no (live) source
    int src2Phys = noReg;
    bool src1Fp = false;        //!< src1 lives in the FP register file
    bool src2Fp = false;
    std::uint64_t src1Producer = 0; //!< seq of producing inst (0 = none)
    std::uint64_t src2Producer = 0;

    // Pipeline status.
    bool dispatched = false;
    bool issued = false;        //!< execute (or addr-gen) issued
    bool executed = false;      //!< execute event finished
    bool memIssued = false;
    bool memDone = false;
    bool retired = false;

    // Timestamps (absolute picoseconds).
    Tick fetchTime = 0;         //!< entered the fetch queue
    Tick dispatchTime = 0;      //!< renamed + dispatched
    Tick issueTime = 0;
    Tick execDoneTime = 0;      //!< ALU / addr-gen result ready
    Tick memIssueTime = 0;
    Tick memDoneTime = 0;       //!< cache access complete
    Tick memFixedLat = 0;       //!< DRAM (unscalable) part of latency
    Tick commitTime = 0;

    bool isLoadOp() const { return isLoad(inst.op); }
    bool isStoreOp() const { return isStore(inst.op); }
    bool isMemOp() const { return isMem(inst.op); }
    bool isBranchOp() const { return isBranch(inst.op); }
    bool isControlOp() const { return isControl(inst.op); }

    /** The time at which this instruction is ready to retire, and the
     *  domain that produced that signal. */
    Tick
    completionTime() const
    {
        if (isMemOp())
            return memDoneTime;
        return execDoneTime;
    }

    Domain
    completionDomain() const
    {
        if (isMemOp())
            return Domain::LoadStore;
        if (isHalt || inst.op == Opcode::NOP)
            return Domain::FrontEnd;
        return execDomain(inst.op);
    }
};

} // namespace mcd

#endif // MCD_CPU_DYN_INST_HH
