/**
 * @file
 * Fixed-capacity ring arena for the in-flight instruction window.
 *
 * Every in-flight instruction lives in exactly one window slot from
 * fetch to commit, and the machine's structural limits bound the
 * in-flight count by robSize + fetchQueueSize (an instruction is in
 * the fetch queue or the ROB, never both, and each is capacity-
 * checked before insertion). So the window is a ring of pre-allocated
 * slots: allocation is a head/count bump, reclamation at commit pops
 * the head, and slot addresses are stable for the whole in-flight
 * lifetime — the property every DynInst* held by the issue queues,
 * LSQ port, and ROB depends on (std::deque provided it via per-block
 * allocation; the ring provides it with zero steady-state allocator
 * traffic).
 *
 * The hot DynInst records and the cold trace-only records
 * (DynInstCold) are parallel arrays: the timing loops touch only the
 * hot array, roughly halving the bytes per instruction the scan paths
 * pull through the cache. See DESIGN.md section 11.
 */

#ifndef MCD_CPU_INST_WINDOW_HH
#define MCD_CPU_INST_WINDOW_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"
#include "cpu/dyn_inst.hh"

namespace mcd {

class InstWindow
{
  public:
    explicit InstWindow(int capacity)
        : slots(static_cast<std::size_t>(capacity)),
          colds(static_cast<std::size_t>(capacity))
    {}

    /** Allocate the next slot (fetch): a fresh DynInst + cold record. */
    DynInst *
    emplace_back()
    {
        if (count == slots.size())
            panic("InstWindow overflow: in-flight count exceeded "
                  "robSize + fetchQueueSize");
        std::size_t i = index(count);
        slots[i] = DynInst{};
        colds[i] = DynInstCold{};
        slots[i].cold = &colds[i];
        ++count;
        if (count > peak)
            peak = count;
        return &slots[i];
    }

    DynInst &front() { return slots[head]; }
    const DynInst &front() const { return slots[head]; }

    /** Reclaim the oldest slot (commit). */
    void
    pop_front()
    {
        head = index(1);
        --count;
        if (!count)
            head = 0;
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    std::size_t capacity() const { return slots.size(); }

    /** In-flight high-water mark over the run. */
    std::size_t highWater() const { return peak; }

  private:
    std::size_t
    index(std::size_t i) const
    {
        std::size_t j = head + i;
        return j >= slots.size() ? j - slots.size() : j;
    }

    std::vector<DynInst> slots;
    std::vector<DynInstCold> colds;
    std::size_t head = 0;
    std::size_t count = 0;
    std::size_t peak = 0;
};

} // namespace mcd

#endif // MCD_CPU_INST_WINDOW_HH
