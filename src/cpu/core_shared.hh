/**
 * @file
 * State shared by the four per-domain execution units, and the typed
 * synchronization ports wiring them together.
 *
 * The units (front_end_unit / int_unit / fp_unit / ls_unit) model the
 * paper's GALS machine: each owns the structures clocked by its
 * domain and touches another domain's work only through the ports in
 * DomainPorts, where the SyncRule of the (source, destination) pair
 * is applied and blocked probes are counted. CoreShared carries the
 * genuinely global machine state: the in-flight instruction window
 * (allocated at fetch, reclaimed at commit), the rename/scoreboard
 * state the result bus reads, and the references to the oracle,
 * memory hierarchy, power model, and trace collector.
 */

#ifndef MCD_CPU_CORE_SHARED_HH
#define MCD_CPU_CORE_SHARED_HH

#include <array>
#include <vector>

#include "clock/clock_domain.hh"
#include "clock/sync.hh"
#include "common/ring_buffer.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/inst_window.hh"
#include "cpu/params.hh"
#include "cpu/pipeline_stats.hh"
#include "cpu/regfile.hh"
#include "isa/executor.hh"
#include "mem/hierarchy.hh"
#include "power/power_model.hh"
#include "trace/trace.hh"

namespace mcd {

class SamplingPolicy;   // core/sampling.hh; only sampled runs bind one

/**
 * Register-result visibility across domains: a consumer may read a
 * physical register only once the producing domain's write has
 * crossed under the (producer, consumer) rule. The producer identity
 * lives in the rename scoreboard, so this port reads RenameState and
 * applies the rule — the one boundary crossing that is a broadcast
 * (any domain to any domain) rather than a point-to-point queue.
 */
class ResultBus
{
  public:
    ResultBus(const RenameState &int_rename, const RenameState &fp_rename)
        : intRename(int_rename), fpRename(fp_rename)
    {}

    void
    setRule(Domain from, Domain to, SyncRule rule)
    {
        rules[domainIndex(from)][domainIndex(to)] = rule;
    }

    /** May @p consumer read physical register @p phys at @p now? */
    bool
    ready(int phys, bool is_fp, Domain consumer, Tick now) const
    {
        if (phys == noReg)
            return true;
        const RenameState &rs = is_fp ? fpRename : intRename;
        if (!rs.isReady(phys))
            return false;
        return rules[domainIndex(rs.producedBy(phys))]
                    [domainIndex(consumer)]
            .visible(rs.readyAt(phys), now);
    }

  private:
    const RenameState &intRename;
    const RenameState &fpRename;
    std::array<std::array<SyncRule, numDomains>, numDomains> rules{};
};

/**
 * Every inter-unit wire of the machine. Constructed by CoreUnits once
 * the rule matrix is known; the units hold references.
 */
struct DomainPorts
{
    DomainPorts(const RenameState &int_rename,
                const RenameState &fp_rename,
                int int_iq_credits, int fp_iq_credits, int lsq_capacity)
        : intIqCredits(SyncRule(false, 0), int_iq_credits),
          fpIqCredits(SyncRule(false, 0), fp_iq_credits),
          results(int_rename, fp_rename)
    {
        // Pre-size every bounded queue so the steady state never
        // touches the allocator (growth is counted; see stats()).
        intIq.reserve(static_cast<std::size_t>(int_iq_credits));
        fpIq.reserve(static_cast<std::size_t>(fp_iq_credits));
        lsq.reserve(static_cast<std::size_t>(lsq_capacity));
        intIqCredits.reserve(static_cast<std::size_t>(int_iq_credits));
        fpIqCredits.reserve(static_cast<std::size_t>(fp_iq_credits));
    }

    /** Dispatch into the issue queues and LSQ (front end -> back end). */
    SyncPort<DynInst *, std::vector> intIq;
    SyncPort<DynInst *, std::vector> fpIq;
    SyncPort<DynInst *, RingDeque> lsq;

    /** Issue-queue slot returns (back end -> front end). */
    CreditReturnChannel intIqCredits;
    CreditReturnChannel fpIqCredits;

    /** Generated addresses (integer domain -> LSQ). */
    SyncSignal addr;

    /** Completion/resolution signals into the front end (commit gate,
     *  branch-resolution watch). */
    SyncSignalGate completion;

    /** Cross-domain register-result visibility. */
    ResultBus results;
};

/**
 * Machine-global state and environment shared by the four units.
 */
struct CoreShared
{
    CoreShared(const CoreParams &params, Executor &oracle_,
               MemoryHierarchy &memory,
               std::array<ClockDomain *, numDomains> clocks,
               PowerModel *power, TraceCollector *collector)
        : cfg(params), oracle(oracle_), mem(memory), clk(clocks),
          powerModel(power), tracer(collector),
          intRename(numArchIntRegs, params.physIntRegs),
          fpRename(numArchFpRegs, params.physFpRegs),
          window(params.robSize + params.fetchQueueSize)
    {}

    CoreParams cfg;     //!< owned copy: callers may pass temporaries
    Executor &oracle;
    MemoryHierarchy &mem;
    std::array<ClockDomain *, numDomains> clk;
    PowerModel *powerModel;
    TraceCollector *tracer;

    RenameState intRename;
    RenameState fpRename;

    // Instruction window storage (fetch order; popped at commit):
    // a fixed-capacity ring arena with stable slot addresses
    // (capacity = robSize + fetchQueueSize bounds the in-flight
    // count; see inst_window.hh).
    InstWindow window;

    /** Sampling policy for sampled runs; null in full detail. */
    SamplingPolicy *sampling = nullptr;

    Tick lastCommit = 0;
    bool haltCommitted = false;

    /** Everything except the sync-wait counters, which live in the
     *  ports and are folded in at CoreUnits::stats() time. */
    PipelineStats stat;

    void
    chargePower(Unit u, int count = 1)
    {
        if (powerModel && count > 0)
            powerModel->access(u, count);
    }

    /** Publish a register result into the rename scoreboard. */
    void
    produceResult(DynInst *in, Tick when, Domain producer)
    {
        if (in->dest == DestKind::Int)
            intRename.markReady(in->destPhys, when, producer, in->seq);
        else if (in->dest == DestKind::Fp)
            fpRename.markReady(in->destPhys, when, producer, in->seq);
    }
};

} // namespace mcd

#endif // MCD_CPU_CORE_SHARED_HH
