/**
 * @file
 * The out-of-order MCD pipeline (paper Section 2, Table 1).
 *
 * Four domain tick functions implement the machine:
 *
 *  - Front end (fetch, branch prediction, rename, dispatch, ROB,
 *    commit). Fetches the architecturally correct path from the
 *    functional oracle; on a misprediction, fetch stalls until the
 *    branch resolves in its back-end domain, pays the inter-domain
 *    synchronization delay on the resolution signal, then a 7-cycle
 *    refill penalty (wrong-path fetch activity is charged to the
 *    front-end power model during the stall).
 *
 *  - Integer domain (20-entry issue queue, 4 ALUs + mul/div unit).
 *    Also executes memory address generation (21264-style AGUs).
 *
 *  - Floating-point domain (15-entry issue queue, 2 ALUs +
 *    mul/div/sqrt unit).
 *
 *  - Load/store domain (64-entry LSQ, 2 cache ports, L1D + L2).
 *
 * All boundary crossings — dispatch into the issue queues and LSQ,
 * issue-queue credit returns, register results consumed across
 * domains, branch resolutions, and completion signals to the ROB —
 * are subject to the SyncRule of the (source, destination) domain
 * pair. In the singly clocked configuration all four ticks share one
 * clock and every rule collapses to plain next-edge visibility, so
 * the synchronization overhead measured between the two configs is
 * attributable purely to the MCD clocking style, as in the paper.
 */

#ifndef MCD_CPU_PIPELINE_HH
#define MCD_CPU_PIPELINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "clock/clock_domain.hh"
#include "clock/sync.hh"
#include "cpu/bpred.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/fu_pool.hh"
#include "cpu/params.hh"
#include "cpu/regfile.hh"
#include "isa/executor.hh"
#include "mem/hierarchy.hh"
#include "power/power_model.hh"
#include "trace/trace.hh"

namespace mcd {

/** Aggregate pipeline statistics for one run. */
struct PipelineStats
{
    std::uint64_t fetched = 0;
    std::uint64_t committed = 0;
    std::uint64_t committedInt = 0;
    std::uint64_t committedFp = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t committedBranches = 0;
    std::uint64_t mispredicts = 0;

    std::uint64_t wrongPathFetchCycles = 0;
    std::uint64_t icacheMissStallCycles = 0;
    std::uint64_t robFullStalls = 0;
    std::uint64_t iqFullStalls = 0;
    std::uint64_t intIqIssues = 0;
    std::uint64_t intIqResidencePs = 0; //!< dispatch->issue, summed
    std::uint64_t lsqFullStalls = 0;
    std::uint64_t regFullStalls = 0;

    // Cross-domain synchronization waits (zero when singly clocked:
    // same-domain rules are always visible). Counted per blocked
    // probe, not per instruction, so a value crossing late is charged
    // once per edge it delays the consumer.
    std::uint64_t syncCommitStalls = 0;   //!< completion signal to ROB
    std::uint64_t syncDispatchWaits = 0;  //!< queue entry not yet visible
    std::uint64_t syncAddrWaits = 0;      //!< address from int domain to LSQ
};

/**
 * Windowed occupancy counters for one domain's primary queue (ROB for
 * the front end, issue queues for the execution domains, LSQ for
 * load/store), accumulated per domain edge and drained with
 * Pipeline::takeOccupancyWindow(). Online DVFS controllers consume
 * these as their utilization signal.
 */
struct OccupancyWindow
{
    std::uint64_t cycles = 0;       //!< domain edges accumulated
    std::uint64_t occupancySum = 0; //!< Σ queue entries per edge
    std::size_t queueLength = 0;    //!< entries at the sample point
    int capacity = 0;

    /** Mean queue-fill fraction [0, 1] over the window. */
    double
    meanOccupancy() const
    {
        if (!cycles || capacity <= 0)
            return 0.0;
        return static_cast<double>(occupancySum) /
            (static_cast<double>(cycles) * static_cast<double>(capacity));
    }
};

/**
 * The four-domain out-of-order engine.
 */
class Pipeline
{
  public:
    /**
     * @param params machine configuration (Table 1)
     * @param oracle in-order functional executor supplying the
     *        correct-path instruction stream
     * @param memory the cache hierarchy
     * @param clocks one ClockDomain per architectural domain; in the
     *        singly clocked configuration all entries alias one object
     * @param sync_fraction T_s as a fraction of the fastest period
     * @param power optional power model (may be nullptr)
     * @param collector optional trace collector (may be nullptr)
     */
    Pipeline(const CoreParams &params, Executor &oracle,
             MemoryHierarchy &memory,
             std::array<ClockDomain *, numDomains> clocks,
             double sync_fraction, PowerModel *power,
             TraceCollector *collector);

    /** Perform one cycle of work for domain @p d at edge time @p now. */
    void tickDomain(Domain d, Tick now);

    /** True once HALT has committed. */
    bool done() const { return haltCommitted; }

    std::uint64_t committed() const { return stat.committed; }
    Tick lastCommitTime() const { return lastCommit; }
    const PipelineStats &stats() const { return stat; }
    const BranchPredictor &bpred() const { return predictor; }

    /** In-flight instruction count (test hook). */
    std::size_t inFlight() const { return window.size(); }

    /** Entries currently in @p d's primary queue. */
    std::size_t queueLength(Domain d) const;

    /** Capacity of @p d's primary queue. */
    int queueCapacity(Domain d) const;

    /**
     * Drain @p d's occupancy counters accumulated since the previous
     * call (or construction) and reset the window.
     */
    OccupancyWindow takeOccupancyWindow(Domain d);

  private:
    struct QueueEntry
    {
        DynInst *in = nullptr;
        Tick wrote = 0;
    };

    // Stage functions.
    void tickFrontEnd(Tick now);
    void tickInteger(Tick now);
    void tickFloat(Tick now);
    void tickLoadStore(Tick now);

    void commitStage(Tick now);
    void renameDispatchStage(Tick now);
    void fetchStage(Tick now);

    bool dispatchOne(DynInst *in, Tick now);
    bool operandsReady(const DynInst *in, Domain consumer,
                       Tick now) const;
    bool sourceReady(int phys, bool is_fp, Domain consumer,
                     Tick now) const;
    void produceResult(DynInst *in, Tick when, Domain producer);
    void recordTrace(const DynInst *in);

    const SyncRule &
    rule(Domain from, Domain to) const
    {
        return rules[domainIndex(from)][domainIndex(to)];
    }

    void chargePower(Unit u, int count = 1);

    CoreParams cfg;
    Executor &oracle;
    MemoryHierarchy &mem;
    std::array<ClockDomain *, numDomains> clk;
    PowerModel *powerModel;
    TraceCollector *tracer;

    std::array<std::array<SyncRule, numDomains>, numDomains> rules;

    BranchPredictor predictor;
    RenameState intRename;
    RenameState fpRename;

    // Instruction window storage (fetch order; popped at commit).
    std::deque<DynInst> window;
    std::deque<DynInst *> fetchQueue;
    std::deque<DynInst *> rob;
    std::vector<QueueEntry> intIq;
    std::vector<QueueEntry> fpIq;
    std::deque<QueueEntry> lsq;

    CreditReturnChannel intIqCredits;
    CreditReturnChannel fpIqCredits;
    int lsqFree;

    FuPool intAluPool;
    FuPool intMulDivPool;
    FuPool fpAluPool;
    FuPool fpMulDivPool;

    // Fetch state.
    bool haltFetched = false;
    bool haltCommitted = false;
    Tick fetchReadyTime = 0;    //!< earliest next fetch (I-miss, redirect)
    DynInst *stallBranch = nullptr;
    int redirectPenaltyLeft = 0;
    int wrongPathChargeLeft = 0;    //!< stall cycles that still fetch

    Tick lastCommit = 0;
    PipelineStats stat;

    // Per-domain occupancy accumulation (see takeOccupancyWindow).
    std::array<std::uint64_t, numDomains> occCycles{};
    std::array<std::uint64_t, numDomains> occSum{};
};

} // namespace mcd

#endif // MCD_CPU_PIPELINE_HH
