/**
 * @file
 * Core configuration, following paper Table 1 (an Alpha-21264-like
 * dynamic superscalar with split ROB / issue queues / register files).
 */

#ifndef MCD_CPU_PARAMS_HH
#define MCD_CPU_PARAMS_HH

namespace mcd {

/** Branch predictor configuration (Table 1). */
struct BpredParams
{
    // Combination of bimodal and 2-level PAg.
    int bimodalSize = 1024;         //!< bimodal predictor entries
    int l1Size = 1024;              //!< PAg level-1 (per-address history)
    int historyBits = 10;           //!< PAg history length
    int l2Size = 1024;              //!< PAg level-2 counter table
    int chooserSize = 4096;         //!< combining (meta) predictor
    int btbSets = 4096;
    int btbAssoc = 2;
};

/** Core pipeline configuration (Table 1). */
struct CoreParams
{
    int decodeWidth = 4;            //!< fetch/rename/dispatch width
    int intIssueWidth = 4;          //!< integer issues per cycle
    int fpIssueWidth = 2;           //!< FP issues per cycle (4+2 = 6)
    int retireWidth = 11;
    int mispredictPenalty = 7;      //!< front-end cycles

    int fetchQueueSize = 16;
    int intIssueQueueSize = 20;
    int fpIssueQueueSize = 15;
    int lsqSize = 64;
    int robSize = 80;
    int physIntRegs = 72;
    int physFpRegs = 72;

    int intAlus = 4;
    int intMulDivs = 1;
    int fpAlus = 2;
    int fpMulDivs = 1;
    int memPorts = 2;               //!< L1D accesses per LS cycle

    BpredParams bpred;
};

} // namespace mcd

#endif // MCD_CPU_PARAMS_HH
