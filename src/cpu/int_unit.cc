#include "int_unit.hh"

namespace mcd {

void
IntUnit::tick(Tick now)
{
    aluPool.newCycle();
    mulDivPool.newCycle();

    const double period = s.clk[domainIndex(Domain::Integer)]->period();
    int issued = 0;
    bool anyIssued = false;

    for (auto &ent : p.intIq) {
        if (issued >= s.cfg.intIssueWidth)
            break;
        DynInst *in = ent.value;
        if (in->issued)
            continue;
        if (!p.intIq.probe(ent, now))
            continue;

        Opcode op = in->inst.op;
        bool isAddrGen = isMem(op);

        // Address generation needs only the base register.
        bool ready = isAddrGen
            ? p.results.ready(in->src1Phys, in->src1Fp,
                              Domain::Integer, now)
            : (p.results.ready(in->src1Phys, in->src1Fp,
                               Domain::Integer, now) &&
               p.results.ready(in->src2Phys, in->src2Fp,
                               Domain::Integer, now));
        if (!ready)
            continue;

        FuPool &pool = isIntMulDiv(op) ? mulDivPool : aluPool;
        if (!pool.canIssue(now))
            continue;

        int lat = isAddrGen ? 1 : execLatency(op);
        // Result is latched at the lat-th integer edge after issue;
        // encode it half a period early so jittered edges compare
        // robustly (see DESIGN.md, completion-time encoding).
        Tick done = now + static_cast<Tick>((lat - 0.5) * period);
        pool.issue(now, done);

        in->issued = true;
        in->cold->issueTime = now;
        in->execDoneTime = done;
        in->executed = true;
        anyIssued = true;

        if (!isAddrGen && in->dest != DestKind::None) {
            s.produceResult(in, done, Domain::Integer);
            s.chargePower(Unit::IntRegWrite);
        }

        s.chargePower(Unit::IntIqIssue);
        s.chargePower(isIntMulDiv(op) ? Unit::IntMulDiv : Unit::IntAlu);
        int reads = (in->src1Phys != noReg && !in->src1Fp ? 1 : 0) +
            (in->src2Phys != noReg && !in->src2Fp ? 1 : 0);
        s.chargePower(Unit::IntRegRead, reads);

        // The issue-queue slot frees at issue; the credit crosses back
        // to the front end.
        p.intIqCredits.give(now);
        ++s.stat.intIqIssues;
        s.stat.intIqResidencePs += now - in->dispatchTime;
        ++issued;
    }

    if (anyIssued) {
        p.intIq.eraseIf([](const SyncPort<DynInst *>::Entry &e) {
            return e.value->issued;
        });
    }
}

} // namespace mcd
