/**
 * @file
 * Aggregate pipeline statistics and the windowed occupancy counters —
 * split from the execution units so result plumbing (RunResult, the
 * experiment cache, the controllers' observation structs) can depend
 * on the numbers without pulling in the machine itself.
 */

#ifndef MCD_CPU_PIPELINE_STATS_HH
#define MCD_CPU_PIPELINE_STATS_HH

#include <cstddef>
#include <cstdint>

namespace mcd {

/** Aggregate pipeline statistics for one run. */
struct PipelineStats
{
    std::uint64_t fetched = 0;
    std::uint64_t committed = 0;
    std::uint64_t committedInt = 0;
    std::uint64_t committedFp = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t committedBranches = 0;
    std::uint64_t mispredicts = 0;

    std::uint64_t wrongPathFetchCycles = 0;
    std::uint64_t icacheMissStallCycles = 0;
    std::uint64_t robFullStalls = 0;
    std::uint64_t iqFullStalls = 0;
    std::uint64_t intIqIssues = 0;
    std::uint64_t intIqResidencePs = 0; //!< dispatch->issue, summed
    std::uint64_t lsqFullStalls = 0;
    std::uint64_t regFullStalls = 0;

    // Cross-domain synchronization waits (zero when singly clocked:
    // same-domain rules are always visible). Counted per blocked
    // probe, not per instruction, so a value crossing late is charged
    // once per edge it delays the consumer. Aggregated at stats()
    // time from the SyncPort/SyncSignal wait counters at the domain
    // boundaries (see clock/sync.hh).
    std::uint64_t syncCommitStalls = 0;   //!< completion signal to ROB
    std::uint64_t syncDispatchWaits = 0;  //!< queue entry not yet visible
    std::uint64_t syncAddrWaits = 0;      //!< address from int domain to LSQ
};

/**
 * Windowed occupancy counters for one domain's primary queue (ROB for
 * the front end, issue queues for the execution domains, LSQ for
 * load/store), accumulated per domain edge and drained with
 * CoreUnits::takeOccupancyWindow(). Online DVFS controllers consume
 * these as their utilization signal.
 */
struct OccupancyWindow
{
    std::uint64_t cycles = 0;       //!< domain edges accumulated
    std::uint64_t occupancySum = 0; //!< Σ queue entries per edge
    std::size_t queueLength = 0;    //!< entries at the sample point
    int capacity = 0;

    /** Mean queue-fill fraction [0, 1] over the window. */
    double
    meanOccupancy() const
    {
        if (!cycles || capacity <= 0)
            return 0.0;
        return static_cast<double>(occupancySum) /
            (static_cast<double>(cycles) * static_cast<double>(capacity));
    }
};

} // namespace mcd

#endif // MCD_CPU_PIPELINE_STATS_HH
