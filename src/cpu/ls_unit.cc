#include "ls_unit.hh"

namespace mcd {

void
LsUnit::tick(Tick now)
{
    int portsUsed = 0;

    for (std::size_t i = 0; i < p.lsq.size(); ++i) {
        if (portsUsed >= s.cfg.memPorts)
            break;
        DynInst *in = p.lsq[i].value;
        if (in->memIssued)
            continue;
        if (!p.lsq.probe(p.lsq[i], now))
            break;  // later entries were written even later

        // The generated address crosses from the integer domain.
        if (!p.addr.probe(in->issued, in->execDoneTime, now))
            continue;

        if (in->isStoreOp()) {
            // Stores need their data before writing the cache.
            if (!p.results.ready(in->src2Phys, in->src2Fp,
                                 Domain::LoadStore, now)) {
                continue;
            }
            MemAccessResult r =
                s.mem.dataAccess(in->memAddr & ~7ULL, true, now);
            in->memIssued = true;
            in->cold->memIssueTime = now;
            in->memDoneTime = r.ready;
            in->cold->memFixedLat = r.dramTime;
            in->memDone = true;
            s.chargePower(Unit::Dcache);
            if (r.l2Accessed)
                s.chargePower(Unit::L2);
            ++portsUsed;
            continue;
        }

        // Load: SimpleScalar-style perfect disambiguation -- only an
        // older store to the same word blocks (or forwards to) the
        // load; stores with unknown addresses do not.
        bool blocked = false;
        bool forwarded = false;
        for (std::size_t j = 0; j < i; ++j) {
            DynInst *st = p.lsq[j].value;
            if (!st->isStoreOp())
                continue;
            if ((st->memAddr & ~7ULL) == (in->memAddr & ~7ULL)) {
                if (st->memIssued) {
                    forwarded = true;   // store buffer forwarding
                } else {
                    blocked = true;     // wait for the store's data
                    break;
                }
            }
        }
        if (blocked)
            continue;

        in->memIssued = true;
        in->cold->memIssueTime = now;
        if (forwarded) {
            const double period =
                s.clk[domainIndex(Domain::LoadStore)]->period();
            in->memDoneTime = now + static_cast<Tick>(0.5 * period);
            s.chargePower(Unit::Lsq);
        } else {
            MemAccessResult r =
                s.mem.dataAccess(in->memAddr & ~7ULL, false, now);
            in->memDoneTime = r.ready;
            in->cold->memFixedLat = r.dramTime;
            s.chargePower(Unit::Dcache);
            if (r.l2Accessed)
                s.chargePower(Unit::L2);
        }
        in->memDone = true;
        s.produceResult(in, in->memDoneTime, Domain::LoadStore);
        ++portsUsed;
    }
}

} // namespace mcd
