#include "pipeline.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcd {

namespace {

/** Does this instruction occupy an integer issue-queue slot? */
bool
usesIntIq(const Inst &inst)
{
    Opcode op = inst.op;
    if (op == Opcode::NOP || op == Opcode::HALT)
        return false;
    // Memory ops use the integer queue for address generation.
    return isIntAlu(op) || isIntMulDiv(op) || isBranch(op) ||
        isJump(op) || isMem(op);
}

bool
usesFpIq(const Inst &inst)
{
    return isFp(inst.op);
}

} // namespace

Pipeline::Pipeline(const CoreParams &params, Executor &oracle_,
                   MemoryHierarchy &memory,
                   std::array<ClockDomain *, numDomains> clocks,
                   double sync_fraction, PowerModel *power,
                   TraceCollector *collector)
    : cfg(params), oracle(oracle_), mem(memory), clk(clocks),
      powerModel(power), tracer(collector),
      rules{},
      predictor(params.bpred),
      intRename(numArchIntRegs, params.physIntRegs),
      fpRename(numArchFpRegs, params.physFpRegs),
      intIqCredits(SyncRule(false, 0), params.intIssueQueueSize),
      fpIqCredits(SyncRule(false, 0), params.fpIssueQueueSize),
      lsqFree(params.lsqSize),
      intAluPool(params.intAlus, true),
      intMulDivPool(params.intMulDivs, false),
      fpAluPool(params.fpAlus, true),
      fpMulDivPool(params.fpMulDivs, false)
{
    // Build the synchronization-rule matrix. T_s is 30% of the period
    // of the highest frequency; 1 GHz is the architectural maximum.
    Hertz fmax = 0.0;
    for (ClockDomain *c : clk)
        fmax = std::max(fmax, c->frequency());
    for (int from = 0; from < numDomains; ++from) {
        for (int to = 0; to < numDomains; ++to) {
            bool cross = clk[from] != clk[to];
            rules[from][to] =
                SyncRule::forMaxFrequency(cross, fmax, sync_fraction);
        }
    }
    // Issue-queue credit returns cross from the back-end domains into
    // the front end.
    intIqCredits = CreditReturnChannel(
        rule(Domain::Integer, Domain::FrontEnd),
        params.intIssueQueueSize);
    fpIqCredits = CreditReturnChannel(
        rule(Domain::FloatingPoint, Domain::FrontEnd),
        params.fpIssueQueueSize);
}

void
Pipeline::chargePower(Unit u, int count)
{
    if (powerModel && count > 0)
        powerModel->access(u, count);
}

void
Pipeline::tickDomain(Domain d, Tick now)
{
    int di = domainIndex(d);
    ++occCycles[di];
    occSum[di] += queueLength(d);

    switch (d) {
      case Domain::FrontEnd: tickFrontEnd(now); break;
      case Domain::Integer: tickInteger(now); break;
      case Domain::FloatingPoint: tickFloat(now); break;
      case Domain::LoadStore: tickLoadStore(now); break;
    }
}

std::size_t
Pipeline::queueLength(Domain d) const
{
    switch (d) {
      case Domain::FrontEnd: return rob.size();
      case Domain::Integer: return intIq.size();
      case Domain::FloatingPoint: return fpIq.size();
      case Domain::LoadStore: return lsq.size();
    }
    return 0;
}

int
Pipeline::queueCapacity(Domain d) const
{
    switch (d) {
      case Domain::FrontEnd: return cfg.robSize;
      case Domain::Integer: return cfg.intIssueQueueSize;
      case Domain::FloatingPoint: return cfg.fpIssueQueueSize;
      case Domain::LoadStore: return cfg.lsqSize;
    }
    return 0;
}

OccupancyWindow
Pipeline::takeOccupancyWindow(Domain d)
{
    int di = domainIndex(d);
    OccupancyWindow w;
    w.cycles = occCycles[di];
    w.occupancySum = occSum[di];
    w.queueLength = queueLength(d);
    w.capacity = queueCapacity(d);
    occCycles[di] = 0;
    occSum[di] = 0;
    return w;
}

// ---------------------------------------------------------------------
// Front end: commit, rename/dispatch, fetch.
// ---------------------------------------------------------------------

void
Pipeline::tickFrontEnd(Tick now)
{
    commitStage(now);
    renameDispatchStage(now);
    fetchStage(now);
}

void
Pipeline::commitStage(Tick now)
{
    int n = 0;
    while (n < cfg.retireWidth && !rob.empty()) {
        DynInst *in = rob.front();

        bool complete;
        if (in->isMemOp()) {
            complete = in->memDone;
        } else if (in->isHalt || in->inst.op == Opcode::NOP) {
            complete = in->executed;
        } else {
            complete = in->executed;
        }
        if (!complete)
            break;
        if (!rule(in->completionDomain(), Domain::FrontEnd)
                 .visible(in->completionTime(), now)) {
            ++stat.syncCommitStalls;
            break;
        }

        in->commitTime = now;
        in->retired = true;
        lastCommit = now;

        // No pipeline structure may keep a pointer to a retired
        // instruction: its window slot is reclaimed below.
        if (in->isMemOp()) {
            mcdAssert(!lsq.empty() && lsq.front().in == in,
                      "LSQ/commit order mismatch");
            lsq.pop_front();
        }
        if (stallBranch == in) {
            // The branch resolved and committed in the same front-end
            // cycle; begin the redirect penalty now.
            stallBranch = nullptr;
            redirectPenaltyLeft = cfg.mispredictPenalty;
        }

        // Free the previous mapping of the destination register.
        if (in->oldDestPhys != noReg) {
            if (in->dest == DestKind::Fp)
                fpRename.release(in->oldDestPhys);
            else
                intRename.release(in->oldDestPhys);
        }
        if (in->isMemOp())
            ++lsqFree;

        chargePower(Unit::Rob);
        ++stat.committed;
        Opcode op = in->inst.op;
        if (in->isLoadOp())
            ++stat.committedLoads;
        else if (in->isStoreOp())
            ++stat.committedStores;
        else if (isFp(op))
            ++stat.committedFp;
        else if (isControl(op)) {
            ++stat.committedBranches;
            if (in->mispredicted)
                ++stat.mispredicts;
        } else {
            ++stat.committedInt;
        }

        recordTrace(in);

        if (in->isHalt)
            haltCommitted = true;

        rob.pop_front();
        mcdAssert(!window.empty() && &window.front() == in,
                  "commit out of window order");
        window.pop_front();
        ++n;
        if (haltCommitted)
            break;
    }
}

void
Pipeline::renameDispatchStage(Tick now)
{
    int n = 0;
    while (n < cfg.decodeWidth && !fetchQueue.empty()) {
        DynInst *in = fetchQueue.front();
        // Fetch-queue entries become readable the cycle after the
        // I-cache delivers them.
        if (now <= in->fetchTime)
            break;
        if (!dispatchOne(in, now))
            break;
        fetchQueue.pop_front();
        ++n;
    }
}

bool
Pipeline::dispatchOne(DynInst *in, Tick now)
{
    const Inst &inst = in->inst;
    Opcode op = inst.op;

    if (static_cast<int>(rob.size()) >= cfg.robSize) {
        ++stat.robFullStalls;
        return false;
    }

    bool needIntIq = usesIntIq(inst);
    bool needFpIq = usesFpIq(inst);
    bool needLsq = isMem(op);
    DestKind dk = destKind(inst);

    if (dk == DestKind::Int && !intRename.hasFree()) {
        ++stat.regFullStalls;
        return false;
    }
    if (dk == DestKind::Fp && !fpRename.hasFree()) {
        ++stat.regFullStalls;
        return false;
    }
    if (needIntIq && intIqCredits.credits(now) <= 0) {
        ++stat.iqFullStalls;
        return false;
    }
    if (needFpIq && fpIqCredits.credits(now) <= 0) {
        ++stat.iqFullStalls;
        return false;
    }
    if (needLsq && lsqFree <= 0) {
        ++stat.lsqFullStalls;
        return false;
    }

    // Rename sources.
    if (readsIntRs1(op) && inst.rs1 != reg::zero) {
        in->src1Phys = intRename.lookup(inst.rs1);
        in->src1Fp = false;
        in->src1Producer = intRename.lastWriterSeq(inst.rs1);
    } else if (readsFpRs1(op)) {
        in->src1Phys = fpRename.lookup(inst.rs1);
        in->src1Fp = true;
        in->src1Producer = fpRename.lastWriterSeq(inst.rs1);
    }
    if (readsIntRs2(op) && inst.rs2 != reg::zero) {
        in->src2Phys = intRename.lookup(inst.rs2);
        in->src2Fp = false;
        in->src2Producer = intRename.lastWriterSeq(inst.rs2);
    } else if (readsFpRs2(op)) {
        in->src2Phys = fpRename.lookup(inst.rs2);
        in->src2Fp = true;
        in->src2Producer = fpRename.lastWriterSeq(inst.rs2);
    }

    // Rename destination.
    in->dest = dk;
    if (dk == DestKind::Int) {
        auto [phys, old] = intRename.allocate(inst.rd, in->seq);
        in->destPhys = phys;
        in->oldDestPhys = old;
    } else if (dk == DestKind::Fp) {
        auto [phys, old] = fpRename.allocate(inst.rd, in->seq);
        in->destPhys = phys;
        in->oldDestPhys = old;
    }

    in->dispatched = true;
    in->dispatchTime = now;
    rob.push_back(in);

    chargePower(Unit::Rename);
    chargePower(Unit::Rob);
    chargePower(Unit::FetchQueue);

    if (needIntIq) {
        intIq.push_back({in, now});
        intIqCredits.take();
        chargePower(Unit::IntIqWrite);
    }
    if (needFpIq) {
        fpIq.push_back({in, now});
        fpIqCredits.take();
        chargePower(Unit::FpIqWrite);
    }
    if (needLsq) {
        lsq.push_back({in, now});
        --lsqFree;
        chargePower(Unit::Lsq);
    }

    if (op == Opcode::NOP || op == Opcode::HALT) {
        // Completes in the front end without visiting a back-end queue.
        in->executed = true;
        in->issueTime = now;
        in->execDoneTime = now + 1;
    }
    return true;
}

void
Pipeline::fetchStage(Tick now)
{
    if (haltFetched)
        return;

    // Waiting for a mispredicted branch to resolve: the front end
    // fetches down the wrong path, burning fetch energy to no effect.
    if (stallBranch) {
        if (stallBranch->executed &&
            rule(execDomain(stallBranch->inst.op), Domain::FrontEnd)
                .visible(stallBranch->execDoneTime, now)) {
            stallBranch = nullptr;
            redirectPenaltyLeft = cfg.mispredictPenalty;
            wrongPathChargeLeft = 0;
        } else {
            ++stat.wrongPathFetchCycles;
            // Wrong-path fetch burns front-end energy only until the
            // fetch queue fills; after that the front end sits gated.
            if (wrongPathChargeLeft > 0) {
                --wrongPathChargeLeft;
                chargePower(Unit::Icache);
                chargePower(Unit::Bpred);
            }
            return;
        }
    }
    if (redirectPenaltyLeft > 0) {
        --redirectPenaltyLeft;
        ++stat.wrongPathFetchCycles;
        return;
    }
    if (now < fetchReadyTime) {
        ++stat.icacheMissStallCycles;
        return;
    }

    const std::uint64_t lineMask =
        ~static_cast<std::uint64_t>(mem.l1i().params().lineBytes - 1);
    std::uint64_t curLine = 0;
    Tick groupReady = 0;
    int fetched = 0;

    while (fetched < cfg.decodeWidth &&
           static_cast<int>(fetchQueue.size()) < cfg.fetchQueueSize) {
        std::uint64_t pc = oracle.pc();

        if (fetched == 0) {
            MemAccessResult r = mem.instFetch(pc, now);
            chargePower(Unit::Icache);
            chargePower(Unit::Bpred);
            if (!r.l1Hit) {
                // Miss: stall fetch until the line arrives (the line
                // is installed and hits on retry).
                fetchReadyTime = r.ready;
                return;
            }
            curLine = pc & lineMask;
            groupReady = r.ready;
        } else if ((pc & lineMask) != curLine) {
            break;  // next line next cycle
        }

        ExecResult er = oracle.step();
        window.emplace_back();
        DynInst *in = &window.back();
        in->seq = er.seq;
        in->pc = er.pc;
        in->inst = er.inst;
        in->taken = er.taken;
        in->nextPc = er.nextPc;
        in->memAddr = er.memAddr;
        in->isHalt = er.halted;
        in->fetchTime = groupReady;

        Opcode op = er.inst.op;
        if (isBranch(op)) {
            BpredLookup look = predictor.predictBranch(er.pc);
            in->predictedTaken = look.taken;
            bool correct;
            if (er.taken) {
                correct = look.taken && look.btbHit &&
                    look.target == er.nextPc;
            } else {
                correct = !look.taken;
            }
            in->mispredicted = !correct;
            predictor.update(er.pc, er.taken, er.nextPc, look.taken,
                             true);
        } else if (op == Opcode::JALR) {
            BpredLookup look = predictor.predictIndirect(er.pc);
            in->predictedTaken = true;
            in->mispredicted = !(look.btbHit && look.target == er.nextPc);
            predictor.update(er.pc, true, er.nextPc, true, false);
        }
        // JAL: target computed in the decoder; never a misprediction.

        fetchQueue.push_back(in);
        ++fetched;
        ++stat.fetched;

        if (er.halted) {
            haltFetched = true;
            break;
        }
        if (in->mispredicted) {
            stallBranch = in;
            wrongPathChargeLeft =
                cfg.fetchQueueSize / cfg.decodeWidth + 2;
            break;
        }
        if (er.taken)
            break;  // redirect: next group starts at the target
    }
}

// ---------------------------------------------------------------------
// Operand readiness.
// ---------------------------------------------------------------------

bool
Pipeline::sourceReady(int phys, bool is_fp, Domain consumer,
                      Tick now) const
{
    if (phys == noReg)
        return true;
    const RenameState &rs = is_fp ? fpRename : intRename;
    if (!rs.isReady(phys))
        return false;
    return rule(rs.producedBy(phys), consumer)
        .visible(rs.readyAt(phys), now);
}

bool
Pipeline::operandsReady(const DynInst *in, Domain consumer,
                        Tick now) const
{
    return sourceReady(in->src1Phys, in->src1Fp, consumer, now) &&
        sourceReady(in->src2Phys, in->src2Fp, consumer, now);
}

void
Pipeline::produceResult(DynInst *in, Tick when, Domain producer)
{
    if (in->dest == DestKind::Int)
        intRename.markReady(in->destPhys, when, producer, in->seq);
    else if (in->dest == DestKind::Fp)
        fpRename.markReady(in->destPhys, when, producer, in->seq);
}

// ---------------------------------------------------------------------
// Integer domain: issue queue + ALUs + address generation.
// ---------------------------------------------------------------------

void
Pipeline::tickInteger(Tick now)
{
    intAluPool.newCycle();
    intMulDivPool.newCycle();

    const double period = clk[domainIndex(Domain::Integer)]->period();
    int issued = 0;
    bool anyIssued = false;

    for (QueueEntry &ent : intIq) {
        if (issued >= cfg.intIssueWidth)
            break;
        DynInst *in = ent.in;
        if (in->issued)
            continue;
        if (!rule(Domain::FrontEnd, Domain::Integer).visible(ent.wrote,
                                                             now)) {
            ++stat.syncDispatchWaits;
            continue;
        }

        Opcode op = in->inst.op;
        bool isAddrGen = isMem(op);

        // Address generation needs only the base register.
        bool ready = isAddrGen
            ? sourceReady(in->src1Phys, in->src1Fp, Domain::Integer, now)
            : operandsReady(in, Domain::Integer, now);
        if (!ready)
            continue;

        FuPool &pool = isIntMulDiv(op) ? intMulDivPool : intAluPool;
        if (!pool.canIssue(now))
            continue;

        int lat = isAddrGen ? 1 : execLatency(op);
        // Result is latched at the lat-th integer edge after issue;
        // encode it half a period early so jittered edges compare
        // robustly (see DESIGN.md, completion-time encoding).
        Tick done = now + static_cast<Tick>((lat - 0.5) * period);
        pool.issue(now, done);

        in->issued = true;
        in->issueTime = now;
        in->execDoneTime = done;
        in->executed = true;
        anyIssued = true;

        if (!isAddrGen && in->dest != DestKind::None) {
            produceResult(in, done, Domain::Integer);
            chargePower(Unit::IntRegWrite);
        }

        chargePower(Unit::IntIqIssue);
        chargePower(isIntMulDiv(op) ? Unit::IntMulDiv : Unit::IntAlu);
        int reads = (in->src1Phys != noReg && !in->src1Fp ? 1 : 0) +
            (in->src2Phys != noReg && !in->src2Fp ? 1 : 0);
        chargePower(Unit::IntRegRead, reads);

        // The issue-queue slot frees at issue; the credit crosses back
        // to the front end.
        intIqCredits.give(now);
        ++stat.intIqIssues;
        stat.intIqResidencePs += now - in->dispatchTime;
        ++issued;
    }

    if (anyIssued) {
        intIq.erase(std::remove_if(intIq.begin(), intIq.end(),
                                   [](const QueueEntry &e) {
                                       return e.in->issued;
                                   }),
                    intIq.end());
    }
}

// ---------------------------------------------------------------------
// Floating-point domain.
// ---------------------------------------------------------------------

void
Pipeline::tickFloat(Tick now)
{
    fpAluPool.newCycle();
    fpMulDivPool.newCycle();

    const double period =
        clk[domainIndex(Domain::FloatingPoint)]->period();
    int issued = 0;
    bool anyIssued = false;

    for (QueueEntry &ent : fpIq) {
        if (issued >= cfg.fpIssueWidth)
            break;
        DynInst *in = ent.in;
        if (in->issued)
            continue;
        if (!rule(Domain::FrontEnd, Domain::FloatingPoint)
                 .visible(ent.wrote, now)) {
            ++stat.syncDispatchWaits;
            continue;
        }
        if (!operandsReady(in, Domain::FloatingPoint, now))
            continue;

        Opcode op = in->inst.op;
        bool isLong = fuClass(op) == FuClass::FpMulDivSqrt;
        FuPool &pool = isLong ? fpMulDivPool : fpAluPool;
        if (!pool.canIssue(now))
            continue;

        int lat = execLatency(op);
        Tick done = now + static_cast<Tick>((lat - 0.5) * period);
        pool.issue(now, done);

        in->issued = true;
        in->issueTime = now;
        in->execDoneTime = done;
        in->executed = true;
        anyIssued = true;

        if (in->dest != DestKind::None) {
            produceResult(in, done, Domain::FloatingPoint);
            chargePower(Unit::FpRegWrite);
        }

        chargePower(Unit::FpIqIssue);
        chargePower(isLong ? Unit::FpMulDiv : Unit::FpAlu);
        int reads = (in->src1Phys != noReg && in->src1Fp ? 1 : 0) +
            (in->src2Phys != noReg && in->src2Fp ? 1 : 0);
        chargePower(Unit::FpRegRead, reads);

        fpIqCredits.give(now);
        ++issued;
    }

    if (anyIssued) {
        fpIq.erase(std::remove_if(fpIq.begin(), fpIq.end(),
                                  [](const QueueEntry &e) {
                                      return e.in->issued;
                                  }),
                   fpIq.end());
    }
}

// ---------------------------------------------------------------------
// Load/store domain: LSQ + D-cache ports.
// ---------------------------------------------------------------------

void
Pipeline::tickLoadStore(Tick now)
{
    int portsUsed = 0;

    const SyncRule &feToLs = rule(Domain::FrontEnd, Domain::LoadStore);
    const SyncRule &intToLs = rule(Domain::Integer, Domain::LoadStore);

    for (std::size_t i = 0; i < lsq.size(); ++i) {
        if (portsUsed >= cfg.memPorts)
            break;
        DynInst *in = lsq[i].in;
        if (in->memIssued)
            continue;
        if (!feToLs.visible(lsq[i].wrote, now)) {
            ++stat.syncDispatchWaits;
            break;  // later entries were written even later
        }

        bool addrVisible = in->issued &&
            intToLs.visible(in->execDoneTime, now);
        if (!addrVisible) {
            if (in->issued)
                ++stat.syncAddrWaits;
            continue;
        }

        if (in->isStoreOp()) {
            // Stores need their data before writing the cache.
            if (!sourceReady(in->src2Phys, in->src2Fp,
                             Domain::LoadStore, now)) {
                continue;
            }
            MemAccessResult r =
                mem.dataAccess(in->memAddr & ~7ULL, true, now);
            in->memIssued = true;
            in->memIssueTime = now;
            in->memDoneTime = r.ready;
            in->memFixedLat = r.dramTime;
            in->memDone = true;
            chargePower(Unit::Dcache);
            if (r.l2Accessed)
                chargePower(Unit::L2);
            ++portsUsed;
            continue;
        }

        // Load: SimpleScalar-style perfect disambiguation -- only an
        // older store to the same word blocks (or forwards to) the
        // load; stores with unknown addresses do not.
        bool blocked = false;
        bool forwarded = false;
        for (std::size_t j = 0; j < i; ++j) {
            DynInst *st = lsq[j].in;
            if (!st->isStoreOp())
                continue;
            if ((st->memAddr & ~7ULL) == (in->memAddr & ~7ULL)) {
                if (st->memIssued) {
                    forwarded = true;   // store buffer forwarding
                } else {
                    blocked = true;     // wait for the store's data
                    break;
                }
            }
        }
        if (blocked)
            continue;

        in->memIssued = true;
        in->memIssueTime = now;
        if (forwarded) {
            const double period =
                clk[domainIndex(Domain::LoadStore)]->period();
            in->memDoneTime = now + static_cast<Tick>(0.5 * period);
            chargePower(Unit::Lsq);
        } else {
            MemAccessResult r =
                mem.dataAccess(in->memAddr & ~7ULL, false, now);
            in->memDoneTime = r.ready;
            in->memFixedLat = r.dramTime;
            chargePower(Unit::Dcache);
            if (r.l2Accessed)
                chargePower(Unit::L2);
        }
        in->memDone = true;
        produceResult(in, in->memDoneTime, Domain::LoadStore);
        ++portsUsed;
    }
}

// ---------------------------------------------------------------------
// Trace recording.
// ---------------------------------------------------------------------

void
Pipeline::recordTrace(const DynInst *in)
{
    if (!tracer || !tracer->isEnabled())
        return;
    InstTrace t;
    t.seq = in->seq;
    t.op = in->inst.op;
    t.fu = fuClass(in->inst.op);
    t.dep1 = in->src1Producer;
    t.dep2 = in->src2Producer;
    t.mispredicted = in->mispredicted;
    t.fetchTime = in->fetchTime;
    t.dispatchTime = in->dispatchTime;
    t.issueTime = in->issueTime;
    t.execDone = in->execDoneTime;
    t.memIssue = in->memIssueTime;
    t.memDone = in->memDoneTime;
    t.memFixed = in->memFixedLat;
    t.commitTime = in->commitTime;
    tracer->record(t);
}

} // namespace mcd
