/**
 * @file
 * The four-domain out-of-order engine (paper Section 2, Table 1),
 * assembled from per-domain units wired through synchronized ports.
 *
 * All boundary crossings — dispatch into the issue queues and LSQ,
 * issue-queue credit returns, register results consumed across
 * domains, branch resolutions, and completion signals to the ROB —
 * are subject to the SyncRule of the (source, destination) domain
 * pair, applied inside the SyncPort/SyncSignal/credit primitives the
 * units communicate through (clock/sync.hh); synchronization-stall
 * statistics are counted at those ports and folded into stats(). In
 * the singly clocked configuration all four ticks share one clock and
 * every rule collapses to plain next-edge visibility, so the
 * synchronization overhead measured between the two configs is
 * attributable purely to the MCD clocking style, as in the paper.
 */

#ifndef MCD_CPU_CORE_UNITS_HH
#define MCD_CPU_CORE_UNITS_HH

#include "cpu/core_shared.hh"
#include "cpu/fp_unit.hh"
#include "cpu/front_end_unit.hh"
#include "cpu/int_unit.hh"
#include "cpu/ls_unit.hh"

namespace mcd {

class CoreUnits
{
  public:
    /**
     * @param params machine configuration (Table 1)
     * @param oracle in-order functional executor supplying the
     *        correct-path instruction stream
     * @param memory the cache hierarchy
     * @param clocks one ClockDomain per architectural domain; in the
     *        singly clocked configuration all entries alias one object
     * @param sync_fraction T_s as a fraction of the fastest period
     * @param power optional power model (may be nullptr)
     * @param collector optional trace collector (may be nullptr)
     * @param commit_cap stop request after this many commits (0: none)
     */
    CoreUnits(const CoreParams &params, Executor &oracle,
              MemoryHierarchy &memory,
              std::array<ClockDomain *, numDomains> clocks,
              double sync_fraction, PowerModel *power,
              TraceCollector *collector, std::uint64_t commit_cap = 0);

    /** Perform one cycle of work for domain @p d at edge time @p now. */
    void tickDomain(Domain d, Tick now);

    /** True once HALT has committed. */
    bool done() const { return shared.haltCommitted; }

    /**
     * True once the run should stop: HALT committed, or the commit cap
     * reached. Latched at the end of the front-end tick (the only
     * stage that commits), so the run loop reads a flag instead of
     * re-deriving the condition per event.
     */
    bool stopRequested() const { return stopReq; }

    std::uint64_t committed() const { return shared.stat.committed; }
    Tick lastCommitTime() const { return shared.lastCommit; }

    /** Run statistics with the port wait counters folded in. */
    PipelineStats stats() const;

    const BranchPredictor &bpred() const { return fe.bpred(); }

    /** In-flight instruction count (test hook). */
    std::size_t inFlight() const { return shared.window.size(); }

    /** Bind the sampling policy (sampled runs; null = full detail). */
    void bindSampling(SamplingPolicy *sp) { shared.sampling = sp; }

    /** Instructions consumed by fast-forward so far (0 unsampled). */
    std::uint64_t ffExecuted() const;

    /** Instruction-window high-water mark and capacity (arena proof). */
    std::size_t windowHighWater() const { return shared.window.highWater(); }
    std::size_t windowCapacity() const { return shared.window.capacity(); }

    /** Total ring reallocations across all pre-sized queues (0 when
     *  every reservation held; see common/ring_buffer.hh). */
    std::uint64_t ringGrows() const;

    /** Entries currently in @p d's primary queue. */
    std::size_t queueLength(Domain d) const;

    /** Capacity of @p d's primary queue. */
    int queueCapacity(Domain d) const;

    /**
     * Drain @p d's occupancy counters accumulated since the previous
     * call (or construction) and reset the window.
     */
    OccupancyWindow takeOccupancyWindow(Domain d);

  private:
    void driveSampling(Tick now);

    CoreShared shared;
    DomainPorts ports;

    FrontEndUnit fe;
    IntUnit intUnit;
    FpUnit fpUnit;
    LsUnit lsUnit;

    std::uint64_t commitCap;
    bool stopReq = false;

    // Per-domain occupancy accumulation (see takeOccupancyWindow).
    std::array<std::uint64_t, numDomains> occCycles{};
    std::array<std::uint64_t, numDomains> occSum{};
};

} // namespace mcd

#endif // MCD_CPU_CORE_UNITS_HH
