#include "fp_unit.hh"

namespace mcd {

void
FpUnit::tick(Tick now)
{
    aluPool.newCycle();
    mulDivPool.newCycle();

    const double period =
        s.clk[domainIndex(Domain::FloatingPoint)]->period();
    int issued = 0;
    bool anyIssued = false;

    for (auto &ent : p.fpIq) {
        if (issued >= s.cfg.fpIssueWidth)
            break;
        DynInst *in = ent.value;
        if (in->issued)
            continue;
        if (!p.fpIq.probe(ent, now))
            continue;
        if (!(p.results.ready(in->src1Phys, in->src1Fp,
                              Domain::FloatingPoint, now) &&
              p.results.ready(in->src2Phys, in->src2Fp,
                              Domain::FloatingPoint, now))) {
            continue;
        }

        Opcode op = in->inst.op;
        bool isLong = fuClass(op) == FuClass::FpMulDivSqrt;
        FuPool &pool = isLong ? mulDivPool : aluPool;
        if (!pool.canIssue(now))
            continue;

        int lat = execLatency(op);
        Tick done = now + static_cast<Tick>((lat - 0.5) * period);
        pool.issue(now, done);

        in->issued = true;
        in->cold->issueTime = now;
        in->execDoneTime = done;
        in->executed = true;
        anyIssued = true;

        if (in->dest != DestKind::None) {
            s.produceResult(in, done, Domain::FloatingPoint);
            s.chargePower(Unit::FpRegWrite);
        }

        s.chargePower(Unit::FpIqIssue);
        s.chargePower(isLong ? Unit::FpMulDiv : Unit::FpAlu);
        int reads = (in->src1Phys != noReg && in->src1Fp ? 1 : 0) +
            (in->src2Phys != noReg && in->src2Fp ? 1 : 0);
        s.chargePower(Unit::FpRegRead, reads);

        p.fpIqCredits.give(now);
        ++issued;
    }

    if (anyIssued) {
        p.fpIq.eraseIf([](const SyncPort<DynInst *>::Entry &e) {
            return e.value->issued;
        });
    }
}

} // namespace mcd
