#include "core_units.hh"

#include <algorithm>

#include "core/sampling.hh"

namespace mcd {

CoreUnits::CoreUnits(const CoreParams &params, Executor &oracle,
                     MemoryHierarchy &memory,
                     std::array<ClockDomain *, numDomains> clocks,
                     double sync_fraction, PowerModel *power,
                     TraceCollector *collector, std::uint64_t commit_cap)
    : shared(params, oracle, memory, clocks, power, collector),
      ports(shared.intRename, shared.fpRename,
            params.intIssueQueueSize, params.fpIssueQueueSize,
            params.lsqSize),
      fe(shared, ports), intUnit(shared, ports), fpUnit(shared, ports),
      lsUnit(shared, ports), commitCap(commit_cap)
{
    // Build the synchronization-rule matrix. T_s is 30% of the period
    // of the highest frequency; 1 GHz is the architectural maximum.
    Hertz fmax = 0.0;
    for (ClockDomain *c : clocks)
        fmax = std::max(fmax, c->frequency());
    std::array<std::array<SyncRule, numDomains>, numDomains> rules;
    for (int from = 0; from < numDomains; ++from) {
        for (int to = 0; to < numDomains; ++to) {
            bool cross = clocks[from] != clocks[to];
            rules[from][to] =
                SyncRule::forMaxFrequency(cross, fmax, sync_fraction);
            ports.results.setRule(domainFromIndex(from),
                                  domainFromIndex(to), rules[from][to]);
        }
    }

    int fe_i = domainIndex(Domain::FrontEnd);
    int int_i = domainIndex(Domain::Integer);
    int fp_i = domainIndex(Domain::FloatingPoint);
    int ls_i = domainIndex(Domain::LoadStore);

    // Dispatch crosses from the front end into the back-end domains.
    ports.intIq.setRule(rules[fe_i][int_i]);
    ports.fpIq.setRule(rules[fe_i][fp_i]);
    ports.lsq.setRule(rules[fe_i][ls_i]);

    // Issue-queue credit returns cross from the back-end domains into
    // the front end. Rebind the rule only — the channels were built
    // (and their in-flight rings pre-sized) by the DomainPorts ctor.
    ports.intIqCredits.setRule(rules[int_i][fe_i]);
    ports.fpIqCredits.setRule(rules[fp_i][fe_i]);

    // Generated addresses cross from the integer domain into the LSQ.
    ports.addr.setRule(rules[int_i][ls_i]);

    // Completion/resolution signals cross from each domain into the
    // front end.
    for (int from = 0; from < numDomains; ++from)
        ports.completion.setRule(domainFromIndex(from), rules[from][fe_i]);
}

void
CoreUnits::tickDomain(Domain d, Tick now)
{
    int di = domainIndex(d);
    ++occCycles[di];
    occSum[di] += queueLength(d);

    switch (d) {
      case Domain::FrontEnd:
        fe.tick(now);
        if (shared.sampling)
            driveSampling(now);
        // The commit cap counts fast-forwarded instructions too: a
        // sampled run covers the same dynamic stream as a full-detail
        // run with the same cap.
        if (shared.haltCommitted ||
            (commitCap && shared.stat.committed + ffExecuted() >=
                commitCap)) {
            stopReq = true;
        }
        break;
      case Domain::Integer: intUnit.tick(now); break;
      case Domain::FloatingPoint: fpUnit.tick(now); break;
      case Domain::LoadStore: lsUnit.tick(now); break;
    }
}

void
CoreUnits::driveSampling(Tick now)
{
    SamplingPolicy *sp = shared.sampling;
    if (!sp->onFrontEndTick(shared.stat.committed, now,
                            shared.window.empty(), fe.haltSeen())) {
        return;
    }

    // The window drained at an architectural boundary: run one
    // functional fast-forward segment straight on the oracle. The
    // caches and the branch predictor are warmed; no simulated time
    // passes and no power is charged (both are extrapolated from the
    // detailed windows — see SamplingPolicy::summary).
    std::uint64_t budget = sp->ffBudget(commitCap, shared.stat.committed);
    const std::uint64_t lineMask = ~static_cast<std::uint64_t>(
        shared.mem.l1i().params().lineBytes - 1);
    std::uint64_t lastLine = ~std::uint64_t{0};
    std::uint64_t executed = 0;
    bool halted = false;
    while (executed < budget) {
        std::uint64_t pc = shared.oracle.pc();
        std::uint64_t line = pc & lineMask;
        if (line != lastLine) {
            shared.mem.instFetch(pc, now);
            lastLine = line;
        }
        ExecResult er = shared.oracle.step();
        ++executed;
        if (isMem(er.inst.op)) {
            shared.mem.dataAccess(er.memAddr & ~7ULL,
                                  isStore(er.inst.op), now);
        }
        fe.warmFastForward(er);
        if (er.halted) {
            halted = true;
            break;
        }
    }
    sp->onFastForwardDone(executed, halted, shared.stat.committed);
    if (halted) {
        // HALT was consumed functionally: no in-flight instruction
        // remains to commit it, so the stop is requested here.
        stopReq = true;
    }
}

std::uint64_t
CoreUnits::ffExecuted() const
{
    return shared.sampling ? shared.sampling->ffExecuted() : 0;
}

std::uint64_t
CoreUnits::ringGrows() const
{
    return fe.ringGrows() + ports.lsq.containerGrows() +
        ports.intIqCredits.grows() + ports.fpIqCredits.grows();
}

PipelineStats
CoreUnits::stats() const
{
    PipelineStats st = shared.stat;
    st.syncDispatchWaits = ports.intIq.waits() + ports.fpIq.waits() +
        ports.lsq.waits();
    st.syncCommitStalls = ports.completion.waits();
    st.syncAddrWaits = ports.addr.waits();
    return st;
}

std::size_t
CoreUnits::queueLength(Domain d) const
{
    switch (d) {
      case Domain::FrontEnd: return fe.robLength();
      case Domain::Integer: return intUnit.queueLength();
      case Domain::FloatingPoint: return fpUnit.queueLength();
      case Domain::LoadStore: return lsUnit.queueLength();
    }
    return 0;
}

int
CoreUnits::queueCapacity(Domain d) const
{
    switch (d) {
      case Domain::FrontEnd: return shared.cfg.robSize;
      case Domain::Integer: return shared.cfg.intIssueQueueSize;
      case Domain::FloatingPoint: return shared.cfg.fpIssueQueueSize;
      case Domain::LoadStore: return shared.cfg.lsqSize;
    }
    return 0;
}

OccupancyWindow
CoreUnits::takeOccupancyWindow(Domain d)
{
    int di = domainIndex(d);
    OccupancyWindow w;
    w.cycles = occCycles[di];
    w.occupancySum = occSum[di];
    w.queueLength = queueLength(d);
    w.capacity = queueCapacity(d);
    occCycles[di] = 0;
    occSum[di] = 0;
    return w;
}

} // namespace mcd
