#include "bpred.hh"

namespace mcd {

BranchPredictor::BranchPredictor(const BpredParams &params)
    : cfg(params),
      bimodal(params.bimodalSize, 2),
      history(params.l1Size, 0),
      pagTable(params.l2Size, 2),
      chooser(params.chooserSize, 2),
      btb(static_cast<std::size_t>(params.btbSets) * params.btbAssoc),
      historyMask(static_cast<std::uint16_t>((1u << params.historyBits) - 1))
{}

std::uint64_t
BranchPredictor::pcIndex(std::uint64_t pc, std::uint64_t size) const
{
    return (pc >> 2) & (size - 1);
}

BpredLookup
BranchPredictor::predictBranch(std::uint64_t pc)
{
    ++stat.lookups;
    BpredLookup r;

    std::uint8_t bi = bimodal[pcIndex(pc, bimodal.size())];
    std::uint16_t h = history[pcIndex(pc, history.size())];
    std::uint8_t pa = pagTable[h & (pagTable.size() - 1)];
    std::uint8_t ch = chooser[pcIndex(pc, chooser.size())];

    bool biTaken = counterTaken(bi);
    bool paTaken = counterTaken(pa);
    r.taken = counterTaken(ch) ? paTaken : biTaken;

    if (r.taken) {
        BtbEntry *e = btbFind(pc);
        if (e) {
            r.btbHit = true;
            r.target = e->target;
        } else {
            ++stat.btbMisses;
        }
    }
    return r;
}

BpredLookup
BranchPredictor::predictIndirect(std::uint64_t pc)
{
    ++stat.lookups;
    BpredLookup r;
    r.taken = true;
    BtbEntry *e = btbFind(pc);
    if (e) {
        r.btbHit = true;
        r.target = e->target;
    } else {
        ++stat.btbMisses;
    }
    return r;
}

void
BranchPredictor::update(std::uint64_t pc, bool taken, std::uint64_t target,
                        bool predicted_taken, bool conditional)
{
    if (conditional) {
        ++stat.condBranches;
        if (taken != predicted_taken)
            ++stat.condMispredicts;

        std::uint64_t biIdx = pcIndex(pc, bimodal.size());
        std::uint64_t hIdx = pcIndex(pc, history.size());
        std::uint16_t h = history[hIdx];
        std::uint64_t paIdx = h & (pagTable.size() - 1);

        bool biTaken = counterTaken(bimodal[biIdx]);
        bool paTaken = counterTaken(pagTable[paIdx]);

        // Chooser trains toward the component that was right.
        if (biTaken != paTaken) {
            std::uint64_t chIdx = pcIndex(pc, chooser.size());
            chooser[chIdx] = bump(chooser[chIdx], paTaken == taken);
        }

        bimodal[biIdx] = bump(bimodal[biIdx], taken);
        pagTable[paIdx] = bump(pagTable[paIdx], taken);
        history[hIdx] = static_cast<std::uint16_t>(
            ((h << 1) | (taken ? 1 : 0)) & historyMask);
    }

    if (taken)
        btbInstall(pc, target);
}

BranchPredictor::BtbEntry *
BranchPredictor::btbFind(std::uint64_t pc)
{
    std::uint64_t set = pcIndex(pc, cfg.btbSets);
    std::uint64_t tag = pc >> 2;
    BtbEntry *base = &btb[set * cfg.btbAssoc];
    for (int w = 0; w < cfg.btbAssoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = ++btbClock;
            return &base[w];
        }
    }
    return nullptr;
}

void
BranchPredictor::btbInstall(std::uint64_t pc, std::uint64_t target)
{
    std::uint64_t set = pcIndex(pc, cfg.btbSets);
    std::uint64_t tag = pc >> 2;
    BtbEntry *base = &btb[set * cfg.btbAssoc];
    BtbEntry *victim = base;
    for (int w = 0; w < cfg.btbAssoc; ++w) {
        BtbEntry &e = base[w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lru = ++btbClock;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lru = ++btbClock;
}

} // namespace mcd
