#include "front_end_unit.hh"

#include "common/log.hh"
#include "core/sampling.hh"

namespace mcd {

namespace {

/** Does this instruction occupy an integer issue-queue slot? */
bool
usesIntIq(const Inst &inst)
{
    Opcode op = inst.op;
    if (op == Opcode::NOP || op == Opcode::HALT)
        return false;
    // Memory ops use the integer queue for address generation.
    return isIntAlu(op) || isIntMulDiv(op) || isBranch(op) ||
        isJump(op) || isMem(op);
}

bool
usesFpIq(const Inst &inst)
{
    return isFp(inst.op);
}

} // namespace

void
FrontEndUnit::commitStage(Tick now)
{
    int n = 0;
    while (n < s.cfg.retireWidth && !rob.empty()) {
        DynInst *in = rob.front();

        bool complete;
        if (in->isMemOp()) {
            complete = in->memDone;
        } else if (in->isHalt || in->inst.op == Opcode::NOP) {
            complete = in->executed;
        } else {
            complete = in->executed;
        }
        if (!complete)
            break;
        if (!p.completion.probe(in->completionDomain(),
                                in->completionTime(), now)) {
            break;
        }

        in->cold->commitTime = now;
        in->retired = true;
        s.lastCommit = now;

        // No pipeline structure may keep a pointer to a retired
        // instruction: its window slot is reclaimed below.
        if (in->isMemOp()) {
            mcdAssert(!p.lsq.empty() && p.lsq.front().value == in,
                      "LSQ/commit order mismatch");
            p.lsq.popFront();
        }
        if (stallBranch == in) {
            // The branch resolved and committed in the same front-end
            // cycle; begin the redirect penalty now.
            stallBranch = nullptr;
            redirectPenaltyLeft = s.cfg.mispredictPenalty;
        }

        // Free the previous mapping of the destination register.
        if (in->oldDestPhys != noReg) {
            if (in->dest == DestKind::Fp)
                s.fpRename.release(in->oldDestPhys);
            else
                s.intRename.release(in->oldDestPhys);
        }
        if (in->isMemOp())
            ++lsqFree;

        s.chargePower(Unit::Rob);
        ++s.stat.committed;
        Opcode op = in->inst.op;
        if (in->isLoadOp())
            ++s.stat.committedLoads;
        else if (in->isStoreOp())
            ++s.stat.committedStores;
        else if (isFp(op))
            ++s.stat.committedFp;
        else if (isControl(op)) {
            ++s.stat.committedBranches;
            if (in->mispredicted)
                ++s.stat.mispredicts;
        } else {
            ++s.stat.committedInt;
        }

        recordTrace(in);

        if (in->isHalt)
            s.haltCommitted = true;

        rob.pop_front();
        mcdAssert(!s.window.empty() && &s.window.front() == in,
                  "commit out of window order");
        s.window.pop_front();
        ++n;
        if (s.haltCommitted)
            break;
    }
}

void
FrontEndUnit::renameDispatchStage(Tick now)
{
    int n = 0;
    while (n < s.cfg.decodeWidth && !fetchQueue.empty()) {
        DynInst *in = fetchQueue.front();
        // Fetch-queue entries become readable the cycle after the
        // I-cache delivers them.
        if (now <= in->fetchTime)
            break;
        if (!dispatchOne(in, now))
            break;
        fetchQueue.pop_front();
        ++n;
    }
}

bool
FrontEndUnit::dispatchOne(DynInst *in, Tick now)
{
    const Inst &inst = in->inst;
    Opcode op = inst.op;

    if (static_cast<int>(rob.size()) >= s.cfg.robSize) {
        ++s.stat.robFullStalls;
        return false;
    }

    bool needIntIq = usesIntIq(inst);
    bool needFpIq = usesFpIq(inst);
    bool needLsq = isMem(op);
    DestKind dk = destKind(inst);

    if (dk == DestKind::Int && !s.intRename.hasFree()) {
        ++s.stat.regFullStalls;
        return false;
    }
    if (dk == DestKind::Fp && !s.fpRename.hasFree()) {
        ++s.stat.regFullStalls;
        return false;
    }
    if (needIntIq && p.intIqCredits.credits(now) <= 0) {
        ++s.stat.iqFullStalls;
        return false;
    }
    if (needFpIq && p.fpIqCredits.credits(now) <= 0) {
        ++s.stat.iqFullStalls;
        return false;
    }
    if (needLsq && lsqFree <= 0) {
        ++s.stat.lsqFullStalls;
        return false;
    }

    // Rename sources.
    if (readsIntRs1(op) && inst.rs1 != reg::zero) {
        in->src1Phys = s.intRename.lookup(inst.rs1);
        in->src1Fp = false;
        in->cold->src1Producer = s.intRename.lastWriterSeq(inst.rs1);
    } else if (readsFpRs1(op)) {
        in->src1Phys = s.fpRename.lookup(inst.rs1);
        in->src1Fp = true;
        in->cold->src1Producer = s.fpRename.lastWriterSeq(inst.rs1);
    }
    if (readsIntRs2(op) && inst.rs2 != reg::zero) {
        in->src2Phys = s.intRename.lookup(inst.rs2);
        in->src2Fp = false;
        in->cold->src2Producer = s.intRename.lastWriterSeq(inst.rs2);
    } else if (readsFpRs2(op)) {
        in->src2Phys = s.fpRename.lookup(inst.rs2);
        in->src2Fp = true;
        in->cold->src2Producer = s.fpRename.lastWriterSeq(inst.rs2);
    }

    // Rename destination.
    in->dest = dk;
    if (dk == DestKind::Int) {
        auto [phys, old] = s.intRename.allocate(inst.rd, in->seq);
        in->destPhys = phys;
        in->oldDestPhys = old;
    } else if (dk == DestKind::Fp) {
        auto [phys, old] = s.fpRename.allocate(inst.rd, in->seq);
        in->destPhys = phys;
        in->oldDestPhys = old;
    }

    in->dispatched = true;
    in->dispatchTime = now;
    rob.push_back(in);

    s.chargePower(Unit::Rename);
    s.chargePower(Unit::Rob);
    s.chargePower(Unit::FetchQueue);

    if (needIntIq) {
        p.intIq.push(in, now);
        p.intIqCredits.take();
        s.chargePower(Unit::IntIqWrite);
    }
    if (needFpIq) {
        p.fpIq.push(in, now);
        p.fpIqCredits.take();
        s.chargePower(Unit::FpIqWrite);
    }
    if (needLsq) {
        p.lsq.push(in, now);
        --lsqFree;
        s.chargePower(Unit::Lsq);
    }

    if (op == Opcode::NOP || op == Opcode::HALT) {
        // Completes in the front end without visiting a back-end queue.
        in->executed = true;
        in->cold->issueTime = now;
        in->execDoneTime = now + 1;
    }
    return true;
}

void
FrontEndUnit::fetchStage(Tick now)
{
    if (haltFetched)
        return;

    // Sampled simulation: while the policy drains toward a
    // fast-forward boundary, fetch is gated so the window empties at
    // a clean architectural point.
    if (s.sampling && s.sampling->fetchGated())
        return;

    // Waiting for a mispredicted branch to resolve: the front end
    // fetches down the wrong path, burning fetch energy to no effect.
    // The resolution watch is a spectator on the completion gate, so
    // it probes without stall accounting.
    if (stallBranch) {
        if (stallBranch->executed &&
            p.completion.probeQuiet(execDomain(stallBranch->inst.op),
                                    stallBranch->execDoneTime, now)) {
            stallBranch = nullptr;
            redirectPenaltyLeft = s.cfg.mispredictPenalty;
            wrongPathChargeLeft = 0;
        } else {
            ++s.stat.wrongPathFetchCycles;
            // Wrong-path fetch burns front-end energy only until the
            // fetch queue fills; after that the front end sits gated.
            if (wrongPathChargeLeft > 0) {
                --wrongPathChargeLeft;
                s.chargePower(Unit::Icache);
                s.chargePower(Unit::Bpred);
            }
            return;
        }
    }
    if (redirectPenaltyLeft > 0) {
        --redirectPenaltyLeft;
        ++s.stat.wrongPathFetchCycles;
        return;
    }
    if (now < fetchReadyTime) {
        ++s.stat.icacheMissStallCycles;
        return;
    }

    const std::uint64_t lineMask =
        ~static_cast<std::uint64_t>(s.mem.l1i().params().lineBytes - 1);
    std::uint64_t curLine = 0;
    Tick groupReady = 0;
    int fetched = 0;

    while (fetched < s.cfg.decodeWidth &&
           static_cast<int>(fetchQueue.size()) < s.cfg.fetchQueueSize) {
        std::uint64_t pc = s.oracle.pc();

        if (fetched == 0) {
            MemAccessResult r = s.mem.instFetch(pc, now);
            s.chargePower(Unit::Icache);
            s.chargePower(Unit::Bpred);
            if (!r.l1Hit) {
                // Miss: stall fetch until the line arrives (the line
                // is installed and hits on retry).
                fetchReadyTime = r.ready;
                return;
            }
            curLine = pc & lineMask;
            groupReady = r.ready;
        } else if ((pc & lineMask) != curLine) {
            break;  // next line next cycle
        }

        ExecResult er = s.oracle.step();
        DynInst *in = s.window.emplace_back();
        in->seq = er.seq;
        in->cold->pc = er.pc;
        in->inst = er.inst;
        in->cold->taken = er.taken;
        in->cold->nextPc = er.nextPc;
        in->memAddr = er.memAddr;
        in->isHalt = er.halted;
        in->fetchTime = groupReady;

        Opcode op = er.inst.op;
        if (isBranch(op)) {
            BpredLookup look = predictor.predictBranch(er.pc);
            in->cold->predictedTaken = look.taken;
            bool correct;
            if (er.taken) {
                correct = look.taken && look.btbHit &&
                    look.target == er.nextPc;
            } else {
                correct = !look.taken;
            }
            in->mispredicted = !correct;
            predictor.update(er.pc, er.taken, er.nextPc, look.taken,
                             true);
        } else if (op == Opcode::JALR) {
            BpredLookup look = predictor.predictIndirect(er.pc);
            in->cold->predictedTaken = true;
            in->mispredicted = !(look.btbHit && look.target == er.nextPc);
            predictor.update(er.pc, true, er.nextPc, true, false);
        }
        // JAL: target computed in the decoder; never a misprediction.

        fetchQueue.push_back(in);
        ++fetched;
        ++s.stat.fetched;

        if (er.halted) {
            haltFetched = true;
            break;
        }
        if (in->mispredicted) {
            stallBranch = in;
            wrongPathChargeLeft =
                s.cfg.fetchQueueSize / s.cfg.decodeWidth + 2;
            break;
        }
        if (er.taken)
            break;  // redirect: next group starts at the target
    }
}

void
FrontEndUnit::warmFastForward(const ExecResult &er)
{
    // Keep the predictor's lookup/update sequence identical to the
    // detailed fetch path so its tables train on the skipped stream.
    Opcode op = er.inst.op;
    if (isBranch(op)) {
        BpredLookup look = predictor.predictBranch(er.pc);
        predictor.update(er.pc, er.taken, er.nextPc, look.taken, true);
    } else if (op == Opcode::JALR) {
        predictor.predictIndirect(er.pc);
        predictor.update(er.pc, true, er.nextPc, true, false);
    }
}

void
FrontEndUnit::recordTrace(const DynInst *in)
{
    if (!s.tracer || !s.tracer->isEnabled())
        return;
    InstTrace t;
    t.seq = in->seq;
    t.op = in->inst.op;
    t.fu = fuClass(in->inst.op);
    t.dep1 = in->cold->src1Producer;
    t.dep2 = in->cold->src2Producer;
    t.mispredicted = in->mispredicted;
    t.fetchTime = in->fetchTime;
    t.dispatchTime = in->dispatchTime;
    t.issueTime = in->cold->issueTime;
    t.execDone = in->execDoneTime;
    t.memIssue = in->cold->memIssueTime;
    t.memDone = in->memDoneTime;
    t.memFixed = in->cold->memFixedLat;
    t.commitTime = in->cold->commitTime;
    s.tracer->record(t);
}

} // namespace mcd
