/**
 * @file
 * Branch prediction: a combining predictor (bimodal + 2-level PAg)
 * with a set-associative BTB, per paper Table 1.
 */

#ifndef MCD_CPU_BPRED_HH
#define MCD_CPU_BPRED_HH

#include <cstdint>
#include <vector>

#include "cpu/params.hh"

namespace mcd {

/** Outcome of a branch predictor lookup. */
struct BpredLookup
{
    bool taken = false;         //!< predicted direction
    bool btbHit = false;        //!< target available
    std::uint64_t target = 0;   //!< predicted target (valid if btbHit)
};

/** Branch predictor statistics. */
struct BpredStats
{
    std::uint64_t lookups = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t btbMisses = 0;

    double
    mispredictRate() const
    {
        return condBranches
            ? static_cast<double>(condMispredicts) / condBranches
            : 0.0;
    }
};

/**
 * Combining predictor: a 4096-entry chooser selects between a
 * 1024-entry bimodal table and a PAg predictor (1024-entry level-1
 * history table of 10-bit histories indexing a 1024-entry level-2
 * counter table). All counters are 2-bit saturating.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BpredParams &params);

    /** Predict a conditional branch at @p pc. */
    BpredLookup predictBranch(std::uint64_t pc);

    /** Predict an indirect jump (JALR) target via the BTB. */
    BpredLookup predictIndirect(std::uint64_t pc);

    /**
     * Train with the resolved outcome.
     *
     * @param pc branch address
     * @param taken actual direction
     * @param target actual target (installed in the BTB when taken)
     * @param predicted_taken what predictBranch returned
     * @param conditional false for JALR-style indirect jumps
     */
    void update(std::uint64_t pc, bool taken, std::uint64_t target,
                bool predicted_taken, bool conditional);

    const BpredStats &stats() const { return stat; }
    void resetStats() { stat = BpredStats(); }

  private:
    struct BtbEntry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        std::uint64_t lru = 0;
    };

    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static std::uint8_t
    bump(std::uint8_t c, bool taken)
    {
        if (taken)
            return c < 3 ? c + 1 : 3;
        return c > 0 ? c - 1 : 0;
    }

    std::uint64_t pcIndex(std::uint64_t pc, std::uint64_t size) const;
    BtbEntry *btbFind(std::uint64_t pc);
    void btbInstall(std::uint64_t pc, std::uint64_t target);

    BpredParams cfg;
    std::vector<std::uint8_t> bimodal;
    std::vector<std::uint16_t> history;     //!< PAg level-1
    std::vector<std::uint8_t> pagTable;     //!< PAg level-2
    std::vector<std::uint8_t> chooser;      //!< 0-1 bimodal, 2-3 PAg
    std::vector<BtbEntry> btb;
    std::uint64_t btbClock = 0;
    std::uint16_t historyMask;
    BpredStats stat;
};

} // namespace mcd

#endif // MCD_CPU_BPRED_HH
