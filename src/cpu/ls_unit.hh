/**
 * @file
 * Load/store domain unit: 64-entry LSQ, 2 cache ports, L1D + L2.
 *
 * Consumes LSQ entries through the lsq SyncPort (front end -> LS),
 * waits for generated addresses on the addr SyncSignal (integer ->
 * LS), reads store data over the cross-domain result bus, and models
 * SimpleScalar-style perfect disambiguation with store-buffer
 * forwarding.
 */

#ifndef MCD_CPU_LS_UNIT_HH
#define MCD_CPU_LS_UNIT_HH

#include "cpu/core_shared.hh"

namespace mcd {

class LsUnit
{
  public:
    LsUnit(CoreShared &shared, DomainPorts &ports) : s(shared), p(ports) {}

    /** One load/store-domain cycle at edge time @p now. */
    void tick(Tick now);

    std::size_t queueLength() const { return p.lsq.size(); }

  private:
    CoreShared &s;
    DomainPorts &p;
};

} // namespace mcd

#endif // MCD_CPU_LS_UNIT_HH
