/**
 * @file
 * Integer domain unit: 20-entry issue queue, 4 ALUs + mul/div unit.
 * Also executes memory address generation (21264-style AGUs).
 *
 * Consumes dispatched work from the intIq SyncPort (front end ->
 * integer), reads operands over the cross-domain result bus, and
 * returns issue-queue credits to the front end through the
 * synchronized credit channel.
 */

#ifndef MCD_CPU_INT_UNIT_HH
#define MCD_CPU_INT_UNIT_HH

#include "cpu/core_shared.hh"
#include "cpu/fu_pool.hh"

namespace mcd {

class IntUnit
{
  public:
    IntUnit(CoreShared &shared, DomainPorts &ports)
        : s(shared), p(ports),
          aluPool(shared.cfg.intAlus, true),
          mulDivPool(shared.cfg.intMulDivs, false)
    {}

    /** One integer-domain cycle at edge time @p now. */
    void tick(Tick now);

    std::size_t queueLength() const { return p.intIq.size(); }

  private:
    CoreShared &s;
    DomainPorts &p;

    FuPool aluPool;
    FuPool mulDivPool;
};

} // namespace mcd

#endif // MCD_CPU_INT_UNIT_HH
