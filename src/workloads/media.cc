/**
 * @file
 * MediaBench kernels: adpcm, epic, g721, mesa.
 */

#include <cmath>

#include "workloads.hh"

#include "isa/builder.hh"

namespace mcd {
namespace workloads {

namespace {

/** Standard IMA-ADPCM step-size table (89 entries). */
const int adpcmStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34,
    37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
    157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494,
    544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552,
    1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428,
    4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
    29794, 32767,
};

const int adpcmIndexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

} // namespace

Program
buildAdpcm(int scale)
{
    // IMA-ADPCM encode over a synthetic audio buffer. Serial
    // dependence through the predictor state (valpred/index) keeps ILP
    // low; branches are data-dependent but mostly well-predicted;
    // the working set (audio + tables) is L1-resident.
    Builder b("adpcm");

    constexpr int nSamples = 2048;
    std::uint64_t audio = b.dataBlock(nSamples);
    for (int i = 0; i < nSamples; ++i) {
        double v = 2000.0 * std::sin(i * 0.085) +
            700.0 * std::sin(i * 0.53 + 1.0);
        b.setDataWord(audio + 8ull * i,
                      static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(v)));
    }
    std::uint64_t steps = b.dataBlock(89);
    for (int i = 0; i < 89; ++i) {
        b.setDataWord(steps + 8ull * i,
                      static_cast<std::uint64_t>(adpcmStepTable[i]));
    }
    std::uint64_t idxTab = b.dataBlock(8);
    for (int i = 0; i < 8; ++i) {
        b.setDataWord(idxTab + 8ull * i,
                      static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(adpcmIndexTable[i])));
    }
    std::uint64_t out = b.dataBlock(nSamples);

    const int iters = 2800 * scale;

    b.li(1, 0);                 // i
    b.li(2, iters);
    b.li(4, static_cast<std::int64_t>(audio));
    b.li(5, static_cast<std::int64_t>(steps));
    b.li(6, static_cast<std::int64_t>(idxTab));
    b.li(7, static_cast<std::int64_t>(out));
    b.li(10, 0);                // valpred
    b.li(11, 0);                // step index
    b.li(checksumReg, 0);

    Label loop = b.newLabel();
    Label pos = b.newLabel();
    Label c1 = b.newLabel();
    Label c2 = b.newLabel();
    Label c3 = b.newLabel();
    Label addv = b.newLabel();
    Label clamp = b.newLabel();
    Label skipHi = b.newLabel();
    Label skipLo = b.newLabel();
    Label iok1 = b.newLabel();
    Label iok2 = b.newLabel();

    b.bind(loop);
    b.andi(18, 1, nSamples - 1);
    b.slli(18, 18, 3);
    b.add(18, 4, 18);
    b.ld(13, 18, 0);            // sample
    b.sub(14, 13, 10);          // delta = sample - valpred
    b.addi(15, 0, 0);           // sign = 0
    b.bge(14, 0, pos);
    b.sub(14, 0, 14);
    b.addi(15, 0, 1);
    b.bind(pos);
    b.slli(19, 11, 3);
    b.add(19, 5, 19);
    b.ld(12, 19, 0);            // step = steps[index]
    b.addi(16, 0, 0);           // code = 0
    b.blt(14, 12, c1);
    b.ori(16, 16, 4);
    b.sub(14, 14, 12);
    b.bind(c1);
    b.srli(20, 12, 1);
    b.blt(14, 20, c2);
    b.ori(16, 16, 2);
    b.sub(14, 14, 20);
    b.bind(c2);
    b.srli(20, 12, 2);
    b.blt(14, 20, c3);
    b.ori(16, 16, 1);
    b.bind(c3);
    b.slli(17, 16, 1);          // vpdiff = ((2*code+1)*step) >> 3
    b.addi(17, 17, 1);
    b.mul(17, 17, 12);
    b.srai(17, 17, 3);
    b.beq(15, 0, addv);
    b.sub(10, 10, 17);
    b.j(clamp);
    b.bind(addv);
    b.add(10, 10, 17);
    b.bind(clamp);
    b.li(18, 32767);
    b.blt(10, 18, skipHi);      // usually taken
    b.mv(10, 18);
    b.bind(skipHi);
    b.li(19, -32768);
    b.bge(10, 19, skipLo);      // usually taken
    b.mv(10, 19);
    b.bind(skipLo);
    b.slli(19, 16, 3);          // index += indexTable[code]
    b.add(19, 6, 19);
    b.ld(20, 19, 0);
    b.add(11, 11, 20);
    b.bge(11, 0, iok1);
    b.addi(11, 0, 0);
    b.bind(iok1);
    b.li(19, 88);
    b.bge(19, 11, iok2);
    b.mv(11, 19);
    b.bind(iok2);
    b.andi(18, 1, nSamples - 1);
    b.slli(18, 18, 3);
    b.add(18, 7, 18);
    b.st(16, 18, 0);            // out[i] = code
    b.xor_(checksumReg, checksumReg, 10);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Program
buildEpic(int scale)
{
    // Image-pyramid style 3x3 weighted filter over a 64x64 image:
    // nine independent loads per pixel give good ILP; memory access is
    // sequential; branches are loop-closing and highly predictable.
    Builder b("epic");

    constexpr int dim = 64;
    std::uint64_t img = b.dataBlock(dim * dim);
    for (int i = 0; i < dim * dim; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(
            (i * 2654435761ull) >> 20) & 0xff;
        b.setDataWord(img + 8ull * i, v);
    }
    std::uint64_t out = b.dataBlock(dim * dim);

    const int passes = scale;
    const int rowBytes = dim * 8;

    b.li(3, 0);                 // pass
    b.li(4, static_cast<std::int64_t>(img));
    b.li(5, static_cast<std::int64_t>(out));
    b.li(6, passes);
    b.li(checksumReg, 0);

    Label passLoop = b.newLabel();
    Label rowLoop = b.newLabel();
    Label colLoop = b.newLabel();

    b.bind(passLoop);
    b.li(1, 1);                 // row
    b.bind(rowLoop);
    b.li(2, 1);                 // col
    b.bind(colLoop);
    // addr = img + ((row * dim) + col) * 8
    b.slli(10, 1, 6);
    b.add(10, 10, 2);
    b.slli(10, 10, 3);
    b.add(10, 4, 10);
    // 3x3 binomial filter: weights 1 2 1 / 2 4 2 / 1 2 1.
    b.ld(11, 10, -rowBytes - 8);
    b.ld(12, 10, -rowBytes);
    b.ld(13, 10, -rowBytes + 8);
    b.ld(14, 10, -8);
    b.ld(15, 10, 0);
    b.ld(16, 10, 8);
    b.ld(17, 10, rowBytes - 8);
    b.ld(18, 10, rowBytes);
    b.ld(19, 10, rowBytes + 8);
    b.add(20, 11, 13);          // corners
    b.add(20, 20, 17);
    b.add(20, 20, 19);
    b.add(21, 12, 14);          // edges * 2
    b.add(21, 21, 16);
    b.add(21, 21, 18);
    b.slli(21, 21, 1);
    b.slli(22, 15, 2);          // center * 4
    b.add(20, 20, 21);
    b.add(20, 20, 22);
    b.srli(20, 20, 4);          // /16
    // out addr mirrors img addr.
    b.sub(23, 10, 4);
    b.add(23, 5, 23);
    b.st(20, 23, 0);
    b.xor_(checksumReg, checksumReg, 20);
    b.addi(2, 2, 1);
    b.li(24, dim - 1);
    b.blt(2, 24, colLoop);
    b.addi(1, 1, 1);
    b.blt(1, 24, rowLoop);
    b.addi(3, 3, 1);
    b.blt(3, 6, passLoop);
    b.halt();
    return b.build();
}

Program
buildG721(int scale)
{
    // G.721-style codec core: a well-balanced integer mix with four
    // independent dependence chains, small L1-resident tables, few and
    // highly predictable branches -- the paper's high-IPC benchmark.
    Builder b("g721");

    constexpr int tabSize = 256;
    std::uint64_t tab = b.dataBlock(tabSize);
    for (int i = 0; i < tabSize; ++i) {
        b.setDataWord(tab + 8ull * i,
                      static_cast<std::uint64_t>((i * 37 + 11) & 0x3fff));
    }
    std::uint64_t out = b.dataBlock(tabSize);

    const int iters = 6200 * scale;

    b.li(1, 0);                 // i
    b.li(2, iters);
    b.li(4, static_cast<std::int64_t>(tab));
    b.li(5, static_cast<std::int64_t>(out));
    b.li(10, 1);                // chain a
    b.li(11, 2);                // chain b
    b.li(12, 3);                // chain c
    b.li(13, 5);                // chain d
    b.li(checksumReg, 0);

    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(14, 1, tabSize - 1);
    b.slli(14, 14, 3);
    b.add(15, 4, 14);
    b.ld(16, 15, 0);            // t = tab[i & 255]
    // Four independent integer chains (quantizer / predictor update /
    // scale factor / tone detector analogues).
    b.add(10, 10, 16);
    b.srai(17, 10, 3);
    b.xor_(11, 11, 17);
    b.slli(18, 11, 2);
    b.sub(12, 12, 18);
    b.andi(19, 12, 4095);
    b.or_(13, 13, 19);
    b.addi(13, 13, 7);
    b.srli(20, 13, 5);
    b.add(21, 20, 16);
    b.xor_(22, 21, 10);
    b.add(23, 22, 11);
    b.st(23, 15, 0);
    b.xor_(checksumReg, checksumReg, 23);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Program
buildMesa(int scale)
{
    // Mesa software-rasterizer span loop: per-span FP setup (divide)
    // plus per-pixel FP interpolation and integer pixel packing --
    // the paper's mixed FP/integer multimedia code.
    Builder b("mesa");

    constexpr int spanLen = 32;
    constexpr int fbPixels = 8192;
    std::uint64_t fb = b.dataBlock(fbPixels);
    std::uint64_t consts = b.dataBlock(4);
    b.setDataDouble(consts + 0, 1.0);
    b.setDataDouble(consts + 8, 0.015625);   // 1/64
    b.setDataDouble(consts + 16, 255.0);
    b.setDataDouble(consts + 24, 37.5);

    const int spans = 240 * scale;

    b.li(1, 0);                 // span index
    b.li(2, spans);
    b.li(4, static_cast<std::int64_t>(fb));
    b.li(5, static_cast<std::int64_t>(consts));
    b.li(checksumReg, 0);
    b.fld(1, 5, 0);             // f1 = 1.0
    b.fld(2, 5, 8);             // f2 = 1/64
    b.fld(3, 5, 16);            // f3 = 255.0
    b.fld(4, 5, 24);            // f4 = 37.5

    Label spanLoop = b.newLabel();
    Label pxLoop = b.newLabel();

    b.bind(spanLoop);
    // Span setup: dz = 37.5 / (span + 64); z = 1.0; r = 0; dr = dz*255.
    b.addi(10, 1, 64);
    b.itof(5, 10);
    b.fdiv(6, 4, 5);            // dz
    b.fmov(7, 1);               // z = 1.0
    b.fmul(8, 6, 3);            // dr
    b.fmov(9, 7);               // r accumulates
    // Pixel pointer: fb + (span*spanLen % fbPixels)*8.
    b.slli(11, 1, 5);           // span * 32
    b.andi(11, 11, fbPixels - 1);
    b.slli(11, 11, 3);
    b.add(11, 4, 11);
    b.li(12, 0);                // px

    b.bind(pxLoop);
    b.fadd(7, 7, 6);            // z += dz
    b.fadd(9, 9, 8);            // r += dr
    b.fmul(10, 7, 9);           // shade = z * r
    b.fadd(10, 10, 2);
    b.ftoi(13, 10);             // pack
    b.andi(13, 13, 255);
    b.slli(14, 13, 8);
    b.or_(14, 14, 13);
    b.slli(15, 14, 16);
    b.or_(15, 15, 14);
    b.st(15, 11, 0);
    b.xor_(checksumReg, checksumReg, 15);
    b.addi(11, 11, 8);
    b.addi(12, 12, 1);
    b.li(16, spanLen);
    b.blt(12, 16, pxLoop);
    b.addi(1, 1, 1);
    b.blt(1, 2, spanLoop);
    b.halt();
    return b.build();
}

} // namespace workloads
} // namespace mcd
