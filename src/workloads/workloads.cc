#include "workloads.hh"

#include <map>
#include <mutex>
#include <utility>

#include "common/log.hh"

namespace mcd {
namespace workloads {

namespace {

/** Registered generator prefixes (process-global, mutex-protected:
 *  legs build programs concurrently under the thread pool). */
std::mutex &
generatorMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, GeneratorFn> &
generators()
{
    static std::map<std::string, GeneratorFn> table;
    return table;
}

/** The generator owning @p name, or an unset function. */
GeneratorFn
findGenerator(const std::string &name)
{
    std::lock_guard<std::mutex> lock(generatorMutex());
    for (const auto &[prefix, fn] : generators()) {
        if (name.rfind(prefix, 0) == 0)
            return fn;
    }
    return {};
}

} // namespace

const std::vector<WorkloadInfo> &
all()
{
    static const std::vector<WorkloadInfo> table = {
        {"adpcm", "MediaBench", "ref", "entire program", buildAdpcm},
        {"epic", "MediaBench", "ref", "entire program", buildEpic},
        {"g721", "MediaBench", "ref", "0-200M", buildG721},
        {"mesa", "MediaBench", "ref", "entire program", buildMesa},
        {"em3d", "Olden", "4K nodes, arity 10", "70M-119M", buildEm3d},
        {"health", "Olden", "4 levels, 1K iters", "80M-127M",
         buildHealth},
        {"mst", "Olden", "1K nodes", "entire program", buildMst},
        {"power", "Olden", "ref", "0-199M", buildPower},
        {"treeadd", "Olden", "20 levels, 1 iter", "0-200M",
         buildTreeadd},
        {"tsp", "Olden", "ref", "0-189M", buildTsp},
        {"bzip2", "SPEC 2000 Int", "input.source", "1000M-1100M",
         buildBzip2},
        {"gcc", "SPEC 2000 Int", "166.i", "1000M-1100M", buildGcc},
        {"mcf", "SPEC 2000 Int", "ref", "1000M-1100M", buildMcf},
        {"parser", "SPEC 2000 Int", "ref", "1000M-1100M", buildParser},
        {"art", "SPEC 2000 FP", "ref", "300M-400M", buildArt},
        {"swim", "SPEC 2000 FP", "ref", "1000M-1100M", buildSwim},
    };
    return table;
}

const WorkloadInfo &
get(const std::string &name)
{
    for (const WorkloadInfo &w : all()) {
        if (name == w.name)
            return w;
    }
    fatal("unknown workload: " + name);
}

void
registerGenerator(const std::string &prefix, GeneratorFn fn)
{
    if (prefix.empty())
        fatal("registerGenerator: empty prefix");
    if (!fn)
        fatal("registerGenerator: null builder for prefix '" +
              prefix + "'");
    for (const WorkloadInfo &w : all()) {
        if (std::string(w.name).rfind(prefix, 0) == 0)
            fatal("registerGenerator: prefix '" + prefix +
                  "' collides with fixed benchmark '" + w.name + "'");
    }
    std::lock_guard<std::mutex> lock(generatorMutex());
    generators()[prefix] = std::move(fn);
}

bool
isGenerated(const std::string &name)
{
    return static_cast<bool>(findGenerator(name));
}

Program
build(const std::string &name, int scale)
{
    if (scale < 1)
        fatal("workload scale must be >= 1");
    if (GeneratorFn fn = findGenerator(name))
        return fn(name, scale);
    return get(name).build(scale);
}

} // namespace workloads
} // namespace mcd
