/**
 * @file
 * Olden kernels: em3d, health, mst, power, treeadd, tsp.
 */

#include <vector>

#include "workloads.hh"

#include "isa/builder.hh"

namespace mcd {
namespace workloads {

namespace {

/** Deterministic LCG used to scatter data structures in memory. */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : s(seed) {}
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 17;
    }

  private:
    std::uint64_t s;
};

/** A pseudo-random permutation of [0, n). */
std::vector<std::uint32_t>
permutation(std::uint32_t n, std::uint64_t seed)
{
    std::vector<std::uint32_t> p(n);
    for (std::uint32_t i = 0; i < n; ++i)
        p[i] = i;
    Lcg r(seed);
    for (std::uint32_t i = n - 1; i > 0; --i) {
        std::uint32_t j = r.next() % (i + 1);
        std::swap(p[i], p[j]);
    }
    return p;
}

} // namespace

Program
buildEm3d(int scale)
{
    // Electromagnetic wave propagation on a bipartite graph (paper
    // dataset: 4K nodes, arity 10). Each node gathers 10 neighbour
    // values through index and coefficient arrays; the edge arrays
    // stream through ~650 KB per pass, so the kernel is memory-bound
    // with irregular value reads, exactly Olden em3d's profile.
    Builder b("em3d");

    constexpr int nNodes = 4096;
    constexpr int arity = 10;

    std::uint64_t values = b.dataBlock(nNodes);
    std::uint64_t idx = b.dataBlock(nNodes * arity);
    std::uint64_t coeff = b.dataBlock(nNodes * arity);
    std::uint64_t zero = b.dataDouble(0.0);
    std::uint64_t ckscale = b.dataDouble(4096.0);

    Lcg r(0x5eed0001);
    for (int i = 0; i < nNodes; ++i)
        b.setDataDouble(values + 8ull * i, 0.5 + (i % 97) * 0.01);
    for (int e = 0; e < nNodes * arity; ++e) {
        b.setDataWord(idx + 8ull * e, r.next() % nNodes);
        b.setDataDouble(coeff + 8ull * e,
                        0.0625 + (r.next() % 64) * 0.001);
    }

    const int iters = 1500 * scale;

    b.li(1, 0);
    b.li(2, iters);
    b.li(4, static_cast<std::int64_t>(values));
    b.li(5, static_cast<std::int64_t>(idx));
    b.li(6, static_cast<std::int64_t>(coeff));
    b.li(7, static_cast<std::int64_t>(zero));
    b.li(8, static_cast<std::int64_t>(ckscale));
    b.li(checksumReg, 0);

    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(10, 1, nNodes - 1);      // node e
    // Edge-array offset: e * arity * 8 = e*64 + e*16.
    b.slli(12, 10, 6);
    b.slli(13, 10, 4);
    b.add(12, 12, 13);
    b.add(13, 5, 12);               // idx ptr
    b.add(14, 6, 12);               // coeff ptr
    b.fld(1, 7, 0);                 // acc = 0.0
    for (int k = 0; k < arity; ++k) {
        int off = 8 * k;
        b.ld(15, 13, off);          // neighbour index
        b.slli(15, 15, 3);
        b.add(15, 4, 15);
        b.fld(2, 15, 0);            // neighbour value
        b.fld(3, 14, off);          // coefficient
        b.fmul(2, 2, 3);
        b.fadd(1, 1, 2);
    }
    b.slli(16, 10, 3);
    b.add(16, 4, 16);
    b.fst(1, 16, 0);                // values[e] = acc
    b.fld(2, 8, 0);                 // 4096.0 scale for the checksum
    b.fmul(2, 1, 2);
    b.ftoi(17, 2);
    b.xor_(checksumReg, checksumReg, 17);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Program
buildHealth(int scale)
{
    // Columbian health-care simulation: serial traversal of patient
    // lists whose nodes are scattered through a ~200 KB arena, with
    // conditional status updates. The load-to-load pointer chase makes
    // it latency-bound in the load/store domain.
    Builder b("health");

    constexpr int nNodes = 8192;
    constexpr int nLists = 16;
    constexpr int nodesPerList = nNodes / nLists;

    // Node layout: {next, time, status} = 3 words.
    std::uint64_t arena = b.dataBlock(nNodes * 3);
    auto nodeAddr = [&](std::uint32_t slot) {
        return arena + 24ull * slot;
    };
    std::vector<std::uint32_t> perm = permutation(nNodes, 0x5eed0002);
    std::uint64_t heads = b.dataBlock(nLists);
    for (int l = 0; l < nLists; ++l) {
        std::uint32_t prev = 0;
        for (int k = nodesPerList - 1; k >= 0; --k) {
            std::uint32_t slot = perm[l * nodesPerList + k];
            std::uint64_t a = nodeAddr(slot);
            b.setDataWord(a + 0, prev ? nodeAddr(prev - 1) : 0);
            b.setDataWord(a + 8, (slot * 2654435761ULL) & 0xffff);
            b.setDataWord(a + 16, 0);
            prev = slot + 1;
        }
        b.setDataWord(heads + 8ull * l, nodeAddr(perm[l * nodesPerList]));
    }

    const int passes = 2 * scale;

    b.li(1, 0);                 // pass
    b.li(2, passes);
    b.li(4, static_cast<std::int64_t>(heads));
    b.li(checksumReg, 0);

    Label passLoop = b.newLabel();
    Label listLoop = b.newLabel();
    Label walk = b.newLabel();
    Label skip = b.newLabel();
    Label nextList = b.newLabel();

    b.bind(passLoop);
    b.li(3, 0);                 // list index
    b.bind(listLoop);
    b.slli(10, 3, 3);
    b.add(10, 4, 10);
    b.ld(11, 10, 0);            // p = heads[l]
    b.bind(walk);
    b.beq(11, 0, nextList);
    b.ld(12, 11, 8);            // time
    b.andi(13, 12, 3);
    b.bne(13, 0, skip);         // ~75% taken
    b.ld(14, 11, 16);           // status++
    b.addi(14, 14, 1);
    b.st(14, 11, 16);
    b.bind(skip);
    b.add(checksumReg, checksumReg, 12);
    b.ld(11, 11, 0);            // p = p->next (serial chase)
    b.j(walk);
    b.bind(nextList);
    b.addi(3, 3, 1);
    b.li(15, nLists);
    b.blt(3, 15, listLoop);
    b.addi(1, 1, 1);
    b.blt(1, 2, passLoop);
    b.halt();
    return b.build();
}

Program
buildMst(int scale)
{
    // Minimum-spanning-tree core: repeated minimum-weight scans over
    // adjacency rows. The running-minimum compare branch is
    // data-dependent (hard to predict early in each row), and row
    // scans stream a 512 KB weight matrix.
    Builder b("mst");

    constexpr int nNodes = 256;
    std::uint64_t weights = b.dataBlock(nNodes * nNodes);
    Lcg r(0x5eed0003);
    for (int i = 0; i < nNodes * nNodes; ++i)
        b.setDataWord(weights + 8ull * i, (r.next() % 100000) + 1);

    const int rows = 72 * scale;

    b.li(1, 0);                 // row counter
    b.li(2, rows);
    b.li(4, static_cast<std::int64_t>(weights));
    b.li(checksumReg, 0);

    Label rowLoop = b.newLabel();
    Label colLoop = b.newLabel();
    Label noUpd = b.newLabel();

    b.bind(rowLoop);
    b.andi(10, 1, nNodes - 1);      // actual row
    b.slli(10, 10, 11);             // row * 256 * 8
    b.add(10, 4, 10);
    b.li(11, 1000000);              // min
    b.li(12, 0);                    // argmin
    b.li(3, 0);                     // col
    b.bind(colLoop);
    b.slli(13, 3, 3);
    b.add(13, 10, 13);
    b.ld(14, 13, 0);
    b.bge(14, 11, noUpd);           // data-dependent
    b.mv(11, 14);
    b.mv(12, 3);
    b.bind(noUpd);
    b.addi(3, 3, 1);
    b.li(15, nNodes);
    b.blt(3, 15, colLoop);
    b.xor_(checksumReg, checksumReg, 11);
    b.add(checksumReg, checksumReg, 12);
    b.addi(1, 1, 1);
    b.blt(1, 2, rowLoop);
    b.halt();
    return b.build();
}

Program
buildPower(int scale)
{
    // Power-system optimization: compute-bound FP over a tiny working
    // set; long dependence chains through multiplies and (unpipelined)
    // divides keep the FP domain at high utilization.
    Builder b("power");

    std::uint64_t consts = b.dataBlock(8);
    b.setDataDouble(consts + 0, 1.000001);
    b.setDataDouble(consts + 8, 0.999999);
    b.setDataDouble(consts + 16, 3.14159);
    b.setDataDouble(consts + 24, 1.0);
    std::uint64_t leaves = b.dataBlock(1024);
    for (int i = 0; i < 1024; ++i)
        b.setDataDouble(leaves + 8ull * i, 1.0 + (i % 31) * 0.03);

    const int iters = 7500 * scale;

    b.li(1, 0);
    b.li(2, iters);
    b.li(4, static_cast<std::int64_t>(consts));
    b.li(5, static_cast<std::int64_t>(leaves));
    b.li(checksumReg, 0);
    b.fld(1, 4, 0);             // c1
    b.fld(2, 4, 8);             // c2
    b.fld(3, 4, 16);            // pi
    b.fld(4, 4, 24);            // one

    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(10, 1, 1023);
    b.slli(10, 10, 3);
    b.add(10, 5, 10);
    b.fld(5, 10, 0);            // leaf demand
    // Root/branch admittance chain: mul/add/div ladder.
    b.fmul(6, 5, 1);
    b.fadd(6, 6, 4);
    b.fdiv(7, 3, 6);            // unpipelined divide
    b.fmul(7, 7, 2);
    b.fadd(8, 7, 5);
    b.fmul(8, 8, 8);
    b.fsqrt(9, 8);
    b.fadd(5, 9, 7);
    b.fst(5, 10, 0);
    b.ftoi(11, 5);
    b.add(checksumReg, checksumReg, 11);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Program
buildTreeadd(int scale)
{
    // Recursive binary-tree sum (paper dataset: 20 levels; we build a
    // 13-level tree). Nodes are scattered by a permutation so child
    // pointers chase through ~250 KB; the call/return pattern stresses
    // control flow (no return-address stack is modeled).
    Builder b("treeadd");

    constexpr int levels = 13;
    constexpr std::uint32_t nNodes = (1u << levels) - 1;

    // Node layout: {left, right, value} = 3 words.
    std::uint64_t arena = b.dataBlock(nNodes * 3);
    std::vector<std::uint32_t> perm = permutation(nNodes, 0x5eed0004);
    auto nodeAddr = [&](std::uint32_t heap_index) {
        return arena + 24ull * perm[heap_index];
    };
    for (std::uint32_t i = 0; i < nNodes; ++i) {
        std::uint64_t a = nodeAddr(i);
        std::uint32_t l = 2 * i + 1;
        std::uint32_t rr = 2 * i + 2;
        b.setDataWord(a + 0, l < nNodes ? nodeAddr(l) : 0);
        b.setDataWord(a + 8, rr < nNodes ? nodeAddr(rr) : 0);
        b.setDataWord(a + 16, i + 1);
    }

    const int passes = scale;

    Label treeadd = b.newLabel();
    Label leafZero = b.newLabel();
    Label mainStart = b.newLabel();

    b.j(mainStart);

    // uint64 treeadd(node* r10) -> r11
    b.bind(treeadd);
    b.beq(10, 0, leafZero);
    b.addi(reg::sp, reg::sp, -24);
    b.st(reg::ra, reg::sp, 0);
    b.st(10, reg::sp, 8);
    b.ld(10, 10, 0);            // left
    b.jal(reg::ra, treeadd);
    b.ld(12, reg::sp, 8);
    b.st(11, reg::sp, 16);      // left sum
    b.ld(10, 12, 8);            // right
    b.jal(reg::ra, treeadd);
    b.ld(12, reg::sp, 8);
    b.ld(13, reg::sp, 16);
    b.add(11, 11, 13);
    b.ld(14, 12, 16);           // value
    b.add(11, 11, 14);
    b.ld(reg::ra, reg::sp, 0);
    b.addi(reg::sp, reg::sp, 24);
    b.ret();
    b.bind(leafZero);
    b.li(11, 0);
    b.ret();

    b.bind(mainStart);
    b.li(1, 0);
    b.li(2, passes);
    b.li(checksumReg, 0);
    Label passLoop = b.newLabel();
    b.bind(passLoop);
    b.li(10, static_cast<std::int64_t>(nodeAddr(0)));
    b.jal(reg::ra, treeadd);
    b.add(checksumReg, checksumReg, 11);
    b.addi(1, 1, 1);
    b.blt(1, 2, passLoop);
    b.halt();
    return b.build();
}

Program
buildTsp(int scale)
{
    // Traveling-salesman nearest-neighbour core: FP distance
    // evaluations (sub/mul/add) with a data-dependent running-minimum
    // branch over a city coordinate array.
    Builder b("tsp");

    constexpr int nCities = 96;
    std::uint64_t xs = b.dataBlock(nCities);
    std::uint64_t ys = b.dataBlock(nCities);
    std::uint64_t big = b.dataDouble(1e30);
    Lcg r(0x5eed0005);
    for (int i = 0; i < nCities; ++i) {
        b.setDataDouble(xs + 8ull * i, (r.next() % 10000) * 0.001);
        b.setDataDouble(ys + 8ull * i, (r.next() % 10000) * 0.001);
    }

    const int tours = scale;

    b.li(1, 0);                 // tour
    b.li(2, tours);
    b.li(4, static_cast<std::int64_t>(xs));
    b.li(5, static_cast<std::int64_t>(ys));
    b.li(6, static_cast<std::int64_t>(big));
    b.li(checksumReg, 0);

    Label tourLoop = b.newLabel();
    Label fromLoop = b.newLabel();
    Label candLoop = b.newLabel();
    Label noUpd = b.newLabel();

    b.bind(tourLoop);
    b.li(3, 0);                 // from city
    b.bind(fromLoop);
    b.slli(10, 3, 3);
    b.add(11, 4, 10);
    b.fld(1, 11, 0);            // curx
    b.add(11, 5, 10);
    b.fld(2, 11, 0);            // cury
    b.fld(3, 6, 0);             // best = 1e30
    b.li(12, 0);                // argbest
    b.li(13, 0);                // candidate
    b.bind(candLoop);
    b.slli(14, 13, 3);
    b.add(15, 4, 14);
    b.fld(4, 15, 0);            // cx
    b.add(15, 5, 14);
    b.fld(5, 15, 0);            // cy
    b.fsub(4, 4, 1);
    b.fsub(5, 5, 2);
    b.fmul(4, 4, 4);
    b.fmul(5, 5, 5);
    b.fadd(4, 4, 5);            // d2
    b.fclt(16, 4, 3);
    b.beq(16, 0, noUpd);        // data-dependent
    b.beq(13, 3, noUpd);        // skip self
    b.fmov(3, 4);
    b.mv(12, 13);
    b.bind(noUpd);
    b.addi(13, 13, 1);
    b.li(17, nCities);
    b.blt(13, 17, candLoop);
    b.xor_(checksumReg, checksumReg, 12);
    b.addi(3, 3, 1);
    b.blt(3, 17, fromLoop);
    b.addi(1, 1, 1);
    b.blt(1, 2, tourLoop);
    b.halt();
    return b.build();
}

} // namespace workloads
} // namespace mcd
