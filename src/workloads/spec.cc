/**
 * @file
 * SPEC2000 kernels: bzip2, gcc, mcf, parser (integer); art, swim (FP).
 */

#include <vector>

#include "workloads.hh"

#include "isa/builder.hh"

namespace mcd {
namespace workloads {

namespace {

class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : s(seed) {}
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 17;
    }

  private:
    std::uint64_t s;
};

} // namespace

Program
buildBzip2(int scale)
{
    // Block-sorting compression core: odd/even transposition passes
    // over a 64 KB block with data-dependent compare-and-swap
    // branches -- the classic high-mispredict integer profile.
    Builder b("bzip2");

    constexpr int nElems = 8192;
    std::uint64_t block = b.dataBlock(nElems);
    Lcg r(0x5eed0011);
    for (int i = 0; i < nElems; ++i)
        b.setDataWord(block + 8ull * i, r.next() & 0xffffff);

    const int passes = 3 * scale;

    b.li(1, 0);                 // pass
    b.li(2, passes);
    b.li(4, static_cast<std::int64_t>(block));
    b.li(checksumReg, 0);

    Label passLoop = b.newLabel();
    Label elemLoop = b.newLabel();
    Label noSwap = b.newLabel();

    b.bind(passLoop);
    b.andi(10, 1, 1);           // odd/even offset
    b.bind(elemLoop);
    b.slli(11, 10, 3);
    b.add(11, 4, 11);
    b.ld(12, 11, 0);
    b.ld(13, 11, 8);
    b.bge(13, 12, noSwap);      // ~50% on random data
    b.st(13, 11, 0);
    b.st(12, 11, 8);
    b.xor_(checksumReg, checksumReg, 12);
    b.bind(noSwap);
    b.addi(10, 10, 2);
    b.li(14, nElems - 1);
    b.blt(10, 14, elemLoop);
    b.addi(1, 1, 1);
    b.blt(1, 2, passLoop);
    b.halt();
    return b.build();
}

Program
buildGcc(int scale)
{
    // Compiler-style irregular integer code: a hot L1-resident symbol
    // table mixed with cold probes into a 2 MB table (about 1 load in
    // 8 goes cold), giving the paper's high (~12.5%) L1D miss rate,
    // plus partially biased data-dependent branches.
    Builder b("gcc");

    constexpr int hotWords = 1024;          // 8 KB
    constexpr int coldWords = 262144;       // 2 MB
    std::uint64_t hot = b.dataBlock(hotWords);
    std::uint64_t cold = b.dataBlock(coldWords);
    Lcg r(0x5eed0012);
    for (int i = 0; i < hotWords; ++i)
        b.setDataWord(hot + 8ull * i, r.next());
    // The cold table reads as zero-filled (sparse memory): initialize
    // a scattering of entries so values vary.
    for (int i = 0; i < 32768; ++i) {
        std::uint64_t w = r.next() % coldWords;
        b.setDataWord(cold + 8ull * w, r.next());
    }

    const int iters = 7200 * scale;

    b.li(1, 0);
    b.li(2, iters);
    b.li(4, static_cast<std::int64_t>(hot));
    b.li(5, static_cast<std::int64_t>(cold));
    b.li(10, 0x9e3779b9);       // LCG state
    b.li(11, 2654435761);       // multiplier
    b.li(checksumReg, 0);

    Label loop = b.newLabel();
    Label hotPath = b.newLabel();
    Label merge = b.newLabel();
    Label biased = b.newLabel();
    Label store = b.newLabel();
    Label noStore = b.newLabel();

    b.bind(loop);
    b.mul(10, 10, 11);          // advance LCG
    b.addi(10, 10, 12345);
    b.srli(12, 10, 13);
    b.andi(13, 1, 7);
    b.bne(13, 0, hotPath);      // 7/8 taken -> hot
    // Cold probe into the 2 MB table (nearly always an L1D miss).
    b.andi(15, 12, 255);
    b.slli(15, 15, 8);
    b.xor_(14, 12, 15);
    b.slli(14, 14, 3);
    b.li(16, (coldWords - 1) * 8);
    b.and_(14, 14, 16);
    b.add(14, 5, 14);
    b.ld(17, 14, 0);
    b.j(merge);
    b.bind(hotPath);
    b.andi(14, 12, hotWords - 1);
    b.slli(14, 14, 3);
    b.add(14, 4, 14);
    b.ld(17, 14, 0);
    b.bind(merge);
    // Decision tree on the loaded value: one biased branch (~75%
    // taken) and one close to 50/50.
    b.andi(18, 17, 63);
    b.li(19, 16);
    b.bge(18, 19, biased);      // ~75% taken
    b.add(checksumReg, checksumReg, 18);
    b.bind(biased);
    b.andi(20, 17, 1);
    b.bne(20, 0, noStore);      // ~50/50
    b.addi(17, 17, 1);
    b.st(17, 14, 0);
    b.j(store);
    b.bind(noStore);
    b.xor_(checksumReg, checksumReg, 17);
    b.bind(store);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Program
buildMcf(int scale)
{
    // Network-simplex core: a serial pointer chase over a 2 MB arc
    // array (twice the L2), with a cost accumulation per arc. Most
    // iterations miss in both L1D and L2 -- the paper's most
    // memory-bound integer code.
    Builder b("mcf");

    constexpr int nArcs = 131072;   // 2 words each = 2 MB
    // Arc layout: {nextIndex, cost}.
    std::uint64_t arcs = b.dataBlock(nArcs * 2);
    // A single random cycle through all arcs.
    std::vector<std::uint32_t> order(nArcs);
    for (std::uint32_t i = 0; i < nArcs; ++i)
        order[i] = i;
    Lcg r(0x5eed0013);
    for (std::uint32_t i = nArcs - 1; i > 0; --i) {
        std::uint32_t j = r.next() % (i + 1);
        std::swap(order[i], order[j]);
    }
    for (std::uint32_t i = 0; i < nArcs; ++i) {
        std::uint32_t cur = order[i];
        std::uint32_t nxt = order[(i + 1) % nArcs];
        b.setDataWord(arcs + 16ull * cur, nxt);
        b.setDataWord(arcs + 16ull * cur + 8, (cur * 131) & 0xfff);
    }

    const int iters = 15000 * scale;

    b.li(1, 0);
    b.li(2, iters);
    b.li(4, static_cast<std::int64_t>(arcs));
    b.li(10, 0);                // current arc index
    b.li(checksumReg, 0);

    Label loop = b.newLabel();
    Label cheap = b.newLabel();

    b.bind(loop);
    b.slli(11, 10, 4);          // arc * 16 bytes
    b.add(11, 4, 11);
    b.ld(12, 11, 8);            // cost
    b.ld(10, 11, 0);            // next (serial chase)
    b.li(13, 2048);
    b.blt(12, 13, cheap);       // ~50/50
    b.add(checksumReg, checksumReg, 12);
    b.bind(cheap);
    b.xor_(checksumReg, checksumReg, 10);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Program
buildParser(int scale)
{
    // Link-grammar dictionary lookups: hash computation, a probe into
    // a 512 KB bucket table, then a short chain walk with compare
    // branches -- moderately memory-bound, branchy integer code.
    Builder b("parser");

    constexpr int nBuckets = 65536;     // 512 KB
    constexpr int chainWords = 16384;
    // Bucket: head index into chain area (or 0).
    std::uint64_t buckets = b.dataBlock(nBuckets);
    // Chain node: {key, next} pairs.
    std::uint64_t chain = b.dataBlock(chainWords * 2);
    Lcg r(0x5eed0014);
    std::uint32_t nextFree = 1;
    for (int i = 0; i < 12000 && nextFree < chainWords - 4; ++i) {
        std::uint64_t h = r.next() % nBuckets;
        std::uint64_t key = r.next();
        std::uint64_t head = 0;
        // Push-front into the bucket.
        head = nextFree++;
        std::uint64_t prior = 0;
        // Read existing head (emulate by tracking in a host map would
        // be heavy; chains stay length 1-2 by bucket count >> inserts).
        (void)prior;
        b.setDataWord(chain + 16ull * head, key);
        b.setDataWord(chain + 16ull * head + 8, 0);
        b.setDataWord(buckets + 8ull * h, head);
    }

    const int iters = 9000 * scale;

    b.li(1, 0);
    b.li(2, iters);
    b.li(4, static_cast<std::int64_t>(buckets));
    b.li(5, static_cast<std::int64_t>(chain));
    b.li(10, 0x12345);          // word stream state
    b.li(checksumReg, 0);

    Label loop = b.newLabel();
    Label walk = b.newLabel();
    Label found = b.newLabel();
    Label next = b.newLabel();
    Label done = b.newLabel();

    b.bind(loop);
    // Hash of the next "word": three rounds of mul/xor/shift.
    b.li(11, 40503);
    b.mul(10, 10, 11);
    b.addi(10, 10, 77);
    b.srli(12, 10, 7);
    b.xor_(12, 12, 10);
    b.andi(13, 12, nBuckets - 1);
    b.slli(13, 13, 3);
    b.add(13, 4, 13);
    b.ld(14, 13, 0);            // head index
    b.bind(walk);
    b.beq(14, 0, done);         // empty bucket (common)
    b.slli(15, 14, 4);
    b.add(15, 5, 15);
    b.ld(16, 15, 0);            // key
    b.beq(16, 12, found);       // rare
    b.ld(14, 15, 8);            // next
    b.j(walk);
    b.bind(found);
    b.addi(checksumReg, checksumReg, 1);
    b.bind(next);
    b.bind(done);
    b.xor_(checksumReg, checksumReg, 12);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Program
buildArt(int scale)
{
    // Adaptive-resonance neural net: alternating program phases. The
    // F1 "train" phase streams FP multiply-accumulate over 512 KB of
    // weights (FP + load/store bound, integer domain mostly idle); the
    // "match" phase is an integer scan with compares (FP idle). The
    // phase alternation is what gives the offline tool its Figure 8
    // reconfiguration opportunities.
    Builder b("art");

    constexpr int nWeights = 32768;     // 256 KB per array
    std::uint64_t w1 = b.dataBlock(nWeights);
    std::uint64_t w2 = b.dataBlock(nWeights);
    std::uint64_t match = b.dataBlock(nWeights);
    for (int i = 0; i < nWeights; ++i) {
        b.setDataDouble(w1 + 8ull * i, 0.001 * (i % 997));
        b.setDataDouble(w2 + 8ull * i, 0.5 + 0.0001 * (i % 89));
        b.setDataWord(match + 8ull * i, (i * 2654435761ULL) & 0xffff);
    }
    std::uint64_t decay = b.dataDouble(0.9995);

    const int phases = scale;           // train+match pairs
    constexpr int trainElems = 5000;
    constexpr int matchElems = 7000;

    b.li(1, 0);                 // phase pair
    b.li(2, phases);
    b.li(4, static_cast<std::int64_t>(w1));
    b.li(5, static_cast<std::int64_t>(w2));
    b.li(6, static_cast<std::int64_t>(match));
    b.li(7, static_cast<std::int64_t>(decay));
    b.li(checksumReg, 0);

    Label phaseLoop = b.newLabel();
    Label trainLoop = b.newLabel();
    Label matchLoop = b.newLabel();
    Label noHit = b.newLabel();

    b.bind(phaseLoop);
    b.fld(1, 7, 0);             // decay
    b.li(10, 0);                // k
    b.li(11, trainElems);
    b.bind(trainLoop);
    b.andi(12, 10, nWeights - 1);
    b.slli(12, 12, 3);
    b.add(13, 4, 12);
    b.add(14, 5, 12);
    b.fld(2, 13, 0);            // w1[k]
    b.fld(3, 14, 0);            // w2[k]
    b.fmul(2, 2, 1);            // w1 *= decay
    b.fmul(4, 2, 3);            // act = w1*w2
    b.fadd(2, 2, 4);
    b.fst(2, 13, 0);
    b.addi(10, 10, 1);
    b.blt(10, 11, trainLoop);

    b.li(10, 0);                // k
    b.li(11, matchElems);
    b.li(15, 0x8000);
    b.bind(matchLoop);
    b.andi(12, 10, nWeights - 1);
    b.slli(12, 12, 3);
    b.add(13, 6, 12);
    b.ld(14, 13, 0);
    b.blt(14, 15, noHit);       // ~50/50
    b.addi(checksumReg, checksumReg, 1);
    b.bind(noHit);
    b.xor_(checksumReg, checksumReg, 14);
    b.addi(10, 10, 1);
    b.blt(10, 11, matchLoop);

    b.addi(1, 1, 1);
    b.blt(1, 2, phaseLoop);
    b.halt();
    return b.build();
}

Program
buildSwim(int scale)
{
    // Shallow-water stencil: five-point FP stencil streamed over
    // ~200 KB grids. High FP utilization, perfectly predictable
    // branches, streaming L1 misses serviced by the L2 -- the
    // benchmark the paper notes cannot be scaled much.
    Builder b("swim");

    constexpr int dim = 80;
    std::uint64_t p = b.dataBlock(dim * dim);
    std::uint64_t u = b.dataBlock(dim * dim);
    std::uint64_t unew = b.dataBlock(dim * dim);
    for (int i = 0; i < dim * dim; ++i) {
        b.setDataDouble(p + 8ull * i, 0.01 * (i % 53));
        b.setDataDouble(u + 8ull * i, 0.02 * (i % 31));
    }
    std::uint64_t c1 = b.dataDouble(0.25);
    std::uint64_t c2 = b.dataDouble(0.97);
    std::uint64_t cks = b.dataDouble(1048576.0);

    const int steps = scale;
    const int rowBytes = dim * 8;

    b.li(1, 0);                 // timestep
    b.li(2, steps);
    b.li(4, static_cast<std::int64_t>(p));
    b.li(5, static_cast<std::int64_t>(u));
    b.li(6, static_cast<std::int64_t>(unew));
    b.li(7, static_cast<std::int64_t>(c1));
    b.fld(8, 7, 0);             // 0.25
    b.li(7, static_cast<std::int64_t>(c2));
    b.fld(9, 7, 0);             // 0.97
    b.li(7, static_cast<std::int64_t>(cks));
    b.fld(10, 7, 0);            // checksum scale
    b.li(checksumReg, 0);

    Label stepLoop = b.newLabel();
    Label rowLoop = b.newLabel();
    Label colLoop = b.newLabel();

    b.bind(stepLoop);
    b.li(10, 1);                // row
    b.bind(rowLoop);
    b.li(11, 1);                // col
    b.bind(colLoop);
    // idx = (row*dim + col)*8; dim=80: row*80 = row*64 + row*16
    b.slli(13, 10, 6);
    b.slli(14, 10, 4);
    b.add(13, 13, 14);
    b.add(13, 13, 11);
    b.slli(13, 13, 3);
    b.add(14, 4, 13);           // &p[idx]
    b.fld(1, 14, -rowBytes);
    b.fld(2, 14, rowBytes);
    b.fld(3, 14, -8);
    b.fld(4, 14, 8);
    b.fadd(1, 1, 2);
    b.fadd(3, 3, 4);
    b.fadd(1, 1, 3);
    b.fmul(1, 1, 8);            // laplacian * 0.25
    b.add(15, 5, 13);           // &u[idx]
    b.fld(5, 15, 0);
    b.fmul(5, 5, 9);
    b.fadd(5, 5, 1);
    b.add(16, 6, 13);           // &unew[idx]
    b.fst(5, 16, 0);
    b.addi(11, 11, 1);
    b.li(17, dim - 1);
    b.blt(11, 17, colLoop);
    b.addi(10, 10, 1);
    b.blt(10, 17, rowLoop);
    // Swap u and unew (pointer swap) and fold a checksum.
    b.mv(18, 5);
    b.mv(5, 6);
    b.mv(6, 18);
    b.fmul(11, 5, 10);
    b.ftoi(19, 11);
    b.xor_(checksumReg, checksumReg, 19);
    b.addi(1, 1, 1);
    b.blt(1, 2, stepLoop);
    b.halt();
    return b.build();
}

} // namespace workloads
} // namespace mcd
