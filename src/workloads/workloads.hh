/**
 * @file
 * The benchmark suite: the paper's 16 applications (Table 2)
 * re-implemented as mini-ISA kernels.
 *
 * We cannot execute the original Alpha binaries, so each benchmark is
 * a kernel reproducing the documented characteristics that drive the
 * paper's results — instruction mix, dependence structure, working-set
 * size and locality, branch predictability, and phase behaviour (see
 * DESIGN.md section 4, substitution 1). Every kernel ends with HALT
 * and leaves a checksum in integer register 29 so functional runs are
 * self-checking and deterministic.
 *
 * @p scale multiplies the amount of work (iterations, not data-set
 * size); scale 1 commits roughly 100-250K instructions.
 */

#ifndef MCD_WORKLOADS_WORKLOADS_HH
#define MCD_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace mcd {

/** Register in which every kernel leaves its checksum. */
inline constexpr int checksumReg = 29;

/** Static description of one benchmark (Table 2 row). */
struct WorkloadInfo
{
    const char *name;
    const char *suite;
    const char *dataset;    //!< paper's dataset
    const char *window;     //!< paper's simulation window
    Program (*build)(int scale);
};

namespace workloads {

/** All 16 benchmarks in paper (Table 2) order. */
const std::vector<WorkloadInfo> &all();

/** Look up one benchmark by name; throws FatalError if unknown. */
const WorkloadInfo &get(const std::string &name);

/** Build a benchmark program. */
Program build(const std::string &name, int scale = 1);

/**
 * Hook for synthesized workload families (the fuzz generator): any
 * name starting with @p prefix is routed to @p fn instead of the
 * fixed Table 2 suite, so generated programs flow through the leg /
 * telemetry / fault machinery under their own names with zero changes
 * to the experiment engine. Registration is process-global and
 * thread-safe; re-registering a prefix replaces its builder. The
 * prefix must be non-empty and must not name-collide with a fixed
 * benchmark (fatal() otherwise).
 */
using GeneratorFn = std::function<Program(const std::string &name,
                                          int scale)>;
void registerGenerator(const std::string &prefix, GeneratorFn fn);

/** True when @p name routes to a registered generator prefix. */
bool isGenerated(const std::string &name);

/** @name Individual kernel builders
 *  @{
 */
Program buildAdpcm(int scale);
Program buildEpic(int scale);
Program buildG721(int scale);
Program buildMesa(int scale);
Program buildEm3d(int scale);
Program buildHealth(int scale);
Program buildMst(int scale);
Program buildPower(int scale);
Program buildTreeadd(int scale);
Program buildTsp(int scale);
Program buildBzip2(int scale);
Program buildGcc(int scale);
Program buildMcf(int scale);
Program buildParser(int scale);
Program buildArt(int scale);
Program buildSwim(int scale);
/** @} */

} // namespace workloads
} // namespace mcd

#endif // MCD_WORKLOADS_WORKLOADS_HH
