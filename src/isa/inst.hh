/**
 * @file
 * The MCD mini-ISA: a 64-bit RISC instruction set rich enough to
 * express the paper's benchmark kernels (integer, floating-point,
 * memory, and control instructions) while staying simple to decode.
 *
 * Register file: 32 integer registers (r0 hardwired to zero) and 32
 * floating-point registers. Instructions are 4 bytes in the text image
 * so instruction-cache behaviour is meaningful.
 */

#ifndef MCD_ISA_INST_HH
#define MCD_ISA_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mcd {

/** Number of architectural integer / floating-point registers. */
inline constexpr int numArchIntRegs = 32;
inline constexpr int numArchFpRegs = 32;

/** Conventional register aliases used by the workload kernels. */
namespace reg {
inline constexpr int zero = 0;  //!< always reads 0
inline constexpr int ra = 31;   //!< return address (JAL default link)
inline constexpr int sp = 30;   //!< stack pointer
} // namespace reg

/** Opcodes of the mini-ISA. */
enum class Opcode : std::uint8_t {
    NOP = 0,
    HALT,

    // Integer register-register ALU.
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // Integer multiply/divide unit.
    MUL, DIV, REM,
    // Integer register-immediate ALU.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LUI,

    // Memory: 8-byte loads and stores, integer and FP register files.
    LD, ST, FLD, FST,

    // Floating point (double precision).
    FADD, FSUB, FMUL, FDIV, FSQRT, FNEG, FABS, FMOV,
    FMIN, FMAX,
    // FP compares write an integer register (0/1).
    FCLT, FCLE, FCEQ,
    // Conversions.
    ITOF,   //!< int reg -> fp reg
    FTOI,   //!< fp reg -> int reg (truncating)

    // Control.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JAL, JALR,

    NumOpcodes,
};

/** Functional-unit classes (Table 1: 4+1 integer, 2+1 FP units). */
enum class FuClass : std::uint8_t {
    None,       //!< no functional unit (NOP/HALT consume an ALU slot)
    IntAlu,     //!< single-cycle integer ALU
    IntMulDiv,  //!< integer multiply/divide unit
    FpAlu,      //!< FP add/sub/compare/convert/move unit
    FpMulDivSqrt, //!< FP multiply/divide/sqrt unit
    MemPort,    //!< L1 D-cache port (issued from the LSQ)
};

/** Destination register file of an instruction. */
enum class DestKind : std::uint8_t { None, Int, Fp };

/** A decoded instruction. */
struct Inst
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;    //!< destination register index
    std::uint8_t rs1 = 0;   //!< first source register index
    std::uint8_t rs2 = 0;   //!< second source register index
    std::int32_t imm = 0;   //!< immediate / branch displacement (bytes)
};

/** @name Instruction classification
 *  Static properties derived from the opcode.
 *  @{
 */
bool isIntAlu(Opcode op);
bool isIntMulDiv(Opcode op);
bool isFp(Opcode op);
bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isBranch(Opcode op);   //!< conditional branch
bool isJump(Opcode op);     //!< JAL/JALR

inline bool isMem(Opcode op) { return isLoad(op) || isStore(op); }
inline bool
isControl(Opcode op)
{
    return isBranch(op) || isJump(op);
}

/** Functional unit needed to execute the instruction. */
FuClass fuClass(Opcode op);

/** Execution latency in cycles on its functional unit. */
int execLatency(Opcode op);

/** Which register file the destination lives in (if any). */
DestKind destKind(const Inst &inst);

/** True if rs1 is a live integer source. */
bool readsIntRs1(Opcode op);
/** True if rs2 is a live integer source. */
bool readsIntRs2(Opcode op);
/** True if rs1 is a live FP source. */
bool readsFpRs1(Opcode op);
/** True if rs2 is a live FP source. */
bool readsFpRs2(Opcode op);
/** @} */

/**
 * Back-end clock domain in which the instruction's execute event runs.
 * Memory instructions split across Integer (address generation) and
 * LoadStore (cache access); this returns LoadStore for them.
 */
Domain execDomain(Opcode op);

/** Opcode mnemonic. */
const char *opcodeName(Opcode op);

/** Disassemble one instruction. */
std::string disassemble(const Inst &inst);

} // namespace mcd

#endif // MCD_ISA_INST_HH
