/**
 * @file
 * An assembler-style program builder for the mini-ISA.
 *
 * Workload kernels are written against this API: label-based control
 * flow with forward references, pseudo-instructions (li, mv, branches
 * to labels), and a data-segment allocator.
 */

#ifndef MCD_ISA_BUILDER_HH
#define MCD_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "isa/memory_image.hh"
#include "isa/program.hh"

namespace mcd {

/** Opaque label handle returned by Builder::newLabel(). */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/**
 * Incrementally builds a Program.
 *
 * All branch/jump emitters referencing a Label record a fixup that is
 * resolved when build() is called; labels may be bound before or after
 * use. The data segment is bump-allocated from dataBase().
 */
class Builder
{
  public:
    explicit Builder(std::string name,
                     std::uint64_t text_base = defaultTextBase,
                     std::uint64_t data_base = defaultDataBase);

    /** @name Labels
     *  @{
     */
    Label newLabel();
    /** Bind @p l to the current text position. */
    void bind(Label l);
    /** Create a label already bound to the current position. */
    Label here();
    /** @} */

    /** @name Integer ALU (register-register)
     *  @{
     */
    void add(int rd, int rs1, int rs2) { emitR(Opcode::ADD, rd, rs1, rs2); }
    void sub(int rd, int rs1, int rs2) { emitR(Opcode::SUB, rd, rs1, rs2); }
    void and_(int rd, int rs1, int rs2) { emitR(Opcode::AND, rd, rs1, rs2); }
    void or_(int rd, int rs1, int rs2) { emitR(Opcode::OR, rd, rs1, rs2); }
    void xor_(int rd, int rs1, int rs2) { emitR(Opcode::XOR, rd, rs1, rs2); }
    void sll(int rd, int rs1, int rs2) { emitR(Opcode::SLL, rd, rs1, rs2); }
    void srl(int rd, int rs1, int rs2) { emitR(Opcode::SRL, rd, rs1, rs2); }
    void sra(int rd, int rs1, int rs2) { emitR(Opcode::SRA, rd, rs1, rs2); }
    void slt(int rd, int rs1, int rs2) { emitR(Opcode::SLT, rd, rs1, rs2); }
    void sltu(int rd, int rs1, int rs2) { emitR(Opcode::SLTU, rd, rs1, rs2); }
    void mul(int rd, int rs1, int rs2) { emitR(Opcode::MUL, rd, rs1, rs2); }
    void div(int rd, int rs1, int rs2) { emitR(Opcode::DIV, rd, rs1, rs2); }
    void rem(int rd, int rs1, int rs2) { emitR(Opcode::REM, rd, rs1, rs2); }
    /** @} */

    /** @name Integer ALU (immediate)
     *  @{
     */
    void addi(int rd, int rs1, int imm) { emitI(Opcode::ADDI, rd, rs1, imm); }
    void andi(int rd, int rs1, int imm) { emitI(Opcode::ANDI, rd, rs1, imm); }
    void ori(int rd, int rs1, int imm) { emitI(Opcode::ORI, rd, rs1, imm); }
    void xori(int rd, int rs1, int imm) { emitI(Opcode::XORI, rd, rs1, imm); }
    void slli(int rd, int rs1, int imm) { emitI(Opcode::SLLI, rd, rs1, imm); }
    void srli(int rd, int rs1, int imm) { emitI(Opcode::SRLI, rd, rs1, imm); }
    void srai(int rd, int rs1, int imm) { emitI(Opcode::SRAI, rd, rs1, imm); }
    void slti(int rd, int rs1, int imm) { emitI(Opcode::SLTI, rd, rs1, imm); }
    void lui(int rd, int imm) { emitI(Opcode::LUI, rd, 0, imm); }
    /** @} */

    /** @name Memory
     *  @{
     */
    void ld(int rd, int base_reg, int off)
    { emitI(Opcode::LD, rd, base_reg, off); }
    void st(int data_reg, int base_reg, int off)
    { emitS(Opcode::ST, data_reg, base_reg, off); }
    void fld(int fd, int base_reg, int off)
    { emitI(Opcode::FLD, fd, base_reg, off); }
    void fst(int fdata_reg, int base_reg, int off)
    { emitS(Opcode::FST, fdata_reg, base_reg, off); }
    /** @} */

    /** @name Floating point
     *  @{
     */
    void fadd(int fd, int fs1, int fs2) { emitR(Opcode::FADD, fd, fs1, fs2); }
    void fsub(int fd, int fs1, int fs2) { emitR(Opcode::FSUB, fd, fs1, fs2); }
    void fmul(int fd, int fs1, int fs2) { emitR(Opcode::FMUL, fd, fs1, fs2); }
    void fdiv(int fd, int fs1, int fs2) { emitR(Opcode::FDIV, fd, fs1, fs2); }
    void fsqrt(int fd, int fs1) { emitR(Opcode::FSQRT, fd, fs1, 0); }
    void fneg(int fd, int fs1) { emitR(Opcode::FNEG, fd, fs1, 0); }
    void fabs_(int fd, int fs1) { emitR(Opcode::FABS, fd, fs1, 0); }
    void fmov(int fd, int fs1) { emitR(Opcode::FMOV, fd, fs1, 0); }
    void fmin(int fd, int fs1, int fs2) { emitR(Opcode::FMIN, fd, fs1, fs2); }
    void fmax(int fd, int fs1, int fs2) { emitR(Opcode::FMAX, fd, fs1, fs2); }
    void fclt(int rd, int fs1, int fs2) { emitR(Opcode::FCLT, rd, fs1, fs2); }
    void fcle(int rd, int fs1, int fs2) { emitR(Opcode::FCLE, rd, fs1, fs2); }
    void fceq(int rd, int fs1, int fs2) { emitR(Opcode::FCEQ, rd, fs1, fs2); }
    void itof(int fd, int rs1) { emitR(Opcode::ITOF, fd, rs1, 0); }
    void ftoi(int rd, int fs1) { emitR(Opcode::FTOI, rd, fs1, 0); }
    /** @} */

    /** @name Control flow
     *  @{
     */
    void beq(int rs1, int rs2, Label l) { emitB(Opcode::BEQ, rs1, rs2, l); }
    void bne(int rs1, int rs2, Label l) { emitB(Opcode::BNE, rs1, rs2, l); }
    void blt(int rs1, int rs2, Label l) { emitB(Opcode::BLT, rs1, rs2, l); }
    void bge(int rs1, int rs2, Label l) { emitB(Opcode::BGE, rs1, rs2, l); }
    void bltu(int rs1, int rs2, Label l) { emitB(Opcode::BLTU, rs1, rs2, l); }
    void bgeu(int rs1, int rs2, Label l) { emitB(Opcode::BGEU, rs1, rs2, l); }
    void jal(int rd, Label l);
    /** Unconditional jump (JAL with dead link register). */
    void j(Label l) { jal(reg::zero, l); }
    void jalr(int rd, int rs1, int off = 0)
    { emitI(Opcode::JALR, rd, rs1, off); }
    /** Return through the standard link register. */
    void ret() { jalr(reg::zero, reg::ra, 0); }
    void nop() { emitR(Opcode::NOP, 0, 0, 0); }
    void halt() { emitR(Opcode::HALT, 0, 0, 0); }
    /** @} */

    /** @name Pseudo-instructions
     *  @{
     */
    /** Load an arbitrary 64-bit constant (expands to 1..8 insts). */
    void li(int rd, std::int64_t value);
    /** Register move. */
    void mv(int rd, int rs1) { addi(rd, rs1, 0); }
    /** @} */

    /** @name Data segment
     *  @{
     */
    /** Allocate @p nwords 8-byte words; returns the base address. */
    std::uint64_t dataBlock(std::size_t nwords);
    /** Allocate and initialize one word; returns its address. */
    std::uint64_t dataWord(std::uint64_t value);
    /** Allocate and initialize one double; returns its address. */
    std::uint64_t dataDouble(double value);
    /** Initialize a previously allocated word. */
    void setDataWord(std::uint64_t addr, std::uint64_t value);
    /** Initialize a previously allocated double. */
    void setDataDouble(std::uint64_t addr, double value);
    std::uint64_t dataBase() const { return dataStart; }
    /** Current top of the bump allocator. */
    std::uint64_t dataTop() const { return dataNext; }
    /** @} */

    /** Address of the next instruction to be emitted. */
    std::uint64_t pc() const { return textBase + 4 * insts.size(); }

    /** Number of instructions emitted so far. */
    std::size_t size() const { return insts.size(); }

    /** Resolve fixups and produce the Program. Ends with HALT if the
     *  last emitted instruction is not already HALT. */
    Program build();

  private:
    void emitR(Opcode op, int rd, int rs1, int rs2);
    void emitI(Opcode op, int rd, int rs1, int imm);
    void emitS(Opcode op, int rs2, int rs1, int imm);
    void emitB(Opcode op, int rs1, int rs2, Label l);
    void checkReg(int r) const;

    struct Fixup
    {
        std::size_t index;  //!< instruction slot to patch
        int labelId;
    };

    std::string name;
    std::uint64_t textBase;
    std::uint64_t dataStart;
    std::uint64_t dataNext;
    std::vector<Inst> insts;
    std::vector<std::int64_t> labelPos;     //!< -1 = unbound
    std::vector<Fixup> fixups;
    MemoryImage data;
};

} // namespace mcd

#endif // MCD_ISA_BUILDER_HH
