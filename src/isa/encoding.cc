#include "encoding.hh"

#include "common/log.hh"

namespace mcd {

namespace {

enum class Format { R, I, S, B, J, N };

Format
formatOf(Opcode op)
{
    if (op == Opcode::NOP || op == Opcode::HALT)
        return Format::N;
    if (isBranch(op))
        return Format::B;
    if (op == Opcode::JAL)
        return Format::J;
    if (isStore(op))
        return Format::S;
    switch (op) {
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI: case Opcode::LUI:
      case Opcode::LD: case Opcode::FLD: case Opcode::JALR:
        return Format::I;
      default:
        return Format::R;
    }
}

std::uint32_t
imm16Bits(std::int32_t imm)
{
    if (imm < -32768 || imm > 32767)
        panic("encode: imm16 out of range");
    return static_cast<std::uint32_t>(imm) & 0xffffu;
}

std::uint32_t
imm21Bits(std::int32_t imm)
{
    if (imm < -(1 << 20) || imm >= (1 << 20))
        panic("encode: imm21 out of range");
    return static_cast<std::uint32_t>(imm) & 0x1fffffu;
}

std::int32_t
signExtend16(std::uint32_t bits)
{
    return static_cast<std::int32_t>(static_cast<std::int16_t>(bits));
}

std::int32_t
signExtend21(std::uint32_t bits)
{
    if (bits & 0x100000u)
        bits |= ~0x1fffffu;
    return static_cast<std::int32_t>(bits);
}

} // namespace

std::uint32_t
encode(const Inst &inst)
{
    std::uint32_t w = static_cast<std::uint32_t>(inst.op) << 26;
    switch (formatOf(inst.op)) {
      case Format::N:
        break;
      case Format::R:
        w |= (inst.rd & 0x1fu) << 21;
        w |= (inst.rs1 & 0x1fu) << 16;
        w |= (inst.rs2 & 0x1fu) << 11;
        break;
      case Format::I:
        w |= (inst.rd & 0x1fu) << 21;
        w |= (inst.rs1 & 0x1fu) << 16;
        w |= imm16Bits(inst.imm);
        break;
      case Format::S:
        w |= (inst.rs2 & 0x1fu) << 21;
        w |= (inst.rs1 & 0x1fu) << 16;
        w |= imm16Bits(inst.imm);
        break;
      case Format::B:
        w |= (inst.rs1 & 0x1fu) << 21;
        w |= (inst.rs2 & 0x1fu) << 16;
        w |= imm16Bits(inst.imm);
        break;
      case Format::J:
        w |= (inst.rd & 0x1fu) << 21;
        w |= imm21Bits(inst.imm);
        break;
    }
    return w;
}

Inst
decode(std::uint32_t word)
{
    auto opBits = word >> 26;
    if (opBits >= static_cast<std::uint32_t>(Opcode::NumOpcodes))
        panic("decode: bad opcode field");
    Inst inst;
    inst.op = static_cast<Opcode>(opBits);
    switch (formatOf(inst.op)) {
      case Format::N:
        break;
      case Format::R:
        inst.rd = (word >> 21) & 0x1f;
        inst.rs1 = (word >> 16) & 0x1f;
        inst.rs2 = (word >> 11) & 0x1f;
        break;
      case Format::I:
        inst.rd = (word >> 21) & 0x1f;
        inst.rs1 = (word >> 16) & 0x1f;
        inst.imm = signExtend16(word & 0xffffu);
        break;
      case Format::S:
        inst.rs2 = (word >> 21) & 0x1f;
        inst.rs1 = (word >> 16) & 0x1f;
        inst.imm = signExtend16(word & 0xffffu);
        break;
      case Format::B:
        inst.rs1 = (word >> 21) & 0x1f;
        inst.rs2 = (word >> 16) & 0x1f;
        inst.imm = signExtend16(word & 0xffffu);
        break;
      case Format::J:
        inst.rd = (word >> 21) & 0x1f;
        inst.imm = signExtend21(word & 0x1fffffu);
        break;
    }
    return inst;
}

} // namespace mcd
