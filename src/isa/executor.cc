#include "executor.hh"

#include <cmath>

#include "common/log.hh"

namespace mcd {

Executor::Executor(const Program &program)
    : prog(program), curPc(program.entry())
{
    mem.overlay(program.initialData());
    iregs[reg::sp] = defaultStackTop;
}

ExecResult
Executor::step()
{
    if (isHalted)
        panic("Executor::step after halt");
    if (!prog.validPc(curPc))
        panic("Executor: pc outside text segment");

    const Inst &in = prog.fetch(curPc);
    ExecResult r;
    r.seq = ++seq;
    r.pc = curPc;
    r.inst = in;
    r.nextPc = curPc + 4;

    auto &x = iregs;
    auto &f = fregs;
    auto u16 = [](std::int32_t imm) {
        return static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(imm) & 0xffffu);
    };
    auto s = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };

    std::uint64_t rd_val = 0;
    bool write_int = false;
    double fd_val = 0.0;
    bool write_fp = false;

    switch (in.op) {
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        r.halted = true;
        isHalted = true;
        break;

      case Opcode::ADD: rd_val = x[in.rs1] + x[in.rs2]; write_int = true;
        break;
      case Opcode::SUB: rd_val = x[in.rs1] - x[in.rs2]; write_int = true;
        break;
      case Opcode::AND: rd_val = x[in.rs1] & x[in.rs2]; write_int = true;
        break;
      case Opcode::OR: rd_val = x[in.rs1] | x[in.rs2]; write_int = true;
        break;
      case Opcode::XOR: rd_val = x[in.rs1] ^ x[in.rs2]; write_int = true;
        break;
      case Opcode::SLL:
        rd_val = x[in.rs1] << (x[in.rs2] & 63); write_int = true;
        break;
      case Opcode::SRL:
        rd_val = x[in.rs1] >> (x[in.rs2] & 63); write_int = true;
        break;
      case Opcode::SRA:
        rd_val = static_cast<std::uint64_t>(
            s(x[in.rs1]) >> (x[in.rs2] & 63));
        write_int = true;
        break;
      case Opcode::SLT:
        rd_val = s(x[in.rs1]) < s(x[in.rs2]) ? 1 : 0; write_int = true;
        break;
      case Opcode::SLTU:
        rd_val = x[in.rs1] < x[in.rs2] ? 1 : 0; write_int = true;
        break;

      case Opcode::MUL: rd_val = x[in.rs1] * x[in.rs2]; write_int = true;
        break;
      case Opcode::DIV:
        rd_val = x[in.rs2] == 0
            ? ~0ULL
            : static_cast<std::uint64_t>(s(x[in.rs1]) / s(x[in.rs2]));
        write_int = true;
        break;
      case Opcode::REM:
        rd_val = x[in.rs2] == 0
            ? x[in.rs1]
            : static_cast<std::uint64_t>(s(x[in.rs1]) % s(x[in.rs2]));
        write_int = true;
        break;

      case Opcode::ADDI:
        rd_val = x[in.rs1] + static_cast<std::uint64_t>(
            static_cast<std::int64_t>(in.imm));
        write_int = true;
        break;
      case Opcode::ANDI: rd_val = x[in.rs1] & u16(in.imm); write_int = true;
        break;
      case Opcode::ORI: rd_val = x[in.rs1] | u16(in.imm); write_int = true;
        break;
      case Opcode::XORI: rd_val = x[in.rs1] ^ u16(in.imm); write_int = true;
        break;
      case Opcode::SLLI:
        rd_val = x[in.rs1] << (in.imm & 63); write_int = true;
        break;
      case Opcode::SRLI:
        rd_val = x[in.rs1] >> (in.imm & 63); write_int = true;
        break;
      case Opcode::SRAI:
        rd_val = static_cast<std::uint64_t>(s(x[in.rs1]) >> (in.imm & 63));
        write_int = true;
        break;
      case Opcode::SLTI:
        rd_val = s(x[in.rs1]) < in.imm ? 1 : 0; write_int = true;
        break;
      case Opcode::LUI: rd_val = u16(in.imm) << 16; write_int = true;
        break;

      case Opcode::LD:
        r.memAddr = x[in.rs1] + static_cast<std::int64_t>(in.imm);
        rd_val = mem.readWord(r.memAddr & ~7ULL);
        write_int = true;
        break;
      case Opcode::ST:
        r.memAddr = x[in.rs1] + static_cast<std::int64_t>(in.imm);
        mem.writeWord(r.memAddr & ~7ULL, x[in.rs2]);
        break;
      case Opcode::FLD:
        r.memAddr = x[in.rs1] + static_cast<std::int64_t>(in.imm);
        fd_val = mem.readDouble(r.memAddr & ~7ULL);
        write_fp = true;
        break;
      case Opcode::FST:
        r.memAddr = x[in.rs1] + static_cast<std::int64_t>(in.imm);
        mem.writeDouble(r.memAddr & ~7ULL, f[in.rs2]);
        break;

      case Opcode::FADD: fd_val = f[in.rs1] + f[in.rs2]; write_fp = true;
        break;
      case Opcode::FSUB: fd_val = f[in.rs1] - f[in.rs2]; write_fp = true;
        break;
      case Opcode::FMUL: fd_val = f[in.rs1] * f[in.rs2]; write_fp = true;
        break;
      case Opcode::FDIV: fd_val = f[in.rs1] / f[in.rs2]; write_fp = true;
        break;
      case Opcode::FSQRT: fd_val = std::sqrt(f[in.rs1]); write_fp = true;
        break;
      case Opcode::FNEG: fd_val = -f[in.rs1]; write_fp = true;
        break;
      case Opcode::FABS: fd_val = std::fabs(f[in.rs1]); write_fp = true;
        break;
      case Opcode::FMOV: fd_val = f[in.rs1]; write_fp = true;
        break;
      case Opcode::FMIN:
        fd_val = std::fmin(f[in.rs1], f[in.rs2]); write_fp = true;
        break;
      case Opcode::FMAX:
        fd_val = std::fmax(f[in.rs1], f[in.rs2]); write_fp = true;
        break;
      case Opcode::FCLT:
        rd_val = f[in.rs1] < f[in.rs2] ? 1 : 0; write_int = true;
        break;
      case Opcode::FCLE:
        rd_val = f[in.rs1] <= f[in.rs2] ? 1 : 0; write_int = true;
        break;
      case Opcode::FCEQ:
        rd_val = f[in.rs1] == f[in.rs2] ? 1 : 0; write_int = true;
        break;
      case Opcode::ITOF:
        fd_val = static_cast<double>(s(x[in.rs1])); write_fp = true;
        break;
      case Opcode::FTOI:
        rd_val = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(f[in.rs1]));
        write_int = true;
        break;

      case Opcode::BEQ:
        r.taken = x[in.rs1] == x[in.rs2];
        break;
      case Opcode::BNE:
        r.taken = x[in.rs1] != x[in.rs2];
        break;
      case Opcode::BLT:
        r.taken = s(x[in.rs1]) < s(x[in.rs2]);
        break;
      case Opcode::BGE:
        r.taken = s(x[in.rs1]) >= s(x[in.rs2]);
        break;
      case Opcode::BLTU:
        r.taken = x[in.rs1] < x[in.rs2];
        break;
      case Opcode::BGEU:
        r.taken = x[in.rs1] >= x[in.rs2];
        break;

      case Opcode::JAL:
        rd_val = curPc + 4;
        write_int = true;
        r.taken = true;
        r.nextPc = curPc + static_cast<std::int64_t>(in.imm);
        break;
      case Opcode::JALR:
        rd_val = curPc + 4;
        write_int = true;
        r.taken = true;
        r.nextPc = (x[in.rs1] + static_cast<std::int64_t>(in.imm)) & ~3ULL;
        break;

      default:
        panic("Executor: unhandled opcode");
    }

    if (isBranch(in.op) && r.taken)
        r.nextPc = curPc + static_cast<std::int64_t>(in.imm);

    if (write_int && in.rd != reg::zero)
        x[in.rd] = rd_val;
    if (write_fp)
        f[in.rd] = fd_val;

    curPc = r.nextPc;
    return r;
}

} // namespace mcd
