#include "builder.hh"

#include "common/log.hh"

namespace mcd {

Builder::Builder(std::string prog_name, std::uint64_t text_base,
                 std::uint64_t data_base)
    : name(std::move(prog_name)), textBase(text_base),
      dataStart(data_base), dataNext(data_base)
{
    if (text_base & 3)
        fatal("text base must be 4-byte aligned");
    if (data_base & 7)
        fatal("data base must be 8-byte aligned");
}

Label
Builder::newLabel()
{
    Label l;
    l.id = static_cast<int>(labelPos.size());
    labelPos.push_back(-1);
    return l;
}

void
Builder::bind(Label l)
{
    if (!l.valid() || l.id >= static_cast<int>(labelPos.size()))
        panic("bind: invalid label");
    if (labelPos[l.id] >= 0)
        panic("bind: label bound twice");
    labelPos[l.id] = static_cast<std::int64_t>(insts.size());
}

Label
Builder::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
Builder::checkReg(int r) const
{
    if (r < 0 || r >= numArchIntRegs)
        panic("register index out of range");
}

void
Builder::emitR(Opcode op, int rd, int rs1, int rs2)
{
    checkReg(rd);
    checkReg(rs1);
    checkReg(rs2);
    Inst i;
    i.op = op;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.rs2 = static_cast<std::uint8_t>(rs2);
    insts.push_back(i);
}

void
Builder::emitI(Opcode op, int rd, int rs1, int imm)
{
    checkReg(rd);
    checkReg(rs1);
    // Logical immediates (ANDI/ORI/XORI) and LUI are zero-extended
    // 16-bit values; accept [0, 65535] and store them wrapped so the
    // encoded form round-trips.
    bool logical = op == Opcode::ANDI || op == Opcode::ORI ||
                   op == Opcode::XORI || op == Opcode::LUI;
    if (logical) {
        if (imm < 0 || imm > 65535)
            panic("logical immediate out of unsigned 16-bit range");
        imm = static_cast<std::int32_t>(
            static_cast<std::int16_t>(imm & 0xffff));
    } else if (imm < -32768 || imm > 32767) {
        panic("immediate out of 16-bit range");
    }
    Inst i;
    i.op = op;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.imm = imm;
    insts.push_back(i);
}

void
Builder::emitS(Opcode op, int rs2, int rs1, int imm)
{
    checkReg(rs2);
    checkReg(rs1);
    if (imm < -32768 || imm > 32767)
        panic("store offset out of 16-bit range");
    Inst i;
    i.op = op;
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.rs2 = static_cast<std::uint8_t>(rs2);
    i.imm = imm;
    insts.push_back(i);
}

void
Builder::emitB(Opcode op, int rs1, int rs2, Label l)
{
    checkReg(rs1);
    checkReg(rs2);
    if (!l.valid())
        panic("branch to invalid label");
    Inst i;
    i.op = op;
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.rs2 = static_cast<std::uint8_t>(rs2);
    i.imm = 0;
    fixups.push_back({insts.size(), l.id});
    insts.push_back(i);
}

void
Builder::jal(int rd, Label l)
{
    checkReg(rd);
    if (!l.valid())
        panic("jump to invalid label");
    Inst i;
    i.op = Opcode::JAL;
    i.rd = static_cast<std::uint8_t>(rd);
    fixups.push_back({insts.size(), l.id});
    insts.push_back(i);
}

void
Builder::li(int rd, std::int64_t value)
{
    checkReg(rd);
    if (value >= -32768 && value <= 32767) {
        addi(rd, reg::zero, static_cast<int>(value));
        return;
    }
    // General path: assemble 16-bit chunks MSB-first. ORI immediates
    // are zero-extended, so each chunk loads exactly.
    std::uint64_t v = static_cast<std::uint64_t>(value);
    bool started = false;
    for (int shift = 48; shift >= 0; shift -= 16) {
        int chunk = static_cast<int>((v >> shift) & 0xffff);
        if (!started) {
            if (chunk == 0)
                continue;
            ori(rd, reg::zero, chunk);
            started = true;
        } else {
            slli(rd, rd, 16);
            if (chunk)
                ori(rd, rd, chunk);
        }
    }
    if (!started)
        addi(rd, reg::zero, 0);
}

std::uint64_t
Builder::dataBlock(std::size_t nwords)
{
    std::uint64_t addr = dataNext;
    dataNext += 8 * nwords;
    return addr;
}

std::uint64_t
Builder::dataWord(std::uint64_t value)
{
    std::uint64_t addr = dataBlock(1);
    data.writeWord(addr, value);
    return addr;
}

std::uint64_t
Builder::dataDouble(double value)
{
    std::uint64_t addr = dataBlock(1);
    data.writeDouble(addr, value);
    return addr;
}

void
Builder::setDataWord(std::uint64_t addr, std::uint64_t value)
{
    data.writeWord(addr, value);
}

void
Builder::setDataDouble(std::uint64_t addr, double value)
{
    data.writeDouble(addr, value);
}

Program
Builder::build()
{
    if (insts.empty() || insts.back().op != Opcode::HALT)
        halt();
    for (const Fixup &f : fixups) {
        std::int64_t target = labelPos[f.labelId];
        if (target < 0)
            panic("build: unbound label referenced");
        std::int64_t disp =
            (target - static_cast<std::int64_t>(f.index)) * 4;
        Inst &i = insts[f.index];
        if (i.op == Opcode::JAL) {
            if (disp < -(1 << 20) || disp >= (1 << 20))
                panic("build: jump displacement out of range");
        } else {
            if (disp < -32768 || disp > 32767)
                panic("build: branch displacement out of range");
        }
        i.imm = static_cast<std::int32_t>(disp);
    }
    std::vector<std::uint32_t> words;
    words.reserve(insts.size());
    for (const Inst &i : insts)
        words.push_back(encode(i));
    return Program(name, textBase, std::move(words), std::move(data));
}

} // namespace mcd
