#include "program.hh"

#include "common/log.hh"

namespace mcd {

Program::Program(std::string name, std::uint64_t text_base,
                 std::vector<std::uint32_t> text_words, MemoryImage data)
    : progName(std::move(name)), base(text_base),
      words(std::move(text_words)), dataImage(std::move(data))
{
    if (base & 3)
        fatal("program text base must be 4-byte aligned");
    decoded.reserve(words.size());
    for (std::uint32_t w : words)
        decoded.push_back(decode(w));
}

} // namespace mcd
