#include "inst.hh"

#include <cstdio>

namespace mcd {

bool
isIntAlu(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::ADDI: case Opcode::ANDI:
      case Opcode::ORI: case Opcode::XORI: case Opcode::SLLI:
      case Opcode::SRLI: case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::LUI:
        return true;
      default:
        return false;
    }
}

bool
isIntMulDiv(Opcode op)
{
    return op == Opcode::MUL || op == Opcode::DIV || op == Opcode::REM;
}

bool
isFp(Opcode op)
{
    switch (op) {
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FSQRT: case Opcode::FNEG:
      case Opcode::FABS: case Opcode::FMOV: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FCLT: case Opcode::FCLE:
      case Opcode::FCEQ: case Opcode::ITOF: case Opcode::FTOI:
        return true;
      default:
        return false;
    }
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LD || op == Opcode::FLD;
}

bool
isStore(Opcode op)
{
    return op == Opcode::ST || op == Opcode::FST;
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        return true;
      default:
        return false;
    }
}

bool
isJump(Opcode op)
{
    return op == Opcode::JAL || op == Opcode::JALR;
}

FuClass
fuClass(Opcode op)
{
    if (isIntAlu(op) || isBranch(op) || isJump(op))
        return FuClass::IntAlu;
    if (isIntMulDiv(op))
        return FuClass::IntMulDiv;
    if (isMem(op))
        return FuClass::MemPort;
    if (op == Opcode::FMUL || op == Opcode::FDIV || op == Opcode::FSQRT)
        return FuClass::FpMulDivSqrt;
    if (isFp(op))
        return FuClass::FpAlu;
    return FuClass::None;
}

int
execLatency(Opcode op)
{
    // Alpha-21264-inspired latencies; memory latency is supplied by the
    // cache hierarchy, so LD/ST here is the port occupancy only.
    switch (op) {
      case Opcode::MUL: return 7;
      case Opcode::DIV: case Opcode::REM: return 20;
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FNEG: case Opcode::FABS:
      case Opcode::FMOV: case Opcode::FCLT: case Opcode::FCLE:
      case Opcode::FCEQ: case Opcode::ITOF: case Opcode::FTOI:
        return 4;
      case Opcode::FMUL: return 4;
      case Opcode::FDIV: return 12;
      case Opcode::FSQRT: return 18;
      default: return 1;
    }
}

DestKind
destKind(const Inst &inst)
{
    Opcode op = inst.op;
    if (op == Opcode::NOP || op == Opcode::HALT || isBranch(op) ||
        isStore(op)) {
        return DestKind::None;
    }
    if (op == Opcode::FLD)
        return DestKind::Fp;
    if (op == Opcode::LD)
        return inst.rd == reg::zero ? DestKind::None : DestKind::Int;
    if (isFp(op)) {
        // FP compares and FTOI write integer registers.
        if (op == Opcode::FCLT || op == Opcode::FCLE ||
            op == Opcode::FCEQ || op == Opcode::FTOI) {
            return inst.rd == reg::zero ? DestKind::None : DestKind::Int;
        }
        return DestKind::Fp;
    }
    // Integer ALU / mul-div / jumps (link register).
    return inst.rd == reg::zero ? DestKind::None : DestKind::Int;
}

bool
readsIntRs1(Opcode op)
{
    if (isIntAlu(op) && op != Opcode::LUI)
        return true;
    if (isIntMulDiv(op) || isBranch(op) || isMem(op))
        return true;    // memory base register
    if (op == Opcode::JALR || op == Opcode::ITOF)
        return true;
    return false;
}

bool
readsIntRs2(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::MUL: case Opcode::DIV:
      case Opcode::REM:
        return true;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        return true;
      case Opcode::ST:
        return true;    // store data
      default:
        return false;
    }
}

bool
readsFpRs1(Opcode op)
{
    switch (op) {
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FSQRT: case Opcode::FNEG:
      case Opcode::FABS: case Opcode::FMOV: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FCLT: case Opcode::FCLE:
      case Opcode::FCEQ: case Opcode::FTOI:
        return true;
      default:
        return false;
    }
}

bool
readsFpRs2(Opcode op)
{
    switch (op) {
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FMIN: case Opcode::FMAX:
      case Opcode::FCLT: case Opcode::FCLE: case Opcode::FCEQ:
        return true;
      case Opcode::FST:
        return true;    // store data
      default:
        return false;
    }
}

Domain
execDomain(Opcode op)
{
    if (isMem(op))
        return Domain::LoadStore;
    if (isFp(op))
        return Domain::FloatingPoint;
    return Domain::Integer;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP: return "nop";
      case Opcode::HALT: return "halt";
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::SLT: return "slt";
      case Opcode::SLTU: return "sltu";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::REM: return "rem";
      case Opcode::ADDI: return "addi";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::XORI: return "xori";
      case Opcode::SLLI: return "slli";
      case Opcode::SRLI: return "srli";
      case Opcode::SRAI: return "srai";
      case Opcode::SLTI: return "slti";
      case Opcode::LUI: return "lui";
      case Opcode::LD: return "ld";
      case Opcode::ST: return "st";
      case Opcode::FLD: return "fld";
      case Opcode::FST: return "fst";
      case Opcode::FADD: return "fadd";
      case Opcode::FSUB: return "fsub";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::FSQRT: return "fsqrt";
      case Opcode::FNEG: return "fneg";
      case Opcode::FABS: return "fabs";
      case Opcode::FMOV: return "fmov";
      case Opcode::FMIN: return "fmin";
      case Opcode::FMAX: return "fmax";
      case Opcode::FCLT: return "fclt";
      case Opcode::FCLE: return "fcle";
      case Opcode::FCEQ: return "fceq";
      case Opcode::ITOF: return "itof";
      case Opcode::FTOI: return "ftoi";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::BLTU: return "bltu";
      case Opcode::BGEU: return "bgeu";
      case Opcode::JAL: return "jal";
      case Opcode::JALR: return "jalr";
      default: return "??";
    }
}

std::string
disassemble(const Inst &inst)
{
    char buf[96];
    const char *name = opcodeName(inst.op);
    Opcode op = inst.op;
    if (op == Opcode::NOP || op == Opcode::HALT) {
        std::snprintf(buf, sizeof(buf), "%s", name);
    } else if (isBranch(op)) {
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, %d",
                      name, inst.rs1, inst.rs2, inst.imm);
    } else if (op == Opcode::JAL) {
        std::snprintf(buf, sizeof(buf), "%s r%d, %d",
                      name, inst.rd, inst.imm);
    } else if (op == Opcode::JALR) {
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, %d",
                      name, inst.rd, inst.rs1, inst.imm);
    } else if (isMem(op)) {
        const char pfx = (op == Opcode::FLD || op == Opcode::FST)
            ? 'f' : 'r';
        std::snprintf(buf, sizeof(buf), "%s %c%d, %d(r%d)", name, pfx,
                      (isStore(op) ? inst.rs2 : inst.rd), inst.imm,
                      inst.rs1);
    } else if (isFp(op)) {
        std::snprintf(buf, sizeof(buf), "%s %d, %d, %d",
                      name, inst.rd, inst.rs1, inst.rs2);
    } else if (op == Opcode::LUI) {
        std::snprintf(buf, sizeof(buf), "%s r%d, %d",
                      name, inst.rd, inst.imm);
    } else if (isIntAlu(op) &&
               (op == Opcode::ADDI || op == Opcode::ANDI ||
                op == Opcode::ORI || op == Opcode::XORI ||
                op == Opcode::SLLI || op == Opcode::SRLI ||
                op == Opcode::SRAI || op == Opcode::SLTI)) {
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, %d",
                      name, inst.rd, inst.rs1, inst.imm);
    } else {
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, r%d",
                      name, inst.rd, inst.rs1, inst.rs2);
    }
    return buf;
}

} // namespace mcd
